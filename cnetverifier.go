// Package cnetverifier is the public API of the CNetVerifier
// reproduction — "Control-Plane Protocol Interactions in Cellular
// Networks" (SIGCOMM 2014) rebuilt in Go.
//
// The library exposes the paper's workflow in three steps:
//
//  1. Screen: model-check the 3GPP control-plane protocol models
//     against the user-visible properties (PacketService_OK,
//     CallService_OK, MM_OK), producing counterexamples for the design
//     findings S1–S4 and S6.
//  2. Validate: replay the findings on the discrete-event network
//     emulator under per-operator policy profiles (OP-I, OP-II),
//     or on the §9 socket prototype.
//  3. Fix: enable the §8 solutions and verify the same scenario spaces
//     are clean.
//
// Quick use:
//
//	report, err := cnetverifier.Verify()        // screen everything
//	findings := cnetverifier.Findings()          // Table 1 registry
//	phone := cnetverifier.NewPhone(...)          // drive the emulator
//
// The full experiment drivers (one per table/figure of the paper) live
// in internal/experiments and are reachable through the cnetbench
// command; the lower-level engines are internal/check (model checker),
// internal/netemu (emulator) and internal/emu (socket prototype).
package cnetverifier

import (
	"fmt"

	"cnetverifier/internal/check"
	"cnetverifier/internal/core"
	"cnetverifier/internal/device"
	"cnetverifier/internal/names"
	"cnetverifier/internal/netemu"
	"cnetverifier/internal/types"
	"cnetverifier/internal/validate"
)

// Finding is one Table 1 entry (re-exported from the core registry).
type Finding = core.Finding

// FindingID identifies a finding (S1–S6).
type FindingID = core.FindingID

// The six findings.
const (
	S1 = core.S1
	S2 = core.S2
	S3 = core.S3
	S4 = core.S4
	S5 = core.S5
	S6 = core.S6
)

// Findings returns the Table 1 registry.
func Findings() []Finding { return core.Findings() }

// Report is the outcome of a verification run.
type Report struct {
	// Defective holds the screening results of the standard (broken)
	// configurations; Fixed holds the §8-fixed ones.
	Defective, Fixed []core.ScreenResult
}

// Discovered lists the finding IDs whose property was violated in the
// defective configurations.
func (r Report) Discovered() []FindingID {
	var out []FindingID
	seen := map[FindingID]bool{}
	for _, res := range r.Defective {
		if res.Violated() && !seen[res.Finding] {
			seen[res.Finding] = true
			out = append(out, res.Finding)
		}
	}
	return out
}

// Clean reports whether every fixed configuration held its properties.
func (r Report) Clean() bool {
	for _, res := range r.Fixed {
		if res.Violated() {
			return false
		}
	}
	return true
}

// String renders the report.
func (r Report) String() string {
	return "defective configurations:\n" + core.Report(r.Defective, false) +
		"\nfixed configurations:\n" + core.Report(r.Fixed, false)
}

// Verify runs the complete screening phase: every scoped world in its
// defective configuration (expecting violations) and with the §8 fixes
// (expecting none). It errors when a fix fails to hold.
func Verify() (Report, error) {
	defective, err := core.ScreenAll()
	if err != nil {
		return Report{}, err
	}
	fixed, err := core.VerifyFixes()
	if err != nil {
		return Report{Defective: defective, Fixed: fixed}, err
	}
	return Report{Defective: defective, Fixed: fixed}, nil
}

// VerifyFinding screens a single finding's scoped world. The fixed
// argument selects the §8-repaired configuration.
func VerifyFinding(id FindingID, fixed bool) (core.ScreenResult, error) {
	var s core.Scoped
	switch id {
	case S1:
		s = core.S1World(fixed)
	case S2:
		s = core.S2World(fixed)
	case S3:
		s = core.S3World(fixed, names.SwitchReselect)
	case S4:
		s = core.S4CSWorld(fixed)
	case S6:
		s = core.S6World(fixed)
	default:
		return core.ScreenResult{}, fmt.Errorf("cnetverifier: finding %s has no screening world (S5 is validated on the emulator)", id)
	}
	return core.Screen(s, check.Options{})
}

// ValidationOutcome is one phase-2 replay result.
type ValidationOutcome = validate.Outcome

// ValidateAll runs the complete two-phase pipeline: screen every
// finding (phase 1), then replay each counterexample on the emulator
// (phase 2) and report which symptoms reproduced.
func ValidateAll() ([]ValidationOutcome, error) {
	return validate.Campaign(validate.Config{})
}

// Operator profiles (§3.3's two anonymized US carriers).
var (
	OPI  = netemu.OPI
	OPII = netemu.OPII
)

// Fixes selects the §8 solution modules for emulation.
type Fixes = netemu.FixSet

// AllFixes enables every §8 module.
func AllFixes() Fixes { return netemu.AllFixes() }

// Phone is the emulated handset (validation phase).
type Phone = device.Phone

// PhoneModel is a handset model with its quirks.
type PhoneModel = device.Model

// PhoneModels returns the paper's five tested handsets.
func PhoneModels() []PhoneModel { return device.Models() }

// NewPhone builds an emulated phone of the given model on the operator
// profile with the fix set.
func NewPhone(model PhoneModel, profile netemu.OperatorProfile, fixes Fixes, seed int64) *Phone {
	return device.New(model, profile, fixes, seed)
}

// Systems, re-exported for Phone.PowerOn.
const (
	Sys3G = types.Sys3G
	Sys4G = types.Sys4G
)
