#!/bin/sh
# ci.sh — the repository's tier-1+ gate. Runs formatting, vet, build,
# the full test suite, the lint CLI over every registered spec and
# standard world, and the race detector on the packages that use real
# concurrency (the emulators drive goroutine-per-process stacks).
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l . 2>&1)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== cnetlint (specs + standard worlds, defective and fixed) =="
go run ./cmd/cnetlint -fail-on error >/dev/null
go run ./cmd/cnetlint -fixed -fail-on error >/dev/null
echo ok

echo "== go test -race (concurrent packages) =="
go test -race ./internal/netemu ./internal/emu ./internal/fixes

echo "== go test -race (parallel engine + determinism suite) =="
go test -race ./internal/check ./internal/core

echo "== benchmarks (smoke, 1 iteration each) =="
go test -run '^$' -bench . -benchtime=1x . >/dev/null

echo "CI gate passed."
