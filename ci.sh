#!/bin/sh
# ci.sh — the repository's tier-1+ gate. Runs formatting, vet, build,
# the full test suite, the lint CLI over every registered spec and
# standard world, and the race detector on the packages that use real
# concurrency (the emulators drive goroutine-per-process stacks).
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l . 2>&1)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== detlint (determinism analyzers over the deterministic-replay packages) =="
go build -o /tmp/detlint.$$ ./cmd/detlint
DETLINT_PKGS="./internal/check ./internal/core ./internal/fuzz ./internal/campaign ./internal/userstudy ./internal/workload"
if go vet -vettool=/tmp/detlint.$$ $DETLINT_PKGS; then
    echo ok
else
    # The vettool protocol is an internal go-command contract; if a
    # toolchain change breaks the handshake, the analyzers still gate
    # via the standalone mode (type-driven checks degrade, see detlint).
    echo "vettool run failed; retrying in detlint direct mode"
    /tmp/detlint.$$ $DETLINT_PKGS
    echo ok
fi
rm -f /tmp/detlint.$$

echo "== cnetlint (specs + standard worlds, defective and fixed) =="
go run ./cmd/cnetlint -fail-on error >/dev/null
go run ./cmd/cnetlint -fixed -fail-on error >/dev/null
echo ok

echo "== POR gate (3-UE world: violation sets must match with and without -por) =="
go run ./cmd/cnetverify -world multiue -violations >/tmp/viol_plain.$$
go run ./cmd/cnetverify -world multiue -por -violations >/tmp/viol_por.$$
cmp /tmp/viol_plain.$$ /tmp/viol_por.$$
rm -f /tmp/viol_plain.$$ /tmp/viol_por.$$
echo ok

echo "== symmetry gate (shared-core 3-UE world: -sym and -por -sym must keep the violation set) =="
go run ./cmd/cnetverify -world multiue-shared -violations >/tmp/viol_plain.$$
go run ./cmd/cnetverify -world multiue-shared -sym -violations >/tmp/viol_sym.$$
cmp /tmp/viol_plain.$$ /tmp/viol_sym.$$
go run ./cmd/cnetverify -world multiue-shared -por -violations >/tmp/viol_por.$$
go run ./cmd/cnetverify -world multiue-shared -por -sym -violations >/tmp/viol_porsym.$$
cmp /tmp/viol_por.$$ /tmp/viol_porsym.$$
rm -f /tmp/viol_plain.$$ /tmp/viol_sym.$$ /tmp/viol_por.$$ /tmp/viol_porsym.$$
echo ok

echo "== visited-table gate (exact mode: violation sets byte-identical across worker counts, every standard world) =="
for world in s1 s2 s3 s4cs s4ps s6 multiue multiue-shared; do
    go run ./cmd/cnetverify -world "$world" -violations >/tmp/viol_w1.$$
    go run ./cmd/cnetverify -world "$world" -workers 4 -violations >/tmp/viol_w4.$$
    go run ./cmd/cnetverify -world "$world" -workers 8 -violations >/tmp/viol_w8.$$
    cmp /tmp/viol_w1.$$ /tmp/viol_w4.$$
    cmp /tmp/viol_w1.$$ /tmp/viol_w8.$$
done
rm -f /tmp/viol_w1.$$ /tmp/viol_w4.$$ /tmp/viol_w8.$$
echo ok

echo "== timing gate (degenerate virtual time: violation sets byte-identical to untimed, every standard world x reduction x worker count) =="
go build -o /tmp/cnetverify.$$ ./cmd/cnetverify
for world in s1 s2 s3 s4cs s4ps s6 multiue multiue-shared; do
    /tmp/cnetverify.$$ -world "$world" -violations >/tmp/viol_ref.$$
    for mode in "" "-por" "-sym"; do
        for w in 1 4 8; do
            # shellcheck disable=SC2086 # $mode is intentionally word-split
            /tmp/cnetverify.$$ -world "$world" -timing -timing-profile degenerate $mode -workers "$w" -violations >/tmp/viol_timed.$$
            cmp /tmp/viol_ref.$$ /tmp/viol_timed.$$
        done
    done
done
rm -f /tmp/cnetverify.$$ /tmp/viol_ref.$$ /tmp/viol_timed.$$
echo ok

echo "== hash-compaction gate (shared-core 3-UE world: -compact keeps the violation set at screening scale) =="
go run ./cmd/cnetverify -world multiue-shared -sym -violations >/tmp/viol_exact.$$
go run ./cmd/cnetverify -world multiue-shared -sym -compact -violations >/tmp/viol_compact.$$
cmp /tmp/viol_exact.$$ /tmp/viol_compact.$$
rm -f /tmp/viol_exact.$$ /tmp/viol_compact.$$
echo ok

echo "== visited-table race leg (lock-free claims, min-depth merges, cooperative growth) =="
go test -race -run 'TestVTable' ./internal/check

echo "== alloc budgets (flat visited table + canonical hashing stay on the alloc-free hot path) =="
go test -run 'TestScreenAllocBudget|TestScreenSymAllocBudget' ./internal/core
go test -run 'TestAppendCanonicalHashAllocFree' ./internal/model

echo "== go test -race (concurrent packages) =="
go test -race ./internal/netemu ./internal/emu ./internal/fixes

echo "== go test -race (parallel engine + determinism suite) =="
go test -race ./internal/check ./internal/core

echo "== go test -race (sweep campaign engine) =="
go test -race ./internal/validate

echo "== go test -race (population load engine: worker determinism matrix) =="
go test -race -run 'TestCampaign' ./internal/campaign

echo "== go test -race (coverage-guided fuzzer) =="
go test -race ./internal/fuzz

echo "== fuzz smoke (trace line codec, 30s) =="
go test ./internal/trace -fuzz FuzzRecordLine -fuzztime 30s >/dev/null

echo "== cnetfuzz smoke (small budget, must find new coverage) =="
go run ./cmd/cnetfuzz -world s1 -budget 2000 -workers 8 -min-new 1 >/dev/null
echo ok

echo "== cnetfuzz shrink smoke (screen S1, ddmin must terminate + re-verify) =="
go run ./cmd/cnetfuzz -screen -world s1 -shrink | grep -q '^shrunk '
echo ok

echo "== sweep smoke (single cell, S1, both worker counts) =="
go run ./cmd/cnetsim -sweep -findings S1 -loss 0.2 -seeds 4 -workers 1 -format csv >/tmp/sweep1.csv
go run ./cmd/cnetsim -sweep -findings S1 -loss 0.2 -seeds 4 -workers 8 -format csv >/tmp/sweep8.csv
cmp /tmp/sweep1.csv /tmp/sweep8.csv
rm -f /tmp/sweep1.csv /tmp/sweep8.csv
echo ok

echo "== campaign gates (golden fixture, alloc budget, worker determinism) =="
go test -run 'TestCampaignGolden|TestCampaignAllocBudget' ./internal/campaign
go run ./cmd/cnetsim -campaign -ues 20000 -horizon 5m -workers 1 -format json >/tmp/camp1.json
go run ./cmd/cnetsim -campaign -ues 20000 -horizon 5m -workers 8 -format json >/tmp/camp8.json
cmp /tmp/camp1.json /tmp/camp8.json
rm -f /tmp/camp1.json /tmp/camp8.json
echo ok

echo "== fuzz smoke (campaign occurrence-row codec, 15s) =="
go test ./internal/campaign -run '^$' -fuzz FuzzCampaignRow -fuzztime 15s >/dev/null

echo "== screening bench smoke (alloc-counted, 1 iteration) =="
go test -run '^$' -bench Screen -benchtime=1x -benchmem . >/dev/null

echo "== benchmarks (smoke, 1 iteration each) =="
go test -run '^$' -bench . -benchtime=1x . >/dev/null

echo "CI gate passed."
