// CSFB stuck-in-3G (S3, §5.3): a 4G user with a high-rate data session
// makes a CSFB call. Under OP-I's "RRC connection release with
// redirect" the device returns to 4G when the call ends; under OP-II's
// "inter-system cell reselection" it is stuck in 3G until the data
// session finishes (Table 6). The §8 domain-decoupling fix (CSFB tag)
// repairs OP-II.
//
// The example drives the full emulated stack (all eight protocols)
// under each configuration and prints what the device experienced.
package main

import (
	"fmt"
	"time"

	"cnetverifier/internal/names"
	"cnetverifier/internal/netemu"
	"cnetverifier/internal/types"
)

func main() {
	fmt.Println("CSFB call with a concurrent high-rate data session:")
	fmt.Println()
	run("OP-I  (release w/ redirect)", netemu.OPI(), netemu.FixSet{})
	run("OP-II (cell reselection)   ", netemu.OPII(), netemu.FixSet{})
	run("OP-II + domain decoupling  ", netemu.OPII(), netemu.FixSet{DomainDecoupling: true})
}

func run(label string, p netemu.OperatorProfile, fs netemu.FixSet) {
	w := netemu.NewWorld(1)
	netemu.StandardStack(w, p, fs)
	w.SetGlobal(names.GSys, int(types.Sys4G))
	w.SetGlobal(names.GReg4G, 1)

	// High-rate data in 4G, then dial (CSFB), then hang up at t=30s.
	w.InjectAt(0, names.UERRC4G, types.Message{Kind: types.MsgUserDataOn})
	w.InjectAt(time.Second, names.UECM, types.Message{Kind: types.MsgUserDialCall})
	w.RunUntil(30 * time.Second)
	w.Inject(names.UECM, types.Message{Kind: types.MsgUserHangUp})
	w.Run()

	sys := types.System(w.Global(names.GSys))
	stuck := w.Global(names.GWantReturn4G) == 1
	fmt.Printf("%s -> after call: camped on %s", label, sys)
	if stuck {
		fmt.Printf("  [STUCK: return to 4G pending, RRC state %s]", w.Machine(names.UERRC3G).State())
	}
	fmt.Println()

	if stuck {
		// The deadlock breaks only when the data session ends.
		w.Inject(names.UERRC3G, types.Message{Kind: types.MsgUserDataOff})
		w.Inject(names.UERRC3G, types.Message{Kind: types.MsgInterSystemCellReselect})
		w.Run()
		fmt.Printf("%s    after data session ends: camped on %s\n",
			label, types.System(w.Global(names.GSys)))
	}
}
