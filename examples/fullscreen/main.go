// Full-model screening: run the paper's actual methodology — random
// sampling of usage scenarios (§3.2.1) over the complete dual-system
// model (all eight protocols, device and network side) — and report
// which properties broke, with scenario-space coverage.
package main

import (
	"fmt"
	"log"
	"sort"

	"cnetverifier/internal/check"
	"cnetverifier/internal/core"
	"cnetverifier/internal/names"
	"cnetverifier/internal/scenario"
)

func main() {
	s := core.FullWorld(core.FullConfig{
		SwitchOpt:     names.SwitchReselect, // OP-II's policy
		LossyAir:      true,                 // unreliable RRC transfer
		SampleSeed:    1,
		SamplePerStep: 5,
	})
	opt := s.Options
	opt.Walks = 2000
	opt.MaxDepth = 48

	fmt.Printf("screening the full model: %d processes, random sampling (%d walks × depth %d)...\n",
		len(s.World.Procs), opt.Walks, opt.MaxDepth)
	res, err := check.Run(s.World, s.Props, s.Scenario, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d distinct states over %d transitions\n\n", res.States, res.Transitions)

	byProp := map[string][]check.Violation{}
	for _, v := range res.Violations {
		byProp[v.Property] = append(byProp[v.Property], v)
	}
	props := make([]string, 0, len(byProp))
	for p := range byProp {
		props = append(props, p)
	}
	sort.Strings(props)
	for _, p := range props {
		vs := byProp[p]
		fmt.Printf("%s: %d distinct violations; shortest counterexample %d steps\n",
			p, len(vs), shortest(vs))
	}

	// Scenario coverage of the first counterexample per property.
	fmt.Println("\nscenario coverage of the counterexamples:")
	space := scenario.FullSpace()
	for _, p := range props {
		cov := scenario.Coverage(space, s.World, byProp[p][0].Path)
		labels := make([]string, 0, len(cov))
		for l := range cov {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		fmt.Printf("  %-18s %v\n", p+":", labels)
	}
}

func shortest(vs []check.Violation) int {
	best := -1
	for _, v := range vs {
		if best < 0 || len(v.Path) < best {
			best = len(v.Path)
		}
	}
	return best
}
