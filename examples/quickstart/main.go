// Quickstart: run CNetVerifier's screening phase on the S1 world (the
// cross-system context-loss finding of §5.1), print the counterexample
// the model checker discovers, and verify that the §8 cross-system
// coordination fix eliminates it.
package main

import (
	"fmt"
	"log"

	"cnetverifier/internal/check"
	"cnetverifier/internal/core"
)

func main() {
	// 1. Screen the defective world: 4G attach → 4G→3G switch with
	//    context migration → PDP deactivation in 3G → 3G→4G return.
	world := core.S1World(false)
	res, err := core.Screen(world, check.Options{Strategy: check.BFS})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Result.Violated("PacketService_OK") {
		log.Fatal("expected a PacketService_OK violation in the defective world")
	}
	fmt.Println("S1 discovered by the model checker:")
	fmt.Println()
	v := res.Result.ViolationsOf("PacketService_OK")[0]
	fmt.Print(check.FormatCounterexample(v))
	fmt.Printf("\nexplored %d states, %d transitions\n\n", res.Result.States, res.Result.Transitions)

	// 2. Replay the counterexample (the bridge to the validation
	//    phase, §3.1).
	end, err := check.Replay(world.World, v.Path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed counterexample: device detached by network = %v\n\n",
		end.Global("g.detachedByNet") == 1)

	// 3. Verify the §8 fix: the same scenario space holds the property.
	fixed, err := core.Screen(core.S1World(true), check.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if fixed.Violated() {
		log.Fatal("the fix did not eliminate the violation")
	}
	fmt.Printf("with the §8 cross-system fix: no violation in %d states\n", fixed.Result.States)
}
