// User study (§7, Table 5): simulate the two-week, 20-volunteer study
// and print the per-finding occurrence probabilities, then rerun the
// same cohort with every §8 fix "deployed" (the mechanism-driven
// findings S1/S3/S5/S6 can no longer occur) to estimate the fixes'
// real-world impact.
package main

import (
	"fmt"

	"cnetverifier/internal/userstudy"
)

func main() {
	cfg := userstudy.DefaultConfig()

	fmt.Println("two-week user study, 20 volunteers (12 on 4G, 8 on 3G):")
	fmt.Println()
	r := userstudy.Run(cfg, 15)
	fmt.Print(r.Table())

	// With the §8 fixes deployed the environmental triggers remain but
	// the mechanisms no longer convert them into user-visible failures:
	// the reactivation fix absorbs PDP deactivations (S1), the CSFB tag
	// always returns the device (S3), decoupled channels keep the PS
	// rate (S5), and LU failures are recovered inside the core (S6).
	fixed := cfg
	fixed.PPDPDeactInThreeG = 0 // S1: deactivation no longer detaches
	fixed.POPIIUser = 0         // S3: no policy can strand the device
	fixed.PDataTrafficDuringCall = 0
	fixed.PCSFBLUFailure = 0
	fixed.PDialDuringLAU = 0

	fmt.Println()
	fmt.Println("same cohort with the §8 fixes deployed:")
	fmt.Println()
	fmt.Print(userstudy.Run(fixed, 15).Table())
}
