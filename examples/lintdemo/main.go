// Command lintdemo shows the internal/lint analyzer catching two
// classic spec bugs on a deliberately broken toy protocol:
//
//   - a shadowed transition (SPEC002): a catch-all power-off rule early
//     in the table makes a later, more specific power-off rule dead
//     under the runtime engine's first-match priority;
//   - a dead-letter send (MSG001): the device requests a session with a
//     message kind the server handles in no state, so the request rots
//     in the inbox forever.
//
// Both defects are invisible to the model checker — exploration simply
// never branches into the dead code — which is exactly why check.Run
// refuses to screen a world that fails the lint gate. Run it with:
//
//	go run ./examples/lintdemo
package main

import (
	"fmt"
	"os"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/lint"
	"cnetverifier/internal/model"
	"cnetverifier/internal/types"
)

func deviceSpec() *fsm.Spec {
	return &fsm.Spec{
		Name: "TOY-UE",
		Init: "OFF",
		Transitions: []fsm.Transition{
			{Name: "power-on", From: "OFF", On: types.MsgPowerOn, To: "IDLE"},
			// The catch-all comes first, so the "graceful-off" rule below
			// can never fire: first match wins at runtime.
			{Name: "hard-off", From: fsm.Any, On: types.MsgPowerOff, To: "OFF"},
			{Name: "graceful-off", From: "CONNECTED", On: types.MsgPowerOff, To: "OFF",
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send("server", types.Message{Kind: types.MsgDetachRequest})
				}},
			{Name: "dial", From: "IDLE", On: types.MsgUserDialCall, To: "CONNECTED",
				Action: func(c fsm.Ctx, e fsm.Event) {
					// The server's table has no row for CMServiceRequest:
					// this send is a dead letter.
					c.Send("server", types.Message{Kind: types.MsgCMServiceRequest})
				}},
		},
	}
}

func serverSpec() *fsm.Spec {
	return &fsm.Spec{
		Name: "TOY-SERVER",
		Init: "LISTEN",
		Transitions: []fsm.Transition{
			{Name: "detach", From: "LISTEN", On: types.MsgDetachRequest, To: "LISTEN"},
		},
	}
}

func main() {
	w, err := model.New(model.Config{Procs: []model.ProcConfig{
		{Name: "phone", Spec: deviceSpec()},
		{Name: "server", Spec: serverSpec()},
	}})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintdemo:", err)
		os.Exit(1)
	}

	rep := lint.World(w, lint.Options{})
	fmt.Println("lint findings for the broken toy world:")
	fmt.Println()
	fmt.Print(rep.Text())
	fmt.Println()
	fmt.Println("annotated transition graph (shadowed transition in red):")
	fmt.Println()
	fmt.Print(lint.DOT(deviceSpec(), rep))
}
