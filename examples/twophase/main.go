// Two-phase diagnosis (§3.1, Figure 2) through the public API: screen
// every finding with the model checker, then replay each counterexample
// on the emulated operational network and report which user-visible
// symptoms reproduce — CNetVerifier's full pipeline in one program.
package main

import (
	"fmt"
	"log"

	cnv "cnetverifier"
)

func main() {
	// Phase 1: screening.
	report, err := cnv.Verify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 1 (screening): findings discovered by property violation:")
	for _, id := range report.Discovered() {
		f, _ := findingByID(id)
		fmt.Printf("  %s — %s\n", id, f)
	}
	fmt.Printf("phase 1: all §8-fixed configurations clean: %v\n\n", report.Clean())

	// Phase 2: validation on the emulated network.
	outcomes, err := cnv.ValidateAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 2 (validation): counterexamples replayed on the emulator:")
	perFinding := map[cnv.FindingID][2]int{}
	for _, o := range outcomes {
		c := perFinding[o.Finding]
		c[1]++
		if o.Reproduced {
			c[0]++
		}
		perFinding[o.Finding] = c
	}
	for _, id := range []cnv.FindingID{cnv.S1, cnv.S2, cnv.S3, cnv.S4, cnv.S6} {
		c := perFinding[id]
		fmt.Printf("  %s: %d/%d counterexamples reproduced\n", id, c[0], c[1])
	}
	fmt.Println("\n(S5 is an operational finding measured by the radio model — see cnetbench -exp fig9.)")
}

func findingByID(id cnv.FindingID) (string, bool) {
	for _, f := range cnv.Findings() {
		if f.ID == id {
			return f.Problem, true
		}
	}
	return "", false
}
