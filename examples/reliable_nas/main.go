// Reliable NAS signaling (S2, §5.2 / §9.1): sweep the air-interface
// drop rate and count how often the attach + tracking-area-update
// dialogue ends in an implicit detach, with and without the §8
// reliable-transfer shim — Figure 12 (left) regenerated through the
// public experiment drivers.
//
// The example then demonstrates the same shim end-to-end over real
// loopback sockets (the §9 prototype).
package main

import (
	"fmt"
	"log"
	"time"

	"cnetverifier/internal/emu"
	"cnetverifier/internal/experiments"
)

func main() {
	rates := []float64{0, 0.02, 0.04, 0.06, 0.08, 0.10}
	const cycles = 100

	fmt.Println("sweeping EMM signal drop rates over", cycles, "attach+TAU cycles each...")
	without := experiments.Figure12DetachVsDrop(rates, cycles, false, 1)
	with := experiments.Figure12DetachVsDrop(rates, cycles, true, 1)
	fmt.Println()
	fmt.Print(experiments.RenderFigure12Left(without, with))

	// Now over real sockets: device ⇄ (UDP, 30% loss) ⇄ BS ⇄ (TCP) ⇄ core.
	fmt.Println()
	fmt.Println("§9 prototype over loopback sockets, 30% air loss, shim enabled:")
	core, err := emu.NewCore("127.0.0.1:0", true)
	if err != nil {
		log.Fatal(err)
	}
	defer core.Close()
	bs, err := emu.NewBS("127.0.0.1:0", core.Addr(), 0.30, 7)
	if err != nil {
		log.Fatal(err)
	}
	defer bs.Close()
	dev, err := emu.NewDevice(bs.Addr(), true)
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close()

	start := time.Now()
	dev.PowerOn()
	if !dev.WaitRegistered(10*time.Second, 100*time.Millisecond) {
		log.Fatal("attach failed through 30% loss despite the shim")
	}
	fmt.Printf("attached through 30%% loss in %v (BS relayed %d frames, dropped %d)\n",
		time.Since(start).Round(time.Millisecond), bs.Relayed(), bs.Dropped())
}
