module cnetverifier

go 1.22
