// Package radio models the physical-layer substrate the paper's
// validation experiments run over: modulation schemes and their peak
// rates on the 3G shared channel (§6.2), a path-loss RSSI model over
// parameterized driving routes (§6.1, Figure 7), hour-of-day load
// factors (Figure 9), and seeded loss injection for the §9 prototype
// experiments (Figure 12).
//
// The paper measured operational networks; this package replaces them
// with an explicit model whose parameters are calibrated to the
// numbers the paper reports (21 Mbps peak at 64QAM vs 11 Mbps at
// 16QAM, RSSI between -51 and -95 dBm along Route-1, and so on), so
// the experiment harnesses reproduce the same shapes.
package radio

import (
	"fmt"
	"math"
	"math/rand"
)

// Mbps is a data rate in megabits per second.
type Mbps = float64

// Modulation is a modulation scheme on the 3G shared channel.
type Modulation uint8

// Modulation schemes, ordered by rate.
const (
	QPSK Modulation = iota
	QAM16
	QAM64
)

func (m Modulation) String() string {
	switch m {
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16QAM"
	case QAM64:
		return "64QAM"
	default:
		return fmt.Sprintf("Modulation(%d)", uint8(m))
	}
}

// Order returns the constellation size (4, 16, 64).
func (m Modulation) Order() int {
	switch m {
	case QPSK:
		return 4
	case QAM16:
		return 16
	case QAM64:
		return 64
	default:
		return 0
	}
}

// PeakDL returns the theoretical downlink peak rate (§6.2: "before the
// voice call ... 64QAM, thus offering downlink speed up to 21Mbps ...
// 16QAM, thus reducing the theoretical downlink speed to 11Mbps").
func (m Modulation) PeakDL() Mbps {
	switch m {
	case QPSK:
		return 5.3
	case QAM16:
		return 11.0
	case QAM64:
		return 21.1
	default:
		return 0
	}
}

// PeakUL returns the theoretical uplink peak rate (HSUPA-class).
func (m Modulation) PeakUL() Mbps {
	switch m {
	case QPSK:
		return 2.0
	case QAM16:
		return 5.76
	case QAM64:
		return 11.5
	default:
		return 0
	}
}

// CSVoiceRate is the best 3G CS voice codec rate (§6.2 cites 12.2 kbps
// AMR).
const CSVoiceRate Mbps = 0.0122

// SharedChannel models the 3G downlink/uplink shared channel carrying
// both CS voice and PS data (§6.2). When Coupled (the operational
// practice of both carriers), an active CS call forces the whole
// channel to the voice-safe modulation; when decoupled (§8 fix), PS
// keeps its own modulation.
type SharedChannel struct {
	// Coupled selects the carriers' single-modulation sharing.
	Coupled bool
	// DataMod is the modulation PS data would use on its own.
	DataMod Modulation
	// VoiceMod is the robust modulation CS voice requires.
	VoiceMod Modulation
	// CallActive reports an ongoing CS call.
	CallActive bool
	// VoiceOverheadFactor is the extra scheduling/resilience penalty a
	// concurrent call imposes beyond the modulation downgrade; the
	// paper's measured drops (73.9–96.1% DL/UL) exceed the pure
	// 21→11 Mbps modulation ratio, so carriers evidently reserve
	// channel shares for voice resilience. 0 = no extra penalty.
	VoiceOverheadFactor float64
}

// NewSharedChannel returns a coupled channel at 64QAM data / 16QAM
// voice with no extra overhead.
func NewSharedChannel() *SharedChannel {
	return &SharedChannel{Coupled: true, DataMod: QAM64, VoiceMod: QAM16}
}

// CurrentMod returns the modulation PS data experiences right now.
func (ch *SharedChannel) CurrentMod() Modulation {
	if ch.Coupled && ch.CallActive {
		return ch.VoiceMod
	}
	return ch.DataMod
}

// penalty returns the multiplicative rate factor applied during a call.
func (ch *SharedChannel) penalty() float64 {
	if !ch.CallActive || !ch.Coupled {
		return 1
	}
	f := 1 - ch.VoiceOverheadFactor
	if f < 0 {
		return 0
	}
	return f
}

// DataRateDL returns the PS downlink rate under the load factor
// (0..1, the fraction of the shared channel the user obtains).
func (ch *SharedChannel) DataRateDL(load float64) Mbps {
	return ch.CurrentMod().PeakDL() * clamp01(load) * ch.penalty()
}

// DataRateUL returns the PS uplink rate under the load factor.
func (ch *SharedChannel) DataRateUL(load float64) Mbps {
	return ch.CurrentMod().PeakUL() * clamp01(load) * ch.penalty()
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// PathLoss is a log-distance path-loss RSSI model with optional
// log-normal shadowing.
type PathLoss struct {
	// TxPowerDBm is the BS transmit power as seen at the reference
	// distance.
	TxPowerDBm float64
	// RefLossDB is the loss at 1 mile.
	RefLossDB float64
	// Exponent is the path-loss exponent (2 free space, ~3.5 urban).
	Exponent float64
	// ShadowSigmaDB is the standard deviation of log-normal shadowing;
	// 0 disables it.
	ShadowSigmaDB float64
}

// DefaultPathLoss is calibrated so a 15-mile drive with BSes every ~2
// miles stays within the good-signal range the paper measured on
// Route-1 ([-51, -95] dBm, §6.1.2).
func DefaultPathLoss() PathLoss {
	return PathLoss{TxPowerDBm: -86, RefLossDB: 6, Exponent: 3.2, ShadowSigmaDB: 3}
}

// RSSIAt returns the received signal strength at the given distance in
// miles from the serving BS, with shadowing drawn from rng when
// enabled (pass nil for the deterministic mean).
func (p PathLoss) RSSIAt(distMiles float64, rng *rand.Rand) float64 {
	if distMiles < 0.05 {
		distMiles = 0.05
	}
	rssi := p.TxPowerDBm - p.RefLossDB - 10*p.Exponent*math.Log10(distMiles)
	if p.ShadowSigmaDB > 0 && rng != nil {
		rssi += rng.NormFloat64() * p.ShadowSigmaDB
	}
	return rssi
}

// WeakSignalThreshold is the RSSI below which the paper places its
// weak-coverage loss experiments (§5.2.2: "RSSI is below -110dBm").
const WeakSignalThreshold = -110.0

// Route is a driving route with serving base stations and
// location-area boundaries along it.
type Route struct {
	Name string
	// LengthMiles is the total route length.
	LengthMiles float64
	// BSMileposts are serving BS positions; the device attaches to the
	// nearest one.
	BSMileposts []float64
	// UpdateMileposts are where location-area boundaries are crossed,
	// triggering location updates (Figure 7 observed them at 9.5 and
	// 13.2 miles on Route-1).
	UpdateMileposts []float64
}

// Route1 is the paper's 15-mile freeway route with the two observed
// location-update points.
func Route1() Route {
	return Route{
		Name:            "Route-1",
		LengthMiles:     15,
		BSMileposts:     []float64{0.5, 2.5, 4.5, 6.5, 8.5, 10.5, 12.5, 14.5},
		UpdateMileposts: []float64{9.5, 13.2},
	}
}

// Route2 is the paper's 28.3-mile freeway+local route.
func Route2() Route {
	return Route{
		Name:        "Route-2",
		LengthMiles: 28.3,
		BSMileposts: []float64{0.5, 2.5, 4.5, 6.5, 8.5, 10.5, 12.5, 14.5, 16.0, 17.5, 19.0, 20.5, 22.0, 23.5, 25.0, 26.5, 28.0},
		UpdateMileposts: []float64{
			6.8, 13.9, 19.4, 24.8,
		},
	}
}

// ServingBSDistance returns the distance to the nearest BS at the given
// milepost.
func (r Route) ServingBSDistance(milepost float64) float64 {
	best := math.Inf(1)
	for _, bs := range r.BSMileposts {
		if d := math.Abs(milepost - bs); d < best {
			best = d
		}
	}
	return best
}

// RSSIAt returns the RSSI observed at a milepost under the path-loss
// model.
func (r Route) RSSIAt(milepost float64, p PathLoss, rng *rand.Rand) float64 {
	return p.RSSIAt(r.ServingBSDistance(milepost), rng)
}

// CrossesUpdate reports whether driving from to milepost a to b crosses
// a location-area boundary.
func (r Route) CrossesUpdate(a, b float64) bool {
	if b < a {
		a, b = b, a
	}
	for _, u := range r.UpdateMileposts {
		if a < u && u <= b {
			return true
		}
	}
	return false
}

// LoadFactor returns the fraction of the shared channel a user obtains
// at the given hour of day (0–23), modeling the diurnal congestion
// visible in Figure 9 (the paper's 8am–2am measurement windows). Quiet
// night hours approach the peak; evening busy hours are the trough.
func LoadFactor(hour int) float64 {
	h := ((hour % 24) + 24) % 24
	switch {
	case h >= 23 || h < 2: // late night
		return 0.70
	case h >= 2 && h < 8: // early morning
		return 0.75
	case h >= 8 && h < 11:
		return 0.60
	case h >= 11 && h < 14:
		return 0.52
	case h >= 14 && h < 17:
		return 0.55
	case h >= 17 && h < 20: // evening peak
		return 0.45
	default: // 20–23
		return 0.50
	}
}

// Dropper injects signaling loss at a configured rate with a seeded
// RNG, for the Figure 12 drop-rate sweeps.
type Dropper struct {
	rate float64
	rng  *rand.Rand
}

// NewDropper returns a dropper losing the given fraction (0..1) of
// messages, deterministic per seed.
func NewDropper(rate float64, seed int64) *Dropper {
	return &Dropper{rate: clamp01(rate), rng: rand.New(rand.NewSource(seed))}
}

// Rate returns the configured drop rate.
func (d *Dropper) Rate() float64 { return d.rate }

// Drop reports whether the next message should be lost.
func (d *Dropper) Drop() bool {
	if d.rate == 0 {
		return false
	}
	return d.rng.Float64() < d.rate
}
