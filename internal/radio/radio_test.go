package radio

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestModulationTables(t *testing.T) {
	if QAM64.PeakDL() <= QAM16.PeakDL() || QAM16.PeakDL() <= QPSK.PeakDL() {
		t.Fatal("DL peak rates not increasing with modulation order")
	}
	if QAM64.PeakUL() <= QAM16.PeakUL() {
		t.Fatal("UL peak rates not increasing")
	}
	// §6.2's cited numbers.
	if QAM64.PeakDL() != 21.1 || QAM16.PeakDL() != 11.0 {
		t.Fatalf("peaks = %v/%v, want 21.1/11.0", QAM64.PeakDL(), QAM16.PeakDL())
	}
	if QAM64.Order() != 64 || QAM16.Order() != 16 || QPSK.Order() != 4 {
		t.Fatal("orders wrong")
	}
	for _, m := range []Modulation{QPSK, QAM16, QAM64, Modulation(9)} {
		if m.String() == "" {
			t.Fatal("empty modulation name")
		}
	}
	if Modulation(9).PeakDL() != 0 || Modulation(9).PeakUL() != 0 || Modulation(9).Order() != 0 {
		t.Fatal("unknown modulation should rate 0")
	}
}

// S5's physics: an active call on a coupled channel downgrades the
// modulation; a decoupled channel does not.
func TestSharedChannelCoupling(t *testing.T) {
	ch := NewSharedChannel()
	if ch.CurrentMod() != QAM64 {
		t.Fatalf("idle modulation = %v", ch.CurrentMod())
	}
	before := ch.DataRateDL(1)
	ch.CallActive = true
	if ch.CurrentMod() != QAM16 {
		t.Fatalf("in-call modulation = %v, want 16QAM", ch.CurrentMod())
	}
	during := ch.DataRateDL(1)
	if during >= before {
		t.Fatalf("rate did not drop: %v -> %v", before, during)
	}
	drop := 1 - during/before
	// Pure modulation downgrade: 1 - 11/21.1 ≈ 47.9%.
	if drop < 0.4 || drop > 0.6 {
		t.Fatalf("modulation-only drop = %.2f, want ≈0.48", drop)
	}

	ch.Coupled = false
	if ch.CurrentMod() != QAM64 {
		t.Fatal("decoupled channel downgraded anyway")
	}
	if ch.DataRateDL(1) != before {
		t.Fatal("decoupled rate changed during call")
	}
}

func TestSharedChannelVoiceOverhead(t *testing.T) {
	ch := NewSharedChannel()
	ch.CallActive = true
	ch.VoiceOverheadFactor = 0.5
	// 16QAM peak halved again.
	want := QAM16.PeakDL() * 0.5
	if got := ch.DataRateDL(1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("rate = %v, want %v", got, want)
	}
	// Overhead only applies during coupled calls.
	ch.CallActive = false
	if got := ch.DataRateDL(1); got != QAM64.PeakDL() {
		t.Fatalf("idle rate = %v", got)
	}
	ch.CallActive = true
	ch.VoiceOverheadFactor = 2 // clamps to zero rate
	if got := ch.DataRateDL(1); got != 0 {
		t.Fatalf("over-penalized rate = %v, want 0", got)
	}
}

func TestDataRateLoadClamping(t *testing.T) {
	ch := NewSharedChannel()
	if ch.DataRateDL(-1) != 0 {
		t.Fatal("negative load not clamped")
	}
	if ch.DataRateDL(2) != QAM64.PeakDL() {
		t.Fatal("excess load not clamped")
	}
	if ch.DataRateUL(0.5) != QAM64.PeakUL()*0.5 {
		t.Fatal("UL rate wrong")
	}
}

func TestPathLossMonotone(t *testing.T) {
	p := DefaultPathLoss()
	last := math.Inf(1)
	for _, d := range []float64{0.1, 0.5, 1, 2, 4, 8} {
		r := p.RSSIAt(d, nil)
		if r >= last {
			t.Fatalf("RSSI not decreasing with distance: %v at %v", r, d)
		}
		last = r
	}
	// Distances are floored: no +inf at zero.
	if math.IsInf(p.RSSIAt(0, nil), 1) {
		t.Fatal("RSSI at distance 0 is infinite")
	}
}

// Figure 7's context: along Route-1 the measured RSSI stays in the
// good-signal range [-95, -51] dBm.
func TestRoute1RSSIRange(t *testing.T) {
	r := Route1()
	p := DefaultPathLoss()
	p.ShadowSigmaDB = 0
	for mp := 0.0; mp <= r.LengthMiles; mp += 0.1 {
		rssi := r.RSSIAt(mp, p, nil)
		if rssi < -95 || rssi > -45 {
			t.Fatalf("RSSI at %.1f mi = %.1f dBm, outside good-signal range", mp, rssi)
		}
	}
}

func TestRouteUpdateCrossings(t *testing.T) {
	r := Route1()
	if !r.CrossesUpdate(9.0, 10.0) {
		t.Fatal("9.5-mile boundary not detected")
	}
	if !r.CrossesUpdate(10.0, 9.0) {
		t.Fatal("reverse crossing not detected")
	}
	if r.CrossesUpdate(10.0, 13.0) {
		t.Fatal("false crossing")
	}
	if !r.CrossesUpdate(13.0, 13.5) {
		t.Fatal("13.2-mile boundary not detected")
	}
	if len(Route2().UpdateMileposts) == 0 || Route2().LengthMiles != 28.3 {
		t.Fatal("Route2 malformed")
	}
}

func TestServingBSDistance(t *testing.T) {
	r := Route1()
	if d := r.ServingBSDistance(0.5); d != 0 {
		t.Fatalf("distance at BS = %v", d)
	}
	if d := r.ServingBSDistance(1.5); math.Abs(d-1.0) > 1e-9 {
		t.Fatalf("midpoint distance = %v, want 1.0", d)
	}
}

func TestLoadFactorDiurnal(t *testing.T) {
	for h := 0; h < 24; h++ {
		f := LoadFactor(h)
		if f <= 0 || f > 1 {
			t.Fatalf("load factor at %d = %v", h, f)
		}
	}
	if LoadFactor(18) >= LoadFactor(0) {
		t.Fatal("evening peak should be more congested than midnight")
	}
	if LoadFactor(-1) != LoadFactor(23) {
		t.Fatal("negative hours not normalized")
	}
	if LoadFactor(25) != LoadFactor(1) {
		t.Fatal("overflow hours not normalized")
	}
}

func TestDropperRates(t *testing.T) {
	for _, rate := range []float64{0, 0.05, 0.5, 1} {
		d := NewDropper(rate, 1)
		drops := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if d.Drop() {
				drops++
			}
		}
		got := float64(drops) / n
		if math.Abs(got-rate) > 0.02 {
			t.Fatalf("rate %v: observed %v", rate, got)
		}
	}
	if NewDropper(-0.5, 1).Rate() != 0 || NewDropper(2, 1).Rate() != 1 {
		t.Fatal("rates not clamped")
	}
}

func TestDropperDeterministic(t *testing.T) {
	a, b := NewDropper(0.3, 42), NewDropper(0.3, 42)
	for i := 0; i < 1000; i++ {
		if a.Drop() != b.Drop() {
			t.Fatal("same seed diverged")
		}
	}
}

// Property: shadowing is zero-mean — the shadowed RSSI averages to the
// deterministic value.
func TestShadowingZeroMean(t *testing.T) {
	p := DefaultPathLoss()
	rng := rand.New(rand.NewSource(7))
	mean := 0.0
	const n = 5000
	for i := 0; i < n; i++ {
		mean += p.RSSIAt(2, rng)
	}
	mean /= n
	want := p.RSSIAt(2, nil)
	if math.Abs(mean-want) > 0.3 {
		t.Fatalf("shadowed mean %v vs deterministic %v", mean, want)
	}
}

// Property: the coupled in-call rate never exceeds the idle rate at any
// load.
func TestQuickCallNeverFaster(t *testing.T) {
	f := func(load float64, overhead float64) bool {
		load = math.Mod(math.Abs(load), 1)
		overhead = math.Mod(math.Abs(overhead), 1)
		idle := NewSharedChannel()
		busy := NewSharedChannel()
		busy.CallActive = true
		busy.VoiceOverheadFactor = overhead
		return busy.DataRateDL(load) <= idle.DataRateDL(load)+1e-12 &&
			busy.DataRateUL(load) <= idle.DataRateUL(load)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
