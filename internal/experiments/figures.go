package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cnetverifier/internal/names"
	"cnetverifier/internal/netemu"
	"cnetverifier/internal/radio"
	"cnetverifier/internal/stats"
	"cnetverifier/internal/trace"
	"cnetverifier/internal/types"
	"cnetverifier/internal/workload"
)

// Figure4Row is one operator's recovery-time distribution (Figure 4).
type Figure4Row struct {
	Operator string
	Summary  stats.Summary
	Samples  []float64
}

// Figure4RecoveryTime measures the S1 recovery time — from the
// tracking-area-update reject to the completed re-attach — over the
// requested number of runs per operator (the paper used >50). Each run
// drives the full S1 flow end-to-end in the emulator; the re-attach
// completion is operator-controlled (§5.1.3: "the re-attach is mainly
// controlled by operators"), so its processing delay is sampled from
// the calibrated profile and the total is measured from the trace.
func Figure4RecoveryTime(runs int, seed int64) []Figure4Row {
	var rows []Figure4Row
	for _, p := range netemu.Operators() {
		var samples []float64
		for i := 0; i < runs; i++ {
			d, ok := oneRecovery(p, seed+int64(i))
			if !ok {
				continue
			}
			samples = append(samples, d.Seconds())
		}
		rows = append(rows, Figure4Row{Operator: p.Name, Summary: stats.Summarize(samples), Samples: samples})
	}
	return rows
}

func oneRecovery(p netemu.OperatorProfile, seed int64) (time.Duration, bool) {
	w := netemu.NewWorld(seed)
	netemu.StandardStack(w, p, netemu.FixSet{})

	w.InjectAt(0, names.UEEMM, types.Message{Kind: types.MsgPowerOn})
	w.InjectAt(time.Second, names.UEGMM, types.Message{Kind: types.MsgInterSystemSwitchCommand})
	w.InjectAt(2*time.Second, names.UESM, types.Message{Kind: types.MsgDeactivatePDPRequest, Cause: types.CauseRegularDeactivation})
	w.InjectAt(3*time.Second, names.UEEMM, types.Message{Kind: types.MsgInterSystemCellReselect})
	w.Run()
	if w.Global(names.GDetachedByNet) != 1 {
		return 0, false
	}
	// Operator-side re-attach processing delay, then the re-attach.
	delay := p.Reattach.Sample(w.Sim.Rand())
	w.InjectAt(w.Sim.Now()+delay, names.UEEMM, types.Message{Kind: types.MsgPeriodicTimer})
	w.Run()

	recs := w.Collector.Records()
	d, ok := trace.Span(recs,
		trace.Filter{Contains: types.MsgTrackingAreaUpdateReject.String()},
		trace.Filter{Contains: types.MsgAttachComplete.String()})
	return d, ok
}

// RenderFigure4 renders the Figure 4 distributions.
func RenderFigure4(rows []Figure4Row) string {
	var b strings.Builder
	b.WriteString("Figure 4: recovery time from the detached event (S1)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s min=%.1fs median=%.1fs max=%.1fs (n=%d)\n",
			r.Operator, r.Summary.Min, r.Summary.Median, r.Summary.Max, r.Summary.N)
	}
	return b.String()
}

// Figure7Point is one outgoing call on the Route-1 drive.
type Figure7Point struct {
	// Milepost where the call was dialed.
	Milepost float64
	// SetupSec is the dial→connected time.
	SetupSec float64
	// RSSI at the dial position.
	RSSI float64
	// DuringUpdate reports the S4 condition: the dial landed inside a
	// location-area update.
	DuringUpdate bool
}

// Figure7CallSetup reproduces the Route-1 drive (§6.1.2): the caller
// repeatedly dials, and immediately dials again once the callee hangs
// up, while driving the 15-mile freeway route. Calls dialed while a
// location update runs pay the S4 head-of-line penalty (the paper
// measured 19.7 s vs the 11.4 s average).
func Figure7CallSetup(p netemu.OperatorProfile, speedMPH float64, seed int64) []Figure7Point {
	route := radio.Route1()
	pl := radio.DefaultPathLoss()
	rng := rand.New(rand.NewSource(seed))

	var pts []Figure7Point
	milesPerSec := speedMPH / 3600
	pos := 0.0
	// Pending update state: updates trigger at boundary crossings and
	// occupy MM for the LAU duration plus the WAIT-FOR-NET-CMD tail.
	updateBusyUntil := -1.0 // in route-time seconds
	now := 0.0

	for pos < route.LengthMiles {
		// Dial here.
		setup := p.CallSetupBase.Sample(rng).Seconds()
		during := now < updateBusyUntil
		if during {
			// S4: the request waits for the update to drain.
			setup += updateBusyUntil - now
		}
		pts = append(pts, Figure7Point{
			Milepost:     pos,
			SetupSec:     setup,
			RSSI:         route.RSSIAt(pos, pl, rng),
			DuringUpdate: during,
		})

		// Call holds ~45 s, then the next dial follows immediately.
		callDur := 45.0
		prev := pos
		now += setup + callDur
		pos += (setup + callDur) * milesPerSec
		// A boundary crossed during this segment starts an update that
		// blocks the next dial if still running.
		if route.CrossesUpdate(prev, pos) {
			lau := p.LAU.Sample(rng).Seconds() + p.WaitNetCmdExtra.Seconds()
			updateBusyUntil = now + lau
		}
	}
	return pts
}

// RenderFigure7 renders the call-setup series.
func RenderFigure7(pts []Figure7Point) string {
	var b strings.Builder
	b.WriteString("Figure 7: call setup time and RSSI along Route-1\n")
	fmt.Fprintf(&b, "%-10s %-12s %-10s %s\n", "mile", "setup (s)", "RSSI (dBm)", "during update")
	var base, blocked []float64
	for _, pt := range pts {
		fmt.Fprintf(&b, "%-10.1f %-12.1f %-10.1f %v\n", pt.Milepost, pt.SetupSec, pt.RSSI, pt.DuringUpdate)
		if pt.DuringUpdate {
			blocked = append(blocked, pt.SetupSec)
		} else {
			base = append(base, pt.SetupSec)
		}
	}
	fmt.Fprintf(&b, "average setup: %.1fs; during-update setup: %.1fs\n",
		stats.Mean(base), stats.Mean(blocked))
	return b.String()
}

// Figure8CDFs samples the per-operator location-area (CS) and
// routing-area (PS) update durations and returns their empirical CDFs,
// keyed "OP-I/LAU", "OP-I/RAU", "OP-II/LAU", "OP-II/RAU".
func Figure8CDFs(n int, seed int64) map[string]*stats.CDF {
	out := make(map[string]*stats.CDF)
	rng := rand.New(rand.NewSource(seed))
	for _, p := range netemu.Operators() {
		var lau, rau []float64
		for i := 0; i < n; i++ {
			lau = append(lau, p.LAU.Sample(rng).Seconds())
			rau = append(rau, p.RAU.Sample(rng).Seconds())
		}
		out[p.Name+"/LAU"] = stats.NewCDF(lau)
		out[p.Name+"/RAU"] = stats.NewCDF(rau)
	}
	return out
}

// RenderFigure8 renders quantiles of the four update-duration CDFs.
func RenderFigure8(cdfs map[string]*stats.CDF) string {
	var b strings.Builder
	b.WriteString("Figure 8: CDF of location/routing area update durations\n")
	for _, key := range []string{"OP-I/LAU", "OP-II/LAU", "OP-I/RAU", "OP-II/RAU"} {
		c, ok := cdfs[key]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-10s p25=%.1fs p50=%.1fs p75=%.1fs p90=%.1fs\n",
			key, c.Quantile(0.25), c.Quantile(0.5), c.Quantile(0.75), c.Quantile(0.9))
	}
	return b.String()
}

// Figure9Bucket is one time-of-day bucket of Figure 9.
type Figure9Bucket struct {
	Label    string
	HourLo   int
	WithCall stats.Summary
	NoCall   stats.Summary
}

// Figure9Buckets are the paper's 3-hour measurement windows (8am–2am).
func figure9Hours() [][2]int {
	return [][2]int{{8, 11}, {11, 14}, {14, 17}, {17, 20}, {20, 23}, {23, 2}}
}

// Figure9Rates measures the PS rate with and without a concurrent CS
// call per time-of-day bucket for one operator and direction.
func Figure9Rates(p netemu.OperatorProfile, uplink bool, runsPerBucket int, seed int64) []Figure9Bucket {
	rng := rand.New(rand.NewSource(seed))
	var out []Figure9Bucket
	for _, hh := range figure9Hours() {
		label := fmt.Sprintf("%d-%d", hh[0], hh[1])
		var with, without []float64
		for i := 0; i < runsPerBucket; i++ {
			load := workload.Jitter(radio.LoadFactor(hh[0]), 0.25, rng)

			idle := netemu.SharedChannelFor(p, netemu.FixSet{}, uplink)
			busy := netemu.SharedChannelFor(p, netemu.FixSet{}, uplink)
			busy.CallActive = true
			if uplink {
				without = append(without, idle.DataRateUL(load))
				with = append(with, busy.DataRateUL(load))
			} else {
				without = append(without, idle.DataRateDL(load))
				with = append(with, busy.DataRateDL(load))
			}
		}
		out = append(out, Figure9Bucket{
			Label:    label,
			HourLo:   hh[0],
			WithCall: stats.Summarize(with),
			NoCall:   stats.Summarize(without),
		})
	}
	return out
}

// Figure9Drop returns the mean rate drop (0..1) across buckets — the
// paper's headline percentages (DL 73.9% OP-I / 74.8% OP-II; UL 51.1%
// OP-I / 96.1% OP-II).
func Figure9Drop(buckets []Figure9Bucket) float64 {
	var with, without float64
	for _, bkt := range buckets {
		with += bkt.WithCall.Mean
		without += bkt.NoCall.Mean
	}
	if without == 0 {
		return 0
	}
	return 1 - with/without
}

// RenderFigure9 renders one operator+direction panel of Figure 9.
func RenderFigure9(p netemu.OperatorProfile, uplink bool, buckets []Figure9Bucket) string {
	dir := "downlink"
	if uplink {
		dir = "uplink"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 (%s, %s): speed with/without CS call\n", dir, p.Name)
	fmt.Fprintf(&b, "%-8s %-26s %s\n", "hours", "w/o call (min/med/max)", "w/ call (min/med/max)")
	for _, bkt := range buckets {
		fmt.Fprintf(&b, "%-8s %6.2f /%6.2f /%6.2f     %6.2f /%6.2f /%6.2f Mbps\n",
			bkt.Label,
			bkt.NoCall.Min, bkt.NoCall.Median, bkt.NoCall.Max,
			bkt.WithCall.Min, bkt.WithCall.Median, bkt.WithCall.Max)
	}
	fmt.Fprintf(&b, "mean rate drop during calls: %.1f%%\n", Figure9Drop(buckets)*100)
	return b.String()
}

// Figure10Trace reproduces the §6.2 example trace: a data session in
// 3G, a voice call starting (64QAM disabled) and ending (64QAM
// restored), as observed by the device-side trace collector.
func Figure10Trace(seed int64) []trace.Record {
	w := netemu.NewWorld(seed)
	netemu.StandardStack(w, netemu.OPI(), netemu.FixSet{})
	w.SetGlobal(names.GSys, int(types.Sys3G))

	w.InjectAt(0, names.UEMM, types.Message{Kind: types.MsgPowerOn})
	w.InjectAt(2*time.Second, names.UERRC3G, types.Message{Kind: types.MsgUserDataOn})
	w.InjectAt(10*time.Second, names.UECM, types.Message{Kind: types.MsgUserDialCall})
	w.RunUntil(40 * time.Second)
	w.Inject(names.UECM, types.Message{Kind: types.MsgUserHangUp})
	w.Run()

	return trace.Filter{Module: "RRC3G-UE"}.Apply(w.Collector.Records())
}

// RenderFigure10 renders the modulation trace.
func RenderFigure10(recs []trace.Record) string {
	var b strings.Builder
	b.WriteString("Figure 10: example protocol trace (modulation during CS call)\n")
	for _, r := range recs {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
