// Package experiments contains one driver per table and figure in the
// paper's evaluation, each regenerating the corresponding result from
// this repository's own mechanisms: the model checker for Table 1, the
// netemu emulator for the validation measurements (Figures 4, 7, 8,
// 10, Table 3, Table 6), the radio/workload models for the rate
// studies (Figure 9, Figure 13), the §8 fix implementations for the
// §9 prototype evaluation (Figure 12, §9.3), and the user-study
// simulator for Table 5.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"cnetverifier/internal/core"
	"cnetverifier/internal/names"
	"cnetverifier/internal/netemu"
	"cnetverifier/internal/stats"
	"cnetverifier/internal/types"
	"cnetverifier/internal/userstudy"
)

// Table1 runs the screening phase over every scoped world and returns
// the findings table with their checker verdicts: each defective world
// must violate its property, and each fixed world must be clean.
func Table1() (string, error) {
	defective, err := core.ScreenAll()
	if err != nil {
		return "", err
	}
	fixed, err := core.VerifyFixes()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Table 1: finding summary (screening-phase verdicts)\n")
	fmt.Fprintf(&b, "%-3s %-9s %-26s %-18s %s\n", "ID", "Type", "Dimension", "Property", "Problem")
	for _, f := range core.Findings() {
		dims := make([]string, len(f.Dimensions))
		for i, d := range f.Dimensions {
			dims[i] = d.String()
		}
		prop := f.Property
		if prop == "" {
			prop = "(validation-phase)"
		}
		fmt.Fprintf(&b, "%-3s %-9s %-26s %-18s %s\n", f.ID, f.Type, strings.Join(dims, "+"), prop, f.Problem)
	}
	b.WriteString("\nScreening results (defective configurations):\n")
	b.WriteString(core.Report(defective, false))
	b.WriteString("\nScreening results (§8 fixes enabled):\n")
	b.WriteString(core.Report(fixed, false))
	return b.String(), nil
}

// Table3Row is one row of Table 3 plus its emulator verdict: driving
// the S1 scenario with this deactivation cause must strand the device
// after the 3G→4G switch.
type Table3Row struct {
	types.PDPDeactCause
	// ReproducesS1 is the emulator verdict on the defective stack.
	ReproducesS1 bool
	// FixPrevents is the verdict with the §8 fixes enabled: the device
	// stays in service (either the context survives, or the bearer is
	// reactivated).
	FixPrevents bool
}

// Table3 drives the full S1 flow once per PDP deactivation cause, with
// the cause injected at the correct originator (device SM or SGSN SM).
func Table3(seed int64) []Table3Row {
	var rows []Table3Row
	for _, cause := range types.PDPDeactivationCauses() {
		run := func(fixes netemu.FixSet) *netemu.World {
			w := netemu.NewWorld(seed)
			netemu.StandardStack(w, netemu.OPII(), fixes)
			w.InjectAt(0, names.UEEMM, types.Message{Kind: types.MsgPowerOn})
			w.InjectAt(time.Second, names.UEGMM, types.Message{Kind: types.MsgInterSystemSwitchCommand})
			if cause.Originator&types.OriginDevice != 0 {
				w.InjectAt(2*time.Second, names.UESM, types.Message{Kind: types.MsgDeactivatePDPRequest, Cause: cause.Cause})
			} else {
				w.InjectAt(2*time.Second, names.SGSNSM, types.Message{Kind: types.MsgNetDetachOrder, Cause: cause.Cause})
			}
			w.InjectAt(3*time.Second, names.UEEMM, types.Message{Kind: types.MsgInterSystemCellReselect})
			w.Run()
			return w
		}
		broken := run(netemu.FixSet{})
		fixed := run(netemu.AllFixes())
		rows = append(rows, Table3Row{
			PDPDeactCause: cause,
			ReproducesS1:  broken.Global(names.GDetachedByNet) == 1,
			FixPrevents:   fixed.Global(names.GDetachedByNet) == 0,
		})
	}
	return rows
}

// RenderTable3 renders Table 3 with the emulator verdicts.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: PDP context deactivation causes (each validated to reproduce S1)\n")
	fmt.Fprintf(&b, "%-22s %-32s %-8s %s\n", "Originator", "Cause", "S1?", "fix prevents?")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-32s %-8v %v\n", r.Originator, r.Cause, r.ReproducesS1, r.FixPrevents)
	}
	return b.String()
}

// Table4Row is one scenario of Table 4 with its emulator verdict.
type Table4Row struct {
	No       int
	Scenario string
	Category string
	// Triggered is the emulator verdict: the scenario produced the
	// update signaling.
	Triggered bool
}

// Table4 verifies each update-triggering scenario against the protocol
// machines.
func Table4(seed int64) []Table4Row {
	newWorld := func() *netemu.World {
		w := netemu.NewWorld(seed)
		netemu.StandardStack(w, netemu.OPI(), netemu.FixSet{})
		return w
	}
	// Bring up a 3G-registered device (CS and PS).
	boot3G := func(w *netemu.World) {
		w.SetGlobal(names.GSys, int(types.Sys3G))
		w.Inject(names.UEMM, types.Message{Kind: types.MsgPowerOn})
		w.Inject(names.UEGMM, types.Message{Kind: types.MsgPowerOn})
		w.Run()
	}
	sentLAU := func(w *netemu.World, after int) bool {
		return countSignals(w, types.MsgLocationUpdateRequest) > after
	}
	sentRAU := func(w *netemu.World, after int) bool {
		return countSignals(w, types.MsgRoutingAreaUpdateRequest) > after
	}

	var rows []Table4Row

	// 1. Cross location area.
	w := newWorld()
	boot3G(w)
	lu := countSignals(w, types.MsgLocationUpdateRequest)
	w.Inject(names.UEMM, types.Message{Kind: types.MsgUserMove})
	w.Run()
	rows = append(rows, Table4Row{1, "Cross location area", "Location area updating", sentLAU(w, lu)})

	// 2. Periodic location update.
	w = newWorld()
	boot3G(w)
	lu = countSignals(w, types.MsgLocationUpdateRequest)
	w.Inject(names.UEMM, types.Message{Kind: types.MsgPeriodicTimer})
	w.Run()
	rows = append(rows, Table4Row{2, "Periodic location update", "Location area updating", sentLAU(w, lu)})

	// 3. CSFB call ends (the deferred update, §6.3).
	w = newWorld()
	boot3G(w)
	lu = countSignals(w, types.MsgLocationUpdateRequest)
	w.Inject(names.UEMM, types.Message{Kind: types.MsgCallRelease})
	w.Run()
	rows = append(rows, Table4Row{3, "CSFB call ends", "Location area updating", sentLAU(w, lu)})

	// 4. Cross routing area.
	w = newWorld()
	boot3G(w)
	ru := countSignals(w, types.MsgRoutingAreaUpdateRequest)
	w.Inject(names.UEGMM, types.Message{Kind: types.MsgUserMove})
	w.Run()
	rows = append(rows, Table4Row{4, "Cross routing area", "Routing area updating", sentRAU(w, ru)})

	// 5. Periodic routing update.
	w = newWorld()
	boot3G(w)
	ru = countSignals(w, types.MsgRoutingAreaUpdateRequest)
	w.Inject(names.UEGMM, types.Message{Kind: types.MsgPeriodicTimer})
	w.Run()
	rows = append(rows, Table4Row{5, "Periodic routing update", "Routing area updating", sentRAU(w, ru)})

	// 6. Switch to 3G system: both updates run.
	w = newWorld()
	w.Inject(names.UEEMM, types.Message{Kind: types.MsgPowerOn})
	w.Run()
	lu, ru = countSignals(w, types.MsgLocationUpdateRequest), countSignals(w, types.MsgRoutingAreaUpdateRequest)
	w.Inject(names.UERRC4G, types.Message{Kind: types.MsgNetSwitchOrder})
	w.Run()
	rows = append(rows, Table4Row{6, "Switch to 3G system", "Location and routing area updating",
		sentLAU(w, lu) && sentRAU(w, ru)})

	return rows
}

// countSignals counts delivered signaling messages of a kind in the
// world's trace.
func countSignals(w *netemu.World, kind types.MsgKind) int {
	n := 0
	for _, r := range w.Collector.Records() {
		if strings.Contains(r.Desc, kind.String()) {
			n++
		}
	}
	return n
}

// RenderTable4 renders Table 4 with the verdicts.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4: scenarios that trigger location/routing area updates\n")
	fmt.Fprintf(&b, "%-3s %-28s %-36s %s\n", "No", "Scenario", "Category", "triggered?")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-3d %-28s %-36s %v\n", r.No, r.Scenario, r.Category, r.Triggered)
	}
	return b.String()
}

// Table5 runs the §7 user-study simulation.
func Table5(seed int64) userstudy.Result {
	return userstudy.Run(userstudy.DefaultConfig(), seed)
}

// Table6Row is one operator's row of Table 6.
type Table6Row struct {
	Operator string
	Summary  stats.Summary
}

// Table6StuckIn3G measures the time spent in 3G after a CSFB call ends
// (Table 6), per operator. The mechanism is driven end-to-end in the
// emulator: under OP-I's release-with-redirect the device returns as
// soon as the network executes the redirect (latency sampled from the
// operator profile); under OP-II's reselection the device is stuck at
// DCH until the ongoing data session ends (its remaining lifetime
// sampled from the profile), after which the idle device reselects.
func Table6StuckIn3G(runs int, seed int64) []Table6Row {
	var rows []Table6Row
	for _, p := range netemu.Operators() {
		var samples []float64
		for i := 0; i < runs; i++ {
			d := stuckDuration(p, seed+int64(i))
			samples = append(samples, d.Seconds())
		}
		rows = append(rows, Table6Row{Operator: p.Name, Summary: stats.Summarize(samples)})
	}
	return rows
}

// stuckDuration runs one CSFB call with ongoing data and measures the
// 3G dwell after hang-up.
func stuckDuration(p netemu.OperatorProfile, seed int64) time.Duration {
	w := netemu.NewWorld(seed)
	netemu.StandardStack(w, p, netemu.FixSet{})
	w.SetGlobal(names.GSys, int(types.Sys4G))
	w.SetGlobal(names.GReg4G, 1)

	// Data on in 4G, then a CSFB call.
	w.InjectAt(0, names.UERRC4G, types.Message{Kind: types.MsgUserDataOn})
	w.InjectAt(time.Second, names.UECM, types.Message{Kind: types.MsgUserDialCall})
	w.RunUntil(20 * time.Second)
	// Hang up at t=20s.
	hangupAt := w.Sim.Now()
	w.Inject(names.UECM, types.Message{Kind: types.MsgUserHangUp})
	w.Run()

	if w.Global(names.GSys) == int(types.Sys4G) {
		// OP-I redirect: the mechanism returned immediately; the
		// wall-clock cost is the network's redirect processing
		// latency, sampled from the calibrated profile.
		return p.StuckReturn.Sample(w.Sim.Rand())
	}

	// OP-II reselection: stuck until the data session ends.
	remaining := p.StuckReturn.Sample(w.Sim.Rand())
	w.InjectAt(hangupAt+remaining, names.UERRC3G, types.Message{Kind: types.MsgUserDataOff})
	w.InjectAt(hangupAt+remaining, names.UERRC3G, types.Message{Kind: types.MsgInterSystemCellReselect})
	w.Run()
	if w.Global(names.GSys) != int(types.Sys4G) {
		// The mechanism failed to return even after the session ended;
		// report the full simulation horizon.
		return w.Sim.Now() - hangupAt
	}
	return w.Sim.Now() - hangupAt
}

// RenderTable6 renders Table 6.
func RenderTable6(rows []Table6Row) string {
	var b strings.Builder
	b.WriteString("Table 6: duration in 3G after the CSFB call ends\n")
	fmt.Fprintf(&b, "%-8s %-8s %-8s %-8s %-12s %s\n", "Operator", "Min", "Median", "Max", "90th pct", "Avg")
	sec := func(v float64) string { return fmt.Sprintf("%.1fs", v) }
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-8s %-8s %-8s %-12s %s\n",
			r.Operator, sec(r.Summary.Min), sec(r.Summary.Median), sec(r.Summary.Max),
			sec(r.Summary.P90), sec(r.Summary.Mean))
	}
	return b.String()
}
