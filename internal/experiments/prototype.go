package experiments

import (
	"fmt"
	"strings"
	"time"

	"cnetverifier/internal/fixes"
	"cnetverifier/internal/names"
	"cnetverifier/internal/netemu"
	"cnetverifier/internal/radio"
	"cnetverifier/internal/stats"
	"cnetverifier/internal/types"
)

// Figure12LeftPoint is one drop-rate point of Figure 12 (left): the
// number of detaches over 100 attach + tracking-area-update cycles.
type Figure12LeftPoint struct {
	DropRate float64
	Detaches int
	Cycles   int
	WithFix  bool
}

// Figure12DetachVsDrop runs the §9.1 experiment: the device attaches
// and performs a tracking-area update repeatedly while the base
// station drops EMM signals at the given rate. Without the solution,
// a lost Attach Complete leaves the MME inconsistent and the next TAU
// triggers an implicit detach (detaches grow linearly with the drop
// rate). With the reliable shim, lost frames are retransmitted and no
// detach occurs.
func Figure12DetachVsDrop(dropRates []float64, cycles int, withFix bool, seed int64) []Figure12LeftPoint {
	var out []Figure12LeftPoint
	for ri, rate := range dropRates {
		detaches := 0
		for c := 0; c < cycles; c++ {
			runSeed := seed + int64(ri*10000+c)
			if withFix {
				if !attachTAUCycleReliable(rate, runSeed) {
					detaches++
				}
			} else if !attachTAUCycleRaw(rate, runSeed) {
				detaches++
			}
		}
		out = append(out, Figure12LeftPoint{DropRate: rate, Detaches: detaches, Cycles: cycles, WithFix: withFix})
	}
	return out
}

// attachTAUCycleRaw runs one attach + TAU over a lossy link without
// the shim; it reports whether the device ended the cycle registered.
func attachTAUCycleRaw(dropRate float64, seed int64) bool {
	w := netemu.NewWorld(seed)
	w.Uplink.Dropper = radio.NewDropper(dropRate, seed)
	w.Downlink.Dropper = radio.NewDropper(dropRate, seed+1)
	netemu.StandardStack(w, netemu.OPI(), netemu.FixSet{})

	w.InjectAt(0, names.UEEMM, types.Message{Kind: types.MsgPowerOn})
	// NAS retransmission driver: periodic timers until the attach
	// settles, then a TAU.
	for i := 1; i <= 5; i++ {
		w.InjectAt(time.Duration(i)*time.Second, names.UEEMM, types.Message{Kind: types.MsgPeriodicTimer})
	}
	w.InjectAt(10*time.Second, names.UEEMM, types.Message{Kind: types.MsgPeriodicTimer}) // TAU when registered
	w.Run()
	return w.Global(names.GDetachedByNet) == 0 && w.Global(names.GReg4G) == 1
}

// attachTAUCycleReliable runs the same NAS dialogue with every EMM
// signal carried by the §8 reliable-transfer shim over the same lossy
// link; it reports whether all five dialogue messages (attach request,
// accept, complete, TAU request, TAU accept) were delivered exactly
// once, in order — in which case no detach can occur.
func attachTAUCycleReliable(dropRate float64, seed int64) bool {
	sim := netemu.NewSim(seed)
	up := radio.NewDropper(dropRate, seed)
	down := radio.NewDropper(dropRate, seed+1)

	var atMME, atUE []types.MsgKind
	pair := fixes.NewReliablePair(sim, fixes.ReliableConfig{RTO: 150 * time.Millisecond},
		30*time.Millisecond, 10*time.Millisecond,
		up.Drop, down.Drop,
		func(m types.Message) { atUE = append(atUE, m.Kind) },
		func(m types.Message) { atMME = append(atMME, m.Kind) })

	// The §5.2 dialogue, device-driven.
	pair.A.Send(types.Message{Kind: types.MsgAttachRequest})
	sim.Run()
	pair.B.Send(types.Message{Kind: types.MsgAttachAccept})
	sim.Run()
	pair.A.Send(types.Message{Kind: types.MsgAttachComplete})
	sim.Run()
	pair.A.Send(types.Message{Kind: types.MsgTrackingAreaUpdateRequest})
	sim.Run()
	pair.B.Send(types.Message{Kind: types.MsgTrackingAreaUpdateAccept})
	sim.Run()

	wantMME := []types.MsgKind{types.MsgAttachRequest, types.MsgAttachComplete, types.MsgTrackingAreaUpdateRequest}
	wantUE := []types.MsgKind{types.MsgAttachAccept, types.MsgTrackingAreaUpdateAccept}
	return kindsEqual(atMME, wantMME) && kindsEqual(atUE, wantUE) &&
		pair.A.Failed == 0 && pair.B.Failed == 0
}

func kindsEqual(a, b []types.MsgKind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RenderFigure12Left renders the detach-vs-drop-rate series.
func RenderFigure12Left(without, with []Figure12LeftPoint) string {
	var b strings.Builder
	b.WriteString("Figure 12 (left): detaches over cycles vs EMM signal drop rate\n")
	fmt.Fprintf(&b, "%-10s %-14s %s\n", "drop rate", "w/o solution", "w/ solution")
	for i := range without {
		withN := 0
		if i < len(with) {
			withN = with[i].Detaches
		}
		fmt.Fprintf(&b, "%-10s %-14d %d\n", fmt.Sprintf("%.0f%%", without[i].DropRate*100), without[i].Detaches, withN)
	}
	return b.String()
}

// Figure12RightPoint is one location-update-time point of Figure 12
// (right): the call-service delay it induces.
type Figure12RightPoint struct {
	UpdateTime time.Duration
	CallDelay  time.Duration
	WithFix    bool
}

// Figure12CallDelay runs the §9.1 second experiment: MM performs a
// location update with the given processing time while CM immediately
// submits a call request. Without the solution the call waits for the
// update (delay grows linearly); with the parallel threads it is
// served concurrently (zero delay).
func Figure12CallDelay(updateTimes []time.Duration, withFix bool) []Figure12RightPoint {
	var out []Figure12RightPoint
	for _, ut := range updateTimes {
		sim := netemu.NewSim(1)
		// The §9.1 prototype measures the pure queueing delay (no
		// WAIT-FOR-NET-CMD tail in Figure 12-right).
		sched := fixes.NewParallelScheduler(sim, withFix, 0)
		sched.SubmitUpdate(ut)
		var delay time.Duration
		sched.SubmitService(func(d time.Duration) { delay = d })
		sim.Run()
		out = append(out, Figure12RightPoint{UpdateTime: ut, CallDelay: delay, WithFix: withFix})
	}
	return out
}

// RenderFigure12Right renders the call-delay series.
func RenderFigure12Right(without, with []Figure12RightPoint) string {
	var b strings.Builder
	b.WriteString("Figure 12 (right): call service delay vs location update time\n")
	fmt.Fprintf(&b, "%-14s %-14s %s\n", "update time", "w/o solution", "w/ solution")
	for i := range without {
		withD := time.Duration(0)
		if i < len(with) {
			withD = with[i].CallDelay
		}
		fmt.Fprintf(&b, "%-14v %-14v %v\n", without[i].UpdateTime, without[i].CallDelay, withD)
	}
	return b.String()
}

// Figure13Row is one bar group of Figure 13.
type Figure13Row struct {
	Plan   string
	Uplink bool
	Voice  radio.Mbps
	Data   radio.Mbps
}

// Figure13Rates runs the §9.2 experiment: voice + data throughput with
// the coupled shared channel vs the decoupled per-domain channels.
func Figure13Rates() []Figure13Row {
	var rows []Figure13Row
	for _, uplink := range []bool{false, true} {
		for _, dec := range []bool{false, true} {
			plan := fixes.NewChannelPlan(dec)
			// §9.2's prototype coupling overhead.
			v, d := plan.Rates(1.0, 0.2, uplink)
			rows = append(rows, Figure13Row{Plan: plan.String(), Uplink: uplink, Voice: v, Data: d})
		}
	}
	return rows
}

// RenderFigure13 renders the rate comparison.
func RenderFigure13(rows []Figure13Row) string {
	var b strings.Builder
	b.WriteString("Figure 13: voice/data rates, coupled vs decoupled channels\n")
	fmt.Fprintf(&b, "%-10s %-30s %-12s %s\n", "direction", "plan", "voice", "data")
	for _, r := range rows {
		dir := "downlink"
		if r.Uplink {
			dir = "uplink"
		}
		fmt.Fprintf(&b, "%-10s %-30s %-12.2f %.2f Mbps\n", dir, r.Plan, r.Voice, r.Data)
	}
	return b.String()
}

// Section93Result summarizes the §9.3 cross-system coordination
// evaluation.
type Section93Result struct {
	// FixedSwitch and BrokenSwitch summarize the 3G→4G switch latency
	// without a PDP context, with and without the remedy (§9.3: with
	// the remedy 0.1–0.4 s, median 0.27 s; without 0.3–1.3 s, median
	// 0.9 s).
	FixedSwitch, BrokenSwitch stats.Summary
	// AnyFixedDetached reports whether any fixed run detached (must be
	// false).
	AnyFixedDetached bool
	// LURecovered reports the second remedy's verdict.
	LURecovered bool
}

// Section93CrossSystem runs both §9.3 remedies.
func Section93CrossSystem(runs int, seed int64) Section93Result {
	var res Section93Result
	var fixed, broken []float64
	// One-way signaling latency calibrated so the fixed switch lands in
	// the paper's 0.1–0.4 s band (§9.3: median 0.27 s).
	sig := 60 * time.Millisecond
	for i := 0; i < runs; i++ {
		s := seed + int64(i)
		// Re-attach processing: 0.3–1.3 s in the paper's prototype.
		reattach := netemu.Uniform{Min: 150 * time.Millisecond, Max: 1100 * time.Millisecond}.
			Sample(netemu.NewSim(s).Rand())
		f := fixes.MeasureSwitchNoPDP(true, s, sig, reattach)
		if f.Detached {
			res.AnyFixedDetached = true
		}
		fixed = append(fixed, f.Latency.Seconds())
		b := fixes.MeasureSwitchNoPDP(false, s, sig, reattach)
		broken = append(broken, b.Latency.Seconds())
	}
	res.FixedSwitch = stats.Summarize(fixed)
	res.BrokenSwitch = stats.Summarize(broken)
	attached, recovered := fixes.RecoverLUFailure(true, seed)
	res.LURecovered = attached && recovered
	return res
}

// RenderSection93 renders the §9.3 results.
func RenderSection93(r Section93Result) string {
	var b strings.Builder
	b.WriteString("§9.3: cross-system coordination\n")
	fmt.Fprintf(&b, "switch w/ remedy:  min=%.2fs median=%.2fs max=%.2fs (detached: %v)\n",
		r.FixedSwitch.Min, r.FixedSwitch.Median, r.FixedSwitch.Max, r.AnyFixedDetached)
	fmt.Fprintf(&b, "switch w/o remedy: min=%.2fs median=%.2fs max=%.2fs\n",
		r.BrokenSwitch.Min, r.BrokenSwitch.Median, r.BrokenSwitch.Max)
	fmt.Fprintf(&b, "3G LU failure recovered by MME without detach: %v\n", r.LURecovered)
	return b.String()
}
