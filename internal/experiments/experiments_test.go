package experiments

import (
	"strings"
	"testing"
	"time"

	"cnetverifier/internal/netemu"
	"cnetverifier/internal/trace"
)

func TestTable1(t *testing.T) {
	out, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"S1", "S2", "S3", "S4", "S5", "S6", "VIOLATED", "PacketService_OK"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
	// The fixed section must contain no violations. It follows the
	// second header.
	fixedPart := out[strings.Index(out, "fixes enabled"):]
	if strings.Contains(fixedPart, "VIOLATED") {
		t.Fatalf("fixed worlds still violate:\n%s", fixedPart)
	}
}

// Every Table 3 deactivation cause must reproduce S1 on the defective
// stack, and the fixes must prevent it.
func TestTable3AllCausesReproduceS1(t *testing.T) {
	rows := Table3(1)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if !r.ReproducesS1 {
			t.Errorf("cause %q did not reproduce S1", r.Cause)
		}
		if !r.FixPrevents {
			t.Errorf("cause %q not prevented by fixes", r.Cause)
		}
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "QoS not accepted") {
		t.Fatalf("render missing cause:\n%s", out)
	}
}

func TestTable4AllTriggersFire(t *testing.T) {
	rows := Table4(1)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if !r.Triggered {
			t.Errorf("scenario %d (%s) did not trigger its update", r.No, r.Scenario)
		}
	}
	if out := RenderTable4(rows); !strings.Contains(out, "Periodic location update") {
		t.Fatalf("render missing scenario:\n%s", out)
	}
}

func TestTable6Shape(t *testing.T) {
	rows := Table6StuckIn3G(60, 1)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var opi, opii Table6Row
	for _, r := range rows {
		switch r.Operator {
		case "OP-I":
			opi = r
		case "OP-II":
			opii = r
		}
	}
	// Table 6 shape: OP-II users are stuck much longer than OP-I's.
	if opii.Summary.Median <= opi.Summary.Median*3 {
		t.Fatalf("OP-II median (%.1f) should dwarf OP-I (%.1f)", opii.Summary.Median, opi.Summary.Median)
	}
	// OP-I returns within seconds (paper median 2.3 s).
	if opi.Summary.Median > 10 {
		t.Fatalf("OP-I median = %.1fs, want a few seconds", opi.Summary.Median)
	}
	// OP-II is stuck for tens of seconds (paper median 24.3 s).
	if opii.Summary.Median < 14 || opii.Summary.Median > 60 {
		t.Fatalf("OP-II median = %.1fs, want ≈24s", opii.Summary.Median)
	}
	if out := RenderTable6(rows); !strings.Contains(out, "OP-II") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFigure4Shape(t *testing.T) {
	rows := Figure4RecoveryTime(50, 1)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Summary.N < 45 {
			t.Fatalf("%s: only %d samples", r.Operator, r.Summary.N)
		}
		// Figure 4's range: 2.4–24.7 s overall.
		if r.Summary.Min < 2.0 || r.Summary.Max > 30 {
			t.Fatalf("%s: range [%.1f, %.1f] outside Figure 4's", r.Operator, r.Summary.Min, r.Summary.Max)
		}
	}
	if out := RenderFigure4(rows); !strings.Contains(out, "recovery") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFigure7Shape(t *testing.T) {
	pts := Figure7CallSetup(netemu.OPI(), 60, 3)
	if len(pts) < 10 {
		t.Fatalf("only %d calls on the route", len(pts))
	}
	var base, blocked []float64
	for _, p := range pts {
		// RSSI stays in the paper's good-signal range.
		if p.RSSI < -95 || p.RSSI > -40 {
			t.Fatalf("RSSI %.1f out of range at mile %.1f", p.RSSI, p.Milepost)
		}
		if p.DuringUpdate {
			blocked = append(blocked, p.SetupSec)
		} else {
			base = append(base, p.SetupSec)
		}
	}
	if len(blocked) == 0 {
		t.Fatal("no call hit a location update — Figure 7's spike missing")
	}
	meanBase, meanBlocked := mean(base), mean(blocked)
	// ≈11.4 s average; ≈19.7 s during updates.
	if meanBase < 10 || meanBase > 13 {
		t.Fatalf("base setup = %.1fs, want ≈11.4", meanBase)
	}
	if meanBlocked <= meanBase+2 {
		t.Fatalf("blocked setup = %.1fs vs base %.1fs: spike too small", meanBlocked, meanBase)
	}
	if out := RenderFigure7(pts); !strings.Contains(out, "Route-1") {
		t.Fatalf("render:\n%s", out)
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestFigure8Shape(t *testing.T) {
	cdfs := Figure8CDFs(400, 1)
	for _, key := range []string{"OP-I/LAU", "OP-II/LAU", "OP-I/RAU", "OP-II/RAU"} {
		if cdfs[key] == nil || cdfs[key].N() != 400 {
			t.Fatalf("missing CDF %s", key)
		}
	}
	// Figure 8a: all OP-I LAUs exceed 2 s; OP-II's are faster.
	if got := cdfs["OP-I/LAU"].At(2.0); got > 0.01 {
		t.Fatalf("OP-I LAU At(2s) = %v, want ≈0", got)
	}
	if cdfs["OP-II/LAU"].Quantile(0.5) >= cdfs["OP-I/LAU"].Quantile(0.5) {
		t.Fatal("OP-II LAUs should be faster than OP-I's")
	}
	// Figure 8b: ~75% of OP-I RAUs within 3.6 s; 90% of OP-II's within 4.1 s.
	if got := cdfs["OP-I/RAU"].At(3.6); got < 0.65 || got > 0.85 {
		t.Fatalf("OP-I RAU At(3.6) = %v, want ≈0.75", got)
	}
	if got := cdfs["OP-II/RAU"].At(4.1); got < 0.85 || got > 0.95 {
		t.Fatalf("OP-II RAU At(4.1) = %v, want ≈0.9", got)
	}
	if out := RenderFigure8(cdfs); !strings.Contains(out, "OP-II/RAU") {
		t.Fatalf("render:\n%s", out)
	}
}

// Figure 9's headline drops per operator and direction.
func TestFigure9Drops(t *testing.T) {
	cases := []struct {
		op       netemu.OperatorProfile
		uplink   bool
		want     float64
		tolerant float64
	}{
		{netemu.OPI(), false, 0.739, 0.05},
		{netemu.OPII(), false, 0.748, 0.05},
		{netemu.OPI(), true, 0.511, 0.05},
		{netemu.OPII(), true, 0.961, 0.03},
	}
	for _, c := range cases {
		buckets := Figure9Rates(c.op, c.uplink, 40, 7)
		if len(buckets) != 6 {
			t.Fatalf("buckets = %d, want 6", len(buckets))
		}
		drop := Figure9Drop(buckets)
		if drop < c.want-c.tolerant || drop > c.want+c.tolerant {
			t.Errorf("%s uplink=%v: drop = %.3f, want %.3f ± %.3f",
				c.op.Name, c.uplink, drop, c.want, c.tolerant)
		}
		// Rates with a call never exceed rates without.
		for _, bkt := range buckets {
			if bkt.WithCall.Max > bkt.NoCall.Max+1e-9 {
				t.Errorf("bucket %s: with-call max exceeds no-call", bkt.Label)
			}
		}
	}
	out := RenderFigure9(netemu.OPI(), false, Figure9Rates(netemu.OPI(), false, 10, 1))
	if !strings.Contains(out, "rate drop") {
		t.Fatalf("render:\n%s", out)
	}
}

// Figure 10: the trace shows the modulation downgrade and restoration.
func TestFigure10Trace(t *testing.T) {
	recs := Figure10Trace(1)
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}
	if _, ok := (trace.Filter{Contains: "64QAM disabled"}).FirstMatch(recs); !ok {
		t.Fatalf("downgrade not in trace:\n%s", RenderFigure10(recs))
	}
	if out := RenderFigure10(recs); !strings.Contains(out, "Figure 10") {
		t.Fatal("render header missing")
	}
}

// Figure 12 left: linear growth without the fix, zero with it.
func TestFigure12Left(t *testing.T) {
	rates := []float64{0, 0.02, 0.05, 0.10}
	const cycles = 60
	without := Figure12DetachVsDrop(rates, cycles, false, 1)
	with := Figure12DetachVsDrop(rates, cycles, true, 1)

	if without[0].Detaches != 0 {
		t.Fatalf("detaches at 0%% drop without fix = %d", without[0].Detaches)
	}
	if without[len(without)-1].Detaches == 0 {
		t.Fatal("no detaches at 10% drop without fix")
	}
	// Roughly monotone growth.
	if without[3].Detaches < without[1].Detaches {
		t.Fatalf("detaches not growing: %v", without)
	}
	for _, p := range with {
		if p.Detaches != 0 {
			t.Fatalf("detaches with fix at %.0f%% = %d, want 0", p.DropRate*100, p.Detaches)
		}
	}
	if out := RenderFigure12Left(without, with); !strings.Contains(out, "drop rate") {
		t.Fatalf("render:\n%s", out)
	}
}

// Figure 12 right: delay ≈ update time without the fix, 0 with it.
func TestFigure12Right(t *testing.T) {
	times := []time.Duration{0, time.Second, 3 * time.Second, 6 * time.Second}
	without := Figure12CallDelay(times, false)
	with := Figure12CallDelay(times, true)
	for i, ut := range times {
		if without[i].CallDelay != ut {
			t.Fatalf("w/o fix at %v: delay = %v", ut, without[i].CallDelay)
		}
		if with[i].CallDelay != 0 {
			t.Fatalf("w/ fix at %v: delay = %v", ut, with[i].CallDelay)
		}
	}
	if out := RenderFigure12Right(without, with); !strings.Contains(out, "update time") {
		t.Fatalf("render:\n%s", out)
	}
}

// Figure 13: decoupling improves data ≈1.6× in both directions.
func TestFigure13(t *testing.T) {
	rows := Figure13Rates()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]Figure13Row{}
	for _, r := range rows {
		key := "dl"
		if r.Uplink {
			key = "ul"
		}
		if strings.Contains(r.Plan, "decoupled") {
			key += "/dec"
		} else {
			key += "/coup"
		}
		byKey[key] = r
	}
	for _, dir := range []string{"dl", "ul"} {
		gain := byKey[dir+"/dec"].Data / byKey[dir+"/coup"].Data
		if gain < 1.3 || gain > 3.0 {
			t.Fatalf("%s data gain = %.2f, want ≈1.6–2.4", dir, gain)
		}
		if byKey[dir+"/dec"].Voice <= 0 {
			t.Fatalf("%s voice starved", dir)
		}
	}
	if out := RenderFigure13(rows); !strings.Contains(out, "decoupled") {
		t.Fatalf("render:\n%s", out)
	}
}

// §9.3: fixed switch is fast and detach-free; broken one is slower.
func TestSection93(t *testing.T) {
	r := Section93CrossSystem(20, 1)
	if r.AnyFixedDetached {
		t.Fatal("fixed runs detached")
	}
	if !r.LURecovered {
		t.Fatal("LU failure not recovered")
	}
	// §9.3: remedy 0.1–0.4 s vs 0.3–1.3 s without.
	if r.FixedSwitch.Median > 0.5 {
		t.Fatalf("fixed median = %.2fs, want ≤0.4", r.FixedSwitch.Median)
	}
	if r.BrokenSwitch.Median <= r.FixedSwitch.Median {
		t.Fatalf("broken median (%.2f) should exceed fixed (%.2f)",
			r.BrokenSwitch.Median, r.FixedSwitch.Median)
	}
	if out := RenderSection93(r); !strings.Contains(out, "remedy") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTable5Smoke(t *testing.T) {
	r := Table5(2)
	if r.CSFBCalls == 0 {
		t.Fatal("no CSFB calls simulated")
	}
}

// §7's S5 accounting: ≈67 s average calls, ≈368 KB average affected
// volume, most calls under 550 KB, a few over 4 MB.
func TestS5AffectedVolumes(t *testing.T) {
	s := S5AffectedVolumes(113, 7)
	if s.Calls != 113 {
		t.Fatalf("calls = %d", s.Calls)
	}
	if s.AvgCallSec < 50 || s.AvgCallSec > 85 {
		t.Fatalf("avg call = %.0fs, want ≈67", s.AvgCallSec)
	}
	if s.AvgAffectedKB < 150 || s.AvgAffectedKB > 700 {
		t.Fatalf("avg affected = %.0f KB, want ≈368", s.AvgAffectedKB)
	}
	if s.MaxMB > 18.6 {
		t.Fatalf("max = %.1f MB, want ≤18.5", s.MaxMB)
	}
	frac := float64(s.Under550KB) / float64(s.Calls)
	if frac < 0.90 {
		t.Fatalf("under-550KB fraction = %.2f, want ≈0.96", frac)
	}
	if s.Over4MB < 1 || s.Over4MB > 12 {
		t.Fatalf("over-4MB calls = %d, want a few", s.Over4MB)
	}
	if s.String() == "" {
		t.Fatal("empty string")
	}
	// Zero calls: no division by zero.
	if z := S5AffectedVolumes(0, 1); z.AvgCallSec != 0 {
		t.Fatalf("zero-call stats = %+v", z)
	}
}

// §7's inflation remark: degradation grows with the incoming CSFB call
// rate on the defective stack and is eliminated by the fixes.
func TestInflationSweep(t *testing.T) {
	rates := []float64{1, 10, 60}
	without := InflationSweep(rates, 24*time.Hour, false, 1)
	with := InflationSweep(rates, 24*time.Hour, true, 1)
	if len(without) != 3 || len(with) != 3 {
		t.Fatal("sweep sizes wrong")
	}
	// Monotone growth without fixes.
	for i := 1; i < len(without); i++ {
		if without[i].DegradedFraction < without[i-1].DegradedFraction {
			t.Fatalf("degradation not monotone: %+v", without)
		}
	}
	// At one call/hour degradation is small; at 60/hour it is severe
	// (OP-II median stuck ≈24 s per call → ~40% of each hour).
	if without[0].DegradedFraction > 0.05 {
		t.Fatalf("baseline degradation = %.3f, want small", without[0].DegradedFraction)
	}
	if without[2].DegradedFraction < 0.25 {
		t.Fatalf("inflated degradation = %.3f, want severe", without[2].DegradedFraction)
	}
	for _, p := range with {
		if p.DegradedFraction != 0 || p.OutOfServiceFraction != 0 {
			t.Fatalf("fixed stack degraded: %+v", p)
		}
	}
	out := RenderInflation(without, with)
	if !strings.Contains(out, "calls/hour") {
		t.Fatalf("render:\n%s", out)
	}
}
