package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"cnetverifier/internal/core"
	"cnetverifier/internal/names"
)

// PerfRun is one screening throughput measurement: a scoped world
// explored to fixpoint at a given worker count, with the allocation
// profile of the whole run.
type PerfRun struct {
	World        string  `json:"world"`
	Workers      int     `json:"workers"`
	POR          bool    `json:"por,omitempty"`
	States       int     `json:"states"`
	NsPerOp      int64   `json:"ns_per_op"`
	StatesPerSec float64 `json:"states_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
}

// PerfReport is the BENCH_screen.json payload.
type PerfReport struct {
	Label string    `json:"label"`
	Runs  []PerfRun `json:"runs"`
}

func perfWorlds() []struct {
	name string
	s    core.Scoped
} {
	return []struct {
		name string
		s    core.Scoped
	}{
		{"s1", core.S1World(false)},
		{"s2", core.S2World(false)},
		{"s3", core.S3World(false, names.SwitchReselect)},
		{"s4cs", core.S4CSWorld(false)},
		{"s4ps", core.S4PSWorld(false)},
		{"s6", core.S6World(false)},
	}
}

// PerfScreen benchmarks screening of every scoped world at the given
// worker counts via testing.Benchmark, reporting states/sec and the
// allocation profile per exploration.
func PerfScreen(workerCounts []int) ([]PerfRun, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 4, 8}
	}
	var out []PerfRun
	for _, pw := range perfWorlds() {
		for _, workers := range workerCounts {
			s := pw.s
			opt := s.Options
			opt.Workers = workers
			states := 0
			var benchErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := core.Screen(s, opt)
					if err != nil {
						benchErr = err
						b.Fatal(err)
					}
					states = res.Result.States
				}
			})
			if benchErr != nil {
				return nil, fmt.Errorf("perf: %s workers=%d: %w", pw.name, workers, benchErr)
			}
			run := PerfRun{
				World:       pw.name,
				Workers:     workers,
				States:      states,
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			if sec := r.T.Seconds(); sec > 0 {
				run.StatesPerSec = float64(states) * float64(r.N) / sec
			}
			out = append(out, run)
		}
	}
	return out, nil
}

// PerfPOR benchmarks the partial-order reduction on the 3-UE world:
// the same screening run with check.Options.POR off and on. The state
// counts are the acceptance numbers of the cluster decomposition (the
// full product versus the sum of the per-cluster projections) and the
// rows land in BENCH_screen.json next to the throughput runs.
func PerfPOR() ([]PerfRun, error) {
	var out []PerfRun
	for _, por := range []bool{false, true} {
		s := core.MultiUEWorld(3, false)
		opt := s.Options
		opt.POR = por
		states := 0
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Screen(s, opt)
				if err != nil {
					benchErr = err
					b.Fatal(err)
				}
				states = res.Result.States
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("perf: multiue por=%v: %w", por, benchErr)
		}
		run := PerfRun{
			World:       "multiue",
			Workers:     1,
			POR:         por,
			States:      states,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if sec := r.T.Seconds(); sec > 0 {
			run.StatesPerSec = float64(states) * float64(r.N) / sec
		}
		out = append(out, run)
	}
	return out, nil
}

// RenderPerfJSON serializes a perf report for BENCH_screen.json.
func RenderPerfJSON(label string, runs []PerfRun) (string, error) {
	b, err := json.MarshalIndent(PerfReport{Label: label, Runs: runs}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// RenderPerfTable renders perf runs as a plain-text table.
func RenderPerfTable(runs []PerfRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %9s %14s %12s %12s\n",
		"world", "workers", "states", "states/sec", "allocs/op", "B/op")
	for _, r := range runs {
		fmt.Fprintf(&b, "%-6s %8d %9d %14.0f %12d %12d\n",
			r.World, r.Workers, r.States, r.StatesPerSec, r.AllocsPerOp, r.BytesPerOp)
	}
	return b.String()
}
