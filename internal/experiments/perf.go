package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"cnetverifier/internal/core"
	"cnetverifier/internal/names"
)

// PerfRun is one screening throughput measurement: a scoped world
// explored to fixpoint at a given worker count, with the allocation
// profile of the whole run.
type PerfRun struct {
	World        string  `json:"world"`
	Workers      int     `json:"workers"`
	POR          bool    `json:"por,omitempty"`
	Sym          bool    `json:"sym,omitempty"`
	Compact      bool    `json:"compact,omitempty"`
	MaxStates    int     `json:"max_states,omitempty"`
	Truncated    bool    `json:"truncated,omitempty"`
	Omission     float64 `json:"omission,omitempty"`
	States       int     `json:"states"`
	NsPerOp      int64   `json:"ns_per_op"`
	StatesPerSec float64 `json:"states_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
}

// PerfReport is the BENCH_screen.json payload.
type PerfReport struct {
	Label string    `json:"label"`
	Runs  []PerfRun `json:"runs"`
}

func perfWorlds() []struct {
	name string
	s    core.Scoped
} {
	return []struct {
		name string
		s    core.Scoped
	}{
		{"s1", core.S1World(false)},
		{"s2", core.S2World(false)},
		{"s3", core.S3World(false, names.SwitchReselect)},
		{"s4cs", core.S4CSWorld(false)},
		{"s4ps", core.S4PSWorld(false)},
		{"s6", core.S6World(false)},
	}
}

// PerfScreen benchmarks screening of every scoped world at the given
// worker counts via testing.Benchmark, reporting states/sec and the
// allocation profile per exploration.
func PerfScreen(workerCounts []int) ([]PerfRun, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 4, 8}
	}
	var out []PerfRun
	for _, pw := range perfWorlds() {
		for _, workers := range workerCounts {
			s := pw.s
			opt := s.Options
			opt.Workers = workers
			states := 0
			var benchErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := core.Screen(s, opt)
					if err != nil {
						benchErr = err
						b.Fatal(err)
					}
					states = res.Result.States
				}
			})
			if benchErr != nil {
				return nil, fmt.Errorf("perf: %s workers=%d: %w", pw.name, workers, benchErr)
			}
			run := PerfRun{
				World:       pw.name,
				Workers:     workers,
				States:      states,
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			if sec := r.T.Seconds(); sec > 0 {
				run.StatesPerSec = float64(states) * float64(r.N) / sec
			}
			out = append(out, run)
		}
	}
	return out, nil
}

// PerfPOR benchmarks the partial-order reduction on the 3-UE world:
// the same screening run with check.Options.POR off and on. The state
// counts are the acceptance numbers of the cluster decomposition (the
// full product versus the sum of the per-cluster projections) and the
// rows land in BENCH_screen.json next to the throughput runs.
func PerfPOR() ([]PerfRun, error) {
	var out []PerfRun
	for _, por := range []bool{false, true} {
		s := core.MultiUEWorld(3, false)
		opt := s.Options
		opt.POR = por
		states := 0
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Screen(s, opt)
				if err != nil {
					benchErr = err
					b.Fatal(err)
				}
				states = res.Result.States
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("perf: multiue por=%v: %w", por, benchErr)
		}
		run := PerfRun{
			World:       "multiue",
			Workers:     1,
			POR:         por,
			States:      states,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if sec := r.T.Seconds(); sec > 0 {
			run.StatesPerSec = float64(states) * float64(r.N) / sec
		}
		out = append(out, run)
	}
	return out, nil
}

// PerfSym benchmarks the symmetry reduction on the shared-core 4-UE
// world (core.MultiUEWorldShared — one MME/HSS context block couples
// every stack, so the effect analysis sees a single cluster and POR
// degenerates): the same screening run over the flag square {POR off/on}
// x {Symmetry off/on}. The state counts are the acceptance numbers of
// the canonicalization (the full 4-UE product versus its quotient under
// UE permutations, ~4! smaller) and the rows land in BENCH_screen.json
// under the labels "sym" and "por+sym". MaxStates is raised above the
// world default: the plain product (34^4 states) must be enumerated in
// full for the ratio to mean anything.
func PerfSym(por bool) ([]PerfRun, error) {
	var out []PerfRun
	for _, sym := range []bool{false, true} {
		s := core.MultiUEWorldShared(4, false)
		opt := s.Options
		opt.POR = por
		opt.Symmetry = sym
		opt.MaxStates = 1 << 21
		states := 0
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Screen(s, opt)
				if err != nil {
					benchErr = err
					b.Fatal(err)
				}
				states = res.Result.States
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("perf: multiue-shared4 por=%v sym=%v: %w", por, sym, benchErr)
		}
		run := PerfRun{
			World:       "multiue-shared4",
			Workers:     1,
			POR:         por,
			Sym:         sym,
			States:      states,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if sec := r.T.Seconds(); sec > 0 {
			run.StatesPerSec = float64(states) * float64(r.N) / sec
		}
		out = append(out, run)
	}
	return out, nil
}

// RenderPerfJSON serializes a perf report for BENCH_screen.json.
func RenderPerfJSON(label string, runs []PerfRun) (string, error) {
	b, err := json.MarshalIndent(PerfReport{Label: label, Runs: runs}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// RenderPerfTable renders perf runs as a plain-text table.
func RenderPerfTable(runs []PerfRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %8s %14s %9s %14s %12s %12s\n",
		"world", "workers", "flags", "states", "states/sec", "allocs/op", "B/op")
	for _, r := range runs {
		var parts []string
		if r.POR {
			parts = append(parts, "por")
		}
		if r.Sym {
			parts = append(parts, "sym")
		}
		if r.Compact {
			parts = append(parts, "compact")
		}
		flags := strings.Join(parts, "+")
		if flags == "" {
			flags = "-"
		}
		states := fmt.Sprintf("%d", r.States)
		if r.Truncated {
			states += "*"
		}
		fmt.Fprintf(&b, "%-15s %8d %14s %9s %14.0f %12d %12d\n",
			r.World, r.Workers, flags, states, r.StatesPerSec, r.AllocsPerOp, r.BytesPerOp)
	}
	return b.String()
}
