package experiments

import (
	"fmt"
	"testing"

	"cnetverifier/internal/check"
	"cnetverifier/internal/core"
)

// This file measures the memory-lean visited table (internal/check
// vtable.go): the lock-free fingerprint store that replaced the sharded
// mutex map, and its hash-compaction mode. Two BENCH_screen.json labels
// come out of it:
//
//   - "vlean": screening throughput and allocation profile of the
//     scoped worlds at 1/4/8 workers, plus the shared-core multi-UE
//     world in exact versus compact mode. Compare allocs/op and B/op
//     against the pre-table "parallel"/"sym" labels for the memory
//     acceptance numbers (≥5× bytes/state, ≥2× allocs/state).
//   - "vlean+por+sym": the completion demonstration — a 4-UE
//     shared-core screen under POR+Symmetry where exact mode truncates
//     at a state cap sized to a fixed memory budget while compact mode,
//     whose per-state footprint is ~8 bytes of table instead of table
//     plus encoding arena, finishes the fixpoint inside the same bytes.

// vleanBench runs one screening configuration under testing.Benchmark
// and fills the common PerfRun fields.
func vleanBench(world string, s core.Scoped, opt check.Options) (PerfRun, error) {
	if opt.Workers == 0 {
		opt.Workers = 1
	}
	states := 0
	truncated := false
	omission := 0.0
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.Screen(s, opt)
			if err != nil {
				benchErr = err
				b.Fatal(err)
			}
			states = res.Result.States
			truncated = res.Result.Truncated
			omission = res.Result.Omission
		}
	})
	if benchErr != nil {
		return PerfRun{}, fmt.Errorf("vlean: %s: %w", world, benchErr)
	}
	run := PerfRun{
		World:       world,
		Workers:     opt.Workers,
		POR:         opt.POR,
		Sym:         opt.Symmetry,
		Compact:     opt.Compact,
		MaxStates:   opt.MaxStates,
		Truncated:   truncated,
		Omission:    omission,
		States:      states,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if sec := r.T.Seconds(); sec > 0 {
		run.StatesPerSec = float64(states) * float64(r.N) / sec
	}
	return run, nil
}

// PerfVlean benchmarks the memory-lean visited table: every scoped
// world at 1/4/8 workers (exact mode), then the shared-core 4-UE world
// under symmetry — the same configuration as the checked-in "sym"
// label, so the B/op and allocs/op columns compare row-for-row — in
// exact versus compact mode at 1 and 8 workers. Label: "vlean".
func PerfVlean() ([]PerfRun, error) {
	var out []PerfRun
	for _, pw := range perfWorlds() {
		for _, workers := range []int{1, 4, 8} {
			opt := pw.s.Options
			opt.Workers = workers
			run, err := vleanBench(pw.name, pw.s, opt)
			if err != nil {
				return nil, err
			}
			out = append(out, run)
		}
	}
	for _, compact := range []bool{false, true} {
		for _, workers := range []int{1, 8} {
			s := core.MultiUEWorldShared(4, false)
			opt := s.Options
			opt.Symmetry = true
			opt.Compact = compact
			opt.Workers = workers
			opt.MaxStates = 1 << 21
			run, err := vleanBench("multiue-shared4", s, opt)
			if err != nil {
				return nil, err
			}
			out = append(out, run)
		}
	}
	return out, nil
}

// PerfVleanPorSym is the compaction completion demonstration on the
// 4-UE shared-core world under POR+Symmetry. Both legs get the same
// visited-set memory budget; exact mode spends hundreds of bytes per
// state on slots, refs and the encoding arena where compact mode
// spends ~8 B/state of slots, so the same bytes buy compact mode ~30×
// the state cap. The
// exact leg caps out mid-search — its state count pins at exactly
// MaxStates, an incomplete frontier. The compact leg exhausts the
// frontier well below its cap: it reaches the depth-bounded
// symmetry-reduced fixpoint inside the same bytes, and reports the
// omission bound that prices the shortcut. (Both rows carry the
// Truncated flag: the world's depth bound itself truncates paths, in
// either mode; the cap-versus-fixpoint distinction is states==cap
// versus states<cap.) Label: "vlean+por+sym".
func PerfVleanPorSym() ([]PerfRun, error) {
	const (
		exactCap   = 20_000
		compactCap = 600_000 // same visited-set bytes as exactCap in exact mode
	)
	var out []PerfRun
	for _, leg := range []struct {
		compact bool
		cap     int
	}{
		{false, exactCap},
		{true, compactCap},
	} {
		s := core.MultiUEWorldShared(4, false)
		opt := s.Options
		opt.POR = true
		opt.Symmetry = true
		opt.Compact = leg.compact
		opt.MaxStates = leg.cap
		run, err := vleanBench("multiue-shared4", s, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, run)
	}
	return out, nil
}
