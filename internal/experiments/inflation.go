package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cnetverifier/internal/netemu"
)

// InflationPoint quantifies §7's closing observation — "though some
// issues arise with small or negligible probability during normal
// usage, they may be manipulated and inflated if malicious exploits
// are launched" — for the CSFB-coupled findings: at a given incoming
// CSFB call rate toward a victim with mobile data on, what fraction of
// time does the device spend degraded (stuck in 3G, S3) or out of
// service (failed location updates, S6)?
//
// This is a defensive availability assessment: it measures the damage
// an elevated call rate can inflict and shows the §8 fixes bound it.
type InflationPoint struct {
	CallsPerHour float64
	// DegradedFraction is time stuck in 3G / total (S3 inflation).
	DegradedFraction float64
	// OutOfServiceFraction is time detached / total (S6 inflation).
	OutOfServiceFraction float64
	Fixed                bool
}

// InflationSweep estimates the degraded-time fractions over a simulated
// horizon for each call rate, with OP-II's policies (the vulnerable
// configuration) and optionally the §8 fixes. Stuck durations and
// recovery times are drawn from the calibrated operator profile; the
// per-call S6 probability is the §7-observed 2.6%.
func InflationSweep(rates []float64, horizon time.Duration, fixed bool, seed int64) []InflationPoint {
	p := netemu.OPII()
	rng := rand.New(rand.NewSource(seed))
	const pS6 = 5.0 / 190 // §7: 5 S6 events in 190 CSFB calls

	var out []InflationPoint
	for _, rate := range rates {
		calls := int(rate * horizon.Hours())
		var stuck, oos time.Duration
		for i := 0; i < calls; i++ {
			if fixed {
				// CSFB tag: immediate return; MME recovery: no S6.
				continue
			}
			stuck += p.StuckReturn.Sample(rng)
			if rng.Float64() < pS6 {
				oos += p.Reattach.Sample(rng)
			}
		}
		clamp := func(d time.Duration) float64 {
			f := d.Seconds() / horizon.Seconds()
			if f > 1 {
				return 1
			}
			return f
		}
		out = append(out, InflationPoint{
			CallsPerHour:         rate,
			DegradedFraction:     clamp(stuck),
			OutOfServiceFraction: clamp(oos),
			Fixed:                fixed,
		})
	}
	return out
}

// RenderInflation renders the sweep with and without the fixes.
func RenderInflation(without, with []InflationPoint) string {
	var b strings.Builder
	b.WriteString("Exploit-inflation assessment (§7): victim degradation vs incoming CSFB call rate (OP-II)\n")
	fmt.Fprintf(&b, "%-12s %-22s %-22s %s\n", "calls/hour", "stuck-in-3G (broken)", "out-of-service (broken)", "with §8 fixes")
	for i, w := range without {
		fixedNote := "0.0% / 0.0%"
		if i < len(with) {
			fixedNote = fmt.Sprintf("%.1f%% / %.1f%%", with[i].DegradedFraction*100, with[i].OutOfServiceFraction*100)
		}
		fmt.Fprintf(&b, "%-12.0f %-22s %-22s %s\n",
			w.CallsPerHour,
			fmt.Sprintf("%.1f%%", w.DegradedFraction*100),
			fmt.Sprintf("%.1f%%", w.OutOfServiceFraction*100),
			fixedNote)
	}
	return b.String()
}
