package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"cnetverifier/internal/netemu"
	"cnetverifier/internal/radio"
	"cnetverifier/internal/workload"
)

// S5Stats reproduces §7's S5 accounting: how much data each 3G call
// degrades. The paper observed 113 affected calls averaging 67 s and
// 368 KB of affected volume; 109 of 113 moved less than 550 KB while
// four moved over 4 MB (the largest 18.5 MB).
type S5Stats struct {
	Calls         int
	AvgCallSec    float64
	AvgAffectedKB float64
	Under550KB    int
	Over4MB       int
	MaxMB         float64
}

func (s S5Stats) String() string {
	return fmt.Sprintf("S5: %d calls, avg %.0fs, avg affected %.0f KB; %d under 550 KB, %d over 4 MB (max %.1f MB)",
		s.Calls, s.AvgCallSec, s.AvgAffectedKB, s.Under550KB, s.Over4MB, s.MaxMB)
}

// S5AffectedVolumes simulates the §7 cohort's affected-traffic volumes:
// most calls run light background traffic (tens of kbps) while a small
// fraction carries a bulk transfer that saturates the degraded shared
// channel — the four heavy calls of the study.
func S5AffectedVolumes(calls int, seed int64) S5Stats {
	rng := rand.New(rand.NewSource(seed))
	ch := netemu.SharedChannelFor(netemu.OPII(), netemu.FixSet{}, false)
	ch.CallActive = true

	var stats S5Stats
	stats.Calls = calls
	var totalSec, totalKB float64
	for i := 0; i < calls; i++ {
		// Call duration: mean ≈67 s with spread (§7).
		dur := time.Duration(30+rng.ExpFloat64()*37) * time.Second
		if dur > 8*time.Minute {
			dur = 8 * time.Minute
		}

		// Demand: ~96% light background traffic, ~4% bulk transfers
		// that ride the degraded channel.
		var rate radio.Mbps
		if rng.Float64() < 0.035 {
			load := 0.05 + rng.Float64()*0.25
			rate = ch.DataRateDL(load) // bulk: channel-limited
		} else {
			rate = 0.005 + rng.Float64()*0.018 // light: 5–23 kbps
		}
		kb := workload.AffectedVolume(rate, dur)
		// Bulk objects are finite: cap a single transfer at ~18.5 MB,
		// the largest affected volume the study observed.
		if kb > 18.5*1024 {
			kb = 18.5 * 1024
		}

		totalSec += dur.Seconds()
		totalKB += kb
		if kb < 550 {
			stats.Under550KB++
		}
		if kb > 4096 {
			stats.Over4MB++
		}
		if mb := kb / 1024; mb > stats.MaxMB {
			stats.MaxMB = mb
		}
	}
	if calls > 0 {
		stats.AvgCallSec = totalSec / float64(calls)
		stats.AvgAffectedKB = totalKB / float64(calls)
	}
	return stats
}
