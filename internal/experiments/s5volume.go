package experiments

import (
	"fmt"
	"math/rand"

	"cnetverifier/internal/netemu"
	"cnetverifier/internal/workload"
)

// S5Stats reproduces §7's S5 accounting: how much data each 3G call
// degrades. The paper observed 113 affected calls averaging 67 s and
// 368 KB of affected volume; 109 of 113 moved less than 550 KB while
// four moved over 4 MB (the largest 18.5 MB).
type S5Stats struct {
	Calls         int
	AvgCallSec    float64
	AvgAffectedKB float64
	Under550KB    int
	Over4MB       int
	MaxMB         float64
}

func (s S5Stats) String() string {
	return fmt.Sprintf("S5: %d calls, avg %.0fs, avg affected %.0f KB; %d under 550 KB, %d over 4 MB (max %.1f MB)",
		s.Calls, s.AvgCallSec, s.AvgAffectedKB, s.Under550KB, s.Over4MB, s.MaxMB)
}

// S5AffectedVolumes simulates the §7 cohort's affected-traffic volumes
// through the shared workload.S5CallModel: most calls run light
// background traffic (tens of kbps) while a small fraction carries a
// bulk transfer that saturates the degraded shared channel — the four
// heavy calls of the study. The generator is threaded explicitly so
// the campaign engine reproduces the same per-call accounting from its
// own deterministic stream.
func S5AffectedVolumes(calls int, seed int64) S5Stats {
	rng := rand.New(rand.NewSource(seed))
	ch := netemu.SharedChannelFor(netemu.OPII(), netemu.FixSet{}, false)
	ch.CallActive = true
	model := workload.DefaultS5CallModel()

	var stats S5Stats
	stats.Calls = calls
	var totalSec, totalKB float64
	for i := 0; i < calls; i++ {
		dur, kb := model.SampleAffected(rng, ch.DataRateDL)
		totalSec += dur.Seconds()
		totalKB += kb
		if kb < 550 {
			stats.Under550KB++
		}
		if kb > 4096 {
			stats.Over4MB++
		}
		if mb := kb / 1024; mb > stats.MaxMB {
			stats.MaxMB = mb
		}
	}
	if calls > 0 {
		stats.AvgCallSec = totalSec / float64(calls)
		stats.AvgAffectedKB = totalKB / float64(calls)
	}
	return stats
}
