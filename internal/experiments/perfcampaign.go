package experiments

import (
	"fmt"
	"testing"
	"time"

	"cnetverifier/internal/campaign"
)

// PerfCampaign benchmarks the population-scale load engine: a
// 100k-UE, 10-minute campaign at each worker count, via
// testing.Benchmark. The rows reuse the PerfRun schema with States
// holding the number of procedure occurrences fired (the campaign's
// unit of work), so states_per_sec reads as procedures/sec in
// BENCH_screen.json.
func PerfCampaign(workerCounts []int) ([]PerfRun, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 4, 8}
	}
	var out []PerfRun
	for _, workers := range workerCounts {
		cfg := campaign.Config{
			UEs:     100000,
			Horizon: 10 * time.Minute,
			Workers: workers,
		}
		events := int64(0)
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := campaign.Run(cfg)
				if err != nil {
					benchErr = err
					b.Fatal(err)
				}
				events = rep.Totals.Attaches + rep.Totals.Detaches +
					rep.Totals.Services + rep.Totals.Handovers + rep.Totals.Calls
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("perf: campaign workers=%d: %w", workers, benchErr)
		}
		run := PerfRun{
			World:       "campaign-100k",
			Workers:     workers,
			States:      int(events),
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if sec := r.T.Seconds(); sec > 0 {
			run.StatesPerSec = float64(events) * float64(r.N) / sec
		}
		out = append(out, run)
	}
	return out, nil
}
