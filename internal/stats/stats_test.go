package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || !almost(s.Median, 3) || !almost(s.Mean, 3) {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
	zero := Summarize(nil)
	if zero.N != 0 {
		t.Fatalf("empty summary = %+v", zero)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75}, {75, 3.25},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Fatalf("single-element P50 = %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty != 0")
	}
	if !almost(Mean([]float64{1, 2, 6}), 3) {
		t.Fatal("mean wrong")
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {9, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almost(got, tc.want) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if NewCDF(nil).At(1) != 0 {
		t.Fatal("empty CDF At != 0")
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	cases := []struct{ q, want float64 }{
		{0.25, 10}, {0.5, 20}, {0.75, 30}, {1, 40}, {0.1, 10},
	}
	for _, tc := range cases {
		if got := c.Quantile(tc.q); !almost(got, tc.want) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0][0] != 1 || pts[4][0] != 5 {
		t.Fatalf("endpoints wrong: %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Fatalf("points not monotone: %v", pts)
		}
	}
	if got := c.Points(100); len(got) != 5 {
		t.Fatalf("oversampled points = %d, want clamped to 5", len(got))
	}
	if NewCDF(nil).Points(3) != nil {
		t.Fatal("empty CDF points != nil")
	}
}

func TestDurations(t *testing.T) {
	ds := Durations([]time.Duration{time.Second, 500 * time.Millisecond})
	if !almost(ds[0], 1) || !almost(ds[1], 0.5) {
		t.Fatalf("durations = %v", ds)
	}
}

func TestAsciiCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3})
	out := AsciiCDF(c, 4, "test")
	if !strings.Contains(out, "CDF of test") || !strings.Contains(out, "100%") {
		t.Fatalf("ascii cdf:\n%s", out)
	}
	if AsciiCDF(NewCDF(nil), 4, "x") != "" {
		t.Fatal("empty CDF should render empty")
	}
}

// Property: the CDF is monotone and At(Quantile(q)) >= q.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		c := NewCDF(clean)
		for _, q := range []float64{0.1, 0.5, 0.9, 1.0} {
			if c.At(c.Quantile(q)) < q-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize agrees with direct computations.
func TestQuickSummaryConsistent(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		return s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.Min <= s.Median && s.Median <= s.Max && s.N == len(clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Welford matches the two-pass mean/variance on a fixed sample and
// keeps the one-pass invariants at every prefix.
func TestWelford(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for i, x := range xs {
		w.Add(x)
		if w.N() != i+1 {
			t.Fatalf("N = %d, want %d", w.N(), i+1)
		}
	}
	if got, want := w.Mean(), 5.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	// Two-pass unbiased variance: sum((x-5)^2)/(n-1) = 32/7.
	if got, want := w.Variance(), 32.0/7; math.Abs(got-want) > 1e-12 {
		t.Fatalf("variance = %v, want %v", got, want)
	}
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v", got)
	}
	// Degenerate samples.
	if Variance(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Fatal("short-sample variance must be 0")
	}
	var z Welford
	if z.Mean() != 0 || z.Variance() != 0 || z.N() != 0 {
		t.Fatal("zero Welford not zero")
	}
}
