// Package stats provides the small set of descriptive statistics used
// by the experiment harnesses: min/median/max summaries (Figure 4,
// Table 6), percentiles (Table 6's 90th), means, and empirical CDFs
// (Figure 8).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary is a five-number-style description of a sample.
type Summary struct {
	N      int
	Min    float64
	Median float64
	Max    float64
	Mean   float64
	P90    float64
}

// Summarize computes a Summary. It returns a zero Summary for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for _, x := range s {
		sum += x
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Median: Percentile(s, 50),
		Max:    s[len(s)-1],
		Mean:   sum / float64(len(s)),
		P90:    Percentile(s, 90),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f median=%.2f p90=%.2f max=%.2f mean=%.2f",
		s.N, s.Min, s.Median, s.P90, s.Max, s.Mean)
}

// Percentile returns the p-th percentile (0–100) of a sorted sample
// using linear interpolation between order statistics. The input must
// be sorted ascending; it panics on an empty sample or out-of-range p.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for samples of
// fewer than two points).
func Variance(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Variance()
}

// Welford accumulates mean and variance online in one pass (Welford's
// algorithm), so population-scale harnesses can summarize millions of
// samples without retaining them. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples added.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any sample).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Z95 is the standard-normal quantile for a two-sided 95% confidence
// interval.
const Z95 = 1.959964

// Wilson returns the Wilson score interval for a binomial proportion:
// the [lo, hi] range the true reproduction rate lies in with the
// confidence implied by z (use Z95), after observing successes out of
// n trials. Unlike the normal approximation it behaves sensibly at the
// boundaries (0/n and n/n), which loss-sweep cells hit routinely. An
// empty sample (n == 0) returns the vacuous interval [0, 1].
func Wilson(successes, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(successes) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := p + z*z/(2*nf)
	margin := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	lo = (center - margin) / denom
	hi = (center + margin) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from a sample.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Index of the first element > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest x with P(X <= x) >= q, for q in (0,1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		panic("stats: quantile of empty CDF")
	}
	if q <= 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of range", q))
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Points returns up to n evenly spaced (x, P(X<=x)) pairs suitable for
// plotting the CDF curve (Figure 8).
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / maxInt(n-1, 1)
		x := c.sorted[idx]
		out = append(out, [2]float64{x, float64(idx+1) / float64(len(c.sorted))})
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Durations converts a slice of time.Duration to seconds.
func Durations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// AsciiCDF renders a crude terminal plot of a CDF with the given number
// of rows, used by the bench harness to echo Figure 8-style curves.
func AsciiCDF(c *CDF, rows int, label string) string {
	if c.N() == 0 || rows <= 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "CDF of %s (n=%d)\n", label, c.N())
	for i := 1; i <= rows; i++ {
		q := float64(i) / float64(rows)
		x := c.Quantile(q)
		bar := strings.Repeat("#", int(q*40))
		fmt.Fprintf(&b, "%5.0f%% %-40s %.3f\n", q*100, bar, x)
	}
	return b.String()
}
