// Package fixes implements the three solution modules of §8
// (Figure 11) as concrete, runnable mechanisms — the counterparts of
// the option flags in the protocol models:
//
//   - Layer extension: a slim reliable-transfer shim between EMM and
//     RRC (sequencing, acknowledgment, retransmission, duplicate
//     suppression and in-order delivery), plus a parallel scheduler
//     that decouples location updates from service requests.
//   - Domain decoupling: per-domain channel assignment with independent
//     modulation for CS and PS.
//   - Cross-system coordination: EPS-bearer reactivation instead of
//     detach, and MME-side recovery of 3G location-update failures.
//
// The §9 prototype experiments (Figure 12, Figure 13, §9.3) run these
// mechanisms over the netemu simulator.
package fixes

import (
	"fmt"
	"time"

	"cnetverifier/internal/netemu"
	"cnetverifier/internal/types"
)

// Scheduler is the timer source the shim arms retransmissions on: the
// virtual-time netemu.Sim in simulations, or a wall-clock scheduler in
// the socket prototype (internal/emu).
type Scheduler interface {
	After(d time.Duration, fn func())
}

// ReliableConfig tunes the shim.
type ReliableConfig struct {
	// RTO is the retransmission timeout (default 200 ms).
	RTO time.Duration
	// MaxRetries bounds retransmissions per message (default 10);
	// exceeding it drops the message and counts a failure.
	MaxRetries int
}

func (c ReliableConfig) withDefaults() ReliableConfig {
	if c.RTO == 0 {
		c.RTO = 200 * time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 10
	}
	return c
}

// ReliableEndpoint is one end of the §8 reliable-transfer shim. It
// bridges the interfaces between EMM and RRC: the upper layer calls
// Send, the lower (unreliable) layer delivers received frames to
// OnReceive, and the shim guarantees exactly-once, in-order Deliver
// calls on the peer.
type ReliableEndpoint struct {
	name string
	sim  Scheduler
	cfg  ReliableConfig

	// transmit hands a frame to the unreliable lower layer.
	transmit func(types.Message)
	// deliver hands an in-sequence deduplicated message up.
	deliver func(types.Message)

	nextSeq  uint32 // next sequence number to assign (sender)
	expected uint32 // next sequence number to deliver (receiver)
	unacked  map[uint32]types.Message
	retries  map[uint32]int
	buffer   map[uint32]types.Message // out-of-order receive buffer

	// Stats.
	Sent, Retransmitted, Duplicates, Reordered, Failed int
}

// NewReliableEndpoint builds an endpoint. transmit sends a frame over
// the unreliable channel toward the peer; deliver receives in-order
// upper-layer messages.
func NewReliableEndpoint(name string, sim Scheduler, cfg ReliableConfig,
	transmit, deliver func(types.Message)) *ReliableEndpoint {
	return &ReliableEndpoint{
		name:     name,
		sim:      sim,
		cfg:      cfg.withDefaults(),
		transmit: transmit,
		deliver:  deliver,
		nextSeq:  1,
		expected: 1,
		unacked:  make(map[uint32]types.Message),
		retries:  make(map[uint32]int),
		buffer:   make(map[uint32]types.Message),
	}
}

// Send transmits an upper-layer message reliably.
func (e *ReliableEndpoint) Send(msg types.Message) {
	msg.Seq = e.nextSeq
	e.nextSeq++
	e.unacked[msg.Seq] = msg
	e.Sent++
	e.transmit(msg)
	e.armRetransmit(msg.Seq)
}

func (e *ReliableEndpoint) armRetransmit(seq uint32) {
	e.sim.After(e.cfg.RTO, func() {
		msg, pending := e.unacked[seq]
		if !pending {
			return // acknowledged meanwhile
		}
		if e.retries[seq] >= e.cfg.MaxRetries {
			delete(e.unacked, seq)
			delete(e.retries, seq)
			e.Failed++
			return
		}
		e.retries[seq]++
		e.Retransmitted++
		e.transmit(msg)
		e.armRetransmit(seq)
	})
}

// OnReceive accepts a frame from the unreliable lower layer: an ack for
// our outbound traffic, or peer data to be acknowledged, deduplicated
// and released in order.
func (e *ReliableEndpoint) OnReceive(msg types.Message) {
	if msg.Kind == types.MsgShimAck {
		delete(e.unacked, msg.Seq)
		delete(e.retries, msg.Seq)
		return
	}
	// Acknowledge everything we see, including duplicates (their
	// original ack may have been the lost frame).
	e.transmit(types.Message{Kind: types.MsgShimAck, Seq: msg.Seq, From: e.name})
	switch {
	case msg.Seq < e.expected:
		e.Duplicates++
		return
	case msg.Seq > e.expected:
		if _, dup := e.buffer[msg.Seq]; dup {
			e.Duplicates++
			return
		}
		e.Reordered++
		e.buffer[msg.Seq] = msg
		return
	}
	// In sequence: deliver it and any buffered successors.
	e.deliver(msg)
	e.expected++
	for {
		next, ok := e.buffer[e.expected]
		if !ok {
			return
		}
		delete(e.buffer, e.expected)
		e.deliver(next)
		e.expected++
	}
}

// InFlight returns the number of unacknowledged messages.
func (e *ReliableEndpoint) InFlight() int { return len(e.unacked) }

// String summarizes the endpoint state.
func (e *ReliableEndpoint) String() string {
	return fmt.Sprintf("%s: sent=%d retx=%d dup=%d reorder=%d failed=%d inflight=%d",
		e.name, e.Sent, e.Retransmitted, e.Duplicates, e.Reordered, e.Failed, len(e.unacked))
}

// ReliablePair wires two endpoints over an unreliable, possibly
// reordering link simulated on sim: each frame is independently delayed
// by latency plus jitter and dropped with the dropper.
type ReliablePair struct {
	A, B *ReliableEndpoint
}

// NewReliablePair builds a connected pair. lossAB / lossBA return true
// when a frame in that direction should be dropped (nil = lossless).
// deliverA/deliverB receive the in-order upper-layer messages at each
// side.
func NewReliablePair(sim *netemu.Sim, cfg ReliableConfig,
	latency, jitter time.Duration,
	lossAB, lossBA func() bool,
	deliverA, deliverB func(types.Message)) *ReliablePair {

	p := &ReliablePair{}
	delay := func() time.Duration {
		d := latency
		if jitter > 0 {
			d += time.Duration(sim.Rand().Int63n(int64(jitter)))
		}
		return d
	}
	p.A = NewReliableEndpoint("A", sim, cfg, func(m types.Message) {
		if lossAB != nil && lossAB() {
			return
		}
		sim.After(delay(), func() { p.B.OnReceive(m) })
	}, deliverA)
	p.B = NewReliableEndpoint("B", sim, cfg, func(m types.Message) {
		if lossBA != nil && lossBA() {
			return
		}
		sim.After(delay(), func() { p.A.OnReceive(m) })
	}, deliverB)
	return p
}
