package fixes

import (
	"fmt"

	"cnetverifier/internal/radio"
)

// ChannelPlan is the §8 domain-decoupling fix in runnable form: CS and
// PS traffic are assigned separate radio channels, each configured with
// its own modulation scheme (64QAM for PS, a robust 16QAM for CS),
// instead of sharing one channel under a single voice-safe scheme
// (§6.2, Figure 13).
type ChannelPlan struct {
	// Decoupled selects per-domain channels (the fix); false reproduces
	// the carriers' coupled sharing.
	Decoupled bool
	// PSMod and CSMod are the per-domain modulations when decoupled.
	PSMod, CSMod radio.Modulation
}

// NewChannelPlan returns the fix's default plan (64QAM PS / 16QAM CS).
func NewChannelPlan(decoupled bool) ChannelPlan {
	return ChannelPlan{Decoupled: decoupled, PSMod: radio.QAM64, CSMod: radio.QAM16}
}

// Rates reports the voice and data rates achievable during a
// concurrent call under the plan and load factor. voiceOverhead is the
// carrier's coupled-channel penalty (ignored when decoupled).
func (p ChannelPlan) Rates(load, voiceOverhead float64, uplink bool) (voice, data radio.Mbps) {
	peak := func(m radio.Modulation) radio.Mbps {
		if uplink {
			return m.PeakUL()
		}
		return m.PeakDL()
	}
	if p.Decoupled {
		// Voice keeps its robust channel; data keeps its fast one.
		// Voice needs only the codec rate but has the whole CS channel
		// available; its throughput is bounded by small-packet
		// overhead (§9.2 observes the voice stream carries less than
		// the channel could).
		voice = minRate(peak(p.CSMod)*load, voicePacketBound(peak(p.CSMod), load))
		data = peak(p.PSMod) * load
		return voice, data
	}
	// Coupled: both share the CS-safe modulation, and data additionally
	// pays the carrier's voice-resilience overhead.
	shared := peak(p.CSMod) * load
	voice = minRate(shared, voicePacketBound(shared, load))
	data = shared * (1 - clamp01f(voiceOverhead))
	return voice, data
}

// voicePacketBound models the small-packet transmission overhead of
// VoIP-like streams (§9.2: "the difference ... comes from the voice's
// small packet size. It incurs more overhead on transmission"): the
// voice flow achieves roughly 60% of the channel it occupies.
func voicePacketBound(channel radio.Mbps, load float64) radio.Mbps {
	_ = load
	return channel * 0.6
}

func minRate(a, b radio.Mbps) radio.Mbps {
	if a < b {
		return a
	}
	return b
}

func clamp01f(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// String describes the plan.
func (p ChannelPlan) String() string {
	if p.Decoupled {
		return fmt.Sprintf("decoupled (PS %s / CS %s)", p.PSMod, p.CSMod)
	}
	return fmt.Sprintf("coupled (shared %s)", p.CSMod)
}
