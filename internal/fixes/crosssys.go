package fixes

import (
	"time"

	"cnetverifier/internal/names"
	"cnetverifier/internal/netemu"
	"cnetverifier/internal/types"
)

// SwitchResult reports one 3G→4G switch performed by the cross-system
// coordination experiment (§9.3).
type SwitchResult struct {
	// Detached reports whether the device was detached during the
	// switch (the S1 symptom).
	Detached bool
	// Latency is the time from the switch trigger until 4G packet
	// service is available again (EPS bearer active and registered).
	Latency time.Duration
}

// MeasureSwitchNoPDP runs the §9.3 first remedy's experiment: a device
// attached in 4G falls to 3G, loses its PDP context, and switches back
// to 4G. Without the fix the device is detached and must re-attach
// (0.3–1.3 s in the paper's prototype, up to 24.7 s in operational
// networks); with the fix it immediately reactivates the EPS bearer
// (0.1–0.4 s). reattachDelay is the operator-side re-attach processing
// time applied on the defective path.
func MeasureSwitchNoPDP(fixed bool, seed int64, signaling time.Duration, reattachDelay time.Duration) SwitchResult {
	w := netemu.NewWorld(seed)
	w.Uplink.Latency = signaling
	w.Downlink.Latency = signaling
	fs := netemu.FixSet{}
	if fixed {
		fs = netemu.AllFixes()
	}
	netemu.StandardStack(w, netemu.OPII(), fs)

	// Attach in 4G, fall to 3G (context migrates), lose the PDP
	// context for an unavoidable cause.
	w.InjectAt(0, names.UEEMM, types.Message{Kind: types.MsgPowerOn})
	w.InjectAt(time.Second, names.UEGMM, types.Message{Kind: types.MsgInterSystemSwitchCommand})
	w.InjectAt(2*time.Second, names.UESM, types.Message{Kind: types.MsgDeactivatePDPRequest, Cause: types.CauseInsufficientResources})
	w.RunUntil(3 * time.Second)

	// Switch back and measure until packet service is restored.
	start := w.Sim.Now()
	w.Inject(names.UEEMM, types.Message{Kind: types.MsgInterSystemCellReselect})
	w.Run()

	res := SwitchResult{}
	if w.Global(names.GDetachedByNet) == 1 {
		res.Detached = true
		// Defective path: the device re-attaches after the
		// operator-controlled delay (Figure 4).
		w.Sim.After(reattachDelay, func() {})
		w.Run()
		w.Inject(names.UEEMM, types.Message{Kind: types.MsgPeriodicTimer})
		w.Run()
	}
	res.Latency = w.Sim.Now() - start
	return res
}

// RecoverLUFailure runs the §9.3 second remedy's experiment: with the
// fix, the MME absorbs a 3G location-update failure, recovers the
// update with the MSC, and never detaches the device. It returns
// whether the device stayed attached and whether the failure flag was
// cleared.
func RecoverLUFailure(fixed bool, seed int64) (stayedAttached, recovered bool) {
	w := netemu.NewWorld(seed)
	fs := netemu.FixSet{}
	if fixed {
		fs = netemu.AllFixes()
	}
	netemu.StandardStack(w, netemu.OPI(), fs)

	w.InjectAt(0, names.UEEMM, types.Message{Kind: types.MsgPowerOn})
	w.InjectAt(time.Second, names.MSCMM, types.Message{Kind: types.MsgLUFailureSignal})
	w.InjectAt(2*time.Second, names.UERRC4G, types.Message{Kind: types.MsgNetSwitchOrder})
	w.InjectAt(10*time.Second, names.UEEMM, types.Message{Kind: types.MsgInterSystemCellReselect})
	w.Run()

	return w.Global(names.GDetachedByNet) == 0, w.Global(names.GLUFail3G) == 0
}
