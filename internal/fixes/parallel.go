package fixes

import (
	"time"

	"cnetverifier/internal/netemu"
)

// ParallelScheduler is the §8 layer-extension fix for S4 in runnable
// form: MM/GMM maintain two parallel threads, one for location updates
// and one for the remaining functions including outgoing service
// requests (§8 "Layer Extension"). With Parallel disabled it reproduces
// the standard serial behavior — service requests queue behind the
// update and behind the MM-WAIT-FOR-NET-CMD tail (§6.1).
type ParallelScheduler struct {
	sim *netemu.Sim
	// Parallel selects the fixed (two-thread) behavior.
	Parallel bool
	// WaitNetCmdExtra is the §6.1 chain-effect tail appended to each
	// update in serial mode.
	WaitNetCmdExtra time.Duration

	busyUntil time.Duration
}

// NewParallelScheduler returns a scheduler on the simulator.
func NewParallelScheduler(sim *netemu.Sim, parallel bool, waitExtra time.Duration) *ParallelScheduler {
	return &ParallelScheduler{sim: sim, Parallel: parallel, WaitNetCmdExtra: waitExtra}
}

// SubmitUpdate starts a location update taking d to process.
func (s *ParallelScheduler) SubmitUpdate(d time.Duration) {
	end := s.sim.Now() + d
	if !s.Parallel {
		end += s.WaitNetCmdExtra
	}
	if end > s.busyUntil {
		s.busyUntil = end
	}
}

// UpdateBusy reports whether an update currently occupies the serial
// thread.
func (s *ParallelScheduler) UpdateBusy() bool {
	return !s.Parallel && s.sim.Now() < s.busyUntil
}

// SubmitService submits an outgoing service request and calls done with
// the queueing delay it experienced once it is dispatched. In parallel
// mode the delay is always zero; in serial mode the request waits for
// the update thread to drain.
func (s *ParallelScheduler) SubmitService(done func(delay time.Duration)) {
	if s.Parallel || s.sim.Now() >= s.busyUntil {
		done(0)
		return
	}
	start := s.sim.Now()
	s.sim.At(s.busyUntil, func() { done(s.sim.Now() - start) })
}
