package fixes

import (
	"testing"
	"time"

	"cnetverifier/internal/netemu"
	"cnetverifier/internal/radio"
	"cnetverifier/internal/types"
)

func msg(kind types.MsgKind) types.Message { return types.Message{Kind: kind} }

func TestReliableLosslessInOrder(t *testing.T) {
	sim := netemu.NewSim(1)
	var got []types.MsgKind
	p := NewReliablePair(sim, ReliableConfig{}, 10*time.Millisecond, 0, nil, nil,
		nil, func(m types.Message) { got = append(got, m.Kind) })
	_ = p
	kinds := []types.MsgKind{types.MsgAttachRequest, types.MsgAttachComplete, types.MsgTrackingAreaUpdateRequest}
	for _, k := range kinds {
		p.A.Send(msg(k))
	}
	sim.Run()
	if len(got) != len(kinds) {
		t.Fatalf("delivered %d, want %d", len(got), len(kinds))
	}
	for i, k := range kinds {
		if got[i] != k {
			t.Fatalf("got[%d] = %s, want %s", i, got[i], k)
		}
	}
	if p.A.InFlight() != 0 {
		t.Fatalf("inflight = %d after acks", p.A.InFlight())
	}
	if p.A.Retransmitted != 0 {
		t.Fatalf("retransmissions on lossless link: %d", p.A.Retransmitted)
	}
}

// The S2 root cause, repaired: every message survives a lossy link
// exactly once and in order.
func TestReliableSurvivesLoss(t *testing.T) {
	sim := netemu.NewSim(2)
	drop := radio.NewDropper(0.4, 99)
	var got []uint32
	p := NewReliablePair(sim, ReliableConfig{RTO: 50 * time.Millisecond}, 5*time.Millisecond, 0,
		drop.Drop, drop.Drop,
		nil, func(m types.Message) { got = append(got, m.Seq) })
	const n = 50
	for i := 0; i < n; i++ {
		p.A.Send(msg(types.MsgAttachComplete))
	}
	sim.Run()
	if len(got) != n {
		t.Fatalf("delivered %d, want %d (retx=%d failed=%d)", len(got), n, p.A.Retransmitted, p.A.Failed)
	}
	for i, seq := range got {
		if seq != uint32(i+1) {
			t.Fatalf("out of order at %d: seq %d", i, seq)
		}
	}
	if p.A.Retransmitted == 0 {
		t.Fatal("lossy link should force retransmissions")
	}
	if p.A.Failed != 0 {
		t.Fatalf("failures = %d", p.A.Failed)
	}
}

// Duplicate frames (the S2 duplicate-signal case) are suppressed.
func TestReliableDuplicateSuppression(t *testing.T) {
	sim := netemu.NewSim(3)
	delivered := 0
	e := NewReliableEndpoint("B", sim, ReliableConfig{}, func(types.Message) {}, func(types.Message) { delivered++ })
	frame := types.Message{Kind: types.MsgAttachRequest, Seq: 1}
	e.OnReceive(frame)
	e.OnReceive(frame) // duplicate
	e.OnReceive(frame) // duplicate
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
	if e.Duplicates != 2 {
		t.Fatalf("duplicates = %d, want 2", e.Duplicates)
	}
}

// Out-of-order frames (signals relayed via different BSes, §5.2.1) are
// buffered and released in sequence.
func TestReliableReordering(t *testing.T) {
	sim := netemu.NewSim(4)
	var got []uint32
	e := NewReliableEndpoint("B", sim, ReliableConfig{}, func(types.Message) {}, func(m types.Message) { got = append(got, m.Seq) })
	e.OnReceive(types.Message{Kind: types.MsgAttachRequest, Seq: 2})
	if len(got) != 0 {
		t.Fatal("premature delivery of out-of-order frame")
	}
	e.OnReceive(types.Message{Kind: types.MsgAttachRequest, Seq: 3})
	e.OnReceive(types.Message{Kind: types.MsgAttachRequest, Seq: 1})
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("delivery order = %v", got)
	}
	if e.Reordered != 2 {
		t.Fatalf("reordered = %d", e.Reordered)
	}
	// A duplicate of a buffered frame is also suppressed.
	e.OnReceive(types.Message{Kind: types.MsgAttachRequest, Seq: 5})
	e.OnReceive(types.Message{Kind: types.MsgAttachRequest, Seq: 5})
	if e.Duplicates != 1 {
		t.Fatalf("buffered duplicate not counted: %d", e.Duplicates)
	}
}

func TestReliableGivesUpAfterMaxRetries(t *testing.T) {
	sim := netemu.NewSim(5)
	e := NewReliableEndpoint("A", sim, ReliableConfig{RTO: 10 * time.Millisecond, MaxRetries: 3},
		func(types.Message) {}, // transmit into the void
		func(types.Message) {})
	e.Send(msg(types.MsgAttachRequest))
	sim.Run()
	if e.Failed != 1 {
		t.Fatalf("failed = %d, want 1", e.Failed)
	}
	if e.Retransmitted != 3 {
		t.Fatalf("retransmitted = %d, want 3", e.Retransmitted)
	}
	if e.InFlight() != 0 {
		t.Fatal("gave-up message still in flight")
	}
	if e.String() == "" {
		t.Fatal("empty string")
	}
}

func TestParallelSchedulerSerialBlocks(t *testing.T) {
	sim := netemu.NewSim(1)
	s := NewParallelScheduler(sim, false, 4300*time.Millisecond)
	s.SubmitUpdate(3 * time.Second)
	if !s.UpdateBusy() {
		t.Fatal("update should occupy the serial thread")
	}
	var delay time.Duration
	s.SubmitService(func(d time.Duration) { delay = d })
	sim.Run()
	// Serial: the request waits for update (3 s) + WAIT-NET-CMD tail
	// (4.3 s).
	want := 7300 * time.Millisecond
	if delay != want {
		t.Fatalf("delay = %v, want %v", delay, want)
	}
}

func TestParallelSchedulerParallelNoDelay(t *testing.T) {
	sim := netemu.NewSim(1)
	s := NewParallelScheduler(sim, true, 4300*time.Millisecond)
	s.SubmitUpdate(3 * time.Second)
	if s.UpdateBusy() {
		t.Fatal("parallel scheduler should not report busy")
	}
	var delay time.Duration = -1
	s.SubmitService(func(d time.Duration) { delay = d })
	sim.Run()
	if delay != 0 {
		t.Fatalf("delay = %v, want 0", delay)
	}
}

func TestParallelSchedulerIdleServes(t *testing.T) {
	sim := netemu.NewSim(1)
	s := NewParallelScheduler(sim, false, time.Second)
	var delay time.Duration = -1
	s.SubmitService(func(d time.Duration) { delay = d })
	sim.Run()
	if delay != 0 {
		t.Fatalf("idle serial delay = %v, want 0", delay)
	}
}

// Figure 13's shape: decoupling improves the data rate by roughly 1.6×
// while the voice rate stays serviceable.
func TestChannelPlanFigure13Shape(t *testing.T) {
	const load = 1.0
	coupled := NewChannelPlan(false)
	decoupled := NewChannelPlan(true)
	// §9.2 used a modest coupling overhead in the prototype.
	vC, dC := coupled.Rates(load, 0.2, false)
	vD, dD := decoupled.Rates(load, 0.2, false)
	if dD <= dC {
		t.Fatalf("decoupling did not improve data: %v vs %v", dD, dC)
	}
	gain := dD / dC
	if gain < 1.3 || gain > 3.0 {
		t.Fatalf("data gain = %.2f, want ≈1.6–2.4", gain)
	}
	if vD <= 0 || vC <= 0 {
		t.Fatal("voice starved")
	}
	// Voice remains on the robust modulation in both plans.
	if vD > radio.QAM16.PeakDL() || vC > radio.QAM16.PeakDL() {
		t.Fatal("voice exceeded its channel")
	}
	if coupled.String() == "" || decoupled.String() == "" {
		t.Fatal("empty plan strings")
	}
}

func TestChannelPlanUplink(t *testing.T) {
	p := NewChannelPlan(true)
	_, dUL := p.Rates(1, 0, true)
	if dUL != radio.QAM64.PeakUL() {
		t.Fatalf("uplink data = %v", dUL)
	}
}

// §9.3 remedy 1: with the fix the switch is fast and detach-free;
// without it the device detaches and pays the re-attach.
func TestMeasureSwitchNoPDP(t *testing.T) {
	signaling := 30 * time.Millisecond
	reattach := 800 * time.Millisecond

	fixed := MeasureSwitchNoPDP(true, 1, signaling, reattach)
	if fixed.Detached {
		t.Fatal("fixed switch detached the device")
	}
	if fixed.Latency <= 0 || fixed.Latency > 500*time.Millisecond {
		t.Fatalf("fixed latency = %v, want ≈0.1–0.4s", fixed.Latency)
	}

	broken := MeasureSwitchNoPDP(false, 1, signaling, reattach)
	if !broken.Detached {
		t.Fatal("defective switch did not detach")
	}
	if broken.Latency <= fixed.Latency {
		t.Fatalf("defective (%v) should be slower than fixed (%v)", broken.Latency, fixed.Latency)
	}
}

// §9.3 remedy 2: LU-failure recovery inside the core.
func TestRecoverLUFailure(t *testing.T) {
	attached, recovered := RecoverLUFailure(true, 1)
	if !attached || !recovered {
		t.Fatalf("fixed: attached=%v recovered=%v", attached, recovered)
	}
	attached, _ = RecoverLUFailure(false, 1)
	if attached {
		t.Fatal("defective path kept the device attached")
	}
}
