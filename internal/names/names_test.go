package names

import (
	"strings"
	"testing"
)

// The process names are the routing addresses of both backends: they
// must be unique and follow the element.protocol convention.
func TestProcNamesUniqueAndWellFormed(t *testing.T) {
	procs := []string{
		UEEMM, UEESM, UEGMM, UESM, UEMM, UECM, UERRC3G, UERRC4G,
		MMEEMM, MMEESM, SGSNGMM, SGSNSM, MSCMM, MSCCM, BSRRC3G, BSRRC4G,
	}
	seen := map[string]bool{}
	for _, p := range procs {
		if seen[p] {
			t.Fatalf("duplicate proc name %q", p)
		}
		seen[p] = true
		if !strings.Contains(p, ".") {
			t.Fatalf("proc %q missing element.protocol form", p)
		}
	}
	if len(procs) != 16 {
		t.Fatalf("procs = %d, want 16 (8 protocols × 2 sides)", len(procs))
	}
}

// Globals must carry the "g." prefix the fsm context uses for scoping.
func TestGlobalsPrefixed(t *testing.T) {
	globals := []string{
		GSys, GPDP, GEPS, GDataOn, GReg4G, GReg3GCS, GReg3GPS,
		GDetachedByNet, GAttachRejected, GCallWanted, GCallActive,
		GCallRejected, GCallDelayed, GLUInProgress, GSwitchOpt,
		GWantReturn4G, GPSData, GCSFBTag, GLUFail3G, GRAUInProgress,
		GDataDelayed, GModulation,
	}
	seen := map[string]bool{}
	for _, g := range globals {
		if !strings.HasPrefix(g, "g.") {
			t.Fatalf("global %q missing g. prefix", g)
		}
		if seen[g] {
			t.Fatalf("duplicate global %q", g)
		}
		seen[g] = true
	}
}

func TestSwitchOptionValues(t *testing.T) {
	if SwitchRedirect != 0 || SwitchHandover != 1 || SwitchReselect != 2 {
		t.Fatal("switch option constants changed — operator profiles depend on them")
	}
}
