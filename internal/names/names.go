// Package names fixes the process names and shared global-variable keys
// used across the protocol models, the world assembly (internal/core)
// and the properties (internal/props). Keeping them in one place makes
// guard/action code in the protocol packages grep-able and prevents
// silent drift between producers and consumers of a global.
package names

// Process names. Device-side processes carry the "ue." prefix; the
// network side is named after its hosting element (Table 2).
const (
	UEEMM   = "ue.emm"
	UEESM   = "ue.esm"
	UEGMM   = "ue.gmm"
	UESM    = "ue.sm"
	UEMM    = "ue.mm"
	UECM    = "ue.cm"
	UERRC3G = "ue.rrc3g"
	UERRC4G = "ue.rrc4g"

	MMEEMM  = "mme.emm"
	MMEESM  = "mme.esm"
	SGSNGMM = "sgsn.gmm"
	SGSNSM  = "sgsn.sm"
	MSCMM   = "msc.mm"
	MSCCM   = "msc.cm"
	BSRRC3G = "bs.rrc3g"
	BSRRC4G = "bs.rrc4g"
)

// Shared global context variables ("g." prefix resolves to world
// globals in fsm guards/actions).
const (
	// GSys is the RAT the device is camped on (int of types.System:
	// 0 none, 1 3G, 2 4G). The single-active-RAT rule of most phones
	// (§5.1.2: "most smartphones do not support dual radios").
	GSys = "g.sys"

	// GPDP / GEPS are the shared session contexts of §5.1: the 3G PDP
	// context and the 4G EPS bearer context (1 = active).
	GPDP = "g.pdp"
	GEPS = "g.eps"

	// GDataOn is the user's mobile-data switch.
	GDataOn = "g.dataOn"

	// Registration states per system/domain.
	GReg4G   = "g.reg4g"
	GReg3GCS = "g.reg3gcs"
	GReg3GPS = "g.reg3gps"

	// GDetachedByNet is set when the network detaches a device that
	// still wants service (the out-of-service symptom of S1/S2/S6).
	GDetachedByNet = "g.detachedByNet"

	// GAttachRejected is set when an initial attach is rejected. Kept
	// separate from GDetachedByNet because PacketService_OK only
	// covers service loss *after* a successful attach (§3.2.2).
	GAttachRejected = "g.attachRejected"

	// Call-service observables for CallService_OK (S4).
	GCallWanted   = "g.callWanted"
	GCallActive   = "g.callActive"
	GCallRejected = "g.callRejected"
	GCallDelayed  = "g.callDelayed"

	// GLUInProgress is 1 while MM/GMM runs a location/routing update.
	GLUInProgress = "g.luInProgress"

	// GSwitchOpt selects the carrier's inter-system switching option
	// (§5.3, Figure 6a): 0 = RRC connection release with redirect,
	// 1 = inter-system handover, 2 = inter-system cell reselection.
	GSwitchOpt = "g.switchOpt"

	// GWantReturn4G is 1 when a CSFB call has ended and the device
	// should migrate back to 4G (the MM_OK obligation of S3).
	GWantReturn4G = "g.wantReturn4g"

	// GPSData is 1 while a high-rate PS data session is ongoing.
	GPSData = "g.psData"

	// GCSFBTag marks an inter-system switch as CSFB-triggered; the
	// domain-decoupling fix (§8) uses it to force a switch-capable RRC
	// state when the call ends.
	GCSFBTag = "g.csfbTag"

	// GLUFail3G is 1 when a 3G location update failed; S6 concerns its
	// propagation into 4G.
	GLUFail3G = "g.luFail3g"

	// GRAUInProgress is 1 while GMM runs a routing-area update (the PS
	// twin of GLUInProgress; S4's data-side HOL blocking).
	GRAUInProgress = "g.rauInProgress"

	// GDataDelayed is set when an outgoing PS data request was delayed
	// behind a routing-area update (S4, §6.1 "Internet data service").
	GDataDelayed = "g.dataDelayed"

	// GModulation is the downlink modulation order on the 3G shared
	// channel (64 = 64QAM, 16 = 16QAM); S5's downgrade is visible here.
	GModulation = "g.modulation"
)

// Inter-system switching options (values of GSwitchOpt).
const (
	SwitchRedirect = iota
	SwitchHandover
	SwitchReselect
)

// Namespaced rewrites a global key into a namespace: "g.sys" with
// namespace "ue1" becomes "g.ue1.sys". It is the naming half of
// fsm.NamespaceGlobals (which applies the same rule inside guards and
// actions — keep the two in sync); world builders composing several
// instances of one protocol stack use it to declare the per-instance
// globals and to parametrize properties. Non-global keys pass through
// unchanged.
func Namespaced(key, ns string) string {
	if ns == "" || len(key) < 3 || key[0] != 'g' || key[1] != '.' {
		return key
	}
	return "g." + ns + "." + key[2:]
}
