package fuzz

import (
	"math/rand"

	"cnetverifier/internal/model"
)

// mutSeed derives an independent RNG seed from the run seed and a
// candidate's (round, index) coordinates — the SplitMix64 finalizer,
// exactly as check.walkSeed — so candidate (r, i) is the same schedule
// whatever worker executes it.
func mutSeed(seed int64, round, idx int) int64 {
	z := uint64(seed) + uint64(round+1)*0x9E3779B97F4A7C15 + uint64(idx+1)*0xD1B54A32D192ED03
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// freshSchedule draws a uniformly random schedule from the event pool —
// the corpus bootstrap and the uniform-sampling baseline's generator.
func freshSchedule(pool []model.EnvEvent, maxEvents int, rng *rand.Rand) Schedule {
	n := 1 + rng.Intn(maxEvents)
	s := Schedule{Seed: rng.Int63()}
	for i := 0; i < n; i++ {
		s.Events = append(s.Events, pool[rng.Intn(len(pool))])
	}
	return s
}

// mutate derives one candidate from the corpus: pick a parent
// (recency-weighted — the newest entries hold the freshest coverage
// frontier) and either extend it from its snapshot or rewrite its
// genome. Extension is the workhorse: it resumes execution at the
// parent's end state, so the budget is charged only for the new tail,
// never for re-walking the prefix that earned the parent its corpus
// slot. Resumed schedules may grow past MaxEvents (up to 4x) — depth
// uniform sampling cannot afford is exactly what the snapshot buys.
// The caller decides the fresh-vs-mutant split (the adaptive epsilon
// in Fuzz); the empty-corpus fallback only guards against starvation.
func mutate(corpus []entry, pool, timerPool []model.EnvEvent, maxEvents int, rng *rand.Rand) candidate {
	if len(corpus) == 0 {
		return candidate{sched: freshSchedule(pool, maxEvents, rng), parent: -1}
	}
	window := len(corpus)
	if rng.Intn(2) == 0 && window > 8 {
		window = 8 // half the time, mutate one of the 8 newest entries
	}
	pi := len(corpus) - 1 - rng.Intn(window)
	parent := corpus[pi]
	if grow := 4 * maxEvents; rng.Intn(2) == 0 && len(parent.sched.Events) < grow {
		var tail []model.EnvEvent
		for n := 1 + rng.Intn(maxEvents); n > 0 && len(parent.sched.Events)+len(tail) < grow; n-- {
			tail = append(tail, pool[rng.Intn(len(pool))])
		}
		sched := Schedule{
			Seed:   rng.Int63(),
			Events: append(append([]model.EnvEvent(nil), parent.sched.Events...), tail...),
			// The parent's snapshot already ran under its stretches;
			// keep them in the genome so the child stays faithful.
			Stretches: append([]TimerStretch(nil), parent.sched.Stretches...),
		}
		return candidate{sched: sched, parent: pi, tail: tail}
	}
	child := parent.sched.clone()
	for n := 1 + rng.Intn(2); n > 0; n-- {
		mutateOnce(&child, corpus, pool, timerPool, maxEvents, rng)
	}
	return candidate{sched: child, parent: -1}
}

// mutateOnce applies one weighted whole-genome operator in place.
// These mutants re-execute from the initial world (the prefix changed,
// so no snapshot applies).
//
// The interleaving seed is inherited unless the perturb operator
// fires: over an unchanged schedule prefix the seed's RNG stream
// replays the parent's drain choices verbatim, so the mutant retraces
// the path that earned the parent its corpus slot before diverging.
// Re-randomizing the seed on every mutant (the obvious implementation)
// silently turns the fuzzer into uniform sampling: the prefix
// re-executes under different interleaving choices and the rare state
// is never revisited.
//
// On a timed world (timerPool non-empty) three timing operators join
// the draw: insert a timer-expiry directive, shift a directive across a
// neighboring event (reordering an expiry against a delivery), and
// stretch a timer window (halve or double its bounds). An empty
// timerPool keeps the operator distribution — and thus every untimed
// fuzzing run — bit-identical to what it was before timing existed.
func mutateOnce(child *Schedule, corpus []entry, pool, timerPool []model.EnvEvent, maxEvents int, rng *rand.Rand) {
	ops := 8
	if len(timerPool) > 0 {
		ops = 11
	}
	switch pick := rng.Intn(ops); {
	case pick < 2: // truncate: keep a prefix
		if len(child.Events) > 1 {
			child.Events = child.Events[:1+rng.Intn(len(child.Events)-1)]
		}
	case pick < 4: // substitute: swap one event for a pool event
		child.Events[rng.Intn(len(child.Events))] = pool[rng.Intn(len(pool))]
	case pick < 5: // splice: prefix of child + suffix of a second parent
		other := corpus[rng.Intn(len(corpus))].sched
		cut := rng.Intn(len(child.Events) + 1)
		child.Events = child.Events[:cut]
		if len(other.Events) > 0 {
			from := rng.Intn(len(other.Events))
			child.Events = append(child.Events, other.Events[from:]...)
		}
		if len(child.Events) > maxEvents {
			child.Events = child.Events[:maxEvents]
		}
		if len(child.Events) == 0 {
			child.Events = append(child.Events, pool[rng.Intn(len(pool))])
		}
	case pick < 7: // insert: add a pool event at a random position
		if len(child.Events) < maxEvents {
			at := rng.Intn(len(child.Events) + 1)
			child.Events = append(child.Events, model.EnvEvent{})
			copy(child.Events[at+1:], child.Events[at:])
			child.Events[at] = pool[rng.Intn(len(pool))]
		}
	case pick < 8: // perturb: same events, different interleaving (Kairos-style)
		child.Seed = rng.Int63()
	case pick < 9: // timing: insert a timer-expiry directive
		if len(child.Events) < maxEvents {
			at := rng.Intn(len(child.Events) + 1)
			child.Events = append(child.Events, model.EnvEvent{})
			copy(child.Events[at+1:], child.Events[at:])
			child.Events[at] = timerPool[rng.Intn(len(timerPool))]
		}
	case pick < 10: // timing: shift an expiry across a neighboring event
		var idxs []int
		for i, e := range child.Events {
			if e.Msg.From != "" {
				idxs = append(idxs, i)
			}
		}
		if len(idxs) > 0 {
			i := idxs[rng.Intn(len(idxs))]
			j := i + 1 - 2*rng.Intn(2) // the neighbor before or after
			if j >= 0 && j < len(child.Events) {
				child.Events[i], child.Events[j] = child.Events[j], child.Events[i]
			}
		}
	default: // timing: stretch a timer window (halve or double the bounds)
		d := timerPool[rng.Intn(len(timerPool))]
		pct := 200
		if rng.Intn(2) == 0 {
			pct = 50
		}
		st := TimerStretch{Proc: d.Proc, Name: d.Msg.From, LoPct: pct, HiPct: pct}
		if len(child.Stretches) >= 4 {
			child.Stretches[rng.Intn(len(child.Stretches))] = st
		} else {
			child.Stretches = append(child.Stretches, st)
		}
	}
}
