package fuzz_test

import (
	"reflect"
	"testing"

	"cnetverifier/internal/fuzz"
)

// FuzzTimingCodec drives DecodeSchedule with arbitrary bytes and, for
// every input it accepts, checks the codec is a proper round-trip:
// re-encoding the decoded schedule parses back to the same value
// (timer-expiry directives keep their fourth field, stretches keep
// their percentages and order) and a second encode is byte-identical.
// The seed corpus under testdata/fuzz/FuzzTimingCodec covers the timed
// extensions of the format — 4-field event lines and stretch lines —
// alongside plain untimed schedules and malformed near-misses.
func FuzzTimingCodec(f *testing.F) {
	f.Add("# fuzz schedule\nseed: 7\nevent: ue.emm|PowerOn|none\n")
	f.Add("seed: -42\n" +
		"event: ue.emm|PowerOn|none\n" +
		"event: ue.emm|PeriodicTimer|none|T3412\n" +
		"event: ue.gmm|PeriodicTimer|none|T3312\n" +
		"stretch: ue.emm|T3412|50|50\n" +
		"stretch: ue.gmm|T3312|200|200\n")
	f.Add("event: ue.emm|PeriodicTimer|none|\n")     // empty timer name
	f.Add("stretch: ue.emm|T3412|-100|2147483647\n") // extreme percentages
	f.Add("stretch: ue.emm|T3412|fifty|100\n")       // must be rejected
	f.Add("event: ue.emm|PeriodicTimer|none|a|b\n")  // too many fields
	f.Add("seed: 9999999999999999999999\n")          // overflows int64
	f.Add("# only comments\n\n   \n")
	f.Add("stretch : ue.emm|T3412|50|50\n")
	f.Fuzz(func(t *testing.T, data string) {
		s, err := fuzz.DecodeSchedule([]byte(data))
		if err != nil {
			return // rejected inputs only need to not panic
		}
		enc := fuzz.EncodeSchedule(s)
		s2, err := fuzz.DecodeSchedule([]byte(enc))
		if err != nil {
			t.Fatalf("re-decode of encoded schedule failed: %v\nencoded:\n%s", err, enc)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("schedule drifted across encode/decode:\nfirst:  %#v\nsecond: %#v\nencoded:\n%s", s, s2, enc)
		}
		if enc2 := fuzz.EncodeSchedule(s2); enc2 != enc {
			t.Fatalf("encode not stable:\nfirst:\n%s\nsecond:\n%s", enc, enc2)
		}
	})
}
