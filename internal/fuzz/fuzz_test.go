package fuzz_test

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"cnetverifier/internal/core"
	"cnetverifier/internal/fuzz"
	"cnetverifier/internal/model"
	"cnetverifier/internal/types"
)

func s1Options(budget int) (core.Scoped, fuzz.Options) {
	s := core.StandardWorlds(false)["s1"]
	return s, fuzz.Options{
		Budget:    budget,
		Seed:      7,
		RoundSize: 16,
		Pool:      s.Scenario.Events(s.World),
	}
}

func corpusKeys(r *fuzz.Result) []string {
	out := make([]string, len(r.Corpus))
	for i, s := range r.Corpus {
		out[i] = fuzz.EncodeSchedule(s)
	}
	return out
}

func violationKeys(r *fuzz.Result) []string {
	out := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		out[i] = v.Property + "\x00" + v.Desc
	}
	return out
}

// TestFuzzDeterminism pins the determinism contract: the result is a
// pure function of (world, props, Options minus Workers). The same
// seed and budget reproduce the identical coverage digest, kept-input
// sequence and violation list at workers=1; workers=8 must land on the
// same digest and kept inputs, with the same violation set (compared
// order-insensitively, though the engine in fact preserves order).
func TestFuzzDeterminism(t *testing.T) {
	s, opt := s1Options(2000)

	r1, err := fuzz.Fuzz(s.World, s.Props, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fuzz.Fuzz(s.World, s.Props, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CoverageDigest != r2.CoverageDigest {
		t.Errorf("same seed diverged: digest %s vs %s", r1.CoverageDigest, r2.CoverageDigest)
	}
	if a, b := corpusKeys(r1), corpusKeys(r2); strings.Join(a, "") != strings.Join(b, "") {
		t.Errorf("same seed kept different inputs: %d vs %d entries", len(a), len(b))
	}
	if a, b := violationKeys(r1), violationKeys(r2); strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("same seed found different violations: %q vs %q", a, b)
	}

	opt.Workers = 8
	r8, err := fuzz.Fuzz(s.World, s.Props, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CoverageDigest != r8.CoverageDigest {
		t.Errorf("workers=8 digest %s, workers=1 %s", r8.CoverageDigest, r1.CoverageDigest)
	}
	if a, b := corpusKeys(r1), corpusKeys(r8); strings.Join(a, "") != strings.Join(b, "") {
		t.Errorf("workers=8 kept different inputs: %d vs %d entries", len(b), len(a))
	}
	a, b := violationKeys(r1), violationKeys(r8)
	sort.Strings(a)
	sort.Strings(b)
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("workers=8 violation set differs: %q vs %q", b, a)
	}
	if r1.Steps != r8.Steps || r1.Schedules != r8.Schedules {
		t.Errorf("workers=8 accounting differs: %d/%d steps, %d/%d schedules",
			r8.Steps, r1.Steps, r8.Schedules, r1.Schedules)
	}
}

// TestFuzzFindsAndShrinks runs the fuzzer on the defective S1 world
// until it trips a property, then shrinks the counterexample: the
// minimal trace must be no longer than the original, still reproduce
// under Shrink's strict replay, and pass the 1-minimality audit.
func TestFuzzFindsAndShrinks(t *testing.T) {
	s, opt := s1Options(30000)
	opt.StopAtFirst = true
	res, err := fuzz.Fuzz(s.World, s.Props, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatalf("no violation on the defective S1 world in %d steps", res.Steps)
	}
	v := res.Violations[0]
	sr, err := fuzz.Shrink(s.World, s.Props, v, fuzz.ShrinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Steps > sr.OriginalSteps {
		t.Errorf("shrink grew the trace: %d -> %d", sr.OriginalSteps, sr.Steps)
	}
	if sr.Steps != len(sr.Path) || sr.Steps == 0 {
		t.Errorf("inconsistent shrink result: Steps=%d, len(Path)=%d", sr.Steps, len(sr.Path))
	}
	if err := fuzz.VerifyMinimal(s.World, s.Props, sr.Property, sr.Desc, sr.Path); err != nil {
		t.Error(err)
	}
}

// TestCoverageNoteMerge exercises the feedback signal directly: the
// first firing of a transition is fresh, a repeat is not, and Merge
// reports exactly the bits the receiver was missing.
func TestCoverageNoteMerge(t *testing.T) {
	s := core.StandardWorlds(false)["s1"]
	w := s.World.Clone()
	steps := w.StepsEnvAppend(nil, s.Scenario.Events(s.World))
	if len(steps) == 0 {
		t.Fatal("no enabled environment step on the initial world")
	}
	applied, err := w.Apply(steps[0])
	if err != nil {
		t.Fatal(err)
	}

	cov := fuzz.NewCoverage(s.World)
	empty := cov.Digest()
	if fired, total := cov.Transitions(); fired != 0 || total == 0 {
		t.Fatalf("fresh coverage: %d/%d transitions", fired, total)
	}
	if !cov.Note(w, applied) {
		t.Error("first firing not reported fresh")
	}
	if cov.Note(w, applied) {
		t.Error("repeat firing reported fresh")
	}
	if cov.Digest() == empty {
		t.Error("digest unchanged after new coverage")
	}

	other := fuzz.NewCoverage(s.World)
	if neu := other.Merge(cov); neu == 0 {
		t.Error("merge into empty map found nothing new")
	}
	if neu := other.Merge(cov); neu != 0 {
		t.Errorf("second merge found %d new bits", neu)
	}
	if other.Digest() != cov.Digest() {
		t.Error("merged map digest differs from source")
	}
}

// TestScheduleCodecRoundTrip pins the .sched format: encode → decode →
// encode must be byte-identical.
func TestScheduleCodecRoundTrip(t *testing.T) {
	s := fuzz.Schedule{
		Seed: 42,
		Events: []model.EnvEvent{
			{Proc: "ue.emm", Msg: types.Message{Kind: types.MsgPowerOn}},
			{Proc: "ue.esm", Msg: types.Message{Kind: types.MsgDeactivatePDPRequest, Cause: types.CauseQoSNotAccepted}},
		},
	}
	enc := fuzz.EncodeSchedule(s)
	dec, err := fuzz.DecodeSchedule([]byte(enc))
	if err != nil {
		t.Fatal(err)
	}
	if again := fuzz.EncodeSchedule(dec); again != enc {
		t.Errorf("round trip drifted:\n--- first ---\n%s--- second ---\n%s", enc, again)
	}
	if _, err := fuzz.DecodeSchedule([]byte("event: ue.emm|NoSuchKind|none\n")); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := fuzz.DecodeSchedule([]byte("gibberish\n")); err == nil {
		t.Error("malformed line accepted")
	}
}

// TestTraceCodecRoundTrip pins the .corpus format, including every
// Message field the strict replay depends on (system, domain, protocol,
// sequence number, routing stamps).
func TestTraceCodecRoundTrip(t *testing.T) {
	tr := fuzz.Trace{
		Finding:  "s1",
		Property: "PacketService_OK",
		Desc:     "device detached by network without user action",
		Digest:   "00000000deadbeef",
		Steps: []model.Step{
			{Kind: model.StepEnv, Proc: "ue.emm", TransIdx: 3,
				Msg: types.Message{Kind: types.MsgPowerOn}},
			{Kind: model.StepDeliver, Proc: "mme.emm", Pos: 1, TransIdx: 2,
				Msg: types.Message{Kind: types.MsgAttachRequest, System: 2, Domain: 1, Proto: 6, Seq: 9,
					From: "ue.emm", To: "mme.emm"}},
			{Kind: model.StepDrop, Proc: "ue.emm",
				Msg: types.Message{Kind: types.MsgAttachAccept, From: "mme.emm", To: "ue.emm"}},
			{Kind: model.StepDiscard, Proc: "ue.emm",
				Msg: types.Message{Kind: types.MsgAttachAccept}},
		},
	}
	enc := fuzz.EncodeTrace(tr)
	dec, err := fuzz.DecodeTrace([]byte(enc))
	if err != nil {
		t.Fatal(err)
	}
	if again := fuzz.EncodeTrace(dec); again != enc {
		t.Errorf("round trip drifted:\n--- first ---\n%s--- second ---\n%s", enc, again)
	}
	if len(dec.Steps) != len(tr.Steps) {
		t.Fatalf("decoded %d steps, want %d", len(dec.Steps), len(tr.Steps))
	}
	for i := range tr.Steps {
		if !reflect.DeepEqual(dec.Steps[i], tr.Steps[i]) {
			t.Errorf("step %d drifted: %+v != %+v", i+1, dec.Steps[i], tr.Steps[i])
		}
	}
	if _, err := fuzz.DecodeTrace([]byte("steps: 2\nstep: env|p|0|0|PowerOn|none|0|0|0|0||\n")); err == nil {
		t.Error("step-count mismatch accepted")
	}
	if _, err := fuzz.DecodeTrace([]byte("step: env|p|0|0|PowerOn|none\n")); err == nil {
		t.Error("legacy 6-field step accepted")
	}
}

// TestRandomBaselineDeterminism pins the control arm too: the
// EXPERIMENTS.md comparison is only meaningful if both arms reproduce.
func TestRandomBaselineDeterminism(t *testing.T) {
	s, opt := s1Options(1500)
	r1, err := fuzz.RandomBaseline(s.World, s.Props, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fuzz.RandomBaseline(s.World, s.Props, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CoverageDigest != r2.CoverageDigest {
		t.Errorf("baseline diverged: %s vs %s", r1.CoverageDigest, r2.CoverageDigest)
	}
}
