package fuzz_test

import (
	"os"
	"path/filepath"
	"testing"

	"cnetverifier/internal/check"
	"cnetverifier/internal/core"
	"cnetverifier/internal/fuzz"
	"cnetverifier/internal/model"
)

// This file pins the timing golden corpus under testdata/timing: for
// each listed world, a timing-ONLY violation — one the untimed scoped
// world cannot reach, because its periodic expiry transitions are never
// offered by the untimed scenario — shrunk 1-minimal on both axes
// (ddmin over events, expiry bubbling over time) and re-verified from
// the file alone. It shares the -update flag with the untimed golden
// corpus test.

// timingCorpusWorlds returns the StandardWorlds keys with a timing
// golden entry. S1 is the canonical choice: its untimed scenario offers
// no periodic events at all, so every expiry-reached violation is
// timing-only by construction.
func timingCorpusWorlds() []string {
	return []string{"s1"}
}

// timedScoped builds the NAS-timed variant of a standard world. Each
// call starts from a fresh StandardWorlds map: WithTiming arms timers
// on the scoped world in place, so timed and untimed references must
// never share a World.
func timedScoped(t *testing.T, name string) core.Scoped {
	t.Helper()
	s, ok := core.StandardWorlds(false)[name]
	if !ok {
		t.Fatalf("no standard world %q", name)
	}
	st, err := core.WithTiming(s, core.TimingNAS)
	if err != nil {
		t.Fatal(err)
	}
	if !st.World.TimingEnabled() {
		t.Fatalf("world %q has no periodic consumers; no timing corpus possible", name)
	}
	return st
}

// untimedViolationSet screens the untimed world breadth-first and
// returns its (property, description) set — the reference the timing
// corpus entry must fall outside of.
func untimedViolationSet(t *testing.T, name string) map[string]bool {
	t.Helper()
	s, ok := core.StandardWorlds(false)[name]
	if !ok {
		t.Fatalf("no standard world %q", name)
	}
	opt := s.Options
	opt.Strategy = check.BFS
	r, err := core.Screen(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[string]bool, len(r.Result.Violations))
	for _, v := range r.Result.Violations {
		set[v.Property+"\x00"+v.Desc] = true
	}
	return set
}

func countTimerSteps(steps []model.Step) int {
	n := 0
	for _, s := range steps {
		if s.Kind == model.StepTimer {
			n++
		}
	}
	return n
}

// TestTimingGoldenCorpus screens each NAS-timed world breadth-first,
// picks the first violation that (a) the untimed world cannot reach and
// (b) whose counterexample actually fires a timer, shrinks it in both
// dimensions, and compares against the checked-in trace. The verify
// path re-derives everything from the file: strict replay on the timed
// world, property reproduction, digest, 1-minimality, at least one
// StepTimer in the minimal trace, and absence from the untimed
// violation set. Refresh intentionally with:
//
//	go test ./internal/fuzz -run TestTimingGoldenCorpus -update
func TestTimingGoldenCorpus(t *testing.T) {
	for _, name := range timingCorpusWorlds() {
		name := name
		t.Run(name, func(t *testing.T) {
			st := timedScoped(t, name)
			untimed := untimedViolationSet(t, name)
			path := filepath.Join("testdata", "timing", name+".corpus")

			if *update {
				opt := st.Options
				opt.Strategy = check.BFS
				r, err := core.Screen(st, opt)
				if err != nil {
					t.Fatal(err)
				}
				var pick *check.Violation
				for i, v := range r.Result.Violations {
					if untimed[v.Property+"\x00"+v.Desc] || countTimerSteps(v.Path) == 0 {
						continue
					}
					pick = &r.Result.Violations[i]
					break
				}
				if pick == nil {
					t.Fatal("timed screening found no timing-only violation with a timer step")
				}
				sr, err := fuzz.Shrink(st.World, st.Props, *pick, fuzz.ShrinkOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if countTimerSteps(sr.Path) == 0 {
					t.Fatal("shrinking removed every timer step from a timing-only violation")
				}
				out := fuzz.EncodeTrace(fuzz.Trace{
					Finding:  name,
					Property: sr.Property,
					Desc:     sr.Desc,
					Digest:   sr.Digest,
					Steps:    sr.Path,
				})
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}

			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing timing corpus (run with -update to create): %v", err)
			}
			tr, err := fuzz.DecodeTrace(data)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Finding != name {
				t.Fatalf("corpus names finding %q, file is %q", tr.Finding, name)
			}
			if countTimerSteps(tr.Steps) == 0 {
				t.Fatal("timing corpus trace fires no timer")
			}
			if untimed[tr.Property+"\x00"+tr.Desc] {
				t.Fatalf("corpus violation %s: %s is reachable untimed — not timing-only", tr.Property, tr.Desc)
			}

			// Strict replay on the timed world (see TestGoldenCorpus for
			// why this is unrolled rather than check.Replay).
			w := st.World.Clone()
			var last model.Step
			for i, s := range tr.Steps {
				applied, err := w.Apply(s)
				if err != nil {
					t.Fatalf("strict replay step %d (%v): %v", i+1, s, err)
				}
				last = applied
			}
			reproduced := false
			for _, p := range st.Props {
				if p.Name() == tr.Property && p.Check(w, last) == tr.Desc {
					reproduced = true
					break
				}
			}
			if !reproduced {
				t.Fatalf("replay did not reproduce %s: %s", tr.Property, tr.Desc)
			}
			if got := fuzz.TraceDigest(tr.Steps, w); got != tr.Digest {
				t.Fatalf("stability digest drifted: got %s, corpus has %s", got, tr.Digest)
			}
			if err := fuzz.VerifyMinimal(st.World, st.Props, tr.Property, tr.Desc, tr.Steps); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTimingGoldenCorpusComplete keeps testdata/timing and
// timingCorpusWorlds in sync.
func TestTimingGoldenCorpusComplete(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "timing", "*.corpus"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, n := range timingCorpusWorlds() {
		want[n] = true
	}
	for _, f := range files {
		name := f[len(filepath.Join("testdata", "timing"))+1 : len(f)-len(".corpus")]
		if !want[name] {
			t.Errorf("stray timing corpus file %s (no timingCorpusWorlds entry)", f)
		}
		delete(want, name)
	}
	for n := range want {
		t.Errorf("timingCorpusWorlds lists %s but no corpus file exists", n)
	}
}
