package fuzz_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cnetverifier/internal/check"
	"cnetverifier/internal/core"
	"cnetverifier/internal/fuzz"
	"cnetverifier/internal/model"
)

// This file pins the minimized golden corpus: for every scoped S1–S4/S6
// screening world, the first BFS counterexample ddmin-shrunk to a
// 1-minimal trace, stored under testdata/corpus. (S5 has no entry: it
// is an operational finding measured on the emulator's radio model, not
// a reachable bad FSM state — see core.ScopedModels.) The test lives in
// package fuzz_test because internal/core imports internal/fuzz for
// ShrinkScreened; the external test package can close the loop without
// a cycle.

var update = flag.Bool("update", false, "rewrite the minimized golden corpus")

// corpusWorlds returns the StandardWorlds keys with a golden corpus
// entry, in file order. The full world random-walks a sampled space and
// is pinned by the fuzz determinism suite instead.
func corpusWorlds() []string {
	return []string{"s1", "s2", "s3", "s4cs", "s4ps", "s6"}
}

// TestGoldenCorpus screens each scoped world breadth-first (the
// canonical shortest counterexample), shrinks it, and compares against
// the checked-in minimized trace. The verify path re-derives everything
// from the file alone: the steps must pass the strict check.Replay, the
// named property must report the recorded description on the final
// step, the digest must match a fresh TraceDigest of the replayed
// trace, and VerifyMinimal must confirm no single step is removable.
// Refresh intentionally with:
//
//	go test ./internal/fuzz -run TestGoldenCorpus -update
func TestGoldenCorpus(t *testing.T) {
	worlds := core.StandardWorlds(false)
	for _, name := range corpusWorlds() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, ok := worlds[name]
			if !ok {
				t.Fatalf("no standard world %q", name)
			}
			path := filepath.Join("testdata", "corpus", name+".corpus")

			if *update {
				opt := s.Options
				opt.Strategy = check.BFS
				r, err := core.Screen(s, opt)
				if err != nil {
					t.Fatal(err)
				}
				if len(r.Result.Violations) == 0 {
					t.Fatal("defective world reported no violation")
				}
				sr, err := fuzz.Shrink(s.World, s.Props, r.Result.Violations[0], fuzz.ShrinkOptions{})
				if err != nil {
					t.Fatal(err)
				}
				out := fuzz.EncodeTrace(fuzz.Trace{
					Finding:  name,
					Property: sr.Property,
					Desc:     sr.Desc,
					Digest:   sr.Digest,
					Steps:    sr.Path,
				})
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}

			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing corpus (run with -update to create): %v", err)
			}
			tr, err := fuzz.DecodeTrace(data)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Finding != name {
				t.Fatalf("corpus names finding %q, file is %q", tr.Finding, name)
			}
			if len(tr.Steps) == 0 {
				t.Fatal("corpus trace has no steps")
			}

			// Strict replay — check.Replay's discipline (clone, Apply each
			// recorded step verbatim), unrolled here because the property
			// must be checked against the *applied* final step: Apply fills
			// Label, and property descriptions quote it.
			w := s.World.Clone()
			var last model.Step
			for i, st := range tr.Steps {
				applied, err := w.Apply(st)
				if err != nil {
					t.Fatalf("strict replay step %d (%v): %v", i+1, st, err)
				}
				last = applied
			}
			end := w
			reproduced := false
			for _, p := range s.Props {
				if p.Name() == tr.Property && p.Check(end, last) == tr.Desc {
					reproduced = true
					break
				}
			}
			if !reproduced {
				t.Fatalf("replay did not reproduce %s: %s", tr.Property, tr.Desc)
			}
			if got := fuzz.TraceDigest(tr.Steps, end); got != tr.Digest {
				t.Fatalf("stability digest drifted: got %s, corpus has %s", got, tr.Digest)
			}

			// The acceptance minimality check: removing any single step
			// must break the violation under anchored replay.
			if err := fuzz.VerifyMinimal(s.World, s.Props, tr.Property, tr.Desc, tr.Steps); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGoldenCorpusComplete keeps the corpus directory and corpusWorlds
// in sync: every *.corpus file must be pinned by a subtest above.
func TestGoldenCorpusComplete(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.corpus"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, n := range corpusWorlds() {
		want[n] = true
	}
	for _, f := range files {
		name := f[len(filepath.Join("testdata", "corpus"))+1 : len(f)-len(".corpus")]
		if !want[name] {
			t.Errorf("stray corpus file %s (no corpusWorlds entry)", f)
		}
		delete(want, name)
	}
	for n := range want {
		t.Errorf("corpusWorlds lists %s but no corpus file exists", n)
	}
}
