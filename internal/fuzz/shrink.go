package fuzz

import (
	"fmt"

	"cnetverifier/internal/check"
	"cnetverifier/internal/model"
)

// This file implements counterexample shrinking: ddmin (Zeller's
// delta debugging) over the event schedule of a violation trace, with
// every candidate re-verified by replay against the initial world.
//
// Candidates are replayed *anchored*: each remaining step is re-matched
// against the current world by structural identity (step kind, process,
// message kind and cause, fired transition index) instead of by its
// recorded queue position — removing an earlier step shifts queue
// positions, but the surviving steps still name the same protocol
// actions. A candidate passes when the replay reaches the original
// (property, description) violation; it fails when a step no longer
// matches any enabled action or the violation is never reached. The
// passing replay yields a concrete step sequence freshly enumerated
// from the world, so the final minimal trace replays under the strict
// check.Replay with no tolerance at all.

// ShrinkOptions configures Shrink.
type ShrinkOptions struct {
	// MaxTests bounds the number of anchored replays (0 = unlimited).
	// Shrinking a trace of n steps needs O(n²) replays worst-case.
	MaxTests int
}

// ShrinkResult is a minimized counterexample.
type ShrinkResult struct {
	// Property and Desc identify the violation (unchanged by
	// shrinking: a candidate only passes if it reaches the same pair).
	Property string `json:"property"`
	Desc     string `json:"desc"`
	// OriginalSteps and Steps count the trace length before and after.
	OriginalSteps int `json:"original_steps"`
	Steps         int `json:"steps"`
	// Tests counts the anchored replays performed.
	Tests int `json:"tests"`
	// TimeShifts counts the successful time-axis normalization moves:
	// each one bubbled a timer-expiry step one position earlier past a
	// non-timer step while preserving the violation. Zero for untimed
	// traces (the pass is skipped entirely).
	TimeShifts int `json:"time_shifts,omitempty"`
	// Path is the minimal trace: removing any single step breaks the
	// replay (1-minimality, the ddmin guarantee).
	Path []model.Step `json:"-"`
	// Digest is the stability digest: an FNV-64a hash over the rendered
	// minimal steps and the canonical encoding of the state the strict
	// replay reaches. Two shrinks of equivalent violations landing on
	// the same digest reached byte-identical final states via the same
	// action sequence.
	Digest string `json:"digest"`
}

// AnchoredReplay replays candidate steps against a copy of w0,
// re-matching each step structurally (see the file comment). It
// returns the concrete applied step sequence up to and including the
// step at which the wanted (property, desc) violation appeared, and
// whether it appeared at all. The returned path is strictly
// replayable: it was enumerated step by step from w0.
func AnchoredReplay(w0 *model.World, props []check.Property, property, desc string, candidate []model.Step) ([]model.Step, bool) {
	w := w0.Clone()
	var buf []model.Step
	concrete := make([]model.Step, 0, len(candidate))
	for _, want := range candidate {
		s, ok := matchStep(w, &buf, want)
		if !ok {
			return nil, false
		}
		applied, err := w.Apply(s)
		if err != nil {
			return nil, false
		}
		concrete = append(concrete, applied)
		for _, p := range props {
			if p.Name() == property && p.Check(w, applied) == desc {
				return concrete, true
			}
		}
	}
	return nil, false
}

// matchStep finds the enabled step of w structurally identical to
// want: same kind, process, message kind/cause, and (for deliveries
// and injections) the same spec transition. The first match in
// enumeration order wins, keeping the anchoring deterministic.
func matchStep(w *model.World, buf *[]model.Step, want model.Step) (model.Step, bool) {
	if want.Kind == model.StepEnv {
		*buf = w.StepsEnvAppend((*buf)[:0], []model.EnvEvent{{Proc: want.Proc, Msg: want.Msg}})
		for _, s := range *buf {
			if s.TransIdx == want.TransIdx {
				return s, true
			}
		}
		return model.Step{}, false
	}
	if want.Kind == model.StepTimer {
		// Timer expiries anchor on (process, timer name, transition):
		// removing earlier steps shifts the virtual clock, but the
		// surviving expiry still names the same timer firing the same
		// spec transition.
		*buf = w.StepsTimerAppend((*buf)[:0])
		for _, s := range *buf {
			if s.Proc == want.Proc && s.Msg.From == want.Msg.From && s.TransIdx == want.TransIdx {
				return s, true
			}
		}
		return model.Step{}, false
	}
	*buf = w.StepsQueueAppend((*buf)[:0])
	for _, s := range *buf {
		if s.Kind != want.Kind || s.Proc != want.Proc {
			continue
		}
		if s.Msg.Kind != want.Msg.Kind || s.Msg.Cause != want.Msg.Cause {
			continue
		}
		if s.Kind == model.StepDeliver && s.TransIdx != want.TransIdx {
			continue
		}
		return s, true
	}
	return model.Step{}, false
}

// Shrink reduces a violation's trace to a 1-minimal one: removing any
// single remaining step makes the violation unreachable under anchored
// replay. The input violation may come from the fuzzer or from a
// screening run (check.Result); its path must reproduce on w0.
func Shrink(w0 *model.World, props []check.Property, v check.Violation, opt ShrinkOptions) (*ShrinkResult, error) {
	res := &ShrinkResult{Property: v.Property, Desc: v.Desc, OriginalSteps: len(v.Path)}

	test := func(cand []model.Step) ([]model.Step, bool) {
		res.Tests++
		return AnchoredReplay(w0, props, v.Property, v.Desc, cand)
	}
	overBudget := func() bool { return opt.MaxTests > 0 && res.Tests >= opt.MaxTests }

	cur, ok := test(v.Path)
	if !ok {
		return nil, fmt.Errorf("fuzz: violation of %s does not reproduce on anchored replay", v.Property)
	}

	// ddmin over cur. Granularity n doubles on failure, resets on a
	// successful subset, decrements on a successful complement; the
	// loop ends 1-minimal when every single-step removal (complements
	// at n == len) has failed.
	ddmin := func() {
		n := 2
		for len(cur) >= 2 && !overBudget() {
			reduced := false
			for i := 0; i < n && !overBudget(); i++ {
				lo, hi := i*len(cur)/n, (i+1)*len(cur)/n
				if concrete, ok := test(cur[lo:hi]); ok {
					cur, n, reduced = concrete, 2, true
					break
				}
			}
			if !reduced && n > 2 {
				comp := make([]model.Step, 0, len(cur))
				for i := 0; i < n && !overBudget(); i++ {
					lo, hi := i*len(cur)/n, (i+1)*len(cur)/n
					comp = append(append(comp[:0], cur[:lo]...), cur[hi:]...)
					if concrete, ok := test(comp); ok {
						cur, reduced = concrete, true
						if n = n - 1; n < 2 {
							n = 2
						}
						break
					}
				}
			}
			if reduced {
				continue
			}
			if n >= len(cur) {
				break
			}
			if n *= 2; n > len(cur) {
				n = len(cur)
			}
		}
	}

	// Time-axis normalization (timed traces only): bubble each timer
	// expiry as early as the violation allows by swapping it with the
	// non-timer step before it and keeping the swap when the anchored
	// replay still reproduces. Each kept swap removes one
	// expiry-vs-delivery inversion, so the pass terminates at a
	// canonical "expiries first where order is irrelevant" form — the
	// second shrinking dimension, orthogonal to ddmin's event axis.
	// Returns whether any swap was kept; a kept swap can unlock further
	// event-axis removals, so the caller re-runs ddmin to a joint
	// fixpoint.
	bubble := func() bool {
		timed := false
		for _, s := range cur {
			if s.Kind == model.StepTimer {
				timed = true
				break
			}
		}
		if !timed {
			return false
		}
		shifted := false
		for changed := true; changed && !overBudget(); {
			changed = false
			for i := 1; i < len(cur) && !overBudget(); i++ {
				if cur[i].Kind != model.StepTimer || cur[i-1].Kind == model.StepTimer {
					continue
				}
				cand := append([]model.Step(nil), cur...)
				cand[i-1], cand[i] = cand[i], cand[i-1]
				if concrete, ok := test(cand); ok {
					cur = concrete
					res.TimeShifts++
					shifted, changed = true, true
				}
			}
		}
		return shifted
	}

	ddmin()
	for bubble() && !overBudget() {
		ddmin()
	}

	// Strict re-verification: the minimal path must replay exactly
	// (check.Replay, no anchoring) and reproduce the description.
	end, err := check.Replay(w0, cur)
	if err != nil {
		return nil, fmt.Errorf("fuzz: minimal trace failed strict replay: %w", err)
	}
	reproduced := false
	last := cur[len(cur)-1]
	for _, p := range props {
		if p.Name() == v.Property && p.Check(end, last) == v.Desc {
			reproduced = true
			break
		}
	}
	if !reproduced {
		return nil, fmt.Errorf("fuzz: minimal trace does not reproduce %s on strict replay", v.Property)
	}

	res.Steps = len(cur)
	res.Path = cur
	res.Digest = TraceDigest(cur, end)
	return res, nil
}

// VerifyMinimal checks 1-minimality: removing any single step of the
// path must break the anchored replay (either a step stops matching or
// the violation is never reached). It returns an error naming the
// first removable step.
func VerifyMinimal(w0 *model.World, props []check.Property, property, desc string, path []model.Step) error {
	if len(path) == 0 {
		return nil
	}
	cand := make([]model.Step, 0, len(path)-1)
	for i := range path {
		cand = append(append(cand[:0], path[:i]...), path[i+1:]...)
		if _, ok := AnchoredReplay(w0, props, property, desc, cand); ok {
			return fmt.Errorf("fuzz: trace not minimal: still violates %s without step %d (%v)", property, i+1, path[i])
		}
	}
	return nil
}

// TraceDigest hashes the steps and the final state encoding — the
// stability digest stored with every minimized trace. The golden corpus
// test recomputes it from a strict replay to detect silent drift in
// either the steps or the state they reach. Steps are hashed in their
// codec rendering (encodeStep), not Step.String(): the digest must be
// identical whether computed on freshly applied steps (Label filled by
// Apply) or on steps decoded back from a corpus file (Label absent).
func TraceDigest(path []model.Step, end *model.World) string {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	write := func(b []byte) {
		for _, c := range b {
			h ^= uint64(c)
			h *= prime64
		}
	}
	for _, s := range path {
		write([]byte(encodeStep(s)))
		write([]byte{'\n'})
	}
	write(end.Encode(nil))
	return fmt.Sprintf("%016x", h)
}
