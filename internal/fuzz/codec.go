package fuzz

import (
	"fmt"
	"strconv"
	"strings"

	"cnetverifier/internal/model"
	"cnetverifier/internal/types"
)

// This file is the textual codec for the fuzzer's on-disk artifacts:
// minimized counterexample traces (the golden corpus under
// testdata/corpus, regenerated with -update) and fuzzing schedules
// (the -corpus directory of cnetfuzz). Message kinds and causes are
// stored by name, not number, so checked-in files survive renumbering
// of the types constants; steps additionally carry the queue position
// and transition index the strict replay needs.

// Trace is a serialized minimized counterexample.
type Trace struct {
	// Finding names the world the trace replays on (a StandardWorlds
	// key, e.g. "s1").
	Finding string
	// Property and Desc identify the violation the trace reaches.
	Property string
	Desc     string
	// Digest is the shrink stability digest (ShrinkResult.Digest).
	Digest string
	// Steps is the minimal schedule.
	Steps []model.Step
}

// EncodeTrace renders a trace in the corpus file format.
func EncodeTrace(t Trace) string {
	var b strings.Builder
	b.WriteString("# minimized counterexample (internal/fuzz; regenerate with -update)\n")
	fmt.Fprintf(&b, "finding: %s\n", t.Finding)
	fmt.Fprintf(&b, "property: %s\n", t.Property)
	fmt.Fprintf(&b, "desc: %s\n", t.Desc)
	fmt.Fprintf(&b, "digest: %s\n", t.Digest)
	fmt.Fprintf(&b, "steps: %d\n", len(t.Steps))
	for _, s := range t.Steps {
		fmt.Fprintf(&b, "step: %s\n", encodeStep(s))
	}
	return b.String()
}

// DecodeTrace parses the corpus file format.
func DecodeTrace(data []byte) (Trace, error) {
	var t Trace
	declared := -1
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, ": ")
		if !ok {
			if key, val, ok = strings.Cut(line, ":"); !ok {
				return t, fmt.Errorf("fuzz: trace line %d: no key", ln+1)
			}
		}
		switch key {
		case "finding":
			t.Finding = val
		case "property":
			t.Property = val
		case "desc":
			t.Desc = val
		case "digest":
			t.Digest = val
		case "steps":
			n, err := strconv.Atoi(val)
			if err != nil {
				return t, fmt.Errorf("fuzz: trace line %d: bad step count %q", ln+1, val)
			}
			declared = n
		case "step":
			s, err := decodeStep(val)
			if err != nil {
				return t, fmt.Errorf("fuzz: trace line %d: %w", ln+1, err)
			}
			t.Steps = append(t.Steps, s)
		default:
			return t, fmt.Errorf("fuzz: trace line %d: unknown key %q", ln+1, key)
		}
	}
	if declared >= 0 && declared != len(t.Steps) {
		return t, fmt.Errorf("fuzz: trace declares %d steps, carries %d", declared, len(t.Steps))
	}
	return t, nil
}

// EncodeSchedule renders a fuzzing schedule (the -corpus directory
// format).
func EncodeSchedule(s Schedule) string {
	var b strings.Builder
	b.WriteString("# fuzz schedule\n")
	fmt.Fprintf(&b, "seed: %d\n", s.Seed)
	for _, e := range s.Events {
		if e.Msg.From != "" {
			// Timer-expiry directive: a fourth field names the timer.
			fmt.Fprintf(&b, "event: %s|%s|%s|%s\n", e.Proc, e.Msg.Kind, e.Msg.Cause, e.Msg.From)
			continue
		}
		fmt.Fprintf(&b, "event: %s|%s|%s\n", e.Proc, e.Msg.Kind, e.Msg.Cause)
	}
	for _, t := range s.Stretches {
		fmt.Fprintf(&b, "stretch: %s|%s|%d|%d\n", t.Proc, t.Name, t.LoPct, t.HiPct)
	}
	return b.String()
}

// DecodeSchedule parses the schedule format.
func DecodeSchedule(data []byte) (Schedule, error) {
	var s Schedule
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, ": ")
		if !ok {
			return s, fmt.Errorf("fuzz: schedule line %d: no key", ln+1)
		}
		switch key {
		case "seed":
			seed, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return s, fmt.Errorf("fuzz: schedule line %d: bad seed %q", ln+1, val)
			}
			s.Seed = seed
		case "event":
			parts := strings.Split(val, "|")
			if len(parts) != 3 && len(parts) != 4 {
				return s, fmt.Errorf("fuzz: schedule line %d: want proc|kind|cause[|timer]", ln+1)
			}
			kind, ok := types.KindByName(parts[1])
			if !ok {
				return s, fmt.Errorf("fuzz: schedule line %d: unknown kind %q", ln+1, parts[1])
			}
			cause, ok := types.CauseByName(parts[2])
			if !ok {
				return s, fmt.Errorf("fuzz: schedule line %d: unknown cause %q", ln+1, parts[2])
			}
			e := model.EnvEvent{Proc: parts[0], Msg: types.Message{Kind: kind, Cause: cause}}
			if len(parts) == 4 {
				e.Msg.From = parts[3] // timer-expiry directive
			}
			s.Events = append(s.Events, e)
		case "stretch":
			parts := strings.Split(val, "|")
			if len(parts) != 4 {
				return s, fmt.Errorf("fuzz: schedule line %d: want proc|timer|loPct|hiPct", ln+1)
			}
			lo, err := strconv.Atoi(parts[2])
			if err != nil {
				return s, fmt.Errorf("fuzz: schedule line %d: bad lo percentage %q", ln+1, parts[2])
			}
			hi, err := strconv.Atoi(parts[3])
			if err != nil {
				return s, fmt.Errorf("fuzz: schedule line %d: bad hi percentage %q", ln+1, parts[3])
			}
			s.Stretches = append(s.Stretches, TimerStretch{Proc: parts[0], Name: parts[1], LoPct: lo, HiPct: hi})
		default:
			return s, fmt.Errorf("fuzz: schedule line %d: unknown key %q", ln+1, key)
		}
	}
	return s, nil
}

var stepKindNames = map[model.StepKind]string{
	model.StepDeliver: "deliver",
	model.StepDrop:    "drop",
	model.StepDiscard: "discard",
	model.StepEnv:     "env",
	model.StepTimer:   "timer",
}

// encodeStep renders one step as
// kind|proc|pos|transidx|msgkind|cause|sys|dom|proto|seq|from|to.
// The strict replay applies the step verbatim, so every Message field
// that influences the world — including the routing stamps From/To and
// the NAS sequence number — must round-trip; only the Apply-filled
// outputs (Label, Notes, loss counters) are derived and omitted.
func encodeStep(s model.Step) string {
	return fmt.Sprintf("%s|%s|%d|%d|%s|%s|%d|%d|%d|%d|%s|%s",
		stepKindNames[s.Kind], s.Proc, s.Pos, s.TransIdx, s.Msg.Kind, s.Msg.Cause,
		s.Msg.System, s.Msg.Domain, s.Msg.Proto, s.Msg.Seq, s.Msg.From, s.Msg.To)
}

func decodeStep(val string) (model.Step, error) {
	parts := strings.Split(val, "|")
	if len(parts) != 12 {
		return model.Step{}, fmt.Errorf("bad step %q: want kind|proc|pos|transidx|msgkind|cause|sys|dom|proto|seq|from|to", val)
	}
	var s model.Step
	found := false
	for k, name := range stepKindNames {
		if name == parts[0] {
			s.Kind, found = k, true
			break
		}
	}
	if !found {
		return s, fmt.Errorf("unknown step kind %q", parts[0])
	}
	s.Proc = parts[1]
	pos, err := strconv.Atoi(parts[2])
	if err != nil {
		return s, fmt.Errorf("bad position %q", parts[2])
	}
	s.Pos = pos
	ti, err := strconv.Atoi(parts[3])
	if err != nil {
		return s, fmt.Errorf("bad transition index %q", parts[3])
	}
	s.TransIdx = ti
	kind, ok := types.KindByName(parts[4])
	if !ok {
		return s, fmt.Errorf("unknown kind %q", parts[4])
	}
	s.Msg.Kind = kind
	cause, ok := types.CauseByName(parts[5])
	if !ok {
		return s, fmt.Errorf("unknown cause %q", parts[5])
	}
	s.Msg.Cause = cause
	for i, set := range []func(uint64){
		func(v uint64) { s.Msg.System = types.System(v) },
		func(v uint64) { s.Msg.Domain = types.Domain(v) },
		func(v uint64) { s.Msg.Proto = types.Protocol(v) },
		func(v uint64) { s.Msg.Seq = uint32(v) },
	} {
		v, err := strconv.ParseUint(parts[6+i], 10, 32)
		if err != nil {
			return s, fmt.Errorf("bad numeric field %q", parts[6+i])
		}
		set(v)
	}
	s.Msg.From, s.Msg.To = parts[10], parts[11]
	return s, nil
}
