package fuzz

import (
	"fmt"
	"math/rand"

	"cnetverifier/internal/check"
	"cnetverifier/internal/model"
)

// Schedule is one fuzzing input: an ordered list of environment events
// to inject, plus the seed that resolves the remaining nondeterminism
// (which enabled transition branch fires on injection, and which queued
// message is processed at each drain step). The events are the genome
// the mutators edit; perturbing only the seed re-executes the same user
// story under a different signaling interleaving — the Kairos-style
// timing dimension.
type Schedule struct {
	Seed   int64
	Events []model.EnvEvent
	// Stretches rescale armed timer windows on the initial world before
	// injection starts — the fuzzer's time-axis mutation. They apply to
	// scratch executions only; resumed candidates inherit the parent's
	// already-stretched snapshot (extend-mutants copy the parent's
	// stretches so the genome stays faithful).
	Stretches []TimerStretch
}

// TimerStretch rescales one timer's [earliest, latest] expiry window by
// percentage factors (100 = unchanged): halving Lo lets an expiry race
// ahead of deliveries it previously had to wait for, doubling Hi lets
// deliveries overtake an expiry — exactly the admissible-ordering edges
// timed screening explores, steered per input.
type TimerStretch struct {
	Proc, Name   string
	LoPct, HiPct int
}

// clone deep-copies the schedule so mutators never alias corpus
// entries.
func (s Schedule) clone() Schedule {
	return Schedule{
		Seed:      s.Seed,
		Events:    append([]model.EnvEvent(nil), s.Events...),
		Stretches: append([]TimerStretch(nil), s.Stretches...),
	}
}

// genomeHash fingerprints the full genome (seed and events) with
// FNV-64a; two schedules with equal hashes execute identically, so the
// fuzzer's dedup uses it to avoid re-walking known paths.
func (s Schedule) genomeHash() uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v >> (8 * i) & 0xff
			h *= prime64
		}
	}
	str := func(v string) {
		for _, b := range []byte(v) {
			h ^= uint64(b)
			h *= prime64
		}
		h *= prime64 // NUL terminator: "ab"+"c" never collides with "a"+"bc"
	}
	mix(uint64(s.Seed))
	for _, e := range s.Events {
		str(e.Proc)
		str(e.Msg.From) // timer-expiry directives differ by timer name
		mix(uint64(e.Msg.Kind)<<32 | uint64(e.Msg.Cause))
	}
	for _, t := range s.Stretches {
		str(t.Proc)
		str(t.Name)
		mix(uint64(uint32(t.LoPct))<<32 | uint64(uint32(t.HiPct)))
	}
	return h
}

// entry is a kept corpus input: its genome, the world state its
// execution ended in (the snapshot), and the concrete step path from
// the initial world that reached it. Extend-mutants resume from the
// snapshot and are charged only for their tail steps — re-walking the
// parent's prefix would burn exploration budget on known coverage
// (the retrace tax that makes naive schedule fuzzing lose to uniform
// sampling under a step budget).
type entry struct {
	sched Schedule
	end   *model.World
	path  []model.Step
}

// candidate is one input scheduled for execution: either a scratch
// schedule (parent < 0) executed from the initial world, or a resumed
// one executed from corpus[parent]'s snapshot with only tail injected.
type candidate struct {
	sched  Schedule
	parent int
	tail   []model.EnvEvent
}

// executor is per-worker scratch: one reusable world refreshed with
// CloneInto per schedule (the PR-4 pooling discipline) plus step and
// path buffers, so executing thousands of schedules keeps one
// allocation footprint.
type executor struct {
	w     *model.World
	steps []model.Step
	path  []model.Step
}

// execResult is the outcome of executing one schedule.
type execResult struct {
	// steps counts applied world transitions (the budget unit).
	steps int
	// cov covers the transitions this run itself applied (merged by the
	// caller in candidate order, so parallel execution stays
	// deterministic). Resumed runs cover only their tail: the prefix was
	// already merged when the parent entered the corpus.
	cov *Coverage
	// violations holds one entry per distinct (property, description)
	// pair reached by this run, each with a concrete replayable path
	// from the initial world.
	violations []check.Violation
	// end and path snapshot the final world and full concrete path so
	// the input can enter the corpus (cloned — the executor's own
	// buffers are reused for the next run).
	end  *model.World
	path []model.Step
}

// run executes one candidate. A scratch candidate starts from w0 and
// injects its whole schedule; a resumed one starts from its parent's
// snapshot and injects only the tail. Execution alternates injection
// and drain: each event is injected if any transition accepts it
// (silently skipped otherwise — mutators are allowed to produce dead
// events), then up to opt.Drain queued messages are processed, the
// seed's RNG picking among the enabled delivery/drop branches.
// Properties are checked after every applied step; a violating step
// captures the full path from w0 as a counterexample.
func (x *executor) run(w0 *model.World, corpus []entry, c candidate, props []check.Property, opt Options) (execResult, error) {
	if x.w == nil {
		x.w = &model.World{}
	}
	w := x.w
	events := c.sched.Events
	var base []model.Step
	if c.parent >= 0 {
		corpus[c.parent].end.CloneInto(w)
		base = corpus[c.parent].path
		events = c.tail
	} else {
		w0.CloneInto(w)
		// Time-axis mutations: rescale timer windows before any step
		// fires. Resumed candidates skip this — the parent's snapshot
		// already carries its stretched timing configuration.
		for _, t := range c.sched.Stretches {
			w.ScaleTimerBounds(t.Proc, t.Name, t.LoPct, t.HiPct)
		}
	}
	rng := rand.New(rand.NewSource(c.sched.Seed))
	res := execResult{cov: NewCoverage(w0)}
	x.path = x.path[:0]
	var seen map[string]struct{}

	apply := func(s model.Step) error {
		applied, err := w.Apply(s)
		if err != nil {
			return fmt.Errorf("fuzz: apply %v: %w", s, err)
		}
		res.steps++
		res.cov.Note(w, applied)
		x.path = append(x.path, applied)
		for _, p := range props {
			desc := p.Check(w, applied)
			if desc == "" {
				continue
			}
			key := p.Name() + "\x00" + desc
			if _, dup := seen[key]; dup {
				continue
			}
			if seen == nil {
				seen = make(map[string]struct{})
			}
			seen[key] = struct{}{}
			res.violations = append(res.violations, check.Violation{
				Property: p.Name(),
				Desc:     desc,
				Path:     check.ClonePath(append(append([]model.Step(nil), base...), x.path...)),
			})
		}
		return nil
	}

	drain := func() error {
		for d := 0; d < opt.Drain; d++ {
			// Timer expiries drain alongside queued messages: on a timed
			// world the seed's RNG interleaves admissible expiries with
			// deliveries (on an untimed world StepsTimerAppend is a
			// no-op, so untimed runs are byte-for-byte unchanged).
			x.steps = w.StepsQueueAppend(x.steps[:0])
			x.steps = w.StepsTimerAppend(x.steps)
			if len(x.steps) == 0 {
				return nil
			}
			if err := apply(x.steps[rng.Intn(len(x.steps))]); err != nil {
				return err
			}
		}
		return nil
	}

	for _, e := range events {
		if e.Msg.From != "" {
			// Timer-expiry directive (From names the timer): fire that
			// process's armed timer now if it is admissible, silently
			// skipped otherwise — the event-axis handle on timing.
			x.steps = w.StepsTimerAppend(x.steps[:0])
			n := 0
			for _, s := range x.steps {
				if s.Proc == e.Proc && s.Msg.From == e.Msg.From {
					x.steps[n] = s
					n++
				}
			}
			x.steps = x.steps[:n]
		} else {
			x.steps = w.StepsEnvAppend(x.steps[:0], []model.EnvEvent{e})
		}
		if len(x.steps) > 0 {
			if err := apply(x.steps[rng.Intn(len(x.steps))]); err != nil {
				return res, err
			}
		}
		if err := drain(); err != nil {
			return res, err
		}
	}
	// Final drain so trailing sends are not left unexplored.
	if err := drain(); err != nil {
		return res, err
	}
	res.end = w.Clone()
	res.path = append(append([]model.Step(nil), base...), x.path...)
	return res, nil
}
