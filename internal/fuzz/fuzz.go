package fuzz

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"cnetverifier/internal/check"
	"cnetverifier/internal/model"
	"cnetverifier/internal/scenario"
)

// Options configures a fuzzing run.
type Options struct {
	// Budget bounds the total number of applied world transitions
	// across all executed schedules (default 50000). The budget is
	// checked between rounds, so a run may overshoot by at most one
	// round — deterministically.
	Budget int
	// Workers sets the number of executor goroutines (default 1).
	// Any worker count produces the identical result: candidates are
	// generated deterministically per round, executed slot-indexed, and
	// merged in candidate order — the validate.Sweep discipline.
	Workers int
	// Seed is the run seed; every candidate's mutation RNG and
	// execution seed derive from it (default 1).
	Seed int64
	// MaxEvents bounds the schedule length in environment events
	// (default 12).
	MaxEvents int
	// Drain bounds the queued messages processed after each injection
	// (default 8).
	Drain int
	// RoundSize is the number of candidate schedules per round
	// (default 32).
	RoundSize int
	// Pool is the event pool the mutators substitute and insert from;
	// nil defaults to the full §3.2.1 space (scenario.FullSpace).
	Pool []model.EnvEvent
	// TimerPool holds timer-expiry directives (EnvEvents whose Msg.From
	// names an armed timer, from World.TimerEvents) for the timing
	// mutators. Empty on untimed worlds, which keeps every untimed run
	// bit-identical to the pre-timing fuzzer.
	TimerPool []model.EnvEvent
	// Corpus seeds the run with previously kept schedules (e.g. loaded
	// from a -corpus directory); they execute as round 0 alongside the
	// per-event singletons.
	Corpus []Schedule
	// StopAtFirst stops the run at the end of the first round that
	// found any violation.
	StopAtFirst bool
}

func (o Options) withDefaults() Options {
	if o.Budget == 0 {
		o.Budget = 50000
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = 12
	}
	if o.Drain == 0 {
		o.Drain = 8
	}
	if o.RoundSize == 0 {
		o.RoundSize = 32
	}
	if o.Pool == nil {
		space := scenario.FullSpace()
		for _, e := range space.Events(nil) {
			o.Pool = append(o.Pool, e.EnvEvent)
		}
	}
	return o
}

// Result summarizes a fuzzing run.
type Result struct {
	// Schedules and Steps count executed inputs and applied world
	// transitions; Rounds counts candidate generations.
	Schedules int `json:"schedules"`
	Steps     int `json:"steps"`
	Rounds    int `json:"rounds"`
	// NewCoverageInputs counts the inputs kept for lighting up new
	// coverage; Corpus holds them (seed corpus entries included when
	// they covered something new).
	NewCoverageInputs int        `json:"new_coverage_inputs"`
	Corpus            []Schedule `json:"-"`
	// Violations holds the distinct (property, description) pairs
	// reached, in canonical order, each with a concrete replayable
	// counterexample re-verified with check.Replay.
	Violations []check.Violation `json:"-"`
	// Coverage is the merged coverage map; CoverageDigest its stable
	// fingerprint.
	Coverage       *Coverage `json:"-"`
	CoverageDigest string    `json:"coverage_digest"`
	// TransitionsFired/Total and PairsCovered materialize the coverage
	// counters for reports.
	TransitionsFired int `json:"transitions_fired"`
	TransitionsTotal int `json:"transitions_total"`
	PairsCovered     int `json:"pairs_covered"`
}

// Fuzz runs the coverage-guided loop over the world: seed the corpus,
// then mutate–execute–keep rounds until the step budget is spent.
//
// Determinism contract (asserted by TestFuzzDeterminism): the result —
// coverage digest, kept-input set, violation set — is a pure function
// of (world, props, Options minus Workers). Candidates are derived from
// (Seed, round, index) alone, rounds are merged sequentially in
// candidate order, and the corpus snapshot mutators see is the one from
// the round start, so worker scheduling never influences anything.
func Fuzz(w0 *model.World, props []check.Property, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if len(opt.Pool) == 0 {
		return nil, fmt.Errorf("fuzz: empty event pool")
	}

	res := &Result{Coverage: NewCoverage(w0)}
	var corpus []entry

	// Round 0: the seed corpus — caller-provided schedules, one
	// singleton per pool event (every scenario family is exercised
	// before mutation starts), and one round of fresh random schedules
	// so mutation starts from deep parents, not only singletons.
	seeds := make([]candidate, 0, len(opt.Corpus)+len(opt.Pool)+len(opt.TimerPool)+opt.RoundSize)
	for _, s := range opt.Corpus {
		seeds = append(seeds, candidate{sched: s.clone(), parent: -1})
	}
	for i, e := range append(append([]model.EnvEvent(nil), opt.Pool...), opt.TimerPool...) {
		seeds = append(seeds, candidate{
			sched:  Schedule{Seed: mutSeed(opt.Seed, 0, len(opt.Corpus)+i), Events: []model.EnvEvent{e}},
			parent: -1,
		})
	}
	for i := 0; i < opt.RoundSize; i++ {
		rng := rand.New(rand.NewSource(mutSeed(opt.Seed, 0, len(seeds)+i)))
		seeds = append(seeds, candidate{sched: freshSchedule(opt.Pool, opt.MaxEvents, rng), parent: -1})
	}

	// ran tracks executed genomes: a mutant identical to an already
	// executed schedule (a no-op mutation over an inherited seed) would
	// re-walk a known path step for step — resample instead of wasting
	// budget on it.
	ran := make(map[uint64]struct{})
	note := func(s Schedule) bool {
		h := s.genomeHash()
		if _, dup := ran[h]; dup {
			return false
		}
		ran[h] = struct{}{}
		return true
	}

	// Exploration is adaptive (epsilon-greedy over candidate origin):
	// each round tracks how many new coverage bits per executed step
	// fresh random schedules earned versus corpus mutants, and the next
	// round draws fresh candidates with probability proportional to the
	// fresh yield. Early on fresh sampling wins (everything is new) and
	// the fuzzer behaves like the uniform baseline; once breadth dries
	// up the mutants' retrace-then-extend depth takes over.
	const epsMin, epsMax = 0.125, 0.875
	eps := epsMax
	var bits, steps [2]int // cumulative per class: 0 = mutant, 1 = fresh
	var violations []check.Violation
	runRound := func(cands []candidate, fresh []bool) error {
		results, err := executeAll(w0, corpus, props, cands, opt)
		if err != nil {
			return err
		}
		res.Rounds++
		for i, r := range results {
			res.Schedules++
			res.Steps += r.steps
			class := 0
			if fresh == nil || fresh[i] {
				class = 1
			}
			steps[class] += r.steps
			if neu := res.Coverage.Merge(r.cov); neu > 0 {
				corpus = append(corpus, entry{sched: cands[i].sched, end: r.end, path: r.path})
				res.NewCoverageInputs++
				bits[class] += neu
			}
			violations = append(violations, r.violations...)
		}
		mutYield, freshYield := yield(bits[0], steps[0]), yield(bits[1], steps[1])
		if mutYield+freshYield > 0 {
			eps = freshYield / (mutYield + freshYield)
			if eps < epsMin {
				eps = epsMin
			} else if eps > epsMax {
				eps = epsMax
			}
		}
		return nil
	}

	for _, c := range seeds {
		note(c.sched)
	}
	if err := runRound(seeds, nil); err != nil {
		return nil, err
	}
	for round := 1; res.Steps < opt.Budget; round++ {
		if opt.StopAtFirst && len(violations) > 0 {
			break
		}
		cands := make([]candidate, opt.RoundSize)
		fresh := make([]bool, opt.RoundSize)
		for i := range cands {
			rng := rand.New(rand.NewSource(mutSeed(opt.Seed, round, i)))
			gen := func() candidate {
				if fresh[i] = len(corpus) == 0 || rng.Float64() < eps; fresh[i] {
					return candidate{sched: freshSchedule(opt.Pool, opt.MaxEvents, rng), parent: -1}
				}
				return mutate(corpus, opt.Pool, opt.TimerPool, opt.MaxEvents, rng)
			}
			cands[i] = gen()
			for try := 0; try < 8 && !note(cands[i].sched); try++ {
				cands[i] = gen()
			}
		}
		if err := runRound(cands, fresh); err != nil {
			return nil, err
		}
	}

	res.Corpus = make([]Schedule, len(corpus))
	for i, e := range corpus {
		res.Corpus[i] = e.sched
	}
	res.Violations = check.DedupeViolations(violations)
	if err := reverify(w0, props, res.Violations); err != nil {
		return nil, err
	}
	res.CoverageDigest = res.Coverage.Digest()
	res.TransitionsFired, res.TransitionsTotal = res.Coverage.Transitions()
	res.PairsCovered = res.Coverage.Pairs()
	return res, nil
}

// yield is new coverage bits per executed step — the signal the
// adaptive exploration rate follows.
func yield(bits, steps int) float64 {
	if steps == 0 {
		return 0
	}
	return float64(bits) / float64(steps)
}

// RandomBaseline samples uniformly random schedules (no feedback, no
// corpus) under the same budget accounting — the control arm for the
// coverage comparison in cnetfuzz -cov-report and EXPERIMENTS.md.
func RandomBaseline(w0 *model.World, props []check.Property, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if len(opt.Pool) == 0 {
		return nil, fmt.Errorf("fuzz: empty event pool")
	}
	res := &Result{Coverage: NewCoverage(w0)}
	var violations []check.Violation
	for round := 0; res.Steps < opt.Budget; round++ {
		cands := make([]candidate, opt.RoundSize)
		for i := range cands {
			rng := rand.New(rand.NewSource(mutSeed(opt.Seed, round, i)))
			cands[i] = candidate{sched: freshSchedule(opt.Pool, opt.MaxEvents, rng), parent: -1}
		}
		results, err := executeAll(w0, nil, props, cands, opt)
		if err != nil {
			return nil, err
		}
		res.Rounds++
		for _, r := range results {
			res.Schedules++
			res.Steps += r.steps
			res.Coverage.Merge(r.cov)
			violations = append(violations, r.violations...)
		}
	}
	res.Violations = check.DedupeViolations(violations)
	if err := reverify(w0, props, res.Violations); err != nil {
		return nil, err
	}
	res.CoverageDigest = res.Coverage.Digest()
	res.TransitionsFired, res.TransitionsTotal = res.Coverage.Transitions()
	res.PairsCovered = res.Coverage.Pairs()
	return res, nil
}

// executeAll runs the candidates across opt.Workers goroutines with an
// atomic job cursor and slot-indexed results, each worker reusing one
// executor (world + buffers). Results are positionally stable, so the
// sequential merge that follows is order-deterministic.
func executeAll(w0 *model.World, corpus []entry, props []check.Property, cands []candidate, opt Options) ([]execResult, error) {
	results := make([]execResult, len(cands))
	errs := make([]error, len(cands))
	workers := opt.Workers
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		var x executor
		for i, c := range cands {
			var err error
			if results[i], err = x.run(w0, corpus, c, props, opt); err != nil {
				return nil, err
			}
		}
		return results, nil
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var x executor
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(cands) {
					return
				}
				results[i], errs[i] = x.run(w0, corpus, cands[i], props, opt)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// reverify replays every counterexample against the initial world and
// confirms the property reproduces its description — the same proof
// the parallel checker gives before results leave the package.
func reverify(w0 *model.World, props []check.Property, vs []check.Violation) error {
	byName := make(map[string]check.Property, len(props))
	for _, p := range props {
		byName[p.Name()] = p
	}
	for _, v := range vs {
		end, err := check.Replay(w0, v.Path)
		if err != nil {
			return fmt.Errorf("fuzz: counterexample for %s failed replay re-verification: %w", v.Property, err)
		}
		p, ok := byName[v.Property]
		if !ok {
			return fmt.Errorf("fuzz: violation of unknown property %q", v.Property)
		}
		var last model.Step
		if len(v.Path) > 0 {
			last = v.Path[len(v.Path)-1]
		}
		if got := p.Check(end, last); got != v.Desc {
			return fmt.Errorf("fuzz: counterexample for %s does not reproduce on replay: got %q, want %q", v.Property, got, v.Desc)
		}
	}
	return nil
}
