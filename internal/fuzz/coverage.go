// Package fuzz implements coverage-guided fuzzing over scenario event
// schedules (the §3.2.1 usage-scenario space) and delta-debugging
// minimization of violation traces.
//
// Where the checker's RandomWalk samples schedules uniformly, the
// fuzzer keeps a corpus of schedules and mutates the ones that light up
// new behavior — new spec transitions fired or new cross-layer message
// pairs exchanged — the feedback loop that steers sampling toward the
// rare interleavings where protocol interactions go wrong. Violations
// found by either engine can be handed to Shrink, which reduces the
// triggering schedule to a locally-minimal one with ddmin and
// re-verifies it via check.Replay at every step.
package fuzz

import (
	"fmt"
	"sort"
	"strings"

	"cnetverifier/internal/model"
	"cnetverifier/internal/types"
)

// Coverage is the fuzzer's feedback signal over one world shape: a
// per-process transition bitmap (indexed by the spec's interned
// transition indices, exactly the indices Step.TransIdx carries) plus
// the set of cross-layer message pairs observed — (sender process,
// receiver process, message kind) triples seen on delivery steps. The
// pair dimension is what distinguishes "every transition fired
// somewhere" from "these two layers actually talked".
type Coverage struct {
	// procs and trans mirror the world's process list: trans[i] is the
	// fired-bitmap of proc i, words of 64 transitions each.
	procs []string
	trans [][]uint64
	total int
	// pairs maps packed (fromProc, toProc, kind) triples.
	pairs map[uint64]struct{}
}

// NewCoverage builds an empty coverage map shaped like the world.
func NewCoverage(w *model.World) *Coverage {
	c := &Coverage{
		procs: make([]string, len(w.Procs)),
		trans: make([][]uint64, len(w.Procs)),
		pairs: make(map[uint64]struct{}),
	}
	for i, p := range w.Procs {
		n := len(p.M.Spec().Transitions)
		c.procs[i] = p.Name
		c.trans[i] = make([]uint64, (n+63)/64)
		c.total += n
	}
	return c
}

func pairKey(from, to int, kind types.MsgKind) uint64 {
	return uint64(from)<<32 | uint64(to)<<16 | uint64(kind)
}

// Note records one applied step, returning true when it set a bit that
// was not set before (the "interesting input" signal).
func (c *Coverage) Note(w *model.World, s model.Step) bool {
	fresh := false
	if s.Label != "" {
		if i, ok := w.ProcIndex(s.Proc); ok && i < len(c.trans) {
			word, bit := s.TransIdx/64, uint64(1)<<(s.TransIdx%64)
			if word < len(c.trans[i]) && c.trans[i][word]&bit == 0 {
				c.trans[i][word] |= bit
				fresh = true
			}
		}
	}
	if s.Kind == model.StepDeliver && s.Msg.From != "" {
		if from, ok := w.ProcIndex(s.Msg.From); ok {
			if to, ok := w.ProcIndex(s.Proc); ok {
				k := pairKey(from, to, s.Msg.Kind)
				if _, seen := c.pairs[k]; !seen {
					c.pairs[k] = struct{}{}
					fresh = true
				}
			}
		}
	}
	return fresh
}

// Merge folds other into c, returning how many bits were newly set.
// The shapes must match (both built from the same world).
func (c *Coverage) Merge(other *Coverage) int {
	fresh := 0
	for i := range other.trans {
		if i >= len(c.trans) {
			break
		}
		for w, bits := range other.trans[i] {
			if neu := bits &^ c.trans[i][w]; neu != 0 {
				fresh += popcount(neu)
				c.trans[i][w] |= neu
			}
		}
	}
	for k := range other.pairs {
		if _, seen := c.pairs[k]; !seen {
			c.pairs[k] = struct{}{}
			fresh++
		}
	}
	return fresh
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Transitions returns the fired and total spec-transition counts.
func (c *Coverage) Transitions() (fired, total int) {
	for _, words := range c.trans {
		for _, w := range words {
			fired += popcount(w)
		}
	}
	return fired, c.total
}

// Pairs returns the number of distinct cross-layer message pairs seen.
func (c *Coverage) Pairs() int { return len(c.pairs) }

// Digest returns an FNV-64a digest of the coverage map — a stable
// fingerprint for the determinism contract (same seed, budget and
// corpus must reproduce the same digest).
func (c *Coverage) Digest() string {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v >> (8 * i) & 0xff
			h *= prime64
		}
	}
	for i, name := range c.procs {
		for _, b := range []byte(name) {
			h ^= uint64(b)
			h *= prime64
		}
		for _, w := range c.trans[i] {
			mix(w)
		}
	}
	keys := make([]uint64, 0, len(c.pairs))
	for k := range c.pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		mix(k)
	}
	return fmt.Sprintf("%016x", h)
}

// Report renders a per-process coverage table with the transitions
// never fired, mirroring check.SpecCoverage's view.
func (c *Coverage) Report(w *model.World) string {
	var b []byte
	fired, total := c.Transitions()
	b = fmt.Appendf(b, "transition coverage %d/%d (%.0f%%), %d cross-layer message pairs\n",
		fired, total, 100*frac(fired, total), len(c.pairs))
	for i, p := range w.Procs {
		if i >= len(c.trans) {
			break
		}
		spec := p.M.Spec()
		n := 0
		var missed []string
		for ti, t := range spec.Transitions {
			if c.trans[i][ti/64]&(1<<(ti%64)) != 0 {
				n++
			} else {
				missed = append(missed, t.Name)
			}
		}
		b = fmt.Appendf(b, "  %-12s %3d/%3d", p.Name, n, len(spec.Transitions))
		if len(missed) > 0 {
			b = fmt.Appendf(b, "  missed: %s", strings.Join(missed, ", "))
		}
		b = append(b, '\n')
	}
	return string(b)
}

func frac(a, b int) float64 {
	if b == 0 {
		return 1
	}
	return float64(a) / float64(b)
}
