package scenario

import (
	"reflect"
	"testing"

	"cnetverifier/internal/model"
	"cnetverifier/internal/names"
	"cnetverifier/internal/types"
)

// TestFamilies pins the family decomposition of the space: every
// family alone emits a disjoint, non-empty label set, and FullSpace is
// exactly their union. A new Space toggle that is not registered in
// Families (or a family leaking another family's events) fails here.
func TestFamilies(t *testing.T) {
	if got, want := len(Families()), reflect.TypeOf(Space{}).NumField(); got != want {
		t.Fatalf("Families() lists %d families, Space has %d toggles", got, want)
	}
	full := map[string]bool{}
	for _, e := range FullSpace().Events(nil) {
		full[e.Label] = true
	}
	union := map[string]string{}
	for _, f := range Families() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			// Exactly one toggle set.
			v := reflect.ValueOf(f.Space)
			on := 0
			for i := 0; i < v.NumField(); i++ {
				if v.Field(i).Bool() {
					on++
				}
			}
			if on != 1 {
				t.Fatalf("family %s enables %d toggles, want 1", f.Name, on)
			}
			evs := f.Space.Events(nil)
			if len(evs) == 0 {
				t.Fatalf("family %s emits no events", f.Name)
			}
			for _, e := range evs {
				if !full[e.Label] {
					t.Errorf("family %s emits %q, absent from FullSpace", f.Name, e.Label)
				}
				if prev, dup := union[e.Label]; dup {
					t.Errorf("label %q emitted by both %s and %s", e.Label, prev, f.Name)
				}
				union[e.Label] = f.Name
			}
		})
	}
	for l := range full {
		if _, ok := union[l]; !ok {
			t.Errorf("FullSpace label %q not emitted by any family", l)
		}
	}
	if len(union) != len(full) {
		t.Errorf("family union = %d labels, FullSpace = %d", len(union), len(full))
	}
}

func TestFullSpaceCoversFamilies(t *testing.T) {
	evs := FullSpace().Events(nil)
	if len(evs) < 20 {
		t.Fatalf("full space = %d events, want a rich space", len(evs))
	}
	labels := map[string]bool{}
	users, ops := 0, 0
	for _, e := range evs {
		if e.Label == "" || e.Proc == "" || e.Msg.Kind == types.MsgNone {
			t.Fatalf("malformed event %+v", e)
		}
		if labels[e.Label] {
			t.Fatalf("duplicate label %q", e.Label)
		}
		labels[e.Label] = true
		if e.UserDemand {
			users++
		} else {
			ops++
		}
	}
	// §3.2.1 models both user demands and operator responses.
	if users == 0 || ops == 0 {
		t.Fatalf("user=%d operator=%d events", users, ops)
	}
	// Table 3's bounded enumeration: all six causes appear, at eight
	// originator-cause pairs.
	deacts := 0
	for l := range labels {
		if len(l) > 9 && (l[:9] == "pdp-deact") {
			deacts++
		}
	}
	if deacts != 8 {
		t.Fatalf("PDP deactivation events = %d, want 8 (6 causes, 2 dual-originator)", deacts)
	}
}

func TestSpaceTogglesFamilies(t *testing.T) {
	var s Space
	if got := len(s.Events(nil)); got != 0 {
		t.Fatalf("empty space has %d events", got)
	}
	s.Calls = true
	if got := len(s.Events(nil)); got != 3 {
		t.Fatalf("calls-only space = %d events, want 3", got)
	}
}

func TestEnvEventsAdapter(t *testing.T) {
	s := Space{Data: true}
	evs := s.EnvEvents(nil)
	if len(evs) != len(s.Events(nil)) {
		t.Fatal("adapter lost events")
	}
	for _, e := range evs {
		if e.Proc == "" {
			t.Fatal("empty proc")
		}
	}
}

func TestSamplerDeterministicAndBounded(t *testing.T) {
	a := NewSampler(FullSpace(), 4, 7)
	b := NewSampler(FullSpace(), 4, 7)
	for i := 0; i < 20; i++ {
		ea, eb := a.Events(nil), b.Events(nil)
		if len(ea) != 4 || len(eb) != 4 {
			t.Fatalf("sample sizes %d/%d, want 4", len(ea), len(eb))
		}
		for j := range ea {
			if ea[j] != eb[j] {
				t.Fatal("same seed diverged")
			}
		}
	}
	// Small spaces are returned whole.
	small := NewSampler(Space{Calls: true}, 10, 1)
	if got := len(small.Events(nil)); got != 3 {
		t.Fatalf("small space sample = %d", got)
	}
	// Default PerStep.
	if s := NewSampler(FullSpace(), 0, 1); s.PerStep != 4 {
		t.Fatalf("default per-step = %d", s.PerStep)
	}
}

func TestSamplerCoversSpaceOverTime(t *testing.T) {
	s := NewSampler(FullSpace(), 4, 3)
	seen := map[string]bool{}
	for i := 0; i < 400; i++ {
		for _, e := range s.Events(nil) {
			seen[e.Proc+"/"+e.Msg.Kind.String()+"/"+e.Msg.Cause.String()] = true
		}
	}
	total := len(FullSpace().Events(nil))
	if len(seen) < total {
		t.Fatalf("sampler covered %d/%d events after 400 draws", len(seen), total)
	}
}

func TestCoverage(t *testing.T) {
	space := FullSpace()
	steps := []model.Step{
		{Kind: model.StepEnv, Proc: names.UECM, Msg: types.Message{Kind: types.MsgUserDialCall}},
		{Kind: model.StepEnv, Proc: names.UECM, Msg: types.Message{Kind: types.MsgUserDialCall}},
		{Kind: model.StepEnv, Proc: names.UESM, Msg: types.Message{Kind: types.MsgDeactivatePDPRequest, Cause: types.CauseQoSNotAccepted}},
		{Kind: model.StepDeliver, Proc: names.UECM, Msg: types.Message{Kind: types.MsgCallConnect}},
	}
	cov := Coverage(space, nil, steps)
	if cov["dial"] != 2 {
		t.Fatalf("dial coverage = %d", cov["dial"])
	}
	if cov["pdp-deact-ue/QoS not accepted"] != 1 {
		t.Fatalf("deact coverage = %v", cov)
	}
	if len(cov) != 2 {
		t.Fatalf("coverage = %v", cov)
	}
}
