// Package scenario implements the usage-scenario modeling of §3.2.1:
// the space of user demands and operator responses that drives the
// protocol models during screening.
//
// Scenarios with a bounded option set (device switch on/off, every
// accept/reject cause, every inter-system switch technique) are
// enumerated exhaustively; scenarios with unbounded options (mobility,
// traffic arrival) are produced by a seeded run-time signal generator
// that activates them randomly, as in the paper. The sampler offers
// candidate environment events for a world state; the checker explores
// each (DFS/BFS) or samples them (random walk).
package scenario

import (
	"math/rand"

	"cnetverifier/internal/model"
	"cnetverifier/internal/names"
	"cnetverifier/internal/types"
)

// Event is one candidate environment event with bookkeeping about its
// origin.
type Event struct {
	model.EnvEvent
	// UserDemand is true for §3.2.1 "user demands" (power, calls,
	// data, mobility); false for "operator responses" (rejects,
	// network detach, switch orders, failures).
	UserDemand bool
	// Label names the scenario for coverage accounting.
	Label string
}

// Space is the full §3.2.1 event space over the standard process
// names. Fields toggle scenario families on and off so scoped worlds
// can reuse the sampler.
type Space struct {
	// PowerCycles offers device power on/off.
	PowerCycles bool
	// Calls offers dialing and hang-up.
	Calls bool
	// Data offers data-service on/off.
	Data bool
	// Mobility offers location changes and inter-system switches.
	Mobility bool
	// PDPDeactivations offers every Table 3 deactivation cause at its
	// originator (bounded enumeration).
	PDPDeactivations bool
	// OperatorActions offers network-oriented detach, carrier switch
	// orders and 3G LU failures.
	OperatorActions bool
	// WiFiOffload offers the §5.1.3 WiFi-induced deactivation quirk.
	WiFiOffload bool
	// Timing offers the periodic protocol-timer expiries (TAU/RAU/LU).
	// As plain env events they model a timer firing at an arbitrary
	// instant; core.WithTiming converts them into virtual-time timers
	// with [earliest, latest] windows so the checker explores only the
	// admissible expiry-vs-delivery orderings.
	Timing bool
}

// FullSpace enables every scenario family.
func FullSpace() Space {
	return Space{
		PowerCycles:      true,
		Calls:            true,
		Data:             true,
		Mobility:         true,
		PDPDeactivations: true,
		OperatorActions:  true,
		WiFiOffload:      true,
		Timing:           true,
	}
}

// Family is one toggleable scenario family of Space: its name and a
// Space with only that family enabled.
type Family struct {
	Name  string
	Space Space
}

// Families enumerates every scenario family exactly once. It is the
// single source of truth tying the Space toggles to the event space:
// the family-toggle tests assert FullSpace equals the union of these,
// and the fuzzer's substitution mutator draws per-family event pools
// from it — a family silently dropped from Events would break both.
func Families() []Family {
	return []Family{
		{"power-cycles", Space{PowerCycles: true}},
		{"calls", Space{Calls: true}},
		{"data", Space{Data: true}},
		{"mobility", Space{Mobility: true}},
		{"pdp-deactivations", Space{PDPDeactivations: true}},
		{"operator-actions", Space{OperatorActions: true}},
		{"wifi-offload", Space{WiFiOffload: true}},
		{"timing", Space{Timing: true}},
	}
}

func ev(proc string, kind types.MsgKind, user bool, label string) Event {
	return Event{
		EnvEvent:   model.EnvEvent{Proc: proc, Msg: types.Message{Kind: kind}},
		UserDemand: user,
		Label:      label,
	}
}

func evCause(proc string, kind types.MsgKind, cause types.Cause, user bool, label string) Event {
	e := ev(proc, kind, user, label)
	e.Msg.Cause = cause
	return e
}

// Events returns every candidate event of the space. The world argument
// is accepted for forward compatibility with state-dependent spaces;
// enabledness is decided by the machines' guards, so the full list can
// be offered unconditionally.
func (s Space) Events(w *model.World) []Event {
	var out []Event
	if s.PowerCycles {
		out = append(out,
			ev(names.UEEMM, types.MsgPowerOn, true, "power-on-4g"),
			ev(names.UEGMM, types.MsgPowerOn, true, "power-on-3g-ps"),
			ev(names.UEMM, types.MsgPowerOn, true, "power-on-3g-cs"),
			ev(names.UEEMM, types.MsgPowerOff, true, "power-off"),
		)
	}
	if s.Calls {
		out = append(out,
			ev(names.UECM, types.MsgUserDialCall, true, "dial"),
			ev(names.UECM, types.MsgUserHangUp, true, "hang-up"),
			ev(names.MSCCM, types.MsgPagingRequest, false, "mt-call"),
		)
	}
	if s.Data {
		out = append(out,
			ev(names.UERRC4G, types.MsgUserDataOn, true, "data-on-4g"),
			ev(names.UERRC3G, types.MsgUserDataOn, true, "data-on-3g"),
			ev(names.UESM, types.MsgUserDataOn, true, "pdp-activate"),
			ev(names.UERRC3G, types.MsgUserDataOff, true, "data-off"),
			ev(names.UERRC4G, types.MsgUserDataOff, true, "data-off-4g"),
		)
	}
	if s.Mobility {
		out = append(out,
			ev(names.UEMM, types.MsgUserMove, true, "move-cs"),
			ev(names.UEGMM, types.MsgUserMove, true, "move-ps"),
			ev(names.UEEMM, types.MsgUserMove, true, "move-4g"),
			ev(names.UEGMM, types.MsgInterSystemSwitchCommand, true, "switch-4g-to-3g"),
			ev(names.UEEMM, types.MsgInterSystemCellReselect, true, "reselect-to-4g"),
			ev(names.UERRC3G, types.MsgInterSystemCellReselect, true, "rrc-reselect"),
			ev(names.UERRC4G, types.MsgInterSystemSwitchCommand, true, "coverage-switch"),
		)
	}
	if s.PDPDeactivations {
		for _, row := range types.PDPDeactivationCauses() {
			if row.Originator&types.OriginDevice != 0 {
				out = append(out, evCause(names.UESM, types.MsgDeactivatePDPRequest, row.Cause, true,
					"pdp-deact-ue/"+row.Cause.String()))
			}
			if row.Originator&types.OriginNetwork != 0 {
				out = append(out, evCause(names.SGSNSM, types.MsgNetDetachOrder, row.Cause, false,
					"pdp-deact-net/"+row.Cause.String()))
			}
		}
	}
	if s.OperatorActions {
		out = append(out,
			ev(names.MMEEMM, types.MsgNetDetachOrder, false, "net-detach-4g"),
			ev(names.SGSNGMM, types.MsgNetDetachOrder, false, "net-detach-3g"),
			ev(names.UERRC4G, types.MsgNetSwitchOrder, false, "carrier-switch-order"),
			ev(names.MSCMM, types.MsgLUFailureSignal, false, "lu-failure"),
		)
	}
	if s.WiFiOffload {
		out = append(out, ev(names.UESM, types.MsgWiFiAvailable, true, "wifi-offload"))
	}
	if s.Timing {
		out = append(out,
			ev(names.UEEMM, types.MsgPeriodicTimer, true, "periodic-4g"),
			ev(names.UEMM, types.MsgPeriodicTimer, true, "periodic-cs"),
			ev(names.UEGMM, types.MsgPeriodicTimer, true, "periodic-ps"),
		)
	}
	return out
}

// EnvEvents adapts Events to the checker's model.EnvEvent slice.
func (s Space) EnvEvents(w *model.World) []model.EnvEvent {
	evs := s.Events(w)
	out := make([]model.EnvEvent, len(evs))
	for i, e := range evs {
		out[i] = e.EnvEvent
	}
	return out
}

// Sampler draws random subsets of the space per step — the paper's
// random-sampling approach for the full model, where enumerating every
// combination is unrealistic (§3.2.1). Offering a small random subset
// per state keeps random walks diverse without exploding the per-state
// branching.
type Sampler struct {
	Space Space
	// PerStep is how many candidate events to offer per state
	// (default 4).
	PerStep int
	rng     *rand.Rand
}

// NewSampler builds a seeded sampler over the space.
func NewSampler(space Space, perStep int, seed int64) *Sampler {
	if perStep <= 0 {
		perStep = 4
	}
	return &Sampler{Space: space, PerStep: perStep, rng: rand.New(rand.NewSource(seed))}
}

// Events implements check.Scenario-compatible sampling.
func (s *Sampler) Events(w *model.World) []model.EnvEvent {
	all := s.Space.Events(w)
	if len(all) <= s.PerStep {
		return toEnv(all)
	}
	idx := s.rng.Perm(len(all))[:s.PerStep]
	picked := make([]Event, 0, s.PerStep)
	for _, i := range idx {
		picked = append(picked, all[i])
	}
	return toEnv(picked)
}

func toEnv(evs []Event) []model.EnvEvent {
	out := make([]model.EnvEvent, len(evs))
	for i, e := range evs {
		out[i] = e.EnvEvent
	}
	return out
}

// Coverage tallies which scenario labels a path of steps exercised,
// keyed by label; used to report sampling coverage of the space.
func Coverage(space Space, w *model.World, steps []model.Step) map[string]int {
	byKey := make(map[string]string)
	for _, e := range space.Events(w) {
		byKey[e.Proc+"\x00"+e.Msg.Kind.String()+"\x00"+e.Msg.Cause.String()] = e.Label
	}
	out := make(map[string]int)
	for _, st := range steps {
		if st.Kind != model.StepEnv && st.Kind != model.StepTimer {
			continue
		}
		key := st.Proc + "\x00" + st.Msg.Kind.String() + "\x00" + st.Msg.Cause.String()
		if label, ok := byKey[key]; ok {
			out[label]++
		}
	}
	return out
}
