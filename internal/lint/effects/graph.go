package effects

import (
	"fmt"
	"sort"
	"strings"

	"cnetverifier/internal/types"
)

// GraphEdge is one edge of the cross-protocol interaction graph: some
// transition of From sends (or outputs) Kind on the given channel, and
// To handles Kind in at least one of its states — From's sends feed
// To's guards. Dim classifies the interaction per the paper's taxonomy
// when the endpoints run different protocols (0 when they run the
// same protocol, e.g. a UE/SGSN peer pair).
type GraphEdge struct {
	From, To string
	Kind     types.MsgKind
	Proto    types.Protocol
	Output   bool
	Dim      types.Dimension
	// Handled reports that To's spec reacts to Kind in some state. An
	// unhandled flow still appears in the graph (dashed in DOT): it is
	// exactly the raw material of the MSG003/EFF001 lint rules.
	Handled bool
}

// classify maps a sender/receiver protocol pair onto the paper's
// interaction taxonomy: differing systems dominate, then differing
// domains, then layering.
func classify(from, to types.Protocol) types.Dimension {
	if from == to {
		return 0
	}
	if from.System() != to.System() {
		return types.CrossSystem
	}
	if from.Domain() != to.Domain() {
		return types.CrossDomain
	}
	return types.CrossLayer
}

// GraphEdges returns the interaction graph in canonical order: every
// distinct (From, To, Kind, Output) flow between different processes,
// annotated with whether the receiving spec statically handles the
// kind.
func (we *WorldEffects) GraphEdges() []GraphEdge {
	idx := make(map[string]int, len(we.Procs))
	for i, pe := range we.Procs {
		idx[pe.Proc] = i
	}
	seen := map[GraphEdge]bool{}
	var out []GraphEdge
	for _, pe := range we.Procs {
		for _, f := range pe.Flows {
			ti, ok := idx[f.To]
			if !ok || f.To == pe.Proc {
				continue
			}
			dst := we.Procs[ti]
			ge := GraphEdge{
				From:    pe.Proc,
				To:      f.To,
				Kind:    f.Kind,
				Proto:   f.Proto,
				Output:  f.Output,
				Dim:     classify(pe.Spec.Spec.Proto, dst.Spec.Spec.Proto),
				Handled: handlesKind(dst.Spec, f.Kind),
			}
			if !seen[ge] {
				seen[ge] = true
				out = append(out, ge)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return !a.Output && b.Output
	})
	return out
}

func handlesKind(se *SpecEffects, k types.MsgKind) bool {
	for _, h := range se.Handles {
		if h == k {
			return true
		}
	}
	return false
}

// GraphDOT renders the interaction graph as Graphviz DOT (the cnetlint
// -graph output). Processes cluster by protocol system, edges carry
// the message kind, cross-dimension edges are colored by taxonomy, and
// statically-unhandled flows are dashed.
func (we *WorldEffects) GraphDOT() string {
	var b strings.Builder
	b.WriteString("digraph interactions {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")

	bySystem := map[types.System][]string{}
	for _, pe := range we.Procs {
		sys := pe.Spec.Spec.Proto.System()
		bySystem[sys] = append(bySystem[sys], pe.Proc)
	}
	var systems []types.System
	for s := range bySystem {
		systems = append(systems, s)
	}
	sort.Slice(systems, func(i, j int) bool { return systems[i] < systems[j] })
	for _, s := range systems {
		fmt.Fprintf(&b, "  subgraph \"cluster_%s\" {\n    label=\"%s\";\n", s, s)
		for _, name := range bySystem[s] {
			fmt.Fprintf(&b, "    %q;\n", name)
		}
		b.WriteString("  }\n")
	}

	for _, e := range we.GraphEdges() {
		var attrs []string
		attrs = append(attrs, fmt.Sprintf("label=%q", e.Kind.String()))
		switch e.Dim {
		case types.CrossSystem:
			attrs = append(attrs, "color=red")
		case types.CrossDomain:
			attrs = append(attrs, "color=blue")
		case types.CrossLayer:
			attrs = append(attrs, "color=darkgreen")
		}
		if e.Output {
			attrs = append(attrs, "arrowhead=open")
		}
		if !e.Handled {
			attrs = append(attrs, "style=dashed")
		}
		fmt.Fprintf(&b, "  %q -> %q [%s];\n", e.From, e.To, strings.Join(attrs, ", "))
	}
	b.WriteString("}\n")
	return b.String()
}

// Reachable reports whether the interaction graph has a directed path
// from process a to process b (by index). The EFF003 lint uses it to
// decide whether two writers of the same global are ever ordered by a
// message chain.
func (we *WorldEffects) Reachable(a, b int) bool {
	if a == b {
		return true
	}
	idx := make(map[string]int, len(we.Procs))
	for i, pe := range we.Procs {
		idx[pe.Proc] = i
	}
	adj := make([][]int, len(we.Procs))
	for i, pe := range we.Procs {
		dsts := map[int]bool{}
		for _, f := range pe.Flows {
			if j, ok := idx[f.To]; ok && j != i {
				dsts[j] = true
			}
		}
		for j := range dsts {
			adj[i] = append(adj[i], j)
		}
	}
	seen := make([]bool, len(we.Procs))
	stack := []int{a}
	seen[a] = true
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range adj[p] {
			if q == b {
				return true
			}
			if !seen[q] {
				seen[q] = true
				stack = append(stack, q)
			}
		}
	}
	return false
}
