// Package effects is the static effect analysis behind CNetVerifier's
// partial-order reduction (check.Options.POR) and the cross-layer
// interaction lint rules (lint EFF001–EFF003).
//
// For every transition edge of every spec it extracts an effect set —
// globals read and written, messages sent per (system, domain, proto)
// channel, cross-layer outputs, machines touched — by probing the
// opaque guard/action closures with a recording fsm.Ctx, the same
// technique internal/lint's message-flow passes use, extended into
// full per-edge summaries. Because namespaced specs
// (fsm.NamespaceGlobals) rewrite globals on the live context, probing
// them yields namespace-resolved effect sets with no extra work.
//
// From the summaries the analysis derives, once per world rather than
// per state:
//
//   - a conservative may-interact relation between transition pairs,
//     exported as an interned bit matrix keyed by the checker's slab
//     indices (process index, transition index);
//   - its process-level projection and the resulting independence
//     clusters (connected components), which the checker's POR mode
//     uses to explore a decomposed world cluster-by-cluster;
//   - the cross-layer interaction graph — which layer's sends feed
//     which layer's guards — rendered as DOT by cnetlint -graph.
//
// Facts gathered by probing are existential and therefore one-sided: a
// send hidden behind an unprobed branch is missed, never invented. For
// the may-interact relation that direction is the dangerous one, so
// the relation additionally treats a probe panic as "may touch
// anything" — an edge whose closures could not be summarized is never
// declared independent of anything.
package effects

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/model"
	"cnetverifier/internal/types"
)

// probeDefaults are the constant values every variable takes during one
// probe run — the same family internal/lint uses: the small enums that
// guards compare against plus the S5 modulation orders.
var probeDefaults = []int{0, 1, 2, 3, 16, 64}

// ChannelRef identifies one message flow out of an edge: the addressed
// process and the (system, domain, proto) channel the message travels
// on, as stamped by types.NewMessage. Output marks delivery over the
// co-located cross-layer interface rather than a Send; spec-level
// analysis leaves To empty for outputs (targets are world wiring).
type ChannelRef struct {
	To     string
	Kind   types.MsgKind
	System types.System
	Domain types.Domain
	Proto  types.Protocol
	Output bool
}

func (c ChannelRef) String() string {
	via := "send"
	if c.Output {
		via = "output"
	}
	to := c.To
	if to == "" {
		to = "?"
	}
	return fmt.Sprintf("%s %s to %s on %s/%s/%s", via, c.Kind, to, c.System, c.Domain, c.Proto)
}

// channelLess is the canonical ChannelRef order.
func channelLess(a, b ChannelRef) bool {
	if a.Output != b.Output {
		return !a.Output
	}
	if a.To != b.To {
		return a.To < b.To
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Proto != b.Proto {
		return a.Proto < b.Proto
	}
	if a.System != b.System {
		return a.System < b.System
	}
	return a.Domain < b.Domain
}

// EdgeEffects is the effect summary of one transition edge (one row of
// a spec's transition table; wildcard sources count as one edge, the
// unit the checker's coverage slabs use).
type EdgeEffects struct {
	// Transition and Index locate the edge in its spec's table.
	Transition string
	Index      int
	From, To   fsm.State
	On         types.MsgKind
	// Reads/Writes are the "g."-prefixed globals the guard or action
	// touched under some probe (namespace-resolved for namespaced
	// specs). LocalReads/LocalWrites are the machine-local accesses.
	Reads, Writes           []string
	LocalReads, LocalWrites []string
	// Sends lists recorded Ctx.Send flows; Outputs lists Ctx.Output
	// flows (To empty until resolved against a world's OutputTo).
	Sends, Outputs []ChannelRef
	// GuardTrue reports that at least one probe satisfied the guard
	// (always true for unguarded edges).
	GuardTrue bool
	// Panicked reports that the guard or action panicked under at
	// least one probe. The edge is still summarized exactly once, with
	// the facts recorded before each panic merged in; consumers must
	// treat a panicked edge conservatively (it may do anything).
	Panicked bool
}

// SpecEffects aggregates the per-edge summaries of one spec.
type SpecEffects struct {
	Spec *fsm.Spec
	// Edges is indexed like Spec.Transitions.
	Edges []EdgeEffects
	// Reads/Writes union the per-edge global accesses.
	Reads, Writes []string
	// Handles lists the message kinds the spec reacts to in some state.
	Handles []types.MsgKind
}

// specCache memoizes ForSpec per *Spec (specs are built once and
// immutable, the same contract the fsm layout cache relies on).
var specCache sync.Map // *fsm.Spec -> *SpecEffects

// ForSpec probes every transition of the spec and returns its effect
// summaries (memoized).
func ForSpec(s *fsm.Spec) *SpecEffects {
	if se, ok := specCache.Load(s); ok {
		return se.(*SpecEffects)
	}
	se := buildSpecEffects(s)
	actual, _ := specCache.LoadOrStore(s, se)
	return actual.(*SpecEffects)
}

func buildSpecEffects(s *fsm.Spec) *SpecEffects {
	se := &SpecEffects{Spec: s, Edges: make([]EdgeEffects, len(s.Transitions))}
	reads, writes := map[string]bool{}, map[string]bool{}
	handles := map[types.MsgKind]bool{}
	for i := range s.Transitions {
		e := probeEdge(s, i)
		se.Edges[i] = e
		for _, g := range e.Reads {
			reads[g] = true
		}
		for _, g := range e.Writes {
			writes[g] = true
		}
		handles[e.On] = true
	}
	se.Reads, se.Writes = sortedKeys(reads), sortedKeys(writes)
	se.Handles = sortedKinds(handles)
	return se
}

// recorder is the probing fsm.Ctx: Get returns the probe default unless
// an earlier Set in the same run assigned the name; every access and
// every message is logged with its full channel coordinates.
type recorder struct {
	def    int
	vals   map[string]int
	reads  map[string]bool
	writes map[string]bool
	sends  []ChannelRef
	outs   []ChannelRef
}

func newRecorder(def int) *recorder {
	return &recorder{
		def:    def,
		vals:   make(map[string]int),
		reads:  make(map[string]bool),
		writes: make(map[string]bool),
	}
}

func (r *recorder) Get(name string) int {
	r.reads[name] = true
	if v, ok := r.vals[name]; ok {
		return v
	}
	return r.def
}

func (r *recorder) Set(name string, v int) {
	r.writes[name] = true
	r.vals[name] = v
}

// GetI/SetI are only resolved by the machine wrapper; probes drive the
// closures through a bare recorder, so return the probe default and
// drop writes (slot names are unknown here).
func (r *recorder) GetI(int32) int32  { return int32(r.def) }
func (r *recorder) SetI(int32, int32) {}

func (r *recorder) Send(to string, msg types.Message) {
	r.sends = append(r.sends, ChannelRef{To: to, Kind: msg.Kind, System: msg.System, Domain: msg.Domain, Proto: msg.Proto})
}

func (r *recorder) Output(msg types.Message) {
	r.outs = append(r.outs, ChannelRef{Kind: msg.Kind, System: msg.System, Domain: msg.Domain, Proto: msg.Proto, Output: true})
}

func (r *recorder) Trace(string, ...any) {}

// safely runs f, converting a panic into ok=false.
func safely(f func()) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	f()
	return true
}

// probeEdge summarizes one transition under every probe default. Each
// edge is summarized exactly once, however many probes its guard or
// action panics under: a panic marks the summary and merges the facts
// the recorder captured before the panic, then the remaining probes
// still run. The action runs regardless of the guard verdict — the
// guard decides when the edge fires, not what it does, and the
// independence relation needs the action's effects even when no
// constant assignment satisfies the guard.
func probeEdge(s *fsm.Spec, i int) EdgeEffects {
	t := s.Transitions[i]
	e := EdgeEffects{Transition: t.Name, Index: i, From: t.From, To: t.To, On: t.On}
	reads, writes := map[string]bool{}, map[string]bool{}
	ev := fsm.Ev(t.On)
	guardTrue := t.Guard == nil
	for _, def := range probeDefaults {
		guardOK := true
		if t.Guard != nil {
			rec := newRecorder(def)
			ran := safely(func() { guardOK = t.Guard(rec, ev) })
			if !ran {
				e.Panicked = true
				guardOK = false
			}
			mergeAccess(reads, writes, rec)
		}
		if guardOK && t.Guard != nil {
			guardTrue = true
		}
		if t.Action != nil {
			rec := newRecorder(def)
			if !safely(func() { t.Action(rec, ev) }) {
				e.Panicked = true
			}
			mergeAccess(reads, writes, rec)
			e.Sends = append(e.Sends, rec.sends...)
			e.Outputs = append(e.Outputs, rec.outs...)
		}
	}
	e.GuardTrue = guardTrue
	e.Reads, e.LocalReads = splitGlobals(reads)
	e.Writes, e.LocalWrites = splitGlobals(writes)
	e.Sends = dedupChannels(e.Sends)
	e.Outputs = dedupChannels(e.Outputs)
	return e
}

func mergeAccess(reads, writes map[string]bool, rec *recorder) {
	for k := range rec.reads {
		reads[k] = true
	}
	for k := range rec.writes {
		writes[k] = true
	}
}

// isGlobalName mirrors the fsm engine's scoping rule: names with the
// "g." prefix resolve to world globals.
func isGlobalName(name string) bool {
	return len(name) > 2 && name[0] == 'g' && name[1] == '.'
}

func splitGlobals(set map[string]bool) (globals, locals []string) {
	for k := range set {
		if isGlobalName(k) {
			globals = append(globals, k)
		} else {
			locals = append(locals, k)
		}
	}
	sort.Strings(globals)
	sort.Strings(locals)
	return globals, locals
}

func dedupChannels(in []ChannelRef) []ChannelRef {
	seen := make(map[ChannelRef]bool, len(in))
	out := in[:0]
	for _, c := range in {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return channelLess(out[i], out[j]) })
	return out
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKinds(set map[types.MsgKind]bool) []types.MsgKind {
	out := make([]types.MsgKind, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ProcEffects binds a spec's effect summaries to a world process: the
// outputs are resolved against the process's OutputTo wiring, and the
// flows feed the world-level interaction analysis.
type ProcEffects struct {
	Proc string
	Spec *SpecEffects
	// Flows unions the process's sends and resolved outputs: one
	// ChannelRef per (target, kind, channel) with To always set.
	Flows []ChannelRef
}

// WorldEffects is the full static analysis of one composed world.
type WorldEffects struct {
	// Procs is indexed like the world's process table.
	Procs []*ProcEffects

	world *model.World

	// off[p] is the base of process p's edges in the interned edge-id
	// space (edge id = off[p] + transition index), nedges its size.
	off    []int
	nedges int
	// interact is the may-interact bit matrix over edge ids, row-major
	// (nedges rows of nedges bits, symmetric).
	interact []uint64
	// procMay is the process-level projection of the relation.
	procMay [][]bool
}

// Analyze probes every process of the world and computes the
// may-interact relation, its process-level projection and the
// interaction graph inputs. The world is only read, never mutated.
func Analyze(w *model.World) *WorldEffects {
	we := &WorldEffects{world: w, off: make([]int, len(w.Procs))}
	for i, p := range w.Procs {
		se := ForSpec(p.M.Spec())
		pe := &ProcEffects{Proc: p.Name, Spec: se}
		for _, e := range se.Edges {
			pe.Flows = append(pe.Flows, e.Sends...)
			for _, o := range e.Outputs {
				for _, dst := range p.OutputTo {
					o.To = dst
					pe.Flows = append(pe.Flows, o)
				}
			}
		}
		pe.Flows = dedupChannels(pe.Flows)
		we.Procs = append(we.Procs, pe)
		we.off[i] = we.nedges
		we.nedges += len(se.Edges)
	}
	we.buildMatrix()
	we.buildProcMay()
	return we
}

// ProcIndex resolves a process name to its index in Procs.
func (we *WorldEffects) ProcIndex(name string) (int, bool) {
	for i, pe := range we.Procs {
		if pe.Proc == name {
			return i, true
		}
	}
	return -1, false
}

// OutputTargets returns the OutputTo wiring of the process (the world's
// list, unfiltered).
func (we *WorldEffects) OutputTargets(proc int) []string {
	return we.world.Procs[proc].OutputTo
}

// EdgeID interns a (process index, transition index) pair — the same
// slab coordinates the checker's coverage counters use — into the
// dense edge-id space of the matrix.
func (we *WorldEffects) EdgeID(proc, trans int) int { return we.off[proc] + trans }

// NumEdges returns the size of the edge-id space.
func (we *WorldEffects) NumEdges() int { return we.nedges }

func (we *WorldEffects) bit(a, b int) int { return a*we.nedges + b }

func (we *WorldEffects) setInteract(a, b int) {
	i, j := we.bit(a, b), we.bit(b, a)
	we.interact[i/64] |= 1 << (i % 64)
	we.interact[j/64] |= 1 << (j % 64)
}

// MayInteract reports whether the two edges (by process and transition
// index) may interact: executing one can enable, disable or change the
// effect of the other. The relation is conservative (reflexively
// closed over each machine, panic-poisoned, probe-derived).
func (we *WorldEffects) MayInteract(proc1, trans1, proc2, trans2 int) bool {
	i := we.bit(we.EdgeID(proc1, trans1), we.EdgeID(proc2, trans2))
	return we.interact[i/64]&(1<<(i%64)) != 0
}

// Independent is the complement of MayInteract: the two edges commute —
// running them in either order reaches the same state.
func (we *WorldEffects) Independent(proc1, trans1, proc2, trans2 int) bool {
	return !we.MayInteract(proc1, trans1, proc2, trans2)
}

func (we *WorldEffects) buildMatrix() {
	words := (we.nedges*we.nedges + 63) / 64
	we.interact = make([]uint64, words)
	for p1 := range we.Procs {
		for p2 := p1; p2 < len(we.Procs); p2++ {
			we.pairwise(p1, p2)
		}
	}
}

// pairwise marks the interacting edge pairs between two processes
// (possibly the same one).
func (we *WorldEffects) pairwise(p1, p2 int) {
	a, b := we.Procs[p1], we.Procs[p2]
	for i, ea := range a.Spec.Edges {
		for j, eb := range b.Spec.Edges {
			if p1 == p2 && j < i {
				continue
			}
			if we.edgesInteract(p1, ea, p2, eb) {
				we.setInteract(we.EdgeID(p1, i), we.EdgeID(p2, j))
			}
		}
	}
}

func (we *WorldEffects) edgesInteract(p1 int, a EdgeEffects, p2 int, b EdgeEffects) bool {
	// Same machine: every pair conflicts on the control state.
	if p1 == p2 {
		return true
	}
	// A panicked edge could not be fully summarized: poison it.
	if a.Panicked || b.Panicked {
		return true
	}
	// Write-write or write-read/read-write overlap on a global.
	if overlap(a.Writes, b.Writes) || overlap(a.Writes, b.Reads) || overlap(b.Writes, a.Reads) {
		return true
	}
	// One edge's message feeds (or fills the inbox of) the other's
	// process, or both edges race on a common destination inbox.
	na, nb := we.Procs[p1].Proc, we.Procs[p2].Proc
	if we.flowsTouch(p1, a, nb) || we.flowsTouch(p2, b, na) {
		return true
	}
	return we.sharedDestination(p1, a, p2, b)
}

// flowsTouch reports whether the edge's sends or resolved outputs
// address the named process.
func (we *WorldEffects) flowsTouch(p int, e EdgeEffects, target string) bool {
	for _, s := range e.Sends {
		if s.To == target {
			return true
		}
	}
	if len(e.Outputs) > 0 {
		for _, dst := range we.world.Procs[p].OutputTo {
			if dst == target {
				return true
			}
		}
	}
	return false
}

// sharedDestination reports whether both edges enqueue into a common
// inbox (their sends race on queue order).
func (we *WorldEffects) sharedDestination(p1 int, a EdgeEffects, p2 int, b EdgeEffects) bool {
	dests := func(p int, e EdgeEffects) map[string]bool {
		out := make(map[string]bool, len(e.Sends))
		for _, s := range e.Sends {
			out[s.To] = true
		}
		if len(e.Outputs) > 0 {
			for _, dst := range we.world.Procs[p].OutputTo {
				out[dst] = true
			}
		}
		return out
	}
	da, db := dests(p1, a), dests(p2, b)
	for d := range da {
		if db[d] {
			return true
		}
	}
	return false
}

func overlap(a, b []string) bool {
	// Both slices are sorted; merge-walk.
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// buildProcMay projects the edge relation onto processes: two distinct
// processes may interact when any of their edge pairs may.
func (we *WorldEffects) buildProcMay() {
	n := len(we.Procs)
	we.procMay = make([][]bool, n)
	for i := range we.procMay {
		we.procMay[i] = make([]bool, n)
	}
	for p1 := 0; p1 < n; p1++ {
		for p2 := p1 + 1; p2 < n; p2++ {
			for i := range we.Procs[p1].Spec.Edges {
				if we.procMay[p1][p2] {
					break
				}
				for j := range we.Procs[p2].Spec.Edges {
					if we.MayInteract(p1, i, p2, j) {
						we.procMay[p1][p2], we.procMay[p2][p1] = true, true
						break
					}
				}
			}
		}
	}
}

// ProcsMayInteract reports the process-level projection of the
// may-interact relation.
func (we *WorldEffects) ProcsMayInteract(p1, p2 int) bool {
	if p1 == p2 {
		return true
	}
	return we.procMay[p1][p2]
}

// Clusters returns the connected components of the process-level
// may-interact relation, each sorted by process index, ordered by
// their smallest member. Distinct clusters share no globals and
// exchange no messages: under a state-independent scenario the world's
// reachable states are exactly the product of the clusters' reachable
// states, which is what lets the checker's POR mode explore them
// separately (states visited drop from Π|Ci| to Σ|Ci|).
func (we *WorldEffects) Clusters() [][]int {
	n := len(we.Procs)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var clusters [][]int
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		id := len(clusters)
		stack := []int{i}
		comp[i] = id
		var members []int
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, p)
			for q := 0; q < n; q++ {
				if comp[q] < 0 && we.procMay[p][q] {
					comp[q] = id
					stack = append(stack, q)
				}
			}
		}
		sort.Ints(members)
		clusters = append(clusters, members)
	}
	return clusters
}

// ClusterNames maps Clusters' process indices to names.
func (we *WorldEffects) ClusterNames() [][]string {
	var out [][]string
	for _, cl := range we.Clusters() {
		names := make([]string, len(cl))
		for i, p := range cl {
			names[i] = we.Procs[p].Proc
		}
		out = append(out, names)
	}
	return out
}

// Text renders the world's effect summaries as a deterministic
// human-readable report (the cnetlint -effects output).
func (we *WorldEffects) Text() string {
	var b strings.Builder
	for _, pe := range we.Procs {
		fmt.Fprintf(&b, "process %s (%s)\n", pe.Proc, pe.Spec.Spec.Name)
		b.WriteString(indent(SpecText(pe.Spec)))
	}
	fmt.Fprintf(&b, "clusters:\n")
	for i, names := range we.ClusterNames() {
		fmt.Fprintf(&b, "  %d: %s\n", i, strings.Join(names, " "))
	}
	return b.String()
}

// SpecText renders one spec's effect summaries (the golden-file
// format of the lint effect-extraction tests).
func SpecText(se *SpecEffects) string {
	var b strings.Builder
	fmt.Fprintf(&b, "spec %s proto=%s edges=%d\n", se.Spec.Name, se.Spec.Proto, len(se.Edges))
	for _, e := range se.Edges {
		fmt.Fprintf(&b, "edge %d %s: %s --%s--> %s\n", e.Index, e.Transition, e.From, e.On, e.To)
		writeList(&b, "  reads:  ", e.Reads)
		writeList(&b, "  writes: ", e.Writes)
		writeList(&b, "  local reads:  ", e.LocalReads)
		writeList(&b, "  local writes: ", e.LocalWrites)
		for _, s := range e.Sends {
			fmt.Fprintf(&b, "  %s\n", s)
		}
		for _, o := range e.Outputs {
			fmt.Fprintf(&b, "  %s\n", o)
		}
		if !e.GuardTrue {
			b.WriteString("  guard: unsatisfied under every probe\n")
		}
		if e.Panicked {
			b.WriteString("  panicked under some probe (summarized conservatively)\n")
		}
	}
	return b.String()
}

func writeList(b *strings.Builder, label string, items []string) {
	if len(items) == 0 {
		return
	}
	b.WriteString(label)
	b.WriteString(strings.Join(items, " "))
	b.WriteByte('\n')
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}
