package effects

import (
	"reflect"
	"strings"
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/model"
	"cnetverifier/internal/types"
)

// Synthetic specs for the independence tests. Each helper returns a
// fresh *Spec so the per-pointer memoization in ForSpec never aliases
// two tests' specs.

func writerSpec(global string) *fsm.Spec {
	return &fsm.Spec{
		Name: "writer", Init: "Idle",
		Transitions: []fsm.Transition{
			{Name: "write", From: "Idle", To: "Done", On: types.MsgUserDataOn,
				Action: func(c fsm.Ctx, e fsm.Event) { c.Set(global, 1) }},
		},
	}
}

func readerSpec(global string) *fsm.Spec {
	return &fsm.Spec{
		Name: "reader", Init: "Idle",
		Transitions: []fsm.Transition{
			{Name: "read", From: "Idle", To: "Done", On: types.MsgUserDataOn,
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return c.Get(global) == 1 }},
		},
	}
}

func senderSpec(to string) *fsm.Spec {
	return &fsm.Spec{
		Name: "sender", Init: "Idle", Proto: types.ProtoGMM,
		Transitions: []fsm.Transition{
			{Name: "send", From: "Idle", To: "Done", On: types.MsgUserDataOn,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(to, types.NewMessage(types.MsgAttachRequest, types.ProtoGMM))
				}},
		},
	}
}

func sinkSpec() *fsm.Spec {
	return &fsm.Spec{
		Name: "sink", Init: "Idle", Proto: types.ProtoGMM,
		Transitions: []fsm.Transition{
			{Name: "recv", From: "Idle", To: "Done", On: types.MsgAttachRequest},
		},
	}
}

func mustWorld(t *testing.T, cfg model.Config) *model.World {
	t.Helper()
	w, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestClustersGlobalAndMessageCoupling pins the two coupling sources
// the may-interact relation must see — a shared global between a and
// b, a message flow from d to c — and the independence of everything
// else: the four-process world decomposes into exactly {a,b} and
// {c,d}.
func TestClustersGlobalAndMessageCoupling(t *testing.T) {
	w := mustWorld(t, model.Config{
		Globals: map[string]int{"g.shared": 0, "g.other": 0},
		Procs: []model.ProcConfig{
			{Name: "a", Spec: writerSpec("g.shared")},
			{Name: "b", Spec: readerSpec("g.shared")},
			{Name: "c", Spec: sinkSpec()},
			{Name: "d", Spec: senderSpec("c")},
		},
	})
	we := Analyze(w)

	if !we.MayInteract(0, 0, 1, 0) {
		t.Error("writer/reader of g.shared not marked as interacting")
	}
	if !we.MayInteract(3, 0, 2, 0) {
		t.Error("sender edge addressing c not marked as interacting with c")
	}
	if we.MayInteract(0, 0, 2, 0) || !we.Independent(0, 0, 3, 0) {
		t.Error("edges with disjoint globals and no flows must be independent")
	}
	if !we.MayInteract(0, 0, 0, 0) {
		t.Error("an edge must always interact with its own machine")
	}

	want := [][]int{{0, 1}, {2, 3}}
	if got := we.Clusters(); !reflect.DeepEqual(got, want) {
		t.Errorf("Clusters() = %v, want %v", got, want)
	}
	wantNames := [][]string{{"a", "b"}, {"c", "d"}}
	if got := we.ClusterNames(); !reflect.DeepEqual(got, wantNames) {
		t.Errorf("ClusterNames() = %v, want %v", got, wantNames)
	}
}

// TestSharedDestinationCouples pins the queue-order race: two senders
// that never share a global but both enqueue into the same inbox must
// land in one cluster (their sends race on c's queue order).
func TestSharedDestinationCouples(t *testing.T) {
	w := mustWorld(t, model.Config{
		Procs: []model.ProcConfig{
			{Name: "a", Spec: senderSpec("c")},
			{Name: "b", Spec: senderSpec("c")},
			{Name: "c", Spec: sinkSpec()},
		},
	})
	we := Analyze(w)
	if !we.MayInteract(0, 0, 1, 0) {
		t.Error("two senders into the same inbox must interact")
	}
	if got := we.Clusters(); len(got) != 1 {
		t.Errorf("Clusters() = %v, want one cluster", got)
	}
}

// TestPanickedEdgePoisonsIndependence is the conservative-direction
// regression test: an edge whose guard panics under every probe could
// not be summarized, so it may interact with everything — even a
// process it shares no visible state with.
func TestPanickedEdgePoisonsIndependence(t *testing.T) {
	panicky := &fsm.Spec{
		Name: "panicky", Init: "Idle",
		Transitions: []fsm.Transition{
			{Name: "boom", From: "Idle", To: "Done", On: types.MsgUserDataOn,
				Guard: func(c fsm.Ctx, e fsm.Event) bool { panic("unsummarizable") }},
		},
	}
	w := mustWorld(t, model.Config{
		Globals: map[string]int{"g.other": 0},
		Procs: []model.ProcConfig{
			{Name: "p", Spec: panicky},
			{Name: "q", Spec: writerSpec("g.other")},
		},
	})
	we := Analyze(w)
	if !we.Procs[0].Spec.Edges[0].Panicked {
		t.Fatal("Panicked not set on the panicking edge")
	}
	if we.Independent(0, 0, 1, 0) {
		t.Error("a panicked edge was declared independent — the relation must poison it")
	}
	if got := we.Clusters(); len(got) != 1 {
		t.Errorf("Clusters() = %v, want one cluster (panic poisoning)", got)
	}
}

// TestProbeEdgePanicSummarizedOnce mirrors the internal/lint probing
// regression at the effects layer: an edge that panics under most
// probes is summarized exactly once, keeps the facts recorded before
// each panic, and reports guard satisfiability from the surviving
// probes only.
func TestProbeEdgePanicSummarizedOnce(t *testing.T) {
	s := &fsm.Spec{
		Name: "partial", Init: "A",
		Transitions: []fsm.Transition{
			{Name: "t0", From: "A", To: "B", On: types.MsgUserDataOn,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					if c.Get("g.mode") != 2 {
						panic("unexpected mode")
					}
					return true
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send("peer", types.NewMessage(types.MsgAttachRequest, types.ProtoGMM))
					panic("late")
				}},
		},
	}
	se := ForSpec(s)
	if len(se.Edges) != 1 {
		t.Fatalf("got %d edge summaries, want exactly 1", len(se.Edges))
	}
	e := se.Edges[0]
	if !e.Panicked {
		t.Error("Panicked not set")
	}
	if !e.GuardTrue {
		t.Error("GuardTrue false: probe default 2 satisfies the guard")
	}
	if !reflect.DeepEqual(e.Reads, []string{"g.mode"}) {
		t.Errorf("Reads = %v, want the pre-panic guard read", e.Reads)
	}
	if len(e.Sends) != 1 || e.Sends[0].To != "peer" || e.Sends[0].Kind != types.MsgAttachRequest {
		t.Errorf("Sends = %v, want exactly one pre-panic send to peer", e.Sends)
	}
}

// TestForSpecNamespacedGlobals pins the namespace composition: probing
// a spec wrapped by fsm.NamespaceGlobals yields namespace-resolved
// effect sets, so MultiUEWorld's copies fall out of the analysis as
// independent with no special casing.
func TestForSpecNamespacedGlobals(t *testing.T) {
	base := writerSpec("g.shared")
	ns := fsm.NamespaceGlobals(base, "ue7")
	se := ForSpec(ns)
	if !reflect.DeepEqual(se.Writes, []string{"g.ue7.shared"}) {
		t.Errorf("namespaced Writes = %v, want [g.ue7.shared]", se.Writes)
	}
	// The base spec's own summary is unaffected (distinct spec, own
	// cache entry).
	if got := ForSpec(base).Writes; !reflect.DeepEqual(got, []string{"g.shared"}) {
		t.Errorf("base Writes = %v, want [g.shared]", got)
	}
	// Namespaced copies with distinct namespaces stay independent.
	w := mustWorld(t, model.Config{
		Globals: map[string]int{"g.ue7.shared": 0, "g.ue8.shared": 0},
		Procs: []model.ProcConfig{
			{Name: "u7", Spec: fsm.NamespaceGlobals(writerSpec("g.shared"), "ue7")},
			{Name: "u8", Spec: fsm.NamespaceGlobals(writerSpec("g.shared"), "ue8")},
		},
	})
	if got := Analyze(w).Clusters(); len(got) != 2 {
		t.Errorf("Clusters() = %v, want two clusters for disjoint namespaces", got)
	}
}

// TestOutputResolutionAndGraph pins output handling end to end: an
// Output-kind flow is resolved against the world's OutputTo wiring
// (flowsTouch + graph edges), and GraphEdges marks the flow handled
// only when the receiver's spec reacts to the kind.
func TestOutputResolutionAndGraph(t *testing.T) {
	outSpec := &fsm.Spec{
		Name: "upper", Init: "Idle", Proto: types.ProtoCM,
		Transitions: []fsm.Transition{
			{Name: "emit", From: "Idle", To: "Done", On: types.MsgUserDataOn,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Output(types.NewMessage(types.MsgAttachRequest, types.ProtoGMM))
				}},
		},
	}
	w := mustWorld(t, model.Config{
		Procs: []model.ProcConfig{
			{Name: "up", Spec: outSpec, OutputTo: []string{"down", "deaf"}},
			{Name: "down", Spec: sinkSpec()},
			{Name: "deaf", Spec: writerSpec("g.x")},
		},
		Globals: map[string]int{"g.x": 0},
	})
	we := Analyze(w)

	if we.Independent(0, 0, 1, 0) {
		t.Error("output into down's inbox not seen by the relation")
	}
	if !we.Reachable(0, 1) {
		t.Error("Reachable(up, down) = false, want true")
	}
	if we.Reachable(1, 0) {
		t.Error("Reachable(down, up) = true, want false (flows are directed)")
	}

	var toDown, toDeaf *GraphEdge
	edges := we.GraphEdges()
	for i := range edges {
		switch {
		case edges[i].From == "up" && edges[i].To == "down":
			toDown = &edges[i]
		case edges[i].From == "up" && edges[i].To == "deaf":
			toDeaf = &edges[i]
		}
	}
	if toDown == nil || toDeaf == nil {
		t.Fatalf("GraphEdges() missing the output flows: %+v", edges)
	}
	if !toDown.Handled {
		t.Error("flow to down marked unhandled; sink handles AttachRequest")
	}
	if toDeaf.Handled {
		t.Error("flow to deaf marked handled; writer has no AttachRequest edge")
	}
	if !toDown.Output {
		t.Error("output flow lost its Output mark in the graph")
	}

	dot := we.GraphDOT()
	for _, frag := range []string{"digraph", "\"up\"", "\"down\""} {
		if !strings.Contains(dot, frag) {
			t.Errorf("GraphDOT() missing %q:\n%s", frag, dot)
		}
	}
}

// TestEdgeIDInterning pins the slab-coordinate contract the checker
// relies on: EdgeID is dense, per-process contiguous, and in world
// process order.
func TestEdgeIDInterning(t *testing.T) {
	two := &fsm.Spec{
		Name: "two", Init: "A",
		Transitions: []fsm.Transition{
			{Name: "t0", From: "A", To: "B", On: types.MsgUserDataOn},
			{Name: "t1", From: "B", To: "A", On: types.MsgUserDataOff},
		},
	}
	w := mustWorld(t, model.Config{
		Procs: []model.ProcConfig{
			{Name: "p0", Spec: two},
			{Name: "p1", Spec: sinkSpec()},
		},
	})
	we := Analyze(w)
	if we.NumEdges() != 3 {
		t.Fatalf("NumEdges() = %d, want 3", we.NumEdges())
	}
	ids := []int{we.EdgeID(0, 0), we.EdgeID(0, 1), we.EdgeID(1, 0)}
	if !reflect.DeepEqual(ids, []int{0, 1, 2}) {
		t.Errorf("EdgeID interning = %v, want dense [0 1 2]", ids)
	}
	if idx, ok := we.ProcIndex("p1"); !ok || idx != 1 {
		t.Errorf("ProcIndex(p1) = %d,%v want 1,true", idx, ok)
	}
}
