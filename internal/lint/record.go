package lint

import (
	"sort"
	"sync"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/types"
)

// Guards and actions are opaque Go closures, so the message-flow and
// variable passes cannot inspect them syntactically. Instead they are
// probed: each transition's guard and action runs against a recording
// fsm.Ctx under a small family of constant variable assignments, and the
// recorder logs every Get/Set/Send/Output. Facts gathered this way are
// existential ("under some probe this action sends AttachAccept to
// mme.emm"), so the passes use them conservatively — a branch no probe
// reaches is missed, never invented.

// probeDefaults are the constant values every variable takes during one
// probe run. The set covers the small enums that guards compare against
// (types.System 0/1/2, names.Switch* 0/1/2, booleans) plus the
// modulation orders of S5 (16QAM/64QAM).
var probeDefaults = []int{0, 1, 2, 3, 16, 64}

// sendFact is one recorded Ctx.Send.
type sendFact struct {
	To   string
	Kind types.MsgKind
}

// transFacts are the recorded effects of one transition.
type transFacts struct {
	// Reads/Writes are variable accesses, including "g."-prefixed
	// globals; separation happens at the consumer.
	Reads, Writes map[string]bool
	// Sends lists recorded Ctx.Send calls.
	Sends []sendFact
	// Outputs lists kinds passed to Ctx.Output.
	Outputs []types.MsgKind
	// GuardTrue holds the probe defaults under which the guard returned
	// true (all probes, for an unguarded transition).
	GuardTrue []int
	// Panicked is set when the guard or action panicked under at least
	// one probe (the probe context cannot satisfy every invariant the
	// closure assumes; remaining probes still ran).
	Panicked bool
}

// specFacts aggregate probe results over a whole spec.
type specFacts struct {
	Spec *fsm.Spec
	// PerTransition is indexed like Spec.Transitions.
	PerTransition []*transFacts
	// Reads/Writes union the per-transition accesses.
	Reads, Writes map[string]bool
	// Sends/Outputs union the per-transition effects (deduplicated).
	Sends   []sendFact
	Outputs []types.MsgKind
}

// recorder is the probing fsm.Ctx. Get returns the probe default unless
// an earlier Set in the same run assigned the name.
type recorder struct {
	def    int
	vals   map[string]int
	reads  map[string]bool
	writes map[string]bool
	sends  []sendFact
	outs   []types.MsgKind
}

func newRecorder(def int) *recorder {
	return &recorder{
		def:    def,
		vals:   make(map[string]int),
		reads:  make(map[string]bool),
		writes: make(map[string]bool),
	}
}

func (r *recorder) Get(name string) int {
	r.reads[name] = true
	if v, ok := r.vals[name]; ok {
		return v
	}
	return r.def
}

func (r *recorder) Set(name string, v int) {
	r.writes[name] = true
	r.vals[name] = v
}

// GetI/SetI are only resolved by the machine wrapper; probes drive the
// closures through a bare recorder, so return the probe default and
// drop writes (slot names are unknown here).
func (r *recorder) GetI(int32) int32  { return int32(r.def) }
func (r *recorder) SetI(int32, int32) {}

func (r *recorder) Send(to string, msg types.Message) {
	r.sends = append(r.sends, sendFact{To: to, Kind: msg.Kind})
}

func (r *recorder) Output(msg types.Message) {
	r.outs = append(r.outs, msg.Kind)
}

func (r *recorder) Trace(string, ...any) {}

// safely runs f, converting a panic into ok=false.
func safely(f func()) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	f()
	return true
}

// probeTransition runs one transition's guard and action under every
// probe default. The action runs regardless of the guard verdict: the
// guard only decides when the transition fires, not what it does, and
// the message-flow passes need the action's effects even when no
// constant assignment satisfies the guard.
func probeTransition(t fsm.Transition) *transFacts {
	tf := &transFacts{Reads: make(map[string]bool), Writes: make(map[string]bool)}
	ev := fsm.Ev(t.On)
	for _, def := range probeDefaults {
		guardOK := true
		if t.Guard != nil {
			rec := newRecorder(def)
			ran := safely(func() { guardOK = t.Guard(rec, ev) })
			if !ran {
				tf.Panicked = true
				guardOK = false
			}
			mergeAccess(tf, rec)
		}
		if guardOK {
			tf.GuardTrue = append(tf.GuardTrue, def)
		}
		if t.Action != nil {
			rec := newRecorder(def)
			if !safely(func() { t.Action(rec, ev) }) {
				tf.Panicked = true
			}
			mergeAccess(tf, rec)
			for _, s := range rec.sends {
				tf.Sends = append(tf.Sends, s)
			}
			tf.Outputs = append(tf.Outputs, rec.outs...)
		}
	}
	tf.Sends = dedupSends(tf.Sends)
	tf.Outputs = dedupKinds(tf.Outputs)
	return tf
}

func mergeAccess(tf *transFacts, rec *recorder) {
	for k := range rec.reads {
		tf.Reads[k] = true
	}
	for k := range rec.writes {
		tf.Writes[k] = true
	}
}

// specFactsCache memoizes probeSpec per *Spec. Specs are built once at
// package init and immutable thereafter (the same contract the fsm
// layout cache relies on), probing is a pure function of the spec, and
// no consumer mutates the returned facts — so a screening campaign
// that lints the same world before every run probes each spec once.
var specFactsCache sync.Map // *fsm.Spec -> *specFacts

// probeSpec probes every transition of the spec (memoized).
func probeSpec(s *fsm.Spec) *specFacts {
	if sf, ok := specFactsCache.Load(s); ok {
		return sf.(*specFacts)
	}
	sf := buildSpecFacts(s)
	actual, _ := specFactsCache.LoadOrStore(s, sf)
	return actual.(*specFacts)
}

func buildSpecFacts(s *fsm.Spec) *specFacts {
	sf := &specFacts{
		Spec:          s,
		PerTransition: make([]*transFacts, len(s.Transitions)),
		Reads:         make(map[string]bool),
		Writes:        make(map[string]bool),
	}
	for i, t := range s.Transitions {
		tf := probeTransition(t)
		sf.PerTransition[i] = tf
		for k := range tf.Reads {
			sf.Reads[k] = true
		}
		for k := range tf.Writes {
			sf.Writes[k] = true
		}
		sf.Sends = append(sf.Sends, tf.Sends...)
		sf.Outputs = append(sf.Outputs, tf.Outputs...)
	}
	sf.Sends = dedupSends(sf.Sends)
	sf.Outputs = dedupKinds(sf.Outputs)
	return sf
}

func dedupSends(in []sendFact) []sendFact {
	seen := make(map[sendFact]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

func dedupKinds(in []types.MsgKind) []types.MsgKind {
	seen := make(map[types.MsgKind]bool, len(in))
	out := in[:0]
	for _, k := range in {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// isGlobalName mirrors the fsm engine's scoping rule: names with the
// "g." prefix resolve to world globals.
func isGlobalName(name string) bool {
	return len(name) > 2 && name[0] == 'g' && name[1] == '.'
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
