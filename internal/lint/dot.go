package lint

import (
	"fmt"
	"strings"

	"cnetverifier/internal/fsm"
)

// DOT renders the spec as a Graphviz digraph annotated with the
// report's findings: unreachable states fill gray (SPEC004), dead-end
// states orange (SPEC005), shadowed transitions draw red (SPEC002), and
// guarded transitions render dashed as in the plain fsm.Spec.DOT.
func DOT(s *fsm.Spec, r *Report) string {
	unreachable := make(map[string]bool)
	deadEnd := make(map[string]bool)
	shadowed := make(map[string]bool)
	if r != nil {
		for _, f := range r.Findings {
			if f.Spec != s.Name {
				continue
			}
			switch f.Rule {
			case RuleUnreachableState:
				unreachable[f.State] = true
			case RuleDeadEndState:
				deadEnd[f.State] = true
			case RuleShadowed:
				shadowed[f.Transition] = true
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", s.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	fmt.Fprintf(&b, "  %q [peripheries=2];\n", string(s.Init))
	for _, st := range s.States() {
		switch {
		case unreachable[string(st)]:
			fmt.Fprintf(&b, "  %q [style=filled, fillcolor=gray80, color=gray50];\n", string(st))
		case deadEnd[string(st)]:
			fmt.Fprintf(&b, "  %q [style=filled, fillcolor=orange];\n", string(st))
		}
	}
	for _, e := range s.Edges() {
		var attrs []string
		if e.Guarded {
			attrs = append(attrs, "style=dashed")
		}
		if shadowed[e.Name] {
			attrs = append(attrs, "color=red", "fontcolor=red")
		}
		extra := ""
		if len(attrs) > 0 {
			extra = ", " + strings.Join(attrs, ", ")
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q%s];\n",
			string(e.From), string(e.To), fmt.Sprintf("%s\\n%s", e.On, e.Name), extra)
	}
	b.WriteString("}\n")
	return b.String()
}
