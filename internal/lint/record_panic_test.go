package lint

import (
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/types"
)

// TestProbePanickingGuardOnce is the regression test for the probing
// panic discipline: a transition whose guard panics under some probe
// defaults must still be summarized exactly once — one transFacts
// entry, sends counted once in the spec rollup, GuardTrue listing only
// the defaults that actually satisfied the guard, and the facts the
// recorder captured before each panic preserved.
func TestProbePanickingGuardOnce(t *testing.T) {
	s := &fsm.Spec{
		Name: "panicky",
		Init: "A",
		Transitions: []fsm.Transition{
			{
				Name: "t0", From: "A", To: "B", On: types.MsgUserDataOn,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					// Reads one global, then panics on every probe
					// default except 2 (mimicking a closure invariant
					// the probe context cannot satisfy).
					v := c.Get("g.mode")
					if v != 2 {
						panic("unexpected mode")
					}
					return true
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send("peer", types.NewMessage(types.MsgAttachRequest, types.ProtoGMM))
					c.Set("g.done", 1)
				},
			},
		},
	}

	sf := buildSpecFacts(s)
	if len(sf.PerTransition) != 1 {
		t.Fatalf("spec has %d transition summaries, want exactly 1 (no double count)", len(sf.PerTransition))
	}
	tf := sf.PerTransition[0]
	if !tf.Panicked {
		t.Error("Panicked not set for a guard that panics under some probes")
	}
	if len(tf.GuardTrue) != 1 || tf.GuardTrue[0] != 2 {
		t.Errorf("GuardTrue = %v, want [2]: panicked probes must not count as satisfied", tf.GuardTrue)
	}
	if !tf.Reads["g.mode"] {
		t.Error("read recorded before the panic was lost")
	}
	if len(tf.Sends) != 1 || tf.Sends[0] != (sendFact{To: "peer", Kind: types.MsgAttachRequest}) {
		t.Errorf("Sends = %v, want exactly one AttachRequest to peer", tf.Sends)
	}
	if len(sf.Sends) != 1 {
		t.Errorf("spec-level Sends = %v, want the send counted once", sf.Sends)
	}
	if !tf.Writes["g.done"] {
		t.Error("action write not recorded")
	}
}

// TestProbePanickingActionKeepsPartialFacts pins that an action
// panicking mid-run still contributes the sends and writes it made
// before the panic, once.
func TestProbePanickingActionKeepsPartialFacts(t *testing.T) {
	s := &fsm.Spec{
		Name: "panicky-action",
		Init: "A",
		Transitions: []fsm.Transition{
			{
				Name: "t0", From: "A", To: "B", On: types.MsgUserDataOn,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set("g.before", 1)
					c.Send("peer", types.NewMessage(types.MsgDetachRequest, types.ProtoGMM))
					panic("boom")
				},
			},
		},
	}
	sf := buildSpecFacts(s)
	tf := sf.PerTransition[0]
	if !tf.Panicked {
		t.Error("Panicked not set for a panicking action")
	}
	if !tf.Writes["g.before"] {
		t.Error("write before the panic was lost")
	}
	if len(tf.Sends) != 1 {
		t.Errorf("Sends = %v, want the pre-panic send exactly once across all probes", tf.Sends)
	}
	if len(tf.GuardTrue) != len(probeDefaults) {
		t.Errorf("GuardTrue = %v: an unguarded transition is satisfied under every probe regardless of action panics", tf.GuardTrue)
	}
}
