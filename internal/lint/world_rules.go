package lint

import (
	"fmt"
	"sort"
	"strings"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/model"
	"cnetverifier/internal/types"
)

// World runs every pass over a composed world: the single-machine
// passes for each process's spec, then the wiring, message-flow and
// global-variable passes that need the full system. The world is only
// read, never mutated (probing runs against recording contexts).
func World(w *model.World, o Options) *Report {
	r := &Report{}

	// Per-spec passes, attributed to the hosting process. A spec shared
	// by several processes is linted once.
	seen := make(map[*fsm.Spec]bool)
	facts := make(map[string]*specFacts, len(w.Procs))
	for _, p := range w.Procs {
		s := p.M.Spec()
		facts[p.Name] = probeSpec(s)
		if seen[s] {
			continue
		}
		seen[s] = true
		sub := Spec(s, o)
		for i := range sub.Findings {
			sub.Findings[i].Proc = p.Name
		}
		r.Merge(sub)
	}

	lintWiring(r, o, w)
	lintMessageFlow(r, o, w, facts)
	lintGlobals(r, o, w, facts)
	lintEffects(r, o, w)
	r.Sort()
	return r
}

// element returns the hosting element of a process name: the prefix
// before the first '.' ("ue.emm" → "ue"), or the whole name.
func element(proc string) string {
	if i := strings.IndexByte(proc, '.'); i >= 0 {
		return proc[:i]
	}
	return proc
}

// lintWiring reports WIRE001/WIRE002 (partly)/WIRE003/WIRE004/WIRE006/
// WIRE007: the structural health of the channel table and the
// cross-layer OutputTo graph.
func lintWiring(r *Report, o Options, w *model.World) {
	procs := make(map[string]*model.Proc, len(w.Procs))
	for _, p := range w.Procs {
		if _, dup := procs[p.Name]; dup {
			r.add(o, Finding{Rule: RuleChannelMismatch, Severity: Error, Proc: p.Name,
				Detail: "duplicate process name in the world"})
		}
		procs[p.Name] = p
	}

	chans := make(map[string]bool, len(w.Chans))
	for _, c := range w.Chans {
		if chans[c.Name] {
			r.add(o, Finding{Rule: RuleChannelMismatch, Severity: Error, Proc: c.Name,
				Detail: "duplicate inbox channel name"})
		}
		chans[c.Name] = true
		if _, ok := procs[c.Name]; !ok {
			r.add(o, Finding{Rule: RuleChannelMismatch, Severity: Error, Proc: c.Name,
				Detail: "inbox channel has no matching process"})
		}
		if c.Cap < 0 {
			r.add(o, Finding{Rule: RuleNegativeCap, Severity: Error, Proc: c.Name,
				Detail: fmt.Sprintf("inbox capacity %d is negative", c.Cap)})
		}
		if c.Reorder && !c.Lossy {
			r.add(o, Finding{Rule: RuleReorderNotLossy, Severity: Warn, Proc: c.Name,
				Detail: "inbox reorders but is not lossy: the multi-BS relay regime of §5.2 implies unreliable delivery too"})
		}
	}
	for _, p := range w.Procs {
		if !chans[p.Name] {
			r.add(o, Finding{Rule: RuleChannelMismatch, Severity: Error, Proc: p.Name,
				Detail: "process has no inbox channel"})
		}
		for _, dst := range p.OutputTo {
			tgt, ok := procs[dst]
			if !ok {
				r.add(o, Finding{Rule: RuleOutputTargetGone, Severity: Error, Proc: p.Name,
					Spec:   p.M.Spec().Name,
					Detail: fmt.Sprintf("OutputTo names %q, which does not exist in this world", dst)})
				continue
			}
			if element(p.Name) != element(tgt.Name) {
				r.add(o, Finding{Rule: RuleOutputNotLocal, Severity: Error, Proc: p.Name,
					Spec: p.M.Spec().Name,
					Detail: fmt.Sprintf("OutputTo target %q lives on element %q, not %q: Output models co-located cross-layer delivery only",
						dst, element(tgt.Name), element(p.Name))})
			}
		}
	}
}

// lintMessageFlow reports MSG001/MSG002/MSG003/WIRE002/WIRE005: every
// kind a process sends or outputs must be handled (in at least one
// state) by the addressed process, and every declared handler needs a
// possible sender. Send/Output facts come from probing; handler sets
// are exact (the spec's On column).
func lintMessageFlow(r *Report, o Options, w *model.World, facts map[string]*specFacts) {
	procs := make(map[string]*model.Proc, len(w.Procs))
	handled := make(map[string]map[types.MsgKind]bool, len(w.Procs))
	for _, p := range w.Procs {
		procs[p.Name] = p
		set := make(map[types.MsgKind]bool)
		for _, k := range p.M.Spec().Events() {
			set[k] = true
		}
		handled[p.Name] = set
	}

	// feeders[proc][kind] is true when some process can send or output
	// kind into proc's inbox.
	feeders := make(map[string]map[types.MsgKind]bool, len(w.Procs))
	feed := func(proc string, kind types.MsgKind) {
		if feeders[proc] == nil {
			feeders[proc] = make(map[types.MsgKind]bool)
		}
		feeders[proc][kind] = true
	}

	for _, p := range w.Procs {
		f := facts[p.Name]
		spec := p.M.Spec().Name
		for _, s := range f.Sends {
			tgt, ok := procs[s.To]
			if !ok {
				r.add(o, Finding{Rule: RuleSendTargetGone, Severity: Warn, Proc: p.Name, Spec: spec,
					Detail: fmt.Sprintf("sends %s to %q, which is absent from this world: the backend drops it", s.Kind, s.To)})
				continue
			}
			feed(s.To, s.Kind)
			if !handled[tgt.Name][s.Kind] {
				r.add(o, Finding{Rule: RuleDeadLetterSend, Severity: Error, Proc: p.Name, Spec: spec,
					Detail: fmt.Sprintf("sends %s to %q, which handles that kind in no state (dead letter)", s.Kind, s.To)})
			}
		}
		if len(f.Outputs) > 0 && len(p.OutputTo) == 0 {
			r.add(o, Finding{Rule: RuleOutputNoTargets, Severity: Warn, Proc: p.Name, Spec: spec,
				Detail: fmt.Sprintf("emits Output(%s) but has no OutputTo targets: the output vanishes", kindList(f.Outputs))})
		}
		for _, k := range f.Outputs {
			anyHandles := false
			for _, dst := range p.OutputTo {
				feed(dst, k)
				if handled[dst][k] {
					anyHandles = true
				}
			}
			if len(p.OutputTo) > 0 && !anyHandles {
				r.add(o, Finding{Rule: RuleOutputUnhandled, Severity: Error, Proc: p.Name, Spec: spec,
					Detail: fmt.Sprintf("outputs %s but none of its OutputTo targets (%s) handles that kind",
						k, strings.Join(p.OutputTo, ", "))})
			}
		}
	}

	// Environment hints: scenario-injectable kinds count as senders.
	// A hint naming a process that is not in this world is WIRE008 —
	// the event can never fire, so the explored scenario space is
	// silently smaller than the scenario declares (the static mirror
	// of a runtime misrouted send, model.Stats.Misrouted). Warn, not
	// Error: scoped worlds legitimately project layers away.
	for _, h := range o.Env {
		if h.Proc == "" {
			for name := range procs {
				feed(name, types.MsgKind(h.Kind))
			}
		} else if _, ok := procs[h.Proc]; !ok {
			r.add(o, Finding{Rule: RuleEnvTargetGone, Severity: Warn, Proc: h.Proc,
				Detail: fmt.Sprintf("scenario injects %s into %q, which is absent from this world: the event can never fire", types.MsgKind(h.Kind), h.Proc)})
		} else {
			feed(h.Proc, types.MsgKind(h.Kind))
		}
	}

	for _, p := range w.Procs {
		var dead []types.MsgKind
		for _, k := range p.M.Spec().Events() {
			if k.IsUserEvent() || k.IsOperatorEvent() {
				continue // always injectable by the environment
			}
			if feeders[p.Name][k] {
				continue
			}
			dead = append(dead, k)
		}
		sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
		for _, k := range dead {
			r.add(o, Finding{Rule: RuleHandlerNoSender, Severity: Warn, Proc: p.Name,
				Spec:   p.M.Spec().Name,
				Detail: fmt.Sprintf("handles %s but no process in this world sends or outputs it and no environment event injects it (dead inbox)", k)})
		}
	}
}

// lintGlobals reports GVAR001/GVAR002 over the "g."-prefixed shared
// variables: cross-machine dataflow that no single spec can see.
func lintGlobals(r *Report, o Options, w *model.World, facts map[string]*specFacts) {
	readers := make(map[string][]string)
	writers := make(map[string][]string)
	for _, p := range w.Procs {
		f := facts[p.Name]
		for name := range f.Reads {
			if isGlobalName(name) {
				readers[name] = append(readers[name], p.Name)
			}
		}
		for name := range f.Writes {
			if isGlobalName(name) {
				writers[name] = append(writers[name], p.Name)
			}
		}
	}
	for _, name := range sortedNames(boolKeys(writers)) {
		if len(readers[name]) > 0 {
			continue
		}
		sort.Strings(writers[name])
		r.add(o, Finding{Rule: RuleGlobalWriteOnly, Severity: Info,
			Detail: fmt.Sprintf("global %q is written by %s but read by no machine (it may still be a property observable)",
				name, strings.Join(writers[name], ", "))})
	}
	for _, name := range sortedNames(boolKeys(readers)) {
		if len(writers[name]) > 0 {
			continue
		}
		if w.HasGlobal(name) {
			continue
		}
		sort.Strings(readers[name])
		r.add(o, Finding{Rule: RuleGlobalReadOnly, Severity: Warn,
			Detail: fmt.Sprintf("global %q is read by %s but written by no machine and not initialized in the world",
				name, strings.Join(readers[name], ", "))})
	}
}

func boolKeys[V any](m map[string]V) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func kindList(kinds []types.MsgKind) string {
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	return strings.Join(names, ", ")
}
