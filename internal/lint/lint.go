// Package lint is a multi-pass static analyzer over fsm.Spec transition
// tables and composed model.World wirings — the specification-level
// complement to the screening phase (internal/check).
//
// The model checker only finds property violations that its usage
// scenarios happen to reach; structural defects in the protocol models
// themselves (shadowed transitions, unhandled message kinds, dead
// cross-layer wiring) silently shrink the explored state space and can
// mask real S1–S6-style interaction bugs. The lint passes detect those
// defects directly on the spec artifacts:
//
//   - transition passes (SPEC*): shadowed/unreachable transitions,
//     nondeterminism between overlapping guarded rules, dead-end
//     states, guard-aware reachability;
//   - message-flow passes (MSG*): every message kind a process sends or
//     outputs must be handled by the addressed process, and every
//     declared handler must have a possible sender (dead letters);
//   - wiring passes (WIRE*): OutputTo targets exist and are co-located,
//     inbox channels match processes, capacity/lossiness flags are
//     coherent;
//   - variable passes (VAR*, GVAR*): variables set but never read and
//     vice versa, locally and for the "g."-prefixed globals shared
//     across machines.
//
// Guards and actions are opaque Go functions, so the message-flow and
// variable passes instrument them with a recording fsm.Ctx (see
// record.go). Facts discovered that way are conservative: a send hidden
// behind an unexplored branch is missed, never invented, and rules that
// depend on probing alone are capped at Warn severity unless the
// consequence is structural (an addressed process that cannot handle a
// kind in any state).
//
// Findings carry a stable rule ID, a severity, and a spec/state/
// transition location; reports render as text, JSON and annotated DOT.
package lint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Severity grades a finding.
type Severity uint8

const (
	// Info marks observations worth reviewing but expected in healthy
	// specs (e.g. a state reachable only through guarded transitions).
	Info Severity = iota
	// Warn marks likely defects that do not invalidate exploration.
	Warn
	// Error marks structural defects: the spec or world is broken and
	// screening results over it are not trustworthy.
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", uint8(s))
	}
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// ParseSeverity parses "info", "warn" or "error".
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToLower(s) {
	case "info":
		return Info, nil
	case "warn", "warning":
		return Warn, nil
	case "error":
		return Error, nil
	default:
		return Info, fmt.Errorf("lint: unknown severity %q", s)
	}
}

// Rule IDs, stable across releases. Numbering gaps are reserved.
const (
	RuleSpecInvalid      = "SPEC001" // Spec.Validate failure
	RuleShadowed         = "SPEC002" // transition dead under first-match priority
	RuleOverlap          = "SPEC003" // overlapping guarded transitions (nondeterminism)
	RuleUnreachableState = "SPEC004" // state unreachable from Init
	RuleDeadEndState     = "SPEC005" // reachable state with no way out
	RuleGuardedReach     = "SPEC006" // state reachable only through guarded transitions
	RuleDupTransition    = "SPEC007" // duplicate transition name

	RuleVarWriteOnly = "VAR001" // local variable set but never read
	RuleVarReadOnly  = "VAR002" // local variable read but never set or declared
	RuleVarUnused    = "VAR003" // declared variable never referenced

	RuleDeadLetterSend   = "MSG001"  // sent kind unhandled by the addressed process
	RuleHandlerNoSender  = "MSG002"  // handler with no possible sender
	RuleOutputUnhandled  = "MSG003"  // Output kind unhandled by every OutputTo target
	RuleOutputNoTargets  = "WIRE002" // Output() used but OutputTo is empty
	RuleOutputTargetGone = "WIRE001" // OutputTo names a process absent from the world
	RuleOutputNotLocal   = "WIRE003" // OutputTo target hosted on a different element
	RuleChannelMismatch  = "WIRE004" // inbox channel table does not match processes
	RuleSendTargetGone   = "WIRE005" // send addressed to a process absent from the world
	RuleNegativeCap      = "WIRE006" // negative channel capacity
	RuleReorderNotLossy  = "WIRE007" // Reorder set without Lossy
	RuleEnvTargetGone    = "WIRE008" // environment event targets a process absent from the world

	RuleGlobalWriteOnly = "GVAR001" // global set but never read by any machine
	RuleGlobalReadOnly  = "GVAR002" // global read but never set or initialized

	RuleOutputPartial        = "EFF001" // cross-layer Output heard by some targets, deaf at others
	RuleChannelProtoMismatch = "EFF002" // Send on a protocol channel the receiver does not speak
	RuleUnorderedWrites      = "EFF003" // write-write global conflict never ordered by a message path
)

// Rule describes one lint pass for the catalog (cnetlint -rules and
// DESIGN.md).
type Rule struct {
	// ID is the stable identifier findings carry.
	ID string `json:"id"`
	// Severity is the rule's default/maximum severity; individual
	// findings may be reported one grade lower (e.g. a partial shadow).
	Severity Severity `json:"severity"`
	// Scope is "spec" for single-machine passes, "world" for passes
	// needing the composed system.
	Scope string `json:"scope"`
	// Summary is a one-line description.
	Summary string `json:"summary"`
}

// Rules returns the full rule catalog, sorted by ID.
func Rules() []Rule {
	rules := []Rule{
		{RuleSpecInvalid, Error, "spec", "spec fails structural validation (fsm.Spec.Validate)"},
		{RuleShadowed, Error, "spec", "transition is dead under first-match priority: an earlier unguarded rule on the same (state, kind) always wins"},
		{RuleOverlap, Warn, "spec", "two guarded transitions on the same (state, kind) are enabled together on a probe context: nondeterministic under the checker, priority-resolved at runtime"},
		{RuleUnreachableState, Error, "spec", "declared state unreachable from the initial state through the transition structure"},
		{RuleDeadEndState, Warn, "spec", "reachable state with no outgoing transitions: the machine is stuck forever once there"},
		{RuleGuardedReach, Info, "spec", "state reachable only through guarded transitions; if no guard is satisfiable the state is dead"},
		{RuleDupTransition, Warn, "spec", "duplicate transition name: coverage accounting merges the homonyms"},
		{RuleVarWriteOnly, Warn, "spec", "local variable written but never read on any probed path"},
		{RuleVarReadOnly, Info, "spec", "local variable read but never written or declared: reads always yield zero"},
		{RuleVarUnused, Warn, "spec", "variable declared in Vars but never referenced by any guard or action"},
		{RuleDeadLetterSend, Error, "world", "a process sends a message kind the addressed process handles in no state (dead letter)"},
		{RuleHandlerNoSender, Warn, "world", "handler for a kind no process sends/outputs and no environment event injects (dead inbox)"},
		{RuleOutputUnhandled, Error, "world", "a cross-layer Output kind is handled by none of the process's OutputTo targets"},
		{RuleOutputTargetGone, Error, "world", "OutputTo names a process that does not exist in the world"},
		{RuleOutputNoTargets, Warn, "world", "a process emits Output() but has no OutputTo targets: the output vanishes"},
		{RuleOutputNotLocal, Error, "world", "OutputTo target lives on a different element: Output models co-located cross-layer delivery only"},
		{RuleChannelMismatch, Error, "world", "inbox channel table does not match the process table one-to-one"},
		{RuleSendTargetGone, Warn, "world", "send addressed to a process absent from this world: the backend drops it"},
		{RuleNegativeCap, Error, "world", "negative inbox capacity"},
		{RuleReorderNotLossy, Warn, "world", "inbox reorders but is not lossy: the §5.2 multi-BS relay regime implies both"},
		{RuleEnvTargetGone, Warn, "world", "environment event targets a process absent from this world: the scenario silently shrinks (the static mirror of a runtime misroute)"},
		{RuleGlobalWriteOnly, Info, "world", "global written but read by no machine (may be a property observable)"},
		{RuleGlobalReadOnly, Warn, "world", "global read by a machine but never written by any machine nor initialized"},
		{RuleOutputPartial, Warn, "world", "a cross-layer Output kind is handled by some OutputTo targets but by no state of another: the signal reaches only part of the stack"},
		{RuleChannelProtoMismatch, Warn, "world", "a Send travels on a protocol channel the receiving machine does not speak: mis-stamped message or a Send where an Output belongs"},
		{RuleUnorderedWrites, Warn, "world", "a global is written by two processes with no message path between them: nothing orders the writes (the S1 shape)"},
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	return rules
}

// RuleByID returns the catalog entry for an ID.
func RuleByID(id string) (Rule, bool) {
	for _, r := range Rules() {
		if r.ID == id {
			return r, true
		}
	}
	return Rule{}, false
}

// Finding is one lint diagnostic.
type Finding struct {
	// Rule is the stable rule ID (e.g. "SPEC002").
	Rule string `json:"rule"`
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Spec names the machine definition the finding is about.
	Spec string `json:"spec,omitempty"`
	// Proc names the world process, when linting a composed world.
	Proc string `json:"proc,omitempty"`
	// State locates the finding at a control state, when applicable.
	State string `json:"state,omitempty"`
	// Transition locates the finding at a named transition.
	Transition string `json:"transition,omitempty"`
	// Detail is the human explanation.
	Detail string `json:"detail"`
}

// Location renders the spec/proc/state/transition coordinates.
func (f Finding) Location() string {
	var parts []string
	switch {
	case f.Proc != "" && f.Spec != "" && f.Proc != f.Spec:
		parts = append(parts, f.Proc+"("+f.Spec+")")
	case f.Proc != "":
		parts = append(parts, f.Proc)
	case f.Spec != "":
		parts = append(parts, f.Spec)
	}
	if f.State != "" {
		parts = append(parts, "state "+f.State)
	}
	if f.Transition != "" {
		parts = append(parts, "transition "+f.Transition)
	}
	return strings.Join(parts, " ")
}

func (f Finding) String() string {
	loc := f.Location()
	if loc != "" {
		loc += ": "
	}
	return fmt.Sprintf("%-5s %s %s%s", f.Severity, f.Rule, loc, f.Detail)
}

// Options configure a lint run.
type Options struct {
	// Suppress disables rules per spec or process name; the key "*"
	// disables a rule everywhere. Values are rule IDs.
	Suppress map[string][]string
	// Env lists the environment events the driving scenario can inject,
	// so the dead-letter pass (MSG002) treats their kinds as having a
	// sender. Kinds for which types.MsgKind reports IsUserEvent or
	// IsOperatorEvent are always treated as injectable.
	Env []EnvHint
}

// EnvHint is one environment event a scenario may inject.
type EnvHint struct {
	// Proc is the targeted process name ("" = any process).
	Proc string
	// Kind is the injected message kind (as uint16 of types.MsgKind;
	// typed loosely to keep Options construction dependency-free).
	Kind uint16
}

// suppressed reports whether the rule is disabled for the named spec or
// process.
func (o Options) suppressed(rule string, names ...string) bool {
	match := func(key string) bool {
		for _, id := range o.Suppress[key] {
			if id == rule {
				return true
			}
		}
		return false
	}
	if match("*") {
		return true
	}
	for _, n := range names {
		if n != "" && match(n) {
			return true
		}
	}
	return false
}

// Report collects findings of one lint run.
type Report struct {
	Findings []Finding `json:"findings"`
}

// add appends a finding unless its rule is suppressed for its location.
func (r *Report) add(o Options, f Finding) {
	if o.suppressed(f.Rule, f.Spec, f.Proc) {
		return
	}
	r.Findings = append(r.Findings, f)
}

// Merge appends the other report's findings.
func (r *Report) Merge(other *Report) {
	if other != nil {
		r.Findings = append(r.Findings, other.Findings...)
	}
}

// Sort orders findings by severity (most severe first), then rule ID,
// then location — a stable presentation order.
func (r *Report) Sort() {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Location() < b.Location()
	})
}

// At returns the findings at or above the severity.
func (r *Report) At(min Severity) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity >= min {
			out = append(out, f)
		}
	}
	return out
}

// Count returns how many findings sit at or above the severity.
func (r *Report) Count(min Severity) int { return len(r.At(min)) }

// Clean reports whether no finding reaches the severity.
func (r *Report) Clean(min Severity) bool { return r.Count(min) == 0 }

// ByRule returns the findings carrying the rule ID.
func (r *Report) ByRule(id string) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Rule == id {
			out = append(out, f)
		}
	}
	return out
}

// Text renders the report as one line per finding plus a summary.
func (r *Report) Text() string {
	var b strings.Builder
	for _, f := range r.Findings {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d findings (%d errors, %d warnings, %d info)\n",
		len(r.Findings),
		len(r.ByRuleSeverity(Error)), len(r.ByRuleSeverity(Warn)), len(r.ByRuleSeverity(Info)))
	return b.String()
}

// ByRuleSeverity returns the findings at exactly the severity.
func (r *Report) ByRuleSeverity(s Severity) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity == s {
			out = append(out, f)
		}
	}
	return out
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	if r.Findings == nil {
		r.Findings = []Finding{}
	}
	return json.MarshalIndent(r, "", "  ")
}
