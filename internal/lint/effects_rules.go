package lint

import (
	"fmt"
	"sort"
	"strings"

	"cnetverifier/internal/lint/effects"
	"cnetverifier/internal/model"
	"cnetverifier/internal/types"
)

// lintEffects reports the EFF* rules derived from the static effect
// analysis (internal/lint/effects): per-target cross-layer delivery
// gaps, send/receive protocol-channel mismatches, and write-write
// global conflicts no message chain ever orders. They are the lint
// face of the same analysis that powers check.Options.POR.
func lintEffects(r *Report, o Options, w *model.World) {
	we := effects.Analyze(w)
	lintOutputGaps(r, o, we)
	lintChannelProto(r, o, we)
	lintUnorderedWrites(r, o, we)
}

// lintOutputGaps reports EFF001: a cross-layer Output kind that one
// OutputTo target handles while another handles in no state. MSG003
// already covers the total failure (no target handles); the per-target
// gap is invisible to it, yet it is exactly the paper's "necessary
// problem" shape — the layer that should have seen the signal is wired
// in but deaf to it.
func lintOutputGaps(r *Report, o Options, we *effects.WorldEffects) {
	for i, pe := range we.Procs {
		targets := we.OutputTargets(i)
		if len(targets) < 2 {
			continue
		}
		for _, e := range pe.Spec.Edges {
			for _, out := range e.Outputs {
				var deaf, hears []string
				for _, t := range targets {
					ti, ok := we.ProcIndex(t)
					if !ok {
						continue // absent target is WIRE001's finding
					}
					if specHandles(we.Procs[ti].Spec, out.Kind) {
						hears = append(hears, t)
					} else {
						deaf = append(deaf, t)
					}
				}
				if len(hears) == 0 || len(deaf) == 0 {
					continue // total failure is MSG003; full coverage is healthy
				}
				sort.Strings(deaf)
				sort.Strings(hears)
				r.add(o, Finding{Rule: RuleOutputPartial, Severity: Warn,
					Proc: pe.Proc, Spec: pe.Spec.Spec.Name, Transition: e.Transition,
					Detail: fmt.Sprintf("outputs %s across layers; %s handles it but %s handles it in no state — the cross-layer signal reaches only part of the stack",
						out.Kind, strings.Join(hears, ", "), strings.Join(deaf, ", "))})
			}
		}
	}
}

// lintChannelProto reports EFF002: a Send whose message travels on a
// protocol channel different from the receiving process's protocol
// (both declared). Peer signaling is intra-protocol by construction in
// the 3GPP models; a mismatched channel means the spec stamps messages
// with the wrong types.NewMessage protocol or addresses the wrong
// layer with a Send where an Output belongs. Outputs are exempt: the
// co-located cross-layer interface legitimately crosses protocols.
func lintChannelProto(r *Report, o Options, we *effects.WorldEffects) {
	for _, pe := range we.Procs {
		for _, e := range pe.Spec.Edges {
			for _, s := range e.Sends {
				ti, ok := we.ProcIndex(s.To)
				if !ok {
					continue // absent target is WIRE005's finding
				}
				dst := we.Procs[ti]
				if s.Proto == types.ProtoNone || dst.Spec.Spec.Proto == types.ProtoNone {
					continue
				}
				if s.Proto != dst.Spec.Spec.Proto {
					r.add(o, Finding{Rule: RuleChannelProtoMismatch, Severity: Warn,
						Proc: pe.Proc, Spec: pe.Spec.Spec.Name, Transition: e.Transition,
						Detail: fmt.Sprintf("sends %s on the %s channel to %q, whose machine speaks %s: mis-stamped message or a Send where a cross-layer Output belongs",
							s.Kind, s.Proto, s.To, dst.Spec.Spec.Proto)})
				}
			}
		}
	}
}

// lintUnorderedWrites reports EFF003: a global written by two processes
// between which the interaction graph has no directed message path in
// either direction. Nothing in the composed system ever orders the two
// writes, so the global's value depends purely on the interleaving the
// checker happens to pick — either the global encodes a genuine
// cross-stack race (the paper's S1 shape: 4G and 3G MM both own the
// serving-system variable with no coordination channel) or the sharing
// is accidental. Warn: the checker explores both orders, so screening
// results stay trustworthy; the flag marks where they will diverge.
func lintUnorderedWrites(r *Report, o Options, we *effects.WorldEffects) {
	writers := make(map[string][]int)
	for i, pe := range we.Procs {
		for _, g := range pe.Spec.Writes {
			writers[g] = append(writers[g], i)
		}
	}
	var globals []string
	for g, ws := range writers {
		if len(ws) > 1 {
			globals = append(globals, g)
		}
	}
	sort.Strings(globals)
	for _, g := range globals {
		ws := writers[g]
		for i := 0; i < len(ws); i++ {
			for j := i + 1; j < len(ws); j++ {
				if we.Reachable(ws[i], ws[j]) || we.Reachable(ws[j], ws[i]) {
					continue
				}
				a, b := we.Procs[ws[i]].Proc, we.Procs[ws[j]].Proc
				r.add(o, Finding{Rule: RuleUnorderedWrites, Severity: Warn, Proc: a,
					Detail: fmt.Sprintf("global %q is written by both %q and %q with no message path between them in either direction: nothing orders the writes, the final value is pure interleaving choice",
						g, a, b)})
			}
		}
	}
}

func specHandles(se *effects.SpecEffects, k types.MsgKind) bool {
	for _, h := range se.Handles {
		if h == k {
			return true
		}
	}
	return false
}
