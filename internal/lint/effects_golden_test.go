package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cnetverifier/internal/core"
	"cnetverifier/internal/lint/effects"
)

var updateEffects = flag.Bool("update", false, "rewrite the effect-summary goldens under testdata/effects")

// TestEffectGoldens pins the static effect extraction for every
// registered seed spec: the per-edge summaries (globals read/written,
// sends and outputs with their channel coordinates, guard
// satisfiability under the probe defaults) rendered by
// effects.SpecText must match the checked-in goldens. A diff here
// means the probing semantics or a protocol model changed — regenerate
// with `go test ./internal/lint -run TestEffectGoldens -update` and
// review the diff like any other behavioral change: the independence
// relation POR trusts is built from exactly these facts.
func TestEffectGoldens(t *testing.T) {
	specs := core.AllSpecs()
	for _, name := range core.SpecNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			got := effects.SpecText(effects.ForSpec(specs[name]))
			path := filepath.Join("testdata", "effects", name+".txt")
			if *updateEffects {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("effect summary for %s drifted from golden %s\n--- got ---\n%s\n--- want ---\n%s",
					name, path, got, want)
			}
		})
	}
}
