package lint

import (
	"fmt"
	"strings"

	"cnetverifier/internal/fsm"
)

// Spec runs the single-machine passes (SPEC*, VAR*) over one spec and
// returns the report.
func Spec(s *fsm.Spec, o Options) *Report {
	r := &Report{}
	if err := s.Validate(); err != nil {
		r.add(o, Finding{Rule: RuleSpecInvalid, Severity: Error, Spec: s.Name,
			Detail: err.Error()})
		// A spec that fails Validate may violate invariants the other
		// passes assume (empty states, missing triggers); stop here.
		r.Sort()
		return r
	}
	facts := probeSpec(s)
	lintShadowed(r, o, s)
	lintOverlap(r, o, s, facts)
	lintReachability(r, o, s)
	lintDupNames(r, o, s)
	lintVars(r, o, s, facts)
	r.Sort()
	return r
}

// lintShadowed reports SPEC002: under the runtime engine's first-match
// priority, a transition is dead at a state when an earlier unguarded
// transition matches the same (state, kind). Full shadowing (every
// source state covered) is an error; partial shadowing a warning.
func lintShadowed(r *Report, o Options, s *fsm.Spec) {
	states := s.States()
	sources := func(t fsm.Transition) []fsm.State {
		if t.From == fsm.Any {
			return states
		}
		return []fsm.State{t.From}
	}
	for j, tj := range s.Transitions {
		var shadowed, live []fsm.State
		var by string
		for _, st := range sources(tj) {
			dead := false
			for i := 0; i < j; i++ {
				ti := s.Transitions[i]
				if ti.On != tj.On || ti.Guard != nil {
					continue
				}
				if ti.From == fsm.Any || ti.From == st {
					dead = true
					by = ti.Name
					break
				}
			}
			if dead {
				shadowed = append(shadowed, st)
			} else {
				live = append(live, st)
			}
		}
		if len(shadowed) == 0 {
			continue
		}
		if len(live) == 0 {
			r.add(o, Finding{Rule: RuleShadowed, Severity: Error, Spec: s.Name,
				Transition: tj.Name,
				Detail: fmt.Sprintf("dead under first-match priority: unguarded %q earlier in the table handles %s in every source state",
					by, tj.On)})
		} else {
			r.add(o, Finding{Rule: RuleShadowed, Severity: Warn, Spec: s.Name,
				Transition: tj.Name,
				Detail: fmt.Sprintf("partially shadowed: unguarded %q earlier in the table handles %s in state %s",
					by, tj.On, joinStates(shadowed))})
		}
	}
}

// lintOverlap reports SPEC003: two guarded transitions on the same
// (state, kind) whose guards both held under at least one probe
// assignment. The checker explores both branches (nondeterminism by
// design), but the runtime engine silently resolves the race by table
// order — worth an explicit note.
func lintOverlap(r *Report, o Options, s *fsm.Spec, facts *specFacts) {
	states := s.States()
	applies := func(t fsm.Transition, st fsm.State) bool {
		return t.From == fsm.Any || t.From == st
	}
	type pair struct{ i, j int }
	reported := make(map[pair]bool)
	for _, st := range states {
		for j := range s.Transitions {
			tj := s.Transitions[j]
			if tj.Guard == nil || !applies(tj, st) {
				continue
			}
			for i := 0; i < j; i++ {
				ti := s.Transitions[i]
				if ti.Guard == nil || ti.On != tj.On || !applies(ti, st) || reported[pair{i, j}] {
					continue
				}
				if def, ok := commonProbe(facts.PerTransition[i].GuardTrue, facts.PerTransition[j].GuardTrue); ok {
					reported[pair{i, j}] = true
					r.add(o, Finding{Rule: RuleOverlap, Severity: Warn, Spec: s.Name,
						State: string(st), Transition: tj.Name,
						Detail: fmt.Sprintf("guard overlaps with earlier %q on %s (both enabled when variables are %d): checker branches, runtime always picks %q",
							ti.Name, tj.On, def, ti.Name)})
				}
			}
		}
	}
}

func commonProbe(a, b []int) (int, bool) {
	set := make(map[int]bool, len(a))
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		if set[v] {
			return v, true
		}
	}
	return 0, false
}

// lintReachability reports SPEC004 (unreachable states), SPEC005
// (dead-end states) and SPEC006 (states reachable only through guarded
// transitions — if no guard is ever satisfiable at runtime the state is
// dead despite being structurally reachable).
func lintReachability(r *Report, o Options, s *fsm.Spec) {
	for _, st := range s.UnreachableStates() {
		r.add(o, Finding{Rule: RuleUnreachableState, Severity: Error, Spec: s.Name,
			State:  string(st),
			Detail: "no transition path from the initial state reaches this state"})
	}
	for _, st := range s.DeadEndStates() {
		r.add(o, Finding{Rule: RuleDeadEndState, Severity: Warn, Spec: s.Name,
			State:  string(st),
			Detail: "reachable state with no outgoing transitions: the machine is stuck forever once there"})
	}
	// Guard-aware reachability: walk only unguarded edges.
	adj := make(map[fsm.State][]fsm.State)
	for _, e := range s.Edges() {
		if !e.Guarded {
			adj[e.From] = append(adj[e.From], e.To)
		}
	}
	sure := map[fsm.State]bool{s.Init: true}
	stack := []fsm.State{s.Init}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nxt := range adj[st] {
			if !sure[nxt] {
				sure[nxt] = true
				stack = append(stack, nxt)
			}
		}
	}
	reach := s.Reachable()
	for _, st := range s.States() {
		if reach[st] && !sure[st] {
			r.add(o, Finding{Rule: RuleGuardedReach, Severity: Info, Spec: s.Name,
				State:  string(st),
				Detail: "every path into this state crosses a guarded transition; if no guard is satisfiable the state is dead"})
		}
	}
}

// lintDupNames reports SPEC007: duplicate transition names, which merge
// silently in coverage accounting (SpecCoverage keys on proc/name).
func lintDupNames(r *Report, o Options, s *fsm.Spec) {
	count := make(map[string]int)
	for _, t := range s.Transitions {
		count[t.Name]++
	}
	seen := make(map[string]bool)
	for _, t := range s.Transitions {
		if count[t.Name] > 1 && !seen[t.Name] {
			seen[t.Name] = true
			r.add(o, Finding{Rule: RuleDupTransition, Severity: Warn, Spec: s.Name,
				Transition: t.Name,
				Detail:     fmt.Sprintf("%d transitions share this name: coverage accounting cannot tell them apart", count[t.Name])})
		}
	}
}

// lintVars reports VAR001/VAR002/VAR003 over machine-local variables
// (globals are a world-level concern, see lintGlobals).
func lintVars(r *Report, o Options, s *fsm.Spec, facts *specFacts) {
	for _, name := range sortedNames(facts.Writes) {
		if isGlobalName(name) || facts.Reads[name] {
			continue
		}
		r.add(o, Finding{Rule: RuleVarWriteOnly, Severity: Warn, Spec: s.Name,
			Detail: fmt.Sprintf("local variable %q is written but never read on any probed path", name)})
	}
	for _, name := range sortedNames(facts.Reads) {
		if isGlobalName(name) || facts.Writes[name] {
			continue
		}
		if _, declared := s.Vars[name]; declared {
			continue
		}
		r.add(o, Finding{Rule: RuleVarReadOnly, Severity: Info, Spec: s.Name,
			Detail: fmt.Sprintf("local variable %q is read but never written and not declared in Vars: reads always yield zero", name)})
	}
	for _, name := range sortedNames(boolSet(s.Vars)) {
		if facts.Reads[name] || facts.Writes[name] {
			continue
		}
		r.add(o, Finding{Rule: RuleVarUnused, Severity: Warn, Spec: s.Name,
			Detail: fmt.Sprintf("variable %q is declared in Vars but referenced by no guard or action", name)})
	}
}

func boolSet(vars map[string]int) map[string]bool {
	out := make(map[string]bool, len(vars))
	for k := range vars {
		out[k] = true
	}
	return out
}

func joinStates(sts []fsm.State) string {
	names := make([]string, len(sts))
	for i, st := range sts {
		names[i] = string(st)
	}
	return strings.Join(names, ", ")
}
