package lint_test

import (
	"encoding/json"
	"strings"
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/lint"
	"cnetverifier/internal/model"
	"cnetverifier/internal/types"
)

// spec builds a minimal spec rooted at state "A".
func spec(name string, ts ...fsm.Transition) *fsm.Spec {
	return &fsm.Spec{Name: name, Init: "A", Transitions: ts}
}

// world composes a lint-target world, failing the test on config errors.
func world(t *testing.T, cfg model.Config) *model.World {
	t.Helper()
	w, err := model.New(cfg)
	if err != nil {
		t.Fatalf("model.New: %v", err)
	}
	return w
}

// assertRule checks the report carries at least one finding of the rule
// at the severity, with the substring in its detail.
func assertRule(t *testing.T, r *lint.Report, rule string, sev lint.Severity, sub string) {
	t.Helper()
	for _, f := range r.ByRule(rule) {
		if f.Severity == sev && strings.Contains(f.Detail, sub) {
			return
		}
	}
	t.Errorf("no %s finding at %s containing %q; report:\n%s", rule, sev, sub, r.Text())
}

// assertNoRule checks no finding of the rule is present.
func assertNoRule(t *testing.T, r *lint.Report, rule string) {
	t.Helper()
	if got := r.ByRule(rule); len(got) > 0 {
		t.Errorf("unexpected %s findings: %v", rule, got)
	}
}

func TestSpecInvalid(t *testing.T) {
	r := lint.Spec(&fsm.Spec{Name: "broken"}, lint.Options{})
	assertRule(t, r, lint.RuleSpecInvalid, lint.Error, "initial state")
	if len(r.Findings) != 1 {
		t.Errorf("invalid spec should short-circuit the other passes, got %d findings", len(r.Findings))
	}
}

func TestShadowedFull(t *testing.T) {
	s := spec("shadow",
		fsm.Transition{Name: "catchall", From: fsm.Any, On: types.MsgPowerOff, To: "A"},
		fsm.Transition{Name: "dead", From: "A", On: types.MsgPowerOff, To: "A"},
	)
	assertRule(t, lint.Spec(s, lint.Options{}), lint.RuleShadowed, lint.Error, `"catchall"`)
}

func TestShadowedPartial(t *testing.T) {
	s := spec("partial",
		fsm.Transition{Name: "go", From: "A", On: types.MsgAttachRequest, To: "B"},
		fsm.Transition{Name: "first", From: "A", On: types.MsgPowerOff, To: "A"},
		fsm.Transition{Name: "later", From: fsm.Any, On: types.MsgPowerOff, To: "B"},
	)
	assertRule(t, lint.Spec(s, lint.Options{}), lint.RuleShadowed, lint.Warn, "state A")
}

func TestOverlap(t *testing.T) {
	s := &fsm.Spec{Name: "overlap", Init: "A", Vars: map[string]int{"v": 0},
		Transitions: []fsm.Transition{
			{Name: "low", From: "A", On: types.MsgAttachRequest, To: "A",
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return c.Get("v") >= 1 }},
			{Name: "high", From: "A", On: types.MsgAttachRequest, To: "A",
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return c.Get("v") <= 2 }},
		}}
	assertRule(t, lint.Spec(s, lint.Options{}), lint.RuleOverlap, lint.Warn, `"low"`)
}

func TestUnreachableState(t *testing.T) {
	s := spec("unreach",
		fsm.Transition{Name: "go", From: "A", On: types.MsgAttachRequest, To: "B"},
		fsm.Transition{Name: "back", From: "B", On: types.MsgAttachAccept, To: "A"},
		fsm.Transition{Name: "orphan", From: "Z", On: types.MsgAttachRequest, To: "B"},
	)
	r := lint.Spec(s, lint.Options{})
	assertRule(t, r, lint.RuleUnreachableState, lint.Error, "no transition path")
}

func TestDeadEndState(t *testing.T) {
	s := spec("deadend",
		fsm.Transition{Name: "go", From: "A", On: types.MsgAttachRequest, To: "B"},
	)
	assertRule(t, lint.Spec(s, lint.Options{}), lint.RuleDeadEndState, lint.Warn, "stuck")
}

func TestGuardedReach(t *testing.T) {
	s := &fsm.Spec{Name: "guarded", Init: "A", Vars: map[string]int{"v": 0},
		Transitions: []fsm.Transition{
			{Name: "maybe", From: "A", On: types.MsgAttachRequest, To: "B",
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return c.Get("v") > 0 }},
			{Name: "back", From: "B", On: types.MsgAttachAccept, To: "A"},
		}}
	assertRule(t, lint.Spec(s, lint.Options{}), lint.RuleGuardedReach, lint.Info, "guarded transition")
}

func TestDupTransitionName(t *testing.T) {
	s := spec("dup",
		fsm.Transition{Name: "same", From: "A", On: types.MsgAttachRequest, To: "A"},
		fsm.Transition{Name: "same", From: "A", On: types.MsgAttachAccept, To: "A"},
	)
	assertRule(t, lint.Spec(s, lint.Options{}), lint.RuleDupTransition, lint.Warn, "2 transitions")
}

func TestVarWriteOnly(t *testing.T) {
	s := spec("writeonly",
		fsm.Transition{Name: "w", From: "A", On: types.MsgAttachRequest, To: "A",
			Action: func(c fsm.Ctx, e fsm.Event) { c.Set("x", 1) }},
	)
	assertRule(t, lint.Spec(s, lint.Options{}), lint.RuleVarWriteOnly, lint.Warn, `"x"`)
}

func TestVarReadOnly(t *testing.T) {
	s := spec("readonly",
		fsm.Transition{Name: "r", From: "A", On: types.MsgAttachRequest, To: "A",
			Action: func(c fsm.Ctx, e fsm.Event) { _ = c.Get("y") }},
	)
	assertRule(t, lint.Spec(s, lint.Options{}), lint.RuleVarReadOnly, lint.Info, `"y"`)
}

func TestVarUnused(t *testing.T) {
	s := &fsm.Spec{Name: "unused", Init: "A", Vars: map[string]int{"z": 7},
		Transitions: []fsm.Transition{
			{Name: "loop", From: "A", On: types.MsgAttachRequest, To: fsm.Same},
		}}
	assertRule(t, lint.Spec(s, lint.Options{}), lint.RuleVarUnused, lint.Warn, `"z"`)
}

func TestDeadLetterSend(t *testing.T) {
	sender := spec("sender",
		fsm.Transition{Name: "send", From: "A", On: types.MsgPowerOff, To: "A",
			Action: func(c fsm.Ctx, e fsm.Event) {
				c.Send("ue.b", types.Message{Kind: types.MsgAttachRequest})
			}},
	)
	recv := spec("recv",
		fsm.Transition{Name: "h", From: "A", On: types.MsgAttachAccept, To: "A"},
	)
	w := world(t, model.Config{Procs: []model.ProcConfig{
		{Name: "ue.a", Spec: sender},
		{Name: "ue.b", Spec: recv},
	}})
	r := lint.World(w, lint.Options{})
	assertRule(t, r, lint.RuleDeadLetterSend, lint.Error, "AttachRequest")
	// The same world exhibits a dead inbox: ue.b's AttachAccept handler
	// has no sender and no environment hint.
	assertRule(t, r, lint.RuleHandlerNoSender, lint.Warn, "AttachAccept")
}

func TestHandlerNoSenderEnvHint(t *testing.T) {
	recv := spec("recv",
		fsm.Transition{Name: "h", From: "A", On: types.MsgAttachAccept, To: "A"},
	)
	w := world(t, model.Config{Procs: []model.ProcConfig{{Name: "ue.b", Spec: recv}}})
	r := lint.World(w, lint.Options{})
	assertRule(t, r, lint.RuleHandlerNoSender, lint.Warn, "AttachAccept")
	hinted := lint.World(w, lint.Options{Env: []lint.EnvHint{
		{Proc: "ue.b", Kind: uint16(types.MsgAttachAccept)},
	}})
	assertNoRule(t, hinted, lint.RuleHandlerNoSender)
}

func TestOutputUnhandled(t *testing.T) {
	upper := spec("upper",
		fsm.Transition{Name: "out", From: "A", On: types.MsgPowerOff, To: "A",
			Action: func(c fsm.Ctx, e fsm.Event) {
				c.Output(types.Message{Kind: types.MsgAttachRequest})
			}},
	)
	lower := spec("lower",
		fsm.Transition{Name: "h", From: "A", On: types.MsgAttachAccept, To: "A"},
	)
	w := world(t, model.Config{Procs: []model.ProcConfig{
		{Name: "ue.a", Spec: upper, OutputTo: []string{"ue.b"}},
		{Name: "ue.b", Spec: lower},
	}})
	assertRule(t, lint.World(w, lint.Options{}), lint.RuleOutputUnhandled, lint.Error, "AttachRequest")
}

func TestOutputNoTargets(t *testing.T) {
	upper := spec("upper",
		fsm.Transition{Name: "out", From: "A", On: types.MsgPowerOff, To: "A",
			Action: func(c fsm.Ctx, e fsm.Event) {
				c.Output(types.Message{Kind: types.MsgAttachRequest})
			}},
	)
	w := world(t, model.Config{Procs: []model.ProcConfig{{Name: "ue.a", Spec: upper}}})
	assertRule(t, lint.World(w, lint.Options{}), lint.RuleOutputNoTargets, lint.Warn, "vanishes")
}

func TestOutputTargetGone(t *testing.T) {
	// model.New rejects unknown OutputTo targets, so hand-build the
	// broken world (lint must catch it anyway: worlds can be assembled
	// without the constructor).
	s := spec("solo",
		fsm.Transition{Name: "h", From: "A", On: types.MsgPowerOff, To: "A"},
	)
	w := &model.World{
		Procs: []*model.Proc{{Name: "ue.a", M: fsm.New(s), OutputTo: []string{"ue.ghost"}}},
		Chans: []*model.Channel{{Name: "ue.a"}},
	}
	assertRule(t, lint.World(w, lint.Options{}), lint.RuleOutputTargetGone, lint.Error, `"ue.ghost"`)
}

func TestOutputNotLocal(t *testing.T) {
	upper := spec("upper",
		fsm.Transition{Name: "out", From: "A", On: types.MsgPowerOff, To: "A",
			Action: func(c fsm.Ctx, e fsm.Event) {
				c.Output(types.Message{Kind: types.MsgAttachRequest})
			}},
	)
	lower := spec("lower",
		fsm.Transition{Name: "h", From: "A", On: types.MsgAttachRequest, To: "A"},
	)
	w := world(t, model.Config{Procs: []model.ProcConfig{
		{Name: "ue.a", Spec: upper, OutputTo: []string{"mme.b"}},
		{Name: "mme.b", Spec: lower},
	}})
	assertRule(t, lint.World(w, lint.Options{}), lint.RuleOutputNotLocal, lint.Error, "co-located")
}

func TestChannelMismatch(t *testing.T) {
	s := spec("solo",
		fsm.Transition{Name: "h", From: "A", On: types.MsgPowerOff, To: "A"},
	)
	w := &model.World{
		Procs: []*model.Proc{{Name: "ue.a", M: fsm.New(s)}},
		Chans: []*model.Channel{{Name: "ue.x"}},
	}
	r := lint.World(w, lint.Options{})
	assertRule(t, r, lint.RuleChannelMismatch, lint.Error, "no inbox channel")
	assertRule(t, r, lint.RuleChannelMismatch, lint.Error, "no matching process")
}

func TestSendTargetGone(t *testing.T) {
	sender := spec("sender",
		fsm.Transition{Name: "send", From: "A", On: types.MsgPowerOff, To: "A",
			Action: func(c fsm.Ctx, e fsm.Event) {
				c.Send("ue.ghost", types.Message{Kind: types.MsgAttachRequest})
			}},
	)
	w := world(t, model.Config{Procs: []model.ProcConfig{{Name: "ue.a", Spec: sender}}})
	assertRule(t, lint.World(w, lint.Options{}), lint.RuleSendTargetGone, lint.Warn, "drops")
}

func TestEnvTargetGone(t *testing.T) {
	s := spec("solo",
		fsm.Transition{Name: "h", From: "A", On: types.MsgPowerOn, To: "A"},
	)
	w := world(t, model.Config{Procs: []model.ProcConfig{{Name: "ue.a", Spec: s}}})
	opts := lint.Options{Env: []lint.EnvHint{
		{Proc: "ue.a", Kind: uint16(types.MsgPowerOn)},
		{Proc: "ue.ghost", Kind: uint16(types.MsgPowerOn)},
	}}
	assertRule(t, lint.World(w, opts), lint.RuleEnvTargetGone, lint.Warn, "never fire")
}

func TestNegativeCap(t *testing.T) {
	s := spec("solo",
		fsm.Transition{Name: "h", From: "A", On: types.MsgPowerOff, To: "A"},
	)
	w := world(t, model.Config{Procs: []model.ProcConfig{{Name: "ue.a", Spec: s, Cap: -1}}})
	assertRule(t, lint.World(w, lint.Options{}), lint.RuleNegativeCap, lint.Error, "-1")
}

func TestReorderNotLossy(t *testing.T) {
	s := spec("solo",
		fsm.Transition{Name: "h", From: "A", On: types.MsgPowerOff, To: "A"},
	)
	w := world(t, model.Config{Procs: []model.ProcConfig{{Name: "ue.a", Spec: s, Reorder: true}}})
	assertRule(t, lint.World(w, lint.Options{}), lint.RuleReorderNotLossy, lint.Warn, "lossy")
}

func TestGlobalWriteOnly(t *testing.T) {
	s := spec("gwriter",
		fsm.Transition{Name: "w", From: "A", On: types.MsgPowerOff, To: "A",
			Action: func(c fsm.Ctx, e fsm.Event) { c.Set("g.x", 1) }},
	)
	w := world(t, model.Config{Procs: []model.ProcConfig{{Name: "ue.a", Spec: s}}})
	assertRule(t, lint.World(w, lint.Options{}), lint.RuleGlobalWriteOnly, lint.Info, `"g.x"`)
}

func TestGlobalReadOnly(t *testing.T) {
	s := spec("greader",
		fsm.Transition{Name: "r", From: "A", On: types.MsgPowerOff, To: "A",
			Action: func(c fsm.Ctx, e fsm.Event) { _ = c.Get("g.y") }},
	)
	w := world(t, model.Config{Procs: []model.ProcConfig{{Name: "ue.a", Spec: s}}})
	assertRule(t, lint.World(w, lint.Options{}), lint.RuleGlobalReadOnly, lint.Warn, `"g.y"`)

	// An initialized global is configuration, not a defect.
	init := world(t, model.Config{
		Procs:   []model.ProcConfig{{Name: "ue.a", Spec: s}},
		Globals: map[string]int{"g.y": 1},
	})
	assertNoRule(t, lint.World(init, lint.Options{}), lint.RuleGlobalReadOnly)
}

func TestCleanSpec(t *testing.T) {
	s := &fsm.Spec{Name: "clean", Init: "A", Vars: map[string]int{"v": 0},
		Transitions: []fsm.Transition{
			{Name: "go", From: "A", On: types.MsgAttachRequest, To: "B",
				Action: func(c fsm.Ctx, e fsm.Event) { c.Set("v", 1) }},
			{Name: "back", From: "B", On: types.MsgAttachAccept, To: "A",
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return c.Get("v") == 1 }},
		}}
	if r := lint.Spec(s, lint.Options{}); len(r.Findings) != 0 {
		t.Errorf("clean spec has findings:\n%s", r.Text())
	}
}

func TestSuppress(t *testing.T) {
	s := spec("shadow",
		fsm.Transition{Name: "catchall", From: fsm.Any, On: types.MsgPowerOff, To: "A"},
		fsm.Transition{Name: "dead", From: "A", On: types.MsgPowerOff, To: "A"},
	)
	perSpec := lint.Spec(s, lint.Options{Suppress: map[string][]string{"shadow": {lint.RuleShadowed}}})
	assertNoRule(t, perSpec, lint.RuleShadowed)
	everywhere := lint.Spec(s, lint.Options{Suppress: map[string][]string{"*": {lint.RuleShadowed}}})
	assertNoRule(t, everywhere, lint.RuleShadowed)
	other := lint.Spec(s, lint.Options{Suppress: map[string][]string{"unrelated": {lint.RuleShadowed}}})
	assertRule(t, other, lint.RuleShadowed, lint.Error, `"catchall"`)
}

func TestReportRenders(t *testing.T) {
	s := spec("shadow",
		fsm.Transition{Name: "catchall", From: fsm.Any, On: types.MsgPowerOff, To: "A"},
		fsm.Transition{Name: "dead", From: "A", On: types.MsgPowerOff, To: "A"},
	)
	r := lint.Spec(s, lint.Options{})
	if txt := r.Text(); !strings.Contains(txt, "SPEC002") || !strings.Contains(txt, "findings") {
		t.Errorf("bad text rendering:\n%s", txt)
	}
	raw, err := r.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var decoded struct {
		Findings []struct {
			Rule     string `json:"rule"`
			Severity string `json:"severity"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(decoded.Findings) == 0 || decoded.Findings[0].Rule != lint.RuleShadowed || decoded.Findings[0].Severity != "error" {
		t.Errorf("bad JSON rendering: %s", raw)
	}
}

func TestAnnotatedDOT(t *testing.T) {
	s := spec("annot",
		fsm.Transition{Name: "catchall", From: fsm.Any, On: types.MsgPowerOff, To: "A"},
		fsm.Transition{Name: "dead", From: "A", On: types.MsgPowerOff, To: "A"},
		fsm.Transition{Name: "go", From: "A", On: types.MsgAttachRequest, To: "B"},
		fsm.Transition{Name: "orphan", From: "Z", On: types.MsgAttachRequest, To: "B"},
	)
	r := lint.Spec(s, lint.Options{})
	dot := lint.DOT(s, r)
	for _, want := range []string{"digraph", "color=red", "fillcolor=gray80"} {
		if !strings.Contains(dot, want) {
			t.Errorf("annotated DOT misses %q:\n%s", want, dot)
		}
	}
}

func TestRuleCatalog(t *testing.T) {
	ids := []string{
		lint.RuleSpecInvalid, lint.RuleShadowed, lint.RuleOverlap,
		lint.RuleUnreachableState, lint.RuleDeadEndState, lint.RuleGuardedReach,
		lint.RuleDupTransition,
		lint.RuleVarWriteOnly, lint.RuleVarReadOnly, lint.RuleVarUnused,
		lint.RuleDeadLetterSend, lint.RuleHandlerNoSender, lint.RuleOutputUnhandled,
		lint.RuleOutputTargetGone, lint.RuleOutputNoTargets, lint.RuleOutputNotLocal,
		lint.RuleChannelMismatch, lint.RuleSendTargetGone, lint.RuleNegativeCap,
		lint.RuleReorderNotLossy, lint.RuleEnvTargetGone,
		lint.RuleGlobalWriteOnly, lint.RuleGlobalReadOnly,
		lint.RuleOutputPartial, lint.RuleChannelProtoMismatch, lint.RuleUnorderedWrites,
	}
	rules := lint.Rules()
	if len(rules) != len(ids) {
		t.Fatalf("catalog has %d rules, want %d", len(rules), len(ids))
	}
	for _, id := range ids {
		r, ok := lint.RuleByID(id)
		if !ok {
			t.Errorf("rule %s missing from catalog", id)
			continue
		}
		if r.Summary == "" || (r.Scope != "spec" && r.Scope != "world") {
			t.Errorf("rule %s has bad catalog entry: %+v", id, r)
		}
	}
	for i := 1; i < len(rules); i++ {
		if rules[i-1].ID >= rules[i].ID {
			t.Errorf("catalog not sorted/unique at %s vs %s", rules[i-1].ID, rules[i].ID)
		}
	}
}

func TestParseSeverity(t *testing.T) {
	for _, sev := range []lint.Severity{lint.Info, lint.Warn, lint.Error} {
		got, err := lint.ParseSeverity(sev.String())
		if err != nil || got != sev {
			t.Errorf("ParseSeverity(%q) = %v, %v", sev.String(), got, err)
		}
	}
	if _, err := lint.ParseSeverity("bogus"); err == nil {
		t.Errorf("ParseSeverity accepted bogus severity")
	}
}
