package netemu

// This file gives the shared core-network elements of §2 a load
// identity: which element each control-plane procedure exercises, and
// how many signaling messages it costs there. The per-world emulator
// models one UE against the core in full protocol detail; the campaign
// engine (internal/campaign) multiplexes 10^5–10^6 lightweight UE
// sessions over these shared element models and needs only the message
// counts — the procedure flows below are the standard 3GPP ladders
// collapsed to per-element message tallies.

// Element identifies a shared core-network element.
type Element int

const (
	// ElemMME is the 4G mobility-management entity (EMM/ESM peer).
	ElemMME Element = iota
	// ElemSGSN is the 3G packet/circuit core node (GMM/MM/SM peer; the
	// MSC's CS signaling is folded in, as in the paper's §2 model).
	ElemSGSN
	// ElemHSS is the subscriber database (HSS/HLR: authentication and
	// location registers).
	ElemHSS
	// NumElements sizes per-element arrays.
	NumElements
)

// String names the element.
func (e Element) String() string {
	switch e {
	case ElemMME:
		return "MME"
	case ElemSGSN:
		return "SGSN"
	case ElemHSS:
		return "HSS"
	}
	return "?"
}

// Elements returns all shared elements in index order.
func Elements() []Element {
	return []Element{ElemMME, ElemSGSN, ElemHSS}
}

// ProcedureCost is the per-element control-plane message count of one
// procedure occurrence, indexed by Element.
type ProcedureCost [NumElements]int

// Total sums the messages across elements.
func (c ProcedureCost) Total() int {
	n := 0
	for _, v := range c {
		n += v
	}
	return n
}

// SignalingCosts maps each campaign-driven procedure to its element
// message costs.
type SignalingCosts struct {
	// Attach is the 4G attach ladder at the MME (request, authentication
	// exchange, security mode, accept/complete) plus the HSS
	// authentication-info and update-location legs.
	Attach ProcedureCost
	// Detach is the UE-initiated detach (request/accept) plus the HSS
	// purge.
	Detach ProcedureCost
	// ServiceRequest is the idle-to-connected transition (service
	// request, initial-context setup, release) — MME-only.
	ServiceRequest ProcedureCost
	// TAU is an intra-4G tracking-area update without SGW relocation.
	TAU ProcedureCost
	// RAU is the 3G routing-area update at the SGSN.
	RAU ProcedureCost
	// InterSystemSwitch is a 4G↔3G reselection: RAU at the SGSN, a
	// context transfer with the MME, and an HSS location update — the
	// paper's §5.1 switch signaling.
	InterSystemSwitch ProcedureCost
	// CSFBCall is one CSFB call: extended service request and context
	// release at the MME, LAU plus CS call control at the SGSN/MSC, and
	// an HSS location update (§6.3).
	CSFBCall ProcedureCost
	// CSCall is a plain 3G CS call at the SGSN/MSC.
	CSCall ProcedureCost
}

// DefaultSignalingCosts returns message counts read off the standard
// procedure ladders (3GPP TS 23.401/23.060 flows collapsed per
// element).
func DefaultSignalingCosts() SignalingCosts {
	return SignalingCosts{
		Attach:            ProcedureCost{ElemMME: 6, ElemSGSN: 0, ElemHSS: 2},
		Detach:            ProcedureCost{ElemMME: 2, ElemSGSN: 0, ElemHSS: 1},
		ServiceRequest:    ProcedureCost{ElemMME: 3, ElemSGSN: 0, ElemHSS: 0},
		TAU:               ProcedureCost{ElemMME: 4, ElemSGSN: 0, ElemHSS: 0},
		RAU:               ProcedureCost{ElemMME: 0, ElemSGSN: 3, ElemHSS: 0},
		InterSystemSwitch: ProcedureCost{ElemMME: 2, ElemSGSN: 3, ElemHSS: 1},
		CSFBCall:          ProcedureCost{ElemMME: 3, ElemSGSN: 4, ElemHSS: 1},
		CSCall:            ProcedureCost{ElemMME: 0, ElemSGSN: 3, ElemHSS: 0},
	}
}

// ElementCapacity is the per-element service rate in messages per
// second — the denominator of the campaign's utilization and queue
// model.
type ElementCapacity [NumElements]float64

// DefaultElementCapacity returns service rates sized so a 10^6-UE
// campaign at the default procedure rates lands in the
// interesting regime (high utilization at the MME, moderate
// elsewhere): queue occupancy becomes visible without the model
// diverging.
func DefaultElementCapacity() ElementCapacity {
	return ElementCapacity{ElemMME: 8000, ElemSGSN: 4000, ElemHSS: 2000}
}
