package netemu

import (
	"strings"
	"testing"
	"time"

	"cnetverifier/internal/names"
	"cnetverifier/internal/protocols/emm"
	"cnetverifier/internal/radio"
	"cnetverifier/internal/trace"
	"cnetverifier/internal/types"
)

// attachWorld builds the minimal two-proc world (device EMM against the
// MME's) with the retransmission layer configured.
func attachWorld(seed int64, cfg ReliabilityConfig) *World {
	w := NewWorld(seed)
	w.MustAddProc(names.UEEMM, NodeDevice, emm.DeviceSpec(emm.DeviceOptions{}))
	w.MustAddProc(names.MMEEMM, NodeNetwork, emm.MMESpec(emm.MMEOptions{}))
	w.SetReliability(cfg)
	return w
}

// With retransmission, a heavily lossy uplink no longer stalls the
// attach: the NAS timers push the dialogue through.
func TestReliabilityRecoversLossyAttach(t *testing.T) {
	w := attachWorld(1, ReliabilityConfig{})
	w.Uplink.Dropper = radio.NewDropper(0.5, 11)
	w.Inject(names.UEEMM, types.Message{Kind: types.MsgPowerOn})
	w.Run()

	if got := w.Machine(names.UEEMM).State(); got != emm.UERegistered {
		t.Fatalf("UE state = %s, want registered despite 50%% loss", got)
	}
	if w.Stats.Retransmits == 0 {
		t.Fatal("no retransmissions under 50% loss")
	}
	if w.InFlight() != 0 {
		t.Fatalf("in-flight = %d after settling", w.InFlight())
	}
}

// The timer discipline, table-driven: a frame into a fully lossy link
// expires MaxRetries+1 times with the configured backoff sequence,
// then aborts with a synthesized failure indication to the sender.
func TestReliabilityTimerSchedule(t *testing.T) {
	cases := []struct {
		name string
		cfg  ReliabilityConfig
		// wantRTOs is the expected timeout of each expiry in order
		// (attempt 1 uses the initial RTO; later attempts back off).
		wantRTOs []time.Duration
	}{
		{
			name:     "defaults: 200ms doubling, 4 retries",
			cfg:      ReliabilityConfig{},
			wantRTOs: []time.Duration{200 * time.Millisecond, 400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond, 3200 * time.Millisecond},
		},
		{
			name:     "capped backoff",
			cfg:      ReliabilityConfig{RTO: 100 * time.Millisecond, Backoff: 2, MaxRTO: 250 * time.Millisecond, MaxRetries: 3},
			wantRTOs: []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 250 * time.Millisecond, 250 * time.Millisecond},
		},
		{
			name:     "flat timer (backoff 1)",
			cfg:      ReliabilityConfig{RTO: 300 * time.Millisecond, Backoff: 1, MaxRetries: 2},
			wantRTOs: []time.Duration{300 * time.Millisecond, 300 * time.Millisecond, 300 * time.Millisecond},
		},
		{
			name:     "OP-I NAS profile",
			cfg:      OPI().NASRetrans,
			wantRTOs: []time.Duration{400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond, 3200 * time.Millisecond, 6400 * time.Millisecond},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := attachWorld(1, tc.cfg)
			w.Uplink.Dropper = radio.NewDropper(1.0, 1) // nothing gets through
			w.Inject(names.UEEMM, types.Message{Kind: types.MsgPowerOn})
			w.Run()

			recs := w.Collector.Records()
			expiries := (trace.Filter{Type: trace.TypeExpiry}).Apply(recs)
			if len(expiries) != len(tc.wantRTOs) {
				t.Fatalf("expiries = %d, want %d", len(expiries), len(tc.wantRTOs))
			}
			var prev time.Duration
			for i, rec := range expiries {
				if !strings.Contains(rec.Desc, "RTO "+tc.wantRTOs[i].String()) {
					t.Fatalf("expiry %d = %q, want RTO %v", i, rec.Desc, tc.wantRTOs[i])
				}
				// The expiry fires exactly one RTO after the previous one.
				if got := rec.At - prev; got != tc.wantRTOs[i] {
					t.Fatalf("expiry %d at +%v, want +%v", i, got, tc.wantRTOs[i])
				}
				prev = rec.At
			}
			if w.Stats.Expiries != len(tc.wantRTOs) || w.Stats.Retransmits != len(tc.wantRTOs)-1 {
				t.Fatalf("stats = %+v", w.Stats)
			}

			// Exhaustion: exactly one traced abort, the transfer is
			// cleaned up, and the sender's machine was handed a
			// synthesized link-failure indication (the EMM spec has no
			// transition for it, so it shows up as a traced discard —
			// the point is the machine was *offered* it, not left
			// waiting forever).
			if w.Stats.Aborts != 1 {
				t.Fatalf("aborts = %d", w.Stats.Aborts)
			}
			if _, ok := (trace.Filter{Type: trace.TypeAbort, Contains: "abandoned"}).FirstMatch(recs); !ok {
				t.Fatal("abort not traced")
			}
			if w.InFlight() != 0 {
				t.Fatalf("in-flight = %d after abort", w.InFlight())
			}
			if _, ok := (trace.Filter{Contains: "LinkFailure"}).FirstMatch(recs); !ok {
				t.Fatal("no failure indication delivered to the sender")
			}
		})
	}
}

// A lost ack must not double-step the destination machine: the sender
// retransmits, the receiver re-acks but suppresses the duplicate.
func TestReliabilityAckDedup(t *testing.T) {
	w := attachWorld(1, ReliabilityConfig{RTO: 100 * time.Millisecond, MaxRetries: 8})
	// Discard the first two link-layer acks travelling network→device;
	// NAS frames themselves pass untouched.
	acksToLose := 2
	w.Downlink.DropFilter = func(m types.Message) bool {
		if m.Kind == types.MsgLinkAck && acksToLose > 0 {
			acksToLose--
			return true
		}
		return false
	}
	w.Inject(names.UEEMM, types.Message{Kind: types.MsgPowerOn})
	w.Run()

	if got := w.Machine(names.UEEMM).State(); got != emm.UERegistered {
		t.Fatalf("UE state = %s", got)
	}
	if w.Stats.AcksLost != 2 {
		t.Fatalf("acks lost = %d, want 2", w.Stats.AcksLost)
	}
	if w.Stats.Duplicates == 0 {
		t.Fatal("no duplicate suppressed despite lost acks")
	}
	recs := w.Collector.Records()
	// The MME stepped AttachRequest exactly once: one signal-typed
	// record, every retransmitted copy suppressed.
	steps := (trace.Filter{Type: trace.TypeSignal, Contains: "AttachRequest"}).Apply(recs)
	if len(steps) != 1 {
		t.Fatalf("AttachRequest stepped %d times, want 1", len(steps))
	}
	if _, ok := (trace.Filter{Type: trace.TypeInfo, Contains: "suppressed"}).FirstMatch(recs); !ok {
		t.Fatal("duplicate suppression not traced")
	}
}

// Regression: an ack used to only set t.acked and let the armed RTO
// event fire later as a stale no-op, so every acknowledged frame held a
// scheduler slot (and kept the clock advancing) until its full timeout
// elapsed. The ack must cancel the timer eagerly: the instant it lands,
// the event queue and the armed-timer list are empty.
func TestReliabilityAckCancelsTimerEagerly(t *testing.T) {
	w := attachWorld(1, ReliabilityConfig{})
	// A frame the MME's spec discards: it is received and acked but
	// triggers no response cascade, so the only scheduled events are
	// the transfer's own delivery, ack, and RTO.
	w.reliab.send(w.procs[names.UEEMM], names.MMEEMM, types.Message{Kind: types.MsgPeriodicTimer})
	if got := w.Sim.Pending(); got != 2 {
		t.Fatalf("pending = %d after send, want delivery + armed RTO", got)
	}
	armed := w.ArmedTimers()
	if len(armed) != 1 {
		t.Fatalf("armed timers = %v, want one", armed)
	}
	if at := armed[0]; at.Kind != types.MsgPeriodicTimer || at.Attempt != 1 || at.Deadline != w.reliab.cfg.RTO {
		t.Fatalf("armed timer = %+v", at)
	}

	// Run to just before the RTO deadline: delivery and ack have landed
	// (link latencies are far below the RTO), the expiry has not.
	w.RunUntil(w.reliab.cfg.RTO - time.Millisecond)
	if w.Stats.Acks != 1 {
		t.Fatalf("acks = %d, want 1", w.Stats.Acks)
	}
	if got := w.Sim.Pending(); got != 0 {
		t.Fatalf("pending = %d after ack, want 0 (stale RTO event left in the scheduler)", got)
	}
	if armed := w.ArmedTimers(); len(armed) != 0 {
		t.Fatalf("armed timers = %v after ack, want none", armed)
	}
	if w.InFlight() != 0 || w.Stats.Expiries != 0 {
		t.Fatalf("in-flight = %d, expiries = %d after ack", w.InFlight(), w.Stats.Expiries)
	}
}

// Identical seeds produce byte-identical traces — the determinism the
// sweep engine's cross-worker contract rests on.
func TestReliabilityDeterministicTrace(t *testing.T) {
	run := func() string {
		w := attachWorld(7, ReliabilityConfig{})
		w.Uplink.Dropper = radio.NewDropper(0.4, 3)
		w.Downlink.Dropper = radio.NewDropper(0.4, 4)
		w.Inject(names.UEEMM, types.Message{Kind: types.MsgPowerOn})
		w.Run()
		var b strings.Builder
		for _, r := range w.Collector.Records() {
			b.WriteString(r.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("traces differ:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty trace")
	}
}

// EnableReliability wires the operator's NAS timers; the profiles carry
// distinct, sane values.
func TestEnableReliabilityFromProfile(t *testing.T) {
	for _, p := range Operators() {
		w := NewWorld(1)
		if w.ReliabilityEnabled() {
			t.Fatal("reliability on by default")
		}
		EnableReliability(w, p)
		if !w.ReliabilityEnabled() {
			t.Fatalf("%s: reliability not enabled", p.Name)
		}
		if p.NASRetrans.RTO <= 0 || p.NASRetrans.MaxRetries <= 0 || p.NASRetrans.Backoff < 1 {
			t.Fatalf("%s: implausible NAS timers %+v", p.Name, p.NASRetrans)
		}
	}
	// OP-II's slower core (Figure 4) gets the larger initial RTO.
	if OPII().NASRetrans.RTO <= OPI().NASRetrans.RTO {
		t.Fatal("NAS RTO calibration inverted")
	}
}

// Regression: frames to a nonexistent proc bump Stats.Misrouted (they
// used to vanish with only a trace line).
func TestMisroutedCounted(t *testing.T) {
	w := NewWorld(1)
	w.MustAddProc(names.UEEMM, NodeDevice, emm.DeviceSpec(emm.DeviceOptions{}))
	// The device EMM's peer is absent, so every send misroutes.
	w.Inject(names.UEEMM, types.Message{Kind: types.MsgPowerOn})
	w.Run()
	if w.Stats.Misrouted == 0 {
		t.Fatal("misrouted frame not counted")
	}
	if _, ok := (trace.Filter{Type: trace.TypeError, Contains: "unknown proc"}).FirstMatch(w.Collector.Records()); !ok {
		t.Fatal("misroute not traced")
	}
	// The counter works with the reliability layer on too: the frame is
	// misrouted before it ever reaches the retransmission service.
	w2 := NewWorld(1)
	w2.MustAddProc(names.UEEMM, NodeDevice, emm.DeviceSpec(emm.DeviceOptions{}))
	w2.SetReliability(ReliabilityConfig{})
	w2.Inject(names.UEEMM, types.Message{Kind: types.MsgPowerOn})
	w2.Run()
	if w2.Stats.Misrouted == 0 {
		t.Fatal("misrouted frame not counted with reliability on")
	}
	if w2.InFlight() != 0 {
		t.Fatal("misrouted frame left an in-flight transfer")
	}
}
