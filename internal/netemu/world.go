package netemu

import (
	"fmt"
	"strings"
	"time"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/names"
	"cnetverifier/internal/radio"
	"cnetverifier/internal/trace"
	"cnetverifier/internal/types"
)

// NodeID identifies which side of the air interface a process runs on.
type NodeID uint8

// Node identifiers.
const (
	NodeDevice NodeID = iota + 1
	NodeNetwork
)

func (n NodeID) String() string {
	switch n {
	case NodeDevice:
		return "device"
	case NodeNetwork:
		return "network"
	default:
		return fmt.Sprintf("NodeID(%d)", uint8(n))
	}
}

// LinkParams model one direction of the air interface between the
// device and the network (through the BS).
type LinkParams struct {
	// Latency is the one-way signaling latency.
	Latency time.Duration
	// Jitter adds uniform jitter in [0, Jitter).
	Jitter time.Duration
	// Dropper injects random loss; nil means lossless.
	Dropper *radio.Dropper
	// DropFilter injects targeted loss: a frame is discarded when the
	// filter returns true (the §9.1 prototype's "drops the message
	// according to a given drop rate" generalized to specific signals;
	// the validation phase uses it to stage S2's lost messages).
	DropFilter func(types.Message) bool
}

func (l LinkParams) delay(s *Sim) time.Duration {
	d := l.Latency
	if l.Jitter > 0 {
		d += time.Duration(s.Rand().Int63n(int64(l.Jitter)))
	}
	return d
}

// procRT is a runtime process: a machine hosted on a node.
type procRT struct {
	name     string
	node     NodeID
	m        *fsm.Machine
	outputTo []string
}

// World hosts the device and network stacks under one simulator and
// one shared global-context store, mirroring model.World but with
// virtual time, latency and loss.
type World struct {
	Sim       *Sim
	Collector *trace.Collector
	// Uplink and Downlink are the device→network and network→device
	// link parameters.
	Uplink, Downlink LinkParams

	globals map[string]int
	procs   map[string]*procRT
	// procDelays adds per-(destination, message-kind) processing time
	// on top of link latency — the multi-second operator-side
	// procedure latencies (location/routing updates) that the
	// validation phase needs for realistic timing windows. Opt-in via
	// SetProcessingDelay / WireProcessingDelays.
	procDelays map[string]map[types.MsgKind]Dist

	// Delivered counts messages delivered; Dropped counts messages
	// lost on the air interface.
	Delivered, Dropped int
	// Stats carries the link-layer counters that campaigns assert on:
	// misrouted frames and the reliable-delivery bookkeeping.
	Stats Stats
	// reliab, when non-nil, is the ack-or-timeout retransmission layer
	// wrapped around the air interface (see reliab.go).
	reliab *reliabService
	// perProc counts deliveries per destination process — the
	// operator-side signaling-load observability the paper notes its
	// phone-based method lacks (§3.1: "It may not uncover all issues
	// at base stations and in the core network which operators are
	// interested in").
	perProc map[string]int
}

// Stats counts link-layer events of one emulation run. Unlike the
// paper's phone-side vantage point (§3.1), these counters also expose
// what the infrastructure saw: frames to nonexistent processes and the
// retransmission service's activity.
type Stats struct {
	// Misrouted counts frames addressed to a proc absent from the
	// world. Silent misrouting wedges validation campaigns, so it is
	// counted loudly in addition to the trace line.
	Misrouted int
	// Retransmits, Expiries and Aborts count the reliable-delivery
	// layer's timer activity (reliab.go).
	Retransmits int
	Expiries    int
	Aborts      int
	// Duplicates counts retransmitted frames suppressed at the receiver
	// because their original was already stepped into the machine.
	Duplicates int
	// Acks counts link-layer acknowledgments that reached the sender;
	// AcksLost counts those the reverse link dropped.
	Acks     int
	AcksLost int
}

// NewWorld returns an empty world with the given seed and default
// 30 ms one-way signaling latency.
func NewWorld(seed int64) *World {
	return &World{
		Sim:        NewSim(seed),
		Collector:  trace.NewCollector(),
		Uplink:     LinkParams{Latency: 30 * time.Millisecond},
		Downlink:   LinkParams{Latency: 30 * time.Millisecond},
		globals:    make(map[string]int),
		procs:      make(map[string]*procRT),
		perProc:    make(map[string]int),
		procDelays: make(map[string]map[types.MsgKind]Dist),
	}
}

// AddProc hosts a machine for spec under the proc name on a node.
func (w *World) AddProc(name string, node NodeID, spec *fsm.Spec, outputTo ...string) error {
	if _, dup := w.procs[name]; dup {
		return fmt.Errorf("netemu: duplicate proc %q", name)
	}
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("netemu: proc %q: %w", name, err)
	}
	w.procs[name] = &procRT{name: name, node: node, m: fsm.New(spec), outputTo: outputTo}
	return nil
}

// MustAddProc is AddProc that panics on error (wiring code).
func (w *World) MustAddProc(name string, node NodeID, spec *fsm.Spec, outputTo ...string) {
	if err := w.AddProc(name, node, spec, outputTo...); err != nil {
		panic(err)
	}
}

// Machine returns the named process's machine, or nil.
func (w *World) Machine(name string) *fsm.Machine {
	if p, ok := w.procs[name]; ok {
		return p.m
	}
	return nil
}

// Global reads a shared context variable.
func (w *World) Global(name string) int { return w.globals[name] }

// SetGlobal writes a shared context variable.
func (w *World) SetGlobal(name string, v int) { w.globals[name] = v }

// rtCtx implements fsm.Ctx for a process executing in the world.
type rtCtx struct {
	w *World
	p *procRT
}

func (c *rtCtx) Get(name string) int    { return c.w.globals[name] }
func (c *rtCtx) Set(name string, v int) { c.w.globals[name] = v }

// GetI/SetI are only resolved by the machine wrapper; the emulator
// context never receives indexed calls.
func (c *rtCtx) GetI(int32) int32  { return 0 }
func (c *rtCtx) SetI(int32, int32) {}
func (c *rtCtx) Send(to string, msg types.Message) {
	msg.From = c.p.name
	c.w.route(c.p, to, msg)
}
func (c *rtCtx) Output(msg types.Message) {
	msg.From = c.p.name
	for _, dst := range c.p.outputTo {
		dst := dst
		m := msg
		m.To = dst
		// Cross-layer outputs are local: delivered in the same instant.
		c.w.Sim.At(c.w.Sim.Now(), func() { c.w.deliver(dst, m) })
	}
}
func (c *rtCtx) Trace(format string, args ...any) {
	sys := types.System(c.w.globals[names.GSys])
	c.w.Collector.Addf(c.w.Sim.Now(), trace.TypeInfo, sys, c.p.m.Spec().Name, format, args...)
}

// route schedules delivery of msg to the named proc, applying air-link
// latency and loss when the destination is on the other node.
func (w *World) route(src *procRT, to string, msg types.Message) {
	dst, ok := w.procs[to]
	if !ok {
		w.Stats.Misrouted++
		w.Collector.Addf(w.Sim.Now(), trace.TypeError, msg.System, src.m.Spec().Name,
			"send to unknown proc %q dropped", to)
		return
	}
	msg.To = to
	if src.node == dst.node {
		w.Sim.At(w.Sim.Now(), func() { w.deliver(to, msg) })
		return
	}
	if w.reliab != nil {
		w.reliab.send(src, to, msg)
		return
	}
	link := w.Uplink
	if src.node == NodeNetwork {
		link = w.Downlink
	}
	if (link.Dropper != nil && link.Dropper.Drop()) ||
		(link.DropFilter != nil && link.DropFilter(msg)) {
		w.Dropped++
		w.Collector.Addf(w.Sim.Now(), trace.TypeError, msg.System, src.m.Spec().Name,
			"signal %s lost over the air", msg.Kind)
		return
	}
	w.Sim.After(link.delay(w.Sim)+w.processingDelay(to, msg.Kind), func() { w.deliver(to, msg) })
}

// processingDelay samples the configured server-side processing time
// for a (destination, kind) pair, or zero.
func (w *World) processingDelay(to string, kind types.MsgKind) time.Duration {
	if byKind, ok := w.procDelays[to]; ok {
		if d, ok := byKind[kind]; ok {
			return d.Sample(w.Sim.Rand())
		}
	}
	return 0
}

// SetProcessingDelay configures the server-side processing time applied
// to messages of the kind arriving at the proc.
func (w *World) SetProcessingDelay(proc string, kind types.MsgKind, d Dist) {
	if w.procDelays[proc] == nil {
		w.procDelays[proc] = make(map[types.MsgKind]Dist)
	}
	w.procDelays[proc][kind] = d
}

// deliver steps the destination machine with the message.
func (w *World) deliver(to string, msg types.Message) {
	p, ok := w.procs[to]
	if !ok {
		return
	}
	w.Delivered++
	w.perProc[to]++
	tr, fired := p.m.Step(&rtCtx{w: w, p: p}, fsm.EvMsg(msg))
	sys := types.System(w.globals[names.GSys])
	if fired {
		w.Collector.Addf(w.Sim.Now(), trace.TypeSignal, sys, p.m.Spec().Name,
			"%s -> %s [%s]", msg, p.m.State(), tr.Name)
	} else {
		w.Collector.Addf(w.Sim.Now(), trace.TypeInfo, sys, p.m.Spec().Name,
			"%s discarded in %s", msg, p.m.State())
	}
}

// Inject delivers an environment event to a proc at the current time.
func (w *World) Inject(to string, msg types.Message) {
	w.Sim.At(w.Sim.Now(), func() { w.deliver(to, msg) })
}

// InjectAt delivers an environment event at an absolute virtual time.
func (w *World) InjectAt(t time.Duration, to string, msg types.Message) {
	w.Sim.At(t, func() { w.deliver(to, msg) })
}

// ProcLoad returns the per-process delivery counts (a copy).
func (w *World) ProcLoad() map[string]int {
	out := make(map[string]int, len(w.perProc))
	for k, v := range w.perProc {
		out[k] = v
	}
	return out
}

// ElementLoad aggregates signaling load per hosting element (the part
// of the process name before the first dot: ue, mme, msc, sgsn, bs).
func (w *World) ElementLoad() map[string]int {
	out := make(map[string]int)
	for proc, n := range w.perProc {
		element := proc
		if i := strings.IndexByte(proc, '.'); i > 0 {
			element = proc[:i]
		}
		out[element] += n
	}
	return out
}

// Run drains all pending events.
func (w *World) Run() { w.Sim.Run() }

// RunUntil drains events up to t.
func (w *World) RunUntil(t time.Duration) { w.Sim.RunUntil(t) }
