// Package netemu is the validation-phase substrate of CNetVerifier
// (§3.3, Figure 2 phase 2): a deterministic discrete-event emulator
// that runs the same protocol state machines as the model checker, but
// under virtual time, configurable signaling latencies, per-operator
// policy profiles (OP-I, OP-II) and injected radio loss.
//
// Where the paper drives commercial phones over two US carriers and
// reads QXDM traces, this package drives the emulated device/core
// stacks and reads the internal/trace collector — reproducing the
// validation experiments (Figures 4, 7, 8, 9, 10 and Table 6).
package netemu

import (
	"container/heap"
	"math/rand"
	"time"
)

// Sim is a deterministic discrete-event scheduler under virtual time.
type Sim struct {
	now time.Duration
	pq  eventHeap
	seq uint64
	rng *rand.Rand
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	// idx is the event's current heap position, maintained by Swap so
	// a Timer can remove its event in O(log n); -1 once the event has
	// run or been cancelled.
	idx int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event { return h[0] }
func (h eventHeap) empty() bool  { return len(h) == 0 }

// Timer is a handle on one scheduled event, letting its creator cancel
// it before it fires — an armed protocol timer rather than a
// fire-and-forget callback.
type Timer struct {
	s *Sim
	e *event
}

// Pending reports whether the event is still scheduled (it has neither
// run nor been cancelled).
func (t *Timer) Pending() bool { return t != nil && t.e.idx >= 0 }

// Cancel removes the event from the schedule so it never runs and holds
// no queue slot; it reports whether it did (false when the event
// already ran or was cancelled). Cancellation is eager: a cancelled
// timer leaves nothing behind for Pending()/Sim.Pending to count.
func (t *Timer) Cancel() bool {
	if !t.Pending() {
		return false
	}
	heap.Remove(&t.s.pq, t.e.idx)
	return true
}

// NewSim returns a simulator with a seeded RNG (deterministic runs).
func NewSim(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulation RNG.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn at an absolute virtual time (clamped to now).
func (s *Sim) At(t time.Duration, fn func()) { s.AtTimer(t, fn) }

// After schedules fn d after the current time.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// AtTimer schedules fn at an absolute virtual time (clamped to now) and
// returns a cancellable handle on it.
func (s *Sim) AtTimer(t time.Duration, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	e := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.pq, e)
	return &Timer{s: s, e: e}
}

// AfterTimer schedules fn d after the current time and returns a
// cancellable handle on it.
func (s *Sim) AfterTimer(d time.Duration, fn func()) *Timer { return s.AtTimer(s.now+d, fn) }

// Step runs the next pending event; it reports whether one ran.
func (s *Sim) Step() bool {
	if s.pq.empty() {
		return false
	}
	e := heap.Pop(&s.pq).(*event)
	s.now = e.at
	e.fn()
	return true
}

// Run executes events until none remain.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the
// clock to t.
func (s *Sim) RunUntil(t time.Duration) {
	for !s.pq.empty() && s.pq.peek().at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.pq) }
