// Package netemu is the validation-phase substrate of CNetVerifier
// (§3.3, Figure 2 phase 2): a deterministic discrete-event emulator
// that runs the same protocol state machines as the model checker, but
// under virtual time, configurable signaling latencies, per-operator
// policy profiles (OP-I, OP-II) and injected radio loss.
//
// Where the paper drives commercial phones over two US carriers and
// reads QXDM traces, this package drives the emulated device/core
// stacks and reads the internal/trace collector — reproducing the
// validation experiments (Figures 4, 7, 8, 9, 10 and Table 6).
package netemu

import (
	"container/heap"
	"math/rand"
	"time"
)

// Sim is a deterministic discrete-event scheduler under virtual time.
type Sim struct {
	now time.Duration
	pq  eventHeap
	seq uint64
	rng *rand.Rand
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }
func (h eventHeap) empty() bool   { return len(h) == 0 }

// NewSim returns a simulator with a seeded RNG (deterministic runs).
func NewSim(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulation RNG.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn at an absolute virtual time (clamped to now).
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	heap.Push(&s.pq, event{at: t, seq: s.seq, fn: fn})
	s.seq++
}

// After schedules fn d after the current time.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// Step runs the next pending event; it reports whether one ran.
func (s *Sim) Step() bool {
	if s.pq.empty() {
		return false
	}
	e := heap.Pop(&s.pq).(event)
	s.now = e.at
	e.fn()
	return true
}

// Run executes events until none remain.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the
// clock to t.
func (s *Sim) RunUntil(t time.Duration) {
	for !s.pq.empty() && s.pq.peek().at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.pq) }
