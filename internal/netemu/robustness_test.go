package netemu

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cnetverifier/internal/names"
	"cnetverifier/internal/radio"
	"cnetverifier/internal/types"
)

// fuzzEvents is the closed set of environment events a user/operator
// can fire at the standard stack.
var fuzzEvents = []struct {
	proc string
	kind types.MsgKind
}{
	{names.UEEMM, types.MsgPowerOn},
	{names.UEGMM, types.MsgPowerOn},
	{names.UEMM, types.MsgPowerOn},
	// The empty proc marks a whole-phone power-off: a real power cycle
	// hits every machine atomically.
	{"", types.MsgPowerOff},
	{names.UECM, types.MsgUserDialCall},
	{names.UECM, types.MsgUserHangUp},
	{names.UERRC4G, types.MsgUserDataOn},
	{names.UERRC3G, types.MsgUserDataOn},
	{names.UESM, types.MsgUserDataOn},
	{names.UERRC3G, types.MsgUserDataOff},
	{names.UERRC4G, types.MsgUserDataOff},
	{names.UEMM, types.MsgUserMove},
	{names.UEGMM, types.MsgUserMove},
	{names.UEEMM, types.MsgUserMove},
	{names.UEEMM, types.MsgPeriodicTimer},
	{names.UEMM, types.MsgPeriodicTimer},
	{names.UEGMM, types.MsgPeriodicTimer},
	{names.UEGMM, types.MsgInterSystemSwitchCommand},
	{names.UEEMM, types.MsgInterSystemCellReselect},
	{names.UERRC3G, types.MsgInterSystemCellReselect},
	{names.UERRC4G, types.MsgNetSwitchOrder},
	{names.MSCMM, types.MsgLUFailureSignal},
	{names.MSCCM, types.MsgPagingRequest},
	{names.UESM, types.MsgWiFiAvailable},
	{names.UESM, types.MsgDeactivatePDPRequest},
	{names.SGSNSM, types.MsgNetDetachOrder},
	{names.MMEEMM, types.MsgNetDetachOrder},
	{names.SGSNGMM, types.MsgNetDetachOrder},
}

// checkInvariants asserts the shared-context invariants that must hold
// in every reachable state of the standard stack.
func checkInvariants(t *testing.T, w *World, step int) {
	t.Helper()
	binary := []string{
		names.GPDP, names.GEPS, names.GReg4G, names.GReg3GCS, names.GReg3GPS,
		names.GDetachedByNet, names.GAttachRejected, names.GCallWanted,
		names.GCallActive, names.GCallRejected, names.GCallDelayed,
		names.GLUInProgress, names.GRAUInProgress, names.GDataDelayed,
		names.GWantReturn4G, names.GCSFBTag, names.GLUFail3G, names.GDataOn,
	}
	for _, name := range binary {
		if v := w.Global(name); v != 0 && v != 1 {
			t.Fatalf("step %d: global %s = %d, want 0/1", step, name, v)
		}
	}
	if sys := w.Global(names.GSys); sys < 0 || sys > int(types.Sys4G) {
		t.Fatalf("step %d: GSys = %d", step, sys)
	}
	if mod := w.Global(names.GModulation); mod != 16 && mod != 64 {
		t.Fatalf("step %d: modulation = %d", step, mod)
	}
	// An active call implies the device is camped on 3G (CSFB world:
	// no VoLTE, §2).
	if w.Global(names.GCallActive) == 1 && w.Global(names.GSys) != int(types.Sys3G) {
		t.Fatalf("step %d: call active while camped on %s",
			step, types.System(w.Global(names.GSys)))
	}
}

// Property: the standard stack survives arbitrary user/operator event
// sequences (under every operator/fix combination) without panicking
// or corrupting the shared context.
func TestQuickStackRobustness(t *testing.T) {
	causes := []types.Cause{
		types.CauseInsufficientResources, types.CauseQoSNotAccepted,
		types.CauseLowLayerFailure, types.CauseRegularDeactivation,
		types.CauseIncompatiblePDPContext, types.CauseOperatorDeterminedBarring,
	}
	configs := []struct {
		p     OperatorProfile
		fixes FixSet
	}{
		{OPI(), FixSet{}},
		{OPII(), FixSet{}},
		{OPII(), AllFixes()},
		{OPI(), FixSet{DomainDecoupling: true}},
	}
	f := func(choices []uint16, cfgIdx uint8) bool {
		cfg := configs[int(cfgIdx)%len(configs)]
		w := NewWorld(1)
		StandardStack(w, cfg.p, cfg.fixes)
		at := time.Duration(0)
		for i, choice := range choices {
			e := fuzzEvents[int(choice)%len(fuzzEvents)]
			msg := types.Message{Kind: e.kind}
			if e.kind == types.MsgDeactivatePDPRequest || e.kind == types.MsgNetDetachOrder {
				msg.Cause = causes[int(choice/256)%len(causes)]
			}
			at += 100 * time.Millisecond
			if e.proc == "" {
				for _, proc := range []string{names.UEEMM, names.UEGMM, names.UEMM, names.UESM,
					names.UEESM, names.UECM, names.UERRC3G, names.UERRC4G} {
					w.InjectAt(at, proc, msg)
				}
			} else {
				w.InjectAt(at, e.proc, msg)
			}
			w.Run()
			checkInvariants(t, w, i)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: whatever the event history, power-off always returns the
// stack to a fully idle state.
func TestQuickPowerOffAlwaysResets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		w := NewWorld(int64(trial))
		StandardStack(w, OPII(), FixSet{})
		at := time.Duration(0)
		for i := 0; i < 30; i++ {
			e := fuzzEvents[rng.Intn(len(fuzzEvents))]
			if e.proc == "" {
				continue
			}
			at += 100 * time.Millisecond
			w.InjectAt(at, e.proc, types.Message{Kind: e.kind, Cause: types.CauseRegularDeactivation})
		}
		w.Run()
		// Power everything off.
		for _, proc := range []string{names.UEEMM, names.UEGMM, names.UEMM, names.UESM,
			names.UEESM, names.UECM, names.UERRC3G, names.UERRC4G} {
			w.Inject(proc, types.Message{Kind: types.MsgPowerOff})
		}
		w.Run()
		for _, g := range []string{names.GReg4G, names.GReg3GCS, names.GReg3GPS,
			names.GPDP, names.GEPS, names.GCallActive, names.GPSData} {
			if w.Global(g) != 0 {
				t.Fatalf("trial %d: %s = %d after power off", trial, g, w.Global(g))
			}
		}
	}
}

// cyclicDrop builds a DropFilter that applies an 8-slot cyclic drop
// pattern (bit i of mask set = drop the i-th frame of each cycle). The
// top bit is always cleared, so every cycle has at least one pass slot
// — the precondition for the eventual-delivery property below.
func cyclicDrop(mask uint8) func(types.Message) bool {
	mask &^= 0x80
	n := 0
	return func(types.Message) bool {
		drop := mask&(1<<(n%8)) != 0
		n++
		return drop
	}
}

// Property: with the retransmission layer on and any cyclic loss
// pattern short of total loss on each link, the attach, PS-data and
// 3G-registration flows all eventually complete — loss degrades the
// timing, never the outcome. (Guaranteed because the retry budget
// exceeds the pattern period: some attempt of every frame, and of its
// ack, must land on a pass slot.)
func TestQuickReliableDeliveryEventuallyCompletes(t *testing.T) {
	f := func(upMask, downMask uint8) bool {
		w := NewWorld(3)
		StandardStack(w, OPII(), FixSet{})
		w.SetReliability(ReliabilityConfig{RTO: 50 * time.Millisecond, Backoff: 1, MaxRetries: 64})
		w.Uplink.DropFilter = cyclicDrop(upMask)
		w.Downlink.DropFilter = cyclicDrop(downMask)

		w.InjectAt(0, names.UEEMM, types.Message{Kind: types.MsgPowerOn})
		w.InjectAt(20*time.Second, names.UERRC4G, types.Message{Kind: types.MsgUserDataOn})
		w.Run()
		if w.Global(names.GReg4G) != 1 || w.Global(names.GEPS) != 1 {
			t.Logf("masks %02x/%02x: 4G attach incomplete (reg=%d eps=%d)",
				upMask, downMask, w.Global(names.GReg4G), w.Global(names.GEPS))
			return false
		}
		if w.Global(names.GPSData) != 1 {
			t.Logf("masks %02x/%02x: PS data session never came up", upMask, downMask)
			return false
		}
		// The 3G circuit-switched side registers through the same lossy
		// links (the registration that call service depends on, §6.1).
		w.SetGlobal(names.GSys, int(types.Sys3G))
		w.Inject(names.UEMM, types.Message{Kind: types.MsgPowerOn})
		w.Run()
		if w.Global(names.GReg3GCS) != 1 {
			t.Logf("masks %02x/%02x: 3G CS registration incomplete", upMask, downMask)
			return false
		}
		// Liveness accounting: nothing left hanging.
		return w.InFlight() == 0
	}
	// Fixed source: the property must hold for every mask, so the cases
	// tried in CI may as well be reproducible.
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: with the retransmission layer OFF, random loss may stall
// flows short of their goal — but the stack still terminates cleanly
// (no panic, no livelock, invariants intact). With it ON, additionally
// every reliable transfer ends acked or aborted.
func TestQuickLossyStackTerminates(t *testing.T) {
	f := func(choices []uint16, lossPct, seed uint8, reliab bool) bool {
		w := NewWorld(int64(seed))
		StandardStack(w, OPII(), FixSet{})
		rate := float64(lossPct%100) / 100
		w.Uplink.Dropper = radio.NewDropper(rate, int64(seed)+1)
		w.Downlink.Dropper = radio.NewDropper(rate, int64(seed)+2)
		if reliab {
			EnableReliability(w, OPII())
		}
		at := time.Duration(0)
		for i, choice := range choices {
			e := fuzzEvents[int(choice)%len(fuzzEvents)]
			if e.proc == "" {
				continue
			}
			at += 150 * time.Millisecond
			w.InjectAt(at, e.proc, types.Message{Kind: e.kind, Cause: types.CauseRegularDeactivation})
			w.Run() // must drain — a livelock here times the test out
			checkInvariants(t, w, i)
		}
		if reliab && w.InFlight() != 0 {
			t.Logf("loss %d%%: %d transfers neither acked nor aborted", lossPct%100, w.InFlight())
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the S1 detach is monotone in the fixes — any event sequence
// that strands the fixed stack must also strand the defective one.
// (Checked on the canonical S1 sequence with randomized interleaved
// noise events.)
func TestQuickFixesNeverWorse(t *testing.T) {
	noise := []struct {
		proc string
		kind types.MsgKind
	}{
		{names.UEMM, types.MsgUserMove},
		{names.UEEMM, types.MsgPeriodicTimer},
		{names.UEGMM, types.MsgPeriodicTimer},
		{names.UECM, types.MsgUserDialCall},
		{names.UECM, types.MsgUserHangUp},
	}
	f := func(noiseChoices []uint8) bool {
		run := func(fixes FixSet) int {
			w := NewWorld(5)
			StandardStack(w, OPII(), fixes)
			w.InjectAt(0, names.UEEMM, types.Message{Kind: types.MsgPowerOn})
			w.InjectAt(time.Second, names.UEGMM, types.Message{Kind: types.MsgInterSystemSwitchCommand})
			at := 1500 * time.Millisecond
			for _, nc := range noiseChoices {
				e := noise[int(nc)%len(noise)]
				w.InjectAt(at, e.proc, types.Message{Kind: e.kind})
				at += 100 * time.Millisecond
			}
			w.InjectAt(at+time.Second, names.UESM, types.Message{Kind: types.MsgDeactivatePDPRequest, Cause: types.CauseInsufficientResources})
			w.InjectAt(at+2*time.Second, names.UEEMM, types.Message{Kind: types.MsgInterSystemCellReselect})
			w.Run()
			return w.Global(names.GDetachedByNet)
		}
		return run(AllFixes()) <= run(FixSet{})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
