package netemu

import (
	"time"

	"cnetverifier/internal/names"
)

// OperatorProfile captures the per-carrier policies and latency
// distributions that differentiate the paper's two studied US
// operators (anonymized as OP-I and OP-II). Every number is calibrated
// to a measurement the paper reports; the field comments cite them.
type OperatorProfile struct {
	// Name is "OP-I" or "OP-II".
	Name string

	// SwitchOption is the inter-system switching option the carrier
	// uses after a CSFB call (§5.3.2: OP-I uses RRC connection release
	// with redirect; OP-II uses inter-system cell reselection).
	SwitchOption int

	// LAU is the location-area-update duration (Figure 8a: OP-I all
	// >2 s, average ≈3 s; OP-II 72% in 1.2–2.1 s, average ≈1.9 s).
	LAU Dist
	// RAU is the routing-area-update duration (Figure 8b: OP-I ~75%
	// in 1–3.6 s; OP-II 90% in 1.6–4.1 s).
	RAU Dist

	// Reattach is the S1 recovery time from the tracking-area-update
	// reject to a completed re-attach (Figure 4: 2.4–24.7 s across
	// carriers; OP-II's re-attach is slower).
	Reattach Dist

	// StuckReturn is the time spent in 3G after a CSFB call ends with
	// mobile data on (Table 6: OP-I min 1.1 s / median 2.3 s / max
	// 52.6 s; OP-II min 14.7 s / median 24.3 s / max 253.9 s).
	StuckReturn Dist

	// VoiceOverheadDL/UL are the extra shared-channel penalties a
	// concurrent CS call imposes beyond the 64QAM→16QAM downgrade,
	// calibrated so Figure 9's observed drops emerge (DL 73.9% OP-I /
	// 74.8% OP-II; UL 51.1% OP-I / 96.1% OP-II).
	VoiceOverheadDL, VoiceOverheadUL float64

	// CallSetupBase is the dial→connected time without interference
	// (Figure 7: average ≈11.4 s).
	CallSetupBase Dist

	// WaitNetCmdExtra is the §6.1 chain effect: the extra time MM
	// spends in MM-WAIT-FOR-NET-CMD after a location update during
	// which call requests stay blocked (≈4.3 s measured).
	WaitNetCmdExtra time.Duration

	// NASRetrans is the carrier's NAS retransmission discipline
	// (T3410/T3310-style ack-or-timeout with exponential backoff),
	// scaled to the emulator's signaling latencies. The §3.3 validation
	// runs over lossy links depend on it: without retransmission a
	// dropped frame is a silent stall instead of a degraded-but-
	// terminating run. OP-II's core answers more slowly (Figure 4), so
	// its initial RTO is set larger.
	NASRetrans ReliabilityConfig
}

// OPI returns the OP-I profile.
func OPI() OperatorProfile {
	return OperatorProfile{
		Name:         "OP-I",
		SwitchOption: names.SwitchRedirect,
		LAU:          Uniform{Min: 2 * time.Second, Max: 4 * time.Second},
		RAU: Mixture{
			Weights: []float64{0.75, 0.25},
			Parts: []Dist{
				Uniform{Min: 1 * time.Second, Max: 3600 * time.Millisecond},
				Uniform{Min: 3600 * time.Millisecond, Max: 5 * time.Second},
			},
		},
		Reattach: Triangular{Min: 2400 * time.Millisecond, Mode: 4600 * time.Millisecond, Max: 15200 * time.Millisecond},
		StuckReturn: Mixture{
			Weights: []float64{0.85, 0.15},
			Parts: []Dist{
				Uniform{Min: 1100 * time.Millisecond, Max: 3500 * time.Millisecond},
				Uniform{Min: 3500 * time.Millisecond, Max: 52600 * time.Millisecond},
			},
		},
		VoiceOverheadDL: 0.50,
		VoiceOverheadUL: 0.024,
		CallSetupBase:   Uniform{Min: 10 * time.Second, Max: 12800 * time.Millisecond},
		WaitNetCmdExtra: 4300 * time.Millisecond,
		NASRetrans: ReliabilityConfig{
			RTO:        400 * time.Millisecond,
			Backoff:    2,
			MaxRTO:     6400 * time.Millisecond,
			MaxRetries: 4,
		},
	}
}

// OPII returns the OP-II profile.
func OPII() OperatorProfile {
	return OperatorProfile{
		Name:         "OP-II",
		SwitchOption: names.SwitchReselect,
		LAU: Mixture{
			Weights: []float64{0.72, 0.28},
			Parts: []Dist{
				Uniform{Min: 1200 * time.Millisecond, Max: 2100 * time.Millisecond},
				Uniform{Min: 2100 * time.Millisecond, Max: 3300 * time.Millisecond},
			},
		},
		RAU: Mixture{
			Weights: []float64{0.9, 0.1},
			Parts: []Dist{
				Uniform{Min: 1600 * time.Millisecond, Max: 4100 * time.Millisecond},
				Uniform{Min: 4100 * time.Millisecond, Max: 5500 * time.Millisecond},
			},
		},
		Reattach: Triangular{Min: 3500 * time.Millisecond, Mode: 8700 * time.Millisecond, Max: 24700 * time.Millisecond},
		StuckReturn: Mixture{
			Weights: []float64{0.9, 0.1},
			Parts: []Dist{
				Uniform{Min: 14700 * time.Millisecond, Max: 36 * time.Second},
				Uniform{Min: 36 * time.Second, Max: 253900 * time.Millisecond},
			},
		},
		VoiceOverheadDL: 0.516,
		VoiceOverheadUL: 0.922,
		CallSetupBase:   Uniform{Min: 10 * time.Second, Max: 12800 * time.Millisecond},
		WaitNetCmdExtra: 4300 * time.Millisecond,
		NASRetrans: ReliabilityConfig{
			RTO:        600 * time.Millisecond,
			Backoff:    2,
			MaxRTO:     9600 * time.Millisecond,
			MaxRetries: 4,
		},
	}
}

// Operators returns both profiles, OP-I first.
func Operators() []OperatorProfile {
	return []OperatorProfile{OPI(), OPII()}
}
