package netemu

import (
	"cnetverifier/internal/names"
	"cnetverifier/internal/protocols/cm"
	"cnetverifier/internal/protocols/emm"
	"cnetverifier/internal/protocols/esm"
	"cnetverifier/internal/protocols/gmm"
	"cnetverifier/internal/protocols/mm"
	"cnetverifier/internal/protocols/rrc3g"
	"cnetverifier/internal/protocols/rrc4g"
	"cnetverifier/internal/protocols/sm"
	"cnetverifier/internal/radio"
	"cnetverifier/internal/types"
)

// FixSet selects which §8 solution modules are enabled in an emulated
// stack (Figure 11: layer extension, domain decoupling, cross-system
// coordination).
type FixSet struct {
	// ReliableSignaling is the slim reliable-transfer layer between
	// EMM and RRC (fixes S2). In the emulator it is realized by the
	// internal/fixes/reliable shim wrapped around the air link.
	ReliableSignaling bool
	// ParallelUpdate decouples location updates from service requests
	// in MM/GMM (fixes S4).
	ParallelUpdate bool
	// DomainDecoupling separates CS and PS on RRC: CSFB-tagged calls
	// force a switch-capable state (fixes S3) and per-domain channels
	// keep PS modulation (fixes S5).
	DomainDecoupling bool
	// CrossSystem reactivates the EPS bearer instead of detaching
	// (fixes S1) and recovers 3G LU failures inside the core (fixes
	// S6).
	CrossSystem bool
}

// AllFixes enables every §8 module.
func AllFixes() FixSet {
	return FixSet{ReliableSignaling: true, ParallelUpdate: true, DomainDecoupling: true, CrossSystem: true}
}

// StandardStack assembles the full dual-system stack of Figure 1 into
// a world: eight device-side machines and their network peers (MME,
// MSC, SGSN), wired with the cross-layer outputs used by the findings.
// The carrier's switching option is installed from the profile, and
// the PropagateLUFailure slip (S6) is enabled exactly when the
// cross-system fix is off, matching the observed behavior of both
// carriers (§6.3).
func StandardStack(w *World, p OperatorProfile, fixes FixSet) {
	buildStack(w, p, fixes, false)
}

// VoLTEStack assembles the same stack with Voice-over-LTE (§2): calls
// stay in the 4G PS domain, so CSFB — and with it the S3 and S6
// exposure — never happens. The deployment alternative the paper notes
// carriers avoided for cost and complexity.
func VoLTEStack(w *World, p OperatorProfile, fixes FixSet) {
	buildStack(w, p, fixes, true)
}

func buildStack(w *World, p OperatorProfile, fixes FixSet, volte bool) {
	// Device side.
	w.MustAddProc(names.UEEMM, NodeDevice,
		emm.DeviceSpec(emm.DeviceOptions{FixReactivateBearer: fixes.CrossSystem}), names.UEESM)
	w.MustAddProc(names.UEESM, NodeDevice, esm.DeviceSpec(esm.DeviceOptions{}))
	w.MustAddProc(names.UEGMM, NodeDevice,
		gmm.DeviceSpec(gmm.DeviceOptions{FixParallelUpdate: fixes.ParallelUpdate}))
	w.MustAddProc(names.UESM, NodeDevice,
		sm.DeviceSpec(sm.DeviceOptions{FixParallelUpdate: fixes.ParallelUpdate, FixKeepContext: fixes.CrossSystem}))
	w.MustAddProc(names.UEMM, NodeDevice,
		mm.DeviceSpec(mm.DeviceOptions{FixParallelUpdate: fixes.ParallelUpdate}), names.UECM)
	w.MustAddProc(names.UECM, NodeDevice,
		cm.DeviceSpec(cm.DeviceOptions{VoLTE: volte}), names.UEMM, names.UERRC3G, names.UERRC4G)
	w.MustAddProc(names.UERRC3G, NodeDevice,
		rrc3g.DeviceSpec(rrc3g.DeviceOptions{FixCSFBTag: fixes.DomainDecoupling, FixDecoupleChannels: fixes.DomainDecoupling}), names.UECM)
	// 4G RRC's switch command fans out to 3G RRC (radio setup) and the
	// 3G mobility layers (location/routing updates, Figure 3 step 2).
	w.MustAddProc(names.UERRC4G, NodeDevice,
		rrc4g.DeviceSpec(rrc4g.DeviceOptions{}), names.UERRC3G, names.UEMM, names.UEGMM)

	// Network side.
	w.MustAddProc(names.MMEEMM, NodeNetwork,
		emm.MMESpec(emm.MMEOptions{
			FixReactivateBearer:  fixes.CrossSystem,
			FixLUFailureRecovery: fixes.CrossSystem,
			PropagateLUFailure:   !fixes.CrossSystem,
		}), names.MMEESM)
	w.MustAddProc(names.MMEESM, NodeNetwork, esm.MMESpec(esm.MMEOptions{}))
	w.MustAddProc(names.SGSNGMM, NodeNetwork, gmm.SGSNSpec(gmm.SGSNOptions{}))
	w.MustAddProc(names.SGSNSM, NodeNetwork,
		sm.SGSNSpec(sm.SGSNOptions{FixKeepContext: fixes.CrossSystem}))
	w.MustAddProc(names.MSCMM, NodeNetwork, mm.MSCSpec(mm.MSCOptions{}))
	w.MustAddProc(names.MSCCM, NodeNetwork, cm.MSCSpec(cm.MSCOptions{}))

	w.SetGlobal(names.GSwitchOpt, p.SwitchOption)
	w.SetGlobal(names.GModulation, rrc3g.Mod64QAM)
	w.SetGlobal(names.GSys, int(types.SysNone))
}

// WireProcessingDelays installs the operator's measured procedure
// latencies (Figure 8) as server-side processing delays: the MSC takes
// the profile's LAU time to answer a location update and the SGSN the
// RAU time. The validation phase (internal/validate) uses this to get
// the realistic timing windows in which S4-class overlaps occur.
func WireProcessingDelays(w *World, p OperatorProfile) {
	w.SetProcessingDelay(names.MSCMM, types.MsgLocationUpdateRequest, p.LAU)
	w.SetProcessingDelay(names.SGSNGMM, types.MsgRoutingAreaUpdateRequest, p.RAU)
}

// SharedChannelFor builds the S5 radio channel for a profile,
// decoupled when the domain-decoupling fix is on.
func SharedChannelFor(p OperatorProfile, fixes FixSet, uplink bool) *radio.SharedChannel {
	ch := radio.NewSharedChannel()
	ch.Coupled = !fixes.DomainDecoupling
	if uplink {
		ch.VoiceOverheadFactor = p.VoiceOverheadUL
	} else {
		ch.VoiceOverheadFactor = p.VoiceOverheadDL
	}
	return ch
}
