package netemu

import (
	"sort"
	"time"

	"cnetverifier/internal/names"
	"cnetverifier/internal/trace"
	"cnetverifier/internal/types"
)

// This file implements the world's reliable-delivery layer: a per-link
// ack-or-timeout retransmission service modeled on the NAS timer
// discipline (T3410 for attach, T3310 for the routing/tracking updates
// — TS 24.301 §10.2) that the paper's validation phase runs against on
// real carriers (§3.3). Without it every frame the Dropper/DropFilter
// hooks discard is a silent stall; with it the sender retransmits with
// exponential backoff and, when the retry budget is exhausted, its
// machine receives a synthesized MsgLinkFailure indication instead of
// hanging forever. Every expiry, retransmission and abort is written to
// the trace collector as a typed record (EXPIRY/RETX/ABORT), so a
// validation campaign can attribute each terminated run to property
// satisfaction, reproduction, or a traced retry-exhaustion abort.

// ReliabilityConfig tunes the retransmission service of one world.
type ReliabilityConfig struct {
	// RTO is the initial retransmission timeout (the scaled analogue of
	// the NAS T3410/T3310 values; default 200 ms).
	RTO time.Duration
	// Backoff multiplies the RTO after every retry (default 2 —
	// exponential backoff).
	Backoff float64
	// MaxRTO caps the backed-off timeout; 0 leaves it uncapped.
	MaxRTO time.Duration
	// MaxRetries bounds retransmissions per frame (default 4, matching
	// the NAS attempt counters); one more expiry aborts the transfer.
	MaxRetries int
}

func (c ReliabilityConfig) withDefaults() ReliabilityConfig {
	if c.RTO == 0 {
		c.RTO = 200 * time.Millisecond
	}
	if c.Backoff == 0 {
		c.Backoff = 2
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 4
	}
	return c
}

// transfer is one in-flight reliable frame.
type transfer struct {
	seq      uint32
	msg      types.Message
	src      *procRT
	to       string
	attempts int // retransmissions so far
	rto      time.Duration
	acked    bool
	// timer is the armed RTO for the current attempt, cancelled eagerly
	// on ack so no stale expiry event lingers in the scheduler;
	// deadline is its absolute expiry instant (for ArmedTimers).
	timer    *Timer
	deadline time.Duration
}

// reliabService is the per-world retransmission state. It is driven
// entirely by the world's Sim, so runs stay deterministic.
type reliabService struct {
	w   *World
	cfg ReliabilityConfig
	// nextSeq numbers frames world-globally, so receiver-side dedup is
	// a single set lookup.
	nextSeq  uint32
	inflight map[uint32]*transfer
	// delivered marks sequence numbers already stepped into the
	// destination machine: a retransmitted frame whose original got
	// through is re-acked but never double-steps the FSM.
	delivered map[uint32]bool
}

// SetReliability enables the reliable-delivery layer with the given
// configuration (zero fields take defaults). It must be called before
// traffic flows; calling it again replaces the configuration but keeps
// in-flight state.
func (w *World) SetReliability(cfg ReliabilityConfig) {
	if w.reliab == nil {
		w.reliab = &reliabService{
			w:         w,
			nextSeq:   1,
			inflight:  make(map[uint32]*transfer),
			delivered: make(map[uint32]bool),
		}
	}
	w.reliab.cfg = cfg.withDefaults()
}

// ReliabilityEnabled reports whether the retransmission layer is on.
func (w *World) ReliabilityEnabled() bool { return w.reliab != nil }

// EnableReliability wires the operator's NAS retransmission timers into
// the world — the per-carrier values live on OperatorProfile.
func EnableReliability(w *World, p OperatorProfile) {
	w.SetReliability(p.NASRetrans)
}

// link returns the air-link parameters for frames travelling away from
// the given source node.
func (r *reliabService) link(from NodeID) LinkParams {
	if from == NodeNetwork {
		return r.w.Downlink
	}
	return r.w.Uplink
}

// lost applies the link's loss model to one frame.
func lost(link LinkParams, msg types.Message) bool {
	return (link.Dropper != nil && link.Dropper.Drop()) ||
		(link.DropFilter != nil && link.DropFilter(msg))
}

// send starts a reliable transfer of msg from src to the named proc on
// the other node: transmit, arm the RTO, retransmit on expiry.
func (r *reliabService) send(src *procRT, to string, msg types.Message) {
	t := &transfer{seq: r.nextSeq, msg: msg, src: src, to: to, rto: r.cfg.RTO}
	r.nextSeq++
	t.msg.Seq = t.seq
	r.inflight[t.seq] = t
	r.transmit(t)
	r.arm(t)
}

// transmit pushes one attempt of the frame onto the air link.
func (r *reliabService) transmit(t *transfer) {
	w := r.w
	link := r.link(t.src.node)
	if lost(link, t.msg) {
		w.Dropped++
		w.Collector.Addf(w.Sim.Now(), trace.TypeError, t.msg.System, t.src.m.Spec().Name,
			"signal %s lost over the air", t.msg.Kind)
		return
	}
	msg := t.msg
	to := t.to
	w.Sim.After(link.delay(w.Sim)+w.processingDelay(to, msg.Kind), func() { r.receive(t) })
}

// receive handles one arriving frame copy at the destination node: it
// is always re-acked (the original ack may itself have been lost), and
// stepped into the destination machine exactly once.
func (r *reliabService) receive(t *transfer) {
	w := r.w
	r.sendAck(t)
	if r.delivered[t.seq] {
		w.Stats.Duplicates++
		sys := types.System(w.globals[names.GSys])
		w.Collector.Addf(w.Sim.Now(), trace.TypeInfo, sys, t.src.m.Spec().Name,
			"duplicate %s (seq %d) suppressed", t.msg.Kind, t.seq)
		return
	}
	r.delivered[t.seq] = true
	w.deliver(t.to, t.msg)
}

// sendAck returns a link-layer ack over the reverse link, subject to
// that link's own loss model; a lost ack is recovered by the sender's
// retransmission and the receiver's dedup.
func (r *reliabService) sendAck(t *transfer) {
	w := r.w
	reverse := r.w.Uplink
	if t.src.node == NodeDevice {
		reverse = r.w.Downlink
	}
	ack := types.Message{Kind: types.MsgLinkAck, Seq: t.seq, From: t.to, To: t.src.name}
	if lost(reverse, ack) {
		w.Stats.AcksLost++
		return
	}
	w.Sim.After(reverse.delay(w.Sim), func() { r.ack(t) })
}

// ack cancels the pending retransmission for the frame — eagerly: the
// armed RTO event is removed from the scheduler, not left to fire as a
// stale no-op that would advance the clock and hold a queue slot until
// its deadline. The acked flag stays as the dedup guard for duplicate
// acks of retransmitted copies.
func (r *reliabService) ack(t *transfer) {
	if t.acked {
		return
	}
	t.acked = true
	if t.timer != nil {
		t.timer.Cancel()
		t.timer = nil
	}
	delete(r.inflight, t.seq)
	r.w.Stats.Acks++
}

// arm schedules the RTO for the transfer's current attempt and records
// the handle so an ack can cancel it.
func (r *reliabService) arm(t *transfer) {
	t.deadline = r.w.Sim.Now() + t.rto
	t.timer = r.w.Sim.AfterTimer(t.rto, func() { r.expire(t) })
}

// expire fires when the RTO elapses without an ack: retransmit with
// backed-off timeout, or — past the retry budget — abort the transfer
// and synthesize a failure indication to the sender's machine.
func (r *reliabService) expire(t *transfer) {
	w := r.w
	if t.acked {
		return
	}
	t.timer = nil // this attempt's timer just fired
	w.Stats.Expiries++
	mod := t.src.m.Spec().Name
	w.Collector.Addf(w.Sim.Now(), trace.TypeExpiry, t.msg.System, mod,
		"RTO %v expired for %s (seq %d, attempt %d)", t.rto, t.msg.Kind, t.seq, t.attempts+1)
	if t.attempts >= r.cfg.MaxRetries {
		t.acked = true // no further timers act on this transfer
		delete(r.inflight, t.seq)
		w.Stats.Aborts++
		w.Collector.Addf(w.Sim.Now(), trace.TypeAbort, t.msg.System, mod,
			"%s (seq %d) abandoned after %d attempts", t.msg.Kind, t.seq, t.attempts+1)
		fail := types.Message{
			Kind:  types.MsgLinkFailure,
			Cause: types.CauseLowLayerFailure,
			Seq:   t.seq,
			From:  t.to,
			To:    t.src.name,
		}
		w.deliver(t.src.name, fail)
		return
	}
	t.attempts++
	t.rto = time.Duration(float64(t.rto) * r.cfg.Backoff)
	if r.cfg.MaxRTO > 0 && t.rto > r.cfg.MaxRTO {
		t.rto = r.cfg.MaxRTO
	}
	w.Stats.Retransmits++
	w.Collector.Addf(w.Sim.Now(), trace.TypeRetx, t.msg.System, mod,
		"retransmit %s (seq %d, attempt %d, next RTO %v)", t.msg.Kind, t.seq, t.attempts, t.rto)
	r.transmit(t)
	r.arm(t)
}

// InFlight returns the number of unacknowledged reliable transfers.
func (w *World) InFlight() int {
	if w.reliab == nil {
		return 0
	}
	return len(w.reliab.inflight)
}

// ArmedTimer describes one live retransmission timer of the reliable
// layer: which frame it guards, when it will fire, and which attempt it
// belongs to.
type ArmedTimer struct {
	Seq      uint32
	Kind     types.MsgKind
	Deadline time.Duration
	Attempt  int
}

// ArmedTimers returns the live RTO timers in Seq order — the
// model-visible view of the reliable layer's timing state. An acked
// transfer's timer is cancelled eagerly, so it disappears from this
// list (and from Sim.Pending) the instant the ack lands.
func (w *World) ArmedTimers() []ArmedTimer {
	if w.reliab == nil {
		return nil
	}
	out := make([]ArmedTimer, 0, len(w.reliab.inflight))
	for _, t := range w.reliab.inflight {
		if t.timer.Pending() {
			out = append(out, ArmedTimer{Seq: t.seq, Kind: t.msg.Kind, Deadline: t.deadline, Attempt: t.attempts + 1})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
