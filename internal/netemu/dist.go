package netemu

import (
	"math"
	"math/rand"
	"time"
)

// Dist is a duration distribution used by operator profiles for
// procedure latencies (location updates, re-attach delays, ...).
type Dist interface {
	Sample(rng *rand.Rand) time.Duration
}

// Fixed always returns D.
type Fixed struct{ D time.Duration }

// Sample implements Dist.
func (f Fixed) Sample(*rand.Rand) time.Duration { return f.D }

// Uniform samples uniformly from [Min, Max].
type Uniform struct{ Min, Max time.Duration }

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)))
}

// Triangular samples a triangular distribution with the given mode —
// handy for matching reported (min, median, max) triples such as
// Figure 4's recovery times.
type Triangular struct{ Min, Mode, Max time.Duration }

// Sample implements Dist.
func (t Triangular) Sample(rng *rand.Rand) time.Duration {
	a, c, b := float64(t.Min), float64(t.Mode), float64(t.Max)
	if b <= a {
		return t.Min
	}
	u := rng.Float64()
	fc := (c - a) / (b - a)
	var x float64
	if u < fc {
		x = a + math.Sqrt(u*(b-a)*(c-a))
	} else {
		x = b - math.Sqrt((1-u)*(b-a)*(b-c))
	}
	return time.Duration(x)
}

// Mixture samples one of the parts by weight.
type Mixture struct {
	Weights []float64
	Parts   []Dist
}

// Sample implements Dist.
func (m Mixture) Sample(rng *rand.Rand) time.Duration {
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	if total == 0 || len(m.Parts) == 0 {
		return 0
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range m.Weights {
		acc += w
		if u < acc {
			return m.Parts[i].Sample(rng)
		}
	}
	return m.Parts[len(m.Parts)-1].Sample(rng)
}
