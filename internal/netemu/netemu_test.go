package netemu

import (
	"math/rand"
	"testing"
	"time"

	"cnetverifier/internal/names"
	"cnetverifier/internal/protocols/emm"
	"cnetverifier/internal/radio"
	"cnetverifier/internal/trace"
	"cnetverifier/internal/types"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim(1)
	var got []int
	s.After(2*time.Second, func() { got = append(got, 2) })
	s.After(1*time.Second, func() { got = append(got, 1) })
	s.After(1*time.Second, func() { got = append(got, 11) }) // same time: FIFO
	s.After(3*time.Second, func() { got = append(got, 3) })
	s.Run()
	want := []int{1, 11, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim(1)
	ran := 0
	s.After(time.Second, func() { ran++ })
	s.After(5*time.Second, func() { ran++ })
	s.RunUntil(2 * time.Second)
	if ran != 1 || s.Now() != 2*time.Second || s.Pending() != 1 {
		t.Fatalf("ran=%d now=%v pending=%d", ran, s.Now(), s.Pending())
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim(1)
	var order []string
	s.After(time.Second, func() {
		order = append(order, "a")
		s.After(time.Second, func() { order = append(order, "c") })
		s.At(s.Now(), func() { order = append(order, "b") })
	})
	s.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestSimPastSchedulingClamped(t *testing.T) {
	s := NewSim(1)
	fired := false
	s.After(time.Second, func() {
		s.At(0, func() { fired = true }) // in the past: clamped to now
	})
	s.Run()
	if !fired {
		t.Fatal("past event never fired")
	}
	if s.Now() != time.Second {
		t.Fatalf("now = %v", s.Now())
	}
}

// Cancelling a timer removes its event from the scheduler outright: it
// holds no queue slot, never runs, and Cancel/Pending report the
// lifecycle exactly once each way.
func TestSimTimerCancel(t *testing.T) {
	s := NewSim(1)
	var fired []string
	a := s.AfterTimer(10*time.Millisecond, func() { fired = append(fired, "a") })
	b := s.AfterTimer(20*time.Millisecond, func() { fired = append(fired, "b") })
	if s.Pending() != 2 || !a.Pending() || !b.Pending() {
		t.Fatalf("pending = %d (a=%v b=%v), want 2 armed timers", s.Pending(), a.Pending(), b.Pending())
	}
	if !a.Cancel() {
		t.Fatal("first Cancel reported false")
	}
	if a.Cancel() {
		t.Fatal("second Cancel reported true")
	}
	if s.Pending() != 1 || a.Pending() {
		t.Fatalf("after cancel: pending = %d, a.Pending = %v", s.Pending(), a.Pending())
	}
	s.Run()
	if len(fired) != 1 || fired[0] != "b" {
		t.Fatalf("fired = %v, want only b", fired)
	}
	if b.Pending() || b.Cancel() {
		t.Fatal("a fired timer is still pending/cancellable")
	}
}

func TestDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if d := (Fixed{D: time.Second}).Sample(rng); d != time.Second {
		t.Fatalf("fixed = %v", d)
	}
	u := Uniform{Min: time.Second, Max: 2 * time.Second}
	for i := 0; i < 1000; i++ {
		d := u.Sample(rng)
		if d < u.Min || d >= u.Max {
			t.Fatalf("uniform sample %v out of range", d)
		}
	}
	if d := (Uniform{Min: time.Second, Max: time.Second}).Sample(rng); d != time.Second {
		t.Fatalf("degenerate uniform = %v", d)
	}
	tri := Triangular{Min: time.Second, Mode: 2 * time.Second, Max: 5 * time.Second}
	sum := time.Duration(0)
	for i := 0; i < 5000; i++ {
		d := tri.Sample(rng)
		if d < tri.Min || d > tri.Max {
			t.Fatalf("triangular sample %v out of range", d)
		}
		sum += d
	}
	mean := sum / 5000
	// Triangular mean = (min+mode+max)/3 ≈ 2.67 s.
	if mean < 2400*time.Millisecond || mean > 2900*time.Millisecond {
		t.Fatalf("triangular mean = %v", mean)
	}
	mix := Mixture{
		Weights: []float64{0.5, 0.5},
		Parts:   []Dist{Fixed{D: time.Second}, Fixed{D: 3 * time.Second}},
	}
	lo, hi := 0, 0
	for i := 0; i < 2000; i++ {
		switch mix.Sample(rng) {
		case time.Second:
			lo++
		case 3 * time.Second:
			hi++
		default:
			t.Fatal("unexpected mixture sample")
		}
	}
	if lo < 800 || hi < 800 {
		t.Fatalf("mixture unbalanced: %d/%d", lo, hi)
	}
	if (Mixture{}).Sample(rng) != 0 {
		t.Fatal("empty mixture should sample 0")
	}
}

func TestProfilesCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range Operators() {
		if p.Name == "" || p.LAU == nil || p.RAU == nil || p.Reattach == nil || p.StuckReturn == nil {
			t.Fatalf("profile %q incomplete", p.Name)
		}
		// Figure 8a: OP-I LAUs all exceed 2 s; OP-II average ≈1.9 s.
		var sum time.Duration
		const n = 4000
		for i := 0; i < n; i++ {
			d := p.LAU.Sample(rng)
			if p.Name == "OP-I" && d < 2*time.Second {
				t.Fatalf("OP-I LAU %v < 2s", d)
			}
			sum += d
		}
		mean := sum / n
		switch p.Name {
		case "OP-I":
			if mean < 2700*time.Millisecond || mean > 3300*time.Millisecond {
				t.Fatalf("OP-I LAU mean = %v, want ≈3s", mean)
			}
		case "OP-II":
			if mean < 1600*time.Millisecond || mean > 2200*time.Millisecond {
				t.Fatalf("OP-II LAU mean = %v, want ≈1.9s", mean)
			}
		}
	}
	// OP-I uses redirect, OP-II reselection (§5.3.2).
	if OPI().SwitchOption != names.SwitchRedirect || OPII().SwitchOption != names.SwitchReselect {
		t.Fatal("switch options wrong")
	}
	// Figure 9 calibration: OP-II's UL overhead must dwarf OP-I's.
	if OPII().VoiceOverheadUL <= OPI().VoiceOverheadUL {
		t.Fatal("UL overhead calibration inverted")
	}
}

// End-to-end: a 4G attach over the emulated air interface with latency.
func TestWorldAttachFlow(t *testing.T) {
	w := NewWorld(1)
	w.MustAddProc(names.UEEMM, NodeDevice, emm.DeviceSpec(emm.DeviceOptions{}))
	w.MustAddProc(names.MMEEMM, NodeNetwork, emm.MMESpec(emm.MMEOptions{}))
	w.Inject(names.UEEMM, types.Message{Kind: types.MsgPowerOn})
	w.Run()

	if got := w.Machine(names.UEEMM).State(); got != emm.UERegistered {
		t.Fatalf("UE state = %s", got)
	}
	if got := w.Machine(names.MMEEMM).State(); got != emm.MMERegistered {
		t.Fatalf("MME state = %s", got)
	}
	if w.Global(names.GEPS) != 1 {
		t.Fatal("EPS bearer not active")
	}
	// Attach request + accept + complete = 3 one-way trips ≥ 90 ms.
	if w.Sim.Now() < 90*time.Millisecond {
		t.Fatalf("attach completed too fast: %v", w.Sim.Now())
	}
	if w.Delivered < 4 {
		t.Fatalf("delivered = %d", w.Delivered)
	}
	// Trace records exist for the signaling.
	recs := w.Collector.Records()
	if len(recs) == 0 {
		t.Fatal("no trace records")
	}
	if _, ok := (trace.Filter{Type: trace.TypeSignal, Contains: "AttachAccept"}).FirstMatch(recs); !ok {
		t.Fatal("attach accept not traced")
	}
}

// Loss injection: with a fully lossy uplink the attach never completes
// and the loss is traced.
func TestWorldLossyUplink(t *testing.T) {
	w := NewWorld(1)
	w.Uplink.Dropper = radio.NewDropper(1.0, 42)
	w.MustAddProc(names.UEEMM, NodeDevice, emm.DeviceSpec(emm.DeviceOptions{}))
	w.MustAddProc(names.MMEEMM, NodeNetwork, emm.MMESpec(emm.MMEOptions{}))
	w.Inject(names.UEEMM, types.Message{Kind: types.MsgPowerOn})
	w.Run()
	if w.Machine(names.MMEEMM).State() != emm.MMEDeregistered {
		t.Fatal("MME should never hear the attach")
	}
	if w.Dropped == 0 {
		t.Fatal("no drops recorded")
	}
	if _, ok := (trace.Filter{Type: trace.TypeError, Contains: "lost over the air"}).FirstMatch(w.Collector.Records()); !ok {
		t.Fatal("loss not traced")
	}
}

func TestWorldDuplicateProcRejected(t *testing.T) {
	w := NewWorld(1)
	w.MustAddProc(names.UEEMM, NodeDevice, emm.DeviceSpec(emm.DeviceOptions{}))
	if err := w.AddProc(names.UEEMM, NodeDevice, emm.DeviceSpec(emm.DeviceOptions{})); err == nil {
		t.Fatal("duplicate proc accepted")
	}
}

func TestWorldUnknownDestinationTraced(t *testing.T) {
	w := NewWorld(1)
	// Device EMM's peer (mme.emm) is absent.
	w.MustAddProc(names.UEEMM, NodeDevice, emm.DeviceSpec(emm.DeviceOptions{}))
	w.Inject(names.UEEMM, types.Message{Kind: types.MsgPowerOn})
	w.Run()
	if _, ok := (trace.Filter{Type: trace.TypeError, Contains: "unknown proc"}).FirstMatch(w.Collector.Records()); !ok {
		t.Fatal("unknown destination not traced")
	}
}

// The full standard stack performs the complete S1 sequence under
// virtual time: attach in 4G, fall to 3G, deactivate the PDP context,
// return to 4G, get detached — and with all fixes on, stay registered.
func TestStandardStackS1(t *testing.T) {
	run := func(fixes FixSet) *World {
		w := NewWorld(1)
		StandardStack(w, OPII(), fixes)
		w.InjectAt(0, names.UEEMM, types.Message{Kind: types.MsgPowerOn})
		w.InjectAt(time.Second, names.UEGMM, types.Message{Kind: types.MsgInterSystemSwitchCommand})
		w.InjectAt(2*time.Second, names.UESM, types.Message{Kind: types.MsgDeactivatePDPRequest, Cause: types.CauseInsufficientResources})
		w.InjectAt(3*time.Second, names.UEEMM, types.Message{Kind: types.MsgInterSystemCellReselect})
		w.Run()
		return w
	}

	broken := run(FixSet{})
	if broken.Global(names.GDetachedByNet) != 1 {
		t.Fatal("defective stack: device not detached (S1 not reproduced)")
	}

	fixed := run(AllFixes())
	if fixed.Global(names.GDetachedByNet) != 0 {
		t.Fatal("fixed stack: device detached despite fixes")
	}
	if fixed.Global(names.GEPS) != 1 {
		t.Fatal("fixed stack: EPS bearer not reactivated")
	}
}

// The standard stack reproduces S6: an armed 3G LU failure detaches the
// returning 4G device unless the cross-system fix recovers it.
func TestStandardStackS6(t *testing.T) {
	run := func(fixes FixSet) *World {
		w := NewWorld(1)
		StandardStack(w, OPI(), fixes)
		w.InjectAt(0, names.UEEMM, types.Message{Kind: types.MsgPowerOn})
		w.InjectAt(time.Second, names.MSCMM, types.Message{Kind: types.MsgLUFailureSignal})
		// Mobility 4G→3G: RRC4G hands over and tells MM to update.
		w.InjectAt(2*time.Second, names.UERRC4G, types.Message{Kind: types.MsgNetSwitchOrder})
		w.InjectAt(10*time.Second, names.UEEMM, types.Message{Kind: types.MsgInterSystemCellReselect})
		w.Run()
		return w
	}

	broken := run(FixSet{})
	if broken.Global(names.GDetachedByNet) != 1 {
		t.Fatal("defective stack: S6 not reproduced")
	}
	fixed := run(AllFixes())
	if fixed.Global(names.GDetachedByNet) != 0 {
		t.Fatal("fixed stack: S6 still detaches")
	}
	if fixed.Global(names.GLUFail3G) != 0 {
		t.Fatal("fixed stack: LU failure not recovered")
	}
}

// SharedChannelFor wires profile overheads into the radio channel.
func TestSharedChannelFor(t *testing.T) {
	ch := SharedChannelFor(OPII(), FixSet{}, true)
	if !ch.Coupled || ch.VoiceOverheadFactor != OPII().VoiceOverheadUL {
		t.Fatalf("channel = %+v", ch)
	}
	dec := SharedChannelFor(OPII(), AllFixes(), false)
	if dec.Coupled {
		t.Fatal("decoupling fix not applied")
	}
}

// NodeID strings.
func TestNodeIDString(t *testing.T) {
	for _, n := range []NodeID{NodeDevice, NodeNetwork, NodeID(9)} {
		if n.String() == "" {
			t.Fatal("empty NodeID string")
		}
	}
}

// VoLTE (§2's deployment alternative): the same call scenario that
// strands a CSFB device on OP-II never leaves 4G.
func TestVoLTEStackAvoidsS3(t *testing.T) {
	w := NewWorld(1)
	VoLTEStack(w, OPII(), FixSet{})
	w.SetGlobal(names.GSys, int(types.Sys4G))
	w.SetGlobal(names.GReg4G, 1)
	w.InjectAt(0, names.UERRC4G, types.Message{Kind: types.MsgUserDataOn})
	w.InjectAt(time.Second, names.UECM, types.Message{Kind: types.MsgUserDialCall})
	w.RunUntil(10 * time.Second)
	if w.Global(names.GCallActive) != 1 {
		t.Fatal("VoLTE call not established")
	}
	if got := types.System(w.Global(names.GSys)); got != types.Sys4G {
		t.Fatalf("VoLTE call left 4G: %s", got)
	}
	// No S5 modulation downgrade either: the 3G shared channel is not
	// involved.
	if w.Global(names.GModulation) != 64 {
		t.Fatalf("modulation = %d during VoLTE call", w.Global(names.GModulation))
	}
	w.Inject(names.UECM, types.Message{Kind: types.MsgUserHangUp})
	w.Run()
	if w.Global(names.GWantReturn4G) != 0 {
		t.Fatal("VoLTE hang-up raised a return obligation")
	}
	if got := types.System(w.Global(names.GSys)); got != types.Sys4G {
		t.Fatalf("after VoLTE call: %s", got)
	}
}

// Signaling-load accounting: the attach flow loads the MME; per-element
// aggregation groups the core processes.
func TestSignalingLoadStats(t *testing.T) {
	w := NewWorld(1)
	StandardStack(w, OPI(), FixSet{})
	w.Inject(names.UEEMM, types.Message{Kind: types.MsgPowerOn})
	w.Run()
	load := w.ProcLoad()
	if load[names.MMEEMM] < 2 { // attach request + complete
		t.Fatalf("MME EMM load = %d", load[names.MMEEMM])
	}
	if load[names.UEEMM] < 2 { // power-on event + attach accept
		t.Fatalf("UE EMM load = %d", load[names.UEEMM])
	}
	el := w.ElementLoad()
	if el["mme"] != load[names.MMEEMM]+load[names.MMEESM] {
		t.Fatalf("element aggregation wrong: %v vs %v", el, load)
	}
	total := 0
	for _, n := range el {
		total += n
	}
	if total != w.Delivered {
		t.Fatalf("element totals %d != delivered %d", total, w.Delivered)
	}
	// The returned maps are copies.
	load[names.MMEEMM] = 999
	if w.ProcLoad()[names.MMEEMM] == 999 {
		t.Fatal("ProcLoad leaked internal map")
	}
}

// WireProcessingDelays makes location updates take the operator's
// measured multi-second time on the emulated MSC.
func TestProcessingDelays(t *testing.T) {
	run := func(wire bool) time.Duration {
		w := NewWorld(1)
		StandardStack(w, OPI(), FixSet{})
		if wire {
			WireProcessingDelays(w, OPI())
		}
		w.SetGlobal(names.GSys, int(types.Sys3G))
		w.Inject(names.UEMM, types.Message{Kind: types.MsgPowerOn})
		w.Run()
		return w.Sim.Now()
	}
	fast := run(false)
	slow := run(true)
	if fast > time.Second {
		t.Fatalf("unwired LAU took %v", fast)
	}
	// OP-I LAUs take 2–4 s (Figure 8a).
	if slow < 2*time.Second {
		t.Fatalf("wired LAU took %v, want ≥2s", slow)
	}
}

// The signaling cost tables stay internally consistent: every element
// named, non-negative costs, and the composite procedures dominate
// their parts.
func TestSignalingCosts(t *testing.T) {
	if got := len(Elements()); got != int(NumElements) {
		t.Fatalf("Elements() = %d entries, want %d", got, NumElements)
	}
	for _, e := range Elements() {
		if e.String() == "?" {
			t.Fatalf("element %d unnamed", e)
		}
	}
	if Element(99).String() != "?" {
		t.Fatal("out-of-range element must render as ?")
	}
	c := DefaultSignalingCosts()
	for name, pc := range map[string]ProcedureCost{
		"attach": c.Attach, "detach": c.Detach, "service": c.ServiceRequest,
		"tau": c.TAU, "rau": c.RAU, "switch": c.InterSystemSwitch,
		"csfb": c.CSFBCall, "cs": c.CSCall,
	} {
		if pc.Total() <= 0 {
			t.Errorf("%s: no signaling cost", name)
		}
		for e, v := range pc {
			if v < 0 {
				t.Errorf("%s: negative cost at %v", name, Element(e))
			}
		}
	}
	// A CSFB call must cost strictly more than a plain CS call (it adds
	// the fallback and the LAU), and the switch must touch the SGSN.
	if c.CSFBCall.Total() <= c.CSCall.Total() {
		t.Error("CSFB call not costlier than a CS call")
	}
	if c.InterSystemSwitch[ElemSGSN] == 0 {
		t.Error("inter-system switch bypasses the SGSN")
	}
	for _, cap := range DefaultElementCapacity() {
		if cap <= 0 {
			t.Fatal("non-positive element capacity")
		}
	}
}
