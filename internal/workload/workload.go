// Package workload provides the traffic generation and throughput
// measurement used by the rate experiments: bulk (Speedtest-style)
// transfers for Figure 9, VoIP-like small-packet flows for Figure 13,
// and the per-call affected-volume accounting of §7's S5 row.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"cnetverifier/internal/radio"
)

// Episode is an interval during which the channel offers a constant
// rate to the flow.
type Episode struct {
	Dur  time.Duration
	Rate radio.Mbps
}

// TransferredMB integrates the data moved over the episodes, in
// megabytes.
func TransferredMB(eps []Episode) float64 {
	total := 0.0
	for _, e := range eps {
		total += e.Rate * e.Dur.Seconds() / 8 // Mbit/s × s → MB
	}
	return total
}

// AverageMbps returns the time-weighted mean rate over the episodes.
func AverageMbps(eps []Episode) radio.Mbps {
	var num, den float64
	for _, e := range eps {
		num += e.Rate * e.Dur.Seconds()
		den += e.Dur.Seconds()
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// SpeedtestResult is one §3.3-style uplink/downlink measurement.
type SpeedtestResult struct {
	AvgMbps radio.Mbps
	MB      float64
	Dur     time.Duration
}

func (r SpeedtestResult) String() string {
	return fmt.Sprintf("%.2f Mbps over %v (%.1f MB)", r.AvgMbps, r.Dur, r.MB)
}

// Speedtest runs a saturating bulk transfer for dur, sampling the
// channel capacity every step.
func Speedtest(capacity func(at time.Duration) radio.Mbps, dur, step time.Duration) SpeedtestResult {
	if step <= 0 {
		step = time.Second
	}
	var eps []Episode
	for at := time.Duration(0); at < dur; at += step {
		d := step
		if at+step > dur {
			d = dur - at
		}
		eps = append(eps, Episode{Dur: d, Rate: capacity(at)})
	}
	return SpeedtestResult{AvgMbps: AverageMbps(eps), MB: TransferredMB(eps), Dur: dur}
}

// CBR describes a constant-bit-rate flow (the 200 kbps UDP session of
// §5.3.2, or a 12.2 kbps AMR voice stream).
type CBR struct {
	RateMbps    radio.Mbps
	PacketBytes int
}

// PacketInterval returns the inter-packet gap.
func (c CBR) PacketInterval() time.Duration {
	if c.RateMbps <= 0 || c.PacketBytes <= 0 {
		return 0
	}
	bitsPerPacket := float64(c.PacketBytes * 8)
	pps := c.RateMbps * 1e6 / bitsPerPacket
	return time.Duration(float64(time.Second) / pps)
}

// Achieved returns the rate the flow actually achieves on a channel of
// the given capacity: a CBR flow never exceeds its own rate.
func (c CBR) Achieved(capacity radio.Mbps) radio.Mbps {
	if capacity < c.RateMbps {
		return capacity
	}
	return c.RateMbps
}

// VoiceFlow is the 3G CS voice stream (§6.2: best codec 12.2 kbps).
func VoiceFlow() CBR {
	return CBR{RateMbps: radio.CSVoiceRate, PacketBytes: 32}
}

// AffectedVolume computes §7's S5 accounting: the data volume
// transferred at the degraded rate during a call of the given
// duration, in kilobytes.
func AffectedVolume(degradedRate radio.Mbps, callDur time.Duration) float64 {
	return degradedRate * callDur.Seconds() / 8 * 1000 // Mbit/s × s → KB
}

// S5CallModel captures §7's per-call S5 accounting: how much data one
// 3G CS call degrades. Most affected calls carry light background
// traffic (tens of kbps); a small fraction rides a bulk transfer that
// saturates the degraded shared channel — the four heavy calls of the
// study. Every draw comes from the caller's generator, so population-
// scale harnesses stay deterministic end to end.
type S5CallModel struct {
	// MeanBaseSec/MeanExtraSec shape the call duration: base plus an
	// exponential tail (§7: mean ≈67 s), capped at CapSec.
	MeanBaseSec, MeanExtraSec, CapSec float64
	// BulkFraction is the share of calls carrying a bulk transfer
	// (≈4%: 4 of 113 observed moved over 4 MB).
	BulkFraction float64
	// LightMinMbps/LightSpanMbps bound the background-traffic rate
	// (5–23 kbps observed).
	LightMinMbps, LightSpanMbps radio.Mbps
	// LoadMin/LoadSpan bound the channel share a bulk transfer obtains.
	LoadMin, LoadSpan float64
	// MaxKB caps a single transfer (18.5 MB, the largest affected
	// volume the study observed).
	MaxKB float64
}

// DefaultS5CallModel returns the §7-calibrated model.
func DefaultS5CallModel() S5CallModel {
	return S5CallModel{
		MeanBaseSec:   30,
		MeanExtraSec:  37,
		CapSec:        480,
		BulkFraction:  0.035,
		LightMinMbps:  0.005,
		LightSpanMbps: 0.018,
		LoadMin:       0.05,
		LoadSpan:      0.25,
		MaxKB:         18.5 * 1024,
	}
}

// SampleAffected draws one affected call: its duration and the data
// volume (KB) moved at the degraded rate. bulkRate maps a channel load
// share to the degraded bulk rate (radio.SharedChannel.DataRateDL with
// the call active). The draw order — duration, bulk-or-light, then the
// rate — is part of the determinism contract shared with the §7
// experiment harness.
func (m S5CallModel) SampleAffected(rng *rand.Rand, bulkRate func(load float64) radio.Mbps) (dur time.Duration, kb float64) {
	dur = time.Duration((m.MeanBaseSec + rng.ExpFloat64()*m.MeanExtraSec) * float64(time.Second))
	if cap := time.Duration(m.CapSec * float64(time.Second)); dur > cap {
		dur = cap
	}
	var rate radio.Mbps
	if rng.Float64() < m.BulkFraction {
		rate = bulkRate(m.LoadMin + rng.Float64()*m.LoadSpan)
	} else {
		rate = m.LightMinMbps + radio.Mbps(rng.Float64())*m.LightSpanMbps
	}
	kb = AffectedVolume(rate, dur)
	if kb > m.MaxKB {
		kb = m.MaxKB
	}
	return dur, kb
}

// Jitter perturbs a rate by ±frac (uniform), modeling run-to-run
// variance in the Figure 9 measurements.
func Jitter(rate radio.Mbps, frac float64, rng *rand.Rand) radio.Mbps {
	if frac <= 0 {
		return rate
	}
	f := 1 + (rng.Float64()*2-1)*frac
	if f < 0 {
		f = 0
	}
	return rate * f
}
