// Package workload provides the traffic generation and throughput
// measurement used by the rate experiments: bulk (Speedtest-style)
// transfers for Figure 9, VoIP-like small-packet flows for Figure 13,
// and the per-call affected-volume accounting of §7's S5 row.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"cnetverifier/internal/radio"
)

// Episode is an interval during which the channel offers a constant
// rate to the flow.
type Episode struct {
	Dur  time.Duration
	Rate radio.Mbps
}

// TransferredMB integrates the data moved over the episodes, in
// megabytes.
func TransferredMB(eps []Episode) float64 {
	total := 0.0
	for _, e := range eps {
		total += e.Rate * e.Dur.Seconds() / 8 // Mbit/s × s → MB
	}
	return total
}

// AverageMbps returns the time-weighted mean rate over the episodes.
func AverageMbps(eps []Episode) radio.Mbps {
	var num, den float64
	for _, e := range eps {
		num += e.Rate * e.Dur.Seconds()
		den += e.Dur.Seconds()
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// SpeedtestResult is one §3.3-style uplink/downlink measurement.
type SpeedtestResult struct {
	AvgMbps radio.Mbps
	MB      float64
	Dur     time.Duration
}

func (r SpeedtestResult) String() string {
	return fmt.Sprintf("%.2f Mbps over %v (%.1f MB)", r.AvgMbps, r.Dur, r.MB)
}

// Speedtest runs a saturating bulk transfer for dur, sampling the
// channel capacity every step.
func Speedtest(capacity func(at time.Duration) radio.Mbps, dur, step time.Duration) SpeedtestResult {
	if step <= 0 {
		step = time.Second
	}
	var eps []Episode
	for at := time.Duration(0); at < dur; at += step {
		d := step
		if at+step > dur {
			d = dur - at
		}
		eps = append(eps, Episode{Dur: d, Rate: capacity(at)})
	}
	return SpeedtestResult{AvgMbps: AverageMbps(eps), MB: TransferredMB(eps), Dur: dur}
}

// CBR describes a constant-bit-rate flow (the 200 kbps UDP session of
// §5.3.2, or a 12.2 kbps AMR voice stream).
type CBR struct {
	RateMbps    radio.Mbps
	PacketBytes int
}

// PacketInterval returns the inter-packet gap.
func (c CBR) PacketInterval() time.Duration {
	if c.RateMbps <= 0 || c.PacketBytes <= 0 {
		return 0
	}
	bitsPerPacket := float64(c.PacketBytes * 8)
	pps := c.RateMbps * 1e6 / bitsPerPacket
	return time.Duration(float64(time.Second) / pps)
}

// Achieved returns the rate the flow actually achieves on a channel of
// the given capacity: a CBR flow never exceeds its own rate.
func (c CBR) Achieved(capacity radio.Mbps) radio.Mbps {
	if capacity < c.RateMbps {
		return capacity
	}
	return c.RateMbps
}

// VoiceFlow is the 3G CS voice stream (§6.2: best codec 12.2 kbps).
func VoiceFlow() CBR {
	return CBR{RateMbps: radio.CSVoiceRate, PacketBytes: 32}
}

// AffectedVolume computes §7's S5 accounting: the data volume
// transferred at the degraded rate during a call of the given
// duration, in kilobytes.
func AffectedVolume(degradedRate radio.Mbps, callDur time.Duration) float64 {
	return degradedRate * callDur.Seconds() / 8 * 1000 // Mbit/s × s → KB
}

// Jitter perturbs a rate by ±frac (uniform), modeling run-to-run
// variance in the Figure 9 measurements.
func Jitter(rate radio.Mbps, frac float64, rng *rand.Rand) radio.Mbps {
	if frac <= 0 {
		return rate
	}
	f := 1 + (rng.Float64()*2-1)*frac
	if f < 0 {
		f = 0
	}
	return rate * f
}
