package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"cnetverifier/internal/radio"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTransferredMB(t *testing.T) {
	eps := []Episode{
		{Dur: 8 * time.Second, Rate: 1},  // 1 MB
		{Dur: 4 * time.Second, Rate: 10}, // 5 MB
	}
	if got := TransferredMB(eps); !almost(got, 6, 1e-9) {
		t.Fatalf("transferred = %v, want 6", got)
	}
	if TransferredMB(nil) != 0 {
		t.Fatal("empty transfer != 0")
	}
}

func TestAverageMbps(t *testing.T) {
	eps := []Episode{
		{Dur: time.Second, Rate: 10},
		{Dur: 3 * time.Second, Rate: 2},
	}
	if got := AverageMbps(eps); !almost(got, 4, 1e-9) {
		t.Fatalf("avg = %v, want 4", got)
	}
	if AverageMbps(nil) != 0 {
		t.Fatal("empty avg != 0")
	}
}

func TestSpeedtest(t *testing.T) {
	// Capacity halves after 5 s.
	capFn := func(at time.Duration) radio.Mbps {
		if at < 5*time.Second {
			return 20
		}
		return 10
	}
	r := Speedtest(capFn, 10*time.Second, time.Second)
	if !almost(r.AvgMbps, 15, 1e-9) {
		t.Fatalf("avg = %v, want 15", r.AvgMbps)
	}
	if !almost(r.MB, 15*10.0/8, 1e-9) {
		t.Fatalf("MB = %v", r.MB)
	}
	if r.String() == "" {
		t.Fatal("empty string")
	}
	// Default step and a non-integral tail.
	r2 := Speedtest(func(time.Duration) radio.Mbps { return 8 }, 2500*time.Millisecond, 0)
	if !almost(r2.AvgMbps, 8, 1e-9) {
		t.Fatalf("avg = %v", r2.AvgMbps)
	}
	if !almost(r2.MB, 2.5, 1e-9) {
		t.Fatalf("MB = %v, want 2.5", r2.MB)
	}
}

func TestCBR(t *testing.T) {
	// §5.3.2's 200 kbps UDP session.
	c := CBR{RateMbps: 0.2, PacketBytes: 1000}
	// 0.2 Mbps / 8000 bits per packet = 25 pps → 40 ms.
	if got := c.PacketInterval(); got != 40*time.Millisecond {
		t.Fatalf("interval = %v, want 40ms", got)
	}
	if c.Achieved(10) != 0.2 {
		t.Fatal("CBR exceeded its own rate")
	}
	if c.Achieved(0.1) != 0.1 {
		t.Fatal("CBR not capacity-limited")
	}
	if (CBR{}).PacketInterval() != 0 {
		t.Fatal("zero CBR interval != 0")
	}
}

func TestVoiceFlow(t *testing.T) {
	v := VoiceFlow()
	if v.RateMbps != radio.CSVoiceRate {
		t.Fatalf("voice rate = %v", v.RateMbps)
	}
	if v.PacketInterval() <= 0 {
		t.Fatal("voice packet interval invalid")
	}
	// Voice always fits any realistic channel.
	if v.Achieved(radio.QAM16.PeakDL()) != radio.CSVoiceRate {
		t.Fatal("voice throttled on a normal channel")
	}
}

// §7 S5 accounting: a 67 s call at a degraded rate moving ≈368 KB
// implies an effective degraded rate ≈44 kbps of affected traffic.
func TestAffectedVolume(t *testing.T) {
	kb := AffectedVolume(0.044, 67*time.Second)
	if kb < 300 || kb > 450 {
		t.Fatalf("affected volume = %.0f KB, want ≈368", kb)
	}
	if AffectedVolume(0, time.Minute) != 0 {
		t.Fatal("zero rate affected != 0")
	}
}

func TestJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		r := Jitter(10, 0.2, rng)
		if r < 8-1e-9 || r > 12+1e-9 {
			t.Fatalf("jittered rate %v out of ±20%%", r)
		}
	}
	if Jitter(10, 0, rng) != 10 {
		t.Fatal("zero jitter changed rate")
	}
	// Mean preserved.
	sum := 0.0
	for i := 0; i < 20000; i++ {
		sum += Jitter(10, 0.3, rng)
	}
	if mean := sum / 20000; !almost(mean, 10, 0.1) {
		t.Fatalf("jitter mean = %v", mean)
	}
}

// The S5 call model stays inside its documented envelope and is a pure
// function of the caller's generator.
func TestS5CallModel(t *testing.T) {
	m := DefaultS5CallModel()
	bulk := func(load float64) radio.Mbps { return radio.Mbps(load) * 11 } // 16QAM-ish
	rng := rand.New(rand.NewSource(9))
	var bulky int
	for i := 0; i < 5000; i++ {
		dur, kb := m.SampleAffected(rng, bulk)
		if dur < time.Duration(m.MeanBaseSec*float64(time.Second)) || dur > time.Duration(m.CapSec*float64(time.Second)) {
			t.Fatalf("duration %v outside [%.0fs, %.0fs]", dur, m.MeanBaseSec, m.CapSec)
		}
		if kb < 0 || kb > m.MaxKB {
			t.Fatalf("affected %v KB outside [0, %.0f]", kb, m.MaxKB)
		}
		if kb > 4096 {
			bulky++
		}
	}
	if bulky == 0 {
		t.Fatal("no bulk transfers in 5000 calls at 3.5% bulk fraction")
	}
	// Same seed, same stream.
	a := rand.New(rand.NewSource(4))
	b := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		da, ka := m.SampleAffected(a, bulk)
		db, kb2 := m.SampleAffected(b, bulk)
		if da != db || ka != kb2 {
			t.Fatalf("equal seeds diverged at draw %d", i)
		}
	}
}
