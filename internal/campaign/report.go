package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"cnetverifier/internal/netemu"
	"cnetverifier/internal/stats"
	"cnetverifier/internal/validate"
)

// findingNames are the Table 5 rows in index order.
var findingNames = [numFindings]string{"S1", "S2", "S3", "S4", "S5", "S6"}

// Params is the report's identity block: the configuration the numbers
// are a pure function of. Workers is deliberately absent — the worker
// count must not change the report.
type Params struct {
	UEs          int     `json:"ues"`
	Frac4G       float64 `json:"frac_4g"`
	HorizonSec   float64 `json:"horizon_sec"`
	TickSec      float64 `json:"tick_sec"`
	BucketSec    float64 `json:"bucket_sec"`
	Seed         int64   `json:"seed"`
	ShardSize    int     `json:"shard_size"`
	PInterSystem float64 `json:"p_inter_system"`
	Attach       string  `json:"attach"`
	Detach       string  `json:"detach"`
	Service      string  `json:"service"`
	Handover     string  `json:"handover"`
	Call         string  `json:"call"`
}

// Totals are the population-wide event counts.
type Totals struct {
	Attaches   int64   `json:"attaches"`
	Detaches   int64   `json:"detaches"`
	Services   int64   `json:"services"`
	Handovers  int64   `json:"handovers"`
	Calls      int64   `json:"calls"`
	CSFBCalls  int64   `json:"csfb_calls"`
	Switches   int64   `json:"switches"`
	Msgs       int64   `json:"msgs"`
	AffectedKB float64 `json:"affected_kb"`
}

// ElementLoad summarizes one core element's signaling load over the
// horizon: arrival rates against its service capacity, and the queue
// occupancy of a per-bucket fluid model
// (q ← max(0, q + arrivals − capacity·bucket)).
type ElementLoad struct {
	Element     string  `json:"element"`
	Msgs        int64   `json:"msgs"`
	MeanRate    float64 `json:"mean_rate"`
	PeakRate    float64 `json:"peak_rate"`
	Capacity    float64 `json:"capacity"`
	Utilization float64 `json:"utilization"`
	MeanQueue   float64 `json:"mean_queue"`
	PeakQueue   float64 `json:"peak_queue"`
}

// OccurrenceRow is one Table 5 finding at population scale, with a
// Wilson 95% interval over the exposure denominator.
type OccurrenceRow struct {
	Finding  string  `json:"finding"`
	Events   int64   `json:"events"`
	Exposure int64   `json:"exposure"`
	Rate     float64 `json:"rate"`
	CILow    float64 `json:"ci_low"`
	CIHigh   float64 `json:"ci_high"`
}

// Report is the campaign artifact: identity, totals, per-element load,
// and the S1–S6 occurrence table. The per-bucket series backing the
// element summaries is kept unexported and streamed via WriteSeriesCSV
// rather than embedded — at 10^6 UEs and 1 s buckets it dwarfs the
// summary.
type Report struct {
	Params      Params          `json:"params"`
	Totals      Totals          `json:"totals"`
	Elements    []ElementLoad   `json:"elements"`
	Occurrences []OccurrenceRow `json:"occurrences"`

	series [netemu.NumElements][]int64
}

// buildReport merges the per-shard accumulators in shard order and
// computes the derived summaries.
func buildReport(cfg Config, accs []shardAcc, nBuckets int) *Report {
	r := &Report{
		Params: Params{
			UEs:          cfg.UEs,
			Frac4G:       cfg.Frac4G,
			HorizonSec:   cfg.Horizon.Seconds(),
			TickSec:      cfg.Tick.Seconds(),
			BucketSec:    cfg.Bucket.Seconds(),
			Seed:         cfg.Seed,
			ShardSize:    cfg.ShardSize,
			PInterSystem: cfg.PInterSystem,
			Attach:       cfg.Arrivals.Attach.String(),
			Detach:       cfg.Arrivals.Detach.String(),
			Service:      cfg.Arrivals.Service.String(),
			Handover:     cfg.Arrivals.Handover.String(),
			Call:         cfg.Arrivals.Call.String(),
		},
	}
	var procs [numProcs]int64
	var events, exposure [numFindings]int64
	for e := range r.series {
		r.series[e] = make([]int64, nBuckets)
	}
	for _, a := range accs {
		for p := range procs {
			procs[p] += a.procs[p]
		}
		for f := 0; f < numFindings; f++ {
			events[f] += a.events[f]
			exposure[f] += a.exposure[f]
		}
		r.Totals.CSFBCalls += a.csfbCalls
		r.Totals.Switches += a.switches
		r.Totals.Msgs += a.msgs
		r.Totals.AffectedKB += a.affectedKB
		for e := range a.load {
			for b, v := range a.load[e] {
				r.series[e][b] += v
			}
		}
	}
	r.Totals.Attaches = procs[ProcAttach]
	r.Totals.Detaches = procs[ProcDetach]
	r.Totals.Services = procs[ProcService]
	r.Totals.Handovers = procs[ProcHandover]
	r.Totals.Calls = procs[ProcCall]

	bucketSec := cfg.Bucket.Seconds()
	horizonSec := cfg.Horizon.Seconds()
	for _, el := range netemu.Elements() {
		cap := cfg.Capacity[el]
		var msgs, peak int64
		var q, qSum, qPeak float64
		for _, v := range r.series[el] {
			msgs += v
			if v > peak {
				peak = v
			}
			q += float64(v) - cap*bucketSec
			if q < 0 {
				q = 0
			}
			qSum += q
			if q > qPeak {
				qPeak = q
			}
		}
		load := ElementLoad{
			Element:   el.String(),
			Msgs:      msgs,
			Capacity:  cap,
			PeakRate:  float64(peak) / bucketSec,
			MeanQueue: qSum / float64(nBuckets),
			PeakQueue: qPeak,
		}
		if horizonSec > 0 {
			load.MeanRate = float64(msgs) / horizonSec
		}
		if cap > 0 {
			load.Utilization = load.MeanRate / cap
		}
		r.Elements = append(r.Elements, load)
	}

	for f := 0; f < numFindings; f++ {
		row := OccurrenceRow{
			Finding:  findingNames[f],
			Events:   events[f],
			Exposure: exposure[f],
		}
		if row.Exposure > 0 {
			row.Rate = float64(row.Events) / float64(row.Exposure)
		}
		row.CILow, row.CIHigh = stats.Wilson(int(row.Events), int(row.Exposure), stats.Z95)
		r.Occurrences = append(r.Occurrences, row)
	}
	return r
}

// JSON renders the report (params, totals, element loads, occurrence
// table) with a trailing newline.
func (r *Report) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic("campaign: marshal report: " + err.Error())
	}
	return string(b) + "\n"
}

// DecodeJSON parses a Report.JSON rendering. Unknown fields fail
// loudly, mirroring the validate sweep codec.
func DecodeJSON(data []byte) (*Report, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("campaign: decode report JSON: %w", err)
	}
	return &r, nil
}

// csvFields is the occurrence-row schema, derived from the json tags so
// the JSON and CSV renderings cannot drift apart.
func csvFields() []string { return validate.CSVFields(OccurrenceRow{}) }

// CSVHeader returns the occurrence CSV header (no trailing newline).
func CSVHeader() string { return strings.Join(csvFields(), ",") }

// RenderRow renders one occurrence row as a CSV line (no newline).
// Floats use the shortest round-tripping form, so
// ParseRow(RenderRow(r)) == r exactly.
func RenderRow(row OccurrenceRow) string {
	return strings.Join([]string{
		row.Finding,
		strconv.FormatInt(row.Events, 10),
		strconv.FormatInt(row.Exposure, 10),
		ftoa(row.Rate),
		ftoa(row.CILow),
		ftoa(row.CIHigh),
	}, ",")
}

// ParseRow parses one occurrence CSV line.
func ParseRow(line string) (OccurrenceRow, error) {
	var row OccurrenceRow
	cols := strings.Split(line, ",")
	if len(cols) != len(csvFields()) {
		return row, fmt.Errorf("campaign: occurrence row has %d columns, want %d", len(cols), len(csvFields()))
	}
	row.Finding = cols[0]
	if strings.ContainsAny(row.Finding, ",\n\r") || row.Finding == "" {
		return row, fmt.Errorf("campaign: bad finding %q", row.Finding)
	}
	var err error
	if row.Events, err = strconv.ParseInt(cols[1], 10, 64); err != nil {
		return row, fmt.Errorf("campaign: bad events %q", cols[1])
	}
	if row.Exposure, err = strconv.ParseInt(cols[2], 10, 64); err != nil {
		return row, fmt.Errorf("campaign: bad exposure %q", cols[2])
	}
	for i, dst := range []*float64{&row.Rate, &row.CILow, &row.CIHigh} {
		v, err := strconv.ParseFloat(cols[3+i], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return row, fmt.Errorf("campaign: bad %s %q", csvFields()[3+i], cols[3+i])
		}
		*dst = v
	}
	return row, nil
}

// CSV renders the occurrence table with header and trailing newline.
func (r *Report) CSV() string {
	var b strings.Builder
	b.WriteString(CSVHeader())
	b.WriteByte('\n')
	for _, row := range r.Occurrences {
		b.WriteString(RenderRow(row))
		b.WriteByte('\n')
	}
	return b.String()
}

// DecodeCSV parses a Report.CSV rendering back into occurrence rows.
// The header must match exactly.
func DecodeCSV(data string) ([]OccurrenceRow, error) {
	lines := strings.Split(strings.TrimRight(data, "\n"), "\n")
	if len(lines) == 0 || lines[0] != CSVHeader() {
		return nil, fmt.Errorf("campaign: CSV header %q does not match %q", lines[0], CSVHeader())
	}
	rows := make([]OccurrenceRow, 0, len(lines)-1)
	for ln, line := range lines[1:] {
		row, err := ParseRow(line)
		if err != nil {
			return nil, fmt.Errorf("campaign: CSV row %d: %w", ln+2, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table renders a human-readable summary.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d UEs, %.0f s horizon, seed %d\n",
		r.Params.UEs, r.Params.HorizonSec, r.Params.Seed)
	fmt.Fprintf(&b, "procedures: %d attach, %d detach, %d service, %d handover, %d call (%d CSFB), %d switches\n",
		r.Totals.Attaches, r.Totals.Detaches, r.Totals.Services,
		r.Totals.Handovers, r.Totals.Calls, r.Totals.CSFBCalls, r.Totals.Switches)
	fmt.Fprintf(&b, "signaling: %d msgs, S5 affected volume %.1f KB\n\n", r.Totals.Msgs, r.Totals.AffectedKB)
	fmt.Fprintf(&b, "%-6s %12s %10s %10s %6s %12s %12s\n",
		"elem", "msgs", "mean/s", "peak/s", "util", "mean queue", "peak queue")
	for _, e := range r.Elements {
		fmt.Fprintf(&b, "%-6s %12d %10.1f %10.1f %5.0f%% %12.1f %12.1f\n",
			e.Element, e.Msgs, e.MeanRate, e.PeakRate, 100*e.Utilization, e.MeanQueue, e.PeakQueue)
	}
	fmt.Fprintf(&b, "\n%-8s %12s %12s %8s %18s\n", "finding", "events", "exposure", "rate", "95% CI")
	for _, o := range r.Occurrences {
		fmt.Fprintf(&b, "%-8s %12d %12d %7.2f%% [%6.2f%%, %6.2f%%]\n",
			o.Finding, o.Events, o.Exposure, 100*o.Rate, 100*o.CILow, 100*o.CIHigh)
	}
	return b.String()
}

// WriteSeriesCSV streams the per-bucket element arrival series
// (bucket index, then one msgs column per element) without
// materializing the whole rendering — the path sized for 10^6-UE
// campaigns with long horizons.
func (r *Report) WriteSeriesCSV(w io.Writer) error {
	cols := []string{"bucket"}
	for _, el := range netemu.Elements() {
		cols = append(cols, strings.ToLower(el.String())+"_msgs")
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	n := 0
	for _, s := range r.series {
		if len(s) > n {
			n = len(s)
		}
	}
	var line []byte
	for b := 0; b < n; b++ {
		line = line[:0]
		line = strconv.AppendInt(line, int64(b), 10)
		for e := range r.series {
			line = append(line, ',')
			var v int64
			if b < len(r.series[e]) {
				v = r.series[e][b]
			}
			line = strconv.AppendInt(line, v, 10)
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}
