package campaign

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cnetverifier/internal/stats"
)

// testDists covers every distribution family at the parameter scales
// the campaign uses.
func testDists() []Dist {
	return []Dist{
		Fixed{Sec: 42},
		Uniform{Lo: 10, Hi: 70},
		Exp{MeanSec: 600},
		LogNormal{Mu: 5.897, Sigma: 1.0},
		Weibull{K: 0.7, Lambda: 900},
		Weibull{K: 1.5, Lambda: 300},
	}
}

// TestDistMoments checks every sampler's empirical mean and variance
// against its analytic moments. Tolerances scale with the standard
// error of each estimator, so the test is a genuine distribution check
// rather than a loose smoke test.
func TestDistMoments(t *testing.T) {
	const n = 200000
	for _, d := range testDists() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			var w stats.Welford
			for i := 0; i < n; i++ {
				v := d.Sample(rng)
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("sample %d = %v out of range", i, v)
				}
				w.Add(v)
			}
			mean, vari := d.Mean(), d.Variance()
			// Standard error of the mean is sqrt(var/n); allow 6 sigma
			// plus a sliver of absolute slack for the degenerate cases.
			seMean := math.Sqrt(vari/n)*6 + 1e-9
			if got := w.Mean(); math.Abs(got-mean) > seMean {
				t.Errorf("mean = %v, want %v ± %v", got, mean, seMean)
			}
			// The variance estimator's own variance involves the fourth
			// moment; a 15%% relative band is tight enough to catch a
			// mis-derived Variance() while staying robust for the
			// heavy-tailed families at this n.
			if vari > 0 {
				if got := w.Variance(); math.Abs(got-vari) > 0.15*vari {
					t.Errorf("variance = %v, want %v ± 15%%", got, vari)
				}
			} else if got := w.Variance(); got != 0 {
				t.Errorf("variance = %v, want exactly 0", got)
			}
		})
	}
}

// TestDistDeterminism: equal seeds yield byte-identical sample streams;
// different seeds diverge (for the non-degenerate families).
func TestDistDeterminism(t *testing.T) {
	for _, d := range testDists() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			a := rand.New(rand.NewSource(11))
			b := rand.New(rand.NewSource(11))
			c := rand.New(rand.NewSource(12))
			diverged := false
			for i := 0; i < 1000; i++ {
				va, vb, vc := d.Sample(a), d.Sample(b), d.Sample(c)
				if va != vb {
					t.Fatalf("sample %d: equal seeds diverged: %v vs %v", i, va, vb)
				}
				if va != vc {
					diverged = true
				}
			}
			if _, degenerate := d.(Fixed); !degenerate && !diverged {
				t.Errorf("seeds 11 and 12 produced identical streams")
			}
		})
	}
}

// TestParseDistRoundTrip: String() is in the grammar ParseDist accepts,
// and parsing it reconstructs the identical distribution. Parameters
// are drawn by testing/quick across each family's valid domain.
func TestParseDistRoundTrip(t *testing.T) {
	pos := func(v float64) float64 { return math.Abs(math.Mod(v, 1e6)) + 1e-3 }
	makers := []func(a, b float64) Dist{
		func(a, _ float64) Dist { return Fixed{Sec: pos(a)} },
		func(a, b float64) Dist { lo := pos(a); return Uniform{Lo: lo, Hi: lo + pos(b)} },
		func(a, _ float64) Dist { return Exp{MeanSec: pos(a)} },
		func(a, b float64) Dist { return LogNormal{Mu: math.Mod(a, 20), Sigma: pos(b)} },
		func(a, b float64) Dist { return Weibull{K: pos(a)/1e5 + 0.1, Lambda: pos(b)} },
	}
	for i, mk := range makers {
		mk := mk
		prop := func(a, b float64) bool {
			d := mk(a, b)
			got, err := ParseDist(d.String())
			if err != nil {
				t.Logf("ParseDist(%q): %v", d.String(), err)
				return false
			}
			return got == d && got.String() == d.String()
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(int64(i)))}); err != nil {
			t.Errorf("maker %d: %v", i, err)
		}
	}
}

// TestParseDistRejects: malformed specs fail loudly.
func TestParseDistRejects(t *testing.T) {
	for _, spec := range []string{
		"", "bogus:1", "fixed:", "fixed:-1", "fixed:NaN", "uniform:5,1",
		"uniform:-1,2", "exp:0", "exp:-3", "lognormal:1", "lognormal:1,0",
		"weibull:0,1", "weibull:1,0", "exp:1e999", "fixed:1,2junk", "exp:Inf",
	} {
		if d, err := ParseDist(spec); err == nil {
			t.Errorf("ParseDist(%q) = %v, want error", spec, d)
		}
	}
	// Trailing junk beyond the arity a family consumes is tolerated only
	// if it parses; make sure the accepted forms do parse.
	for _, spec := range []string{
		"fixed:0", "uniform:1,1", "exp:600", "lognormal:-2,0.5", "weibull:0.7,900",
		" EXP:600", "uniform: 1 , 2 ",
	} {
		if _, err := ParseDist(spec); err != nil {
			t.Errorf("ParseDist(%q): %v", spec, err)
		}
	}
}
