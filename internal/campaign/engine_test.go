package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"
	"time"
)

// matrixConfig is the race-sized campaign the determinism matrix runs:
// several shards (so the atomic cursor actually contends), a couple of
// minutes of horizon, and every procedure family active.
func matrixConfig(seed int64) Config {
	return Config{
		UEs:       2000,
		ShardSize: 256, // 8 shards
		Horizon:   2 * time.Minute,
		Seed:      seed,
		Arrivals: Arrivals{
			// Compressed inter-arrivals so the short horizon still fires
			// thousands of procedures of every kind.
			Attach:   Exp{MeanSec: 300},
			Detach:   Exp{MeanSec: 600},
			Service:  LogNormal{Mu: 2.6, Sigma: 0.8},
			Handover: Exp{MeanSec: 45},
			Call:     Exp{MeanSec: 90},
		},
	}
}

// seriesDigest hashes the streamed per-bucket element-load series.
func seriesDigest(t *testing.T, r *Report) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteSeriesCSV(&b); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// TestCampaignWorkerMatrix is the determinism matrix: every worker
// count must produce byte-identical occurrence reports and identical
// element-load digests, per seed — the campaign analogue of the
// TestSym* canonicalization matrices. Run under -race in CI, it also
// exercises the shard-claiming cursor for data races.
func TestCampaignWorkerMatrix(t *testing.T) {
	for _, seed := range []int64{1, 99} {
		base, err := Run(matrixConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		if base.Totals.Msgs == 0 {
			t.Fatalf("seed %d: campaign emitted no signaling", seed)
		}
		baseJSON, baseCSV, baseDigest := base.JSON(), base.CSV(), seriesDigest(t, base)
		for _, workers := range []int{2, 8} {
			cfg := matrixConfig(seed)
			cfg.Workers = workers
			r, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := r.JSON(); got != baseJSON {
				t.Errorf("seed %d workers %d: JSON differs from single-worker run", seed, workers)
			}
			if got := r.CSV(); got != baseCSV {
				t.Errorf("seed %d workers %d: CSV differs from single-worker run", seed, workers)
			}
			if got := seriesDigest(t, r); got != baseDigest {
				t.Errorf("seed %d workers %d: element-load series digest %s != %s", seed, workers, got, baseDigest)
			}
		}
	}
}

// TestCampaignShardSizeChangesDeal documents that ShardSize is part of
// the report identity (it re-deals the per-shard generators), unlike
// Workers which must never matter.
func TestCampaignShardSizeChangesDeal(t *testing.T) {
	a := matrixConfig(1)
	b := matrixConfig(1)
	b.ShardSize = 512
	ra, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.JSON() == rb.JSON() {
		t.Error("changing ShardSize left the report identical; params block must differ at minimum")
	}
}

// TestCampaignSanity checks the engine's internal accounting: totals
// reconcile across views, exposure denominators dominate event counts,
// and the mechanism rates land near their configured probabilities.
func TestCampaignSanity(t *testing.T) {
	cfg := matrixConfig(7)
	cfg.UEs = 5000
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var elemMsgs int64
	for _, e := range r.Elements {
		elemMsgs += e.Msgs
		if e.MeanRate < 0 || e.PeakRate < e.MeanRate {
			t.Errorf("%s: mean rate %v, peak %v", e.Element, e.MeanRate, e.PeakRate)
		}
		if e.PeakQueue < e.MeanQueue {
			t.Errorf("%s: mean queue %v above peak %v", e.Element, e.MeanQueue, e.PeakQueue)
		}
	}
	if elemMsgs != r.Totals.Msgs {
		t.Errorf("element msgs sum %d != total %d", elemMsgs, r.Totals.Msgs)
	}
	if r.Totals.CSFBCalls > r.Totals.Calls {
		t.Errorf("CSFB calls %d exceed calls %d", r.Totals.CSFBCalls, r.Totals.Calls)
	}
	for _, p := range []struct {
		name string
		n    int64
	}{
		{"attach", r.Totals.Attaches}, {"detach", r.Totals.Detaches},
		{"service", r.Totals.Services}, {"handover", r.Totals.Handovers},
		{"call", r.Totals.Calls},
	} {
		if p.n == 0 {
			t.Errorf("no %s procedures fired", p.name)
		}
	}
	for _, o := range r.Occurrences {
		if o.Events > o.Exposure {
			t.Errorf("%s: events %d exceed exposure %d", o.Finding, o.Events, o.Exposure)
		}
		if o.Rate < 0 || o.Rate > 1 || o.CILow > o.Rate || o.CIHigh < o.Rate {
			t.Errorf("%s: rate %v outside CI [%v, %v]", o.Finding, o.Rate, o.CILow, o.CIHigh)
		}
	}
	// S5 is the highest-rate Table 5 mechanism (~77%); with thousands
	// of 3G calls the campaign estimate must be in its neighborhood,
	// and every S5 event contributes affected data volume.
	s5 := r.Occurrences[4]
	if s5.Exposure < 100 {
		t.Fatalf("S5 exposure %d too small for a rate check", s5.Exposure)
	}
	if s5.Rate < 0.70 || s5.Rate > 0.85 {
		t.Errorf("S5 rate %v, want ≈0.774", s5.Rate)
	}
	if s5.Events > 0 && r.Totals.AffectedKB <= 0 {
		t.Error("S5 events recorded but no affected volume")
	}
}

// TestCampaignConfigValidation: malformed configs fail loudly.
func TestCampaignConfigValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"negative ues":    func(c *Config) { c.UEs = -1 },
		"frac4g over one": func(c *Config) { c.Frac4G = 1.5 },
		"bucket not tick-aligned": func(c *Config) {
			c.Tick = 300 * time.Millisecond
			c.Bucket = time.Second
		},
		"huge tick count": func(c *Config) {
			c.Tick = time.Nanosecond
			c.Horizon = time.Hour
		},
		"missing dist": func(c *Config) { c.Arrivals = Arrivals{Attach: Fixed{Sec: 1}} },
	} {
		cfg := matrixConfig(1)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted invalid config", name)
		}
	}
}

// maxAllocsPerUE is the checked-in allocation budget per UE session for
// a campaign run, covering session setup, wheel churn and accumulator
// merge. A 10000-UE run measures ≈0.6 allocs/UE (the engine's hot loop
// is allocation-free; the residue is shard setup and report
// assembly). The 2 allocs/UE budget leaves >2x headroom while still
// failing on any per-event allocation creeping into the loop, which
// would land at tens of allocs per UE.
const maxAllocsPerUE = 2.0

// TestCampaignAllocBudget is the allocation regression guard sized in
// allocs per UE session, in the style of TestScreenAllocBudget.
func TestCampaignAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	cfg := matrixConfig(3)
	cfg.UEs = 10000
	cfg.ShardSize = 2048
	if _, err := Run(cfg); err != nil { // warm: page in code paths
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	perUE := avg / float64(cfg.UEs)
	t.Logf("%d UEs: %.0f allocs/run, %.3f allocs/UE (budget %.1f)", cfg.UEs, avg, perUE, maxAllocsPerUE)
	if perUE > maxAllocsPerUE {
		t.Fatalf("campaign allocates %.3f allocs/UE, budget is %.1f: a per-event allocation crept into the hot loop", perUE, maxAllocsPerUE)
	}
}
