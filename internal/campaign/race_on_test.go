//go:build race

package campaign

// raceEnabled gates tests whose assertions (allocation counting) are
// meaningless under the race detector's instrumented allocator.
const raceEnabled = true
