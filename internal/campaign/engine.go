package campaign

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cnetverifier/internal/netemu"
	"cnetverifier/internal/radio"
	"cnetverifier/internal/userstudy"
	"cnetverifier/internal/workload"
)

// Proc enumerates the per-UE renewal processes a session runs.
type Proc int

const (
	// ProcAttach is a power-cycle / out-of-service recovery: the device
	// re-attaches (S2 exposure).
	ProcAttach Proc = iota
	// ProcDetach is a UE-initiated detach (airplane mode, power off).
	ProcDetach
	// ProcService is an idle-to-connected service request — the
	// dominant control-plane procedure at population scale.
	ProcService
	// ProcHandover is a mobility update: TAU (4G) or RAU (3G), with a
	// configurable fraction of 4G updates being 4G↔3G inter-system
	// switches (S1 exposure).
	ProcHandover
	// ProcCall is a voice call: CSFB for 4G sessions (S1/S3/S6
	// exposure), a plain CS call for 3G sessions (S4/S5 exposure).
	ProcCall
	numProcs
)

// procName names the processes in CSV/flag order.
var procNames = [numProcs]string{"attach", "detach", "service", "handover", "call"}

// Arrivals configures the per-procedure inter-arrival distributions.
type Arrivals struct {
	Attach, Detach, Service, Handover, Call Dist
}

// DefaultArrivals returns inter-arrival processes calibrated to the §7
// cohort volumes (attach/detach/call) and the control-plane traffic
// study's shapes for the high-rate procedures: log-normal
// service-request inter-arrivals (heavy-tailed diurnal bursts) and
// exponential mobility updates.
func DefaultArrivals() Arrivals {
	return Arrivals{
		// §7: 30 attaches over 20 users × 14 days → mean ≈806400 s.
		Attach: Exp{MeanSec: 806400},
		// ≈1/day: airplane mode or power-off.
		Detach: Exp{MeanSec: 86400},
		// Log-normal, mean ≈600 s (exp(5.897 + 1/2) ≈ 600).
		Service: LogNormal{Mu: 5.897, Sigma: 1.0},
		// ≈2 mobility updates/hour.
		Handover: Exp{MeanSec: 1800},
		// §7: ≈1.2 calls/user/day → mean ≈72000 s.
		Call: Exp{MeanSec: 72000},
	}
}

// Config parameterizes a campaign. The zero value is completed by
// withDefaults; every field participates in the report's params block,
// so two reports are comparable only when their params match.
type Config struct {
	// UEs is the population size (default 10000).
	UEs int
	// Frac4G is the fraction of 4G-capable UEs (§7 cohort: 12 of 20).
	Frac4G float64
	// Horizon is the simulated span (default 1h).
	Horizon time.Duration
	// Tick is the timer-wheel resolution (default 100ms).
	Tick time.Duration
	// Bucket is the load-accounting resolution (default 1s); must be a
	// multiple of Tick.
	Bucket time.Duration
	// Arrivals are the per-procedure inter-arrival processes.
	Arrivals Arrivals
	// PInterSystem is the probability a 4G mobility update is a 4G↔3G
	// inter-system switch rather than a TAU (§7: ≈56 of 436 switches
	// were not CSFB-caused).
	PInterSystem float64
	// Study supplies the S1–S6 mechanism trigger probabilities
	// (default userstudy.DefaultConfig).
	Study userstudy.Config
	// Costs maps procedures to per-element message counts.
	Costs netemu.SignalingCosts
	// Capacity is the per-element service rate (msgs/sec) for the
	// utilization and queue model.
	Capacity netemu.ElementCapacity
	// Workers bounds concurrency (default 1). Any worker count produces
	// the identical report: workers claim whole shards from an atomic
	// cursor and never share accumulators.
	Workers int
	// Seed is the campaign seed (default 1).
	Seed int64
	// ShardSize is the UE partition granularity (default 4096). It is
	// part of the report's identity: changing it re-deals the per-shard
	// generators.
	ShardSize int
}

func (c Config) withDefaults() (Config, error) {
	if c.UEs == 0 {
		c.UEs = 10000
	}
	if c.UEs < 0 {
		return c, fmt.Errorf("campaign: UEs = %d", c.UEs)
	}
	if c.Frac4G == 0 {
		c.Frac4G = 12.0 / 20
	}
	if c.Frac4G < 0 || c.Frac4G > 1 {
		return c, fmt.Errorf("campaign: Frac4G = %v out of [0,1]", c.Frac4G)
	}
	if c.Horizon == 0 {
		c.Horizon = time.Hour
	}
	if c.Tick == 0 {
		c.Tick = 100 * time.Millisecond
	}
	if c.Bucket == 0 {
		c.Bucket = time.Second
	}
	if c.Horizon < 0 || c.Tick <= 0 || c.Bucket <= 0 {
		return c, fmt.Errorf("campaign: non-positive horizon/tick/bucket")
	}
	if c.Bucket%c.Tick != 0 {
		return c, fmt.Errorf("campaign: bucket %v not a multiple of tick %v", c.Bucket, c.Tick)
	}
	if ticks := int64(c.Horizon / c.Tick); ticks > math.MaxInt32 {
		return c, fmt.Errorf("campaign: horizon %v at tick %v exceeds 2^31 ticks", c.Horizon, c.Tick)
	}
	if (c.Arrivals == Arrivals{}) {
		c.Arrivals = DefaultArrivals()
	}
	for _, d := range []struct {
		name string
		d    Dist
	}{
		{"attach", c.Arrivals.Attach}, {"detach", c.Arrivals.Detach},
		{"service", c.Arrivals.Service}, {"handover", c.Arrivals.Handover},
		{"call", c.Arrivals.Call},
	} {
		if d.d == nil {
			return c, fmt.Errorf("campaign: missing %s inter-arrival distribution", d.name)
		}
	}
	if c.PInterSystem == 0 {
		c.PInterSystem = 0.15
	}
	if c.PInterSystem < 0 || c.PInterSystem > 1 {
		return c, fmt.Errorf("campaign: PInterSystem = %v out of [0,1]", c.PInterSystem)
	}
	if (c.Study == userstudy.Config{}) {
		c.Study = userstudy.DefaultConfig()
	}
	if (c.Costs == netemu.SignalingCosts{}) {
		c.Costs = netemu.DefaultSignalingCosts()
	}
	if (c.Capacity == netemu.ElementCapacity{}) {
		c.Capacity = netemu.DefaultElementCapacity()
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ShardSize <= 0 {
		c.ShardSize = 4096
	}
	return c, nil
}

// session is one lightweight UE: its per-procedure due ticks and a
// flag byte. At 10^6 UEs the array stays a few tens of MB.
type session struct {
	next  [numProcs]int32 // due tick per procedure
	flags uint8
}

const (
	fIs4G = 1 << iota
	fOPII
	fRegistered
)

// tally indexes the S1–S6 occurrence accumulators.
const numFindings = 6

// shardAcc is one shard's private accumulator; shards are merged in
// index order after the workers drain.
type shardAcc struct {
	procs      [numProcs]int64 // occurrences that actually executed
	csfbCalls  int64           // subset of procs[ProcCall] on 4G UEs
	switches   int64           // inter-system switches (CSFB + mobility)
	events     [numFindings]int64
	exposure   [numFindings]int64
	affectedKB float64
	msgs       int64
	load       [netemu.NumElements][]int64 // per-bucket message arrivals
}

// shardSeed derives a shard's generator seed from everything that
// identifies it — never from scheduling.
func shardSeed(seed int64, shard int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "campaign|%d|%d", seed, shard)
	return int64(h.Sum64() & math.MaxInt64)
}

// Run executes the campaign and aggregates the report. The report is a
// pure function of the Config: any worker count yields byte-identical
// renderings.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	horizonTicks := int32(cfg.Horizon / cfg.Tick)
	ticksPerBucket := int32(cfg.Bucket / cfg.Tick)
	nBuckets := int(horizonTicks+ticksPerBucket-1) / int(ticksPerBucket)
	if nBuckets == 0 {
		nBuckets = 1
	}
	nShards := (cfg.UEs + cfg.ShardSize - 1) / cfg.ShardSize

	accs := make([]shardAcc, nShards)
	var cursor atomic.Int64
	workers := cfg.Workers
	if workers > nShards {
		workers = nShards
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(cursor.Add(1)) - 1
				if s >= nShards {
					return
				}
				lo := s * cfg.ShardSize
				hi := lo + cfg.ShardSize
				if hi > cfg.UEs {
					hi = cfg.UEs
				}
				simShard(cfg, s, hi-lo, horizonTicks, ticksPerBucket, nBuckets, &accs[s])
			}
		}()
	}
	wg.Wait()

	return buildReport(cfg, accs, nBuckets), nil
}

// simShard simulates one shard of UEs to the horizon. Everything it
// touches is shard-private; the only shared input is the Config.
func simShard(cfg Config, shard, n int, horizonTicks, ticksPerBucket int32, nBuckets int, acc *shardAcc) {
	rng := rand.New(rand.NewSource(shardSeed(cfg.Seed, shard)))
	for e := range acc.load {
		acc.load[e] = make([]int64, nBuckets)
	}
	sessions := make([]session, n)
	wh := newWheel()
	tickSec := cfg.Tick.Seconds()

	// The S5 affected-volume accounting shares the §7 per-call model:
	// the degraded bulk rate comes from the OP-II shared channel with
	// the call active (the configuration the study measured).
	s5 := workload.DefaultS5CallModel()
	ch := netemu.SharedChannelFor(netemu.OPII(), netemu.FixSet{}, false)
	ch.CallActive = true

	dists := [numProcs]Dist{
		ProcAttach:   cfg.Arrivals.Attach,
		ProcDetach:   cfg.Arrivals.Detach,
		ProcService:  cfg.Arrivals.Service,
		ProcHandover: cfg.Arrivals.Handover,
		ProcCall:     cfg.Arrivals.Call,
	}
	sampleGap := func(p Proc) int32 {
		sec := dists[p].Sample(rng)
		t := int64(sec / tickSec)
		if t < 1 {
			t = 1
		}
		if t > math.MaxInt32/2 {
			t = math.MaxInt32 / 2
		}
		return int32(t)
	}

	// Initialize: class draws, first arrivals, one wheel entry per UE.
	for i := range sessions {
		s := &sessions[i]
		s.flags = fRegistered // the §7 cohort starts attached
		if rng.Float64() < cfg.Frac4G {
			s.flags |= fIs4G
			if rng.Float64() < cfg.Study.POPIIUser {
				s.flags |= fOPII
			}
		}
		min := int32(math.MaxInt32)
		for p := Proc(0); p < numProcs; p++ {
			s.next[p] = sampleGap(p)
			if s.next[p] < min {
				min = s.next[p]
			}
		}
		if min < horizonTicks || min <= wheelSpan {
			wh.schedule(int32(i), min)
		}
	}

	emit := func(c netemu.ProcedureCost, bucket int32) {
		for e := 0; e < int(netemu.NumElements); e++ {
			if c[e] != 0 {
				acc.load[e][bucket] += int64(c[e])
				acc.msgs += int64(c[e])
			}
		}
	}

	for tick := int32(0); tick < horizonTicks; tick++ {
		batch := wh.advance(tick)
		if len(batch) == 0 {
			continue
		}
		bucket := tick / ticksPerBucket
		for _, te := range batch {
			s := &sessions[te.idx]
			min := int32(math.MaxInt32)
			for p := Proc(0); p < numProcs; p++ {
				if s.next[p] != tick {
					if s.next[p] < min {
						min = s.next[p]
					}
					continue
				}
				fireProc(cfg, p, s, rng, acc, bucket, emit, s5, ch)
				s.next[p] = tick + sampleGap(p)
				if s.next[p] < min {
					min = s.next[p]
				}
			}
			wh.schedule(te.idx, min)
		}
	}
}

// fireProc executes one procedure occurrence: state transition,
// signaling emission, and mechanism tallies. Draw order is fixed and
// documented by the userstudy samplers.
func fireProc(cfg Config, p Proc, s *session, rng *rand.Rand, acc *shardAcc,
	bucket int32, emit func(netemu.ProcedureCost, int32), s5 workload.S5CallModel, ch *radio.SharedChannel) {
	registered := s.flags&fRegistered != 0
	is4G := s.flags&fIs4G != 0
	switch p {
	case ProcAttach:
		// A restart re-attaches whether or not the session was
		// registered (§7's attaches are restarts and out-of-service
		// recoveries).
		acc.procs[ProcAttach]++
		emit(cfg.Costs.Attach, bucket)
		acc.exposure[1]++ // S2
		if cfg.Study.SampleAttach(rng) {
			acc.events[1]++
		}
		s.flags |= fRegistered
	case ProcDetach:
		if !registered {
			return
		}
		acc.procs[ProcDetach]++
		emit(cfg.Costs.Detach, bucket)
		s.flags &^= fRegistered
	case ProcService:
		if !registered {
			return
		}
		acc.procs[ProcService]++
		emit(cfg.Costs.ServiceRequest, bucket)
	case ProcHandover:
		if !registered {
			return
		}
		acc.procs[ProcHandover]++
		if !is4G {
			emit(cfg.Costs.RAU, bucket)
			return
		}
		if rng.Float64() < cfg.PInterSystem {
			acc.switches++
			emit(cfg.Costs.InterSystemSwitch, bucket)
			if sw := cfg.Study.SampleSwitch(rng); sw.DataOn {
				acc.exposure[0]++ // S1
				if sw.S1 {
					acc.events[0]++
				}
			}
			return
		}
		emit(cfg.Costs.TAU, bucket)
	case ProcCall:
		if !registered {
			return
		}
		acc.procs[ProcCall]++
		if is4G {
			acc.csfbCalls++
			acc.switches += 2 // fall to 3G and return
			emit(cfg.Costs.CSFBCall, bucket)
			out := cfg.Study.SampleCSFBCall(rng, s.flags&fOPII != 0)
			if out.S1Exposed {
				acc.exposure[0]++
				if out.S1 {
					acc.events[0]++
				}
			}
			if out.S3Exposed {
				acc.exposure[2]++
				if out.S3 {
					acc.events[2]++
				}
			}
			acc.exposure[5]++ // S6
			if out.S6 {
				acc.events[5]++
			}
			return
		}
		emit(cfg.Costs.CSCall, bucket)
		out := cfg.Study.SampleCSCall3G(rng)
		acc.exposure[4]++ // S5
		if out.S5 {
			acc.events[4]++
			_, kb := s5.SampleAffected(rng, ch.DataRateDL)
			acc.affectedKB += kb
		}
		if out.S4Exposed {
			acc.exposure[3]++
			if out.S4 {
				acc.events[3]++
			}
		}
	}
}
