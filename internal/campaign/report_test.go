package campaign

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden campaign fixtures")

// goldenConfig is the n=1000 campaign the golden fixtures pin down: any
// change to the samplers, the firing rules, the draw order, the queue
// model or the renderers shows up as a golden diff. Refresh
// intentionally with:
//
//	go test ./internal/campaign -run TestCampaignGolden -update
func goldenConfig() Config {
	return Config{
		UEs:       1000,
		ShardSize: 128,
		Horizon:   time.Minute,
		Seed:      42,
		Arrivals: Arrivals{
			Attach:   Exp{MeanSec: 240},
			Detach:   Exp{MeanSec: 480},
			Service:  LogNormal{Mu: 2.3, Sigma: 0.7},
			Handover: Exp{MeanSec: 30},
			Call:     Exp{MeanSec: 60},
		},
	}
}

// TestCampaignGolden pins the three renderings of a small campaign —
// report JSON, occurrence CSV, and the streamed element-load series —
// against checked-in fixtures.
func TestCampaignGolden(t *testing.T) {
	r, err := Run(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var series strings.Builder
	if err := r.WriteSeriesCSV(&series); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		got  string
	}{
		{"campaign_n1000.json", r.JSON()},
		{"campaign_n1000.csv", r.CSV()},
		{"campaign_n1000_series.csv", series.String()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", tc.name)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(tc.got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if tc.got != string(want) {
				t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", tc.got, want)
			}
		})
	}
}

// TestReportJSONRoundTrip: DecodeJSON inverts JSON on the exported
// report, and rejects schema drift.
func TestReportJSONRoundTrip(t *testing.T) {
	r, err := Run(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON([]byte(r.JSON()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Params, r.Params) || !reflect.DeepEqual(back.Totals, r.Totals) ||
		!reflect.DeepEqual(back.Elements, r.Elements) || !reflect.DeepEqual(back.Occurrences, r.Occurrences) {
		t.Error("decoded report differs from original")
	}
	if back.JSON() != r.JSON() {
		t.Error("re-encoding the decoded report is not a fixpoint")
	}
	if _, err := DecodeJSON([]byte(`{"params":{},"bogus":1}`)); err == nil {
		t.Error("DecodeJSON accepted an unknown field")
	}
}

// TestReportCSVRoundTrip: DecodeCSV inverts CSV, exactly.
func TestReportCSVRoundTrip(t *testing.T) {
	r, err := Run(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := DecodeCSV(r.CSV())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, r.Occurrences) {
		t.Errorf("decoded rows differ:\n%v\n%v", rows, r.Occurrences)
	}
	if _, err := DecodeCSV("finding,events\nS1,2"); err == nil {
		t.Error("DecodeCSV accepted a mismatched header")
	}
}

// FuzzCampaignRow fuzzes the occurrence-row codec with the same
// contract as the trace record fuzzer: any line ParseRow accepts must
// render canonically, reparse to the identical row, and be a render
// fixpoint.
func FuzzCampaignRow(f *testing.F) {
	r, err := Run(goldenConfig())
	if err != nil {
		f.Fatal(err)
	}
	for _, row := range r.Occurrences {
		f.Add(RenderRow(row))
	}
	f.Add("S1,0,0,0,0,1")
	f.Add("S5,881,1138,0.7741652021089631,0.7487603542213264,0.7977399918159212")
	f.Add("bad line")
	f.Add("S1,1,2,0.5,0.4")
	f.Fuzz(func(t *testing.T, line string) {
		row, err := ParseRow(line)
		if err != nil {
			return
		}
		canon := RenderRow(row)
		again, err := ParseRow(canon)
		if err != nil {
			t.Fatalf("canonical render %q does not reparse: %v", canon, err)
		}
		if again != row {
			t.Fatalf("reparse drift: %+v != %+v", again, row)
		}
		if RenderRow(again) != canon {
			t.Fatalf("render not a fixpoint: %q != %q", RenderRow(again), canon)
		}
	})
}
