package campaign

// The timer wheel multiplexes a shard's UE sessions over virtual time.
// Each session keeps one pending entry — its earliest due procedure —
// so the wheel holds at most shardSize timers regardless of how many
// procedures a session schedules. Two 256-slot levels cover 2^16 ticks
// of horizon (at the default 100 ms tick: ~1.8 h) with O(1) schedule
// and batched per-slot expiry; later timers overflow to a far list
// cascaded level-wise, so arbitrarily distant due times are accepted
// without cost on the hot path.
//
// Determinism: slots are plain slices processed in insertion order, and
// insertion order is itself a deterministic function of the simulation
// — no heaps with tie-breaking hazards, no maps.

const (
	wheelBits  = 8
	wheelSlots = 1 << wheelBits          // 256
	wheelMask  = wheelSlots - 1          // low-bits slot index
	wheelSpan  = wheelSlots << wheelBits // ticks covered by both levels
)

// timerEntry is one scheduled session.
type timerEntry struct {
	due int32 // absolute tick
	idx int32 // session index within the shard
}

// wheel is a two-level hierarchical timer wheel over int32 ticks.
type wheel struct {
	now      int32
	l0       [wheelSlots][]timerEntry // due - now < 256: exact slot
	l1       [wheelSlots][]timerEntry // due - now < 65536: cascaded on entry
	overflow []timerEntry             // farther: rescanned on l1 wrap
	batch    []timerEntry             // reused expiry buffer
}

func newWheel() *wheel { return &wheel{} }

// schedule adds a timer. due must be > the current tick; entries due at
// or before now would never fire and indicate a scheduling bug, so they
// are clamped forward one tick.
func (w *wheel) schedule(idx int32, due int32) {
	if due <= w.now {
		due = w.now + 1
	}
	switch delta := due - w.now; {
	case delta < wheelSlots:
		s := due & wheelMask
		w.l0[s] = append(w.l0[s], timerEntry{due: due, idx: idx})
	case delta < wheelSpan:
		s := (due >> wheelBits) & wheelMask
		w.l1[s] = append(w.l1[s], timerEntry{due: due, idx: idx})
	default:
		w.overflow = append(w.overflow, timerEntry{due: due, idx: idx})
	}
}

// advance moves the wheel to tick and returns the batch of sessions due
// exactly then, in deterministic (insertion) order. The caller must
// advance tick by tick; the batch slice is reused across calls.
func (w *wheel) advance(tick int32) []timerEntry {
	w.now = tick
	if tick&wheelMask == 0 {
		w.cascade(tick)
	}
	slot := tick & wheelMask
	w.batch = w.batch[:0]
	pending := w.l0[slot][:0]
	for _, e := range w.l0[slot] {
		if e.due == tick {
			w.batch = append(w.batch, e)
		} else {
			// A later lap of this slot: keep for a future pass.
			pending = append(pending, e)
		}
	}
	w.l0[slot] = pending
	return w.batch
}

// cascade refills level 0 from the level-1 slot covering the next 256
// ticks, and — on a full level-1 wrap — pulls newly-near overflow
// timers down into the levels.
func (w *wheel) cascade(tick int32) {
	if tick&(wheelSpan-1) == 0 && len(w.overflow) > 0 {
		keep := w.overflow[:0]
		for _, e := range w.overflow {
			if e.due-tick < wheelSpan {
				s := (e.due >> wheelBits) & wheelMask
				w.l1[s] = append(w.l1[s], e)
			} else {
				keep = append(keep, e)
			}
		}
		w.overflow = keep
	}
	slot := (tick >> wheelBits) & wheelMask
	if len(w.l1[slot]) == 0 {
		return
	}
	for _, e := range w.l1[slot] {
		if e.due >= tick && e.due-tick < wheelSlots {
			s := e.due & wheelMask
			w.l0[s] = append(w.l0[s], e)
		} else {
			// A later lap of the l1 slot: push back (rare; happens only
			// with horizons beyond wheelSpan).
			w.overflow = append(w.overflow, e)
		}
	}
	w.l1[slot] = w.l1[slot][:0]
}
