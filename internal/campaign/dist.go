// Package campaign is the population-scale control-plane load engine:
// it multiplexes 10^5–10^6 lightweight UE sessions over the shared
// MME/SGSN/HSS element models of internal/netemu, driving each session
// from per-procedure inter-arrival processes (attach, service request,
// handover, detach, call) in the style of "Characterizing and Modeling
// Control-Plane Traffic for Mobile Core Network" — and rebuilds the
// paper's Table 5 occurrence rates from a cohort 50,000× the §7 user
// study, reusing the internal/userstudy mechanism triggers.
//
// Determinism contract: a campaign report is a pure function of its
// Config. UEs are partitioned into fixed-size shards, each simulated
// from its own seed-derived generator over its own timer wheel;
// workers claim whole shards from an atomic cursor and write into
// per-shard accumulators, so any worker count produces byte-identical
// reports.
package campaign

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// Dist is an inter-arrival (or holding-time) distribution over seconds.
// Implementations must be pure functions of the supplied generator —
// equal seeds must yield identical sample streams — and must report
// their analytic mean and variance, which the property tests check the
// empirical moments against.
type Dist interface {
	// Sample draws one value in seconds (always >= 0).
	Sample(rng *rand.Rand) float64
	// Mean returns the analytic mean in seconds.
	Mean() float64
	// Variance returns the analytic variance in seconds².
	Variance() float64
	// String renders the distribution in the form ParseDist accepts.
	String() string
}

// Fixed is a degenerate point mass: every arrival exactly Sec apart.
type Fixed struct{ Sec float64 }

func (f Fixed) Sample(*rand.Rand) float64 { return f.Sec }
func (f Fixed) Mean() float64             { return f.Sec }
func (f Fixed) Variance() float64         { return 0 }
func (f Fixed) String() string            { return fmt.Sprintf("fixed:%s", ftoa(f.Sec)) }

// Uniform draws uniformly from [Lo, Hi].
type Uniform struct{ Lo, Hi float64 }

func (u Uniform) Sample(rng *rand.Rand) float64 { return u.Lo + rng.Float64()*(u.Hi-u.Lo) }
func (u Uniform) Mean() float64                 { return (u.Lo + u.Hi) / 2 }
func (u Uniform) Variance() float64             { d := u.Hi - u.Lo; return d * d / 12 }
func (u Uniform) String() string {
	return fmt.Sprintf("uniform:%s,%s", ftoa(u.Lo), ftoa(u.Hi))
}

// Exp is the exponential distribution with the given mean — the
// memoryless Poisson-process inter-arrival.
type Exp struct{ MeanSec float64 }

func (e Exp) Sample(rng *rand.Rand) float64 { return rng.ExpFloat64() * e.MeanSec }
func (e Exp) Mean() float64                 { return e.MeanSec }
func (e Exp) Variance() float64             { return e.MeanSec * e.MeanSec }
func (e Exp) String() string                { return fmt.Sprintf("exp:%s", ftoa(e.MeanSec)) }

// LogNormal is exp(N(Mu, Sigma²)) — the heavy-tailed fit the
// control-plane traffic study reports for service-request
// inter-arrivals.
type LogNormal struct{ Mu, Sigma float64 }

func (l LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }
func (l LogNormal) Variance() float64 {
	s2 := l.Sigma * l.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*l.Mu+s2)
}
func (l LogNormal) String() string {
	return fmt.Sprintf("lognormal:%s,%s", ftoa(l.Mu), ftoa(l.Sigma))
}

// Weibull has shape K and scale Lambda (seconds); K < 1 gives the
// bursty, overdispersed arrivals the traffic study measures for
// attach/detach.
type Weibull struct{ K, Lambda float64 }

func (w Weibull) Sample(rng *rand.Rand) float64 {
	// Inverse-CDF: λ(-ln U)^(1/k); 1-Float64() keeps U in (0,1].
	return w.Lambda * math.Pow(-math.Log(1-rng.Float64()), 1/w.K)
}
func (w Weibull) Mean() float64 { return w.Lambda * math.Gamma(1+1/w.K) }
func (w Weibull) Variance() float64 {
	g1 := math.Gamma(1 + 1/w.K)
	return w.Lambda * w.Lambda * (math.Gamma(1+2/w.K) - g1*g1)
}
func (w Weibull) String() string {
	return fmt.Sprintf("weibull:%s,%s", ftoa(w.K), ftoa(w.Lambda))
}

// ftoa renders a float in the shortest form that round-trips.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// distArity is the exact parameter count per family; ParseDist rejects
// specs with extra or missing parameters.
var distArity = map[string]int{
	"fixed": 1, "uniform": 2, "exp": 1, "lognormal": 2, "weibull": 2,
}

// ParseDist parses the "name:params" forms the String methods render:
//
//	fixed:SEC  uniform:LO,HI  exp:MEAN  lognormal:MU,SIGMA  weibull:K,LAMBDA
//
// Parameters are validated (positive scales, Lo <= Hi) so a malformed
// CLI flag fails loudly instead of producing a degenerate process.
func ParseDist(spec string) (Dist, error) {
	name, rest, _ := strings.Cut(spec, ":")
	args := strings.Split(rest, ",")
	name = strings.ToLower(strings.TrimSpace(name))
	if want, known := distArity[name]; known && len(args) != want {
		return nil, fmt.Errorf("campaign: dist %q: want %d parameters, got %d", spec, want, len(args))
	}
	num := func(i int) (float64, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("campaign: dist %q: missing parameter %d", spec, i+1)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(args[i]), 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("campaign: dist %q: bad parameter %q", spec, args[i])
		}
		return v, nil
	}
	switch name {
	case "fixed":
		sec, err := num(0)
		if err != nil || sec < 0 {
			return nil, orErr(err, "campaign: dist %q: need sec >= 0", spec)
		}
		return Fixed{Sec: sec}, nil
	case "uniform":
		lo, err := num(0)
		if err != nil {
			return nil, err
		}
		hi, err := num(1)
		if err != nil || lo < 0 || hi < lo {
			return nil, orErr(err, "campaign: dist %q: need 0 <= lo <= hi", spec)
		}
		return Uniform{Lo: lo, Hi: hi}, nil
	case "exp":
		mean, err := num(0)
		if err != nil || mean <= 0 {
			return nil, orErr(err, "campaign: dist %q: need mean > 0", spec)
		}
		return Exp{MeanSec: mean}, nil
	case "lognormal":
		mu, err := num(0)
		if err != nil {
			return nil, err
		}
		sigma, err := num(1)
		if err != nil || sigma <= 0 {
			return nil, orErr(err, "campaign: dist %q: need sigma > 0", spec)
		}
		return LogNormal{Mu: mu, Sigma: sigma}, nil
	case "weibull":
		k, err := num(0)
		if err != nil {
			return nil, err
		}
		lambda, err := num(1)
		if err != nil || k <= 0 || lambda <= 0 {
			return nil, orErr(err, "campaign: dist %q: need k > 0, lambda > 0", spec)
		}
		return Weibull{K: k, Lambda: lambda}, nil
	}
	return nil, fmt.Errorf("campaign: unknown dist %q (want fixed, uniform, exp, lognormal, or weibull)", spec)
}

// orErr returns err if non-nil, else the formatted validation error.
func orErr(err error, format string, args ...interface{}) error {
	if err != nil {
		return err
	}
	return fmt.Errorf(format, args...)
}
