package types

import "fmt"

// Cause is a signaling cause/error code carried in reject, detach and
// deactivation messages. The numeric values are internal to this
// reproduction; the names mirror the 3GPP causes cited by the paper.
type Cause uint16

const (
	CauseNone Cause = iota

	// --- PDP context deactivation causes (Table 3) ---

	// CauseInsufficientResources: device-originated; radio/bearer
	// resources can no longer sustain the PDP context.
	CauseInsufficientResources
	// CauseQoSNotAccepted: device-originated; the negotiated QoS cannot
	// be satisfied at the device.
	CauseQoSNotAccepted
	// CauseLowLayerFailure: device- or network-originated; RRC/RLC
	// failure below the session layer.
	CauseLowLayerFailure
	// CauseRegularDeactivation: device- or network-originated; e.g. the
	// user switches mobile data off, or the network gracefully releases.
	CauseRegularDeactivation
	// CauseIncompatiblePDPContext: network-originated; the active PDP
	// context is not compatible with all PS services (e.g. MMS vs
	// Internet APN).
	CauseIncompatiblePDPContext
	// CauseOperatorDeterminedBarring: network-originated; subscription
	// or policy barring.
	CauseOperatorDeterminedBarring

	// --- EMM/GMM/MM reject and detach causes ---

	// CauseImplicitDetach: the network has implicitly detached the UE
	// (TS 24.301 cause #10); observed in S2 and S6.
	CauseImplicitDetach
	// CauseNoEPSBearerContext: "No EPS bearer context activated"
	// (TS 24.301 cause #40); observed in S1 when returning to 4G with no
	// recoverable context.
	CauseNoEPSBearerContext
	// CauseMSCTemporarilyNotReachable: TS 24.301 cause #16; observed in
	// S6 (OP-II) when the combined TAU's CS part fails.
	CauseMSCTemporarilyNotReachable
	// CauseNetworkFailure: generic network-side failure (cause #17).
	CauseNetworkFailure
	// CauseCongestion: network congestion (cause #22).
	CauseCongestion
	// CausePLMNNotAllowed: subscription not allowed on this PLMN (#11).
	CausePLMNNotAllowed
	// CauseTrackingAreaNotAllowed: TA not allowed (#12).
	CauseTrackingAreaNotAllowed

	// --- Internal/bookkeeping causes ---

	// CauseUserPowerOff: device-originated detach at power-off.
	CauseUserPowerOff
	// CauseTimerExpiry: a NAS retransmission timer reached its maximum
	// retry count.
	CauseTimerExpiry
)

func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseInsufficientResources:
		return "insufficient resources"
	case CauseQoSNotAccepted:
		return "QoS not accepted"
	case CauseLowLayerFailure:
		return "low layer failure"
	case CauseRegularDeactivation:
		return "regular deactivation"
	case CauseIncompatiblePDPContext:
		return "incompatible PDP context"
	case CauseOperatorDeterminedBarring:
		return "operator determined barring"
	case CauseImplicitDetach:
		return "implicitly detached"
	case CauseNoEPSBearerContext:
		return "no EPS bearer context activated"
	case CauseMSCTemporarilyNotReachable:
		return "MSC temporarily not reachable"
	case CauseNetworkFailure:
		return "network failure"
	case CauseCongestion:
		return "congestion"
	case CausePLMNNotAllowed:
		return "PLMN not allowed"
	case CauseTrackingAreaNotAllowed:
		return "tracking area not allowed"
	case CauseUserPowerOff:
		return "user power off"
	case CauseTimerExpiry:
		return "NAS timer expiry"
	default:
		return fmt.Sprintf("Cause(%d)", uint16(c))
	}
}

// causeRange bounds the linear scan of CauseByName; keep it one past
// the last declared cause.
const causeRange = CauseTimerExpiry + 1

// CauseByName resolves a Cause from its String form (the counterpart
// of KindByName for the fuzz corpus codec).
func CauseByName(name string) (Cause, bool) {
	for c := Cause(0); c < causeRange; c++ {
		if c.String() == name {
			return c, true
		}
	}
	return CauseNone, false
}

// PDPDeactOriginator says which side may initiate a PDP context
// deactivation with a given cause (Table 3).
type PDPDeactOriginator uint8

const (
	OriginDevice PDPDeactOriginator = 1 << iota
	OriginNetwork
)

func (o PDPDeactOriginator) String() string {
	switch o {
	case OriginDevice:
		return "User device"
	case OriginNetwork:
		return "Network"
	case OriginDevice | OriginNetwork:
		return "User device/Network"
	default:
		return fmt.Sprintf("Originator(%d)", uint8(o))
	}
}

// PDPDeactCause is one row of Table 3.
type PDPDeactCause struct {
	Originator PDPDeactOriginator
	Cause      Cause
	// Avoidable reports whether the paper argues the deactivation could
	// have been avoided or repaired without detaching the user (§5.1.2).
	Avoidable bool
	// Remedy is the paper's suggested alternative to deactivation.
	Remedy string
}

// PDPDeactivationCauses reproduces Table 3: the causes that may trigger
// PDP context deactivation in 3G, each of which can strand the device
// out-of-service after a 3G→4G switch (finding S1).
func PDPDeactivationCauses() []PDPDeactCause {
	return []PDPDeactCause{
		{OriginDevice, CauseInsufficientResources, false, "reactivate EPS bearer after switching instead of detaching"},
		{OriginDevice, CauseQoSNotAccepted, true, "keep the PDP context and downgrade to a lower QoS policy"},
		{OriginDevice | OriginNetwork, CauseLowLayerFailure, false, "reactivate EPS bearer after switching instead of detaching"},
		{OriginDevice | OriginNetwork, CauseRegularDeactivation, true, "defer deactivation until the switch to 4G completes"},
		{OriginNetwork, CauseIncompatiblePDPContext, true, "modify the PDP context rather than delete it"},
		{OriginNetwork, CauseOperatorDeterminedBarring, false, "reactivate EPS bearer after switching instead of detaching"},
	}
}
