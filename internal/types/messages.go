package types

import "fmt"

// MsgKind enumerates the control-plane signaling messages exchanged by
// the modeled protocols. The set covers every procedure exercised by the
// paper: attach/detach, location management (LAU/RAU/TAU), session
// management (PDP context / EPS bearer), call control (incl. CSFB), and
// radio resource control.
type MsgKind uint16

const (
	MsgNone MsgKind = iota

	// --- Mobility management: attach/detach (EMM/GMM/MM) ---
	MsgAttachRequest
	MsgAttachAccept
	MsgAttachComplete
	MsgAttachReject
	MsgDetachRequest
	MsgDetachAccept

	// --- Mobility management: location management ---
	MsgLocationUpdateRequest // 3G CS location area update (MM → MSC)
	MsgLocationUpdateAccept
	MsgLocationUpdateReject
	MsgRoutingAreaUpdateRequest // 3G PS routing area update (GMM → SGSN)
	MsgRoutingAreaUpdateAccept
	MsgRoutingAreaUpdateReject
	MsgTrackingAreaUpdateRequest // 4G tracking area update (EMM → MME)
	MsgTrackingAreaUpdateAccept
	MsgTrackingAreaUpdateReject

	// --- Session management: 3G PDP context (SM) ---
	MsgActivatePDPRequest
	MsgActivatePDPAccept
	MsgActivatePDPReject
	MsgDeactivatePDPRequest
	MsgDeactivatePDPAccept
	MsgModifyPDPRequest
	MsgModifyPDPAccept

	// --- Session management: 4G EPS bearer (ESM) ---
	MsgActivateBearerRequest
	MsgActivateBearerAccept
	MsgActivateBearerReject
	MsgDeactivateBearerRequest
	MsgDeactivateBearerAccept

	// --- Call control (CM/CC) ---
	MsgCMServiceRequest // establish signaling connection for MO call
	MsgCMServiceAccept
	MsgCMServiceReject
	MsgCallSetup
	MsgCallConnect
	MsgCallAlerting
	MsgCallDisconnect
	MsgCallRelease
	MsgPagingRequest // MT call / downlink data notification

	// --- Radio resource control ---
	MsgRRCConnectionRequest
	MsgRRCConnectionSetup
	MsgRRCConnectionSetupComplete
	MsgRRCConnectionRelease
	MsgRRCConnectionReleaseRedirect // "RRC connection release with redirect"
	MsgRRCStateTransition           // FACH<->DCH / DRX changes
	MsgRRCMeasurementReport
	MsgRRCReconfiguration // carries modulation/channel config (S5)

	// --- Inter-system switching (§5.1.1, Figure 3/6) ---
	MsgInterSystemSwitchCommand // network-ordered 4G<->3G switch
	MsgInterSystemHandover      // option 2: direct DCH<->CONNECTED handover
	MsgInterSystemCellReselect  // option 3: idle-mode reselection
	MsgCSFBServiceRequest       // extended service request for CSFB call
	MsgContextTransfer          // EPS bearer <-> PDP context migration

	// --- Internal/environment events (not on the air interface) ---
	MsgPowerOn
	MsgPowerOff
	MsgUserDialCall
	MsgUserHangUp
	MsgUserDataOn
	MsgUserDataOff
	MsgUserMove      // crosses an LA/RA/TA boundary
	MsgPeriodicTimer // periodic LAU/RAU/TAU timer
	MsgWiFiAvailable // device policy may deactivate PDP contexts

	// --- Operator/environment events toward network elements ---
	MsgNetDetachOrder  // network-oriented detach (e.g. resource constraints)
	MsgNetSwitchOrder  // carrier-initiated inter-system switch (load balancing)
	MsgLUFailureSignal // a 3G location update failed (input to S6)

	// MsgShimAck is the acknowledgment of the §8 reliable-transfer
	// shim inserted between EMM and RRC (internal/fixes).
	MsgShimAck

	// MsgLinkAck is the link-layer acknowledgment of the netemu
	// reliable-delivery service (ack-or-timeout retransmission modeled
	// on the NAS T3410/T3310 timers). It never reaches a protocol FSM:
	// the link layer consumes it to cancel the pending retransmission.
	MsgLinkAck
	// MsgLinkFailure is the synthesized failure indication the
	// reliable-delivery service delivers to the *sender's* machine when
	// the retry budget for a frame is exhausted — the graceful
	// degradation path that replaces an otherwise silent stall.
	MsgLinkFailure
)

var msgKindNames = map[MsgKind]string{
	MsgNone:                         "None",
	MsgAttachRequest:                "AttachRequest",
	MsgAttachAccept:                 "AttachAccept",
	MsgAttachComplete:               "AttachComplete",
	MsgAttachReject:                 "AttachReject",
	MsgDetachRequest:                "DetachRequest",
	MsgDetachAccept:                 "DetachAccept",
	MsgLocationUpdateRequest:        "LocationUpdateRequest",
	MsgLocationUpdateAccept:         "LocationUpdateAccept",
	MsgLocationUpdateReject:         "LocationUpdateReject",
	MsgRoutingAreaUpdateRequest:     "RoutingAreaUpdateRequest",
	MsgRoutingAreaUpdateAccept:      "RoutingAreaUpdateAccept",
	MsgRoutingAreaUpdateReject:      "RoutingAreaUpdateReject",
	MsgTrackingAreaUpdateRequest:    "TrackingAreaUpdateRequest",
	MsgTrackingAreaUpdateAccept:     "TrackingAreaUpdateAccept",
	MsgTrackingAreaUpdateReject:     "TrackingAreaUpdateReject",
	MsgActivatePDPRequest:           "ActivatePDPRequest",
	MsgActivatePDPAccept:            "ActivatePDPAccept",
	MsgActivatePDPReject:            "ActivatePDPReject",
	MsgDeactivatePDPRequest:         "DeactivatePDPRequest",
	MsgDeactivatePDPAccept:          "DeactivatePDPAccept",
	MsgModifyPDPRequest:             "ModifyPDPRequest",
	MsgModifyPDPAccept:              "ModifyPDPAccept",
	MsgActivateBearerRequest:        "ActivateBearerRequest",
	MsgActivateBearerAccept:         "ActivateBearerAccept",
	MsgActivateBearerReject:         "ActivateBearerReject",
	MsgDeactivateBearerRequest:      "DeactivateBearerRequest",
	MsgDeactivateBearerAccept:       "DeactivateBearerAccept",
	MsgCMServiceRequest:             "CMServiceRequest",
	MsgCMServiceAccept:              "CMServiceAccept",
	MsgCMServiceReject:              "CMServiceReject",
	MsgCallSetup:                    "CallSetup",
	MsgCallConnect:                  "CallConnect",
	MsgCallAlerting:                 "CallAlerting",
	MsgCallDisconnect:               "CallDisconnect",
	MsgCallRelease:                  "CallRelease",
	MsgPagingRequest:                "PagingRequest",
	MsgRRCConnectionRequest:         "RRCConnectionRequest",
	MsgRRCConnectionSetup:           "RRCConnectionSetup",
	MsgRRCConnectionSetupComplete:   "RRCConnectionSetupComplete",
	MsgRRCConnectionRelease:         "RRCConnectionRelease",
	MsgRRCConnectionReleaseRedirect: "RRCConnectionReleaseRedirect",
	MsgRRCStateTransition:           "RRCStateTransition",
	MsgRRCMeasurementReport:         "RRCMeasurementReport",
	MsgRRCReconfiguration:           "RRCReconfiguration",
	MsgInterSystemSwitchCommand:     "InterSystemSwitchCommand",
	MsgInterSystemHandover:          "InterSystemHandover",
	MsgInterSystemCellReselect:      "InterSystemCellReselect",
	MsgCSFBServiceRequest:           "CSFBServiceRequest",
	MsgContextTransfer:              "ContextTransfer",
	MsgPowerOn:                      "PowerOn",
	MsgPowerOff:                     "PowerOff",
	MsgUserDialCall:                 "UserDialCall",
	MsgUserHangUp:                   "UserHangUp",
	MsgUserDataOn:                   "UserDataOn",
	MsgUserDataOff:                  "UserDataOff",
	MsgUserMove:                     "UserMove",
	MsgPeriodicTimer:                "PeriodicTimer",
	MsgWiFiAvailable:                "WiFiAvailable",
	MsgNetDetachOrder:               "NetDetachOrder",
	MsgNetSwitchOrder:               "NetSwitchOrder",
	MsgLUFailureSignal:              "LUFailureSignal",
	MsgShimAck:                      "ShimAck",
	MsgLinkAck:                      "LinkAck",
	MsgLinkFailure:                  "LinkFailure",
}

func (k MsgKind) String() string {
	if s, ok := msgKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("MsgKind(%d)", uint16(k))
}

// KindByName resolves a MsgKind from its String form. The corpus codec
// (internal/fuzz) stores kinds by name so checked-in schedules survive
// renumbering of the MsgKind constants.
func KindByName(name string) (MsgKind, bool) {
	for k, s := range msgKindNames {
		if s == name {
			return k, true
		}
	}
	return MsgNone, false
}

// IsUserEvent reports whether the kind is a user/environment event
// rather than an air-interface signaling message.
func (k MsgKind) IsUserEvent() bool {
	switch k {
	case MsgPowerOn, MsgPowerOff, MsgUserDialCall, MsgUserHangUp,
		MsgUserDataOn, MsgUserDataOff, MsgUserMove, MsgPeriodicTimer,
		MsgWiFiAvailable:
		return true
	}
	return false
}

// IsOperatorEvent reports whether the kind is a network/operator
// environment event rather than an air-interface signaling message.
func (k MsgKind) IsOperatorEvent() bool {
	switch k {
	case MsgNetDetachOrder, MsgNetSwitchOrder, MsgLUFailureSignal:
		return true
	}
	return false
}

// IsReject reports whether the kind denies a request.
func (k MsgKind) IsReject() bool {
	switch k {
	case MsgAttachReject, MsgLocationUpdateReject, MsgRoutingAreaUpdateReject,
		MsgTrackingAreaUpdateReject, MsgActivatePDPReject,
		MsgActivateBearerReject, MsgCMServiceReject:
		return true
	}
	return false
}

// Message is a control-plane signaling message instance.
type Message struct {
	Kind   MsgKind
	System System
	Domain Domain
	Proto  Protocol
	Cause  Cause
	// Seq is a NAS-level sequence number; used by the reliable-transfer
	// shim (§8 Layer Extension) and duplicate detection (S2).
	Seq uint32
	// From and To identify the sending/receiving entity (device, BS,
	// MSC, SGSN, MME, ...). Free-form; the emulator uses element names.
	From, To string
}

func (m Message) String() string {
	s := m.Kind.String()
	if m.Cause != CauseNone {
		s += fmt.Sprintf("(cause=%s)", m.Cause)
	}
	return s
}

// NewMessage builds a message of the given kind with defaults derived
// from the protocol association.
func NewMessage(kind MsgKind, proto Protocol) Message {
	return Message{Kind: kind, Proto: proto, System: proto.System(), Domain: proto.Domain()}
}

// WithCause returns a copy of the message carrying the given cause.
func (m Message) WithCause(c Cause) Message {
	m.Cause = c
	return m
}
