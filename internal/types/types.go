// Package types defines the shared vocabulary of the cellular control
// plane used throughout CNetVerifier: radio systems, switching domains,
// interaction dimensions, signaling message kinds, and 3GPP cause codes.
//
// The definitions follow the terminology of TS 24.008 (3G NAS),
// TS 24.301 (4G NAS), TS 25.331 (3G RRC) and TS 36.331 (4G RRC), reduced
// to the level of abstraction used by the SIGCOMM'14 paper
// "Control-Plane Protocol Interactions in Cellular Networks".
package types

import "fmt"

// System identifies a cellular radio system generation.
type System uint8

const (
	// SysNone means the device is not camped on any system.
	SysNone System = iota
	// Sys3G is the UMTS/WCDMA system offering both CS and PS domains.
	Sys3G
	// Sys4G is the LTE system offering the PS domain only.
	Sys4G
)

func (s System) String() string {
	switch s {
	case SysNone:
		return "none"
	case Sys3G:
		return "3G"
	case Sys4G:
		return "4G"
	default:
		return fmt.Sprintf("System(%d)", uint8(s))
	}
}

// Domain identifies a switching domain within a system.
type Domain uint8

const (
	// DomainNone means no domain applies (e.g. RRC-level events).
	DomainNone Domain = iota
	// DomainCS is the circuit-switched domain (3G voice).
	DomainCS
	// DomainPS is the packet-switched domain (3G and 4G data).
	DomainPS
)

func (d Domain) String() string {
	switch d {
	case DomainNone:
		return "-"
	case DomainCS:
		return "CS"
	case DomainPS:
		return "PS"
	default:
		return fmt.Sprintf("Domain(%d)", uint8(d))
	}
}

// Dimension classifies an inter-protocol interaction per the paper's
// taxonomy (§1): between stack layers, between CS and PS domains, or
// between the 3G and 4G systems.
type Dimension uint8

const (
	CrossLayer Dimension = iota + 1
	CrossDomain
	CrossSystem
)

func (d Dimension) String() string {
	switch d {
	case CrossLayer:
		return "cross-layer"
	case CrossDomain:
		return "cross-domain"
	case CrossSystem:
		return "cross-system"
	default:
		return fmt.Sprintf("Dimension(%d)", uint8(d))
	}
}

// IssueType distinguishes design defects (rooted in the 3GPP standards)
// from operational slips (rooted in carrier practice), per Table 1.
type IssueType uint8

const (
	DesignIssue IssueType = iota + 1
	OperationIssue
)

func (t IssueType) String() string {
	switch t {
	case DesignIssue:
		return "design"
	case OperationIssue:
		return "operation"
	default:
		return fmt.Sprintf("IssueType(%d)", uint8(t))
	}
}

// Protocol names the control-plane protocols studied by the paper
// (Table 2). Each runs as a pair of FSMs: one on the device, one on the
// serving network element.
type Protocol uint8

const (
	ProtoNone  Protocol = iota
	ProtoCM             // 3G CS connectivity management (CM/CC), TS 24.008, at MSC
	ProtoSM             // 3G PS session management, TS 24.008, at 3G gateways
	ProtoESM            // 4G session management, TS 24.301, at MME
	ProtoMM             // 3G CS mobility management, TS 24.008, at MSC
	ProtoGMM            // 3G PS mobility management, TS 24.008, at 3G gateways
	ProtoEMM            // 4G mobility management, TS 24.301, at MME
	ProtoRRC3G          // 3G radio resource control, TS 25.331, at 3G BS
	ProtoRRC4G          // 4G radio resource control, TS 36.331, at 4G BS
)

func (p Protocol) String() string {
	switch p {
	case ProtoNone:
		return "-"
	case ProtoCM:
		return "CM"
	case ProtoSM:
		return "SM"
	case ProtoESM:
		return "ESM"
	case ProtoMM:
		return "MM"
	case ProtoGMM:
		return "GMM"
	case ProtoEMM:
		return "EMM"
	case ProtoRRC3G:
		return "3G-RRC"
	case ProtoRRC4G:
		return "4G-RRC"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// System returns the system a protocol belongs to.
func (p Protocol) System() System {
	switch p {
	case ProtoCM, ProtoSM, ProtoMM, ProtoGMM, ProtoRRC3G:
		return Sys3G
	case ProtoESM, ProtoEMM, ProtoRRC4G:
		return Sys4G
	default:
		return SysNone
	}
}

// Domain returns the switching domain a protocol serves.
func (p Protocol) Domain() Domain {
	switch p {
	case ProtoCM, ProtoMM:
		return DomainCS
	case ProtoSM, ProtoGMM, ProtoESM, ProtoEMM:
		return DomainPS
	default:
		return DomainNone
	}
}

// Standard returns the 3GPP specification defining the protocol.
func (p Protocol) Standard() string {
	switch p {
	case ProtoCM, ProtoSM, ProtoMM, ProtoGMM:
		return "TS24.008"
	case ProtoESM, ProtoEMM:
		return "TS24.301"
	case ProtoRRC3G:
		return "TS25.331"
	case ProtoRRC4G:
		return "TS36.331"
	default:
		return ""
	}
}

// NetworkElement returns the core-network (or radio) element hosting the
// network side of the protocol, per Table 2.
func (p Protocol) NetworkElement() string {
	switch p {
	case ProtoCM, ProtoMM:
		return "MSC"
	case ProtoSM, ProtoGMM:
		return "3G Gateways"
	case ProtoESM, ProtoEMM:
		return "MME"
	case ProtoRRC3G:
		return "3G BS"
	case ProtoRRC4G:
		return "4G BS"
	default:
		return ""
	}
}

// AllProtocols lists every studied protocol in Table 2 order.
func AllProtocols() []Protocol {
	return []Protocol{ProtoCM, ProtoSM, ProtoESM, ProtoMM, ProtoGMM, ProtoEMM, ProtoRRC3G, ProtoRRC4G}
}
