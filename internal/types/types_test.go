package types

import (
	"strings"
	"testing"
)

func TestSystemDomainStrings(t *testing.T) {
	cases := map[string]string{
		Sys3G.String():       "3G",
		Sys4G.String():       "4G",
		SysNone.String():     "none",
		DomainCS.String():    "CS",
		DomainPS.String():    "PS",
		DomainNone.String():  "-",
		CrossLayer.String():  "cross-layer",
		CrossDomain.String(): "cross-domain",
		CrossSystem.String(): "cross-system",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
	if System(99).String() == "" || Domain(99).String() == "" || Dimension(99).String() == "" {
		t.Fatal("unknown values should still render")
	}
	if DesignIssue.String() != "design" || OperationIssue.String() != "operation" || IssueType(9).String() == "" {
		t.Fatal("issue type strings wrong")
	}
}

// Table 2: protocol associations — system, domain, standard, element.
func TestProtocolTable2(t *testing.T) {
	cases := []struct {
		p        Protocol
		sys      System
		dom      Domain
		standard string
		element  string
	}{
		{ProtoCM, Sys3G, DomainCS, "TS24.008", "MSC"},
		{ProtoSM, Sys3G, DomainPS, "TS24.008", "3G Gateways"},
		{ProtoESM, Sys4G, DomainPS, "TS24.301", "MME"},
		{ProtoMM, Sys3G, DomainCS, "TS24.008", "MSC"},
		{ProtoGMM, Sys3G, DomainPS, "TS24.008", "3G Gateways"},
		{ProtoEMM, Sys4G, DomainPS, "TS24.301", "MME"},
		{ProtoRRC3G, Sys3G, DomainNone, "TS25.331", "3G BS"},
		{ProtoRRC4G, Sys4G, DomainNone, "TS36.331", "4G BS"},
	}
	for _, c := range cases {
		if c.p.System() != c.sys || c.p.Domain() != c.dom ||
			c.p.Standard() != c.standard || c.p.NetworkElement() != c.element {
			t.Errorf("%s: got (%s,%s,%s,%s)", c.p, c.p.System(), c.p.Domain(), c.p.Standard(), c.p.NetworkElement())
		}
		if c.p.String() == "" {
			t.Errorf("%v: empty name", uint8(c.p))
		}
	}
	if got := len(AllProtocols()); got != 8 {
		t.Fatalf("AllProtocols = %d, want 8", got)
	}
	if ProtoNone.System() != SysNone || ProtoNone.Standard() != "" || ProtoNone.NetworkElement() != "" {
		t.Fatal("ProtoNone associations wrong")
	}
}

// Table 3 registry: six causes, correct originators, remedies present.
func TestPDPDeactivationCauses(t *testing.T) {
	rows := PDPDeactivationCauses()
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	both := 0
	for _, r := range rows {
		if r.Cause == CauseNone || r.Remedy == "" {
			t.Errorf("incomplete row %+v", r)
		}
		if r.Originator == OriginDevice|OriginNetwork {
			both++
		}
		if r.Originator.String() == "" {
			t.Error("empty originator string")
		}
	}
	// Table 3: two dual-originator causes (low layer failure, regular
	// deactivation).
	if both != 2 {
		t.Fatalf("dual-originator rows = %d, want 2", both)
	}
}

func TestMessageHelpers(t *testing.T) {
	m := NewMessage(MsgAttachRequest, ProtoEMM)
	if m.System != Sys4G || m.Domain != DomainPS || m.Proto != ProtoEMM {
		t.Fatalf("NewMessage defaults wrong: %+v", m)
	}
	withCause := m.WithCause(CauseCongestion)
	if withCause.Cause != CauseCongestion || m.Cause != CauseNone {
		t.Fatal("WithCause should copy")
	}
	if !strings.Contains(withCause.String(), "congestion") {
		t.Fatalf("String = %q", withCause.String())
	}
	if MsgKind(60000).String() == "" || Cause(60000).String() == "" {
		t.Fatal("unknown kinds/causes should still render")
	}
}

func TestEventClassification(t *testing.T) {
	if !MsgPowerOn.IsUserEvent() || MsgAttachRequest.IsUserEvent() {
		t.Fatal("IsUserEvent wrong")
	}
	if !MsgNetDetachOrder.IsOperatorEvent() || MsgPowerOn.IsOperatorEvent() {
		t.Fatal("IsOperatorEvent wrong")
	}
	rejects := []MsgKind{MsgAttachReject, MsgLocationUpdateReject, MsgRoutingAreaUpdateReject,
		MsgTrackingAreaUpdateReject, MsgActivatePDPReject, MsgActivateBearerReject, MsgCMServiceReject}
	for _, k := range rejects {
		if !k.IsReject() {
			t.Errorf("%s not classified as reject", k)
		}
	}
	if MsgAttachAccept.IsReject() {
		t.Fatal("accept classified as reject")
	}
}

// Every named message kind has a distinct, non-empty name.
func TestMsgKindNamesUnique(t *testing.T) {
	seen := map[string]MsgKind{}
	for k := MsgNone; k <= MsgShimAck; k++ {
		name := k.String()
		if name == "" {
			t.Fatalf("kind %d: empty name", k)
		}
		if strings.HasPrefix(name, "MsgKind(") {
			continue // gaps in the enum are fine
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("kinds %d and %d share name %q", prev, k, name)
		}
		seen[name] = k
	}
	if len(seen) < 50 {
		t.Fatalf("only %d named kinds", len(seen))
	}
}
