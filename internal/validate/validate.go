// Package validate is the bridge between CNetVerifier's two phases
// (§3.1, Figure 2): it takes a counterexample produced by the
// screening phase (a model-checker step path) and reproduces it on the
// validation substrate — the netemu emulator running the full standard
// stack under an operator profile — then checks whether the same
// user-visible symptom appears.
//
// The paper performs this step manually ("The experimental settings
// are constructed based on the counterexamples from the screening
// phase"); here it is automated: the environment events of the
// counterexample are extracted in order and injected into the emulated
// stack with realistic spacing, and the violated property is
// re-evaluated on the emulator's shared context.
package validate

import (
	"fmt"
	"time"

	"cnetverifier/internal/check"
	"cnetverifier/internal/core"
	"cnetverifier/internal/model"
	"cnetverifier/internal/names"
	"cnetverifier/internal/netemu"
	"cnetverifier/internal/trace"
	"cnetverifier/internal/types"
)

// Outcome is the result of validating one counterexample.
type Outcome struct {
	// Finding is the screened instance.
	Finding core.FindingID
	// Property is the violated property being validated.
	Property string
	// Reproduced reports whether the emulator exhibited the same
	// symptom after replaying the counterexample's environment events.
	Reproduced bool
	// EventCount is the number of environment events replayed.
	EventCount int
	// Trace is the device-side §3.3 trace of the validation run.
	Trace []trace.Record
}

func (o Outcome) String() string {
	verdict := "NOT reproduced"
	if o.Reproduced {
		verdict = "reproduced"
	}
	return fmt.Sprintf("%s (%s): %s on the emulator after %d environment events",
		o.Finding, o.Property, verdict, o.EventCount)
}

// Config tunes the validation run.
type Config struct {
	// Profile is the operator the emulator models (default OP-II, the
	// profile that exposes every finding).
	Profile *netemu.OperatorProfile
	// Fixes optionally enables the §8 solutions — validating a fixed
	// stack against a defective counterexample must NOT reproduce.
	Fixes netemu.FixSet
	// InitialGlobals seeds the emulator's shared context with the
	// scoped world's initial conditions (e.g. the serving system and
	// the carrier's switching option). Campaign fills this from the
	// screened world automatically.
	InitialGlobals map[string]int
	// EventSpacings is the ladder of inter-event spacings tried until
	// the symptom reproduces (the paper tunes experiment timing by hand
	// to hit each finding's window; the ladder automates that). The
	// default tries 1 s, 3 s and 10 s.
	EventSpacings []time.Duration
	// Seed seeds the emulator.
	Seed int64

	// prepare, when set, mutates every freshly built replay world after
	// the standard staging (stack assembly, globals, counterexample
	// drops). The sweep engine uses it to inject random air-interface
	// loss and the reliable-delivery layer into each attempt without
	// duplicating the replay machinery.
	prepare func(*netemu.World)
}

func (c Config) withDefaults() Config {
	if c.Profile == nil {
		p := netemu.OPII()
		c.Profile = &p
	}
	if len(c.EventSpacings) == 0 {
		c.EventSpacings = []time.Duration{time.Second, 3 * time.Second, 10 * time.Second}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// symptom maps each property to its emulator-side observable.
func symptom(property string) (func(w *netemu.World) bool, error) {
	switch property {
	case "PacketService_OK":
		return func(w *netemu.World) bool { return w.Global(names.GDetachedByNet) == 1 }, nil
	case "CallService_OK":
		return func(w *netemu.World) bool {
			return w.Global(names.GCallRejected) == 1 || w.Global(names.GCallDelayed) == 1
		}, nil
	case "DataService_OK":
		return func(w *netemu.World) bool { return w.Global(names.GDataDelayed) == 1 }, nil
	case "MM_OK":
		return func(w *netemu.World) bool { return w.Global(names.GWantReturn4G) == 1 }, nil
	default:
		return nil, fmt.Errorf("validate: no emulator symptom for property %q", property)
	}
}

// Replay validates one screening violation on the emulator: the
// counterexample's environment events (the user demands and operator
// responses that drove the model) are injected in order into a fresh
// standard stack with the operator's procedure latencies wired in, the
// signaling is allowed to settle, and the property's symptom is
// checked. Each spacing of the ladder is tried until one reproduces —
// the automated analogue of the paper's manual experiment timing.
func Replay(finding core.FindingID, v check.Violation, cfg Config) (Outcome, error) {
	cfg = cfg.withDefaults()
	sym, err := symptom(v.Property)
	if err != nil {
		return Outcome{}, err
	}

	// Two replay timings are tried. Path-aligned replay preserves the
	// counterexample's interleaving: each environment event fires just
	// after the model deliveries that precede it in the path (mapped to
	// emulator time via the one-way signaling latency), capturing the
	// in-flight races the checker found. Uniform-spacing replay (with
	// the operator's multi-second procedure latencies wired in) covers
	// the coarser windows, as the paper's hand-timed experiments did.
	var out Outcome
	attempts := []func() Outcome{
		func() Outcome { return replayPathAligned(finding, v, cfg, sym, 0) },
	}
	// Counterexamples built on out-of-order delivery (S2's signals
	// relayed through different base stations, §5.2.1) need the link to
	// actually reorder: jittered attempts across a few seeds model the
	// dual-path relay. With the §8 reliable-transfer shim enabled the
	// NAS dialogue is loss-free and in-order by construction
	// (internal/fixes), so no jittered or lossy attempt applies.
	for seed := int64(1); seed <= 8 && !cfg.Fixes.ReliableSignaling; seed++ {
		seed := seed
		attempts = append(attempts, func() Outcome {
			jcfg := cfg
			jcfg.Seed = seed
			return replayPathAligned(finding, v, jcfg, sym, 3)
		})
	}
	for _, spacing := range cfg.EventSpacings {
		spacing := spacing
		attempts = append(attempts, func() Outcome { return replayUniform(finding, v, cfg, sym, spacing) })
	}
	for _, attempt := range attempts {
		out = attempt()
		if out.Reproduced {
			return out, nil
		}
	}
	return out, nil
}

func newReplayWorld(cfg Config, v check.Violation, procedures bool) *netemu.World {
	w := netemu.NewWorld(cfg.Seed)
	netemu.StandardStack(w, *cfg.Profile, cfg.Fixes)
	if procedures {
		netemu.WireProcessingDelays(w, *cfg.Profile)
	}
	for k, v := range cfg.InitialGlobals {
		w.SetGlobal(k, v)
	}
	// Stage the counterexample's signal losses: for every message the
	// model dropped, the emulated base station discards the same
	// number of air-interface frames of that kind (the §9.1-style
	// targeted drop the paper could not perform over real carriers,
	// §5.2.2). The reliable shim retransmits through any such loss, so
	// with that fix enabled the staging is moot and skipped.
	if cfg.Fixes.ReliableSignaling {
		if cfg.prepare != nil {
			cfg.prepare(w)
		}
		return w
	}
	toDrop := make(map[types.MsgKind]int)
	for _, step := range v.Path {
		if step.Kind == model.StepDrop {
			toDrop[step.Msg.Kind]++
		}
	}
	if len(toDrop) > 0 {
		filter := func(m types.Message) bool {
			if toDrop[m.Kind] > 0 {
				toDrop[m.Kind]--
				return true
			}
			return false
		}
		w.Uplink.DropFilter = filter
		w.Downlink.DropFilter = filter
	}
	if cfg.prepare != nil {
		cfg.prepare(w)
	}
	return w
}

// replayPathAligned injects each environment event at the emulator time
// of the model deliveries that precede it in the counterexample path.
// jitterX > 0 adds uniform link jitter of jitterX×latency, letting
// in-flight signals overtake one another.
func replayPathAligned(finding core.FindingID, v check.Violation, cfg Config, sym func(*netemu.World) bool, jitterX int) Outcome {
	w := newReplayWorld(cfg, v, false)
	latency := w.Uplink.Latency
	if jitterX > 0 {
		w.Uplink.Jitter = time.Duration(jitterX) * latency
		w.Downlink.Jitter = time.Duration(jitterX) * latency
	}
	out := Outcome{Finding: finding, Property: v.Property}
	deliveries := 0
	ordinal := 0
	for _, step := range v.Path {
		if step.Kind != model.StepEnv {
			deliveries++
			continue
		}
		ordinal++
		at := time.Duration(deliveries)*latency + time.Duration(ordinal)*time.Millisecond
		w.InjectAt(at, step.Proc, step.Msg)
		out.EventCount++
	}
	w.Run()
	out.Reproduced = sym(w)
	out.Trace = w.Collector.Records()
	return out
}

// replayUniform injects environment events with uniform spacing over a
// stack with realistic procedure latencies.
func replayUniform(finding core.FindingID, v check.Violation, cfg Config, sym func(*netemu.World) bool, spacing time.Duration) Outcome {
	w := newReplayWorld(cfg, v, true)
	out := Outcome{Finding: finding, Property: v.Property}
	at := time.Duration(0)
	for _, step := range v.Path {
		if step.Kind != model.StepEnv {
			continue
		}
		at += spacing
		w.InjectAt(at, step.Proc, step.Msg)
		out.EventCount++
	}
	w.Run()
	out.Reproduced = sym(w)
	out.Trace = w.Collector.Records()
	return out
}

// Campaign screens every scoped defective world and validates each
// violation on the emulator — the complete two-phase pipeline in one
// call. Screening runs breadth-first so the counterexamples are the
// shortest (canonical) scenarios: minimal paths correspond to the
// experiment setups a tester can actually stage, whereas deep DFS
// interleavings may hinge on unbounded signal queueing the emulator's
// constant-latency links cannot produce (the measurement-dependent
// cases of §3.1).
func Campaign(cfg Config) ([]Outcome, error) {
	var out []Outcome
	for _, s := range core.ScopedModels() {
		opt := s.Options
		opt.Strategy = check.BFS
		r, err := core.Screen(s, opt)
		if err != nil {
			return nil, err
		}
		runCfg := cfg
		if runCfg.InitialGlobals == nil {
			runCfg.InitialGlobals = s.World.GlobalsMap()
		}
		for _, v := range r.Result.Violations {
			o, err := Replay(s.Finding, v, runCfg)
			if err != nil {
				return nil, err
			}
			out = append(out, o)
		}
	}
	return out, nil
}
