package validate

import (
	"reflect"
	"strings"
	"testing"

	"cnetverifier/internal/netemu"
)

func sampleResult() *SweepResult {
	return &SweepResult{
		Profile:     "OP-II",
		Reliability: true,
		Fixes:       netemu.FixSet{ReliableSignaling: true},
		Seeds:       8,
		Seed:        1,
		Cells: []SweepCell{
			{Finding: "S1", Property: "PacketService_OK", Loss: 0, Runs: 8,
				Reproduced: 8, Rate: 1, CILow: 0.6757, CIHigh: 1,
				TraceHash: "00deadbeef001122"},
			{Finding: "S2", Property: "NoDetachLoop", Loss: 0.3, Runs: 8,
				Reproduced: 5, Aborted: 2, Satisfied: 1, Rate: 0.625,
				CILow: 0.3057, CIHigh: 0.8632, TraceHash: "abcdef0123456789"},
		},
	}
}

// TestJSONRoundTrip pins the JSON artifact format: encode → decode →
// encode must be byte-identical.
func TestJSONRoundTrip(t *testing.T) {
	r := sampleResult()
	first, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeJSON(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := dec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Errorf("JSON round trip drifted:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if _, err := DecodeJSON([]byte(`{"profile": "x", "bogus_field": 1}`)); err == nil {
		t.Error("unknown JSON field accepted")
	}
}

// TestCSVRoundTrip pins the CSV artifact format the same way: the
// re-encoded table must be byte-identical to the first rendering.
func TestCSVRoundTrip(t *testing.T) {
	r := sampleResult()
	first := r.CSV()
	cells, err := DecodeCSV(first)
	if err != nil {
		t.Fatal(err)
	}
	second := (&SweepResult{Cells: cells}).CSV()
	if first != second {
		t.Errorf("CSV round trip drifted:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	if len(cells) != len(r.Cells) {
		t.Fatalf("decoded %d cells, want %d", len(cells), len(r.Cells))
	}
	for i, c := range cells {
		if c.Finding != r.Cells[i].Finding || c.Runs != r.Cells[i].Runs ||
			c.Loss != r.Cells[i].Loss || c.TraceHash != r.Cells[i].TraceHash {
			t.Errorf("cell %d drifted: %+v != %+v", i, c, r.Cells[i])
		}
	}

	if _, err := DecodeCSV("wrong,header\n"); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := DecodeCSV(CSVHeader() + "\nS1,p,0,8\n"); err == nil {
		t.Error("short row accepted")
	}
	if _, err := DecodeCSV(CSVHeader() + "\nS1,p,0,x,0,0,0,0,0,0,h\n"); err == nil {
		t.Error("non-numeric runs accepted")
	}
}

// TestCSVHeaderMatchesJSONTags enforces the shared schema: the CSV
// column set is exactly SweepCell's json field set, in declaration
// order. Adding a cell field without a json tag (or with a mismatched
// CSV writer) fails here.
func TestCSVHeaderMatchesJSONTags(t *testing.T) {
	var want []string
	typ := reflect.TypeOf(SweepCell{})
	for i := 0; i < typ.NumField(); i++ {
		tag := typ.Field(i).Tag.Get("json")
		name, _, _ := strings.Cut(tag, ",")
		if name == "" || name == "-" {
			t.Errorf("SweepCell field %s has no json tag; CSV and JSON would drift", typ.Field(i).Name)
			continue
		}
		want = append(want, name)
	}
	if got := CSVHeader(); got != strings.Join(want, ",") {
		t.Errorf("CSVHeader() = %q, json tags say %q", got, strings.Join(want, ","))
	}
	// The writer and the decoder must agree on the column count.
	row := strings.Split(sampleResult().CSV(), "\n")[1]
	if got, wantN := len(strings.Split(row, ",")), len(want); got != wantN {
		t.Errorf("CSV row has %d columns, header has %d", got, wantN)
	}
}
