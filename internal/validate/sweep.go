package validate

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"cnetverifier/internal/check"
	"cnetverifier/internal/core"
	"cnetverifier/internal/netemu"
	"cnetverifier/internal/radio"
	"cnetverifier/internal/stats"
	"cnetverifier/internal/trace"
)

// This file grows the one-counterexample Replay into a campaign
// engine: validate.Sweep runs a (finding × loss-rate × seed) grid of
// emulator reproductions concurrently, with the worker discipline of
// internal/check/parallel.go (a shared atomic job cursor, results slot
// -indexed so aggregation order never depends on scheduling), and
// aggregates per-cell reproduction rates with Wilson confidence
// intervals. It is the §3.3 validation methodology (Figures 9–10:
// reproduce each counterexample under operational conditions, many
// trials per setting) made runnable as one command — with the
// reliable-delivery layer of internal/netemu keeping every lossy run
// terminating instead of wedging.

// SweepTarget is one screened counterexample a sweep reproduces.
type SweepTarget struct {
	// Scoped is the screening world (defective configuration).
	Scoped core.Scoped
	// Violation is the canonical (shortest, BFS) counterexample.
	Violation check.Violation
}

// SweepConfig configures a loss-sweep validation campaign.
type SweepConfig struct {
	// Findings restricts the grid to a subset of S1–S6; nil sweeps
	// every scoped screening world.
	Findings []core.FindingID
	// LossRates is the air-interface loss grid (default 0–0.5 in steps
	// of 0.1). Each rate applies independently to both link directions.
	LossRates []float64
	// Seeds is the number of trials per (finding, loss) cell
	// (default 8); trial i runs with seed Seed+i.
	Seeds int
	// Workers bounds the concurrently executing emulator runs
	// (default 1). Any worker count produces the identical result:
	// runs are dealt from an atomic cursor and written to their own
	// slot, exactly like the parallel checker's walk splitting.
	Workers int
	// Profile is the emulated operator (default OP-II).
	Profile *netemu.OperatorProfile
	// Fixes optionally enables the §8 solutions — a fixes-enabled sweep
	// must suppress reproduction even under loss.
	Fixes netemu.FixSet
	// NoReliability disables the retransmission layer: lossy runs may
	// then stall short of their property instead of degrading, but
	// still terminate (a dropped frame ends its event chain).
	NoReliability bool
	// Reliability overrides the profile's NAS retransmission timers
	// when non-zero.
	Reliability netemu.ReliabilityConfig
	// Seed is the base trial seed (default 1).
	Seed int64
	// Targets optionally supplies pre-screened counterexamples,
	// skipping the screening phase (tests reuse one screening pass
	// across several sweeps).
	Targets []SweepTarget
	// StateBudget, when positive, caps the distinct states of the
	// screening phase with one shared token pool (check.Budget).
	StateBudget int
	// Cancel cooperatively aborts the sweep; the result is then marked
	// Truncated and unprocessed runs are omitted from the tallies.
	Cancel *check.Cancel
}

func (c SweepConfig) sweepDefaults() SweepConfig {
	if len(c.LossRates) == 0 {
		c.LossRates = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	}
	if c.Seeds == 0 {
		c.Seeds = 8
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Profile == nil {
		p := netemu.OPII()
		c.Profile = &p
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// SweepCell aggregates the trials of one (finding, loss-rate) grid
// point. Every trial terminates in exactly one of three ways —
// reproduction of the paper's symptom, a traced retry-exhaustion
// abort, or property satisfaction — so Reproduced+Aborted+Satisfied
// always equals Runs.
type SweepCell struct {
	Finding  string  `json:"finding"`
	Property string  `json:"property"`
	Loss     float64 `json:"loss"`
	Runs     int     `json:"runs"`
	// Reproduced counts trials where the emulator exhibited the
	// screened symptom.
	Reproduced int `json:"reproduced"`
	// Aborted counts non-reproducing trials that terminated through at
	// least one retry-exhaustion abort of the reliable-delivery layer.
	Aborted int `json:"aborted"`
	// Satisfied counts trials that ended with the property holding and
	// no abort.
	Satisfied int `json:"satisfied"`
	// Rate is Reproduced/Runs; CILow/CIHigh bound it with a 95% Wilson
	// score interval.
	Rate   float64 `json:"rate"`
	CILow  float64 `json:"ci_low"`
	CIHigh float64 `json:"ci_high"`
	// TraceHash is an FNV-64a digest over the rendered trace lines of
	// every trial in seed order — byte-identical traces across worker
	// counts is part of the determinism contract.
	TraceHash string `json:"trace_hash"`
}

// SweepResult is the full campaign outcome, JSON/CSV-renderable.
type SweepResult struct {
	Profile     string        `json:"profile"`
	Reliability bool          `json:"reliability"`
	Fixes       netemu.FixSet `json:"fixes"`
	Seeds       int           `json:"seeds"`
	Seed        int64         `json:"seed"`
	Truncated   bool          `json:"truncated,omitempty"`
	Cells       []SweepCell   `json:"cells"`
}

// SweepTargets screens the scoped worlds for the given findings (nil =
// all) breadth-first — the shortest, canonical counterexamples — and
// returns one target per world. workers > 1 screens worlds
// concurrently (core.ScreenWorlds); the violation sets are identical
// either way per the parallel engine's determinism contract.
func SweepTargets(findings []core.FindingID, workers, stateBudget int) ([]SweepTarget, error) {
	want := func(id core.FindingID) bool {
		if len(findings) == 0 {
			return true
		}
		for _, f := range findings {
			if f == id {
				return true
			}
		}
		return false
	}
	var scoped []core.Scoped
	for _, s := range core.ScopedModels() {
		if want(s.Finding) {
			scoped = append(scoped, s)
		}
	}
	if len(scoped) == 0 {
		return nil, fmt.Errorf("validate: no scoped world matches findings %v", findings)
	}
	perWorld := func(s core.Scoped) check.Options {
		opt := s.Options
		opt.Strategy = check.BFS
		return opt
	}
	rs, err := core.ScreenWorlds(scoped, perWorld,
		core.CampaignOptions{Parallel: workers, StateBudget: stateBudget})
	if err != nil {
		return nil, err
	}
	targets := make([]SweepTarget, len(rs))
	for i, r := range rs {
		if len(r.Result.Violations) == 0 {
			return nil, fmt.Errorf("validate: %s produced no counterexample to sweep", scoped[i].Finding)
		}
		targets[i] = SweepTarget{Scoped: scoped[i], Violation: r.Result.Violations[0]}
	}
	return targets, nil
}

// sweepRun is the outcome of one trial.
type sweepRun struct {
	done       bool
	reproduced bool
	aborted    bool
	traceHash  uint64
}

// Sweep runs the loss-sweep validation campaign. The result is a pure
// function of the configuration: the same grid and seeds produce
// byte-identical JSON at any worker count.
func Sweep(cfg SweepConfig) (*SweepResult, error) {
	cfg = cfg.sweepDefaults()
	targets := cfg.Targets
	if targets == nil {
		var err error
		targets, err = SweepTargets(cfg.Findings, cfg.Workers, cfg.StateBudget)
		if err != nil {
			return nil, err
		}
	}

	type job struct{ ti, li, si int }
	jobs := make([]job, 0, len(targets)*len(cfg.LossRates)*cfg.Seeds)
	for ti := range targets {
		for li := range cfg.LossRates {
			for si := 0; si < cfg.Seeds; si++ {
				jobs = append(jobs, job{ti, li, si})
			}
		}
	}

	runs := make([]sweepRun, len(jobs))
	errs := make([]error, len(jobs))
	var cursor atomic.Int64
	workers := cfg.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !cfg.Cancel.Cancelled() {
				i := int(cursor.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				runs[i], errs[i] = sweepOne(targets[j.ti], cfg, cfg.LossRates[j.li], j.si)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &SweepResult{
		Profile:     cfg.Profile.Name,
		Reliability: !cfg.NoReliability,
		Fixes:       cfg.Fixes,
		Seeds:       cfg.Seeds,
		Seed:        cfg.Seed,
		Truncated:   cfg.Cancel.Cancelled(),
	}
	for ti, t := range targets {
		for li, loss := range cfg.LossRates {
			cell := SweepCell{
				Finding:  string(t.Scoped.Finding),
				Property: t.Violation.Property,
				Loss:     loss,
			}
			h := fnv.New64a()
			for si := 0; si < cfg.Seeds; si++ {
				r := runs[(ti*len(cfg.LossRates)+li)*cfg.Seeds+si]
				if !r.done {
					continue // cancelled before this trial ran
				}
				cell.Runs++
				switch {
				case r.reproduced:
					cell.Reproduced++
				case r.aborted:
					cell.Aborted++
				default:
					cell.Satisfied++
				}
				var b [8]byte
				for k := 0; k < 8; k++ {
					b[k] = byte(r.traceHash >> (8 * k))
				}
				h.Write(b[:])
			}
			if cell.Runs > 0 {
				cell.Rate = float64(cell.Reproduced) / float64(cell.Runs)
			}
			cell.CILow, cell.CIHigh = stats.Wilson(cell.Reproduced, cell.Runs, stats.Z95)
			cell.TraceHash = fmt.Sprintf("%016x", h.Sum64())
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// sweepSeed derives the loss-injection seed of one trial from
// everything that identifies it, so a trial's randomness is a pure
// function of the grid point — never of scheduling.
func sweepSeed(t SweepTarget, loss float64, seedIdx int, base int64) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%v|%d|%d", t.Scoped.Finding, t.Violation.Property, loss, seedIdx, base)
	return int64(h.Sum64() & math.MaxInt64)
}

// sweepOne runs one trial: the counterexample's replay ladder over a
// stack with the retransmission layer and random loss on both links.
func sweepOne(t SweepTarget, cfg SweepConfig, loss float64, seedIdx int) (sweepRun, error) {
	base := sweepSeed(t, loss, seedIdx, cfg.Seed)
	rcfg := Config{
		Profile:        cfg.Profile,
		Fixes:          cfg.Fixes,
		InitialGlobals: t.Scoped.World.GlobalsMap(),
		Seed:           cfg.Seed + int64(seedIdx),
		prepare: func(w *netemu.World) {
			if !cfg.NoReliability {
				rc := cfg.Reliability
				if rc == (netemu.ReliabilityConfig{}) {
					rc = cfg.Profile.NASRetrans
				}
				w.SetReliability(rc)
			}
			// The §8 reliable-transfer shim is modeled as a loss-free,
			// in-order NAS channel (see the Fixes.ReliableSignaling
			// handling in Replay): the air loss it absorbs is not
			// re-injected above it. The world's own retransmission
			// layer recovers loss but not ordering — a later NAS frame
			// can overtake an earlier one still in retransmission —
			// so raw loss under the shim would fabricate reorderings
			// the in-sequence shim rules out.
			if loss > 0 && !cfg.Fixes.ReliableSignaling {
				w.Uplink.Dropper = radio.NewDropper(loss, base)
				w.Downlink.Dropper = radio.NewDropper(loss, base+1)
			}
		},
	}
	out, err := Replay(t.Scoped.Finding, t.Violation, rcfg)
	if err != nil {
		return sweepRun{}, err
	}
	r := sweepRun{done: true, reproduced: out.Reproduced}
	h := fnv.New64a()
	for _, rec := range out.Trace {
		if rec.Type == trace.TypeAbort {
			r.aborted = true
		}
		h.Write([]byte(rec.String()))
		h.Write([]byte{'\n'})
	}
	r.traceHash = h.Sum64()
	return r, nil
}

// JSON renders the result as deterministic, indented JSON.
func (r *SweepResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// CSV renders the cells as a CSV table (header + one row per cell).
// The header is derived from SweepCell's json tags (CSVHeader), so the
// two export formats cannot drift apart; DecodeCSV reads it back.
func (r *SweepResult) CSV() string {
	var b strings.Builder
	b.WriteString(CSVHeader())
	b.WriteByte('\n')
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%s,%s,%g,%d,%d,%d,%d,%.4f,%.4f,%.4f,%s\n",
			c.Finding, c.Property, c.Loss, c.Runs, c.Reproduced, c.Aborted,
			c.Satisfied, c.Rate, c.CILow, c.CIHigh, c.TraceHash)
	}
	return b.String()
}

// Table renders a human-readable summary.
func (r *SweepResult) Table() string {
	var b strings.Builder
	mode := "reliable delivery on"
	if !r.Reliability {
		mode = "reliable delivery OFF"
	}
	fmt.Fprintf(&b, "loss sweep: %s, %s, %d seeds (base %d)\n", r.Profile, mode, r.Seeds, r.Seed)
	fmt.Fprintf(&b, "%-4s %-17s %5s  %11s %7s %9s  %-6s %s\n",
		"id", "property", "loss", "reproduced", "aborts", "satisfied", "rate", "95% CI")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-4s %-17s %5.2f  %7d/%-3d %7d %9d  %5.0f%%  [%.2f, %.2f]\n",
			c.Finding, c.Property, c.Loss, c.Reproduced, c.Runs, c.Aborted,
			c.Satisfied, c.Rate*100, c.CILow, c.CIHigh)
	}
	if r.Truncated {
		b.WriteString("(truncated by cancellation; tallies cover completed trials only)\n")
	}
	return b.String()
}
