package validate

import (
	"strings"
	"testing"

	"cnetverifier/internal/check"
	"cnetverifier/internal/core"
	"cnetverifier/internal/netemu"
)

// screenFirst returns the first violation of a scoped world.
func screenFirst(t *testing.T, s core.Scoped) check.Violation {
	t.Helper()
	opt := s.Options
	opt.Strategy = check.BFS
	r, err := core.Screen(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Result.Violations) == 0 {
		t.Fatalf("%s: no violation to validate", s.Finding)
	}
	return r.Result.Violations[0]
}

// The S1 counterexample discovered by the checker reproduces on the
// emulator — and does NOT reproduce when the §8 fixes are deployed.
func TestReplayS1(t *testing.T) {
	v := screenFirst(t, core.S1World(false))

	out, err := Replay(core.S1, v, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reproduced {
		t.Fatalf("S1 counterexample not reproduced: %s", out)
	}
	if out.EventCount < 3 {
		t.Fatalf("only %d env events replayed", out.EventCount)
	}
	if len(out.Trace) == 0 {
		t.Fatal("no validation trace collected")
	}
	if !strings.Contains(out.String(), "reproduced") {
		t.Fatalf("outcome string: %s", out)
	}

	fixed, err := Replay(core.S1, v, Config{Fixes: netemu.AllFixes()})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Reproduced {
		t.Fatal("S1 symptom reproduced on the fixed stack")
	}
}

// The S4 HOL counterexample reproduces: the call is delayed behind the
// location update on the emulator too.
func TestReplayS4(t *testing.T) {
	world := core.S4CSWorld(false)
	v := screenFirst(t, world)
	out, err := Replay(core.S4, v, Config{InitialGlobals: world.World.GlobalsMap()})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reproduced {
		t.Fatalf("S4 counterexample not reproduced: %s", out)
	}
	fixed, err := Replay(core.S4, v, Config{Fixes: netemu.AllFixes(), InitialGlobals: world.World.GlobalsMap()})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Reproduced {
		t.Fatal("S4 symptom reproduced with parallel updates")
	}
}

// The S6 counterexample reproduces and the fix prevents it.
func TestReplayS6(t *testing.T) {
	v := screenFirst(t, core.S6World(false))
	out, err := Replay(core.S6, v, Config{Profile: profilePtr(netemu.OPI())})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reproduced {
		t.Fatalf("S6 counterexample not reproduced: %s", out)
	}
	fixed, err := Replay(core.S6, v, Config{Fixes: netemu.AllFixes()})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Reproduced {
		t.Fatal("S6 symptom reproduced on the fixed stack")
	}
}

func profilePtr(p netemu.OperatorProfile) *netemu.OperatorProfile { return &p }

func TestReplayUnknownProperty(t *testing.T) {
	v := check.Violation{Property: "Nonsense_OK"}
	if _, err := Replay(core.S1, v, Config{}); err == nil {
		t.Fatal("unknown property accepted")
	}
}

// The full two-phase campaign: screen everything, validate every
// counterexample; the vast majority must reproduce. (S2's loss/reorder
// interleavings are inherently timing-dependent — the paper itself
// could not validate S2 over the air, §3.1 — so the campaign tolerates
// non-reproduction there.)
func TestCampaign(t *testing.T) {
	outcomes, err := Campaign(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) < 5 {
		t.Fatalf("only %d outcomes", len(outcomes))
	}
	byFinding := map[core.FindingID]bool{}
	for _, o := range outcomes {
		if o.Reproduced {
			byFinding[o.Finding] = true
		}
	}
	for _, id := range []core.FindingID{core.S1, core.S3, core.S4, core.S6} {
		if !byFinding[id] {
			t.Errorf("%s: no counterexample reproduced on the emulator", id)
		}
	}
}

// S2's counterexamples reproduce on the emulator through targeted drops
// and reordering jitter — beyond what the paper could stage over real
// carriers (§5.2.2) — and the reliable shim prevents all of them.
func TestReplayS2(t *testing.T) {
	world := core.S2World(false)
	opt := world.Options
	opt.Strategy = check.BFS
	r, err := core.Screen(world, opt)
	if err != nil {
		t.Fatal(err)
	}
	reproduced := 0
	for _, v := range r.Result.Violations {
		o, err := Replay(core.S2, v, Config{InitialGlobals: world.World.GlobalsMap()})
		if err != nil {
			t.Fatal(err)
		}
		if o.Reproduced {
			reproduced++
			// The same counterexample must NOT reproduce with the shim.
			f, err := Replay(core.S2, v, Config{
				Fixes:          netemu.FixSet{ReliableSignaling: true},
				InitialGlobals: world.World.GlobalsMap(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if f.Reproduced {
				t.Fatalf("S2 reproduced despite the reliable shim: %s", f)
			}
		}
	}
	if reproduced == 0 {
		t.Fatal("no S2 counterexample reproduced")
	}
	t.Logf("S2: %d/%d counterexamples reproduced", reproduced, len(r.Result.Violations))
}
