package validate

import (
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cnetverifier/internal/check"
	"cnetverifier/internal/core"
	"cnetverifier/internal/netemu"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden sweep fixtures")

// sweepTargets screens S1–S6 once per test binary: every sweep test
// reuses the same canonical counterexamples.
var sweepTargets = sync.OnceValues(func() ([]SweepTarget, error) {
	return SweepTargets(nil, 4, 0)
})

func mustTargets(t *testing.T) []SweepTarget {
	t.Helper()
	targets, err := sweepTargets()
	if err != nil {
		t.Fatal(err)
	}
	return targets
}

// The determinism contract: the same grid and seeds produce
// byte-identical JSON whether the runs execute serially or dealt
// across eight workers.
func TestSweepWorkerDeterminism(t *testing.T) {
	targets := mustTargets(t)
	run := func(workers int) []byte {
		res, err := Sweep(SweepConfig{
			Targets:   targets,
			LossRates: []float64{0, 0.2},
			Seeds:     3,
			Workers:   workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	parallel := run(8)
	if string(serial) != string(parallel) {
		t.Fatalf("sweep output depends on worker count:\n--- workers=1\n%s\n--- workers=8\n%s", serial, parallel)
	}
}

// Every trial terminates in exactly one of the three accounted ways,
// and the aggregates are internally consistent.
func TestSweepAccounting(t *testing.T) {
	targets := mustTargets(t)
	res, err := Sweep(SweepConfig{
		Targets:   targets,
		LossRates: []float64{0, 0.4},
		Seeds:     4,
		Workers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(targets) * 2
	if len(res.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(res.Cells), wantCells)
	}
	for _, c := range res.Cells {
		if c.Runs != 4 {
			t.Fatalf("%s@%.1f: runs = %d, want 4", c.Finding, c.Loss, c.Runs)
		}
		if c.Reproduced+c.Aborted+c.Satisfied != c.Runs {
			t.Fatalf("%s@%.1f: buckets %d+%d+%d != runs %d",
				c.Finding, c.Loss, c.Reproduced, c.Aborted, c.Satisfied, c.Runs)
		}
		const eps = 1e-9 // Wilson bounds at p∈{0,1} round within a ulp
		if c.Rate < 0 || c.Rate > 1 || c.CILow > c.Rate+eps || c.CIHigh < c.Rate-eps {
			t.Fatalf("%s@%.1f: rate %.3f outside CI [%.3f, %.3f]",
				c.Finding, c.Loss, c.Rate, c.CILow, c.CIHigh)
		}
		if len(c.TraceHash) != 16 {
			t.Fatalf("%s@%.1f: trace hash %q", c.Finding, c.Loss, c.TraceHash)
		}
	}
	// The loss-free S1 cell replays a validated counterexample: it must
	// reproduce in every trial (the baseline TestReplayS1 asserts one).
	found := false
	for _, c := range res.Cells {
		if c.Finding == "S1" && c.Loss == 0 {
			found = true
			if c.Reproduced != c.Runs {
				t.Fatalf("S1 at zero loss reproduced %d/%d", c.Reproduced, c.Runs)
			}
		}
	}
	if !found {
		t.Fatal("no S1 zero-loss cell")
	}
}

// With the §8 fixes enabled the sweep must come back clean: no cell
// reproduces its symptom, at any loss rate — the suppression the paper
// argues for, now checked under operational loss rather than only in
// the loss-free validation runs.
func TestSweepFixesSuppressUnderLoss(t *testing.T) {
	targets := mustTargets(t)
	res, err := Sweep(SweepConfig{
		Targets:   targets,
		LossRates: []float64{0, 0.3},
		Seeds:     3,
		Workers:   4,
		Fixes:     netemu.AllFixes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Reproduced != 0 {
			t.Errorf("%s (%s) at loss %.1f: reproduced %d/%d despite all fixes",
				c.Finding, c.Property, c.Loss, c.Reproduced, c.Runs)
		}
	}
}

// A cancelled sweep reports itself truncated instead of presenting
// partial tallies as complete.
func TestSweepCancellation(t *testing.T) {
	targets := mustTargets(t)
	cancel := &check.Cancel{}
	cancel.Cancel()
	res, err := Sweep(SweepConfig{
		Targets:   targets[:1],
		LossRates: []float64{0},
		Seeds:     2,
		Cancel:    cancel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("cancelled sweep not marked truncated")
	}
	for _, c := range res.Cells {
		if c.Runs != 0 {
			t.Fatalf("pre-cancelled sweep still ran %d trials", c.Runs)
		}
	}
}

// Unknown findings are an error, not an empty sweep.
func TestSweepUnknownFinding(t *testing.T) {
	if _, err := Sweep(SweepConfig{Findings: []core.FindingID{"S9"}}); err == nil {
		t.Fatal("unknown finding accepted")
	}
}

// TestSweepGolden pins the S1–S6 reproduction tallies at loss 0, 0.1
// and 0.3 — the repo's Figure 9/10-style summary table. Any drift in
// the screening order, the replay ladder, the retransmission timers or
// the loss injection shows up as a golden diff. Refresh intentionally
// with:
//
//	go test ./internal/validate -run TestSweepGolden -update
func TestSweepGolden(t *testing.T) {
	targets := mustTargets(t)
	cases := []struct {
		name string
		cfg  SweepConfig
	}{
		{"defective", SweepConfig{}},
		{"fixed", SweepConfig{Fixes: netemu.AllFixes()}},
		{"noreliab", SweepConfig{NoReliability: true}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Targets = targets
			cfg.LossRates = []float64{0, 0.1, 0.3}
			cfg.Seeds = 4
			cfg.Workers = 4
			res, err := Sweep(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := res.CSV()

			path := filepath.Join("testdata", "golden", "sweep_"+tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}
