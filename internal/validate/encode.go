package validate

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strconv"
	"strings"
)

// This file closes the loop on the sweep's two export formats: both the
// JSON and the CSV rendering gain decoders, so campaign artifacts can
// be re-read, diffed and regression-tested. The CSV column set is not a
// second source of truth — it is derived by reflection from SweepCell's
// json tags, so a field added to the cell struct shows up in both
// formats (and in their round-trip tests) automatically.

// CSVFields returns the json tag names of the struct's fields in field
// order — the shared schema of a JSON row type and its CSV columns.
// Campaign-style report codecs (the loss sweep here, the population
// campaign in internal/campaign) derive their CSV headers from it so a
// field added to the row struct shows up in both formats — and in
// their round-trip tests — automatically. Fields without a json name
// (absent, "-") are skipped.
func CSVFields(row interface{}) []string {
	t := reflect.TypeOf(row)
	out := make([]string, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		tag := t.Field(i).Tag.Get("json")
		if name, _, _ := strings.Cut(tag, ","); name != "" && name != "-" {
			out = append(out, name)
		}
	}
	return out
}

// csvFields returns the SweepCell schema.
func csvFields() []string { return CSVFields(SweepCell{}) }

// CSVHeader returns the CSV header row (no trailing newline).
func CSVHeader() string {
	return strings.Join(csvFields(), ",")
}

// DecodeJSON parses a SweepResult.JSON rendering. Unknown fields are an
// error: an artifact that doesn't match the schema should fail loudly,
// not silently drop data.
func DecodeJSON(data []byte) (*SweepResult, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var r SweepResult
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("validate: decode sweep JSON: %w", err)
	}
	return &r, nil
}

// DecodeCSV parses a SweepResult.CSV rendering back into cells. The
// header must match CSVHeader exactly — column drift between writer and
// reader is the failure mode this guards against.
func DecodeCSV(data string) ([]SweepCell, error) {
	lines := strings.Split(strings.TrimRight(data, "\n"), "\n")
	if len(lines) == 0 || lines[0] != CSVHeader() {
		return nil, fmt.Errorf("validate: CSV header %q does not match %q", lines[0], CSVHeader())
	}
	cells := make([]SweepCell, 0, len(lines)-1)
	for ln, line := range lines[1:] {
		cols := strings.Split(line, ",")
		if len(cols) != len(csvFields()) {
			return nil, fmt.Errorf("validate: CSV row %d has %d columns, want %d", ln+2, len(cols), len(csvFields()))
		}
		var c SweepCell
		c.Finding, c.Property = cols[0], cols[1]
		c.TraceHash = cols[10]
		var err error
		for _, f := range []struct {
			name string
			dst  *int
			col  string
		}{
			{"runs", &c.Runs, cols[3]},
			{"reproduced", &c.Reproduced, cols[4]},
			{"aborted", &c.Aborted, cols[5]},
			{"satisfied", &c.Satisfied, cols[6]},
		} {
			if *f.dst, err = strconv.Atoi(f.col); err != nil {
				return nil, fmt.Errorf("validate: CSV row %d: bad %s %q", ln+2, f.name, f.col)
			}
		}
		for _, f := range []struct {
			name string
			dst  *float64
			col  string
		}{
			{"loss", &c.Loss, cols[2]},
			{"rate", &c.Rate, cols[7]},
			{"ci_low", &c.CILow, cols[8]},
			{"ci_high", &c.CIHigh, cols[9]},
		} {
			if *f.dst, err = strconv.ParseFloat(f.col, 64); err != nil {
				return nil, fmt.Errorf("validate: CSV row %d: bad %s %q", ln+2, f.name, f.col)
			}
		}
		cells = append(cells, c)
	}
	return cells, nil
}
