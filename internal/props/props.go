// Package props defines the three cellular-oriented properties of
// CNetVerifier's screening phase (§3.2.2) as monitors over model
// worlds:
//
//   - PacketService_OK: packet data service stays available once the
//     device has attached, unless explicitly deactivated by the user.
//   - CallService_OK: call requests are neither rejected nor delayed
//     without an explicit user operation.
//   - MM_OK: inter-system mobility (a 3G↔4G switch) is served whenever
//     requested and both systems are available.
//
// The monitors read the shared global context variables maintained by
// the protocol models (internal/names), so they apply unchanged to
// every scoped world assembled by internal/core.
package props

import (
	"fmt"
	"sync"

	"cnetverifier/internal/check"
	"cnetverifier/internal/model"
	"cnetverifier/internal/names"
)

// prop adapts a monitor function to check.Property.
type prop struct {
	name string
	f    func(w *model.World, last model.Step) string
}

func (p prop) Name() string                                 { return p.name }
func (p prop) Check(w *model.World, last model.Step) string { return p.f(w, last) }

// PacketServiceOK returns the PacketService_OK monitor. It fires when
// the network has detached a device that still wants service — the
// out-of-service symptom shared by S1, S2 and S6.
func PacketServiceOK() check.Property {
	// The description embeds the triggering step label; the label set is
	// tiny (the world's step alphabet) while the monitor fires on every
	// state the detach flag persists through, so memoize label → desc
	// rather than re-rendering per state. The map is shared by every
	// concurrent worker of a parallel run.
	var descs sync.Map
	return prop{
		name: "PacketService_OK",
		f: func(w *model.World, last model.Step) string {
			if w.Global(names.GDetachedByNet) == 1 {
				if d, ok := descs.Load(last.Label); ok {
					return d.(string)
				}
				d := fmt.Sprintf("device detached by network without user action (after %q)", last.Label)
				descs.Store(last.Label, d)
				return d
			}
			return ""
		},
	}
}

// CallServiceOK returns the CallService_OK monitor. It fires when an
// outgoing call request is rejected, or delayed behind an unrelated
// procedure (the S4 head-of-line blocking).
func CallServiceOK() check.Property {
	return prop{
		name: "CallService_OK",
		f: func(w *model.World, last model.Step) string {
			if w.Global(names.GCallRejected) == 1 {
				return "outgoing call rejected without user action"
			}
			if w.Global(names.GCallDelayed) == 1 {
				return "outgoing call delayed behind location update (HOL blocking)"
			}
			return ""
		},
	}
}

// DataServiceOK returns a companion monitor for the PS side of S4: an
// outgoing data request delayed behind a routing-area update. The paper
// folds this into the CallService_OK discussion (§6.1 "Internet data
// service"); it is kept separate here so counterexamples name the
// affected domain.
func DataServiceOK() check.Property {
	return prop{
		name: "DataService_OK",
		f: func(w *model.World, last model.Step) string {
			if w.Global(names.GDataDelayed) == 1 {
				return "outgoing data request delayed behind routing area update (HOL blocking)"
			}
			return ""
		},
	}
}

// DataServiceOKIn returns the DataService_OK monitor for one
// namespaced stack instance (fsm.NamespaceGlobals): it reads the
// instance's own "g.<ns>.dataDelayed" and names the instance in its
// description, so violations from different instances of a multi-UE
// world stay distinct (property, description) entries.
func DataServiceOKIn(ns string) check.Property {
	key := names.Namespaced(names.GDataDelayed, ns)
	// The description is constant per instance; render it once at
	// construction instead of per violating state (the flag persists, so
	// the monitor fires on every state of every suffix path).
	desc := fmt.Sprintf("outgoing data request delayed behind routing area update (HOL blocking) [%s]", ns)
	return prop{
		name: "DataService_OK",
		f: func(w *model.World, last model.Step) string {
			if w.Global(key) == 1 {
				return desc
			}
			return ""
		},
	}
}

// MMOK returns the MM_OK monitor: a pending inter-system switch must
// eventually be served. The monitor fires when the world is quiescent
// (no signaling in flight) yet the return-to-4G obligation raised by a
// completed CSFB call remains unmet — the S3 stuck-in-3G state.
func MMOK() check.Property {
	return prop{
		name: "MM_OK",
		f: func(w *model.World, last model.Step) string {
			if w.Global(names.GWantReturn4G) == 1 && w.Quiescent() {
				return "3G→4G switch requested but not served (stuck in 3G)"
			}
			return ""
		},
	}
}

// All returns the three properties of §3.2.2 plus the PS-side HOL
// companion monitor.
func All() []check.Property {
	return []check.Property{PacketServiceOK(), CallServiceOK(), DataServiceOK(), MMOK()}
}
