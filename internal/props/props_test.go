package props

import (
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/model"
	"cnetverifier/internal/names"
	"cnetverifier/internal/types"
)

// idleSpec is a machine that reacts to nothing (worlds for property
// evaluation only).
func idleSpec() *fsm.Spec {
	return &fsm.Spec{
		Name: "idle",
		Init: "IDLE",
		Transitions: []fsm.Transition{
			{Name: "noop", From: "IDLE", On: types.MsgPowerOn, To: fsm.Same},
		},
	}
}

func world(t *testing.T, globals map[string]int) *model.World {
	t.Helper()
	w, err := model.New(model.Config{
		Procs:   []model.ProcConfig{{Name: "X", Spec: idleSpec()}},
		Globals: globals,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPacketServiceOK(t *testing.T) {
	p := PacketServiceOK()
	if p.Name() != "PacketService_OK" {
		t.Fatalf("name = %s", p.Name())
	}
	if got := p.Check(world(t, nil), model.Step{}); got != "" {
		t.Fatalf("clean world flagged: %s", got)
	}
	w := world(t, map[string]int{names.GDetachedByNet: 1})
	if got := p.Check(w, model.Step{Label: "tau-reject-detach"}); got == "" {
		t.Fatal("network detach not flagged")
	}
}

func TestCallServiceOK(t *testing.T) {
	p := CallServiceOK()
	if got := p.Check(world(t, nil), model.Step{}); got != "" {
		t.Fatalf("clean world flagged: %s", got)
	}
	if got := p.Check(world(t, map[string]int{names.GCallRejected: 1}), model.Step{}); got == "" {
		t.Fatal("rejection not flagged")
	}
	if got := p.Check(world(t, map[string]int{names.GCallDelayed: 1}), model.Step{}); got == "" {
		t.Fatal("HOL delay not flagged")
	}
}

func TestDataServiceOK(t *testing.T) {
	p := DataServiceOK()
	if got := p.Check(world(t, map[string]int{names.GDataDelayed: 1}), model.Step{}); got == "" {
		t.Fatal("data delay not flagged")
	}
	if got := p.Check(world(t, nil), model.Step{}); got != "" {
		t.Fatalf("clean world flagged: %s", got)
	}
}

// MM_OK only fires on quiescent worlds: a pending return with signaling
// still in flight is not yet a violation.
func TestMMOKQuiescence(t *testing.T) {
	p := MMOK()
	w := world(t, map[string]int{names.GWantReturn4G: 1})
	if got := p.Check(w, model.Step{}); got == "" {
		t.Fatal("quiescent stuck state not flagged")
	}
	if err := w.Inject("X", types.Message{Kind: types.MsgPowerOn}); err != nil {
		t.Fatal(err)
	}
	if got := p.Check(w, model.Step{}); got != "" {
		t.Fatalf("in-flight world flagged: %s", got)
	}
}

func TestAll(t *testing.T) {
	props := All()
	if len(props) != 4 {
		t.Fatalf("All() = %d properties", len(props))
	}
	seen := map[string]bool{}
	for _, p := range props {
		if seen[p.Name()] {
			t.Fatalf("duplicate property %s", p.Name())
		}
		seen[p.Name()] = true
	}
	for _, want := range []string{"PacketService_OK", "CallService_OK", "DataService_OK", "MM_OK"} {
		if !seen[want] {
			t.Fatalf("missing property %s", want)
		}
	}
}
