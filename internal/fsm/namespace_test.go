package fsm

import (
	"testing"

	"cnetverifier/internal/types"
)

// nsProbe is a minimal recording Ctx for exercising the namespace
// wrapper directly.
type nsProbe struct {
	gets   []string
	sets   map[string]int
	slots  map[int32]int32
	sends  []string
	outs   []types.MsgKind
	traces int
}

func newNSProbe() *nsProbe {
	return &nsProbe{sets: map[string]int{}, slots: map[int32]int32{}}
}

func (p *nsProbe) Get(name string) int {
	p.gets = append(p.gets, name)
	return p.sets[name]
}
func (p *nsProbe) Set(name string, v int)   { p.sets[name] = v }
func (p *nsProbe) GetI(slot int32) int32    { return p.slots[slot] }
func (p *nsProbe) SetI(slot int32, v int32) { p.slots[slot] = v }
func (p *nsProbe) Send(to string, m types.Message) {
	p.sends = append(p.sends, to+"/"+m.Kind.String())
}
func (p *nsProbe) Output(m types.Message)           { p.outs = append(p.outs, m.Kind) }
func (p *nsProbe) Trace(format string, args ...any) { p.traces++ }

func nsTestSpec() *Spec {
	return &Spec{
		Name:  "base",
		Proto: types.ProtoGMM,
		Init:  "A",
		Vars:  map[string]int{"local": 7},
		Transitions: []Transition{
			{
				Name: "t0", From: "A", To: "B", On: types.MsgUserDataOn,
				Guard: func(c Ctx, e Event) bool { return c.Get("g.mode") == 0 },
				Action: func(c Ctx, e Event) {
					c.Set("g.done", 1)
					c.Set("local", c.Get("local")+1)
					c.SetI(0, c.GetI(0)+1)
					c.Send("peer", types.NewMessage(types.MsgAttachRequest, types.ProtoGMM))
					c.Output(types.NewMessage(types.MsgDetachRequest, types.ProtoGMM))
					c.Trace("fired")
				},
			},
		},
	}
}

// TestNamespaceGlobalsRewrite pins the context-boundary rewrite:
// "g."-prefixed names gain the namespace element, everything else —
// locals, slots, sends, outputs, traces — passes through untouched.
func TestNamespaceGlobalsRewrite(t *testing.T) {
	ns := NamespaceGlobals(nsTestSpec(), "ue3")
	tr := ns.Transitions[0]
	probe := newNSProbe()

	if !tr.Guard(probe, Ev(types.MsgUserDataOn)) {
		t.Fatal("guard false on zero-valued probe")
	}
	tr.Action(probe, Ev(types.MsgUserDataOn))

	wantGets := []string{"g.ue3.mode", "local"}
	if len(probe.gets) != 2 || probe.gets[0] != wantGets[0] || probe.gets[1] != wantGets[1] {
		t.Errorf("gets = %v, want %v", probe.gets, wantGets)
	}
	if probe.sets["g.ue3.done"] != 1 {
		t.Errorf("global write not namespaced: sets = %v", probe.sets)
	}
	if _, leaked := probe.sets["g.done"]; leaked {
		t.Error("un-namespaced global name leaked through the wrapper")
	}
	if probe.sets["local"] != 1 {
		t.Errorf("local write rewritten or lost: sets = %v", probe.sets)
	}
	if probe.slots[0] != 1 {
		t.Errorf("slot access did not pass through: slots = %v", probe.slots)
	}
	if len(probe.sends) != 1 || probe.sends[0] != "peer/"+types.MsgAttachRequest.String() {
		t.Errorf("sends = %v, want untouched peer send", probe.sends)
	}
	if len(probe.outs) != 1 || probe.outs[0] != types.MsgDetachRequest {
		t.Errorf("outputs = %v, want untouched output", probe.outs)
	}
	if probe.traces != 1 {
		t.Errorf("traces = %d, want pass-through", probe.traces)
	}
}

// TestNamespaceGlobalsIdentity pins the spec-identity contract: a
// namespaced spec is a distinct *Spec with a derived name (its own
// layout and effect-cache key), the base spec is not mutated, and the
// empty namespace is the identity.
func TestNamespaceGlobalsIdentity(t *testing.T) {
	base := nsTestSpec()
	ns := NamespaceGlobals(base, "ue3")
	if ns == base {
		t.Fatal("NamespaceGlobals returned the base spec for a nonempty namespace")
	}
	if ns.Name != "base#ue3" {
		t.Errorf("namespaced name = %q, want base#ue3", ns.Name)
	}
	if ns.Proto != base.Proto || ns.Init != base.Init || len(ns.Transitions) != len(base.Transitions) {
		t.Error("namespacing changed spec structure beyond the name")
	}
	if got := NamespaceGlobals(base, ""); got != base {
		t.Error("empty namespace must return the spec itself")
	}

	// Base spec closures still see un-namespaced names.
	probe := newNSProbe()
	base.Transitions[0].Action(probe, Ev(types.MsgUserDataOn))
	if probe.sets["g.done"] != 1 {
		t.Errorf("base spec was mutated by namespacing: sets = %v", probe.sets)
	}

	// Distinct namespaces from one base do not share a rewriter.
	other := NamespaceGlobals(base, "ue4")
	p3, p4 := newNSProbe(), newNSProbe()
	ns.Transitions[0].Action(p3, Ev(types.MsgUserDataOn))
	other.Transitions[0].Action(p4, Ev(types.MsgUserDataOn))
	if p3.sets["g.ue3.done"] != 1 || p4.sets["g.ue4.done"] != 1 {
		t.Errorf("namespaces cross-contaminated: %v / %v", p3.sets, p4.sets)
	}
}
