package fsm

import (
	"strings"
	"testing"

	"cnetverifier/internal/types"
)

func analysisSpec() *Spec {
	return &Spec{
		Name: "analysis",
		Init: "A",
		Transitions: []Transition{
			{Name: "ab", From: "A", On: types.MsgPowerOn, To: "B"},
			{Name: "bc", From: "B", On: types.MsgPowerOff, To: "C",
				Guard: func(c Ctx, e Event) bool { return true }},
			{Name: "self", From: "C", On: types.MsgUserMove, To: Same},
			{Name: "reset", From: Any, On: types.MsgPeriodicTimer, To: "A"},
		},
	}
}

func TestReachable(t *testing.T) {
	s := analysisSpec()
	reach := s.Reachable()
	for _, st := range []State{"A", "B", "C"} {
		if !reach[st] {
			t.Fatalf("%s unreachable", st)
		}
	}
	if got := s.UnreachableStates(); len(got) != 0 {
		t.Fatalf("unreachable = %v", got)
	}
}

func TestUnreachableStates(t *testing.T) {
	s := &Spec{
		Name: "orphan",
		Init: "A",
		Transitions: []Transition{
			{Name: "ab", From: "A", On: types.MsgPowerOn, To: "B"},
			// X→Y exists but nothing ever reaches X.
			{Name: "xy", From: "X", On: types.MsgPowerOff, To: "Y"},
		},
	}
	got := s.UnreachableStates()
	if len(got) != 2 || got[0] != "X" || got[1] != "Y" {
		t.Fatalf("unreachable = %v, want [X Y]", got)
	}
}

func TestDeadEndStates(t *testing.T) {
	s := &Spec{
		Name: "dead",
		Init: "A",
		Transitions: []Transition{
			{Name: "ab", From: "A", On: types.MsgPowerOn, To: "B"},
		},
	}
	got := s.DeadEndStates()
	if len(got) != 1 || got[0] != "B" {
		t.Fatalf("dead ends = %v, want [B]", got)
	}
	// A wildcard transition rescues every state.
	if got := analysisSpec().DeadEndStates(); len(got) != 0 {
		t.Fatalf("dead ends = %v, want none", got)
	}
}

func TestEvents(t *testing.T) {
	evs := analysisSpec().Events()
	if len(evs) != 4 {
		t.Fatalf("events = %v", evs)
	}
}

func TestDOT(t *testing.T) {
	out := analysisSpec().DOT()
	for _, want := range []string{
		"digraph \"analysis\"",
		"peripheries=2",  // initial state marked
		"\"A\" -> \"B\"", // plain edge
		"style=dashed",   // guarded edge
		"\"C\" -> \"C\"", // Same resolved to self-loop
		"\"C\" -> \"A\"", // wildcard expanded
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestDescribe(t *testing.T) {
	out := analysisSpec().Describe()
	for _, want := range []string{"## analysis", "States (3, initial `A`)", "| 1 | A | PowerOn | B | ab |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("describe missing %q:\n%s", want, out)
		}
	}
	// Protocol association is included when set.
	s := analysisSpec()
	s.Proto = types.ProtoEMM
	if !strings.Contains(s.Describe(), "TS24.301") {
		t.Fatal("describe missing standard reference")
	}
}
