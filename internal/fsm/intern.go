package fsm

import (
	"sort"
	"sync"
)

// This file implements the interned, flat representation behind
// Machine: a package-level symbol interner for variable and global
// names, and a per-Spec layout that resolves every declared variable to
// a dense slot index at construction time. Guards and actions keep
// using string names (one read-only map lookup, no global locking on
// the hot path); the checker-facing encoding and cloning paths operate
// on []int32 slabs only.

// Sym is an interned name: a dense process-wide identifier for a
// variable or global name string. Syms are assigned in first-intern
// order and are therefore NOT stable across runs — they must never
// leak into canonical state encodings (layouts sort by name instead).
type Sym int32

var interner = struct {
	mu    sync.RWMutex
	ids   map[string]Sym
	names []string
}{ids: make(map[string]Sym)}

// Intern returns the symbol for a name, assigning the next dense id on
// first sight. Interning also canonicalizes the string: every layout
// and world built afterwards shares one copy of the name's bytes.
func Intern(name string) Sym {
	interner.mu.RLock()
	s, ok := interner.ids[name]
	interner.mu.RUnlock()
	if ok {
		return s
	}
	interner.mu.Lock()
	defer interner.mu.Unlock()
	if s, ok = interner.ids[name]; ok {
		return s
	}
	s = Sym(len(interner.names))
	interner.names = append(interner.names, name)
	interner.ids[name] = s
	return s
}

// SymName returns the name a symbol was interned from ("" if unknown).
func SymName(s Sym) string {
	interner.mu.RLock()
	defer interner.mu.RUnlock()
	if int(s) < 0 || int(s) >= len(interner.names) {
		return ""
	}
	return interner.names[s]
}

// SymString returns the canonical (interned) copy of a name's string,
// so distinct layouts referencing the same name share its bytes.
func SymString(name string) string {
	return SymName(Intern(name))
}

// layout is the flat variable layout of one Spec: declared names in
// sorted order, each resolved to a dense slot index. It is immutable
// and shared by every Machine of the spec.
type layout struct {
	names []string         // sorted declared variable names
	syms  []Sym            // interned symbols, parallel to names
	slot  map[string]int32 // name -> slot index
	init  []int32          // initial values, slot order
}

// layouts caches one layout per *Spec. Specs are built once at package
// init and treated as immutable after the first Machine instantiation;
// the cache is only consulted at construction time (fsm.New), never on
// the exploration hot path.
var layouts sync.Map // *Spec -> *layout

func layoutFor(s *Spec) *layout {
	if l, ok := layouts.Load(s); ok {
		return l.(*layout)
	}
	l := buildLayout(s)
	actual, _ := layouts.LoadOrStore(s, l)
	return actual.(*layout)
}

func buildLayout(s *Spec) *layout {
	l := &layout{
		names: make([]string, 0, len(s.Vars)),
		slot:  make(map[string]int32, len(s.Vars)),
	}
	for k := range s.Vars {
		l.names = append(l.names, SymString(k))
	}
	sort.Strings(l.names)
	l.syms = make([]Sym, len(l.names))
	l.init = make([]int32, len(l.names))
	for i, k := range l.names {
		l.slot[k] = int32(i)
		l.syms[i] = Intern(k)
		l.init[i] = int32(s.Vars[k])
	}
	return l
}

// Slot returns the dense index of a declared variable of the spec, for
// use with Ctx.GetI/SetI inside guards and actions. The bool reports
// whether the variable is declared; undeclared (runtime-grown)
// variables have no slot and must use the string forms.
func (s *Spec) Slot(name string) (int32, bool) {
	i, ok := layoutFor(s).slot[name]
	return i, ok
}

// SlotName returns the declared variable name at a slot index ("" when
// out of range) — the inverse of Slot, used by diagnostics.
func (s *Spec) SlotName(slot int32) string {
	l := layoutFor(s)
	if slot < 0 || int(slot) >= len(l.names) {
		return ""
	}
	return l.names[slot]
}

// overVar is one undeclared variable added to a machine at runtime via
// SetVar (test harnesses and replay mutations). The overflow list is
// kept sorted by name so the canonical encoding stays a pure function
// of the machine's logical state.
type overVar struct {
	name string
	val  int32
}

// overIdx locates name in the sorted overflow list.
func overIdx(over []overVar, name string) (int, bool) {
	i := sort.Search(len(over), func(i int) bool { return over[i].name >= name })
	return i, i < len(over) && over[i].name == name
}
