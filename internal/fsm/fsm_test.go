package fsm

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"cnetverifier/internal/types"
)

// testCtx is a minimal Ctx for exercising machines in isolation.
type testCtx struct {
	globals map[string]int
	sent    []types.Message
	outputs []types.Message
	traces  []string
}

func newTestCtx() *testCtx {
	return &testCtx{globals: make(map[string]int)}
}

func (c *testCtx) Get(name string) int { return c.globals[name] }
func (c *testCtx) Set(name string, v int) {
	c.globals[name] = v
}
func (c *testCtx) GetI(int32) int32  { return 0 }
func (c *testCtx) SetI(int32, int32) {}
func (c *testCtx) Send(to string, msg types.Message) {
	msg.To = to
	c.sent = append(c.sent, msg)
}
func (c *testCtx) Output(msg types.Message) { c.outputs = append(c.outputs, msg) }
func (c *testCtx) Trace(format string, args ...any) {
	c.traces = append(c.traces, fmt.Sprintf(format, args...))
}

func toggleSpec() *Spec {
	return &Spec{
		Name: "toggle",
		Init: "OFF",
		Vars: map[string]int{"count": 0},
		Transitions: []Transition{
			{Name: "on", From: "OFF", On: types.MsgPowerOn, To: "ON",
				Action: func(c Ctx, e Event) { c.Set("count", c.Get("count")+1) }},
			{Name: "off", From: "ON", On: types.MsgPowerOff, To: "OFF"},
		},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := toggleSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []*Spec{
		{Name: "", Init: "A"},
		{Name: "x", Init: ""},
		{Name: "x", Init: "A", Transitions: []Transition{{From: "", To: "A", On: types.MsgPowerOn}}},
		{Name: "x", Init: "A", Transitions: []Transition{{From: "A", To: "", On: types.MsgPowerOn}}},
		{Name: "x", Init: "A", Transitions: []Transition{{From: "A", To: "B"}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestSpecStates(t *testing.T) {
	got := toggleSpec().States()
	want := []State{"OFF", "ON"}
	if len(got) != len(want) {
		t.Fatalf("States() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("States() = %v, want %v", got, want)
		}
	}
}

func TestMachineStep(t *testing.T) {
	m := New(toggleSpec())
	c := newTestCtx()

	if m.State() != "OFF" {
		t.Fatalf("initial state = %s, want OFF", m.State())
	}
	tr, ok := m.Step(c, Ev(types.MsgPowerOn))
	if !ok || tr.Name != "on" {
		t.Fatalf("Step(PowerOn) = %v,%v", tr, ok)
	}
	if m.State() != "ON" {
		t.Fatalf("state after PowerOn = %s, want ON", m.State())
	}
	if m.Var("count") != 1 {
		t.Fatalf("count = %d, want 1", m.Var("count"))
	}
	// Unexpected event in ON state is discarded.
	if _, ok := m.Step(c, Ev(types.MsgPowerOn)); ok {
		t.Fatal("PowerOn in ON state should be discarded")
	}
	if _, ok := m.Step(c, Ev(types.MsgPowerOff)); !ok {
		t.Fatal("PowerOff in ON state should fire")
	}
	if m.State() != "OFF" {
		t.Fatalf("state after PowerOff = %s, want OFF", m.State())
	}
}

func TestWildcardAndSame(t *testing.T) {
	spec := &Spec{
		Name: "w",
		Init: "A",
		Transitions: []Transition{
			{Name: "go", From: "A", On: types.MsgPowerOn, To: "B"},
			{Name: "note", From: Any, On: types.MsgUserMove, To: Same,
				Action: func(c Ctx, e Event) { c.Set("moves", c.Get("moves")+1) }},
			{Name: "reset", From: Any, On: types.MsgPowerOff, To: "A"},
		},
	}
	m := New(spec)
	c := newTestCtx()

	if _, ok := m.Step(c, Ev(types.MsgUserMove)); !ok {
		t.Fatal("wildcard transition should fire in A")
	}
	if m.State() != "A" {
		t.Fatalf("Same should keep state, got %s", m.State())
	}
	m.Step(c, Ev(types.MsgPowerOn))
	if _, ok := m.Step(c, Ev(types.MsgUserMove)); !ok {
		t.Fatal("wildcard transition should fire in B")
	}
	if m.Var("moves") != 2 {
		t.Fatalf("moves = %d, want 2", m.Var("moves"))
	}
	m.Step(c, Ev(types.MsgPowerOff))
	if m.State() != "A" {
		t.Fatalf("reset should return to A, got %s", m.State())
	}
}

func TestGuards(t *testing.T) {
	spec := &Spec{
		Name: "guarded",
		Init: "A",
		Vars: map[string]int{"allow": 0},
		Transitions: []Transition{
			{Name: "gated", From: "A", On: types.MsgPowerOn, To: "B",
				Guard: func(c Ctx, e Event) bool { return c.Get("allow") == 1 }},
		},
	}
	m := New(spec)
	c := newTestCtx()
	if _, ok := m.Step(c, Ev(types.MsgPowerOn)); ok {
		t.Fatal("guard should block transition")
	}
	m.SetVar("allow", 1)
	if _, ok := m.Step(c, Ev(types.MsgPowerOn)); !ok {
		t.Fatal("guard should allow transition")
	}
}

func TestEnabledMultipleBranches(t *testing.T) {
	spec := &Spec{
		Name: "branchy",
		Init: "A",
		Transitions: []Transition{
			{Name: "b1", From: "A", On: types.MsgPowerOn, To: "B"},
			{Name: "b2", From: "A", On: types.MsgPowerOn, To: "C"},
			{Name: "b3", From: "A", On: types.MsgPowerOff, To: "D"},
		},
	}
	m := New(spec)
	c := newTestCtx()
	en := m.Enabled(c, Ev(types.MsgPowerOn))
	if len(en) != 2 {
		t.Fatalf("Enabled = %v, want 2 branches", en)
	}
	// Runtime Step takes the first branch (priority order).
	tr, _ := m.Step(c, Ev(types.MsgPowerOn))
	if tr.Name != "b1" {
		t.Fatalf("Step took %s, want b1", tr.Name)
	}
	// Apply can take the second branch explicitly.
	m2 := New(spec)
	tr2 := m2.Apply(c, Ev(types.MsgPowerOn), en[1])
	if tr2.Name != "b2" || m2.State() != "C" {
		t.Fatalf("Apply branch 2: %s state=%s", tr2.Name, m2.State())
	}
}

func TestGlobalScoping(t *testing.T) {
	spec := &Spec{
		Name: "glob",
		Init: "A",
		Transitions: []Transition{
			{Name: "t", From: "A", On: types.MsgPowerOn, To: Same,
				Action: func(c Ctx, e Event) {
					c.Set("local", 7)
					c.Set("g.shared", 9)
				}},
		},
	}
	m := New(spec)
	c := newTestCtx()
	m.Step(c, Ev(types.MsgPowerOn))
	if m.Var("local") != 7 {
		t.Fatalf("local var = %d, want 7", m.Var("local"))
	}
	if c.globals["g.shared"] != 9 {
		t.Fatalf("global = %d, want 9", c.globals["g.shared"])
	}
	if m.Var("g.shared") != 0 {
		t.Fatal("global leaked into machine-local vars")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(toggleSpec())
	c := newTestCtx()
	m.Step(c, Ev(types.MsgPowerOn))
	n := m.Clone()
	n.Step(c, Ev(types.MsgPowerOff))
	n.SetVar("count", 99)
	if m.State() != "ON" || m.Var("count") != 1 {
		t.Fatalf("clone mutated original: state=%s count=%d", m.State(), m.Var("count"))
	}
	if n.State() != "OFF" || n.Var("count") != 99 {
		t.Fatalf("clone state wrong: state=%s count=%d", n.State(), n.Var("count"))
	}
}

func TestEncodeCanonical(t *testing.T) {
	a := New(toggleSpec())
	b := New(toggleSpec())
	if !bytes.Equal(a.Encode(nil), b.Encode(nil)) {
		t.Fatal("identical machines encode differently")
	}
	c := newTestCtx()
	a.Step(c, Ev(types.MsgPowerOn))
	if bytes.Equal(a.Encode(nil), b.Encode(nil)) {
		t.Fatal("different states encode identically")
	}
	b.Step(c, Ev(types.MsgPowerOn))
	if !bytes.Equal(a.Encode(nil), b.Encode(nil)) {
		t.Fatal("re-converged machines encode differently")
	}
}

// Property: for any sequence of toggle events, the machine's count
// variable equals the number of OFF→ON transitions actually taken, and
// the final state is ON exactly when the last taken transition was "on".
func TestQuickToggleInvariant(t *testing.T) {
	f := func(events []bool) bool {
		m := New(toggleSpec())
		c := newTestCtx()
		ons := 0
		lastTaken := ""
		for _, on := range events {
			e := Ev(types.MsgPowerOff)
			if on {
				e = Ev(types.MsgPowerOn)
			}
			if tr, ok := m.Step(c, e); ok {
				lastTaken = tr.Name
				if tr.Name == "on" {
					ons++
				}
			}
		}
		wantON := lastTaken == "on"
		return m.Var("count") == ons && (m.State() == "ON") == wantON
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Encode is injective over (state, count) pairs reachable in
// the toggle machine, and Clone preserves encoding.
func TestQuickEncodeCloneAgree(t *testing.T) {
	f := func(events []bool) bool {
		m := New(toggleSpec())
		c := newTestCtx()
		for _, on := range events {
			if on {
				m.Step(c, Ev(types.MsgPowerOn))
			} else {
				m.Step(c, Ev(types.MsgPowerOff))
			}
		}
		return bytes.Equal(m.Encode(nil), m.Clone().Encode(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSetVarNewVariableEncodes(t *testing.T) {
	m := New(toggleSpec())
	before := m.Encode(nil)
	m.SetVar("extra", 5)
	after := m.Encode(nil)
	if bytes.Equal(before, after) {
		t.Fatal("newly declared variable not reflected in encoding")
	}
}

func TestEvHelpers(t *testing.T) {
	e := Ev(types.MsgAttachRequest)
	if e.Kind() != types.MsgAttachRequest {
		t.Fatalf("Ev kind = %v", e.Kind())
	}
	msg := types.NewMessage(types.MsgAttachReject, types.ProtoEMM).WithCause(types.CauseImplicitDetach)
	e2 := EvMsg(msg)
	if e2.Msg.Cause != types.CauseImplicitDetach || e2.Msg.System != types.Sys4G {
		t.Fatalf("EvMsg lost fields: %+v", e2.Msg)
	}
	if e2.String() == "" {
		t.Fatal("event String empty")
	}
}
