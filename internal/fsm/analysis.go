package fsm

import (
	"fmt"
	"sort"
	"strings"

	"cnetverifier/internal/types"
)

// Edge is one transition viewed structurally (guards ignored), after
// wildcard expansion: Any sources expand over all concrete states and
// Same targets resolve to the source. Index points back at the row of
// Spec.Transitions the edge came from.
type Edge struct {
	From, To State
	On       types.MsgKind
	Name     string
	Guarded  bool
	Index    int
}

// Edges expands the spec's transition table into concrete edges. This
// is the structural graph the reachability helpers and the internal/lint
// passes operate on.
func (s *Spec) Edges() []Edge {
	states := s.States()
	var out []Edge
	for i, t := range s.Transitions {
		froms := []State{t.From}
		if t.From == Any {
			froms = states
		}
		for _, f := range froms {
			to := t.To
			if to == Same {
				to = f
			}
			out = append(out, Edge{From: f, To: to, On: t.On, Name: t.Name, Guarded: t.Guard != nil, Index: i})
		}
	}
	return out
}

// edge and edges are the historical private aliases, kept so the
// existing helpers below read unchanged.
type edge = Edge

func (s *Spec) edges() []edge { return s.Edges() }

// Reachable returns the states reachable from Init through the
// transition structure, ignoring guards (an over-approximation: a
// guarded edge is assumed traversable).
//
// Deprecated: internal/lint reports unreachable states as rule SPEC004
// with location and severity attached; prefer lint.Spec for diagnostics
// and keep this only as the raw graph query.
func (s *Spec) Reachable() map[State]bool {
	adj := make(map[State][]State)
	for _, e := range s.edges() {
		adj[e.From] = append(adj[e.From], e.To)
	}
	seen := map[State]bool{s.Init: true}
	stack := []State{s.Init}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nxt := range adj[st] {
			if !seen[nxt] {
				seen[nxt] = true
				stack = append(stack, nxt)
			}
		}
	}
	return seen
}

// UnreachableStates lists declared states the structure can never
// enter — usually a spec bug.
//
// Deprecated: superseded by internal/lint rule SPEC004, which carries
// severity and location; kept as a thin query for existing callers.
func (s *Spec) UnreachableStates() []State {
	reach := s.Reachable()
	var out []State
	for _, st := range s.States() {
		if !reach[st] {
			out = append(out, st)
		}
	}
	return out
}

// DeadEndStates lists reachable states with no outgoing transitions at
// all (not even wildcards) — a machine stuck forever once there.
//
// Deprecated: superseded by internal/lint rule SPEC005, which carries
// severity and location; kept as a thin query for existing callers.
func (s *Spec) DeadEndStates() []State {
	outdeg := make(map[State]int)
	for _, e := range s.edges() {
		outdeg[e.From]++
	}
	var out []State
	for st, ok := range s.Reachable() {
		if ok && outdeg[st] == 0 {
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Events returns the sorted set of message kinds the spec reacts to.
func (s *Spec) Events() []types.MsgKind {
	set := map[types.MsgKind]bool{}
	for _, t := range s.Transitions {
		set[t.On] = true
	}
	out := make([]types.MsgKind, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DOT renders the machine as a Graphviz digraph: states as nodes
// (initial state doubled), transitions as labeled edges; guarded
// transitions render dashed.
//
// Deprecated: internal/lint's annotated DOT additionally colors
// unreachable, dead-end and shadowed elements from its findings; kept
// for callers that want the plain graph.
func (s *Spec) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", s.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	fmt.Fprintf(&b, "  %q [peripheries=2];\n", string(s.Init))
	for _, e := range s.edges() {
		style := ""
		if e.Guarded {
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q%s];\n",
			string(e.From), string(e.To), fmt.Sprintf("%s\\n%s", e.On, e.Name), style)
	}
	b.WriteString("}\n")
	return b.String()
}

// Describe renders a markdown summary of the spec: its states, the
// events it reacts to, and the transition table.
func (s *Spec) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s", s.Name)
	if s.Proto != types.ProtoNone {
		fmt.Fprintf(&b, " (%s, %s at %s)", s.Proto, s.Proto.Standard(), s.Proto.NetworkElement())
	}
	b.WriteString("\n\n")
	states := s.States()
	names := make([]string, len(states))
	for i, st := range states {
		names[i] = string(st)
	}
	fmt.Fprintf(&b, "States (%d, initial `%s`): `%s`\n\n", len(states), s.Init, strings.Join(names, "`, `"))
	b.WriteString("| # | From | Event | To | Transition | Guarded |\n")
	b.WriteString("|---|------|-------|----|------------|--------|\n")
	for i, t := range s.Transitions {
		to := t.To
		if to == Same {
			to = t.From
		}
		guarded := ""
		if t.Guard != nil {
			guarded = "yes"
		}
		fmt.Fprintf(&b, "| %d | %s | %s | %s | %s | %s |\n", i+1, t.From, t.On, to, t.Name, guarded)
	}
	return b.String()
}
