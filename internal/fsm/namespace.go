package fsm

import (
	"sync"

	"cnetverifier/internal/types"
)

// NamespaceGlobals returns a copy of the spec whose guards and actions
// see every "g."-prefixed variable rewritten into a namespace:
// "g.sys" becomes "g.<ns>.sys". Machine-local variables, indexed slot
// access, sends, outputs and traces pass through unchanged.
//
// The transform is what lets several instances of the same protocol
// stack coexist in one world without sharing context (core.MultiUEWorld
// composes N namespaced UE/SGSN stacks this way): the specs stay
// written against the canonical names package keys, and the namespace
// is applied at the context boundary. Because the rewrite happens on
// the live context, probing a namespaced spec with a recording context
// (internal/lint/effects) automatically yields namespace-resolved
// effect sets — the independence analysis sees "g.ue1.sys" and
// "g.ue2.sys" as the distinct globals they are.
//
// The returned spec is a distinct *Spec (its own layout and facts cache
// identity) named "<name>#<ns>". An empty namespace returns s itself.
func NamespaceGlobals(s *Spec, ns string) *Spec {
	return NamespaceGlobalsShared(s, ns)
}

// NamespaceGlobalsShared is NamespaceGlobals with exceptions: the
// listed global names pass through un-namespaced, modeling state that
// several namespaced stacks genuinely share (e.g. one MME/HSS session
// context block serving every UE, core.MultiUEWorldShared). Together
// with the sorted globals layout this groups a world's per-UE state
// into replica-indexed sub-slab spans — each namespace "g.<ns>." is a
// contiguous run of the layout, with the shared keys outside every
// span — which is what model.World.EncodeCanonical sorts to
// canonicalize replica permutations.
func NamespaceGlobalsShared(s *Spec, ns string, shared ...string) *Spec {
	if ns == "" {
		return s
	}
	rw := &nsRewriter{ns: ns}
	if len(shared) > 0 {
		rw.shared = make(map[string]bool, len(shared))
		for _, k := range shared {
			rw.shared[k] = true
		}
	}
	out := &Spec{
		Name:        s.Name + "#" + ns,
		Proto:       s.Proto,
		Init:        s.Init,
		Vars:        s.Vars,
		Transitions: make([]Transition, len(s.Transitions)),
	}
	for i, t := range s.Transitions {
		nt := t
		if g := t.Guard; g != nil {
			nt.Guard = func(c Ctx, e Event) bool {
				nc := rw.wrap(c)
				ok := g(nc, e)
				rw.release(nc)
				return ok
			}
		}
		if a := t.Action; a != nil {
			nt.Action = func(c Ctx, e Event) {
				nc := rw.wrap(c)
				a(nc, e)
				rw.release(nc)
			}
		}
		out.Transitions[i] = nt
	}
	return out
}

// nsRewriter rewrites global names into one namespace. The rewritten
// strings are memoized (sync.Map: guards of a shared spec run
// concurrently across parallel exploration workers) and the wrapper
// contexts are pooled — wrapping sits on the Enabled/Apply hot path.
type nsRewriter struct {
	ns     string
	shared map[string]bool // pass-through globals (nil = none)
	names  sync.Map        // original name -> namespaced name
	pool   sync.Pool
}

func (r *nsRewriter) rewrite(name string) string {
	if !isGlobal(name) || r.shared[name] {
		return name
	}
	if v, ok := r.names.Load(name); ok {
		return v.(string)
	}
	// Same rule as names.Namespaced — keep the two in sync.
	v := "g." + r.ns + "." + name[2:]
	actual, _ := r.names.LoadOrStore(name, v)
	return actual.(string)
}

func (r *nsRewriter) wrap(c Ctx) *nsCtx {
	if v := r.pool.Get(); v != nil {
		nc := v.(*nsCtx)
		nc.inner = c
		return nc
	}
	return &nsCtx{r: r, inner: c}
}

func (r *nsRewriter) release(nc *nsCtx) {
	nc.inner = nil
	r.pool.Put(nc)
}

// nsCtx delegates to the wrapped context with global names rewritten
// into the namespace. The inner context is the machine wrapper, so
// local names and slot access still resolve against the machine.
type nsCtx struct {
	r     *nsRewriter
	inner Ctx
}

func (c *nsCtx) Get(name string) int              { return c.inner.Get(c.r.rewrite(name)) }
func (c *nsCtx) Set(name string, v int)           { c.inner.Set(c.r.rewrite(name), v) }
func (c *nsCtx) GetI(slot int32) int32            { return c.inner.GetI(slot) }
func (c *nsCtx) SetI(slot int32, v int32)         { c.inner.SetI(slot, v) }
func (c *nsCtx) Send(to string, m types.Message)  { c.inner.Send(to, m) }
func (c *nsCtx) Output(m types.Message)           { c.inner.Output(m) }
func (c *nsCtx) Trace(format string, args ...any) { c.inner.Trace(format, args...) }
