// Package fsm provides a small declarative finite-state-machine engine
// shared by CNetVerifier's two backends: the explicit-state model
// checker (internal/check) and the runtime protocol stacks
// (internal/device, internal/elements).
//
// A protocol is written once as a Spec — a transition table with guards
// and actions — and then instantiated as Machines. Machine state
// (current control state plus integer-valued local variables) has a
// canonical byte encoding so the model checker can hash and deduplicate
// global states.
package fsm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"cnetverifier/internal/types"
)

// State is a named control state of a machine.
type State string

// Event is an occurrence a machine can react to: the delivery of a
// signaling message, a user action, or a timer.
type Event struct {
	Msg types.Message
}

// Kind returns the message kind carried by the event.
func (e Event) Kind() types.MsgKind { return e.Msg.Kind }

func (e Event) String() string { return e.Msg.String() }

// Ev is shorthand for constructing an event from a message kind.
func Ev(kind types.MsgKind) Event {
	return Event{Msg: types.Message{Kind: kind}}
}

// EvMsg constructs an event from a full message.
func EvMsg(m types.Message) Event { return Event{Msg: m} }

// Ctx is the machine's view of the world during a transition. Both the
// model checker's abstract world and the emulator's live stack
// implement it.
type Ctx interface {
	// Get returns a variable. Names with the "g." prefix resolve to
	// globals shared by all machines; other names are machine-local.
	Get(name string) int
	// Set assigns a variable, with the same scoping rule as Get.
	Set(name string, v int)
	// GetI and SetI are the indexed fast path for machine-local
	// variables: slot is a Spec.Slot index into the machine's variable
	// slab. They are resolved by the machine wrapper installed during
	// Enabled/Apply/Step; backend contexts (checker world, emulators,
	// recorders) only ever see the string forms and may implement these
	// as stubs.
	GetI(slot int32) int32
	SetI(slot int32, v int32)
	// Send posts a message toward the named destination (another
	// machine or element). Delivery semantics (reliable, lossy,
	// delayed) are owned by the backend.
	Send(to string, msg types.Message)
	// Output emits a local event that other machines on the same node
	// react to immediately (cross-layer interface, e.g. EMM→RRC).
	Output(msg types.Message)
	// Trace records a human-readable note for the trace collector.
	Trace(format string, args ...any)
}

// Guard decides whether a transition is enabled. A nil guard is always
// enabled.
type Guard func(c Ctx, e Event) bool

// Action runs the transition's side effects. A nil action does nothing.
type Action func(c Ctx, e Event)

// Transition is one row of a Spec's transition table.
type Transition struct {
	// Name labels the transition for traces and counterexamples.
	Name string
	// From is the source state. The special value Any matches every
	// state (used for power-off style resets).
	From State
	// On is the triggering message kind.
	On types.MsgKind
	// Guard optionally restricts the transition.
	Guard Guard
	// Action optionally performs side effects.
	Action Action
	// To is the destination state. The special value Same keeps the
	// current state (useful for self-loops that only run actions).
	To State
}

const (
	// Any is a wildcard source state.
	Any State = "*"
	// Same keeps the machine in its current state.
	Same State = "="
)

// Spec is an immutable machine definition.
type Spec struct {
	// Name identifies the protocol/machine type (e.g. "EMM-UE").
	Name string
	// Proto is the 3GPP protocol this spec models, if any.
	Proto types.Protocol
	// Init is the initial control state.
	Init State
	// Vars lists the local variables and their initial values. Only
	// variables declared here are encoded into checker state.
	Vars map[string]int
	// Transitions is the transition table. When several transitions are
	// enabled for the same event the checker explores each branch; the
	// runtime engine takes the first (table order is priority order).
	Transitions []Transition
}

// Validate checks the spec for structural problems: an empty name,
// a missing initial state, transitions from undeclared states (other
// than wildcards), or duplicate variable declarations.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("fsm: spec has empty name")
	}
	if s.Init == "" {
		return fmt.Errorf("fsm %s: empty initial state", s.Name)
	}
	states := s.States()
	known := make(map[State]bool, len(states))
	for _, st := range states {
		known[st] = true
	}
	for i, t := range s.Transitions {
		if t.From == "" || t.To == "" {
			return fmt.Errorf("fsm %s: transition %d (%s) has empty state", s.Name, i, t.Name)
		}
		if t.On == types.MsgNone {
			return fmt.Errorf("fsm %s: transition %d (%s) has no trigger", s.Name, i, t.Name)
		}
		if t.To != Same && t.To != Any && !known[t.To] {
			// Unreachable: States() collects every To; defensive only.
			return fmt.Errorf("fsm %s: transition %d (%s) targets unknown state %q", s.Name, i, t.Name, t.To)
		}
	}
	return nil
}

// States returns the set of control states mentioned by the spec, in
// sorted order, excluding wildcards.
func (s *Spec) States() []State {
	set := map[State]bool{s.Init: true}
	for _, t := range s.Transitions {
		if t.From != Any {
			set[t.From] = true
		}
		if t.To != Same && t.To != Any {
			set[t.To] = true
		}
	}
	out := make([]State, 0, len(set))
	for st := range set {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Machine is a live instance of a Spec. Its state is flat: declared
// variables live in an []int32 slab indexed by the spec's layout
// (see intern.go); variables introduced at runtime go to a small
// sorted overflow list. Machines are plain values — the checker packs
// a world's machines into one contiguous slice and copies them with
// CloneInto, allocation-free once the destination slabs exist.
type Machine struct {
	spec  *Spec
	lay   *layout
	state State
	vars  []int32   // declared variables, slot order
	over  []overVar // runtime-grown variables, sorted by name
	// enc memoizes the canonical encoding (len 0 = stale). Mutators
	// invalidate it; unchanged machines of a world re-encode by memcpy.
	enc []byte
	// mc is the reusable wrapper context for Enabled/Apply; never
	// shared between machines (CloneInto does not copy it).
	mc *machineCtx
}

// New instantiates a machine in the spec's initial state.
func New(spec *Spec) *Machine {
	lay := layoutFor(spec)
	m := &Machine{spec: spec, lay: lay, state: spec.Init}
	m.vars = append(make([]int32, 0, len(lay.init)), lay.init...)
	return m
}

// Spec returns the machine's definition.
func (m *Machine) Spec() *Spec { return m.spec }

// Name returns the spec name.
func (m *Machine) Name() string { return m.spec.Name }

// State returns the current control state.
func (m *Machine) State() State { return m.state }

// SetState forces the control state (used by test harnesses and by the
// checker when replaying counterexamples).
func (m *Machine) SetState(s State) {
	m.state = s
	m.enc = m.enc[:0]
}

// Var returns a local variable value (zero if undeclared).
func (m *Machine) Var(name string) int {
	if i, ok := m.lay.slot[name]; ok {
		return int(m.vars[i])
	}
	if i, ok := overIdx(m.over, name); ok {
		return int(m.over[i].val)
	}
	return 0
}

// SetVar assigns a local variable. Undeclared names grow the sorted
// overflow list (each machine owns its list, so growth never touches a
// clone's backing array).
func (m *Machine) SetVar(name string, v int) {
	m.enc = m.enc[:0]
	if i, ok := m.lay.slot[name]; ok {
		m.vars[i] = int32(v)
		return
	}
	i, ok := overIdx(m.over, name)
	if ok {
		m.over[i].val = int32(v)
		return
	}
	m.over = append(m.over, overVar{})
	copy(m.over[i+1:], m.over[i:])
	m.over[i] = overVar{name: SymString(name), val: int32(v)}
}

// Enabled returns the indices (into the spec's transition table) of all
// transitions enabled for the event in the current state.
func (m *Machine) Enabled(c Ctx, e Event) []int {
	return m.EnabledAppend(c, e, nil)
}

// EnabledAppend appends the enabled transition indices to dst — the
// allocation-free form of Enabled for callers that keep a scratch
// slice.
func (m *Machine) EnabledAppend(c Ctx, e Event, dst []int) []int {
	var mc *machineCtx
	for i := range m.spec.Transitions {
		t := &m.spec.Transitions[i]
		if t.On != e.Kind() {
			continue
		}
		if t.From != Any && t.From != m.state {
			continue
		}
		if t.Guard != nil {
			if mc == nil {
				mc = m.wrap(c)
			}
			if !t.Guard(mc, e) {
				continue
			}
		}
		dst = append(dst, i)
	}
	return dst
}

// Apply fires the i-th transition of the spec for the event. The caller
// must have obtained i from Enabled with an equivalent context.
func (m *Machine) Apply(c Ctx, e Event, i int) Transition {
	t := m.spec.Transitions[i]
	if t.Action != nil {
		t.Action(m.wrap(c), e)
	}
	if t.To != Same {
		m.state = t.To
		m.enc = m.enc[:0]
	}
	return t
}

// Step fires the first enabled transition for the event, returning the
// transition taken and true, or a zero transition and false when no
// transition is enabled (the event is discarded — matching NAS behavior
// of ignoring unexpected messages).
func (m *Machine) Step(c Ctx, e Event) (Transition, bool) {
	en := m.Enabled(c, e)
	if len(en) == 0 {
		return Transition{}, false
	}
	return m.Apply(c, e, en[0]), true
}

// Clone returns a deep copy of the machine sharing the immutable spec
// and layout.
func (m *Machine) Clone() *Machine {
	n := &Machine{}
	m.CloneInto(n)
	return n
}

// CloneInto makes dst a deep copy of m, reusing dst's slabs when they
// have capacity — the allocation-free clone the checker's world pool
// relies on. dst's scratch context is left untouched (never shared).
func (m *Machine) CloneInto(dst *Machine) {
	dst.spec, dst.lay, dst.state = m.spec, m.lay, m.state
	dst.vars = append(dst.vars[:0], m.vars...)
	dst.over = append(dst.over[:0], m.over...)
	dst.enc = append(dst.enc[:0], m.enc...)
}

// MachineUndo is reusable storage for Save/Restore — the machine half
// of the model layer's apply/undo discipline. The zero value is ready
// to use; Save and Restore reuse its slabs across calls.
type MachineUndo struct {
	state State
	vars  []int32
	over  []overVar
}

// Save records the machine's complete logical state into u.
func (m *Machine) Save(u *MachineUndo) {
	u.state = m.state
	u.vars = append(u.vars[:0], m.vars...)
	u.over = append(u.over[:0], m.over...)
}

// Restore rewinds the machine to a Save point.
func (m *Machine) Restore(u *MachineUndo) {
	m.state = u.state
	m.vars = append(m.vars[:0], u.vars...)
	m.over = append(m.over[:0], u.over...)
	m.enc = m.enc[:0]
}

// Encode appends the canonical binary encoding of the machine's state
// to buf: state name (NUL-terminated), the declared variable slab in
// slot order (4 bytes LE each; the count is fixed by the spec layout),
// then the overflow count and the sorted overflow name/value pairs.
// The encoding is memoized until the next mutation, so unchanged
// machines cost one memcpy per world encode.
func (m *Machine) Encode(buf []byte) []byte {
	if len(m.enc) == 0 {
		m.enc = m.encode(m.enc)
	}
	return append(buf, m.enc...)
}

func (m *Machine) encode(dst []byte) []byte {
	var tmp [4]byte
	dst = append(dst, m.state...)
	dst = append(dst, 0)
	for _, v := range m.vars {
		binary.LittleEndian.PutUint32(tmp[:], uint32(v))
		dst = append(dst, tmp[:]...)
	}
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(m.over)))
	dst = append(dst, tmp[:2]...)
	for _, ov := range m.over {
		dst = append(dst, ov.name...)
		dst = append(dst, 0)
		binary.LittleEndian.PutUint32(tmp[:], uint32(ov.val))
		dst = append(dst, tmp[:]...)
	}
	return dst
}

// wrap returns the machine's reusable wrapper context bound to the
// backend context c. A single scratch wrapper per machine keeps the
// Enabled/Apply hot path free of per-call allocations.
func (m *Machine) wrap(c Ctx) *machineCtx {
	if m.mc == nil {
		m.mc = &machineCtx{}
	}
	m.mc.m, m.mc.inner = m, c
	return m.mc
}

// machineCtx scopes variable access to the machine while delegating
// globals ("g." prefix), sends and traces to the backend context.
type machineCtx struct {
	m     *Machine
	inner Ctx
}

func isGlobal(name string) bool {
	return len(name) > 2 && name[0] == 'g' && name[1] == '.'
}

func (c *machineCtx) Get(name string) int {
	if isGlobal(name) {
		return c.inner.Get(name)
	}
	return c.m.Var(name)
}

func (c *machineCtx) Set(name string, v int) {
	if isGlobal(name) {
		c.inner.Set(name, v)
		return
	}
	c.m.SetVar(name, v)
}

// GetI and SetI hit the variable slab directly — the O(1) access path
// for guards and actions that pre-resolve their slots via Spec.Slot.
func (c *machineCtx) GetI(slot int32) int32 { return c.m.vars[slot] }

func (c *machineCtx) SetI(slot int32, v int32) {
	c.m.enc = c.m.enc[:0]
	c.m.vars[slot] = v
}

func (c *machineCtx) Send(to string, msg types.Message) { c.inner.Send(to, msg) }
func (c *machineCtx) Output(msg types.Message)          { c.inner.Output(msg) }
func (c *machineCtx) Trace(format string, args ...any)  { c.inner.Trace(format, args...) }
