// Package fsm provides a small declarative finite-state-machine engine
// shared by CNetVerifier's two backends: the explicit-state model
// checker (internal/check) and the runtime protocol stacks
// (internal/device, internal/elements).
//
// A protocol is written once as a Spec — a transition table with guards
// and actions — and then instantiated as Machines. Machine state
// (current control state plus integer-valued local variables) has a
// canonical byte encoding so the model checker can hash and deduplicate
// global states.
package fsm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"cnetverifier/internal/types"
)

// State is a named control state of a machine.
type State string

// Event is an occurrence a machine can react to: the delivery of a
// signaling message, a user action, or a timer.
type Event struct {
	Msg types.Message
}

// Kind returns the message kind carried by the event.
func (e Event) Kind() types.MsgKind { return e.Msg.Kind }

func (e Event) String() string { return e.Msg.String() }

// Ev is shorthand for constructing an event from a message kind.
func Ev(kind types.MsgKind) Event {
	return Event{Msg: types.Message{Kind: kind}}
}

// EvMsg constructs an event from a full message.
func EvMsg(m types.Message) Event { return Event{Msg: m} }

// Ctx is the machine's view of the world during a transition. Both the
// model checker's abstract world and the emulator's live stack
// implement it.
type Ctx interface {
	// Get returns a variable. Names with the "g." prefix resolve to
	// globals shared by all machines; other names are machine-local.
	Get(name string) int
	// Set assigns a variable, with the same scoping rule as Get.
	Set(name string, v int)
	// Send posts a message toward the named destination (another
	// machine or element). Delivery semantics (reliable, lossy,
	// delayed) are owned by the backend.
	Send(to string, msg types.Message)
	// Output emits a local event that other machines on the same node
	// react to immediately (cross-layer interface, e.g. EMM→RRC).
	Output(msg types.Message)
	// Trace records a human-readable note for the trace collector.
	Trace(format string, args ...any)
}

// Guard decides whether a transition is enabled. A nil guard is always
// enabled.
type Guard func(c Ctx, e Event) bool

// Action runs the transition's side effects. A nil action does nothing.
type Action func(c Ctx, e Event)

// Transition is one row of a Spec's transition table.
type Transition struct {
	// Name labels the transition for traces and counterexamples.
	Name string
	// From is the source state. The special value Any matches every
	// state (used for power-off style resets).
	From State
	// On is the triggering message kind.
	On types.MsgKind
	// Guard optionally restricts the transition.
	Guard Guard
	// Action optionally performs side effects.
	Action Action
	// To is the destination state. The special value Same keeps the
	// current state (useful for self-loops that only run actions).
	To State
}

const (
	// Any is a wildcard source state.
	Any State = "*"
	// Same keeps the machine in its current state.
	Same State = "="
)

// Spec is an immutable machine definition.
type Spec struct {
	// Name identifies the protocol/machine type (e.g. "EMM-UE").
	Name string
	// Proto is the 3GPP protocol this spec models, if any.
	Proto types.Protocol
	// Init is the initial control state.
	Init State
	// Vars lists the local variables and their initial values. Only
	// variables declared here are encoded into checker state.
	Vars map[string]int
	// Transitions is the transition table. When several transitions are
	// enabled for the same event the checker explores each branch; the
	// runtime engine takes the first (table order is priority order).
	Transitions []Transition
}

// Validate checks the spec for structural problems: an empty name,
// a missing initial state, transitions from undeclared states (other
// than wildcards), or duplicate variable declarations.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("fsm: spec has empty name")
	}
	if s.Init == "" {
		return fmt.Errorf("fsm %s: empty initial state", s.Name)
	}
	states := s.States()
	known := make(map[State]bool, len(states))
	for _, st := range states {
		known[st] = true
	}
	for i, t := range s.Transitions {
		if t.From == "" || t.To == "" {
			return fmt.Errorf("fsm %s: transition %d (%s) has empty state", s.Name, i, t.Name)
		}
		if t.On == types.MsgNone {
			return fmt.Errorf("fsm %s: transition %d (%s) has no trigger", s.Name, i, t.Name)
		}
		if t.To != Same && t.To != Any && !known[t.To] {
			// Unreachable: States() collects every To; defensive only.
			return fmt.Errorf("fsm %s: transition %d (%s) targets unknown state %q", s.Name, i, t.Name, t.To)
		}
	}
	return nil
}

// States returns the set of control states mentioned by the spec, in
// sorted order, excluding wildcards.
func (s *Spec) States() []State {
	set := map[State]bool{s.Init: true}
	for _, t := range s.Transitions {
		if t.From != Any {
			set[t.From] = true
		}
		if t.To != Same && t.To != Any {
			set[t.To] = true
		}
	}
	out := make([]State, 0, len(set))
	for st := range set {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Machine is a live instance of a Spec.
type Machine struct {
	spec  *Spec
	state State
	vars  map[string]int
	// varNames caches the sorted variable names for canonical encoding.
	varNames []string
}

// New instantiates a machine in the spec's initial state.
func New(spec *Spec) *Machine {
	m := &Machine{spec: spec, state: spec.Init, vars: make(map[string]int, len(spec.Vars))}
	for k, v := range spec.Vars {
		m.vars = setVar(m.vars, k, v)
	}
	m.varNames = make([]string, 0, len(spec.Vars))
	for k := range spec.Vars {
		m.varNames = append(m.varNames, k)
	}
	sort.Strings(m.varNames)
	return m
}

func setVar(m map[string]int, k string, v int) map[string]int {
	m[k] = v
	return m
}

// Spec returns the machine's definition.
func (m *Machine) Spec() *Spec { return m.spec }

// Name returns the spec name.
func (m *Machine) Name() string { return m.spec.Name }

// State returns the current control state.
func (m *Machine) State() State { return m.state }

// SetState forces the control state (used by test harnesses and by the
// checker when replaying counterexamples).
func (m *Machine) SetState(s State) { m.state = s }

// Var returns a local variable value (zero if undeclared).
func (m *Machine) Var(name string) int { return m.vars[name] }

// SetVar assigns a local variable.
func (m *Machine) SetVar(name string, v int) {
	if _, ok := m.vars[name]; !ok {
		// Rebuild rather than append in place: clones share the
		// varNames slice, so growing it must never touch the shared
		// backing array.
		names := make([]string, len(m.varNames), len(m.varNames)+1)
		copy(names, m.varNames)
		m.varNames = append(names, name)
		sort.Strings(m.varNames)
	}
	m.vars[name] = v
}

// Enabled returns the indices (into the spec's transition table) of all
// transitions enabled for the event in the current state.
func (m *Machine) Enabled(c Ctx, e Event) []int {
	var out []int
	for i, t := range m.spec.Transitions {
		if t.On != e.Kind() {
			continue
		}
		if t.From != Any && t.From != m.state {
			continue
		}
		if t.Guard != nil && !t.Guard(&machineCtx{m: m, inner: c}, e) {
			continue
		}
		out = append(out, i)
	}
	return out
}

// Apply fires the i-th transition of the spec for the event. The caller
// must have obtained i from Enabled with an equivalent context.
func (m *Machine) Apply(c Ctx, e Event, i int) Transition {
	t := m.spec.Transitions[i]
	mc := &machineCtx{m: m, inner: c}
	if t.Action != nil {
		t.Action(mc, e)
	}
	if t.To != Same {
		m.state = t.To
	}
	return t
}

// Step fires the first enabled transition for the event, returning the
// transition taken and true, or a zero transition and false when no
// transition is enabled (the event is discarded — matching NAS behavior
// of ignoring unexpected messages).
func (m *Machine) Step(c Ctx, e Event) (Transition, bool) {
	en := m.Enabled(c, e)
	if len(en) == 0 {
		return Transition{}, false
	}
	return m.Apply(c, e, en[0]), true
}

// Clone returns a deep copy of the machine sharing the immutable spec.
// The sorted name cache is shared too — SetVar copies on growth — so a
// clone costs one map copy.
func (m *Machine) Clone() *Machine {
	n := &Machine{spec: m.spec, state: m.state, vars: make(map[string]int, len(m.vars)), varNames: m.varNames}
	for k, v := range m.vars {
		n.vars[k] = v
	}
	return n
}

// Encode appends a canonical binary encoding of the machine's state to
// buf: state name, then variables in sorted-name order.
func (m *Machine) Encode(buf []byte) []byte {
	buf = append(buf, m.state...)
	buf = append(buf, 0)
	var tmp [8]byte
	for _, k := range m.varNames {
		buf = append(buf, k...)
		buf = append(buf, '=')
		binary.LittleEndian.PutUint64(tmp[:], uint64(int64(m.vars[k])))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// machineCtx scopes variable access to the machine while delegating
// globals ("g." prefix), sends and traces to the backend context.
type machineCtx struct {
	m     *Machine
	inner Ctx
}

func isGlobal(name string) bool {
	return len(name) > 2 && name[0] == 'g' && name[1] == '.'
}

func (c *machineCtx) Get(name string) int {
	if isGlobal(name) {
		return c.inner.Get(name)
	}
	return c.m.vars[name]
}

func (c *machineCtx) Set(name string, v int) {
	if isGlobal(name) {
		c.inner.Set(name, v)
		return
	}
	c.m.SetVar(name, v)
}

func (c *machineCtx) Send(to string, msg types.Message) { c.inner.Send(to, msg) }
func (c *machineCtx) Output(msg types.Message)          { c.inner.Output(msg) }
func (c *machineCtx) Trace(format string, args ...any)  { c.inner.Trace(format, args...) }
