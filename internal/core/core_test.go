package core

import (
	"strings"
	"testing"

	"cnetverifier/internal/check"
	"cnetverifier/internal/model"
	"cnetverifier/internal/names"
	"cnetverifier/internal/types"
)

func TestFindingsRegistry(t *testing.T) {
	fs := Findings()
	if len(fs) != 6 {
		t.Fatalf("findings = %d, want 6", len(fs))
	}
	ids := []FindingID{S1, S2, S3, S4, S5, S6}
	for i, f := range fs {
		if f.ID != ids[i] {
			t.Fatalf("finding %d = %s, want %s", i, f.ID, ids[i])
		}
		if f.Problem == "" || f.RootCause == "" || f.Fix == "" || f.Section == "" {
			t.Fatalf("finding %s has empty fields", f.ID)
		}
		if len(f.Protocols) == 0 || len(f.Dimensions) == 0 {
			t.Fatalf("finding %s missing protocols/dimensions", f.ID)
		}
		if f.String() == "" {
			t.Fatal("empty String")
		}
	}
	// Per Table 1: four design issues, two operational.
	design := 0
	for _, f := range fs {
		if f.Type == types.DesignIssue {
			design++
		}
	}
	if design != 4 {
		t.Fatalf("design issues = %d, want 4", design)
	}
	if _, ok := FindingByID(S3); !ok {
		t.Fatal("FindingByID(S3) missed")
	}
	if _, ok := FindingByID("S9"); ok {
		t.Fatal("FindingByID(S9) found")
	}
}

// screenOne is a helper running the checker over a scoped world.
func screenOne(t *testing.T, s Scoped) ScreenResult {
	t.Helper()
	r, err := Screen(s, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// The central screening results: every defective world violates its
// property, and every fixed world is clean within the same bounds.

func TestScreenS1FindsViolation(t *testing.T) {
	r := screenOne(t, S1World(false))
	if !r.Result.Violated("PacketService_OK") {
		t.Fatal("S1 world: PacketService_OK violation not found")
	}
	// The counterexample must include the defining steps: a 4G→3G
	// switch, a PDP deactivation, and the rejected return TAU.
	v := r.Result.ViolationsOf("PacketService_OK")[0]
	var sawTAUReject bool
	for _, s := range v.Path {
		if s.Msg.Kind == types.MsgTrackingAreaUpdateReject {
			sawTAUReject = true
		}
	}
	if !sawTAUReject {
		t.Fatalf("S1 counterexample lacks TAU reject:\n%s", check.FormatCounterexample(v))
	}
}

func TestScreenS1FixClean(t *testing.T) {
	r := screenOne(t, S1World(true))
	if r.Violated() {
		t.Fatalf("S1 fixed world still violates: %v", r.Result.Violations)
	}
}

func TestScreenS2FindsViolation(t *testing.T) {
	r := screenOne(t, S2World(false))
	if !r.Result.Violated("PacketService_OK") {
		t.Fatal("S2 world: PacketService_OK violation not found")
	}
	// At least one counterexample must involve a drop or an
	// out-of-order delivery — the §5.2 root cause.
	var sawLossOrReorder bool
	for _, v := range r.Result.ViolationsOf("PacketService_OK") {
		for _, s := range v.Path {
			if s.Kind == model.StepDrop || s.Pos > 0 {
				sawLossOrReorder = true
			}
		}
	}
	if !sawLossOrReorder {
		t.Fatal("S2 counterexamples never exercise loss/reorder")
	}
}

func TestScreenS2FixClean(t *testing.T) {
	r := screenOne(t, S2World(true))
	if r.Violated() {
		t.Fatalf("S2 fixed world still violates: %v", r.Result.Violations)
	}
}

func TestScreenS3ReselectStuck(t *testing.T) {
	r := screenOne(t, S3World(false, names.SwitchReselect))
	if !r.Result.Violated("MM_OK") {
		t.Fatal("S3 world (reselection): MM_OK violation not found")
	}
}

// OP-I's redirect policy avoids S3 even without the fix (§5.3.2) —
// at the cost of disrupting the data session.
func TestScreenS3RedirectClean(t *testing.T) {
	r := screenOne(t, S3World(false, names.SwitchRedirect))
	if r.Violated() {
		t.Fatalf("S3 redirect world should not violate MM_OK: %v", r.Result.Violations)
	}
}

func TestScreenS3FixClean(t *testing.T) {
	r := screenOne(t, S3World(true, names.SwitchReselect))
	if r.Violated() {
		t.Fatalf("S3 fixed world still violates: %v", r.Result.Violations)
	}
}

func TestScreenS4CSFindsViolation(t *testing.T) {
	r := screenOne(t, S4CSWorld(false))
	if !r.Result.Violated("CallService_OK") {
		t.Fatal("S4 CS world: CallService_OK violation not found")
	}
}

func TestScreenS4CSFixClean(t *testing.T) {
	r := screenOne(t, S4CSWorld(true))
	if r.Violated() {
		t.Fatalf("S4 CS fixed world still violates: %v", r.Result.Violations)
	}
}

func TestScreenS4PSFindsViolation(t *testing.T) {
	r := screenOne(t, S4PSWorld(false))
	if !r.Result.Violated("DataService_OK") {
		t.Fatal("S4 PS world: DataService_OK violation not found")
	}
}

func TestScreenS4PSFixClean(t *testing.T) {
	r := screenOne(t, S4PSWorld(true))
	if r.Violated() {
		t.Fatalf("S4 PS fixed world still violates: %v", r.Result.Violations)
	}
}

func TestScreenS6FindsViolation(t *testing.T) {
	r := screenOne(t, S6World(false))
	if !r.Result.Violated("PacketService_OK") {
		t.Fatal("S6 world: PacketService_OK violation not found")
	}
}

func TestScreenS6FixClean(t *testing.T) {
	r := screenOne(t, S6World(true))
	if r.Violated() {
		t.Fatalf("S6 fixed world still violates: %v", r.Result.Violations)
	}
}

func TestScreenAllAndVerifyFixes(t *testing.T) {
	results, err := ScreenAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("results = %d, want 6 scoped worlds", len(results))
	}
	for _, r := range results {
		if !r.Violated() {
			t.Errorf("defective world %s found no violation", r.Finding)
		}
	}
	fixedResults, err := VerifyFixes()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fixedResults {
		if r.Violated() {
			t.Errorf("fixed world %s still violates", r.Finding)
		}
	}
}

// Counterexamples from the screening phase must replay deterministically
// (the §3.1 bridge into the validation phase).
func TestCounterexamplesReplay(t *testing.T) {
	for _, s := range ScopedModels() {
		r := screenOne(t, s)
		for _, v := range r.Result.Violations {
			if _, err := check.Replay(s.World, v.Path); err != nil {
				t.Errorf("%s: replay failed: %v", s.Finding, err)
			}
		}
	}
}

func TestReportFormat(t *testing.T) {
	results, err := ScreenAll()
	if err != nil {
		t.Fatal(err)
	}
	out := Report(results, false)
	for _, id := range []string{"S1", "S2", "S3", "S4", "S6"} {
		if !strings.Contains(out, id) {
			t.Fatalf("report missing %s:\n%s", id, out)
		}
	}
	if !strings.Contains(out, "VIOLATED") {
		t.Fatalf("report missing violations:\n%s", out)
	}
	verbose := Report(results[:1], true)
	if !strings.Contains(verbose, "counterexample") {
		t.Fatalf("verbose report missing counterexample:\n%s", verbose)
	}
}

// BFS over the S2 world produces a minimal counterexample that should
// be short (single-digit steps): attach, lose the complete, TAU,
// implicit detach.
func TestS2ShortestCounterexample(t *testing.T) {
	s := S2World(false)
	opt := s.Options
	opt.Strategy = check.BFS
	r, err := Screen(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	vs := r.Result.ViolationsOf("PacketService_OK")
	if len(vs) == 0 {
		t.Fatal("no violation via BFS")
	}
	if got := len(vs[0].Path); got > 9 {
		t.Fatalf("BFS counterexample has %d steps, expected <= 9", got)
	}
}

// Transition coverage of the scoped screenings: the defining defect
// transitions must be exercised by their worlds.
func TestScreeningCoverage(t *testing.T) {
	cases := []struct {
		world Scoped
		proc  string
		trans string
	}{
		{S1World(false), "mme.emm", "tau-no-context-detach"},
		{S2World(false), "mme.emm", "tau-implicit-detach"},
		{S3World(false, names.SwitchReselect), "ue.rrc3g", "csfb-end-stuck"},
		{S4CSWorld(false), "ue.mm", "svc-blocked-lu"},
		{S6World(false), "mme.emm", "tau-lufail-detach"},
	}
	for _, c := range cases {
		r := screenOne(t, c.world)
		if r.Result.Covered[c.proc+"/"+c.trans] == 0 {
			t.Errorf("%s: defect transition %s/%s never exercised", c.world.Finding, c.proc, c.trans)
		}
		out := CoverageSummary(c.world, r)
		if !strings.Contains(out, c.proc) {
			t.Fatalf("coverage summary missing %s:\n%s", c.proc, out)
		}
	}
}

// S1's essential trigger set: power-on, the 4G→3G switch, exactly one
// context-deactivation event, and the return reselection — the
// WiFi-offload and network-side deactivation alternatives are
// redundant with the device-side one and get dropped.
func TestS1EssentialEvents(t *testing.T) {
	s := S1World(false)
	opt := s.Options
	opt.Strategy = check.BFS
	r, err := Screen(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	v := r.Result.Violations[0]
	essential, err := check.EssentialEvents(s.World, s.Props, s.Scenario, opt, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(essential) != 4 {
		t.Fatalf("essential events = %d (%v), want 4", len(essential), essential)
	}
	kinds := map[types.MsgKind]bool{}
	for _, e := range essential {
		kinds[e.Msg.Kind] = true
	}
	for _, want := range []types.MsgKind{types.MsgPowerOn, types.MsgInterSystemSwitchCommand, types.MsgInterSystemCellReselect} {
		if !kinds[want] {
			t.Fatalf("essential set missing %s: %v", want, essential)
		}
	}
}
