package core

import (
	"fmt"

	"cnetverifier/internal/check"
	"cnetverifier/internal/model"
	"cnetverifier/internal/names"
	"cnetverifier/internal/types"
)

// TimingProfile selects how WithTiming derives virtual-time timer
// windows for a scoped world.
type TimingProfile int

const (
	// TimingDegenerate arms a periodic zero-width ([0, 0]) timer for
	// exactly the processes whose scenario offers a periodic-timer env
	// event, and removes those events from the scenario. A zero-width
	// always-fireable periodic timer is behaviorally identical to an
	// always-offered env event (same enabled transitions, constant
	// clock and armed set), so the timed state graph is isomorphic to
	// the untimed one — the ci.sh differential gate byte-compares the
	// violation sets to pin that equivalence.
	TimingDegenerate TimingProfile = iota
	// TimingNAS arms the periodic NAS timers (TAU T3412, LU T3212,
	// RAU T3312) with distinct non-trivial [earliest, latest] windows
	// for every process whose spec consumes periodic-timer events. The
	// checker then explores only the admissible expiry orderings —
	// including expiries untimed scoped worlds never offered (S1's
	// scenario has no periodic events, so its periodic transitions are
	// timing-only behavior).
	TimingNAS
)

// ParseTimingProfile maps a CLI flag value to a profile.
func ParseTimingProfile(s string) (TimingProfile, error) {
	switch s {
	case "degenerate":
		return TimingDegenerate, nil
	case "nas":
		return TimingNAS, nil
	default:
		return 0, fmt.Errorf("unknown timing profile %q (want degenerate or nas)", s)
	}
}

// nasTimer returns the 3GPP periodic-update timer identity and window
// (virtual ticks) for a standard process name. The windows are distinct
// per protocol and overlap-free at first arming, so expiry order is
// partially constrained — the point of timed screening.
func nasTimer(proc string) (string, int64, int64) {
	switch proc {
	case names.UEEMM:
		return "T3412", 10, 12 // periodic TAU
	case names.UEMM:
		return "T3212", 18, 20 // periodic LU
	case names.UEGMM:
		return "T3312", 14, 16 // periodic RAU
	default:
		return "Tperiodic", 12, 15
	}
}

// timedScenario filters a scenario's periodic-timer env events for the
// processes whose expiries are modeled as virtual-time timers instead.
type timedScenario struct {
	inner check.Scenario
	owned map[string]bool
}

func (s timedScenario) Events(w *model.World) []model.EnvEvent {
	evs := s.inner.Events(w)
	out := make([]model.EnvEvent, 0, len(evs))
	for _, e := range evs {
		if e.Msg.Kind == types.MsgPeriodicTimer && s.owned[e.Proc] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// WithTiming converts a scoped world to discrete virtual time under the
// given profile: it attaches timer definitions to the world, replaces
// the scenario's periodic env events for timer-owning processes with
// the timers, and sets Options.Timing. A world with no periodic
// behavior is returned unchanged (still untimed).
func WithTiming(s Scoped, profile TimingProfile) (Scoped, error) {
	var defs []model.TimerDef
	owned := make(map[string]bool)
	switch profile {
	case TimingDegenerate:
		for _, e := range s.Scenario.Events(s.World) {
			if e.Msg.Kind != types.MsgPeriodicTimer || owned[e.Proc] {
				continue
			}
			owned[e.Proc] = true
			name, _, _ := nasTimer(e.Proc)
			defs = append(defs, model.TimerDef{
				Name: name, Proc: e.Proc, Msg: e.Msg,
				Lo: 0, Hi: 0, ArmOnStart: true, Periodic: true,
			})
		}
	case TimingNAS:
		for _, p := range s.World.Procs {
			consumes := false
			for _, t := range p.M.Spec().Transitions {
				if t.On == types.MsgPeriodicTimer {
					consumes = true
					break
				}
			}
			if !consumes {
				continue
			}
			owned[p.Name] = true
			name, lo, hi := nasTimer(p.Name)
			defs = append(defs, model.TimerDef{
				Name: name, Proc: p.Name,
				Msg: types.Message{Kind: types.MsgPeriodicTimer},
				Lo:  lo, Hi: hi, ArmOnStart: true, Periodic: true,
			})
		}
	default:
		return Scoped{}, fmt.Errorf("core: unknown timing profile %d", profile)
	}
	if len(defs) == 0 {
		return s, nil
	}
	if err := s.World.EnableTiming(defs); err != nil {
		return Scoped{}, fmt.Errorf("core: timing %s: %w", s.Finding, err)
	}
	s.Scenario = timedScenario{inner: s.Scenario, owned: owned}
	s.Options.Timing = true
	return s, nil
}
