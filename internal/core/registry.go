package core

import (
	"sort"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/lint"
	"cnetverifier/internal/names"
	"cnetverifier/internal/protocols/cm"
	"cnetverifier/internal/protocols/emm"
	"cnetverifier/internal/protocols/esm"
	"cnetverifier/internal/protocols/gmm"
	"cnetverifier/internal/protocols/mm"
	"cnetverifier/internal/protocols/rrc3g"
	"cnetverifier/internal/protocols/rrc4g"
	"cnetverifier/internal/protocols/sm"
)

// AllSpecs enumerates every spec variant the repository ships — device
// and network side, defective and fixed — keyed by a short stable name.
// The conformance tests and the cnetlint CLI iterate this registry so a
// new spec variant only has to be registered once.
func AllSpecs() map[string]*fsm.Spec {
	return map[string]*fsm.Spec{
		"emm-ue":        emm.DeviceSpec(emm.DeviceOptions{}),
		"emm-ue-fixed":  emm.DeviceSpec(emm.DeviceOptions{FixReactivateBearer: true}),
		"emm-mme":       emm.MMESpec(emm.MMEOptions{PropagateLUFailure: true}),
		"emm-mme-fixed": emm.MMESpec(emm.MMEOptions{FixReactivateBearer: true, FixLUFailureRecovery: true}),
		"esm-ue":        esm.DeviceSpec(esm.DeviceOptions{}),
		"esm-mme":       esm.MMESpec(esm.MMEOptions{}),
		"gmm-ue":        gmm.DeviceSpec(gmm.DeviceOptions{}),
		"gmm-ue-fixed":  gmm.DeviceSpec(gmm.DeviceOptions{FixParallelUpdate: true}),
		"gmm-sgsn":      gmm.SGSNSpec(gmm.SGSNOptions{}),
		"sm-ue":         sm.DeviceSpec(sm.DeviceOptions{}),
		"sm-ue-fixed":   sm.DeviceSpec(sm.DeviceOptions{FixParallelUpdate: true, FixKeepContext: true}),
		"sm-sgsn":       sm.SGSNSpec(sm.SGSNOptions{}),
		"sm-sgsn-fixed": sm.SGSNSpec(sm.SGSNOptions{FixKeepContext: true}),
		"mm-ue":         mm.DeviceSpec(mm.DeviceOptions{}),
		"mm-ue-fixed":   mm.DeviceSpec(mm.DeviceOptions{FixParallelUpdate: true}),
		"mm-msc":        mm.MSCSpec(mm.MSCOptions{}),
		"cm-ue":         cm.DeviceSpec(cm.DeviceOptions{}),
		"cm-ue-direct":  cm.DeviceSpec(cm.DeviceOptions{DirectToMSC: true}),
		"cm-msc":        cm.MSCSpec(cm.MSCOptions{}),
		"rrc3g-ue":      rrc3g.DeviceSpec(rrc3g.DeviceOptions{}),
		"rrc3g-fixed":   rrc3g.DeviceSpec(rrc3g.DeviceOptions{FixCSFBTag: true, FixDecoupleChannels: true}),
		"rrc4g-ue":      rrc4g.DeviceSpec(rrc4g.DeviceOptions{}),
		// The shared-core namespaced variants (MultiUEWorldShared's
		// per-UE rewrite): every global moves into the "ue1" namespace
		// except the shared MME/HSS session context block, which stays
		// un-namespaced — the effect goldens pin that g.pdp/g.eps keep
		// their shared coordinates while everything else resolves to
		// g.ue1.*, the fact that couples the stacks into one POR cluster.
		"gmm-ue-ns-shared": fsm.NamespaceGlobalsShared(
			gmm.DeviceSpec(gmm.DeviceOptions{}), "ue1", names.GPDP, names.GEPS),
		"gmm-sgsn-ns-shared": fsm.NamespaceGlobalsShared(
			gmm.SGSNSpec(gmm.SGSNOptions{}), "ue1", names.GPDP, names.GEPS),
		"sm-ue-ns-shared": fsm.NamespaceGlobalsShared(
			sm.DeviceSpec(sm.DeviceOptions{}), "ue1", names.GPDP, names.GEPS),
		"sm-sgsn-ns-shared": fsm.NamespaceGlobalsShared(
			sm.SGSNSpec(sm.SGSNOptions{}), "ue1", names.GPDP, names.GEPS),
	}
}

// SpecNames returns the registry keys in sorted order.
func SpecNames() []string {
	specs := AllSpecs()
	out := make([]string, 0, len(specs))
	for name := range specs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// StandardWorlds returns the standard scenario worlds keyed by a short
// name: the scoped S1–S6 worlds plus the combined full world (built
// with a deterministic scenario space, SamplePerStep=0, so lint's
// environment hints do not depend on sampler randomness).
func StandardWorlds(fixed bool) map[string]Scoped {
	return map[string]Scoped{
		"s1":             S1World(fixed),
		"s2":             S2World(fixed),
		"s3":             S3World(fixed, names.SwitchReselect),
		"s4cs":           S4CSWorld(fixed),
		"s4ps":           S4PSWorld(fixed),
		"s6":             S6World(fixed),
		"full":           FullWorld(FullConfig{Fixed: fixed}),
		"multiue":        MultiUEWorld(3, fixed),
		"multiue-shared": MultiUEWorldShared(2, fixed),
	}
}

// WorldNames returns the StandardWorlds keys in sorted order.
func WorldNames() []string {
	worlds := StandardWorlds(false)
	out := make([]string, 0, len(worlds))
	for name := range worlds {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// LintWorld lints a scoped world with its own scenario's events on the
// initial state as environment hints — the same view check.Run's
// pre-screening gate uses.
func LintWorld(sc Scoped, o lint.Options) *lint.Report {
	for _, e := range sc.Scenario.Events(sc.World) {
		o.Env = append(o.Env, lint.EnvHint{Proc: e.Proc, Kind: uint16(e.Msg.Kind)})
	}
	return lint.World(sc.World, o)
}
