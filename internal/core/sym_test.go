package core

import (
	"fmt"
	"reflect"
	"testing"

	"cnetverifier/internal/check"
)

// symTestN sizes the multi-UE matrix tests: three UEs normally, two
// under the race detector, where the ~50 fixpoint runs of the 34³
// product would blow the package test timeout. The n=2 worlds drive
// the identical code paths (multi-replica canonicalization, closure,
// parallel engine) over a 34² product.
func symTestN() int {
	if raceEnabled {
		return 2
	}
	return 3
}

func runSym(t *testing.T, sc Scoped, por, sym bool, workers int) *check.Result {
	t.Helper()
	opt := sc.Options
	opt.POR = por
	opt.Symmetry = sym
	opt.Workers = workers
	res, err := check.Run(sc.World, sc.Props, sc.Scenario, opt)
	if err != nil {
		t.Fatalf("check.Run(por=%v, sym=%v, workers=%d): %v", por, sym, workers, err)
	}
	return res
}

// TestSymViolationSetsMatchMultiUE is the exactness gate of the
// symmetry acceptance criteria: over the full engine matrix — POR
// on/off × Symmetry on/off × workers 1/8 — both multi-UE worlds
// (independent and shared-core, defective and fixed) report the one
// canonical violation set of the plain sequential run.
func TestSymViolationSetsMatchMultiUE(t *testing.T) {
	n := symTestN()
	worlds := map[string]func(bool) Scoped{
		"multiue":        func(fixed bool) Scoped { return MultiUEWorld(n, fixed) },
		"multiue-shared": func(fixed bool) Scoped { return MultiUEWorldShared(n, fixed) },
	}
	for name, mk := range worlds {
		for _, fixed := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/fixed=%v", name, fixed), func(t *testing.T) {
				want := violationSet(runSym(t, mk(fixed), false, false, 1))
				if !fixed && len(want) != n {
					t.Errorf("defective %d-UE world: plain run found %d violations, want one per UE", n, len(want))
				}
				for _, por := range []bool{false, true} {
					for _, sym := range []bool{false, true} {
						for _, workers := range []int{1, 8} {
							res := runSym(t, mk(fixed), por, sym, workers)
							if got := violationSet(res); !reflect.DeepEqual(got, want) {
								t.Errorf("por=%v sym=%v workers=%d changes the violation set:\n  got:  %q\n  want: %q",
									por, sym, workers, got, want)
							}
						}
					}
				}
			})
		}
	}
}

// TestSymParallelDeterminism pins the worker-count independence of the
// quotient search: with Symmetry on, workers=1 and workers=8 agree on
// the exact state count, not just the violation set (min-depth visited
// fixpoint over canonical hashes).
func TestSymParallelDeterminism(t *testing.T) {
	n := symTestN()
	for _, mk := range []func() Scoped{
		func() Scoped { return MultiUEWorld(n, false) },
		func() Scoped { return MultiUEWorldShared(n, false) },
	} {
		for _, por := range []bool{false, true} {
			seq := runSym(t, mk(), por, true, 1)
			par := runSym(t, mk(), por, true, 8)
			if seq.States != par.States {
				t.Errorf("por=%v: states differ across workers: seq=%d par=%d", por, seq.States, par.States)
			}
			if got, want := violationSet(par), violationSet(seq); !reflect.DeepEqual(got, want) {
				t.Errorf("por=%v: violation sets differ across workers:\n  seq: %q\n  par: %q", por, want, got)
			}
		}
	}
}

// TestSymReduction is the reduction gate: on the shared-core world the
// effect analysis sees one connected cluster (POR alone buys nothing),
// while canonicalization still collapses the replica permutations —
// close to n! for the 3-UE world. On the independent world symmetry
// composes with POR: por+sym explores no more than por alone.
func TestSymReduction(t *testing.T) {
	n := symTestN()
	plain := runSym(t, MultiUEWorldShared(n, false), false, false, 1)
	por := runSym(t, MultiUEWorldShared(n, false), true, false, 1)
	sym := runSym(t, MultiUEWorldShared(n, false), false, true, 1)
	if por.States != plain.States {
		t.Errorf("shared-core world decomposed by POR: por=%d plain=%d states (want equal: single cluster)",
			por.States, plain.States)
	}
	// Measured ratios sit just under n! (orbits with nontrivial
	// stabilizers): 5.5x at n=3, 1.9x at n=2.
	minRatio := 4.0
	if n == 2 {
		minRatio = 1.5
	}
	if float64(sym.States)*minRatio > float64(plain.States) {
		t.Errorf("symmetry reduction below %.1fx on shared %d-UE world: sym=%d plain=%d (%.1fx)",
			minRatio, n, sym.States, plain.States, float64(plain.States)/float64(sym.States))
	}
	t.Logf("shared %d-UE states: plain=%d por=%d sym=%d (%.1fx)",
		n, plain.States, por.States, sym.States, float64(plain.States)/float64(sym.States))

	iPor := runSym(t, MultiUEWorld(n, false), true, false, 1)
	iBoth := runSym(t, MultiUEWorld(n, false), true, true, 1)
	if iBoth.States > iPor.States {
		t.Errorf("por+sym explored more than por alone: %d > %d", iBoth.States, iPor.States)
	}
	if got, want := violationSet(iBoth), violationSet(iPor); !reflect.DeepEqual(got, want) {
		t.Errorf("por+sym changes the violation set:\n  got:  %q\n  want: %q", got, want)
	}
}

// TestSymNoDescriptorIdentity pins the degenerate case: on a world
// without a symmetry descriptor (or with single-replica groups only),
// Options.Symmetry must leave the semantic Result bit-identical — the
// canonical closure is a no-op on the state graph. Only the visited
// table's byte diagnostics (Result.Visited) are exempt: the canonical
// encoder frames replica groups differently even when it permutes
// nothing, so arena byte counts legitimately differ while states,
// violations and coverage do not.
func TestSymNoDescriptorIdentity(t *testing.T) {
	stripDiag := func(r *check.Result) *check.Result {
		c := *r
		c.Visited = nil
		return &c
	}
	plain := runSym(t, S1World(false), false, false, 1)
	sym := runSym(t, S1World(false), false, true, 1)
	if !reflect.DeepEqual(stripDiag(plain), stripDiag(sym)) {
		t.Errorf("Symmetry changed the run on a descriptor-less world:\nplain: %+v\nsym:   %+v", plain, sym)
	}
	p1 := runSym(t, MultiUEWorldShared(1, false), false, false, 1)
	s1 := runSym(t, MultiUEWorldShared(1, false), false, true, 1)
	if !reflect.DeepEqual(stripDiag(p1), stripDiag(s1)) {
		t.Errorf("Symmetry changed the run on a single-replica world")
	}
}

// TestSymRandomWalkIgnored pins that RandomWalk ignores Symmetry, like
// POR: sampled schedules have no visited set to canonicalize, and the
// walk's violations already carry the labels the walk saw.
func TestSymRandomWalkIgnored(t *testing.T) {
	sc := MultiUEWorldShared(2, false)
	opt := sc.Options
	opt.Strategy = check.RandomWalk
	opt.Walks = 50
	base, err := check.Run(sc.World, sc.Props, sc.Scenario, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Symmetry = true
	sym, err := check.Run(sc.World, sc.Props, sc.Scenario, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, sym) {
		t.Errorf("Symmetry changed a RandomWalk run")
	}
}
