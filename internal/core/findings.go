// Package core is the CNetVerifier facade: it assembles the protocol
// models into checkable worlds (one scoped world per finding, plus a
// combined world), runs the two-phase diagnosis of §3 — screening via
// the model checker, validation via the emulator — and carries the
// registry of the six findings of Table 1.
package core

import (
	"fmt"

	"cnetverifier/internal/types"
)

// FindingID identifies one of the paper's six problematic-interaction
// instances.
type FindingID string

// The six findings of Table 1.
const (
	S1 FindingID = "S1"
	S2 FindingID = "S2"
	S3 FindingID = "S3"
	S4 FindingID = "S4"
	S5 FindingID = "S5"
	S6 FindingID = "S6"
)

// Finding is one row of Table 1.
type Finding struct {
	ID       FindingID
	Category string
	Problem  string
	Type     types.IssueType
	// Protocols involved in the interaction.
	Protocols []types.Protocol
	// Dimensions of the interaction (S3 spans two).
	Dimensions []types.Dimension
	RootCause  string
	// Property is the §3.2.2 property the screening phase sees
	// violated; empty for the two operational findings discovered
	// during validation.
	Property string
	// Section is the paper section analyzing the finding.
	Section string
	// Fix summarizes the §8 remedy.
	Fix string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s (%s, %s): %s", f.ID, f.Type, f.Dimensions[0], f.Problem)
}

// Findings returns the Table 1 registry in order.
func Findings() []Finding {
	return []Finding{
		{
			ID:         S1,
			Category:   "necessary but problematic cooperation",
			Problem:    `user device is temporarily "out-of-service" during 3G→4G switching`,
			Type:       types.DesignIssue,
			Protocols:  []types.Protocol{types.ProtoSM, types.ProtoESM, types.ProtoGMM, types.ProtoEMM},
			Dimensions: []types.Dimension{types.CrossSystem},
			RootCause:  "session states are shared but unprotected between 3G and 4G; the PDP context may be deleted in 3G while 4G requires an EPS bearer context (§5.1)",
			Property:   "PacketService_OK",
			Section:    "§5.1",
			Fix:        "cross-system coordination: reactivate the EPS bearer after the 3G→4G switch instead of detaching; avoid avoidable PDP deactivations",
		},
		{
			ID:         S2,
			Category:   "necessary but problematic cooperation",
			Problem:    `user device is temporarily "out-of-service" during the attach procedure`,
			Type:       types.DesignIssue,
			Protocols:  []types.Protocol{types.ProtoEMM, types.ProtoRRC4G},
			Dimensions: []types.Dimension{types.CrossLayer},
			RootCause:  "MME assumes reliable, in-sequence signal transfer by RRC; RRC cannot ensure it, so lost/duplicate signals trigger an implicit detach (§5.2)",
			Property:   "PacketService_OK",
			Section:    "§5.2",
			Fix:        "layer extension: a slim reliable-transfer layer between EMM and RRC (sequencing, ack, retransmission, duplicate suppression)",
		},
		{
			ID:         S3,
			Category:   "necessary but problematic cooperation",
			Problem:    "user device gets stuck in 3G after a CSFB call",
			Type:       types.DesignIssue,
			Protocols:  []types.Protocol{types.ProtoRRC3G, types.ProtoCM, types.ProtoSM},
			Dimensions: []types.Dimension{types.CrossDomain, types.CrossSystem},
			RootCause:  "the RRC state is shared by CS and PS; inter-system cell reselection requires IDLE, which an ongoing data session prevents (§5.3)",
			Property:   "MM_OK",
			Section:    "§5.3",
			Fix:        "domain decoupling: a CSFB tag lets the base station force a switch-capable RRC state when the call ends",
		},
		{
			ID:         S4,
			Category:   "independent but coupled operation",
			Problem:    "outgoing call / Internet access is delayed",
			Type:       types.DesignIssue,
			Protocols:  []types.Protocol{types.ProtoCM, types.ProtoMM, types.ProtoSM, types.ProtoGMM},
			Dimensions: []types.Dimension{types.CrossLayer},
			RootCause:  "location updates are served with higher priority than outgoing call/data requests although serving the request would implicitly update the location (§6.1)",
			Property:   "CallService_OK",
			Section:    "§6.1",
			Fix:        "layer extension: parallel threads for location update and service requests, with the service request first",
		},
		{
			ID:         S5,
			Category:   "independent but coupled operation",
			Problem:    "PS rate declines (51%–96% drop) during an ongoing CS call",
			Type:       types.OperationIssue,
			Protocols:  []types.Protocol{types.ProtoRRC3G, types.ProtoCM, types.ProtoSM},
			Dimensions: []types.Dimension{types.CrossDomain},
			RootCause:  "3G RRC configures the shared channel with a single modulation scheme for both voice and data; the CS call forces 16QAM (§6.2)",
			Section:    "§6.2",
			Fix:        "domain decoupling: separate channels (and modulation schemes) for CS and PS traffic",
		},
		{
			ID:         S6,
			Category:   "independent but coupled operation",
			Problem:    `user device is temporarily "out-of-service" after a 3G→4G switch`,
			Type:       types.OperationIssue,
			Protocols:  []types.Protocol{types.ProtoMM, types.ProtoEMM},
			Dimensions: []types.Dimension{types.CrossSystem},
			RootCause:  "a 3G location-update failure is exposed to 4G, whose MME detaches the device instead of recovering inside the infrastructure (§6.3)",
			Property:   "PacketService_OK",
			Section:    "§6.3",
			Fix:        "cross-system coordination: the MME recovers the location update with the MSC on behalf of the device and never forwards the failure",
		},
	}
}

// FindingByID returns the registry entry for id.
func FindingByID(id FindingID) (Finding, bool) {
	for _, f := range Findings() {
		if f.ID == id {
			return f, true
		}
	}
	return Finding{}, false
}
