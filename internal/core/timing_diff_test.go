package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"cnetverifier/internal/check"
)

// violationLines renders a screening result in the cnetverify
// -violations wire format: one sorted "property\tdesc" line per
// violation, newline-joined. Byte equality of two renderings is the
// determinism contract ci.sh enforces across engines.
func violationLines(t *testing.T, s Scoped, opt check.Options) string {
	t.Helper()
	r, err := Screen(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, 0, len(r.Result.Violations))
	for _, v := range r.Result.Violations {
		lines = append(lines, v.Property+"\t"+v.Desc)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestDegenerateTimingMatchesUntimed is the in-process half of the
// ci.sh timing differential gate: a degenerate timing profile
// (zero-width periodic windows standing in for the scenario's periodic
// env events) must reproduce the untimed violation set byte for byte on
// every standard world, under every reduction and worker count. The
// timed state graph is isomorphic to the untimed one — see
// TimingDegenerate — so any drift here is an engine bug, not a model
// difference.
func TestDegenerateTimingMatchesUntimed(t *testing.T) {
	if testing.Short() {
		t.Skip("screens every standard world 18 times")
	}
	type mode struct {
		name     string
		por, sym bool
	}
	modes := []mode{{"plain", false, false}, {"por", true, false}, {"sym", false, true}}
	workers := []int{1, 4, 8}

	for name := range StandardWorlds(false) {
		name := name
		// Under the race detector keep only the small worlds: the timed
		// parallel engine's shared paths are identical everywhere, and
		// instrumented screens of full/multiue would dominate the
		// package timeout.
		if raceEnabled {
			switch name {
			case "s1", "s4cs", "s4ps", "multiue-shared":
			default:
				continue
			}
		}
		t.Run(name, func(t *testing.T) {
			for _, m := range modes {
				for _, w := range workers {
					label := fmt.Sprintf("%s/workers=%d", m.name, w)

					us := StandardWorlds(false)[name]
					uopt := us.Options
					uopt.POR, uopt.Symmetry, uopt.Workers = m.por, m.sym, w
					untimed := violationLines(t, us, uopt)

					ts, err := WithTiming(StandardWorlds(false)[name], TimingDegenerate)
					if err != nil {
						t.Fatalf("%s: WithTiming: %v", label, err)
					}
					topt := ts.Options
					topt.POR, topt.Symmetry, topt.Workers = m.por, m.sym, w
					timed := violationLines(t, ts, topt)

					if timed != untimed {
						t.Errorf("%s: degenerate-timed violation set diverged from untimed\nuntimed:\n%s\ntimed:\n%s",
							label, untimed, timed)
					}
				}
			}
		})
	}
}
