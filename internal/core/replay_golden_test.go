package core

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cnetverifier/internal/check"
	"cnetverifier/internal/names"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden counterexample traces")

// goldenWorlds are the S1–S6 scoped worlds pinned by golden traces.
// (The full world random-walks a sampled scenario space and is covered
// by the determinism suite instead.)
func goldenWorlds() []Scoped {
	return []Scoped{
		S1World(false),
		S2World(false),
		S3World(false, names.SwitchReselect),
		S4CSWorld(false),
		S4PSWorld(false),
		S6World(false),
	}
}

// renderGolden serializes the first discovered violation of a world —
// property, description, every step of the counterexample, and the
// hex canonical encoding of the state Replay reaches — into the format
// stored under testdata/golden.
func renderGolden(s Scoped, v check.Violation) (string, error) {
	end, err := check.Replay(s.World, v.Path)
	if err != nil {
		return "", fmt.Errorf("replay: %w", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "finding: %s\n", s.Finding)
	fmt.Fprintf(&b, "property: %s\n", v.Property)
	fmt.Fprintf(&b, "desc: %s\n", v.Desc)
	fmt.Fprintf(&b, "steps: %d\n", len(v.Path))
	for i, st := range v.Path {
		fmt.Fprintf(&b, "%3d. [%s] %s\n", i+1, st.Kind, st)
	}
	fmt.Fprintf(&b, "final-state: %s\n", hex.EncodeToString(end.Encode(nil)))
	return b.String(), nil
}

// TestReplayGolden screens each defective S1–S6 world and pins the
// first counterexample plus the byte-for-byte state Replay reproduces.
// Any drift in the model encoding, the exploration order or the replay
// machinery shows up as a golden diff. Refresh intentionally with:
//
//	go test ./internal/core -run TestReplayGolden -update
func TestReplayGolden(t *testing.T) {
	for _, s := range goldenWorlds() {
		name := strings.ToLower(string(s.Finding))
		if s.Finding == "S4" {
			// Two scoped S4 worlds share the finding ID; disambiguate by
			// the violated service property.
			if s.World.Proc(names.UESM) != nil {
				name = "s4ps"
			} else {
				name = "s4cs"
			}
		}
		s := s
		t.Run(name, func(t *testing.T) {
			r, err := Screen(s, check.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Result.Violations) == 0 {
				t.Fatal("defective world reported no violation")
			}
			got, err := renderGolden(s, r.Result.Violations[0])
			if err != nil {
				t.Fatal(err)
			}

			path := filepath.Join("testdata", "golden", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s:\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}

			// Independently of the golden text, Replay twice must land on
			// the identical encoded state: replay is deterministic.
			e1, err := check.Replay(s.World, r.Result.Violations[0].Path)
			if err != nil {
				t.Fatal(err)
			}
			e2, err := check.Replay(s.World, r.Result.Violations[0].Path)
			if err != nil {
				t.Fatal(err)
			}
			if string(e1.Encode(nil)) != string(e2.Encode(nil)) {
				t.Error("two replays of the same counterexample diverged")
			}
		})
	}
}

// TestReplayGoldenMultiUEShared pins the S4-class counterexample of
// the shared-core 2-UE world (one g.pdp/g.eps context block, per-UE
// namespaces otherwise): the first canonical violation of a plain
// screening run, replayed and serialized like the S1–S6 goldens.
// Refresh intentionally with:
//
//	go test ./internal/core -run TestReplayGoldenMultiUEShared -update
func TestReplayGoldenMultiUEShared(t *testing.T) {
	s := MultiUEWorldShared(2, false)
	r, err := Screen(s, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Result.Violations) == 0 {
		t.Fatal("defective shared 2-UE world reported no violation")
	}
	got, err := renderGolden(s, r.Result.Violations[0])
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "s4shared.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch for s4shared:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The symmetry quotient finds some violations only through the
	// permutation closure, which rewrites counterexample paths along
	// the permutation. Those rewritten paths must still be genuine
	// executions: every violation of a -sym run replays cleanly.
	opt := s.Options
	opt.Symmetry = true
	rs, err := Screen(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Result.Violations) != len(r.Result.Violations) {
		t.Fatalf("sym run found %d violations, plain %d",
			len(rs.Result.Violations), len(r.Result.Violations))
	}
	for _, v := range rs.Result.Violations {
		if _, err := check.Replay(s.World, v.Path); err != nil {
			t.Errorf("sym violation %q [%s] does not replay: %v", v.Property, v.Desc, err)
		}
	}
}
