package core

import (
	"fmt"

	"cnetverifier/internal/check"
	"cnetverifier/internal/model"
	"cnetverifier/internal/names"
	"cnetverifier/internal/props"
	"cnetverifier/internal/protocols/cm"
	"cnetverifier/internal/protocols/emm"
	"cnetverifier/internal/protocols/esm"
	"cnetverifier/internal/protocols/gmm"
	"cnetverifier/internal/protocols/mm"
	"cnetverifier/internal/protocols/rrc3g"
	"cnetverifier/internal/protocols/rrc4g"
	"cnetverifier/internal/protocols/sm"
	"cnetverifier/internal/types"
)

// Scoped bundles a scoped world with the scenario that drives it and
// the properties it is checked against — one per design finding,
// mirroring how the paper configures validation experiments from
// screening counterexamples (§3.1).
type Scoped struct {
	// Finding is the instance this world screens for.
	Finding FindingID
	// Fixed reports whether the §8 fixes are enabled.
	Fixed bool
	// World is the initial state.
	World *model.World
	// Scenario offers the usage-scenario events (§3.2.1).
	Scenario check.Scenario
	// Props are the properties to check (§3.2.2).
	Props []check.Property
	// Options are suggested checker bounds for this world.
	Options check.Options
}

func env(proc string, kind types.MsgKind) model.EnvEvent {
	return model.EnvEvent{Proc: proc, Msg: types.Message{Kind: kind}}
}

func envCause(proc string, kind types.MsgKind, cause types.Cause) model.EnvEvent {
	return model.EnvEvent{Proc: proc, Msg: types.Message{Kind: kind, Cause: cause}}
}

func mustWorld(cfg model.Config) *model.World {
	w, err := model.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("core: bad world config: %v", err))
	}
	return w
}

func baseGlobals() map[string]int {
	return map[string]int{
		names.GSys:        int(types.SysNone),
		names.GModulation: rrc3g.Mod64QAM,
	}
}

// S1World builds the cross-system context-loss world of §5.1: EMM/ESM
// in 4G, GMM/SM in 3G, with the PDP/EPS contexts shared through the
// global store. Usage scenario: 4G attach → 4G→3G switch (context
// migration) → PDP deactivation in 3G (device- or network-originated,
// Table 3) → 3G→4G return (TAU).
func S1World(fixed bool) Scoped {
	w := mustWorld(model.Config{
		Globals: baseGlobals(),
		Procs: []model.ProcConfig{
			{Name: names.UEEMM, Spec: emm.DeviceSpec(emm.DeviceOptions{FixReactivateBearer: fixed}), OutputTo: []string{names.UEESM}},
			{Name: names.MMEEMM, Spec: emm.MMESpec(emm.MMEOptions{FixReactivateBearer: fixed}), OutputTo: []string{names.MMEESM}},
			{Name: names.UEESM, Spec: esm.DeviceSpec(esm.DeviceOptions{})},
			{Name: names.MMEESM, Spec: esm.MMESpec(esm.MMEOptions{})},
			{Name: names.UEGMM, Spec: gmm.DeviceSpec(gmm.DeviceOptions{})},
			{Name: names.SGSNGMM, Spec: gmm.SGSNSpec(gmm.SGSNOptions{})},
			{Name: names.UESM, Spec: sm.DeviceSpec(sm.DeviceOptions{})},
			{Name: names.SGSNSM, Spec: sm.SGSNSpec(sm.SGSNOptions{})},
		},
	})
	sc := check.ScenarioFunc(func(w *model.World) []model.EnvEvent {
		return []model.EnvEvent{
			env(names.UEEMM, types.MsgPowerOn),
			env(names.UEGMM, types.MsgInterSystemSwitchCommand),
			envCause(names.UESM, types.MsgDeactivatePDPRequest, types.CauseQoSNotAccepted),
			envCause(names.SGSNSM, types.MsgNetDetachOrder, types.CauseIncompatiblePDPContext),
			env(names.UESM, types.MsgWiFiAvailable),
			env(names.UEEMM, types.MsgInterSystemCellReselect),
		}
	})
	return Scoped{
		Finding:  S1,
		Fixed:    fixed,
		World:    w,
		Scenario: sc,
		Props:    []check.Property{props.PacketServiceOK()},
		Options:  check.Options{MaxDepth: 22, MaxStates: 1 << 18},
	}
}

// S2World builds the cross-layer unreliable-signaling world of §5.2:
// EMM over an RRC transfer that may lose signals (lossy device and MME
// inboxes) and reorder them (signals relayed through different base
// stations). The §8 fix — the reliable-transfer shim — is modeled by
// its guarantee: a loss-free, in-order channel with duplicate
// suppression.
func S2World(fixed bool) Scoped {
	w := mustWorld(model.Config{
		Globals: baseGlobals(),
		Procs: []model.ProcConfig{
			{Name: names.UEEMM, Spec: emm.DeviceSpec(emm.DeviceOptions{}), Lossy: !fixed},
			{Name: names.MMEEMM, Spec: emm.MMESpec(emm.MMEOptions{}), Lossy: !fixed, Reorder: !fixed},
		},
	})
	sc := check.ScenarioFunc(func(w *model.World) []model.EnvEvent {
		return []model.EnvEvent{
			env(names.UEEMM, types.MsgPowerOn),
			// The NAS timer drives both attach retransmission (the S2
			// duplicate source) and periodic TAUs (which surface the
			// lost-signal inconsistency).
			env(names.UEEMM, types.MsgPeriodicTimer),
		}
	})
	return Scoped{
		Finding:  S2,
		Fixed:    fixed,
		World:    w,
		Scenario: sc,
		Props:    []check.Property{props.PacketServiceOK()},
		Options:  check.Options{MaxDepth: 14, MaxStates: 1 << 18},
	}
}

// S3World builds the cross-domain/cross-system RRC-state world of §5.3:
// a CSFB call dialed in 4G with a concurrent high-rate data session,
// under a configurable carrier switching option (names.SwitchRedirect
// for OP-I, names.SwitchReselect for OP-II).
func S3World(fixed bool, switchOpt int) Scoped {
	g := baseGlobals()
	g[names.GSys] = int(types.Sys4G)
	g[names.GSwitchOpt] = switchOpt
	w := mustWorld(model.Config{
		Globals: g,
		Procs: []model.ProcConfig{
			{Name: names.UECM, Spec: cm.DeviceSpec(cm.DeviceOptions{DirectToMSC: true}), OutputTo: []string{names.UERRC3G, names.UERRC4G}},
			{Name: names.UERRC3G, Spec: rrc3g.DeviceSpec(rrc3g.DeviceOptions{FixCSFBTag: fixed}), OutputTo: []string{names.UECM}},
			{Name: names.UERRC4G, Spec: rrc4g.DeviceSpec(rrc4g.DeviceOptions{}), OutputTo: []string{names.UERRC3G}},
			{Name: names.MSCCM, Spec: cm.MSCSpec(cm.MSCOptions{})},
		},
	})
	sc := check.ScenarioFunc(func(w *model.World) []model.EnvEvent {
		return []model.EnvEvent{
			env(names.UERRC4G, types.MsgUserDataOn),
			env(names.UECM, types.MsgUserDialCall),
			env(names.UECM, types.MsgUserHangUp),
			env(names.UERRC3G, types.MsgUserDataOff),
			env(names.UERRC3G, types.MsgInterSystemCellReselect),
		}
	})
	return Scoped{
		Finding:  S3,
		Fixed:    fixed,
		World:    w,
		Scenario: sc,
		Props:    []check.Property{props.MMOK()},
		Options:  check.Options{MaxDepth: 24, MaxStates: 1 << 18},
	}
}

// S4CSWorld builds the cross-layer HOL-blocking world of §6.1, CS side:
// an outgoing call dialed while MM runs a location-area update.
func S4CSWorld(fixed bool) Scoped {
	g := baseGlobals()
	g[names.GSys] = int(types.Sys3G)
	w := mustWorld(model.Config{
		Globals: g,
		Procs: []model.ProcConfig{
			{Name: names.UECM, Spec: cm.DeviceSpec(cm.DeviceOptions{}), OutputTo: []string{names.UEMM}},
			{Name: names.UEMM, Spec: mm.DeviceSpec(mm.DeviceOptions{FixParallelUpdate: fixed}), OutputTo: []string{names.UECM}},
			{Name: names.MSCMM, Spec: mm.MSCSpec(mm.MSCOptions{})},
			{Name: names.MSCCM, Spec: cm.MSCSpec(cm.MSCOptions{})},
		},
	})
	sc := check.ScenarioFunc(func(w *model.World) []model.EnvEvent {
		return []model.EnvEvent{
			env(names.UEMM, types.MsgPowerOn),
			env(names.UEMM, types.MsgUserMove),
			env(names.UECM, types.MsgUserDialCall),
		}
	})
	return Scoped{
		Finding:  S4,
		Fixed:    fixed,
		World:    w,
		Scenario: sc,
		Props:    []check.Property{props.CallServiceOK()},
		Options: check.Options{MaxDepth: 18, MaxStates: 1 << 18,
			// This scoped world deliberately omits the RRC layers, so
			// CM's radio-directed outputs (CSFB trigger, call-connect
			// notification) have no handler here; suppress the
			// unhandled-output rule for CM instead of skipping lint.
			LintSuppress: map[string][]string{names.UECM: {"MSG003"}},
		},
	}
}

// S4PSWorld builds the PS twin of §6.1: a data request issued while GMM
// runs a routing-area update.
func S4PSWorld(fixed bool) Scoped {
	w := mustWorld(model.Config{
		Globals: baseGlobals(),
		Procs: []model.ProcConfig{
			{Name: names.UEGMM, Spec: gmm.DeviceSpec(gmm.DeviceOptions{FixParallelUpdate: fixed})},
			{Name: names.SGSNGMM, Spec: gmm.SGSNSpec(gmm.SGSNOptions{})},
			{Name: names.UESM, Spec: sm.DeviceSpec(sm.DeviceOptions{FixParallelUpdate: fixed})},
			{Name: names.SGSNSM, Spec: sm.SGSNSpec(sm.SGSNOptions{})},
		},
	})
	sc := check.ScenarioFunc(func(w *model.World) []model.EnvEvent {
		return []model.EnvEvent{
			env(names.UEGMM, types.MsgPowerOn),
			env(names.UEGMM, types.MsgUserMove),
			env(names.UESM, types.MsgUserDataOn),
		}
	})
	return Scoped{
		Finding:  S4,
		Fixed:    fixed,
		World:    w,
		Scenario: sc,
		Props:    []check.Property{props.DataServiceOK()},
		Options:  check.Options{MaxDepth: 16, MaxStates: 1 << 18},
	}
}

// S6World builds the cross-system failure-propagation world of §6.3: a
// 4G-attached device is switched to 3G where its location update fails;
// on the return to 4G the MME either propagates the failure (detaching
// the device) or — with the fix — recovers it with the MSC.
func S6World(fixed bool) Scoped {
	w := mustWorld(model.Config{
		Globals: baseGlobals(),
		Procs: []model.ProcConfig{
			{Name: names.UEEMM, Spec: emm.DeviceSpec(emm.DeviceOptions{})},
			{Name: names.MMEEMM, Spec: emm.MMESpec(emm.MMEOptions{PropagateLUFailure: !fixed, FixLUFailureRecovery: fixed})},
			{Name: names.UEMM, Spec: mm.DeviceSpec(mm.DeviceOptions{})},
			{Name: names.MSCMM, Spec: mm.MSCSpec(mm.MSCOptions{})},
			{Name: names.UERRC4G, Spec: rrc4g.DeviceSpec(rrc4g.DeviceOptions{}), OutputTo: []string{names.UEMM}},
		},
	})
	sc := check.ScenarioFunc(func(w *model.World) []model.EnvEvent {
		return []model.EnvEvent{
			env(names.UEEMM, types.MsgPowerOn),
			env(names.MSCMM, types.MsgLUFailureSignal),
			env(names.UERRC4G, types.MsgNetSwitchOrder),
			env(names.UEEMM, types.MsgInterSystemCellReselect),
		}
	})
	return Scoped{
		Finding:  S6,
		Fixed:    fixed,
		World:    w,
		Scenario: sc,
		Props:    []check.Property{props.PacketServiceOK()},
		Options:  check.Options{MaxDepth: 20, MaxStates: 1 << 18},
	}
}

// ScopedModels returns the screening worlds for every design finding
// the checker can discover (S1–S4, S6), in their defective
// configuration.
//
// S5 has no scoped world — and consequently no checker golden trace
// and no entry in the minimized golden corpus (internal/fuzz/testdata/
// corpus). It is an *operational* finding (§6.2): the PS rate collapse
// is a throughput degradation measured on the emulator's radio model,
// not a reachable bad state of the protocol FSMs, so there is no
// property violation for the screening phase to counterexample or for
// the shrinker to minimize.
func ScopedModels() []Scoped {
	return []Scoped{
		S1World(false),
		S2World(false),
		S3World(false, names.SwitchReselect),
		S4CSWorld(false),
		S4PSWorld(false),
		S6World(false),
	}
}

// FixedModels returns the same worlds with the §8 fixes enabled.
func FixedModels() []Scoped {
	return []Scoped{
		S1World(true),
		S2World(true),
		S3World(true, names.SwitchReselect),
		S4CSWorld(true),
		S4PSWorld(true),
		S6World(true),
	}
}
