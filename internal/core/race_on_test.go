//go:build race

package core

// raceEnabled gates tests whose assertions (allocation counting) are
// meaningless under the race detector's instrumented allocator.
const raceEnabled = true
