package core

import "testing"

// maxAllocsPerState is the checked-in steady-state allocation budget
// for sequential screening, in heap allocations per distinct state
// reached. The interned-slab engine with the flat fingerprint visited
// table screens S1 at ~7.3 allocs/state (the residue is scenario event
// construction, protocol action closures and violation bookkeeping —
// the clone/encode/hash/mark hot path itself is allocation-free after
// warm-up); the sharded-map engine sat near 9.4 and the pre-slab
// engine near 178. The budget leaves ~1.8x headroom for runtime and
// toolchain drift while still catching any reintroduction of per-state
// cloning, map-based encoding, or per-mark key materialization.
const maxAllocsPerState = 13.0

// TestScreenAllocBudget is the allocation regression guard: a warm
// sequential screen of the S1 world must stay under the checked-in
// allocs-per-state budget. It complements the BenchmarkScreen* suite —
// benchmarks report drift, this test fails the build on it.
func TestScreenAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	s := S1World(false)
	opt := s.Options
	opt.SkipLint = true // lint probing is one-shot work, not steady state

	// Warm run: populates the fsm layout caches and the per-spec lint
	// probe memo so AllocsPerRun sees steady state only.
	r, err := Screen(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result.States == 0 {
		t.Fatal("S1 screen explored no states")
	}

	avg := testing.AllocsPerRun(5, func() {
		if _, err := Screen(s, opt); err != nil {
			t.Fatal(err)
		}
	})
	perState := avg / float64(r.Result.States)
	t.Logf("S1: %d states, %.0f allocs/run, %.2f allocs/state (budget %.0f)",
		r.Result.States, avg, perState, maxAllocsPerState)
	if perState > maxAllocsPerState {
		t.Fatalf("screening allocates %.2f allocs/state, budget is %.0f: the clone-free hot path regressed",
			perState, maxAllocsPerState)
	}
}

// TestScreenSymAllocBudget extends the allocation guard to symmetry
// reduction: a warm screen of the shared-core 2-UE world with
// Options.Symmetry must hold the same allocs-per-state budget as plain
// screening. EncodeCanonical keeps all working storage in per-world
// scratch, so canonicalizing the visited set adds no per-state heap
// allocations; the only extra work is the per-run violation closure,
// which amortizes to noise. The 2x cross-check against the plain run
// catches a regression that hides under the absolute budget.
func TestScreenSymAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	s := MultiUEWorldShared(2, false)
	opt := s.Options
	opt.SkipLint = true

	perState := func(sym bool) float64 {
		o := opt
		o.Symmetry = sym
		r, err := Screen(s, o)
		if err != nil {
			t.Fatal(err)
		}
		if r.Result.States == 0 {
			t.Fatal("shared 2-UE screen explored no states")
		}
		avg := testing.AllocsPerRun(5, func() {
			if _, err := Screen(s, o); err != nil {
				t.Fatal(err)
			}
		})
		ps := avg / float64(r.Result.States)
		t.Logf("shared 2-UE sym=%v: %d states, %.0f allocs/run, %.2f allocs/state (budget %.0f)",
			sym, r.Result.States, avg, ps, maxAllocsPerState)
		return ps
	}
	plain := perState(false)
	sym := perState(true)
	if sym > maxAllocsPerState {
		t.Fatalf("symmetry screening allocates %.2f allocs/state, budget is %.0f: canonicalization left the alloc-free hot path",
			sym, maxAllocsPerState)
	}
	if sym > 2*plain {
		t.Fatalf("symmetry screening allocates %.2f allocs/state vs %.2f plain: canonicalization regressed the hot path",
			sym, plain)
	}
}
