package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cnetverifier/internal/check"
)

// ScreenResult is the screening outcome for one scoped world.
type ScreenResult struct {
	Finding FindingID
	Fixed   bool
	Result  *check.Result
}

// Violated reports whether any property was violated.
func (r ScreenResult) Violated() bool { return len(r.Result.Violations) > 0 }

// Screen runs the model checker over one scoped world with its
// suggested bounds (callers may override via opt; zero-value opt uses
// the world's own Options).
func Screen(s Scoped, opt check.Options) (ScreenResult, error) {
	if opt.IsZero() {
		opt = s.Options
	}
	res, err := check.Run(s.World, s.Props, s.Scenario, opt)
	if err != nil {
		return ScreenResult{}, fmt.Errorf("core: screening %s: %w", s.Finding, err)
	}
	return ScreenResult{Finding: s.Finding, Fixed: s.Fixed, Result: res}, nil
}

// ScreenAll runs the screening phase over every scoped defective world
// (the CNetVerifier phase-1 of Figure 2) and returns the per-finding
// results in order.
func ScreenAll() ([]ScreenResult, error) {
	return ScreenWorlds(ScopedModels(), nil, CampaignOptions{})
}

// CampaignOptions configures a screening campaign over several scoped
// worlds (ScreenWorlds) — the paper's phase 1 run over hundreds of
// sampled usage scenarios, which is embarrassingly parallel across
// scenarios on top of whatever per-world engine parallelism is set.
type CampaignOptions struct {
	// Parallel is the number of worlds screened concurrently (one
	// goroutine per in-flight scenario world). 0 or 1 screens
	// sequentially in order.
	Parallel int
	// Workers overrides check.Options.Workers for every world whose
	// options leave it unset — the per-world engine parallelism.
	Workers int
	// StateBudget, when positive, caps the total number of distinct
	// states across the whole campaign with one shared token pool
	// (check.Budget) instead of per-world MaxStates alone. Worlds
	// truncate when the pool dries up.
	StateBudget int
	// CancelOnViolation cancels every in-flight and queued world as
	// soon as one world reports a property violation — the "stop the
	// campaign at the first finding" mode. Results of cancelled worlds
	// are partial and marked Truncated.
	CancelOnViolation bool
}

// ScreenWorlds screens the given scoped worlds — concurrently when
// opts.Parallel > 1 — and returns the results in input order. The
// optional perWorld hook supplies checker options for each world
// (nil, or a zero Options, uses the world's own suggested bounds),
// exactly like Screen; campaign-level knobs (shared budget, engine
// workers, early cancel) are layered on top.
func ScreenWorlds(scoped []Scoped, perWorld func(Scoped) check.Options, opts CampaignOptions) ([]ScreenResult, error) {
	var budget *check.Budget
	if opts.StateBudget > 0 {
		budget = check.NewBudget(opts.StateBudget)
	}
	var cancel *check.Cancel
	if opts.CancelOnViolation {
		cancel = &check.Cancel{}
	}

	optFor := func(s Scoped) check.Options {
		var opt check.Options
		if perWorld != nil {
			opt = perWorld(s)
		}
		if opt.IsZero() {
			opt = s.Options
		}
		if opt.Workers == 0 {
			opt.Workers = opts.Workers
		}
		if opt.Budget == nil {
			opt.Budget = budget
		}
		if opt.Cancel == nil {
			opt.Cancel = cancel
		}
		return opt
	}

	out := make([]ScreenResult, len(scoped))
	errs := make([]error, len(scoped))

	if opts.Parallel <= 1 {
		for i, s := range scoped {
			r, err := Screen(s, optFor(s))
			if err != nil {
				return nil, err
			}
			out[i] = r
			if opts.CancelOnViolation && r.Violated() {
				cancel.Cancel()
			}
		}
		return out, nil
	}

	sem := make(chan struct{}, opts.Parallel)
	var wg sync.WaitGroup
	for i := range scoped {
		wg.Add(1)
		go func(i int, s Scoped) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, err := Screen(s, optFor(s))
			if err != nil {
				errs[i] = err
				if cancel != nil {
					cancel.Cancel()
				}
				return
			}
			out[i] = r
			if opts.CancelOnViolation && r.Violated() {
				cancel.Cancel()
			}
		}(i, scoped[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// VerifyFixes runs the checker over every fixed world and returns an
// error naming any finding whose fix does not eliminate all violations
// within the world's bounds.
func VerifyFixes() ([]ScreenResult, error) {
	var out []ScreenResult
	var broken []string
	for _, s := range FixedModels() {
		r, err := Screen(s, check.Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		if r.Violated() {
			broken = append(broken, string(s.Finding))
		}
	}
	if len(broken) > 0 {
		return out, fmt.Errorf("core: fixes did not eliminate violations for %s", strings.Join(broken, ", "))
	}
	return out, nil
}

// Report renders screening results as a human-readable table with one
// counterexample per violated property.
func Report(results []ScreenResult, verbose bool) string {
	var b strings.Builder
	for _, r := range results {
		f, _ := FindingByID(r.Finding)
		status := "no violation"
		if r.Violated() {
			names := map[string]bool{}
			for _, v := range r.Result.Violations {
				names[v.Property] = true
			}
			var list []string
			for n := range names {
				list = append(list, n)
			}
			sort.Strings(list)
			status = "VIOLATED: " + strings.Join(list, ", ")
		}
		mode := "defective"
		if r.Fixed {
			mode = "fixed"
		}
		fmt.Fprintf(&b, "%-3s %-10s %-32s states=%-7d transitions=%-8d %s\n",
			r.Finding, mode, firstDim(f), r.Result.States, r.Result.Transitions, status)
		if verbose {
			for _, v := range r.Result.Violations {
				b.WriteString(check.FormatCounterexample(v))
			}
		}
	}
	return b.String()
}

func firstDim(f Finding) string {
	if len(f.Dimensions) == 0 {
		return ""
	}
	parts := make([]string, len(f.Dimensions))
	for i, d := range f.Dimensions {
		parts[i] = d.String()
	}
	return strings.Join(parts, "+")
}

// CoverageSummary renders the per-process transition coverage of a
// screening run over its scoped world: how much of each protocol spec
// the scenario space exercised, and which transitions were never
// reached (unexercised defect transitions mean the scenario space
// cannot reach them — the checker's analogue of test coverage).
func CoverageSummary(s Scoped, r ScreenResult) string {
	reports := check.SpecCoverage(s.World, r.Result)
	procs := make([]string, 0, len(reports))
	for name := range reports {
		procs = append(procs, name)
	}
	sort.Strings(procs)

	var b strings.Builder
	fmt.Fprintf(&b, "transition coverage for %s (%s):\n", s.Finding, mode(s))
	for _, name := range procs {
		rep := reports[name]
		fmt.Fprintf(&b, "  %-12s %3d/%3d (%.0f%%)", name, rep.Fired, rep.Total, rep.Fraction()*100)
		if len(rep.Missed) > 0 {
			fmt.Fprintf(&b, "  missed: %s", strings.Join(rep.Missed, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func mode(s Scoped) string {
	if s.Fixed {
		return "fixed"
	}
	return "defective"
}
