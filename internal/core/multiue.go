package core

import (
	"fmt"

	"cnetverifier/internal/check"
	"cnetverifier/internal/fsm"
	"cnetverifier/internal/model"
	"cnetverifier/internal/names"
	"cnetverifier/internal/props"
	"cnetverifier/internal/protocols/gmm"
	"cnetverifier/internal/protocols/rrc3g"
	"cnetverifier/internal/protocols/sm"
	"cnetverifier/internal/types"
)

// MultiUEWorld composes n independent copies of the S4 PS stack
// (GMM + SM, device and SGSN side) in one world. Each copy lives in
// its own namespace: process names carry a "ue<k>"/"sgsn<k>" element
// prefix, peers are wired instance-locally, and every global is
// rewritten by fsm.NamespaceGlobals, so the copies share no context at
// all — the worst case for the raw interleaving fixpoint (the product
// of n identical state spaces) and the best case for the cluster
// decomposition of check.Options.POR, which the static effect analysis
// proves apart and explores as n separate projections (the sum).
//
// This is the scaling shape the paper hits when screening multi-device
// scenarios (§7: several UEs under one SGSN interact only through
// shared infrastructure, not through each other's NAS state), and the
// world the ci POR gate and BenchmarkScreenMultiUE measure.
func MultiUEWorld(n int, fixed bool) Scoped {
	if n < 1 {
		panic(fmt.Sprintf("core: MultiUEWorld: need at least 1 UE, got %d", n))
	}
	globals := make(map[string]int, 2*n)
	procs := make([]model.ProcConfig, 0, 4*n)
	var events []model.EnvEvent
	properties := make([]check.Property, 0, n)
	for k := 1; k <= n; k++ {
		ns := fmt.Sprintf("ue%d", k)
		ueGMM := fmt.Sprintf("ue%d.gmm", k)
		sgsnGMM := fmt.Sprintf("sgsn%d.gmm", k)
		ueSM := fmt.Sprintf("ue%d.sm", k)
		sgsnSM := fmt.Sprintf("sgsn%d.sm", k)
		globals[names.Namespaced(names.GSys, ns)] = int(types.SysNone)
		globals[names.Namespaced(names.GModulation, ns)] = rrc3g.Mod64QAM
		procs = append(procs,
			model.ProcConfig{Name: ueGMM, Spec: fsm.NamespaceGlobals(
				gmm.DeviceSpec(gmm.DeviceOptions{FixParallelUpdate: fixed, Peer: sgsnGMM}), ns)},
			model.ProcConfig{Name: sgsnGMM, Spec: fsm.NamespaceGlobals(
				gmm.SGSNSpec(gmm.SGSNOptions{Peer: ueGMM}), ns)},
			model.ProcConfig{Name: ueSM, Spec: fsm.NamespaceGlobals(
				sm.DeviceSpec(sm.DeviceOptions{FixParallelUpdate: fixed, Peer: sgsnSM}), ns)},
			model.ProcConfig{Name: sgsnSM, Spec: fsm.NamespaceGlobals(
				sm.SGSNSpec(sm.SGSNOptions{Peer: ueSM}), ns)},
		)
		events = append(events,
			env(ueGMM, types.MsgPowerOn),
			env(ueGMM, types.MsgUserMove),
			env(ueSM, types.MsgUserDataOn),
		)
		properties = append(properties, props.DataServiceOKIn(ns))
	}
	w := mustWorld(model.Config{Globals: globals, Procs: procs})
	if err := w.SetSymmetry(multiUESymmetry(n)); err != nil {
		panic(fmt.Sprintf("core: MultiUEWorld: %v", err))
	}
	sc := check.ScenarioFunc(func(w *model.World) []model.EnvEvent {
		return events
	})
	return Scoped{
		Finding:  S4,
		Fixed:    fixed,
		World:    w,
		Scenario: sc,
		Props:    properties,
		Options:  check.Options{MaxDepth: 48, MaxStates: 1 << 20},
	}
}

// multiUESymmetry declares the replica structure shared by both
// multi-UE worlds: one group of n replicas, each owning a UE's four
// processes (role order fixed), the "ue<k>" globals namespace, and the
// "ue<k>"/"sgsn<k>" name atoms for violation rewriting. The scenario
// offers the same events to every replica and each stack is wired
// instance-locally, so exchanging replicas maps reachable states onto
// reachable states — the soundness precondition of Options.Symmetry.
func multiUESymmetry(n int) *model.Symmetry {
	g := model.SymGroup{Replicas: make([]model.SymReplica, 0, n)}
	for k := 1; k <= n; k++ {
		ue := fmt.Sprintf("ue%d", k)
		sgsn := fmt.Sprintf("sgsn%d", k)
		g.Replicas = append(g.Replicas, model.SymReplica{
			Procs: []string{ue + ".gmm", sgsn + ".gmm", ue + ".sm", sgsn + ".sm"},
			NS:    ue,
			Atoms: []string{ue, sgsn},
		})
	}
	return &model.Symmetry{Groups: []model.SymGroup{g}}
}

// MultiUEWorldShared composes n copies of the S4 PS stack that all
// attach through ONE shared core context block: the PDP and EPS session
// globals (g.pdp / g.eps — the HSS-backed per-subscriber store
// collapsed to a single MME/HSS context, §5.1) stay un-namespaced
// while every other global is rewritten per UE. The static effect
// analysis then sees every stack read and write g.pdp, so the
// may-interact relation is connected, the cluster decomposition of
// check.Options.POR degenerates to a single cluster, and POR alone
// buys nothing — exactly the coupled case ROADMAP names. The UEs are
// still interchangeable, so Options.Symmetry collapses the ~n!
// permutation blowup instead: the world is the acceptance vehicle for
// the UE-symmetry canonicalization (ci sym gate, BENCH_screen labels
// "sym"/"por+sym").
//
// The S4 HOL-blocking defect stays per-UE (g.<ns>.dataDelayed), so the
// defective world reports one DataService_OK violation per UE, like
// MultiUEWorld.
func MultiUEWorldShared(n int, fixed bool) Scoped {
	if n < 1 {
		panic(fmt.Sprintf("core: MultiUEWorldShared: need at least 1 UE, got %d", n))
	}
	globals := map[string]int{names.GPDP: 0, names.GEPS: 0}
	procs := make([]model.ProcConfig, 0, 4*n)
	var events []model.EnvEvent
	properties := make([]check.Property, 0, n)
	for k := 1; k <= n; k++ {
		ns := fmt.Sprintf("ue%d", k)
		ueGMM := fmt.Sprintf("ue%d.gmm", k)
		sgsnGMM := fmt.Sprintf("sgsn%d.gmm", k)
		ueSM := fmt.Sprintf("ue%d.sm", k)
		sgsnSM := fmt.Sprintf("sgsn%d.sm", k)
		globals[names.Namespaced(names.GSys, ns)] = int(types.SysNone)
		globals[names.Namespaced(names.GModulation, ns)] = rrc3g.Mod64QAM
		procs = append(procs,
			model.ProcConfig{Name: ueGMM, Spec: fsm.NamespaceGlobalsShared(
				gmm.DeviceSpec(gmm.DeviceOptions{FixParallelUpdate: fixed, Peer: sgsnGMM}), ns,
				names.GPDP, names.GEPS)},
			model.ProcConfig{Name: sgsnGMM, Spec: fsm.NamespaceGlobalsShared(
				gmm.SGSNSpec(gmm.SGSNOptions{Peer: ueGMM}), ns,
				names.GPDP, names.GEPS)},
			model.ProcConfig{Name: ueSM, Spec: fsm.NamespaceGlobalsShared(
				sm.DeviceSpec(sm.DeviceOptions{FixParallelUpdate: fixed, Peer: sgsnSM}), ns,
				names.GPDP, names.GEPS)},
			model.ProcConfig{Name: sgsnSM, Spec: fsm.NamespaceGlobalsShared(
				sm.SGSNSpec(sm.SGSNOptions{Peer: ueSM}), ns,
				names.GPDP, names.GEPS)},
		)
		events = append(events,
			env(ueGMM, types.MsgPowerOn),
			env(ueGMM, types.MsgUserMove),
			env(ueSM, types.MsgUserDataOn),
		)
		properties = append(properties, props.DataServiceOKIn(ns))
	}
	w := mustWorld(model.Config{Globals: globals, Procs: procs})
	if err := w.SetSymmetry(multiUESymmetry(n)); err != nil {
		panic(fmt.Sprintf("core: MultiUEWorldShared: %v", err))
	}
	sc := check.ScenarioFunc(func(w *model.World) []model.EnvEvent {
		return events
	})
	return Scoped{
		Finding:  S4,
		Fixed:    fixed,
		World:    w,
		Scenario: sc,
		Props:    properties,
		Options:  check.Options{MaxDepth: 48, MaxStates: 1 << 20},
	}
}
