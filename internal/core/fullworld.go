package core

import (
	"cnetverifier/internal/check"
	"cnetverifier/internal/model"
	"cnetverifier/internal/names"
	"cnetverifier/internal/props"
	"cnetverifier/internal/protocols/cm"
	"cnetverifier/internal/protocols/emm"
	"cnetverifier/internal/protocols/esm"
	"cnetverifier/internal/protocols/gmm"
	"cnetverifier/internal/protocols/mm"
	"cnetverifier/internal/protocols/rrc3g"
	"cnetverifier/internal/protocols/rrc4g"
	"cnetverifier/internal/protocols/sm"
	"cnetverifier/internal/scenario"
)

// FullConfig configures the combined model.
type FullConfig struct {
	// Fixed enables every §8 fix.
	Fixed bool
	// SwitchOpt is the carrier's inter-system switching option
	// (names.SwitchRedirect/SwitchHandover/SwitchReselect).
	SwitchOpt int
	// LossyAir marks the device↔network inboxes lossy (and the MME's
	// reordering), exposing the S2 class.
	LossyAir bool
	// SampleSeed and SamplePerStep configure the scenario sampler used
	// for random walks (§3.2.1's random sampling). PerStep <= 0
	// offers the whole space deterministically (for bounded DFS/BFS).
	SampleSeed    int64
	SamplePerStep int
}

// FullWorld assembles the complete dual-system model of Figure 1 — all
// eight protocols, device and network side — under the full §3.2.1
// usage-scenario space and all §3.2.2 properties. It is intended for
// random-walk screening (the combinatorial space is far beyond
// exhaustive search, which is exactly why the paper samples scenarios
// randomly).
func FullWorld(cfg FullConfig) Scoped {
	fixed := cfg.Fixed
	g := baseGlobals()
	g[names.GSwitchOpt] = cfg.SwitchOpt

	lossy := cfg.LossyAir
	w := mustWorld(model.Config{
		Globals: g,
		Procs: []model.ProcConfig{
			// Device side.
			{Name: names.UEEMM, Spec: emm.DeviceSpec(emm.DeviceOptions{FixReactivateBearer: fixed}),
				OutputTo: []string{names.UEESM}, Lossy: lossy},
			{Name: names.UEESM, Spec: esm.DeviceSpec(esm.DeviceOptions{}), Lossy: lossy},
			{Name: names.UEGMM, Spec: gmm.DeviceSpec(gmm.DeviceOptions{FixParallelUpdate: fixed}), Lossy: lossy},
			{Name: names.UESM, Spec: sm.DeviceSpec(sm.DeviceOptions{FixParallelUpdate: fixed, FixKeepContext: fixed}), Lossy: lossy},
			{Name: names.UEMM, Spec: mm.DeviceSpec(mm.DeviceOptions{FixParallelUpdate: fixed}),
				OutputTo: []string{names.UECM}, Lossy: lossy},
			{Name: names.UECM, Spec: cm.DeviceSpec(cm.DeviceOptions{}),
				OutputTo: []string{names.UEMM, names.UERRC3G, names.UERRC4G}},
			{Name: names.UERRC3G, Spec: rrc3g.DeviceSpec(rrc3g.DeviceOptions{FixCSFBTag: fixed, FixDecoupleChannels: fixed}),
				OutputTo: []string{names.UECM}},
			{Name: names.UERRC4G, Spec: rrc4g.DeviceSpec(rrc4g.DeviceOptions{}),
				OutputTo: []string{names.UERRC3G, names.UEMM, names.UEGMM}},

			// Network side.
			{Name: names.MMEEMM, Spec: emm.MMESpec(emm.MMEOptions{
				FixReactivateBearer:  fixed,
				FixLUFailureRecovery: fixed,
				PropagateLUFailure:   !fixed,
			}), OutputTo: []string{names.MMEESM}, Lossy: lossy, Reorder: lossy},
			{Name: names.MMEESM, Spec: esm.MMESpec(esm.MMEOptions{})},
			{Name: names.SGSNGMM, Spec: gmm.SGSNSpec(gmm.SGSNOptions{})},
			{Name: names.SGSNSM, Spec: sm.SGSNSpec(sm.SGSNOptions{FixKeepContext: fixed})},
			{Name: names.MSCMM, Spec: mm.MSCSpec(mm.MSCOptions{})},
			{Name: names.MSCCM, Spec: cm.MSCSpec(cm.MSCOptions{})},
		},
	})

	var sc check.Scenario
	if cfg.SamplePerStep > 0 {
		sc = scenario.NewSampler(scenario.FullSpace(), cfg.SamplePerStep, cfg.SampleSeed)
	} else {
		space := scenario.FullSpace()
		sc = check.ScenarioFunc(space.EnvEvents)
	}

	return Scoped{
		Finding:  "full",
		Fixed:    fixed,
		World:    w,
		Scenario: sc,
		Props:    props.All(),
		Options:  check.Options{Strategy: check.RandomWalk, MaxDepth: 40, Walks: 400, Seed: cfg.SampleSeed},
	}
}
