package core

import (
	"fmt"

	"cnetverifier/internal/fuzz"
)

// ShrinkScreened post-processes a screening campaign with the ddmin
// shrinker: every violation of every world is reduced to a 1-minimal
// trace (fuzz.Shrink) against its own scoped world. The slice is
// parallel to results; worlds without violations get an empty entry.
//
// This is the cnetfuzz -screen -shrink pipeline: ScreenWorlds produces
// the counterexamples (§3.2.3), Shrink distills each to the shortest
// replayable action sequence the validation phase must stage.
func ShrinkScreened(scoped []Scoped, results []ScreenResult, opt fuzz.ShrinkOptions) ([][]fuzz.ShrinkResult, error) {
	if len(scoped) != len(results) {
		return nil, fmt.Errorf("core: shrink: %d worlds but %d results", len(scoped), len(results))
	}
	out := make([][]fuzz.ShrinkResult, len(results))
	for i, r := range results {
		for _, v := range r.Result.Violations {
			sr, err := fuzz.Shrink(scoped[i].World, scoped[i].Props, v, opt)
			if err != nil {
				return nil, fmt.Errorf("core: shrink %s (%s): %w", r.Finding, v.Property, err)
			}
			out[i] = append(out[i], *sr)
		}
	}
	return out, nil
}
