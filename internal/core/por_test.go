package core

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"cnetverifier/internal/check"
)

// violationSet canonicalizes a result's violations into the sorted
// (property, description) pairs — the checker's determinism contract
// for POR (counterexample paths are cluster-local under POR, so only
// the set is comparable).
func violationSet(res *check.Result) []string {
	out := make([]string, 0, len(res.Violations))
	for _, v := range res.Violations {
		out = append(out, v.Property+"\x00"+v.Desc)
	}
	sort.Strings(out)
	return out
}

func runWith(t *testing.T, sc Scoped, por bool, workers int) *check.Result {
	t.Helper()
	opt := sc.Options
	opt.POR = por
	opt.Workers = workers
	res, err := check.Run(sc.World, sc.Props, sc.Scenario, opt)
	if err != nil {
		t.Fatalf("check.Run(por=%v, workers=%d): %v", por, workers, err)
	}
	return res
}

// TestPORViolationSetsMatchStandardWorlds is the S1–S6 golden gate of
// the POR acceptance criteria: over every standard world (defective
// and fixed variants), the violation set with POR enabled is identical
// to the violation set with POR disabled.
func TestPORViolationSetsMatchStandardWorlds(t *testing.T) {
	for _, fixed := range []bool{false, true} {
		fixed := fixed
		for _, name := range WorldNames() {
			name := name
			t.Run(fmt.Sprintf("%s/fixed=%v", name, fixed), func(t *testing.T) {
				plain := runWith(t, StandardWorlds(fixed)[name], false, 1)
				por := runWith(t, StandardWorlds(fixed)[name], true, 1)
				if got, want := violationSet(por), violationSet(plain); !reflect.DeepEqual(got, want) {
					t.Errorf("POR changes the violation set:\n  por:   %q\n  plain: %q", got, want)
				}
				if por.States > plain.States {
					t.Errorf("POR visited more states than the plain run: %d > %d", por.States, plain.States)
				}
			})
		}
	}
}

// TestPORSingleClusterIdentical pins the fall-through contract: on a
// world the effect analysis cannot decompose (the S1 stacks are
// coupled through g.sys/g.pdp/g.eps), POR is the identity — the full
// Result matches field for field, paths included.
func TestPORSingleClusterIdentical(t *testing.T) {
	plain := runWith(t, S1World(false), false, 1)
	por := runWith(t, S1World(false), true, 1)
	if !reflect.DeepEqual(plain, por) {
		t.Errorf("single-cluster POR run differs from plain run:\nplain: %+v\npor:   %+v", plain, por)
	}
}

// TestPORMultiUEReduction is the ≥5× acceptance criterion: on the
// 3-UE world the cluster decomposition must find the same violations
// while visiting at least 5× fewer states.
func TestPORMultiUEReduction(t *testing.T) {
	plain := runWith(t, MultiUEWorld(3, false), false, 1)
	por := runWith(t, MultiUEWorld(3, false), true, 1)

	if got, want := violationSet(por), violationSet(plain); !reflect.DeepEqual(got, want) {
		t.Fatalf("POR changes the 3-UE violation set:\n  por:   %q\n  plain: %q", got, want)
	}
	if len(por.Violations) != 3 {
		t.Errorf("3-UE defective world: got %d violations, want one S4 HOL violation per UE (3)", len(por.Violations))
	}
	// plain.Truncated is expected: the depth bound prunes revisiting
	// paths after the full product is already enumerated (the state
	// count below proves coverage: exactly per-UE-states cubed).
	if por.States*5 > plain.States {
		t.Errorf("POR reduction below 5x: por=%d states, plain=%d states (%.1fx)",
			por.States, plain.States, float64(plain.States)/float64(por.States))
	}
	t.Logf("3-UE states: plain=%d por=%d (%.1fx), transitions: plain=%d por=%d",
		plain.States, por.States, float64(plain.States)/float64(por.States),
		plain.Transitions, por.Transitions)
}

// TestPORFixedMultiUEClean pins the fix side: with FixParallelUpdate
// the 3-UE world has no violations, under both engines.
func TestPORFixedMultiUEClean(t *testing.T) {
	for _, por := range []bool{false, true} {
		res := runWith(t, MultiUEWorld(3, true), por, 1)
		if len(res.Violations) != 0 {
			t.Errorf("fixed 3-UE world (por=%v): got %d violations, want 0", por, len(res.Violations))
		}
	}
}

// TestPORParallelDeterminism extends the parallel determinism contract
// to POR runs: workers=1 and workers=8 report the same states count
// and violation set on the decomposed world.
func TestPORParallelDeterminism(t *testing.T) {
	seq := runWith(t, MultiUEWorld(2, false), true, 1)
	par := runWith(t, MultiUEWorld(2, false), true, 8)
	if seq.States != par.States {
		t.Errorf("states differ across workers: seq=%d par=%d", seq.States, par.States)
	}
	if got, want := violationSet(par), violationSet(seq); !reflect.DeepEqual(got, want) {
		t.Errorf("violation sets differ across workers:\n  seq: %q\n  par: %q", want, got)
	}
}

// TestPORRandomWalkIgnored pins that RandomWalk ignores POR (sampled
// schedules are not an interleaving fixpoint to decompose).
func TestPORRandomWalkIgnored(t *testing.T) {
	sc := MultiUEWorld(2, false)
	opt := sc.Options
	opt.Strategy = check.RandomWalk
	opt.Walks = 50
	base, err := check.Run(sc.World, sc.Props, sc.Scenario, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.POR = true
	por, err := check.Run(sc.World, sc.Props, sc.Scenario, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, por) {
		t.Errorf("POR changed a RandomWalk run")
	}
}
