package core

import (
	"testing"

	"cnetverifier/internal/check"
	"cnetverifier/internal/names"
)

// Random-walk screening over the full combined model (the paper's
// §3.2.1 methodology) must surface violations of several properties in
// one sweep.
func TestFullWorldRandomWalkFindsFindings(t *testing.T) {
	s := FullWorld(FullConfig{
		SwitchOpt:     names.SwitchReselect,
		LossyAir:      true,
		SampleSeed:    1,
		SamplePerStep: 5,
	})
	opt := s.Options
	opt.MaxDepth = 48
	opt.Walks = 2000
	r, err := Screen(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, v := range r.Result.Violations {
		found[v.Property] = true
	}
	// At minimum the HOL blocking (S4) and an out-of-service detach
	// (S1/S2/S6 class) must appear; the stuck-in-3G (S3) requires the
	// rarer dial→hangup→... sequence but is regularly sampled too.
	if !found["CallService_OK"] && !found["DataService_OK"] {
		t.Errorf("random walk missed the S4 class: %v", found)
	}
	if !found["PacketService_OK"] {
		t.Errorf("random walk missed the S1/S2/S6 class: %v", found)
	}
	if len(found) < 2 {
		t.Fatalf("only %d properties violated: %v", len(found), found)
	}
	t.Logf("violated properties: %v (states=%d transitions=%d)", found, r.Result.States, r.Result.Transitions)
}

// The fully fixed combined model holds every property over the same
// sampled scenario space.
func TestFullWorldFixedCleanUnderSampling(t *testing.T) {
	s := FullWorld(FullConfig{
		Fixed:         true,
		SwitchOpt:     names.SwitchReselect,
		LossyAir:      false, // the reliable shim's guarantee (§8)
		SampleSeed:    1,
		SamplePerStep: 5,
	})
	opt := s.Options
	opt.Walks = 400
	r, err := Screen(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Violated() {
		for _, v := range r.Result.Violations {
			t.Errorf("fixed full world violates %s: %s", v.Property, v.Desc)
			t.Log(check.FormatCounterexample(v))
		}
	}
}

// Bounded exhaustive exploration of the full world stays sound: no
// apply errors, dedup effective, and depth bounded.
func TestFullWorldBoundedDFS(t *testing.T) {
	s := FullWorld(FullConfig{SwitchOpt: names.SwitchRedirect})
	opt := check.Options{Strategy: check.DFS, MaxDepth: 6, MaxStates: 30000}
	r, err := Screen(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result.States == 0 || r.Result.Transitions == 0 {
		t.Fatal("no exploration happened")
	}
	if r.Result.MaxDepth > 6 {
		t.Fatalf("depth bound exceeded: %d", r.Result.MaxDepth)
	}
}
