package emu

import (
	"testing"
	"time"

	"cnetverifier/internal/names"
	"cnetverifier/internal/protocols/emm"
	"cnetverifier/internal/types"
)

// testbed starts core, BS and device on loopback.
func testbed(t *testing.T, dropRate float64, useShim bool, seed int64) (*Core, *BS, *Device) {
	t.Helper()
	core, err := NewCore("127.0.0.1:0", useShim)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := NewBS("127.0.0.1:0", core.Addr(), dropRate, seed)
	if err != nil {
		core.Close()
		t.Fatal(err)
	}
	dev, err := NewDevice(bs.Addr(), useShim)
	if err != nil {
		bs.Close()
		core.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		dev.Close()
		bs.Close()
		core.Close()
	})
	return core, bs, dev
}

// The happy path: a 4G attach over real UDP/TCP.
func TestAttachOverSockets(t *testing.T) {
	core, bs, dev := testbed(t, 0, false, 1)
	dev.PowerOn()
	if !dev.WaitRegistered(3*time.Second, 50*time.Millisecond) {
		t.Fatal("device never registered")
	}
	// The MME agrees once its complete arrives.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if core.Stack().State(names.MMEEMM) == emm.MMERegistered {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := core.Stack().State(names.MMEEMM); got != emm.MMERegistered {
		t.Fatalf("MME state = %s", got)
	}
	if bs.Relayed() == 0 {
		t.Fatal("BS relayed nothing")
	}
}

// S2 over real sockets: with 100% air loss the attach cannot complete.
func TestTotalLossBlocksAttach(t *testing.T) {
	_, bs, dev := testbed(t, 1.0, false, 2)
	dev.PowerOn()
	if dev.WaitRegistered(500*time.Millisecond, 50*time.Millisecond) {
		t.Fatal("registered over a fully lossy link?")
	}
	if bs.Dropped() == 0 {
		t.Fatal("BS dropped nothing")
	}
}

// The §8 shim carries the attach through heavy loss (§9.1's result:
// with the solution there is no detach as the drop rate increases).
func TestShimSurvivesLoss(t *testing.T) {
	core, _, dev := testbed(t, 0.3, true, 3)
	dev.PowerOn()
	if !dev.WaitRegistered(5*time.Second, 50*time.Millisecond) {
		t.Fatal("device never registered through 30% loss with the shim")
	}
	if dev.Detached() {
		t.Fatal("device detached despite the shim")
	}
	// End-to-end agreement.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if core.Stack().State(names.MMEEMM) == emm.MMERegistered {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("MME state = %s", core.Stack().State(names.MMEEMM))
}

// A TAU after attach succeeds over sockets and the device stays
// registered.
func TestTAUOverSockets(t *testing.T) {
	_, _, dev := testbed(t, 0, false, 4)
	dev.PowerOn()
	if !dev.WaitRegistered(3*time.Second, 50*time.Millisecond) {
		t.Fatal("attach failed")
	}
	dev.TAU()
	time.Sleep(200 * time.Millisecond)
	if !dev.Registered() || dev.Detached() {
		t.Fatal("TAU broke registration")
	}
}

// Without the shim, a lost Attach Complete followed by a TAU reproduces
// the S2 implicit detach over real sockets. The deterministic dropper
// seed is chosen so exactly the third uplink frame (the complete) is
// lost.
func TestS2OverSockets(t *testing.T) {
	// Find a seed whose dropper at 20% keeps frames 1,2 (attach
	// request passes, accept passes) and drops frame 3.
	seed := int64(-1)
	for s := int64(1); s < 200; s++ {
		d := newProbe(0.2, s)
		// Uplink frame order at the BS: attach request (keep), attach
		// accept (downlink, keep), attach complete (drop), TAU request
		// (keep), TAU reject (downlink, keep).
		if !d[0] && !d[1] && d[2] && !d[3] && !d[4] {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Skip("no suitable dropper seed found")
	}
	_, _, dev := testbed(t, 0.2, false, seed)
	dev.PowerOn()
	// The device believes it registered (accept arrived).
	if !dev.WaitRegistered(2*time.Second, 100*time.Millisecond) {
		t.Skip("loss pattern diverged (attach blocked)")
	}
	// TAU → MME in WAIT-COMPLETE → implicit detach.
	dev.TAU()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if dev.Detached() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Skip("loss pattern diverged (no detach observed)")
}

// newProbe samples the first five drop decisions of a dropper
// configuration.
func newProbe(rate float64, seed int64) [5]bool {
	d := probeDropper(rate, seed)
	var out [5]bool
	for i := range out {
		out[i] = d()
	}
	return out
}

func TestDeviceDoubleClose(t *testing.T) {
	core, err := NewCore("127.0.0.1:0", false)
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	bs, err := NewBS("127.0.0.1:0", core.Addr(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	dev, err := NewDevice(bs.Addr(), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err == nil {
		t.Fatal("double close accepted")
	}
}

func TestInjectEnvEvent(t *testing.T) {
	_, _, dev := testbed(t, 0, false, 5)
	dev.Inject(names.UEESM, types.Message{Kind: types.MsgActivateBearerRequest})
	time.Sleep(100 * time.Millisecond)
	// The request should have traveled to the MME ESM and come back
	// accepted.
	if dev.Stack().Global(names.GEPS) != 1 {
		t.Fatal("bearer activation over sockets failed")
	}
}

// §9.1's second experiment over real sockets: the MSC's location-update
// processing takes ~300 ms; a call dialed during the update is delayed
// by roughly that much on the standard device and connects immediately
// on a device with the parallel-update fix.
func TestS4CallDelayOverSockets(t *testing.T) {
	run := func(parallel bool) time.Duration {
		core, err := NewCore("127.0.0.1:0", false)
		if err != nil {
			t.Fatal(err)
		}
		defer core.Close()
		core.SetInboundDelay(types.MsgLocationUpdateRequest, 300*time.Millisecond)
		bs, err := NewBS("127.0.0.1:0", core.Addr(), 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer bs.Close()
		var dev *Device
		if parallel {
			dev, err = NewDeviceParallelMM(bs.Addr(), false)
		} else {
			dev, err = NewDevice(bs.Addr(), false)
		}
		if err != nil {
			t.Fatal(err)
		}
		defer dev.Close()

		// CS attach (itself a location update, so it pays the delay).
		dev.AttachCS()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) && !dev.RegisteredCS() {
			time.Sleep(10 * time.Millisecond)
		}
		if !dev.RegisteredCS() {
			t.Fatal("CS attach failed")
		}

		// Start an update, dial immediately, measure the connect time.
		dev.StartLocationUpdate()
		time.Sleep(20 * time.Millisecond)
		dev.Dial()
		d, ok := dev.WaitInCall(5 * time.Second)
		if !ok {
			t.Fatal("call never connected")
		}
		return d
	}

	serial := run(false)
	parallel := run(true)
	// Serial: the call waits out the ~300 ms update. Parallel: only
	// socket RTTs.
	if serial < 200*time.Millisecond {
		t.Fatalf("serial delay = %v, want ≥ the update processing time", serial)
	}
	if parallel >= serial/2 {
		t.Fatalf("parallel delay %v not clearly below serial %v", parallel, serial)
	}
}

// The full S1 story over real sockets: attach in 4G, fall to 3G (the
// device's EPS bearer becomes a PDP context), deactivate the PDP
// context, return to 4G — the MME rejects the TAU and the device is
// out of service, end to end over UDP/TCP.
func TestS1OverSockets(t *testing.T) {
	_, _, dev := testbed(t, 0, false, 11)

	dev.PowerOn()
	if !dev.WaitRegistered(3*time.Second, 50*time.Millisecond) {
		t.Fatal("4G attach failed")
	}

	dev.SwitchTo3G()
	if !dev.WaitCondition(3*time.Second, dev.HasPDP) {
		t.Fatal("context migration to PDP did not happen on the device")
	}

	dev.DeactivatePDP(types.CauseInsufficientResources)
	if !dev.WaitCondition(3*time.Second, func() bool { return !dev.HasPDP() }) {
		t.Fatal("PDP deactivation did not complete")
	}

	dev.ReturnTo4G()
	if !dev.WaitCondition(3*time.Second, dev.Detached) {
		t.Fatal("S1 not reproduced over sockets: device still in service")
	}
}

// The S3 story over real sockets: a CSFB call with concurrent data
// under the reselection policy strands the device in 3G; under the
// redirect policy it returns.
func TestS3OverSockets(t *testing.T) {
	run := func(switchOpt int) *Device {
		core, err := NewCore("127.0.0.1:0", false)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { core.Close() })
		bs, err := NewBS("127.0.0.1:0", core.Addr(), 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { bs.Close() })
		dev, err := NewDevice(bs.Addr(), false)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dev.Close() })

		dev.SetSwitchOption(switchOpt)
		dev.PowerOn()
		if !dev.WaitRegistered(3*time.Second, 50*time.Millisecond) {
			t.Fatal("4G attach failed")
		}
		dev.DataOn()
		dev.DialCall()
		if !dev.WaitCondition(5*time.Second, dev.InCall) {
			t.Fatal("CSFB call never connected")
		}
		if dev.ServingSystem() != 1 {
			t.Fatalf("call not in 3G (sys=%d)", dev.ServingSystem())
		}
		dev.HangUp()
		dev.WaitCondition(2*time.Second, func() bool { return !dev.InCall() })
		return dev
	}

	// names.SwitchReselect = 2: stuck in 3G with data ongoing.
	stuck := run(2)
	if stuck.ServingSystem() != 1 || !stuck.StuckReturnPending() {
		t.Fatalf("reselection policy: sys=%d stuck=%v, want stuck in 3G",
			stuck.ServingSystem(), stuck.StuckReturnPending())
	}

	// names.SwitchRedirect = 0: returns to 4G right away.
	back := run(0)
	if !back.WaitCondition(2*time.Second, func() bool { return back.ServingSystem() == 2 }) {
		t.Fatalf("redirect policy: sys=%d, want back in 4G", back.ServingSystem())
	}
}
