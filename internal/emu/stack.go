// Package emu is the §9 prototype of the control plane over real
// sockets: the user device, base station and core network run as
// separate endpoints, with the unreliable RRC air interface emulated
// over UDP and the reliable BS↔core relay over TCP ("Since the
// transmission at the RRC layer is not reliable, we use UDP to emulate
// it. We use TCP to forward (relay) RRC payloads between the base
// station and the core network."). All functions are implemented in the
// application layer, as in the paper's prototype.
//
// The §8 reliable-transfer shim (internal/fixes) can be enabled
// end-to-end between the device and the core, running on wall-clock
// retransmission timers.
package emu

import (
	"fmt"
	"sync"
	"time"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/trace"
	"cnetverifier/internal/types"
)

// liveStack hosts protocol machines behind one mutex, bridging them to
// a socket transport. It is the wall-clock, concurrent counterpart of
// netemu.World's nodes.
type liveStack struct {
	mu        sync.Mutex
	machines  map[string]*fsm.Machine
	outputTo  map[string][]string
	globals   map[string]int
	send      func(m types.Message) // toward the remote side
	collector *trace.Collector
	started   time.Time
	// queue and draining implement run-to-completion FIFO delivery of
	// local (cross-layer) messages, matching the model checker's and
	// virtual-time emulator's ordering semantics: a machine's outputs
	// are processed after all messages already pending, not recursively.
	queue    []pendingDelivery
	draining bool
}

type pendingDelivery struct {
	proc string
	msg  types.Message
}

func newLiveStack(send func(types.Message)) *liveStack {
	return &liveStack{
		machines:  make(map[string]*fsm.Machine),
		outputTo:  make(map[string][]string),
		globals:   make(map[string]int),
		send:      send,
		collector: trace.NewCollector(),
		started:   time.Now(),
	}
}

func (s *liveStack) add(proc string, spec *fsm.Spec, outputTo ...string) {
	s.machines[proc] = fsm.New(spec)
	s.outputTo[proc] = outputTo
}

// Deliver steps the destination machine under the stack lock.
func (s *liveStack) Deliver(proc string, m types.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deliverLocked(proc, m)
}

// deliverLocked enqueues the message and, unless a drain is already in
// progress higher up the stack, drains the queue FIFO.
func (s *liveStack) deliverLocked(proc string, m types.Message) {
	s.queue = append(s.queue, pendingDelivery{proc: proc, msg: m})
	if s.draining {
		return
	}
	s.draining = true
	defer func() { s.draining = false }()
	for len(s.queue) > 0 {
		d := s.queue[0]
		s.queue = s.queue[1:]
		s.stepLocked(d.proc, d.msg)
	}
}

func (s *liveStack) stepLocked(proc string, m types.Message) {
	mach, ok := s.machines[proc]
	if !ok {
		return
	}
	ctx := &liveCtx{s: s, proc: proc}
	tr, fired := mach.Step(ctx, fsm.EvMsg(m))
	at := time.Since(s.started)
	sys := types.System(s.globals["g.sys"])
	if fired {
		s.collector.Addf(at, trace.TypeSignal, sys, mach.Spec().Name, "%s -> %s [%s]", m, mach.State(), tr.Name)
	} else {
		s.collector.Addf(at, trace.TypeInfo, sys, mach.Spec().Name, "%s discarded in %s", m, mach.State())
	}
}

// State returns a machine's control state.
func (s *liveStack) State(proc string) fsm.State {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.machines[proc]; ok {
		return m.State()
	}
	return ""
}

// Global reads a shared variable.
func (s *liveStack) Global(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.globals[name]
}

// SetGlobal writes a shared variable.
func (s *liveStack) SetGlobal(name string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.globals[name] = v
}

// liveCtx implements fsm.Ctx under the stack lock.
type liveCtx struct {
	s    *liveStack
	proc string
}

func (c *liveCtx) Get(name string) int    { return c.s.globals[name] }
func (c *liveCtx) Set(name string, v int) { c.s.globals[name] = v }

// GetI/SetI are only resolved by the machine wrapper; the live stack
// context never receives indexed calls.
func (c *liveCtx) GetI(int32) int32  { return 0 }
func (c *liveCtx) SetI(int32, int32) {}

func (c *liveCtx) Send(to string, m types.Message) {
	m.From = c.proc
	m.To = to
	if _, local := c.s.machines[to]; local {
		c.s.deliverLocked(to, m)
		return
	}
	// Remote: hand to the transport outside the protocol layer. The
	// send callback must not re-enter the stack.
	c.s.send(m)
}

func (c *liveCtx) Output(m types.Message) {
	m.From = c.proc
	for _, dst := range c.s.outputTo[c.proc] {
		mm := m
		mm.To = dst
		c.s.deliverLocked(dst, mm)
	}
}

func (c *liveCtx) Trace(format string, args ...any) {
	sys := types.System(c.s.globals["g.sys"])
	mach := c.s.machines[c.proc]
	c.s.collector.Addf(time.Since(c.s.started), trace.TypeInfo, sys, mach.Spec().Name, format, args...)
}

// errClosed is returned by endpoints used after Close.
var errClosed = fmt.Errorf("emu: endpoint closed")
