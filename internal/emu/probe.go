package emu

import "cnetverifier/internal/radio"

// probeDropper returns a closure replaying the drop decisions a BS
// dropper with this configuration would make, letting tests pick seeds
// with a known loss pattern.
func probeDropper(rate float64, seed int64) func() bool {
	d := radio.NewDropper(rate, seed)
	return d.Drop
}
