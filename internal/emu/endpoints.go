package emu

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"cnetverifier/internal/fixes"
	"cnetverifier/internal/names"
	"cnetverifier/internal/nas"
	"cnetverifier/internal/protocols/cm"
	"cnetverifier/internal/protocols/emm"
	"cnetverifier/internal/protocols/esm"
	"cnetverifier/internal/protocols/gmm"
	"cnetverifier/internal/protocols/mm"
	"cnetverifier/internal/protocols/rrc3g"
	"cnetverifier/internal/protocols/rrc4g"
	"cnetverifier/internal/protocols/sm"
	"cnetverifier/internal/radio"
	"cnetverifier/internal/trace"
	"cnetverifier/internal/types"
)

// lockedShim makes a fixes.ReliableEndpoint safe for concurrent use by
// socket readers and retransmission timers. It doubles as the shim's
// fixes.Scheduler so retransmission callbacks also run under the lock.
type lockedShim struct {
	mu sync.Mutex
	e  *fixes.ReliableEndpoint
}

func (l *lockedShim) Send(m types.Message) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.e.Send(m)
}

func (l *lockedShim) OnReceive(m types.Message) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.e.OnReceive(m)
}

// After implements fixes.Scheduler with wall-clock timers whose
// callbacks hold the shim lock.
func (l *lockedShim) After(d time.Duration, fn func()) {
	time.AfterFunc(d, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		fn()
	})
}

// Core is the core-network endpoint (MME) listening for the BS's TCP
// relay connection.
type Core struct {
	ln    net.Listener
	stack *liveStack
	shim  *lockedShim
	// deliveries decouples shim-up deliveries from the shim lock so the
	// stack lock and shim lock are only ever taken in one order
	// (stack → shim).
	deliveries chan types.Message

	mu     sync.Mutex
	conn   net.Conn
	closed bool
	// inboundDelay emulates per-procedure server-side processing time:
	// matched inbound frames are delivered to the stack after the
	// configured delay (the §9.1 S4 experiment configures the MSC's
	// location-update processing this way).
	inboundDelay map[types.MsgKind]time.Duration
	// wgReaders tracks socket loops; wgDispatch tracks the delivery
	// dispatcher. Close drains readers before closing deliveries.
	wgReaders  sync.WaitGroup
	wgDispatch sync.WaitGroup
}

// NewCore starts a core network on addr ("127.0.0.1:0" for tests).
// With useShim the §8 reliable layer terminates here.
func NewCore(addr string, useShim bool) (*Core, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Core{ln: ln, inboundDelay: make(map[types.MsgKind]time.Duration)}
	c.stack = newLiveStack(func(m types.Message) { c.transmit(m) })
	c.stack.add(names.MMEEMM, emm.MMESpec(emm.MMEOptions{}), names.MMEESM)
	c.stack.add(names.MMEESM, esm.MMESpec(esm.MMEOptions{}))
	c.stack.add(names.MSCMM, mm.MSCSpec(mm.MSCOptions{}))
	c.stack.add(names.MSCCM, cm.MSCSpec(cm.MSCOptions{}))
	c.stack.add(names.SGSNGMM, gmm.SGSNSpec(gmm.SGSNOptions{}))
	c.stack.add(names.SGSNSM, sm.SGSNSpec(sm.SGSNOptions{}))
	if useShim {
		c.deliveries = make(chan types.Message, 1024)
		c.shim = &lockedShim{}
		c.shim.e = fixes.NewReliableEndpoint("core", c.shim, fixes.ReliableConfig{RTO: 100 * time.Millisecond},
			func(m types.Message) { c.writeFrame(m) },
			func(m types.Message) { c.deliveries <- m })
		c.wgDispatch.Add(1)
		go func() {
			defer c.wgDispatch.Done()
			for m := range c.deliveries {
				c.dispatch(m)
			}
		}()
	}
	c.wgReaders.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the core's TCP address.
func (c *Core) Addr() string { return c.ln.Addr().String() }

// SetInboundDelay configures the server-side processing time for
// inbound frames of the kind (0 clears it). Safe before traffic starts.
func (c *Core) SetInboundDelay(kind types.MsgKind, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d == 0 {
		delete(c.inboundDelay, kind)
		return
	}
	c.inboundDelay[kind] = d
}

// dispatch delivers an inbound frame to the stack, honoring any
// configured processing delay.
func (c *Core) dispatch(m types.Message) {
	c.mu.Lock()
	d := c.inboundDelay[m.Kind]
	c.mu.Unlock()
	if d > 0 {
		time.AfterFunc(d, func() { c.stack.Deliver(m.To, m) })
		return
	}
	c.stack.Deliver(m.To, m)
}

// Stack exposes the core's protocol stack (tests).
func (c *Core) Stack() *liveStack { return c.stack }

// transmit sends an upper-layer message toward the device.
func (c *Core) transmit(m types.Message) {
	if c.shim != nil {
		c.shim.Send(m)
		return
	}
	c.writeFrame(m)
}

func (c *Core) writeFrame(m types.Message) {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn == nil {
		return
	}
	_ = nas.WriteFrame(conn, m)
}

func (c *Core) acceptLoop() {
	defer c.wgReaders.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.mu.Lock()
		c.conn = conn
		c.mu.Unlock()
		c.wgReaders.Add(1)
		go c.readLoop(conn)
	}
}

func (c *Core) readLoop(conn net.Conn) {
	defer c.wgReaders.Done()
	for {
		m, err := nas.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				c.stack.collector.Addf(time.Since(c.stack.started), trace.TypeError, types.Sys4G, "core", "read: %v", err)
			}
			return
		}
		if c.shim != nil {
			c.shim.OnReceive(m)
			continue
		}
		c.dispatch(m)
	}
}

// Close shuts the core down.
func (c *Core) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errClosed
	}
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	err := c.ln.Close()
	if conn != nil {
		conn.Close()
	}
	c.wgReaders.Wait()
	if c.deliveries != nil {
		close(c.deliveries)
	}
	c.wgDispatch.Wait()
	return err
}

// BS is the base-station relay: UDP toward the device (the emulated,
// unreliable RRC air interface), TCP toward the core. It drops UDP
// frames at the configured rate in both directions (§9.1's EMM-signal
// dropping lives here: "the RRC at the base station drops the message
// according to a given drop rate").
type BS struct {
	udp  *net.UDPConn
	tcp  net.Conn
	drop *radio.Dropper

	mu         sync.Mutex
	deviceAddr *net.UDPAddr
	wg         sync.WaitGroup
	relayed    int
	dropped    int
}

// NewBS starts a base station listening on udpAddr and relaying to the
// core at coreAddr, dropping the given fraction of air-interface frames
// (seeded).
func NewBS(udpAddr, coreAddr string, dropRate float64, seed int64) (*BS, error) {
	ua, err := net.ResolveUDPAddr("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	udp, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	tcp, err := net.Dial("tcp", coreAddr)
	if err != nil {
		udp.Close()
		return nil, err
	}
	b := &BS{udp: udp, tcp: tcp, drop: radio.NewDropper(dropRate, seed)}
	b.wg.Add(2)
	go b.uplinkLoop()
	go b.downlinkLoop()
	return b, nil
}

// Addr returns the BS's UDP address the device should dial.
func (b *BS) Addr() string { return b.udp.LocalAddr().String() }

// Relayed returns the count of frames relayed through the air leg.
func (b *BS) Relayed() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.relayed
}

// Dropped returns the count of frames lost on the air leg.
func (b *BS) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// uplinkLoop relays device→core.
func (b *BS) uplinkLoop() {
	defer b.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, addr, err := b.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		b.mu.Lock()
		b.deviceAddr = addr
		drop := b.drop.Drop()
		if drop {
			b.dropped++
		} else {
			b.relayed++
		}
		b.mu.Unlock()
		if drop {
			continue
		}
		m, err := nas.Unmarshal(buf[:n])
		if err != nil {
			continue
		}
		_ = nas.WriteFrame(b.tcp, m)
	}
}

// downlinkLoop relays core→device.
func (b *BS) downlinkLoop() {
	defer b.wg.Done()
	for {
		m, err := nas.ReadFrame(b.tcp)
		if err != nil {
			return
		}
		b.mu.Lock()
		addr := b.deviceAddr
		drop := b.drop.Drop()
		if drop {
			b.dropped++
		} else {
			b.relayed++
		}
		b.mu.Unlock()
		if drop || addr == nil {
			continue
		}
		frame, err := nas.Marshal(m)
		if err != nil {
			continue
		}
		_, _ = b.udp.WriteToUDP(frame, addr)
	}
}

// Close shuts the relay down.
func (b *BS) Close() error {
	err1 := b.udp.Close()
	err2 := b.tcp.Close()
	b.wg.Wait()
	if err1 != nil {
		return err1
	}
	return err2
}

// Device is the programmable phone endpoint speaking NAS over UDP
// toward the BS.
type Device struct {
	conn       *net.UDPConn
	stack      *liveStack
	shim       *lockedShim
	deliveries chan types.Message

	mu         sync.Mutex
	closed     bool
	wgReaders  sync.WaitGroup
	wgDispatch sync.WaitGroup
}

// NewDevice starts a device connected to the BS at bsAddr. With
// useShim the §8 reliable layer terminates here.
func NewDevice(bsAddr string, useShim bool) (*Device, error) {
	return newDevice(bsAddr, useShim, false)
}

// NewDeviceParallelMM is NewDevice with the §8 parallel-update fix in
// the device MM (the S4 solution under test in §9.1).
func NewDeviceParallelMM(bsAddr string, useShim bool) (*Device, error) {
	return newDevice(bsAddr, useShim, true)
}

func newDevice(bsAddr string, useShim, parallelMM bool) (*Device, error) {
	ra, err := net.ResolveUDPAddr("udp", bsAddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, ra)
	if err != nil {
		return nil, err
	}
	d := &Device{conn: conn}
	d.stack = newLiveStack(func(m types.Message) { d.transmit(m) })
	d.stack.add(names.UEEMM, emm.DeviceSpec(emm.DeviceOptions{}), names.UEESM)
	d.stack.add(names.UEESM, esm.DeviceSpec(esm.DeviceOptions{}))
	d.stack.add(names.UEMM, mm.DeviceSpec(mm.DeviceOptions{FixParallelUpdate: parallelMM}), names.UECM)
	d.stack.add(names.UECM, cm.DeviceSpec(cm.DeviceOptions{}), names.UEMM, names.UERRC3G, names.UERRC4G)
	d.stack.add(names.UEGMM, gmm.DeviceSpec(gmm.DeviceOptions{}))
	d.stack.add(names.UESM, sm.DeviceSpec(sm.DeviceOptions{}))
	d.stack.add(names.UERRC3G, rrc3g.DeviceSpec(rrc3g.DeviceOptions{}), names.UECM)
	d.stack.add(names.UERRC4G, rrc4g.DeviceSpec(rrc4g.DeviceOptions{}), names.UERRC3G, names.UEMM, names.UEGMM)
	d.stack.SetGlobal("g.modulation", rrc3g.Mod64QAM)
	if useShim {
		d.deliveries = make(chan types.Message, 1024)
		d.shim = &lockedShim{}
		d.shim.e = fixes.NewReliableEndpoint("device", d.shim, fixes.ReliableConfig{RTO: 100 * time.Millisecond},
			func(m types.Message) { d.writeFrame(m) },
			func(m types.Message) { d.deliveries <- m })
		d.wgDispatch.Add(1)
		go func() {
			defer d.wgDispatch.Done()
			for m := range d.deliveries {
				d.stack.Deliver(m.To, m)
			}
		}()
	}
	d.wgReaders.Add(1)
	go d.readLoop()
	return d, nil
}

// Stack exposes the device's protocol stack (tests and tools).
func (d *Device) Stack() *liveStack { return d.stack }

func (d *Device) transmit(m types.Message) {
	if d.shim != nil {
		d.shim.Send(m)
		return
	}
	d.writeFrame(m)
}

func (d *Device) writeFrame(m types.Message) {
	frame, err := nas.Marshal(m)
	if err != nil {
		return
	}
	_, _ = d.conn.Write(frame)
}

func (d *Device) readLoop() {
	defer d.wgReaders.Done()
	buf := make([]byte, 64<<10)
	for {
		n, err := d.conn.Read(buf)
		if err != nil {
			return
		}
		m, err := nas.Unmarshal(buf[:n])
		if err != nil {
			continue
		}
		if d.shim != nil {
			d.shim.OnReceive(m)
			continue
		}
		d.stack.Deliver(m.To, m)
	}
}

// Inject delivers a local environment event to a device process.
func (d *Device) Inject(proc string, m types.Message) {
	d.stack.Deliver(proc, m)
}

// PowerOn starts the 4G attach.
func (d *Device) PowerOn() {
	d.Inject(names.UEEMM, types.Message{Kind: types.MsgPowerOn})
}

// TAU triggers a tracking-area update (periodic timer).
func (d *Device) TAU() {
	d.Inject(names.UEEMM, types.Message{Kind: types.MsgPeriodicTimer})
}

// Registered reports whether the device-side EMM is registered.
func (d *Device) Registered() bool {
	return d.stack.State(names.UEEMM) == emm.UERegistered
}

// Detached reports the out-of-service symptom (network detach).
func (d *Device) Detached() bool {
	return d.stack.Global(names.GDetachedByNet) == 1
}

// WaitRegistered polls until the device registers or the timeout
// elapses, retransmitting NAS requests on the poll interval (the §5.2.2
// observation: "the user device keeps retransmitting the attach
// requests").
func (d *Device) WaitRegistered(timeout, retransmitEvery time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if d.Registered() {
			return true
		}
		time.Sleep(retransmitEvery)
		if !d.Registered() && d.shim == nil {
			// NAS-level retransmission (only without the shim, which
			// retransmits at its own layer).
			d.TAU()
		}
	}
	return d.Registered()
}

// Close shuts the device down.
func (d *Device) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errClosed
	}
	d.closed = true
	d.mu.Unlock()
	err := d.conn.Close()
	d.wgReaders.Wait()
	if d.deliveries != nil {
		close(d.deliveries)
	}
	d.wgDispatch.Wait()
	return err
}

// AttachCS performs the 3G CS attach (MM location update).
func (d *Device) AttachCS() {
	d.stack.SetGlobal("g.sys", 1) // types.Sys3G
	d.Inject(names.UEMM, types.Message{Kind: types.MsgPowerOn})
}

// RegisteredCS reports whether the device-side MM is registered.
func (d *Device) RegisteredCS() bool {
	return d.stack.State(names.UEMM) == mm.UERegistered
}

// StartLocationUpdate triggers an MM location-area update.
func (d *Device) StartLocationUpdate() {
	d.Inject(names.UEMM, types.Message{Kind: types.MsgUserMove})
}

// Dial starts an outgoing 3G call through CM→MM→MSC.
func (d *Device) Dial() {
	d.Inject(names.UECM, types.Message{Kind: types.MsgUserDialCall})
}

// InCall reports whether a call is active.
func (d *Device) InCall() bool {
	return d.stack.Global("g.callActive") == 1
}

// WaitInCall polls until the call connects or the timeout elapses,
// returning the time it took.
func (d *Device) WaitInCall(timeout time.Duration) (time.Duration, bool) {
	start := time.Now()
	deadline := start.Add(timeout)
	for time.Now().Before(deadline) {
		if d.InCall() {
			return time.Since(start), true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return time.Since(start), d.InCall()
}

// SwitchTo3G performs the PS side of a 4G→3G migration: GMM registers
// via a routing-area update and the session context migrates.
func (d *Device) SwitchTo3G() {
	d.Inject(names.UEGMM, types.Message{Kind: types.MsgInterSystemSwitchCommand})
}

// DeactivatePDP deactivates the device's PDP context with a cause.
func (d *Device) DeactivatePDP(cause types.Cause) {
	d.Inject(names.UESM, types.Message{Kind: types.MsgDeactivatePDPRequest, Cause: cause})
}

// ReturnTo4G reselects back to 4G (EMM runs the tracking-area update).
func (d *Device) ReturnTo4G() {
	d.Inject(names.UEEMM, types.Message{Kind: types.MsgInterSystemCellReselect})
}

// HasPDP reports the device-side PDP context state.
func (d *Device) HasPDP() bool { return d.stack.Global("g.pdp") == 1 }

// WaitCondition polls until cond holds or the timeout elapses.
func (d *Device) WaitCondition(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

// SetSwitchOption installs the carrier's inter-system switching option
// on the device (names.SwitchRedirect / SwitchReselect).
func (d *Device) SetSwitchOption(opt int) {
	d.stack.SetGlobal("g.switchOpt", opt)
}

// DataOn starts a high-rate data session on the serving system.
func (d *Device) DataOn() {
	if d.stack.Global("g.sys") == 2 {
		d.Inject(names.UERRC4G, types.Message{Kind: types.MsgUserDataOn})
		return
	}
	d.Inject(names.UERRC3G, types.Message{Kind: types.MsgUserDataOn})
}

// DialCall places an outgoing call (CSFB when camped on 4G).
func (d *Device) DialCall() {
	d.Inject(names.UECM, types.Message{Kind: types.MsgUserDialCall})
}

// HangUp ends the active call.
func (d *Device) HangUp() {
	d.Inject(names.UECM, types.Message{Kind: types.MsgUserHangUp})
}

// ServingSystem returns the current RAT (1 = 3G, 2 = 4G).
func (d *Device) ServingSystem() int { return d.stack.Global("g.sys") }

// StuckReturnPending reports the S3 symptom.
func (d *Device) StuckReturnPending() bool {
	return d.stack.Global("g.wantReturn4g") == 1
}
