// Package nas provides the binary wire codec for the §9 prototype: it
// marshals control-plane messages (internal/types.Message) into
// length-prefixed frames carried over UDP (the emulated RRC air
// interface, which is unreliable) and TCP (the BS↔core relay, which is
// reliable), mirroring the prototype's transport split ("we use UDP to
// emulate it ... TCP to forward (relay) RRC payloads").
//
// Frame layout (big-endian):
//
//	0      2      4       6       8        12      13      14      15
//	+------+------+-------+-------+--------+-------+-------+-------+
//	| len  | kind | cause | resvd |  seq   | sys   | dom   | proto |
//	+------+------+-------+-------+--------+-------+-------+-------+
//	| fromLen(1) | from... | toLen(1) | to... |
//
// len counts the bytes after the length field itself.
package nas

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cnetverifier/internal/types"
)

// Frame errors.
var (
	ErrShortFrame = errors.New("nas: short frame")
	ErrBadLength  = errors.New("nas: bad length field")
)

// MaxNameLen bounds the From/To entity names on the wire.
const MaxNameLen = 255

// fixedHeader is the byte size of the fixed message fields after the
// length prefix.
const fixedHeader = 2 + 2 + 2 + 4 + 1 + 1 + 1 // kind, cause, reserved, seq, sys, dom, proto

// Marshal encodes a message into a frame (including the 2-byte length
// prefix).
func Marshal(m types.Message) ([]byte, error) {
	if len(m.From) > MaxNameLen || len(m.To) > MaxNameLen {
		return nil, fmt.Errorf("nas: entity name too long (%d/%d)", len(m.From), len(m.To))
	}
	body := fixedHeader + 1 + len(m.From) + 1 + len(m.To)
	buf := make([]byte, 2+body)
	binary.BigEndian.PutUint16(buf[0:2], uint16(body))
	binary.BigEndian.PutUint16(buf[2:4], uint16(m.Kind))
	binary.BigEndian.PutUint16(buf[4:6], uint16(m.Cause))
	// buf[6:8] reserved.
	binary.BigEndian.PutUint32(buf[8:12], m.Seq)
	buf[12] = byte(m.System)
	buf[13] = byte(m.Domain)
	buf[14] = byte(m.Proto)
	p := 15
	buf[p] = byte(len(m.From))
	p++
	copy(buf[p:], m.From)
	p += len(m.From)
	buf[p] = byte(len(m.To))
	p++
	copy(buf[p:], m.To)
	return buf, nil
}

// Unmarshal decodes one frame. The input must contain exactly one
// frame (datagram semantics); use ReadFrame for streams.
func Unmarshal(buf []byte) (types.Message, error) {
	var m types.Message
	if len(buf) < 2 {
		return m, ErrShortFrame
	}
	body := int(binary.BigEndian.Uint16(buf[0:2]))
	if body < fixedHeader+2 || 2+body > len(buf) {
		return m, ErrBadLength
	}
	frame := buf[2 : 2+body]
	m.Kind = types.MsgKind(binary.BigEndian.Uint16(frame[0:2]))
	m.Cause = types.Cause(binary.BigEndian.Uint16(frame[2:4]))
	m.Seq = binary.BigEndian.Uint32(frame[6:10])
	m.System = types.System(frame[10])
	m.Domain = types.Domain(frame[11])
	m.Proto = types.Protocol(frame[12])
	p := 13
	if p >= len(frame) {
		return m, ErrShortFrame
	}
	fl := int(frame[p])
	p++
	if p+fl > len(frame) {
		return m, ErrShortFrame
	}
	m.From = string(frame[p : p+fl])
	p += fl
	if p >= len(frame) {
		return m, ErrShortFrame
	}
	tl := int(frame[p])
	p++
	if p+tl > len(frame) {
		return m, ErrShortFrame
	}
	m.To = string(frame[p : p+tl])
	return m, nil
}

// WriteFrame writes one frame to a stream (TCP relay).
func WriteFrame(w io.Writer, m types.Message) error {
	buf, err := Marshal(m)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame from a stream (TCP relay).
func ReadFrame(r io.Reader) (types.Message, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return types.Message{}, err
	}
	body := int(binary.BigEndian.Uint16(lenBuf[:]))
	if body < fixedHeader+2 {
		return types.Message{}, ErrBadLength
	}
	frame := make([]byte, 2+body)
	copy(frame, lenBuf[:])
	if _, err := io.ReadFull(r, frame[2:]); err != nil {
		return types.Message{}, err
	}
	return Unmarshal(frame)
}
