package nas

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"cnetverifier/internal/types"
)

func sample() types.Message {
	return types.Message{
		Kind:   types.MsgAttachRequest,
		Cause:  types.CauseNone,
		Seq:    42,
		System: types.Sys4G,
		Domain: types.DomainPS,
		Proto:  types.ProtoEMM,
		From:   "ue.emm",
		To:     "mme.emm",
	}
}

func TestRoundTrip(t *testing.T) {
	m := sample()
	buf, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Fatalf("round trip: %+v != %+v", back, m)
	}
}

func TestRoundTripEmptyNames(t *testing.T) {
	m := types.Message{Kind: types.MsgPowerOn}
	buf, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Fatalf("round trip: %+v != %+v", back, m)
	}
}

func TestMarshalNameTooLong(t *testing.T) {
	m := sample()
	m.From = strings.Repeat("x", 300)
	if _, err := Marshal(m); err == nil {
		t.Fatal("oversized name accepted")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good, _ := Marshal(sample())
	cases := [][]byte{
		nil,
		{0x00},
		good[:4],                                // truncated body
		{0x00, 0x01, 0xff},                      // body length below fixed header
		append([]byte{0xff, 0xff}, good[2:]...), // length exceeds buffer
	}
	for i, buf := range cases {
		if _, err := Unmarshal(buf); err == nil {
			t.Errorf("case %d: bad frame accepted", i)
		}
	}
}

func TestUnmarshalTruncatedNames(t *testing.T) {
	good, _ := Marshal(sample())
	// Corrupt the from-length to exceed the frame.
	bad := append([]byte(nil), good...)
	bad[15] = 0xff
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("overlong from-length accepted")
	}
}

func TestStreamFraming(t *testing.T) {
	var buf bytes.Buffer
	msgs := []types.Message{
		sample(),
		{Kind: types.MsgAttachAccept, From: "mme.emm", To: "ue.emm"},
		{Kind: types.MsgAttachComplete, Seq: 7},
	}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("frame %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReadFrameTruncatedStream(t *testing.T) {
	full, _ := Marshal(sample())
	r := bytes.NewReader(full[:len(full)-3])
	if _, err := ReadFrame(r); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Bad length prefix.
	if _, err := ReadFrame(bytes.NewReader([]byte{0x00, 0x01, 0x00})); err == nil {
		t.Fatal("undersized length accepted")
	}
}

func TestWriteFrameError(t *testing.T) {
	m := sample()
	m.To = strings.Repeat("y", 256)
	if err := WriteFrame(io.Discard, m); err == nil {
		t.Fatal("oversized frame written")
	}
}

// Property: Marshal/Unmarshal round-trips arbitrary bounded messages.
func TestQuickRoundTrip(t *testing.T) {
	f := func(kind uint16, cause uint16, seq uint32, sys, dom, proto uint8, from, to string) bool {
		if len(from) > MaxNameLen {
			from = from[:MaxNameLen]
		}
		if len(to) > MaxNameLen {
			to = to[:MaxNameLen]
		}
		m := types.Message{
			Kind:   types.MsgKind(kind),
			Cause:  types.Cause(cause),
			Seq:    seq,
			System: types.System(sys),
			Domain: types.Domain(dom),
			Proto:  types.Protocol(proto),
			From:   from,
			To:     to,
		}
		buf, err := Marshal(m)
		if err != nil {
			return false
		}
		back, err := Unmarshal(buf)
		return err == nil && back == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
