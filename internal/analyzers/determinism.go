package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Determinism flags nondeterminism hazards in the checker's own
// implementation. The screening engine promises bit-identical results
// for identical inputs (DESIGN.md, determinism contract): parallel
// runs must report the same violation sets as sequential runs, goldens
// must not flap, BENCH numbers must be comparable across runs. Three
// source patterns quietly break that promise:
//
//   - ranging over a map and feeding the iteration order into ordered
//     output (append to a slice, printing) without sorting afterwards —
//     Go randomizes map iteration per run;
//   - time.Now() — wall-clock input makes replay diverge;
//   - the package-level math/rand functions — they draw from the
//     globally seeded source, so results depend on whatever else ran.
//     Explicitly seeded generators (rand.New(rand.NewSource(seed)))
//     are the sanctioned idiom and are not flagged.
//
// The map-iteration check is type-driven when type information is
// available and silent otherwise (a syntactic guess would drown the
// report in false positives); a loop is exonerated when the enclosing
// function also calls sort.* or slices.Sort*, the usual
// collect-then-sort shape.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "report nondeterminism hazards: map iteration feeding ordered output, " +
		"time.Now, and globally-seeded math/rand use",
	Run: runDeterminism,
}

// seededRandFuncs are the math/rand names that construct or seed an
// explicit generator; calling them is how deterministic code is
// supposed to use the package.
var seededRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		// Resolve the local spellings of the packages the checks care
		// about, so aliased imports are still caught and shadowed
		// identifiers are not.
		timeName := importName(f, "time")
		randName := importName(f, "math/rand")
		if randName == "" {
			randName = importName(f, "math/rand/v2")
		}

		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkFunc(pass, fn, timeName, randName)
			}
		}
	}
	return nil
}

func checkFunc(pass *Pass, fn *ast.FuncDecl, timeName, randName string) {
	sorts := callsSort(fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n, timeName, randName)
		case *ast.RangeStmt:
			checkMapRange(pass, n, sorts)
		}
		return true
	})
}

// checkCall flags time.Now and package-level math/rand calls.
func checkCall(pass *Pass, call *ast.CallExpr, timeName, randName string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	// Only treat the identifier as a package name when it resolves to
	// one (or when no resolution is available and it matches the
	// file's import spelling). A local variable named rand with an
	// Intn method must not be flagged.
	if !identIsPackage(pass, recv) {
		return
	}
	switch {
	case timeName != "" && recv.Name == timeName && sel.Sel.Name == "Now":
		pass.Report(Diagnostic{
			Pos:     call.Pos(),
			Message: "time.Now in deterministic-replay code: thread an explicit clock instead",
		})
	case randName != "" && recv.Name == randName && !seededRandFuncs[sel.Sel.Name]:
		pass.Report(Diagnostic{
			Pos: call.Pos(),
			Message: fmt.Sprintf("globally-seeded rand.%s: use rand.New(rand.NewSource(seed)) so runs are reproducible",
				sel.Sel.Name),
		})
	}
}

// identIsPackage reports whether the identifier denotes an imported
// package. With type info it asks the Uses map; without, it falls
// back to trusting the import-spelling match already performed by the
// caller.
func identIsPackage(pass *Pass, id *ast.Ident) bool {
	if pass.TypesInfo == nil || pass.TypesInfo.Uses == nil {
		return true
	}
	obj, ok := pass.TypesInfo.Uses[id]
	if !ok {
		// Unresolved (partial typecheck): keep the syntactic verdict.
		return true
	}
	_, isPkg := obj.(*types.PkgName)
	return isPkg
}

// checkMapRange flags a range over a map whose body feeds iteration
// order into ordered output, unless the enclosing function sorts.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, fnSorts bool) {
	if fnSorts || !isMapType(pass, rs.X) {
		return
	}
	if sink := orderedSink(rs.Body); sink != "" {
		pass.Report(Diagnostic{
			Pos: rs.Pos(),
			Message: fmt.Sprintf("map iteration order feeds %s: sort the keys first (or sort the result) — "+
				"Go randomizes map order per run", sink),
		})
	}
}

// isMapType reports whether the expression is statically a map. It
// requires type information: without it the check stays silent rather
// than guess.
func isMapType(pass *Pass, x ast.Expr) bool {
	if pass.TypesInfo == nil {
		return false
	}
	tv, ok := pass.TypesInfo.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// orderedSink scans a range body for order-sensitive consumers of the
// iteration: appending to a slice, or printing. It returns a short
// description of the first sink found, or "".
func orderedSink(body *ast.BlockStmt) string {
	var sink string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" {
				sink = "an append"
			}
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok && id.Name == "fmt" && strings.Contains(fun.Sel.Name, "rint") {
				sink = "fmt." + fun.Sel.Name
			}
		}
		return true
	})
	return sink
}

// callsSort reports whether the function calls sort.* or slices.Sort*
// anywhere — the collect-then-sort idiom that makes map iteration
// order irrelevant.
func callsSort(fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if id.Name == "sort" || (id.Name == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort")) {
				found = true
			}
		}
		return true
	})
	return found
}

// importName returns the file-local name of the import with the given
// path: the alias if one was declared, the base element otherwise, ""
// when the file does not import it.
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		// Default package name: the last path element, skipping a
		// major-version suffix (math/rand/v2 is package rand).
		if i := strings.LastIndex(p, "/"); i >= 0 && len(p)-i >= 3 && p[i+1] == 'v' && p[i+2] >= '2' && p[i+2] <= '9' {
			p = p[:i]
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p
	}
	return ""
}
