// Package analyzers hosts CNetVerifier's go/analysis-style static
// checkers for the repo's own Go source, built on the standard library
// alone (the environment bakes in no golang.org/x/tools, so the
// Analyzer/Pass/Diagnostic shapes are declared here and cmd/detlint
// speaks the `go vet -vettool` unitchecker protocol by hand).
//
// The shapes deliberately mirror golang.org/x/tools/go/analysis so the
// analyzers port over mechanically if the dependency ever becomes
// available: an Analyzer bundles a name, doc string and Run function; a
// Pass hands Run one typechecked package and a Report sink; Run reports
// Diagnostics at token positions.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the checker's command-line name (lowercase, no spaces).
	Name string
	// Doc is the one-paragraph description printed by -help.
	Doc string
	// Run executes the check over one package and reports findings via
	// pass.Report. It returns an error only for analysis failures, not
	// for findings.
	Run func(pass *Pass) error
}

// Pass carries one package's worth of inputs to an Analyzer's Run.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	// Pkg and TypesInfo hold the typechecked package. TypesInfo may be
	// partially filled (direct mode typechecks best-effort when export
	// data for imports is unavailable); analyzers must degrade to
	// syntactic heuristics when a lookup misses rather than fail.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// All returns every registered analyzer, in a stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism}
}
