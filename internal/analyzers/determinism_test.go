package analyzers

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// runOnSource typechecks one synthetic file and returns the
// determinism findings as "line: message" strings.
func runOnSource(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Importer: importer.Default(),
		// Collect rather than abort: the direct-mode contract is
		// best-effort info, and the tests cover that degradation too.
		Error: func(error) {},
	}
	pkg, _ := conf.Check("p", fset, []*ast.File{f}, info)

	var got []string
	pass := &Pass{
		Fset: fset, Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info,
		Report: func(d Diagnostic) {
			got = append(got, strings.TrimPrefix(fset.Position(d.Pos).String(), "src.go:"))
		},
	}
	if err := Determinism.Run(pass); err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		got[i] = g[:strings.Index(g, ":")] // keep the line only
	}
	return got
}

func TestDeterminismMapRange(t *testing.T) {
	src := `package p

import (
	"fmt"
	"sort"
)

func bad(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func goodSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func goodCounting(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func goodSlice(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
`
	got := runOnSource(t, src)
	// One finding per bad function: lines of the two range statements.
	if len(got) != 2 {
		t.Fatalf("got findings at lines %v, want exactly 2 (bad and badPrint)", got)
	}
	if got[0] != "10" || got[1] != "17" {
		t.Errorf("finding lines = %v, want [10 17]", got)
	}
}

func TestDeterminismTimeAndRand(t *testing.T) {
	src := `package p

import (
	"math/rand"
	"time"
)

func bad() int64 {
	rand.Shuffle(3, func(i, j int) {})
	return time.Now().UnixNano() + int64(rand.Intn(10))
}

func good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

type fake struct{}

func (fake) Intn(int) int { return 0 }

func goodShadow() int {
	rand := fake{}
	return rand.Intn(10)
}
`
	got := runOnSource(t, src)
	if len(got) != 3 {
		t.Fatalf("got findings at lines %v, want 3 (Shuffle, time.Now, Intn)", got)
	}
	if got[0] != "9" || got[1] != "10" || got[2] != "10" {
		t.Errorf("finding lines = %v, want [9 10 10]", got)
	}
}

func TestDeterminismAliasedImport(t *testing.T) {
	src := `package p

import mrand "math/rand"

func bad() int { return mrand.Int() }
`
	got := runOnSource(t, src)
	if len(got) != 1 || got[0] != "5" {
		t.Errorf("aliased math/rand not caught: findings %v", got)
	}
}

// TestDeterminismNoTypeInfo pins the degradation contract: without
// type info the map-range check stays silent (no guessing), while the
// import-driven call checks still work.
func TestDeterminismNoTypeInfo(t *testing.T) {
	src := `package p

import "time"

func f(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	_ = time.Now()
	return out
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	pass := &Pass{
		Fset: fset, Files: []*ast.File{f},
		Report: func(d Diagnostic) { got = append(got, d.Message) },
	}
	if err := Determinism.Run(pass); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !strings.Contains(got[0], "time.Now") {
		t.Errorf("syntactic-mode findings = %v, want only the time.Now report", got)
	}
}
