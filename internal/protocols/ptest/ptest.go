// Package ptest provides a small harness for unit-testing protocol
// specs in isolation: a recording fsm.Ctx with a global store, sent
// message log and trace log.
package ptest

import (
	"fmt"
	"math/rand"
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/types"
)

// Ctx is a recording context for driving a single machine.
type Ctx struct {
	Globals map[string]int
	// Sent records Send calls in order; To is filled in.
	Sent []types.Message
	// Outputs records Output calls in order.
	Outputs []types.Message
	// Traces records Trace lines.
	Traces []string
}

// NewCtx returns an empty recording context.
func NewCtx() *Ctx {
	return &Ctx{Globals: make(map[string]int)}
}

// Get implements fsm.Ctx.
func (c *Ctx) Get(name string) int { return c.Globals[name] }

// Set implements fsm.Ctx.
func (c *Ctx) Set(name string, v int) { c.Globals[name] = v }

// GetI/SetI implement fsm.Ctx; indexed access is resolved by the
// machine wrapper before reaching the backend, so these are stubs.
func (c *Ctx) GetI(int32) int32  { return 0 }
func (c *Ctx) SetI(int32, int32) {}

// Send implements fsm.Ctx.
func (c *Ctx) Send(to string, msg types.Message) {
	msg.To = to
	c.Sent = append(c.Sent, msg)
}

// Output implements fsm.Ctx.
func (c *Ctx) Output(msg types.Message) { c.Outputs = append(c.Outputs, msg) }

// Trace implements fsm.Ctx.
func (c *Ctx) Trace(format string, args ...any) {
	c.Traces = append(c.Traces, fmt.Sprintf(format, args...))
}

// LastSent returns the most recent sent message, or a zero message.
func (c *Ctx) LastSent() types.Message {
	if len(c.Sent) == 0 {
		return types.Message{}
	}
	return c.Sent[len(c.Sent)-1]
}

// SentKinds returns the kinds of all sent messages in order.
func (c *Ctx) SentKinds() []types.MsgKind {
	out := make([]types.MsgKind, len(c.Sent))
	for i, m := range c.Sent {
		out[i] = m.Kind
	}
	return out
}

// OutputKinds returns the kinds of all output messages in order.
func (c *Ctx) OutputKinds() []types.MsgKind {
	out := make([]types.MsgKind, len(c.Outputs))
	for i, m := range c.Outputs {
		out[i] = m.Kind
	}
	return out
}

// MustStep fires an event and fails the test when no transition fires.
func MustStep(t *testing.T, m *fsm.Machine, c *Ctx, e fsm.Event) fsm.Transition {
	t.Helper()
	tr, ok := m.Step(c, e)
	if !ok {
		t.Fatalf("%s: no transition for %s in state %s", m.Name(), e, m.State())
	}
	return tr
}

// MustNotStep fires an event and fails the test when a transition fires.
func MustNotStep(t *testing.T, m *fsm.Machine, c *Ctx, e fsm.Event) {
	t.Helper()
	if tr, ok := m.Step(c, e); ok {
		t.Fatalf("%s: unexpected transition %q for %s in state %s", m.Name(), tr.Name, e, m.State())
	}
}

// WantState asserts the machine's control state.
func WantState(t *testing.T, m *fsm.Machine, want fsm.State) {
	t.Helper()
	if m.State() != want {
		t.Fatalf("%s: state = %s, want %s", m.Name(), m.State(), want)
	}
}

// WantGlobal asserts a global variable value.
func WantGlobal(t *testing.T, c *Ctx, name string, want int) {
	t.Helper()
	if got := c.Globals[name]; got != want {
		t.Fatalf("global %s = %d, want %d", name, got, want)
	}
}

// WantSent asserts that the i-th (0-based) sent message has the kind.
func WantSent(t *testing.T, c *Ctx, i int, kind types.MsgKind) {
	t.Helper()
	if i >= len(c.Sent) {
		t.Fatalf("only %d messages sent, want index %d (%s)", len(c.Sent), i, kind)
	}
	if c.Sent[i].Kind != kind {
		t.Fatalf("sent[%d] = %s, want %s", i, c.Sent[i].Kind, kind)
	}
}

// FromNet returns an event that looks like a network-delivered message
// (non-empty From).
func FromNet(kind types.MsgKind, from string) fsm.Event {
	m := types.Message{Kind: kind, From: from}
	return fsm.EvMsg(m)
}

// FromNetCause is FromNet with a cause attached.
func FromNetCause(kind types.MsgKind, from string, cause types.Cause) fsm.Event {
	m := types.Message{Kind: kind, From: from, Cause: cause}
	return fsm.EvMsg(m)
}

// EnvCause returns an environment event (empty From) with a cause.
func EnvCause(kind types.MsgKind, cause types.Cause) fsm.Event {
	return fsm.EvMsg(types.Message{Kind: kind, Cause: cause})
}

// Fuzz drives a machine with n random events drawn from the kinds the
// spec declares (plus a few stray kinds), asserting it never leaves its
// declared state set. It is the per-protocol robustness harness: NAS
// machines must discard unexpected signals, not corrupt themselves.
func Fuzz(t *testing.T, spec *fsm.Spec, n int, seed int64) {
	t.Helper()
	if err := spec.Validate(); err != nil {
		t.Fatalf("%s: %v", spec.Name, err)
	}
	declared := map[fsm.State]bool{}
	for _, st := range spec.States() {
		declared[st] = true
	}
	kinds := spec.Events()
	kinds = append(kinds, types.MsgNone, types.MsgRRCMeasurementReport, types.MsgContextTransfer)
	causes := []types.Cause{
		types.CauseNone, types.CauseRegularDeactivation, types.CauseQoSNotAccepted,
		types.CauseImplicitDetach, types.CauseNoEPSBearerContext, types.CauseNetworkFailure,
	}
	froms := []string{"", "peer", "net"}

	rng := rand.New(rand.NewSource(seed))
	m := fsm.New(spec)
	c := NewCtx()
	// Random-but-plausible shared context.
	for i := 0; i < n; i++ {
		c.Set("g.sys", rng.Intn(3))
		c.Set("g.pdp", rng.Intn(2))
		c.Set("g.eps", rng.Intn(2))
		c.Set("g.reg4g", rng.Intn(2))
		c.Set("g.reg3gcs", rng.Intn(2))
		c.Set("g.psData", rng.Intn(2))
		c.Set("g.callActive", rng.Intn(2))
		c.Set("g.wantReturn4g", rng.Intn(2))
		c.Set("g.switchOpt", rng.Intn(3))
		msg := types.Message{
			Kind:  kinds[rng.Intn(len(kinds))],
			Cause: causes[rng.Intn(len(causes))],
			From:  froms[rng.Intn(len(froms))],
		}
		m.Step(c, fsm.EvMsg(msg))
		if !declared[m.State()] {
			t.Fatalf("%s: reached undeclared state %q after %d events", spec.Name, m.State(), i+1)
		}
	}
}
