// Package cm models the 3G Call Control / Connectivity Management
// protocol (CM/CC, TS 24.008) between the device and the MSC, plus the
// CSFB call origination path of a 4G device (§2, §5.3): a call dialed
// in 4G triggers Circuit-Switched Fallback — the device switches to 3G,
// runs the call over CS there, and is supposed to return to 4G when the
// call ends.
package cm

import (
	"cnetverifier/internal/fsm"
	"cnetverifier/internal/names"
	"cnetverifier/internal/types"
)

// Device-side CM states.
const (
	UEIdle       fsm.State = "CC-IDLE"
	UECSFBSwitch fsm.State = "CC-CSFB-SWITCHING"
	UEServiceReq fsm.State = "CC-SERVICE-REQUESTED"
	UESetup      fsm.State = "CC-SETUP"
	UEActive     fsm.State = "CC-ACTIVE"
)

// MSC-side CM states.
const (
	MSCIdle   fsm.State = "MSC-CC-IDLE"
	MSCActive fsm.State = "MSC-CC-ACTIVE"
)

// DeviceOptions configure the device-side machine.
type DeviceOptions struct {
	// Peer is the MSC CM process (default names.MSCCM).
	Peer string
	// MM is the co-located mobility-management process that brokers the
	// CM service request (default names.UEMM). When empty-string
	// brokering is disabled via DirectToMSC, CM talks to the MSC
	// directly (used by scoped models that omit MM).
	MM string
	// DirectToMSC skips the MM service-request brokering; used by the
	// S3/S5 scoped models where MM is not under study.
	DirectToMSC bool
	// VoLTE enables Voice-over-LTE (§2): calls dialed in 4G are carried
	// over the PS domain in 4G instead of falling back to 3G. The paper
	// notes carriers avoided VoLTE for cost/complexity and adopted CSFB
	// — which is what exposes S3 and S6; with VoLTE those two findings
	// cannot occur (the what-if ablation).
	VoLTE bool
}

// MSCOptions configure the network-side machine.
type MSCOptions struct {
	// Peer is the device CM process (default names.UECM).
	Peer string
}

// DeviceSpec returns the device-side CM machine.
func DeviceSpec(o DeviceOptions) *fsm.Spec {
	if o.Peer == "" {
		o.Peer = names.MSCCM
	}
	if o.MM == "" {
		o.MM = names.UEMM
	}
	peer, mmProc := o.Peer, o.MM

	requestService := func(c fsm.Ctx, e fsm.Event) {
		c.Set(names.GCallWanted, 1)
		if o.DirectToMSC {
			c.Send(peer, types.NewMessage(types.MsgCallSetup, types.ProtoCM))
		} else {
			c.Send(mmProc, types.NewMessage(types.MsgCMServiceRequest, types.ProtoCM))
		}
		c.Trace("CC outgoing call requested")
	}

	return &fsm.Spec{
		Name:  "CC-UE",
		Proto: types.ProtoCM,
		Init:  UEIdle,
		Vars:  map[string]int{"mtCall": 0, "volteCall": 0},
		Transitions: []fsm.Transition{
			// Dialing while camped on 3G: go through MM (or straight to
			// the MSC in scoped models).
			{Name: "dial-3g", From: UEIdle, On: types.MsgUserDialCall, To: UEServiceReq,
				Guard:  func(c fsm.Ctx, e fsm.Event) bool { return c.Get(names.GSys) == int(types.Sys3G) },
				Action: requestService},

			// Dialing while camped on 4G with VoLTE (§2): the call runs
			// over the 4G PS domain — no fallback, no inter-system
			// switch, hence no S3/S6 exposure. The MSC process stands in
			// for the IMS application server in this abstraction.
			{Name: "dial-volte", From: UEIdle, On: types.MsgUserDialCall, To: UESetup,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return o.VoLTE && c.Get(names.GSys) == int(types.Sys4G)
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GCallWanted, 1)
					c.Set("volteCall", 1)
					c.Send(peer, types.NewMessage(types.MsgCallSetup, types.ProtoCM))
					c.Trace("CC VoLTE call over 4G PS")
				}},
			{Name: "volte-paged", From: UEIdle, On: types.MsgPagingRequest, To: UESetup,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return o.VoLTE && c.Get(names.GSys) == int(types.Sys4G) && c.Get(names.GReg4G) == 1
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set("volteCall", 1)
					c.Send(peer, types.NewMessage(types.MsgCallConnect, types.ProtoCM))
					c.Trace("CC VoLTE MT call answered in 4G")
				}},

			// Dialing while camped on 4G: CSFB. The extended service
			// request is handed to 4G RRC, which performs the 4G→3G
			// switch (§5.1.1); CM resumes once 3G RRC is connected.
			{Name: "dial-csfb", From: UEIdle, On: types.MsgUserDialCall, To: UECSFBSwitch,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return !o.VoLTE && c.Get(names.GSys) == int(types.Sys4G)
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GCallWanted, 1)
					c.Output(types.NewMessage(types.MsgCSFBServiceRequest, types.ProtoRRC4G))
					c.Trace("CC CSFB call: requesting 4G→3G fallback")
				}},
			// Mobile-terminated CSFB (§2: CSFB "switches 4G users to
			// legacy 3G" for voice — in both directions): a page while
			// camped on 4G triggers the same fallback; the call is
			// answered once the 3G radio is up.
			{Name: "paged-csfb", From: UEIdle, On: types.MsgPagingRequest, To: UECSFBSwitch,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return !o.VoLTE && c.Get(names.GSys) == int(types.Sys4G) && c.Get(names.GReg4G) == 1
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set("mtCall", 1)
					c.Output(types.NewMessage(types.MsgCSFBServiceRequest, types.ProtoRRC4G))
					c.Trace("CC MT CSFB call: requesting 4G→3G fallback")
				}},

			// 3G radio is up after the fallback: proceed with the call
			// (answer it for MT, request service for MO).
			{Name: "csfb-proceed-mt", From: UECSFBSwitch, On: types.MsgRRCConnectionSetupComplete, To: UEActive,
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return c.Get("mtCall") == 1 },
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set("mtCall", 0)
					c.Set(names.GCallActive, 1)
					c.Send(peer, types.NewMessage(types.MsgCallConnect, types.ProtoCM))
					c.Output(types.NewMessage(types.MsgCallConnect, types.ProtoRRC3G))
					c.Trace("CC MT CSFB call answered in 3G")
				}},
			{Name: "csfb-proceed", From: UECSFBSwitch, On: types.MsgRRCConnectionSetupComplete, To: UEServiceReq,
				Guard:  func(c fsm.Ctx, e fsm.Event) bool { return c.Get("mtCall") == 0 },
				Action: requestService},

			// Service request answered (via MM's cross-layer relay).
			{Name: "svc-accepted", From: UEServiceReq, On: types.MsgCMServiceAccept, To: UESetup,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgCallSetup, types.ProtoCM))
					c.Trace("CC call setup sent")
				}},
			{Name: "svc-rejected", From: UEServiceReq, On: types.MsgCMServiceReject, To: UEIdle,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GCallWanted, 0)
					c.Set(names.GCallRejected, 1)
					c.Trace("CC call rejected: %s", e.Msg.Cause)
				}},

			// Call connect (direct setups land here from UEServiceReq
			// too, for DirectToMSC models).
			{Name: "connected", From: UESetup, On: types.MsgCallConnect, To: UEActive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GCallActive, 1)
					c.Set(names.GCallWanted, 0)
					if c.Get("volteCall") == 0 {
						// Tell 3G RRC a CS call now shares the channel (S5).
						c.Output(types.NewMessage(types.MsgCallConnect, types.ProtoRRC3G))
					}
					c.Trace("CC call active")
				}},
			{Name: "connected-direct", From: UEServiceReq, On: types.MsgCallConnect, To: UEActive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GCallActive, 1)
					c.Set(names.GCallWanted, 0)
					c.Output(types.NewMessage(types.MsgCallConnect, types.ProtoRRC3G))
					c.Trace("CC call active")
				}},

			// Hang-up: release toward the MSC and tell the local stack
			// the CSFB call ended (MM runs the deferred location update,
			// RRC evaluates the return-to-4G switch — S3).
			{Name: "hangup", From: UEActive, On: types.MsgUserHangUp, To: UEIdle,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GCallActive, 0)
					volte := c.Get("volteCall") == 1
					c.Set("volteCall", 0)
					if !volte && c.Get(names.GCSFBTag) == 1 {
						c.Set(names.GWantReturn4G, 1)
					}
					c.Send(peer, types.NewMessage(types.MsgCallDisconnect, types.ProtoCM))
					if !volte {
						c.Output(types.NewMessage(types.MsgCallRelease, types.ProtoRRC3G))
					}
					c.Trace("CC call ended")
				}},
			// Remote release.
			{Name: "remote-release", From: UEActive, On: types.MsgCallRelease, To: UEIdle,
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return e.Msg.From != "" },
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GCallActive, 0)
					if c.Get(names.GCSFBTag) == 1 {
						c.Set(names.GWantReturn4G, 1)
					}
					c.Output(types.NewMessage(types.MsgCallRelease, types.ProtoRRC3G))
					c.Trace("CC call released by network")
				}},

			// Incoming call while camped on 3G: answer immediately (the
			// §3.3 auto-answer test tool behavior).
			{Name: "paged", From: UEIdle, On: types.MsgPagingRequest, To: UESetup,
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return c.Get(names.GSys) == int(types.Sys3G) },
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgCallConnect, types.ProtoCM))
				}},

			{Name: "power-off", From: fsm.Any, On: types.MsgPowerOff, To: UEIdle,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GCallActive, 0)
					c.Set(names.GCallWanted, 0)
				}},
		},
	}
}

// MSCSpec returns the MSC-side CM machine.
func MSCSpec(o MSCOptions) *fsm.Spec {
	if o.Peer == "" {
		o.Peer = names.UECM
	}
	peer := o.Peer

	return &fsm.Spec{
		Name:  "CC-MSC",
		Proto: types.ProtoCM,
		Init:  MSCIdle,
		Transitions: []fsm.Transition{
			{Name: "setup", From: MSCIdle, On: types.MsgCallSetup, To: MSCActive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgCallConnect, types.ProtoCM))
				}},
			{Name: "disconnect", From: MSCActive, On: types.MsgCallDisconnect, To: MSCIdle,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgCallRelease, types.ProtoCM))
				}},
			// Network-side release (operator scenario: remote hang-up).
			{Name: "net-release", From: MSCActive, On: types.MsgNetDetachOrder, To: MSCIdle,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgCallRelease, types.ProtoCM))
				}},
			// Mobile-terminated call (operator scenario): page the UE.
			// Paging requires a registered subscriber — the network
			// cannot route an incoming call to a detached device (§6.1:
			// "Without it, the network cannot route incoming calls").
			{Name: "mt-call", From: MSCIdle, On: types.MsgPagingRequest, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return c.Get(names.GReg3GCS) == 1 || c.Get(names.GReg4G) == 1
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgPagingRequest, types.ProtoCM))
				}},
			{Name: "mt-connect", From: MSCIdle, On: types.MsgCallConnect, To: MSCActive},
		},
	}
}
