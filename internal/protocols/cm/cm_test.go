package cm

import (
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/names"
	"cnetverifier/internal/protocols/ptest"
	"cnetverifier/internal/types"
)

func TestSpecsValidate(t *testing.T) {
	for _, o := range []DeviceOptions{{}, {DirectToMSC: true}} {
		if err := DeviceSpec(o).Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := MSCSpec(MSCOptions{}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDevice3GCallFlow(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys3G))

	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDialCall))
	ptest.WantState(t, m, UEServiceReq)
	ptest.WantGlobal(t, c, names.GCallWanted, 1)
	// Routed through MM, not straight to the MSC.
	if got := c.Sent[0]; got.Kind != types.MsgCMServiceRequest || got.To != names.UEMM {
		t.Fatalf("sent[0] = %+v, want CMServiceRequest to MM", got)
	}

	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCMServiceAccept, names.UEMM))
	ptest.WantState(t, m, UESetup)
	if got := c.LastSent(); got.Kind != types.MsgCallSetup || got.To != names.MSCCM {
		t.Fatalf("last sent = %+v, want CallSetup to MSC", got)
	}

	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCallConnect, names.MSCCM))
	ptest.WantState(t, m, UEActive)
	ptest.WantGlobal(t, c, names.GCallActive, 1)
	ptest.WantGlobal(t, c, names.GCallWanted, 0)
	// RRC is told a CS call shares the channel (S5 input).
	if len(c.Outputs) != 1 || c.Outputs[0].Kind != types.MsgCallConnect {
		t.Fatalf("outputs = %v, want CallConnect toward RRC", c.OutputKinds())
	}
}

func TestDeviceServiceReject(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys3G))
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDialCall))
	ptest.MustStep(t, m, c, ptest.FromNetCause(types.MsgCMServiceReject, names.UEMM, types.CauseCongestion))
	ptest.WantState(t, m, UEIdle)
	ptest.WantGlobal(t, c, names.GCallRejected, 1)
	ptest.WantGlobal(t, c, names.GCallWanted, 0)
}

// CSFB origination: dialing in 4G triggers the fallback, the call
// proceeds once 3G RRC confirms, and hanging up raises the
// return-to-4G obligation (S3's precondition).
func TestDeviceCSFBCall(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys4G))

	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDialCall))
	ptest.WantState(t, m, UECSFBSwitch)
	if len(c.Outputs) != 1 || c.Outputs[0].Kind != types.MsgCSFBServiceRequest {
		t.Fatalf("outputs = %v, want CSFBServiceRequest", c.OutputKinds())
	}

	// 3G RRC reports the radio is up (after the 4G→3G switch).
	c.Set(names.GSys, int(types.Sys3G))
	c.Set(names.GCSFBTag, 1)
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgRRCConnectionSetupComplete, names.UERRC3G))
	ptest.WantState(t, m, UEServiceReq)

	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCMServiceAccept, names.UEMM))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCallConnect, names.MSCCM))
	ptest.WantState(t, m, UEActive)

	outs := len(c.Outputs)
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserHangUp))
	ptest.WantState(t, m, UEIdle)
	ptest.WantGlobal(t, c, names.GCallActive, 0)
	ptest.WantGlobal(t, c, names.GWantReturn4G, 1)
	if got := c.LastSent().Kind; got != types.MsgCallDisconnect {
		t.Fatalf("last sent = %s, want CallDisconnect", got)
	}
	if len(c.Outputs) != outs+1 || c.Outputs[outs].Kind != types.MsgCallRelease {
		t.Fatalf("outputs = %v, want CallRelease toward RRC", c.OutputKinds())
	}
}

// A plain 3G call (no CSFB tag) must not raise the return obligation.
func TestDeviceHangupWithoutCSFB(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{DirectToMSC: true}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys3G))
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDialCall))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCallConnect, names.MSCCM))
	ptest.WantState(t, m, UEActive)
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserHangUp))
	ptest.WantGlobal(t, c, names.GWantReturn4G, 0)
}

func TestDeviceDirectToMSC(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{DirectToMSC: true}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys3G))
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDialCall))
	if got := c.Sent[0]; got.Kind != types.MsgCallSetup || got.To != names.MSCCM {
		t.Fatalf("sent[0] = %+v, want CallSetup directly to MSC", got)
	}
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCallConnect, names.MSCCM))
	ptest.WantState(t, m, UEActive)
}

func TestDeviceRemoteRelease(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{DirectToMSC: true}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys3G))
	c.Set(names.GCSFBTag, 1)
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDialCall))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCallConnect, names.MSCCM))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCallRelease, names.MSCCM))
	ptest.WantState(t, m, UEIdle)
	ptest.WantGlobal(t, c, names.GCallActive, 0)
	ptest.WantGlobal(t, c, names.GWantReturn4G, 1)
}

func TestDevicePagedCall(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys3G))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgPagingRequest, names.MSCCM))
	ptest.WantState(t, m, UESetup)
	if got := c.LastSent().Kind; got != types.MsgCallConnect {
		t.Fatalf("last sent = %s, want CallConnect (auto-answer)", got)
	}
}

func TestMSCCallFlow(t *testing.T) {
	m := fsm.New(MSCSpec(MSCOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCallSetup, names.UECM))
	ptest.WantState(t, m, MSCActive)
	ptest.WantSent(t, c, 0, types.MsgCallConnect)
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCallDisconnect, names.UECM))
	ptest.WantState(t, m, MSCIdle)
	ptest.WantSent(t, c, 1, types.MsgCallRelease)
}

func TestMSCNetworkRelease(t *testing.T) {
	m := fsm.New(MSCSpec(MSCOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCallSetup, names.UECM))
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgNetDetachOrder))
	ptest.WantState(t, m, MSCIdle)
	if got := c.LastSent().Kind; got != types.MsgCallRelease {
		t.Fatalf("last sent = %s, want CallRelease", got)
	}
}

func TestMSCMTCall(t *testing.T) {
	m := fsm.New(MSCSpec(MSCOptions{}))
	c := ptest.NewCtx()
	// Paging an unregistered subscriber is refused.
	ptest.MustNotStep(t, m, c, fsm.Ev(types.MsgPagingRequest))
	c.Set(names.GReg3GCS, 1)
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPagingRequest))
	ptest.WantSent(t, c, 0, types.MsgPagingRequest)
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCallConnect, names.UECM))
	ptest.WantState(t, m, MSCActive)
}

// Mobile-terminated CSFB: a page while camped on 4G triggers the
// fallback and the call is answered in 3G.
func TestDeviceMTCSFBCall(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys4G))
	c.Set(names.GReg4G, 1)

	tr := ptest.MustStep(t, m, c, ptest.FromNet(types.MsgPagingRequest, names.MSCCM))
	if tr.Name != "paged-csfb" {
		t.Fatalf("transition = %s, want paged-csfb", tr.Name)
	}
	ptest.WantState(t, m, UECSFBSwitch)
	if len(c.Outputs) != 1 || c.Outputs[0].Kind != types.MsgCSFBServiceRequest {
		t.Fatalf("outputs = %v, want CSFB request", c.OutputKinds())
	}

	// Radio up in 3G: the call is answered, not service-requested.
	c.Set(names.GSys, int(types.Sys3G))
	c.Set(names.GCSFBTag, 1)
	tr = ptest.MustStep(t, m, c, ptest.FromNet(types.MsgRRCConnectionSetupComplete, names.UERRC3G))
	if tr.Name != "csfb-proceed-mt" {
		t.Fatalf("transition = %s, want csfb-proceed-mt", tr.Name)
	}
	ptest.WantState(t, m, UEActive)
	ptest.WantGlobal(t, c, names.GCallActive, 1)
	if got := c.LastSent().Kind; got != types.MsgCallConnect {
		t.Fatalf("last sent = %s, want CallConnect (answer)", got)
	}

	// Hang-up raises the return obligation like an MO CSFB call.
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserHangUp))
	ptest.WantGlobal(t, c, names.GWantReturn4G, 1)
}

// A page while camped on 3G still answers directly (no fallback).
func TestDevicePagedIn3GStaysDirect(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys3G))
	tr := ptest.MustStep(t, m, c, ptest.FromNet(types.MsgPagingRequest, names.MSCCM))
	if tr.Name != "paged" {
		t.Fatalf("transition = %s, want paged", tr.Name)
	}
	ptest.WantState(t, m, UESetup)
}

// VoLTE (§2's what-if): calls dialed in 4G stay in 4G over PS — no
// fallback, no return obligation, no S5 channel sharing.
func TestDeviceVoLTECall(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{VoLTE: true}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys4G))
	c.Set(names.GReg4G, 1)

	tr := ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDialCall))
	if tr.Name != "dial-volte" {
		t.Fatalf("transition = %s, want dial-volte", tr.Name)
	}
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCallConnect, names.MSCCM))
	ptest.WantState(t, m, UEActive)
	ptest.WantGlobal(t, c, names.GCallActive, 1)
	ptest.WantGlobal(t, c, names.GSys, int(types.Sys4G)) // never left 4G
	// No S5 coupling output toward 3G RRC.
	for _, out := range c.Outputs {
		if out.Kind == types.MsgCallConnect {
			t.Fatal("VoLTE call coupled the 3G shared channel")
		}
	}

	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserHangUp))
	ptest.WantGlobal(t, c, names.GWantReturn4G, 0) // no S3 obligation
	ptest.WantGlobal(t, c, names.GSys, int(types.Sys4G))
}

// VoLTE MT call: paged in 4G, answered in 4G.
func TestDeviceVoLTEMTCall(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{VoLTE: true}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys4G))
	c.Set(names.GReg4G, 1)
	tr := ptest.MustStep(t, m, c, ptest.FromNet(types.MsgPagingRequest, names.MSCCM))
	if tr.Name != "volte-paged" {
		t.Fatalf("transition = %s, want volte-paged", tr.Name)
	}
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCallConnect, names.MSCCM))
	ptest.WantState(t, m, UEActive)
	ptest.WantGlobal(t, c, names.GSys, int(types.Sys4G))
}

// With VoLTE off (the carriers' actual deployment) the CSFB path is
// unchanged.
func TestVoLTEOffStillCSFB(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys4G))
	tr := ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDialCall))
	if tr.Name != "dial-csfb" {
		t.Fatalf("transition = %s, want dial-csfb", tr.Name)
	}
}
