// Package rrc4g models the 4G LTE Radio Resource Control protocol
// (TS 36.331) at the device: the two-state IDLE/CONNECTED machine of
// §2, the CSFB fallback trigger (a call dialed in 4G hands the radio to
// 3G, §5.1.1), and operator- or mobility-initiated 4G→3G switches.
package rrc4g

import (
	"cnetverifier/internal/fsm"
	"cnetverifier/internal/names"
	"cnetverifier/internal/types"
)

// Device-side 4G RRC states.
const (
	Idle      fsm.State = "RRC-IDLE"
	Connected fsm.State = "RRC-CONNECTED"
)

// DeviceOptions configure the device-side machine.
type DeviceOptions struct{}

func in4G(c fsm.Ctx, e fsm.Event) bool { return c.Get(names.GSys) == int(types.Sys4G) }

// fallTo3G executes the 4G→3G radio switch and hands control to the
// co-located 3G RRC (cross-layer output, Figure 3 step 2).
func fallTo3G(c fsm.Ctx, csfb bool) {
	c.Set(names.GSys, int(types.Sys3G))
	if csfb {
		c.Set(names.GCSFBTag, 1)
	}
	c.Output(types.NewMessage(types.MsgInterSystemSwitchCommand, types.ProtoRRC3G))
	if csfb {
		c.Trace("4G RRC released for CSFB fallback to 3G")
	} else {
		c.Trace("4G RRC released for inter-system switch to 3G")
	}
}

// DeviceSpec returns the device-side 4G RRC machine.
func DeviceSpec(o DeviceOptions) *fsm.Spec {
	return &fsm.Spec{
		Name:  "RRC4G-UE",
		Proto: types.ProtoRRC4G,
		Init:  Idle,
		Transitions: []fsm.Transition{
			// Data activity in 4G connects the radio.
			{Name: "data-on", From: Idle, On: types.MsgUserDataOn, To: Connected,
				Guard: in4G,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPSData, 1)
				}},
			{Name: "data-on-conn", From: Connected, On: types.MsgUserDataOn, To: fsm.Same,
				Guard: in4G,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPSData, 1)
				}},
			{Name: "data-off", From: fsm.Any, On: types.MsgUserDataOff, To: Idle,
				Guard: in4G,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPSData, 0)
				}},

			// CSFB: the extended service request from CC triggers the
			// fallback (works from IDLE and CONNECTED alike).
			{Name: "csfb-fallback", From: fsm.Any, On: types.MsgCSFBServiceRequest, To: Idle,
				Guard: in4G,
				Action: func(c fsm.Ctx, e fsm.Event) {
					fallTo3G(c, true)
				}},

			// Operator- or mobility-initiated 4G→3G switch.
			{Name: "switch-out", From: fsm.Any, On: types.MsgNetSwitchOrder, To: Idle,
				Guard: in4G,
				Action: func(c fsm.Ctx, e fsm.Event) {
					fallTo3G(c, false)
				}},
			{Name: "move-out-of-coverage", From: fsm.Any, On: types.MsgInterSystemSwitchCommand, To: Idle,
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return in4G(c, e) && e.Msg.From == "" },
				Action: func(c fsm.Ctx, e fsm.Event) {
					fallTo3G(c, false)
				}},

			// Network release of the radio connection.
			{Name: "release", From: Connected, On: types.MsgRRCConnectionRelease, To: Idle},

			{Name: "power-off", From: fsm.Any, On: types.MsgPowerOff, To: Idle},
		},
	}
}
