package rrc4g

import (
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/names"
	"cnetverifier/internal/protocols/ptest"
	"cnetverifier/internal/types"
)

func TestSpecValidates(t *testing.T) {
	if err := DeviceSpec(DeviceOptions{}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func newUE(t *testing.T) (*fsm.Machine, *ptest.Ctx) {
	t.Helper()
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys4G))
	return m, c
}

func TestDataConnects(t *testing.T) {
	m, c := newUE(t)
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDataOn))
	ptest.WantState(t, m, Connected)
	ptest.WantGlobal(t, c, names.GPSData, 1)
	// Idempotent while connected.
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDataOn))
	ptest.WantState(t, m, Connected)
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDataOff))
	ptest.WantState(t, m, Idle)
	ptest.WantGlobal(t, c, names.GPSData, 0)
}

func TestCSFBFallback(t *testing.T) {
	m, c := newUE(t)
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDataOn))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCSFBServiceRequest, names.UECM))
	ptest.WantState(t, m, Idle)
	ptest.WantGlobal(t, c, names.GSys, int(types.Sys3G))
	ptest.WantGlobal(t, c, names.GCSFBTag, 1)
	if len(c.Outputs) != 1 || c.Outputs[0].Kind != types.MsgInterSystemSwitchCommand {
		t.Fatalf("outputs = %v, want switch command toward 3G RRC", c.OutputKinds())
	}
}

func TestCSFBNotIn3G(t *testing.T) {
	m, c := newUE(t)
	c.Set(names.GSys, int(types.Sys3G))
	ptest.MustNotStep(t, m, c, ptest.FromNet(types.MsgCSFBServiceRequest, names.UECM))
}

func TestOperatorSwitchOrder(t *testing.T) {
	m, c := newUE(t)
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgNetSwitchOrder))
	ptest.WantGlobal(t, c, names.GSys, int(types.Sys3G))
	// Not CSFB-tagged.
	ptest.WantGlobal(t, c, names.GCSFBTag, 0)
}

func TestMobilitySwitch(t *testing.T) {
	m, c := newUE(t)
	// Environment event (empty From): user left 4G coverage.
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgInterSystemSwitchCommand))
	ptest.WantGlobal(t, c, names.GSys, int(types.Sys3G))
	if len(c.Outputs) != 1 || c.Outputs[0].Kind != types.MsgInterSystemSwitchCommand {
		t.Fatalf("outputs = %v", c.OutputKinds())
	}
}

func TestNetworkRelease(t *testing.T) {
	m, c := newUE(t)
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDataOn))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgRRCConnectionRelease, names.BSRRC4G))
	ptest.WantState(t, m, Idle)
}

func TestPowerOff(t *testing.T) {
	m, c := newUE(t)
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDataOn))
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOff))
	ptest.WantState(t, m, Idle)
}
