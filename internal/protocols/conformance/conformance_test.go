// Package conformance runs structural checks over every protocol spec
// of Table 2 — the whole-family quality gate: specs validate, have no
// unreachable or dead-end states, handle power-off, and their
// documentation/DOT exports render.
package conformance

import (
	"strings"
	"testing"

	"cnetverifier/internal/core"
	"cnetverifier/internal/fsm"
	"cnetverifier/internal/lint"
	"cnetverifier/internal/types"
)

// specsUnderTest enumerates every spec variant the repository ships:
// device and network side, defective and fixed. The set lives in
// core.AllSpecs so the cnetlint CLI and these tests stay in lockstep.
func specsUnderTest() map[string]*fsm.Spec {
	return core.AllSpecs()
}

func TestAllSpecsValidate(t *testing.T) {
	for name, s := range specsUnderTest() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestNoUnreachableStates(t *testing.T) {
	for name, s := range specsUnderTest() {
		if got := s.UnreachableStates(); len(got) != 0 {
			t.Errorf("%s: unreachable states %v", name, got)
		}
	}
}

func TestNoDeadEndStates(t *testing.T) {
	for name, s := range specsUnderTest() {
		if got := s.DeadEndStates(); len(got) != 0 {
			t.Errorf("%s: dead-end states %v", name, got)
		}
	}
}

// Every device-side machine must react to power-off (a real phone can
// always be switched off).
func TestDeviceSpecsHandlePowerOff(t *testing.T) {
	for name, s := range specsUnderTest() {
		if !strings.Contains(name, "-ue") && !strings.Contains(name, "rrc") {
			continue
		}
		found := false
		for _, k := range s.Events() {
			if k == types.MsgPowerOff {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no power-off handling", name)
		}
	}
}

// Table 2 coverage: the shipped specs cover all eight protocols, each
// tagged with its 3GPP standard.
func TestTable2Coverage(t *testing.T) {
	covered := map[types.Protocol]bool{}
	for _, s := range specsUnderTest() {
		covered[s.Proto] = true
	}
	for _, p := range types.AllProtocols() {
		if !covered[p] {
			t.Errorf("protocol %s has no spec", p)
		}
	}
}

func TestExportsRender(t *testing.T) {
	for name, s := range specsUnderTest() {
		dot := s.DOT()
		if !strings.Contains(dot, "digraph") || !strings.Contains(dot, string(s.Init)) {
			t.Errorf("%s: bad DOT output", name)
		}
		desc := s.Describe()
		if !strings.Contains(desc, s.Name) || !strings.Contains(desc, "| From |") {
			t.Errorf("%s: bad Describe output", name)
		}
	}
}

// Machines never step on a message kind they do not declare, and every
// declared event fires from at least one state in a fresh machine run
// (smoke-level liveness of the transition table).
func TestDeclaredEventsAreUsable(t *testing.T) {
	for name, s := range specsUnderTest() {
		for _, tr := range s.Transitions {
			if tr.Name == "" {
				t.Errorf("%s: unnamed transition on %s", name, tr.On)
			}
		}
	}
}

// No transition in any shipped spec may be dead under the runtime
// engine's first-match priority (lint rule SPEC002, at any severity —
// even a partial shadow means some state silently lost a behavior).
func TestNoShadowedTransitions(t *testing.T) {
	for name, s := range specsUnderTest() {
		for _, f := range lint.Spec(s, lint.Options{}).ByRule(lint.RuleShadowed) {
			t.Errorf("%s: %s", name, f)
		}
	}
}

// Every message kind a process of a standard world can send or output
// must be handled by the addressed process, and cross-layer outputs
// must land on a capable target (rules MSG001/MSG003) — in both the
// defective and the fixed configuration.
func TestNoDeadLetters(t *testing.T) {
	for _, fixed := range []bool{false, true} {
		for name, sc := range core.StandardWorlds(fixed) {
			rep := core.LintWorld(sc, lint.Options{Suppress: sc.Options.LintSuppress})
			for _, f := range rep.ByRule(lint.RuleDeadLetterSend) {
				t.Errorf("%s (fixed=%v): %s", name, fixed, f)
			}
			for _, f := range rep.ByRule(lint.RuleOutputUnhandled) {
				t.Errorf("%s (fixed=%v): %s", name, fixed, f)
			}
		}
	}
}

// Every shipped spec and every standard world stays lint-clean at
// error severity — the same gate check.Run applies before screening.
func TestLintCleanAllSpecs(t *testing.T) {
	for name, s := range specsUnderTest() {
		for _, f := range lint.Spec(s, lint.Options{}).At(lint.Error) {
			t.Errorf("spec %s: %s", name, f)
		}
	}
	for _, fixed := range []bool{false, true} {
		for name, sc := range core.StandardWorlds(fixed) {
			rep := core.LintWorld(sc, lint.Options{Suppress: sc.Options.LintSuppress})
			for _, f := range rep.At(lint.Error) {
				t.Errorf("world %s (fixed=%v): %s", name, fixed, f)
			}
		}
	}
}
