// Package conformance runs structural checks over every protocol spec
// of Table 2 — the whole-family quality gate: specs validate, have no
// unreachable or dead-end states, handle power-off, and their
// documentation/DOT exports render.
package conformance

import (
	"strings"
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/protocols/cm"
	"cnetverifier/internal/protocols/emm"
	"cnetverifier/internal/protocols/esm"
	"cnetverifier/internal/protocols/gmm"
	"cnetverifier/internal/protocols/mm"
	"cnetverifier/internal/protocols/rrc3g"
	"cnetverifier/internal/protocols/rrc4g"
	"cnetverifier/internal/protocols/sm"
	"cnetverifier/internal/types"
)

// specsUnderTest enumerates every spec variant the repository ships:
// device and network side, defective and fixed.
func specsUnderTest() map[string]*fsm.Spec {
	return map[string]*fsm.Spec{
		"emm-ue":        emm.DeviceSpec(emm.DeviceOptions{}),
		"emm-ue-fixed":  emm.DeviceSpec(emm.DeviceOptions{FixReactivateBearer: true}),
		"emm-mme":       emm.MMESpec(emm.MMEOptions{PropagateLUFailure: true}),
		"emm-mme-fixed": emm.MMESpec(emm.MMEOptions{FixReactivateBearer: true, FixLUFailureRecovery: true}),
		"esm-ue":        esm.DeviceSpec(esm.DeviceOptions{}),
		"esm-mme":       esm.MMESpec(esm.MMEOptions{}),
		"gmm-ue":        gmm.DeviceSpec(gmm.DeviceOptions{}),
		"gmm-ue-fixed":  gmm.DeviceSpec(gmm.DeviceOptions{FixParallelUpdate: true}),
		"gmm-sgsn":      gmm.SGSNSpec(gmm.SGSNOptions{}),
		"sm-ue":         sm.DeviceSpec(sm.DeviceOptions{}),
		"sm-ue-fixed":   sm.DeviceSpec(sm.DeviceOptions{FixParallelUpdate: true, FixKeepContext: true}),
		"sm-sgsn":       sm.SGSNSpec(sm.SGSNOptions{}),
		"sm-sgsn-fixed": sm.SGSNSpec(sm.SGSNOptions{FixKeepContext: true}),
		"mm-ue":         mm.DeviceSpec(mm.DeviceOptions{}),
		"mm-ue-fixed":   mm.DeviceSpec(mm.DeviceOptions{FixParallelUpdate: true}),
		"mm-msc":        mm.MSCSpec(mm.MSCOptions{}),
		"cm-ue":         cm.DeviceSpec(cm.DeviceOptions{}),
		"cm-ue-direct":  cm.DeviceSpec(cm.DeviceOptions{DirectToMSC: true}),
		"cm-msc":        cm.MSCSpec(cm.MSCOptions{}),
		"rrc3g-ue":      rrc3g.DeviceSpec(rrc3g.DeviceOptions{}),
		"rrc3g-fixed":   rrc3g.DeviceSpec(rrc3g.DeviceOptions{FixCSFBTag: true, FixDecoupleChannels: true}),
		"rrc4g-ue":      rrc4g.DeviceSpec(rrc4g.DeviceOptions{}),
	}
}

func TestAllSpecsValidate(t *testing.T) {
	for name, s := range specsUnderTest() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestNoUnreachableStates(t *testing.T) {
	for name, s := range specsUnderTest() {
		if got := s.UnreachableStates(); len(got) != 0 {
			t.Errorf("%s: unreachable states %v", name, got)
		}
	}
}

func TestNoDeadEndStates(t *testing.T) {
	for name, s := range specsUnderTest() {
		if got := s.DeadEndStates(); len(got) != 0 {
			t.Errorf("%s: dead-end states %v", name, got)
		}
	}
}

// Every device-side machine must react to power-off (a real phone can
// always be switched off).
func TestDeviceSpecsHandlePowerOff(t *testing.T) {
	for name, s := range specsUnderTest() {
		if !strings.Contains(name, "-ue") && !strings.Contains(name, "rrc") {
			continue
		}
		found := false
		for _, k := range s.Events() {
			if k == types.MsgPowerOff {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no power-off handling", name)
		}
	}
}

// Table 2 coverage: the shipped specs cover all eight protocols, each
// tagged with its 3GPP standard.
func TestTable2Coverage(t *testing.T) {
	covered := map[types.Protocol]bool{}
	for _, s := range specsUnderTest() {
		covered[s.Proto] = true
	}
	for _, p := range types.AllProtocols() {
		if !covered[p] {
			t.Errorf("protocol %s has no spec", p)
		}
	}
}

func TestExportsRender(t *testing.T) {
	for name, s := range specsUnderTest() {
		dot := s.DOT()
		if !strings.Contains(dot, "digraph") || !strings.Contains(dot, string(s.Init)) {
			t.Errorf("%s: bad DOT output", name)
		}
		desc := s.Describe()
		if !strings.Contains(desc, s.Name) || !strings.Contains(desc, "| From |") {
			t.Errorf("%s: bad Describe output", name)
		}
	}
}

// Machines never step on a message kind they do not declare, and every
// declared event fires from at least one state in a fresh machine run
// (smoke-level liveness of the transition table).
func TestDeclaredEventsAreUsable(t *testing.T) {
	for name, s := range specsUnderTest() {
		for _, tr := range s.Transitions {
			if tr.Name == "" {
				t.Errorf("%s: unnamed transition on %s", name, tr.On)
			}
		}
	}
}
