// Package rrc3g models the 3G Radio Resource Control protocol
// (TS 25.331) at the device. The machine keeps the three-state
// connection model of §2 — IDLE, and the connected sub-states FACH
// (low-rate, cheap) and DCH (high-rate, expensive) — and owns the two
// cross-domain couplings of the paper:
//
//   - S3 (§5.3): the RRC state is shared by CS voice and PS data. When
//     a CSFB call ends but a high-rate data session keeps RRC at DCH,
//     a carrier using "inter-system cell reselection" (which requires
//     IDLE) never moves the device back to 4G — it is stuck in 3G.
//   - S5 (§6.2): the shared channel carries both domains with one
//     modulation scheme; when a CS call starts the modulation is
//     downgraded from 64QAM to 16QAM, collapsing the PS rate.
//
// The §8 domain-decoupling fixes are options: a CSFB tag that forces a
// switch-capable state when the call ends, and per-domain channels that
// keep 64QAM for PS traffic during calls.
package rrc3g

import (
	"cnetverifier/internal/fsm"
	"cnetverifier/internal/names"
	"cnetverifier/internal/types"
)

// Device-side 3G RRC states (TS 25.331, reduced to the paper's model).
const (
	Idle fsm.State = "RRC-IDLE"
	FACH fsm.State = "RRC-FACH"
	DCH  fsm.State = "RRC-DCH"
)

// Modulation orders configured on the shared channel (§6.2).
const (
	Mod64QAM = 64
	Mod16QAM = 16
)

// DeviceOptions configure the device-side machine.
type DeviceOptions struct {
	// FixCSFBTag enables the §8 domain-decoupling fix for S3: when a
	// CSFB-tagged call ends, the base station moves RRC to a
	// switch-capable state so the return to 4G always proceeds,
	// regardless of the carrier's switching option.
	FixCSFBTag bool
	// FixDecoupleChannels enables the §8 fix for S5: CS and PS traffic
	// use separate channels with independent modulation, so a voice
	// call no longer downgrades the PS modulation.
	FixDecoupleChannels bool
}

func in3G(c fsm.Ctx, e fsm.Event) bool { return c.Get(names.GSys) == int(types.Sys3G) }

// returnTo4G performs the 3G→4G migration bookkeeping shared by the
// redirect, handover and (post-IDLE) reselection paths.
func returnTo4G(c fsm.Ctx, how string) {
	c.Set(names.GSys, int(types.Sys4G))
	c.Set(names.GWantReturn4G, 0)
	c.Set(names.GCSFBTag, 0)
	c.Trace("RRC 3G→4G switch via %s", how)
}

// DeviceSpec returns the device-side 3G RRC machine.
//
// The carrier's inter-system switching option is read from the
// GSwitchOpt global (names.SwitchRedirect / SwitchHandover /
// SwitchReselect), so one spec serves both operator profiles.
func DeviceSpec(o DeviceOptions) *fsm.Spec {
	return &fsm.Spec{
		Name:  "RRC3G-UE",
		Proto: types.ProtoRRC3G,
		Init:  Idle,
		Transitions: []fsm.Transition{
			// Arrival from 4G (CSFB fallback or mobility, §5.1.1): the
			// radio comes up in DCH when a high-rate data session
			// migrates along, else FACH. The setup-complete output lets
			// CM proceed with the call.
			{Name: "switch-in-dch", From: Idle, On: types.MsgInterSystemSwitchCommand, To: DCH,
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return c.Get(names.GPSData) == 1 },
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Output(types.NewMessage(types.MsgRRCConnectionSetupComplete, types.ProtoRRC3G))
					c.Trace("RRC connected at DCH after inter-system switch")
				}},
			{Name: "switch-in-fach", From: Idle, On: types.MsgInterSystemSwitchCommand, To: FACH,
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return c.Get(names.GPSData) == 0 },
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Output(types.NewMessage(types.MsgRRCConnectionSetupComplete, types.ProtoRRC3G))
					c.Trace("RRC connected at FACH after inter-system switch")
				}},

			// PS data session control: high-rate data drives DCH.
			{Name: "data-on-idle", From: Idle, On: types.MsgUserDataOn, To: DCH,
				Guard: in3G,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPSData, 1)
				}},
			{Name: "data-on-fach", From: FACH, On: types.MsgUserDataOn, To: DCH,
				Guard: in3G,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPSData, 1)
				}},
			{Name: "data-on-dch", From: DCH, On: types.MsgUserDataOn, To: fsm.Same,
				Guard: in3G,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPSData, 1)
				}},
			// Data ends: fall back toward IDLE (via inactivity). If a
			// deferred return-to-4G is pending under the reselection
			// policy, it can now proceed (the S3 deadlock breaks only
			// here — after the data session's lifetime, Table 6).
			{Name: "data-off", From: fsm.Any, On: types.MsgUserDataOff, To: Idle,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return in3G(c, e) && c.Get(names.GCallActive) == 0
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPSData, 0)
					c.Trace("RRC released to IDLE after data session end")
				}},
			// Data off while a call still holds the channel: stay
			// connected for the CS domain.
			{Name: "data-off-in-call", From: fsm.Any, On: types.MsgUserDataOff, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return in3G(c, e) && c.Get(names.GCallActive) == 1
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPSData, 0)
				}},

			// A CS call starts on the shared channel: S5's modulation
			// downgrade — unless the domains are decoupled (§8).
			{Name: "call-start-coupled", From: fsm.Any, On: types.MsgCallConnect, To: DCH,
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return !o.FixDecoupleChannels },
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GModulation, Mod16QAM)
					c.Trace("RRC: 64QAM disabled during CS voice call, shared channel at 16QAM (S5)")
				}},
			{Name: "call-start-decoupled", From: fsm.Any, On: types.MsgCallConnect, To: DCH,
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return o.FixDecoupleChannels },
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GModulation, Mod64QAM)
					c.Trace("RRC fix: CS on separate channel, PS keeps 64QAM")
				}},

			// A CSFB call ended (cross-layer release from CC): decide
			// the return to 4G per the carrier's switching option —
			// the crux of S3 (Figure 6).
			//
			// Fix: the CSFB tag forces a switch-capable state first.
			{Name: "csfb-end-tagged", From: fsm.Any, On: types.MsgCallRelease, To: Idle,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return o.FixCSFBTag && c.Get(names.GWantReturn4G) == 1
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GModulation, Mod64QAM)
					returnTo4G(c, "CSFB-tagged release (fix)")
				}},
			// Option 1: RRC connection release with redirect — always
			// works but disrupts the ongoing data session (OP-I).
			{Name: "csfb-end-redirect", From: fsm.Any, On: types.MsgCallRelease, To: Idle,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return !o.FixCSFBTag && c.Get(names.GWantReturn4G) == 1 &&
						c.Get(names.GSwitchOpt) == names.SwitchRedirect
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GModulation, Mod64QAM)
					returnTo4G(c, "RRC connection release with redirect")
					c.Trace("ongoing data session disrupted by release")
				}},
			// Option 2: inter-system handover — direct DCH→CONNECTED.
			{Name: "csfb-end-handover", From: fsm.Any, On: types.MsgCallRelease, To: Idle,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return !o.FixCSFBTag && c.Get(names.GWantReturn4G) == 1 &&
						c.Get(names.GSwitchOpt) == names.SwitchHandover
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GModulation, Mod64QAM)
					returnTo4G(c, "inter-system handover")
				}},
			// Option 3 (OP-II): inter-system cell reselection requires
			// IDLE. With the data session holding DCH, the device is
			// stuck in 3G — the S3 defect. The transition fires but
			// only restores the modulation; no switch happens.
			{Name: "csfb-end-stuck", From: DCH, On: types.MsgCallRelease, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return !o.FixCSFBTag && c.Get(names.GWantReturn4G) == 1 &&
						c.Get(names.GSwitchOpt) == names.SwitchReselect &&
						c.Get(names.GPSData) == 1
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GModulation, Mod64QAM)
					c.Trace("RRC stays at DCH for ongoing data; reselection impossible — stuck in 3G (S3)")
				}},
			// Reselection policy but no data: the state can drain to
			// IDLE and reselect.
			{Name: "csfb-end-reselect-idle", From: fsm.Any, On: types.MsgCallRelease, To: Idle,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return !o.FixCSFBTag && c.Get(names.GWantReturn4G) == 1 &&
						c.Get(names.GSwitchOpt) == names.SwitchReselect &&
						c.Get(names.GPSData) == 0
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GModulation, Mod64QAM)
					returnTo4G(c, "inter-system cell reselection")
				}},
			// A call release with no pending return (plain 3G call):
			// restore modulation, drain toward IDLE unless data holds
			// the channel.
			{Name: "call-end-data", From: fsm.Any, On: types.MsgCallRelease, To: DCH,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return c.Get(names.GWantReturn4G) == 0 && c.Get(names.GPSData) == 1
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GModulation, Mod64QAM)
				}},
			{Name: "call-end-idle", From: fsm.Any, On: types.MsgCallRelease, To: Idle,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return c.Get(names.GWantReturn4G) == 0 && c.Get(names.GPSData) == 0
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GModulation, Mod64QAM)
				}},

			// Device-triggered reselection from IDLE (the deferred S3
			// recovery once the data session finally ends).
			{Name: "reselect-4g", From: Idle, On: types.MsgInterSystemCellReselect, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return c.Get(names.GWantReturn4G) == 1 && in3G(c, e)
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					returnTo4G(c, "inter-system cell reselection")
				}},

			{Name: "power-off", From: fsm.Any, On: types.MsgPowerOff, To: Idle,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPSData, 0)
					c.Set(names.GModulation, Mod64QAM)
				}},
		},
	}
}
