package rrc3g

import (
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/names"
	"cnetverifier/internal/protocols/ptest"
	"cnetverifier/internal/types"
)

func TestSpecsValidate(t *testing.T) {
	opts := []DeviceOptions{{}, {FixCSFBTag: true}, {FixDecoupleChannels: true}, {FixCSFBTag: true, FixDecoupleChannels: true}}
	for _, o := range opts {
		if err := DeviceSpec(o).Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func newUE(t *testing.T, o DeviceOptions) (*fsm.Machine, *ptest.Ctx) {
	t.Helper()
	m := fsm.New(DeviceSpec(o))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys3G))
	c.Set(names.GModulation, Mod64QAM)
	return m, c
}

func TestSwitchInStates(t *testing.T) {
	// With a migrating data session the radio comes up at DCH.
	m, c := newUE(t, DeviceOptions{})
	c.Set(names.GPSData, 1)
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgInterSystemSwitchCommand, names.UERRC4G))
	ptest.WantState(t, m, DCH)
	if len(c.Outputs) != 1 || c.Outputs[0].Kind != types.MsgRRCConnectionSetupComplete {
		t.Fatalf("outputs = %v, want setup complete", c.OutputKinds())
	}

	// Without data: FACH.
	m2, c2 := newUE(t, DeviceOptions{})
	ptest.MustStep(t, m2, c2, ptest.FromNet(types.MsgInterSystemSwitchCommand, names.UERRC4G))
	ptest.WantState(t, m2, FACH)
}

func TestDataDrivesDCH(t *testing.T) {
	m, c := newUE(t, DeviceOptions{})
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDataOn))
	ptest.WantState(t, m, DCH)
	ptest.WantGlobal(t, c, names.GPSData, 1)
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDataOff))
	ptest.WantState(t, m, Idle)
	ptest.WantGlobal(t, c, names.GPSData, 0)
}

func TestDataOffDuringCallStaysConnected(t *testing.T) {
	m, c := newUE(t, DeviceOptions{})
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDataOn))
	c.Set(names.GCallActive, 1)
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDataOff))
	ptest.WantState(t, m, DCH)
	ptest.WantGlobal(t, c, names.GPSData, 0)
}

// S5: a CS call on the shared channel downgrades the modulation.
func TestS5ModulationDowngrade(t *testing.T) {
	m, c := newUE(t, DeviceOptions{})
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDataOn))
	ptest.WantGlobal(t, c, names.GModulation, Mod64QAM)
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCallConnect, names.UECM))
	ptest.WantGlobal(t, c, names.GModulation, Mod16QAM)
	// Plain call end (no return pending, data ongoing): restore 64QAM.
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCallRelease, names.UECM))
	ptest.WantGlobal(t, c, names.GModulation, Mod64QAM)
	ptest.WantState(t, m, DCH)
}

// S5 fix: decoupled channels keep 64QAM for PS during the call.
func TestS5FixDecoupledChannels(t *testing.T) {
	m, c := newUE(t, DeviceOptions{FixDecoupleChannels: true})
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDataOn))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCallConnect, names.UECM))
	ptest.WantGlobal(t, c, names.GModulation, Mod64QAM)
}

func csfbCallEnd(t *testing.T, o DeviceOptions, switchOpt int, dataOn bool) (*fsm.Machine, *ptest.Ctx) {
	t.Helper()
	m, c := newUE(t, o)
	c.Set(names.GSwitchOpt, switchOpt)
	c.Set(names.GCSFBTag, 1)
	if dataOn {
		c.Set(names.GPSData, 1)
		ptest.MustStep(t, m, c, ptest.FromNet(types.MsgInterSystemSwitchCommand, names.UERRC4G))
		ptest.WantState(t, m, DCH)
	} else {
		ptest.MustStep(t, m, c, ptest.FromNet(types.MsgInterSystemSwitchCommand, names.UERRC4G))
		ptest.WantState(t, m, FACH)
	}
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCallConnect, names.UECM))
	c.Set(names.GCallActive, 0)
	c.Set(names.GWantReturn4G, 1) // CC raised the return obligation
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCallRelease, names.UECM))
	return m, c
}

// OP-I behavior: release-with-redirect always returns to 4G.
func TestS3RedirectReturns(t *testing.T) {
	_, c := csfbCallEnd(t, DeviceOptions{}, names.SwitchRedirect, true)
	ptest.WantGlobal(t, c, names.GSys, int(types.Sys4G))
	ptest.WantGlobal(t, c, names.GWantReturn4G, 0)
}

func TestS3HandoverReturns(t *testing.T) {
	_, c := csfbCallEnd(t, DeviceOptions{}, names.SwitchHandover, true)
	ptest.WantGlobal(t, c, names.GSys, int(types.Sys4G))
}

// OP-II behavior (S3 defect): reselection + ongoing data = stuck in 3G.
func TestS3ReselectStuck(t *testing.T) {
	m, c := csfbCallEnd(t, DeviceOptions{}, names.SwitchReselect, true)
	ptest.WantState(t, m, DCH)
	ptest.WantGlobal(t, c, names.GSys, int(types.Sys3G))
	ptest.WantGlobal(t, c, names.GWantReturn4G, 1) // obligation unmet
	// Modulation restored even while stuck.
	ptest.WantGlobal(t, c, names.GModulation, Mod64QAM)

	// The deadlock breaks only when the data session ends (Table 6).
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDataOff))
	ptest.WantState(t, m, Idle)
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgInterSystemCellReselect))
	ptest.WantGlobal(t, c, names.GSys, int(types.Sys4G))
	ptest.WantGlobal(t, c, names.GWantReturn4G, 0)
}

// Reselection without data drains to IDLE and returns immediately.
func TestS3ReselectNoData(t *testing.T) {
	_, c := csfbCallEnd(t, DeviceOptions{}, names.SwitchReselect, false)
	ptest.WantGlobal(t, c, names.GSys, int(types.Sys4G))
}

// S3 fix: the CSFB tag forces the return even under reselection policy
// with ongoing data.
func TestS3FixCSFBTag(t *testing.T) {
	m, c := csfbCallEnd(t, DeviceOptions{FixCSFBTag: true}, names.SwitchReselect, true)
	ptest.WantState(t, m, Idle)
	ptest.WantGlobal(t, c, names.GSys, int(types.Sys4G))
	ptest.WantGlobal(t, c, names.GWantReturn4G, 0)
	ptest.WantGlobal(t, c, names.GCSFBTag, 0)
}

func TestReselectRequiresIdle(t *testing.T) {
	m, c := newUE(t, DeviceOptions{})
	c.Set(names.GWantReturn4G, 1)
	c.Set(names.GPSData, 1)
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgInterSystemSwitchCommand, names.UERRC4G))
	ptest.WantState(t, m, DCH)
	// Reselection event in DCH must not fire.
	ptest.MustNotStep(t, m, c, fsm.Ev(types.MsgInterSystemCellReselect))
	ptest.WantGlobal(t, c, names.GSys, int(types.Sys3G))
}

func TestPowerOffResets(t *testing.T) {
	m, c := newUE(t, DeviceOptions{})
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDataOn))
	c.Set(names.GModulation, Mod16QAM)
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOff))
	ptest.WantState(t, m, Idle)
	ptest.WantGlobal(t, c, names.GPSData, 0)
	ptest.WantGlobal(t, c, names.GModulation, Mod64QAM)
}
