// Package sm models the 3G Session Management protocol (SM, TS 24.008):
// activation, modification and deactivation of the PDP context that
// carries 3G packet service.
//
// Unlike the 4G EPS bearer context, the PDP context is optional — a 3G
// user can still use CS voice without it, so deactivating it is common
// (Table 3 lists the causes). S1 (§5.1) arises exactly because 3G may
// delete this context while 4G later requires it. S4's data side (§6.1)
// arises because SM service requests are blocked behind GMM
// routing-area updates.
package sm

import (
	"cnetverifier/internal/fsm"
	"cnetverifier/internal/names"
	"cnetverifier/internal/types"
)

// Device-side SM states.
const (
	UEInactive fsm.State = "SM-PDP-INACTIVE"
	UEPending  fsm.State = "SM-PDP-PENDING"
	UEActive   fsm.State = "SM-PDP-ACTIVE"
)

// SGSN-side SM states.
const (
	SGSNInactive fsm.State = "SGSN-PDP-INACTIVE"
	SGSNActive   fsm.State = "SGSN-PDP-ACTIVE"
)

// DeviceOptions configure the device-side machine.
type DeviceOptions struct {
	// FixParallelUpdate enables the §8 fix for S4's PS side: data
	// requests proceed even while a routing-area update runs.
	FixParallelUpdate bool
	// FixKeepContext enables the §8 cross-system remedy for avoidable
	// deactivations: "QoS not accepted" downgrades the QoS instead of
	// deleting the context, and "incompatible PDP context" modifies it
	// (§5.1.2, Table 3 remedies).
	FixKeepContext bool
	// Peer is the SGSN SM process (default names.SGSNSM).
	Peer string
}

// SGSNOptions configure the network-side machine.
type SGSNOptions struct {
	// FixKeepContext mirrors the device-side remedy for
	// network-originated avoidable causes.
	FixKeepContext bool
	// Peer is the device SM process (default names.UESM).
	Peer string
}

func avoidable(c types.Cause) bool {
	switch c {
	case types.CauseQoSNotAccepted, types.CauseIncompatiblePDPContext, types.CauseRegularDeactivation:
		return true
	}
	return false
}

// DeviceSpec returns the device-side SM machine.
//
// Environment events drive it: MsgUserDataOn requests PDP activation,
// MsgDeactivatePDPRequest with a Table 3 cause models device-originated
// deactivation, and MsgWiFiAvailable models the §5.1.3 phone quirk of
// deactivating all PDP contexts when WiFi takes over.
func DeviceSpec(o DeviceOptions) *fsm.Spec {
	if o.Peer == "" {
		o.Peer = names.SGSNSM
	}
	peer := o.Peer

	deactivate := func(c fsm.Ctx, e fsm.Event) {
		c.Set(names.GPDP, 0)
		c.Send(peer, types.NewMessage(types.MsgDeactivatePDPRequest, types.ProtoSM).WithCause(e.Msg.Cause))
		c.Trace("SM PDP context deactivated: %s", e.Msg.Cause)
	}

	return &fsm.Spec{
		Name:  "SM-UE",
		Proto: types.ProtoSM,
		Init:  UEInactive,
		Transitions: []fsm.Transition{
			// S4 defect path: a data request during an RAU is delayed
			// (head-of-line blocking, §6.1). The request is still sent —
			// after the delay — so the state advances, but the delay is
			// recorded for CallService/DataService observation.
			{Name: "activate-delayed", From: UEInactive, On: types.MsgUserDataOn, To: UEPending,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return c.Get(names.GSys) == int(types.Sys3G) && c.Get(names.GRAUInProgress) == 1 && !o.FixParallelUpdate
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GDataDelayed, 1)
					c.Send(peer, types.NewMessage(types.MsgActivatePDPRequest, types.ProtoSM))
					c.Trace("SM request delayed behind routing area update (S4)")
				}},
			{Name: "activate", From: UEInactive, On: types.MsgUserDataOn, To: UEPending,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return c.Get(names.GSys) == int(types.Sys3G) && (c.Get(names.GRAUInProgress) == 0 || o.FixParallelUpdate)
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgActivatePDPRequest, types.ProtoSM))
					c.Trace("SM PDP activation requested")
				}},

			{Name: "activate-accept", From: UEPending, On: types.MsgActivatePDPAccept, To: UEActive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPDP, 1)
					c.Trace("SM PDP context active")
				}},
			{Name: "activate-reject", From: UEPending, On: types.MsgActivatePDPReject, To: UEInactive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPDP, 0)
				}},

			// Device-originated deactivation with a Table 3 cause
			// (environment events carry an empty From). The guard is on
			// the shared GPDP context, not the machine state, because a
			// context migrated in from 4G (§5.1.1) is live without the
			// machine ever having run the activation flow. Under
			// FixKeepContext, avoidable causes modify rather than delete.
			{Name: "deact-keep", From: fsm.Any, On: types.MsgDeactivatePDPRequest, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return e.Msg.From == "" && c.Get(names.GPDP) == 1 && o.FixKeepContext && avoidable(e.Msg.Cause)
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgModifyPDPRequest, types.ProtoSM).WithCause(e.Msg.Cause))
					c.Trace("SM fix: PDP context modified instead of deleted (%s)", e.Msg.Cause)
				}},
			{Name: "deact", From: fsm.Any, On: types.MsgDeactivatePDPRequest, To: UEInactive,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return e.Msg.From == "" && c.Get(names.GPDP) == 1 && !(o.FixKeepContext && avoidable(e.Msg.Cause))
				},
				Action: deactivate},

			// Network-originated deactivation arriving from the SGSN:
			// acknowledge and drop the context.
			{Name: "deact-from-net", From: fsm.Any, On: types.MsgDeactivatePDPRequest, To: UEInactive,
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return e.Msg.From != "" },
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPDP, 0)
					c.Send(peer, types.NewMessage(types.MsgDeactivatePDPAccept, types.ProtoSM))
					c.Trace("SM: network deactivated PDP context (%s)", e.Msg.Cause)
				}},

			// The WiFi-offload quirk (§5.1.3): some phones deactivate
			// all PDP contexts when the user switches to WiFi.
			{Name: "deact-wifi", From: fsm.Any, On: types.MsgWiFiAvailable, To: UEInactive,
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return c.Get(names.GPDP) == 1 },
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPDP, 0)
					c.Send(peer, types.NewMessage(types.MsgDeactivatePDPRequest, types.ProtoSM).WithCause(types.CauseRegularDeactivation))
					c.Trace("SM: PDP contexts deactivated on WiFi offload")
				}},

			// SGSN acknowledged a device-originated deactivation.
			{Name: "deact-ack", From: fsm.Any, On: types.MsgDeactivatePDPAccept, To: UEInactive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPDP, 0)
				}},

			// Modification accepted: context retained.
			{Name: "modify-accept", From: UEActive, On: types.MsgModifyPDPAccept, To: fsm.Same},

			// Network-originated modification (the SGSN-side keep-context
			// remedy): accept it, retaining the context.
			{Name: "modify-from-net", From: fsm.Any, On: types.MsgModifyPDPRequest, To: fsm.Same,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgModifyPDPAccept, types.ProtoSM))
				}},

			{Name: "power-off", From: fsm.Any, On: types.MsgPowerOff, To: UEInactive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPDP, 0)
				}},
		},
	}
}

// SGSNSpec returns the network-side SM machine.
func SGSNSpec(o SGSNOptions) *fsm.Spec {
	if o.Peer == "" {
		o.Peer = names.UESM
	}
	peer := o.Peer

	return &fsm.Spec{
		Name:  "SM-SGSN",
		Proto: types.ProtoSM,
		Init:  SGSNInactive,
		Transitions: []fsm.Transition{
			{Name: "activate", From: SGSNInactive, On: types.MsgActivatePDPRequest, To: SGSNActive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPDP, 1)
					c.Send(peer, types.NewMessage(types.MsgActivatePDPAccept, types.ProtoSM))
				}},
			{Name: "activate-dup", From: SGSNActive, On: types.MsgActivatePDPRequest, To: fsm.Same,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgActivatePDPAccept, types.ProtoSM))
				}},

			// UE-originated deactivation.
			{Name: "ue-deact", From: fsm.Any, On: types.MsgDeactivatePDPRequest, To: SGSNInactive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPDP, 0)
					c.Send(peer, types.NewMessage(types.MsgDeactivatePDPAccept, types.ProtoSM))
				}},

			// Network-originated deactivation with a Table 3 cause,
			// driven by an operator-scenario event carrying the cause.
			// Guarded on GPDP so migrated-in contexts (§5.1.1) are
			// covered too.
			{Name: "net-deact-keep", From: fsm.Any, On: types.MsgNetDetachOrder, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return c.Get(names.GPDP) == 1 && o.FixKeepContext && avoidable(e.Msg.Cause)
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgModifyPDPRequest, types.ProtoSM).WithCause(e.Msg.Cause))
					c.Trace("SGSN fix: PDP context modified instead of deleted (%s)", e.Msg.Cause)
				}},
			{Name: "net-deact", From: fsm.Any, On: types.MsgNetDetachOrder, To: SGSNInactive,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return c.Get(names.GPDP) == 1 && !(o.FixKeepContext && avoidable(e.Msg.Cause))
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPDP, 0)
					c.Send(peer, types.NewMessage(types.MsgDeactivatePDPRequest, types.ProtoSM).WithCause(e.Msg.Cause))
					c.Trace("SGSN: PDP context deactivated (%s)", e.Msg.Cause)
				}},

			// UE accepted a network-originated deactivation.
			{Name: "deact-ack", From: fsm.Any, On: types.MsgDeactivatePDPAccept, To: SGSNInactive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPDP, 0)
				}},

			// Modification request (from the keep-context fix).
			{Name: "modify", From: SGSNActive, On: types.MsgModifyPDPRequest, To: fsm.Same,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgModifyPDPAccept, types.ProtoSM))
				}},
			{Name: "modify-inactive", From: SGSNInactive, On: types.MsgModifyPDPRequest, To: fsm.Same},

			// Device accepted a network-originated modification.
			{Name: "modify-accept", From: fsm.Any, On: types.MsgModifyPDPAccept, To: fsm.Same},
		},
	}
}
