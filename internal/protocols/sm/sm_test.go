package sm

import (
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/names"
	"cnetverifier/internal/protocols/ptest"
	"cnetverifier/internal/types"
)

func TestSpecsValidate(t *testing.T) {
	for _, o := range []DeviceOptions{{}, {FixParallelUpdate: true}, {FixKeepContext: true}} {
		if err := DeviceSpec(o).Validate(); err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range []SGSNOptions{{}, {FixKeepContext: true}} {
		if err := SGSNSpec(o).Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func activeDevice(t *testing.T, o DeviceOptions) (*fsm.Machine, *ptest.Ctx) {
	t.Helper()
	m := fsm.New(DeviceSpec(o))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys3G))
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDataOn))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgActivatePDPAccept, names.SGSNSM))
	ptest.WantState(t, m, UEActive)
	return m, c
}

func TestDeviceActivationFlow(t *testing.T) {
	m, c := activeDevice(t, DeviceOptions{})
	_ = m
	ptest.WantGlobal(t, c, names.GPDP, 1)
	ptest.WantSent(t, c, 0, types.MsgActivatePDPRequest)
}

func TestDeviceActivationRequires3G(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys4G))
	ptest.MustNotStep(t, m, c, fsm.Ev(types.MsgUserDataOn))
}

// S4 PS side: a data request during an RAU is delayed.
func TestDeviceS4DataDelayed(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys3G))
	c.Set(names.GRAUInProgress, 1)
	tr := ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDataOn))
	if tr.Name != "activate-delayed" {
		t.Fatalf("transition = %s, want activate-delayed", tr.Name)
	}
	ptest.WantGlobal(t, c, names.GDataDelayed, 1)
	// The request is still sent (after the delay).
	ptest.WantSent(t, c, 0, types.MsgActivatePDPRequest)
}

// S4 PS fix: with parallel updates the request proceeds undelayed.
func TestDeviceS4FixNoDelay(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{FixParallelUpdate: true}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys3G))
	c.Set(names.GRAUInProgress, 1)
	tr := ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserDataOn))
	if tr.Name != "activate" {
		t.Fatalf("transition = %s, want activate", tr.Name)
	}
	ptest.WantGlobal(t, c, names.GDataDelayed, 0)
}

// Device-originated deactivation for each Table 3 cause.
func TestDeviceDeactivationCauses(t *testing.T) {
	for _, row := range types.PDPDeactivationCauses() {
		if row.Originator&types.OriginDevice == 0 {
			continue
		}
		m, c := activeDevice(t, DeviceOptions{})
		ptest.MustStep(t, m, c, ptest.EnvCause(types.MsgDeactivatePDPRequest, row.Cause))
		ptest.WantState(t, m, UEInactive)
		ptest.WantGlobal(t, c, names.GPDP, 0)
		if got := c.LastSent(); got.Kind != types.MsgDeactivatePDPRequest || got.Cause != row.Cause {
			t.Fatalf("cause %s: last sent = %v", row.Cause, got)
		}
	}
}

// FixKeepContext: avoidable causes modify instead of delete (§5.1.2).
func TestDeviceFixKeepContext(t *testing.T) {
	m, c := activeDevice(t, DeviceOptions{FixKeepContext: true})
	tr := ptest.MustStep(t, m, c, ptest.EnvCause(types.MsgDeactivatePDPRequest, types.CauseQoSNotAccepted))
	if tr.Name != "deact-keep" {
		t.Fatalf("transition = %s, want deact-keep", tr.Name)
	}
	ptest.WantState(t, m, UEActive)
	ptest.WantGlobal(t, c, names.GPDP, 1)
	if got := c.LastSent().Kind; got != types.MsgModifyPDPRequest {
		t.Fatalf("last sent = %s, want ModifyPDPRequest", got)
	}
	// Unavoidable causes still deactivate even with the fix.
	ptest.MustStep(t, m, c, ptest.EnvCause(types.MsgDeactivatePDPRequest, types.CauseInsufficientResources))
	ptest.WantState(t, m, UEInactive)
	ptest.WantGlobal(t, c, names.GPDP, 0)
}

// The WiFi-offload quirk of §5.1.3.
func TestDeviceWiFiOffloadQuirk(t *testing.T) {
	m, c := activeDevice(t, DeviceOptions{})
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgWiFiAvailable))
	ptest.WantState(t, m, UEInactive)
	ptest.WantGlobal(t, c, names.GPDP, 0)
}

// Network-originated deactivation must be acknowledged.
func TestDeviceNetworkDeactivation(t *testing.T) {
	m, c := activeDevice(t, DeviceOptions{})
	ptest.MustStep(t, m, c, ptest.FromNetCause(types.MsgDeactivatePDPRequest, names.SGSNSM, types.CauseOperatorDeterminedBarring))
	ptest.WantState(t, m, UEInactive)
	ptest.WantGlobal(t, c, names.GPDP, 0)
	if got := c.LastSent().Kind; got != types.MsgDeactivatePDPAccept {
		t.Fatalf("last sent = %s, want DeactivatePDPAccept", got)
	}
}

func TestSGSNActivation(t *testing.T) {
	m := fsm.New(SGSNSpec(SGSNOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgActivatePDPRequest, names.UESM))
	ptest.WantState(t, m, SGSNActive)
	ptest.WantGlobal(t, c, names.GPDP, 1)
	ptest.WantSent(t, c, 0, types.MsgActivatePDPAccept)

	// Duplicate request is idempotent.
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgActivatePDPRequest, names.UESM))
	ptest.WantState(t, m, SGSNActive)
}

func TestSGSNNetworkDeactivation(t *testing.T) {
	m := fsm.New(SGSNSpec(SGSNOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgActivatePDPRequest, names.UESM))
	ptest.MustStep(t, m, c, ptest.EnvCause(types.MsgNetDetachOrder, types.CauseIncompatiblePDPContext))
	ptest.WantState(t, m, SGSNInactive)
	ptest.WantGlobal(t, c, names.GPDP, 0)
	if got := c.LastSent(); got.Kind != types.MsgDeactivatePDPRequest || got.Cause != types.CauseIncompatiblePDPContext {
		t.Fatalf("last sent = %v", got)
	}
}

func TestSGSNFixKeepContext(t *testing.T) {
	m := fsm.New(SGSNSpec(SGSNOptions{FixKeepContext: true}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgActivatePDPRequest, names.UESM))
	tr := ptest.MustStep(t, m, c, ptest.EnvCause(types.MsgNetDetachOrder, types.CauseIncompatiblePDPContext))
	if tr.Name != "net-deact-keep" {
		t.Fatalf("transition = %s, want net-deact-keep", tr.Name)
	}
	ptest.WantState(t, m, SGSNActive)
	ptest.WantGlobal(t, c, names.GPDP, 1)
	if got := c.LastSent().Kind; got != types.MsgModifyPDPRequest {
		t.Fatalf("last sent = %s, want ModifyPDPRequest", got)
	}
	// Barring is not avoidable: deactivates even with the fix.
	ptest.MustStep(t, m, c, ptest.EnvCause(types.MsgNetDetachOrder, types.CauseOperatorDeterminedBarring))
	ptest.WantState(t, m, SGSNInactive)
}

func TestSGSNUEDeactivation(t *testing.T) {
	m := fsm.New(SGSNSpec(SGSNOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgActivatePDPRequest, names.UESM))
	ptest.MustStep(t, m, c, ptest.FromNetCause(types.MsgDeactivatePDPRequest, names.UESM, types.CauseRegularDeactivation))
	ptest.WantState(t, m, SGSNInactive)
	ptest.WantGlobal(t, c, names.GPDP, 0)
	if got := c.LastSent().Kind; got != types.MsgDeactivatePDPAccept {
		t.Fatalf("last sent = %s, want DeactivatePDPAccept", got)
	}
}

func TestSGSNModify(t *testing.T) {
	m := fsm.New(SGSNSpec(SGSNOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgActivatePDPRequest, names.UESM))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgModifyPDPRequest, names.UESM))
	ptest.WantState(t, m, SGSNActive)
	if got := c.LastSent().Kind; got != types.MsgModifyPDPAccept {
		t.Fatalf("last sent = %s, want ModifyPDPAccept", got)
	}
}
