package sm

import (
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/protocols/ptest"
)

// Random-event robustness: every spec variant survives arbitrary
// signal sequences without leaving its declared state set.
func TestFuzzSpecs(t *testing.T) {
	for i, spec := range fuzzSpecs() {
		for seed := int64(1); seed <= 4; seed++ {
			ptest.Fuzz(t, spec, 400, seed+int64(i)*100)
		}
	}
}

func fuzzSpecs() []*fsm.Spec {
	return []*fsm.Spec{
		DeviceSpec(DeviceOptions{}),
		DeviceSpec(DeviceOptions{FixParallelUpdate: true, FixKeepContext: true}),
		SGSNSpec(SGSNOptions{}),
		SGSNSpec(SGSNOptions{FixKeepContext: true}),
	}
}
