// Package gmm models the 3G PS Mobility Management protocol (GMM,
// TS 24.008), running between the device and the 3G gateways (SGSN).
//
// GMM performs the 3G PS attach, routing-area updates (RAU), and the
// PS side of inter-system switching: when the device arrives from 4G it
// registers via an RAU during which the 4G EPS bearer context is
// translated into a 3G PDP context (§5.1.1). Its RAU-in-progress state
// is also the source of the PS-side head-of-line blocking of S4 (§6.1).
package gmm

import (
	"cnetverifier/internal/fsm"
	"cnetverifier/internal/names"
	"cnetverifier/internal/types"
)

// Device-side GMM states.
const (
	UEDeregistered fsm.State = "GMM-DEREGISTERED"
	UEAttaching    fsm.State = "GMM-REGISTERED-INITIATED"
	UERegistered   fsm.State = "GMM-REGISTERED"
	UERAUPending   fsm.State = "GMM-RAU-INITIATED"
)

// SGSN-side GMM states.
const (
	SGSNDeregistered fsm.State = "SGSN-DEREGISTERED"
	SGSNRegistered   fsm.State = "SGSN-REGISTERED"
)

// DeviceOptions configure the device-side machine.
type DeviceOptions struct {
	// FixParallelUpdate enables the §8 layer-extension fix for S4's PS
	// side: outgoing data requests are not blocked behind a
	// routing-area update (GMM keeps GRAUInProgress clear for SM).
	FixParallelUpdate bool
	// Peer is the SGSN GMM process (default names.SGSNGMM).
	Peer string
}

// SGSNOptions configure the network-side machine.
type SGSNOptions struct {
	// Peer is the device GMM process (default names.UEGMM).
	Peer string
}

// DeviceSpec returns the device-side GMM machine.
func DeviceSpec(o DeviceOptions) *fsm.Spec {
	if o.Peer == "" {
		o.Peer = names.SGSNGMM
	}
	peer := o.Peer

	startRAU := func(c fsm.Ctx, e fsm.Event) {
		if !o.FixParallelUpdate {
			c.Set(names.GRAUInProgress, 1)
		}
		c.Send(peer, types.NewMessage(types.MsgRoutingAreaUpdateRequest, types.ProtoGMM))
		c.Trace("GMM routing area update initiated")
	}

	return &fsm.Spec{
		Name:  "GMM-UE",
		Proto: types.ProtoGMM,
		Init:  UEDeregistered,
		Transitions: []fsm.Transition{
			// 3G PS attach at power-on.
			{Name: "attach-3g", From: UEDeregistered, On: types.MsgPowerOn, To: UEAttaching,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GSys, int(types.Sys3G))
					c.Send(peer, types.NewMessage(types.MsgAttachRequest, types.ProtoGMM))
					c.Trace("GMM attach initiated")
				}},
			{Name: "attach-accept", From: UEAttaching, On: types.MsgAttachAccept, To: UERegistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GReg3GPS, 1)
				}},
			{Name: "attach-reject", From: UEAttaching, On: types.MsgAttachReject, To: UEDeregistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GReg3GPS, 0)
					c.Set(names.GAttachRejected, 1)
				}},

			// 4G→3G inter-system switch (§5.1.1): the device arrives
			// from 4G and registers via an RAU; the SGSN migrates the
			// EPS bearer context into a PDP context.
			{Name: "switch-from-4g", From: UEDeregistered, On: types.MsgInterSystemSwitchCommand, To: UERAUPending,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return c.Get(names.GSys) == int(types.Sys4G) && c.Get(names.GReg4G) == 1
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GSys, int(types.Sys3G))
					startRAU(c, e)
					c.Trace("GMM 4G→3G switch")
				}},
			// Same arrival, but the radio layer (4G RRC) already
			// executed the switch and set the serving system to 3G
			// before notifying the mobility layers (Figure 3 step 2).
			{Name: "switch-from-4g-rrc", From: UEDeregistered, On: types.MsgInterSystemSwitchCommand, To: UERAUPending,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return e.Msg.From != "" && c.Get(names.GSys) == int(types.Sys3G) && c.Get(names.GReg4G) == 1
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					startRAU(c, e)
					c.Trace("GMM routing area update after RRC-executed switch")
				}},

			// Routing-area update triggers (Table 4 rows 4–6).
			{Name: "rau-mobility", From: UERegistered, On: types.MsgUserMove, To: UERAUPending,
				Guard:  func(c fsm.Ctx, e fsm.Event) bool { return c.Get(names.GSys) == int(types.Sys3G) },
				Action: startRAU},
			{Name: "rau-periodic", From: UERegistered, On: types.MsgPeriodicTimer, To: UERAUPending,
				Guard:  func(c fsm.Ctx, e fsm.Event) bool { return c.Get(names.GSys) == int(types.Sys3G) },
				Action: startRAU},

			{Name: "rau-accept", From: UERAUPending, On: types.MsgRoutingAreaUpdateAccept, To: UERegistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GRAUInProgress, 0)
					c.Set(names.GReg3GPS, 1)
					// Local context migration on the device: the EPS
					// bearer it held becomes a PDP context (§5.1.1).
					// Under a shared context store the SGSN already
					// performed the translation and this is a no-op;
					// with split device/core stores (the socket
					// prototype) the device updates its own view here.
					if c.Get(names.GEPS) == 1 {
						c.Set(names.GEPS, 0)
						c.Set(names.GPDP, 1)
					}
					c.Trace("GMM routing area update complete")
				}},
			{Name: "rau-reject", From: UERAUPending, On: types.MsgRoutingAreaUpdateReject, To: UEDeregistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GRAUInProgress, 0)
					c.Set(names.GReg3GPS, 0)
					c.Set(names.GDetachedByNet, 1)
					c.Trace("GMM RAU rejected: %s", e.Msg.Cause)
				}},

			// Network-initiated detach: a deliberate operator decision
			// the device complies with; not a PacketService_OK
			// violation (§3.2.2 exempts explicit deactivation).
			{Name: "net-detach", From: fsm.Any, On: types.MsgDetachRequest, To: UEDeregistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GReg3GPS, 0)
					c.Send(peer, types.NewMessage(types.MsgDetachAccept, types.ProtoGMM))
					c.Trace("GMM detached on network order: %s", e.Msg.Cause)
				}},

			// Acknowledgment of the UE-initiated detach (sent below on
			// power-off); it arrives while already deregistered.
			{Name: "detach-accept", From: UEDeregistered, On: types.MsgDetachAccept, To: fsm.Same},

			{Name: "power-off", From: fsm.Any, On: types.MsgPowerOff, To: UEDeregistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GReg3GPS, 0)
					c.Set(names.GRAUInProgress, 0)
					c.Set(names.GSys, int(types.SysNone))
					c.Send(peer, types.NewMessage(types.MsgDetachRequest, types.ProtoGMM).WithCause(types.CauseUserPowerOff))
				}},
		},
	}
}

// SGSNSpec returns the network-side GMM machine.
func SGSNSpec(o SGSNOptions) *fsm.Spec {
	if o.Peer == "" {
		o.Peer = names.UEGMM
	}
	peer := o.Peer

	return &fsm.Spec{
		Name:  "GMM-SGSN",
		Proto: types.ProtoGMM,
		Init:  SGSNDeregistered,
		Transitions: []fsm.Transition{
			{Name: "attach-accept", From: SGSNDeregistered, On: types.MsgAttachRequest, To: SGSNRegistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgAttachAccept, types.ProtoGMM))
				}},

			// RAU with context migration: an arriving 4G EPS bearer
			// context is translated into a 3G PDP context and the 4G
			// resources are released (§5.1.1 step 2).
			{Name: "rau-migrate", From: fsm.Any, On: types.MsgRoutingAreaUpdateRequest, To: SGSNRegistered,
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return c.Get(names.GEPS) == 1 },
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GEPS, 0)
					c.Set(names.GPDP, 1)
					c.Send(peer, types.NewMessage(types.MsgRoutingAreaUpdateAccept, types.ProtoGMM))
					c.Trace("SGSN: EPS bearer context migrated to PDP context")
				}},
			// Plain RAU (no migration needed).
			{Name: "rau-accept", From: fsm.Any, On: types.MsgRoutingAreaUpdateRequest, To: SGSNRegistered,
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return c.Get(names.GEPS) == 0 },
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgRoutingAreaUpdateAccept, types.ProtoGMM))
				}},

			// Operator-scenario detach (resource constraints, §2).
			{Name: "net-detach", From: SGSNRegistered, On: types.MsgNetDetachOrder, To: SGSNDeregistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgDetachRequest, types.ProtoGMM).WithCause(types.CauseNetworkFailure))
				}},
			{Name: "ue-detach", From: fsm.Any, On: types.MsgDetachRequest, To: SGSNDeregistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgDetachAccept, types.ProtoGMM))
				}},

			// Acknowledgment of the network-initiated detach above.
			{Name: "detach-accept", From: SGSNDeregistered, On: types.MsgDetachAccept, To: fsm.Same},
		},
	}
}
