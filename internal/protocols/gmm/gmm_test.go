package gmm

import (
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/names"
	"cnetverifier/internal/protocols/ptest"
	"cnetverifier/internal/types"
)

func TestSpecsValidate(t *testing.T) {
	if err := DeviceSpec(DeviceOptions{}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DeviceSpec(DeviceOptions{FixParallelUpdate: true}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := SGSNSpec(SGSNOptions{}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceAttachFlow(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
	ptest.WantState(t, m, UEAttaching)
	ptest.WantGlobal(t, c, names.GSys, int(types.Sys3G))
	ptest.WantSent(t, c, 0, types.MsgAttachRequest)
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachAccept, names.SGSNGMM))
	ptest.WantState(t, m, UERegistered)
	ptest.WantGlobal(t, c, names.GReg3GPS, 1)
}

func TestDeviceSwitchFrom4G(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys4G))
	c.Set(names.GReg4G, 1)
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgInterSystemSwitchCommand))
	ptest.WantState(t, m, UERAUPending)
	ptest.WantGlobal(t, c, names.GSys, int(types.Sys3G))
	ptest.WantGlobal(t, c, names.GRAUInProgress, 1)
	ptest.WantSent(t, c, 0, types.MsgRoutingAreaUpdateRequest)

	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgRoutingAreaUpdateAccept, names.SGSNGMM))
	ptest.WantState(t, m, UERegistered)
	ptest.WantGlobal(t, c, names.GRAUInProgress, 0)
}

func TestDeviceSwitchGuardRequiresRegistered4G(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys4G))
	c.Set(names.GReg4G, 0)
	ptest.MustNotStep(t, m, c, fsm.Ev(types.MsgInterSystemSwitchCommand))
}

func TestDeviceRAUTriggers(t *testing.T) {
	for _, trigger := range []types.MsgKind{types.MsgUserMove, types.MsgPeriodicTimer} {
		m := fsm.New(DeviceSpec(DeviceOptions{}))
		c := ptest.NewCtx()
		ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
		ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachAccept, names.SGSNGMM))
		ptest.MustStep(t, m, c, fsm.Ev(trigger))
		ptest.WantState(t, m, UERAUPending)
		ptest.WantGlobal(t, c, names.GRAUInProgress, 1)
	}
}

func TestDeviceFixParallelKeepsRAUFlagClear(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{FixParallelUpdate: true}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachAccept, names.SGSNGMM))
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserMove))
	// Fix: SM requests are not blocked, so the blocking flag stays 0.
	ptest.WantGlobal(t, c, names.GRAUInProgress, 0)
	// The update itself still runs.
	if got := c.LastSent().Kind; got != types.MsgRoutingAreaUpdateRequest {
		t.Fatalf("last sent = %s, want RAURequest", got)
	}
}

func TestDeviceRAUReject(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachAccept, names.SGSNGMM))
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserMove))
	ptest.MustStep(t, m, c, ptest.FromNetCause(types.MsgRoutingAreaUpdateReject, names.SGSNGMM, types.CauseNetworkFailure))
	ptest.WantState(t, m, UEDeregistered)
	ptest.WantGlobal(t, c, names.GDetachedByNet, 1)
}

func TestDeviceNetworkDetach(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachAccept, names.SGSNGMM))
	ptest.MustStep(t, m, c, ptest.FromNetCause(types.MsgDetachRequest, names.SGSNGMM, types.CauseNetworkFailure))
	ptest.WantState(t, m, UEDeregistered)
	// An explicit operator-ordered detach is complied with, not
	// counted as an un-consented service loss.
	ptest.WantGlobal(t, c, names.GDetachedByNet, 0)
	if got := c.LastSent().Kind; got != types.MsgDetachAccept {
		t.Fatalf("last sent = %s, want DetachAccept", got)
	}
}

func TestSGSNAttachAndRAU(t *testing.T) {
	m := fsm.New(SGSNSpec(SGSNOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachRequest, names.UEGMM))
	ptest.WantState(t, m, SGSNRegistered)
	ptest.WantSent(t, c, 0, types.MsgAttachAccept)

	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgRoutingAreaUpdateRequest, names.UEGMM))
	if got := c.LastSent().Kind; got != types.MsgRoutingAreaUpdateAccept {
		t.Fatalf("last sent = %s, want RAUAccept", got)
	}
}

// §5.1.1: the SGSN migrates an arriving EPS bearer context into a PDP
// context during the RAU.
func TestSGSNContextMigration(t *testing.T) {
	m := fsm.New(SGSNSpec(SGSNOptions{}))
	c := ptest.NewCtx()
	c.Set(names.GEPS, 1)
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgRoutingAreaUpdateRequest, names.UEGMM))
	ptest.WantGlobal(t, c, names.GEPS, 0)
	ptest.WantGlobal(t, c, names.GPDP, 1)
	ptest.WantState(t, m, SGSNRegistered)
}

func TestSGSNNetworkDetach(t *testing.T) {
	m := fsm.New(SGSNSpec(SGSNOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachRequest, names.UEGMM))
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgNetDetachOrder))
	ptest.WantState(t, m, SGSNDeregistered)
	if got := c.LastSent().Kind; got != types.MsgDetachRequest {
		t.Fatalf("last sent = %s, want DetachRequest", got)
	}
}
