package emm

import (
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/names"
	"cnetverifier/internal/protocols/ptest"
	"cnetverifier/internal/types"
)

func TestSpecsValidate(t *testing.T) {
	if err := DeviceSpec(DeviceOptions{}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := MMESpec(MMEOptions{}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DeviceSpec(DeviceOptions{FixReactivateBearer: true}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := MMESpec(MMEOptions{FixReactivateBearer: true, FixLUFailureRecovery: true}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceAttachFlow(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()

	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
	ptest.WantState(t, m, UEAttaching)
	ptest.WantGlobal(t, c, names.GSys, int(types.Sys4G))
	ptest.WantSent(t, c, 0, types.MsgAttachRequest)

	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachAccept, names.MMEEMM))
	ptest.WantState(t, m, UERegistered)
	ptest.WantGlobal(t, c, names.GReg4G, 1)
	ptest.WantGlobal(t, c, names.GEPS, 1)
	ptest.WantSent(t, c, 1, types.MsgAttachComplete)
}

func TestDeviceAttachReject(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
	ptest.MustStep(t, m, c, ptest.FromNetCause(types.MsgAttachReject, names.MMEEMM, types.CausePLMNNotAllowed))
	ptest.WantState(t, m, UEDeregistered)
	// An initial-attach rejection is recorded separately from a
	// post-attach network detach (PacketService_OK only covers the
	// latter).
	ptest.WantGlobal(t, c, names.GAttachRejected, 1)
	ptest.WantGlobal(t, c, names.GDetachedByNet, 0)
}

func TestDeviceAttachRetransmission(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPeriodicTimer))
	ptest.WantState(t, m, UEAttaching)
	ptest.WantSent(t, c, 1, types.MsgAttachRequest)
}

func TestDeviceTAUTriggers(t *testing.T) {
	for _, trigger := range []types.MsgKind{types.MsgPeriodicTimer, types.MsgUserMove} {
		m := fsm.New(DeviceSpec(DeviceOptions{}))
		c := ptest.NewCtx()
		ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
		ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachAccept, names.MMEEMM))
		before := len(c.Sent)
		ptest.MustStep(t, m, c, fsm.Ev(trigger))
		ptest.WantSent(t, c, before, types.MsgTrackingAreaUpdateRequest)
		ptest.WantState(t, m, UERegistered)
	}
}

func TestDeviceTAUNotIn3G(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachAccept, names.MMEEMM))
	// Camped on 3G after a 4G→3G switch: EMM must not run TAUs.
	c.Set(names.GSys, int(types.Sys3G))
	ptest.MustNotStep(t, m, c, fsm.Ev(types.MsgPeriodicTimer))
}

func TestDeviceSwitchTo4GSendsTAU(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachAccept, names.MMEEMM))
	c.Set(names.GSys, int(types.Sys3G)) // device went to 3G meanwhile
	before := len(c.Sent)
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgInterSystemCellReselect))
	ptest.WantGlobal(t, c, names.GSys, int(types.Sys4G))
	ptest.WantSent(t, c, before, types.MsgTrackingAreaUpdateRequest)
}

func TestDeviceTAURejectDetaches(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachAccept, names.MMEEMM))
	ptest.MustStep(t, m, c, ptest.FromNetCause(types.MsgTrackingAreaUpdateReject, names.MMEEMM, types.CauseNoEPSBearerContext))
	ptest.WantState(t, m, UEDeregistered)
	ptest.WantGlobal(t, c, names.GDetachedByNet, 1)
	ptest.WantGlobal(t, c, names.GEPS, 0)
}

func TestDeviceTAURejectWithFixReactivates(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{FixReactivateBearer: true}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachAccept, names.MMEEMM))
	ptest.MustStep(t, m, c, ptest.FromNetCause(types.MsgTrackingAreaUpdateReject, names.MMEEMM, types.CauseNoEPSBearerContext))
	// Stays registered and requests an ESM bearer activation instead.
	ptest.WantState(t, m, UERegistered)
	ptest.WantGlobal(t, c, names.GDetachedByNet, 0)
	if len(c.Outputs) != 1 || c.Outputs[0].Kind != types.MsgActivateBearerRequest {
		t.Fatalf("outputs = %v, want one ActivateBearerRequest", c.OutputKinds())
	}
	// Other causes still detach even with the fix.
	ptest.MustStep(t, m, c, ptest.FromNetCause(types.MsgTrackingAreaUpdateReject, names.MMEEMM, types.CauseImplicitDetach))
	ptest.WantState(t, m, UEDeregistered)
}

func TestDeviceReattachAfterDetach(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachAccept, names.MMEEMM))
	ptest.MustStep(t, m, c, ptest.FromNetCause(types.MsgTrackingAreaUpdateReject, names.MMEEMM, types.CauseImplicitDetach))
	ptest.WantState(t, m, UEDeregistered)
	// The retry timer triggers a re-attach (Figure 4 recovery).
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPeriodicTimer))
	ptest.WantState(t, m, UEAttaching)
	if got := c.LastSent().Kind; got != types.MsgAttachRequest {
		t.Fatalf("last sent = %s, want AttachRequest", got)
	}
}

func TestDevicePowerOff(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachAccept, names.MMEEMM))
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOff))
	ptest.WantState(t, m, UEDeregistered)
	ptest.WantGlobal(t, c, names.GReg4G, 0)
	ptest.WantGlobal(t, c, names.GSys, int(types.SysNone))
	if got := c.LastSent(); got.Kind != types.MsgDetachRequest || got.Cause != types.CauseUserPowerOff {
		t.Fatalf("last sent = %v, want DetachRequest(user power off)", got)
	}
}

// --- MME side ---

func mmeRegistered(t *testing.T) (*fsm.Machine, *ptest.Ctx) {
	t.Helper()
	m := fsm.New(MMESpec(MMEOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachRequest, names.UEEMM))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachComplete, names.UEEMM))
	ptest.WantState(t, m, MMERegistered)
	return m, c
}

func TestMMEAttachFlow(t *testing.T) {
	m := fsm.New(MMESpec(MMEOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachRequest, names.UEEMM))
	ptest.WantState(t, m, MMEWaitComplete)
	ptest.WantSent(t, c, 0, types.MsgAttachAccept)
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachComplete, names.UEEMM))
	ptest.WantState(t, m, MMERegistered)
}

// S2 lost-signal case: TAU before attach complete → implicit detach.
func TestMMES2LostSignal(t *testing.T) {
	m := fsm.New(MMESpec(MMEOptions{}))
	c := ptest.NewCtx()
	c.Set(names.GEPS, 1)
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachRequest, names.UEEMM))
	// Attach Complete was lost; the device believes it is registered
	// and sends a TAU.
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgTrackingAreaUpdateRequest, names.UEEMM))
	ptest.WantState(t, m, MMEDeregistered)
	ptest.WantGlobal(t, c, names.GEPS, 0)
	if got := c.LastSent(); got.Kind != types.MsgTrackingAreaUpdateReject || got.Cause != types.CauseImplicitDetach {
		t.Fatalf("last sent = %v, want TAUReject(implicit detach)", got)
	}
}

// S2 duplicate-signal case: duplicate Attach Request at REGISTERED
// deletes the EPS bearer context and reprocesses.
func TestMMES2DuplicateAttach(t *testing.T) {
	m, c := mmeRegistered(t)
	c.Set(names.GEPS, 1)
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachRequest, names.UEEMM))
	ptest.WantState(t, m, MMEWaitComplete)
	ptest.WantGlobal(t, c, names.GEPS, 0)
}

func TestMMETAUAcceptWithContext(t *testing.T) {
	m, c := mmeRegistered(t)
	c.Set(names.GEPS, 1)
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgTrackingAreaUpdateRequest, names.UEEMM))
	ptest.WantState(t, m, MMERegistered)
	if got := c.LastSent().Kind; got != types.MsgTrackingAreaUpdateAccept {
		t.Fatalf("last sent = %s, want TAUAccept", got)
	}
}

// §5.1.1: returning with a live PDP context migrates it into an EPS
// bearer context.
func TestMMETAUContextMigration(t *testing.T) {
	m, c := mmeRegistered(t)
	c.Set(names.GEPS, 0)
	c.Set(names.GPDP, 1)
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgTrackingAreaUpdateRequest, names.UEEMM))
	ptest.WantGlobal(t, c, names.GEPS, 1)
	ptest.WantGlobal(t, c, names.GPDP, 0)
	if got := c.LastSent().Kind; got != types.MsgTrackingAreaUpdateAccept {
		t.Fatalf("last sent = %s, want TAUAccept", got)
	}
}

// S1 defect: no context at all → TAU reject, device detached. (The
// 4G→3G switch released the EPS bearer and 3G deactivated the PDP
// context.)
func TestMMES1NoContextReject(t *testing.T) {
	m, c := mmeRegistered(t)
	c.Set(names.GEPS, 0)
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgTrackingAreaUpdateRequest, names.UEEMM))
	ptest.WantState(t, m, MMEDeregistered)
	if got := c.LastSent(); got.Kind != types.MsgTrackingAreaUpdateReject || got.Cause != types.CauseNoEPSBearerContext {
		t.Fatalf("last sent = %v, want TAUReject(no EPS bearer context)", got)
	}
}

// S1 fix: accept the TAU and reactivate the bearer.
func TestMMES1FixReactivates(t *testing.T) {
	m := fsm.New(MMESpec(MMEOptions{FixReactivateBearer: true}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachRequest, names.UEEMM))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachComplete, names.UEEMM))
	c.Set(names.GEPS, 0) // lost across the 3G round trip
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgTrackingAreaUpdateRequest, names.UEEMM))
	ptest.WantState(t, m, MMERegistered)
	if got := c.LastSent().Kind; got != types.MsgTrackingAreaUpdateAccept {
		t.Fatalf("last sent = %s, want TAUAccept", got)
	}
	if len(c.Outputs) != 1 || c.Outputs[0].Kind != types.MsgActivateBearerRequest {
		t.Fatalf("outputs = %v, want bearer activation", c.OutputKinds())
	}
}

// S6 defect: a 3G LU failure propagated to 4G detaches the device.
func TestMMES6Propagation(t *testing.T) {
	m := fsm.New(MMESpec(MMEOptions{PropagateLUFailure: true}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachRequest, names.UEEMM))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachComplete, names.UEEMM))
	c.Set(names.GEPS, 1)
	c.Set(names.GLUFail3G, 1)
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgTrackingAreaUpdateRequest, names.UEEMM))
	ptest.WantState(t, m, MMEDeregistered)
	if got := c.LastSent(); got.Cause != types.CauseImplicitDetach {
		t.Fatalf("last sent = %v, want implicit detach", got)
	}
}

// S6: without the propagation slip the LU failure is invisible to EMM.
func TestMMES6NoPropagation(t *testing.T) {
	m, c := mmeRegistered(t)
	c.Set(names.GEPS, 1)
	c.Set(names.GLUFail3G, 1)
	// Neither Propagate nor Fix: guard (a) is off; the GLUFail3G==0
	// guards of (b)-(d) are also off, so nothing fires and the TAU is
	// discarded. That models a carrier that simply ignores the failure.
	ptest.MustNotStep(t, m, c, ptest.FromNet(types.MsgTrackingAreaUpdateRequest, names.UEEMM))
}

// S6 fix: the MME recovers the update and accepts the TAU.
func TestMMES6FixRecovers(t *testing.T) {
	m := fsm.New(MMESpec(MMEOptions{FixLUFailureRecovery: true}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachRequest, names.UEEMM))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgAttachComplete, names.UEEMM))
	c.Set(names.GEPS, 1)
	c.Set(names.GLUFail3G, 1)
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgTrackingAreaUpdateRequest, names.UEEMM))
	ptest.WantState(t, m, MMERegistered)
	ptest.WantGlobal(t, c, names.GLUFail3G, 0)
	if got := c.LastSent().Kind; got != types.MsgTrackingAreaUpdateAccept {
		t.Fatalf("last sent = %s, want TAUAccept", got)
	}
}

func TestMMENetworkDetach(t *testing.T) {
	m, c := mmeRegistered(t)
	c.Set(names.GEPS, 1)
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgNetDetachOrder))
	ptest.WantState(t, m, MMEDeregistered)
	ptest.WantGlobal(t, c, names.GEPS, 0)
	if got := c.LastSent().Kind; got != types.MsgDetachRequest {
		t.Fatalf("last sent = %s, want DetachRequest", got)
	}
}

func TestMMEUEDetach(t *testing.T) {
	m, c := mmeRegistered(t)
	ptest.MustStep(t, m, c, ptest.FromNetCause(types.MsgDetachRequest, names.UEEMM, types.CauseUserPowerOff))
	ptest.WantState(t, m, MMEDeregistered)
	if got := c.LastSent().Kind; got != types.MsgDetachAccept {
		t.Fatalf("last sent = %s, want DetachAccept", got)
	}
}
