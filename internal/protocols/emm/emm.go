// Package emm models the 4G EPS Mobility Management protocol
// (TS 24.301) as device-side and MME-side finite state machines.
//
// EMM manages attach/detach, tracking-area updates (TAU) and the
// inter-system return to 4G. It is central to three of the paper's
// findings:
//
//   - S1 (§5.1): on the return 3G→4G switch the device performs a TAU;
//     if neither an EPS bearer context nor a 3G PDP context survives,
//     the MME rejects the TAU and the device detaches — temporarily
//     out of service.
//   - S2 (§5.2): EMM assumes reliable, in-sequence signal transfer from
//     RRC. A lost Attach Complete leaves the MME in WAIT-COMPLETE, so a
//     later TAU is rejected with "implicitly detached"; a duplicate
//     Attach Request at REGISTERED forces the MME to delete the EPS
//     bearer context and reprocess.
//   - S6 (§6.3): a 3G location-update failure propagated through the
//     MME detaches the 4G user.
//
// The §8 fixes are modeled as option flags so the checker can verify
// both the defective standard behavior and the repaired one.
package emm

import (
	"cnetverifier/internal/fsm"
	"cnetverifier/internal/names"
	"cnetverifier/internal/types"
)

// Device-side EMM states (TS 24.301 §5.1.3, abstracted).
const (
	UEDeregistered fsm.State = "EMM-DEREGISTERED"
	UEAttaching    fsm.State = "EMM-REGISTERED-INITIATED"
	UERegistered   fsm.State = "EMM-REGISTERED"
)

// MME-side EMM states.
const (
	MMEDeregistered fsm.State = "MME-DEREGISTERED"
	MMEWaitComplete fsm.State = "MME-COMMON-PROC-INITIATED"
	MMERegistered   fsm.State = "MME-REGISTERED"
)

// DeviceOptions configure the device-side machine.
type DeviceOptions struct {
	// FixReactivateBearer enables the §8 cross-system coordination fix
	// for S1: on a TAU reject with "no EPS bearer context activated"
	// the device requests an EPS bearer activation instead of
	// detaching.
	FixReactivateBearer bool
	// Peer is the process name of the MME EMM (default names.MMEEMM).
	Peer string
}

// MMEOptions configure the network-side machine.
type MMEOptions struct {
	// FixReactivateBearer enables the §8 fix on the MME: a TAU from a
	// registered UE with no recoverable session context is accepted and
	// a bearer activation is initiated, instead of rejecting and
	// detaching the UE.
	FixReactivateBearer bool
	// FixLUFailureRecovery enables the §8 fix for S6: the MME absorbs a
	// 3G location-update failure and recovers it with the MSC instead
	// of detaching the device.
	FixLUFailureRecovery bool
	// PropagateLUFailure models the carrier behavior behind S6: the 3G
	// failure is exposed to the device as an implicit detach. Ignored
	// when FixLUFailureRecovery is set.
	PropagateLUFailure bool
	// Peer is the process name of the device EMM (default names.UEEMM).
	Peer string
	// ESM is the co-located MME ESM process receiving bearer-activation
	// requests under FixReactivateBearer (default names.MMEESM).
	ESM string
}

// DeviceSpec returns the device-side EMM machine.
func DeviceSpec(o DeviceOptions) *fsm.Spec {
	if o.Peer == "" {
		o.Peer = names.MMEEMM
	}
	peer := o.Peer

	attach := func(c fsm.Ctx, e fsm.Event) {
		c.Set(names.GSys, int(types.Sys4G))
		c.Send(peer, types.NewMessage(types.MsgAttachRequest, types.ProtoEMM))
		c.Trace("EMM attach initiated")
	}
	deregister := func(byNet bool) fsm.Action {
		return func(c fsm.Ctx, e fsm.Event) {
			c.Set(names.GReg4G, 0)
			c.Set(names.GEPS, 0)
			if byNet {
				c.Set(names.GDetachedByNet, 1)
				c.Trace("EMM detached by network: %s", e.Msg.Cause)
			}
		}
	}

	spec := &fsm.Spec{
		Name:  "EMM-UE",
		Proto: types.ProtoEMM,
		Init:  UEDeregistered,
		Transitions: []fsm.Transition{
			// Power-on attach to 4G. A device already camped (and
			// possibly busy) on 3G does not re-run the 4G power-on
			// attach; it returns via reselection instead.
			{Name: "attach-4g", From: UEDeregistered, On: types.MsgPowerOn, To: UEAttaching,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return c.Get(names.GSys) != int(types.Sys3G)
				},
				Action: attach},
			// Re-attach after a detach (the Figure 4 recovery path).
			{Name: "reattach-4g", From: UEDeregistered, On: types.MsgPeriodicTimer, To: UEAttaching,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return c.Get(names.GDetachedByNet) == 1 && c.Get(names.GSys) == int(types.Sys4G)
				},
				Action: attach},

			// Attach accepted: establish default EPS bearer and confirm.
			{Name: "attach-accept", From: UEAttaching, On: types.MsgAttachAccept, To: UERegistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GReg4G, 1)
					c.Set(names.GEPS, 1)
					c.Set(names.GDetachedByNet, 0)
					c.Send(peer, types.NewMessage(types.MsgAttachComplete, types.ProtoEMM))
					c.Trace("EMM attach complete sent")
				}},
			{Name: "attach-reject", From: UEAttaching, On: types.MsgAttachReject, To: UEDeregistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					deregister(false)(c, e)
					c.Set(names.GAttachRejected, 1)
					c.Trace("EMM attach rejected: %s", e.Msg.Cause)
				}},

			// NAS retransmission: the T3410 timer refires the Attach
			// Request while waiting for the Attach Accept. With signals
			// relayed through different base stations this is the
			// duplicate-signal source of S2 (§5.2.1, Figure 5b).
			{Name: "attach-retransmit", From: UEAttaching, On: types.MsgPeriodicTimer, To: fsm.Same,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgAttachRequest, types.ProtoEMM))
					c.Trace("EMM attach request retransmitted")
				}},

			// Tracking area update triggers: periodic, mobility, and the
			// return 3G→4G switch (the device camps on 4G, then updates
			// its location, §2 "mobility management").
			{Name: "tau-periodic", From: UERegistered, On: types.MsgPeriodicTimer, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return c.Get(names.GSys) == int(types.Sys4G) },
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgTrackingAreaUpdateRequest, types.ProtoEMM))
				}},
			{Name: "tau-mobility", From: UERegistered, On: types.MsgUserMove, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return c.Get(names.GSys) == int(types.Sys4G) },
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgTrackingAreaUpdateRequest, types.ProtoEMM))
				}},
			// Reselection back to 4G requires an effectively idle radio:
			// an active CS call or an ongoing high-rate data session
			// holds 3G RRC connected, and reselection only works from
			// IDLE (§5.3, Figure 6a).
			{Name: "switch-to-4g", From: UERegistered, On: types.MsgInterSystemCellReselect, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return c.Get(names.GSys) == int(types.Sys3G) &&
						c.Get(names.GCallActive) == 0 && c.Get(names.GPSData) == 0
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GSys, int(types.Sys4G))
					c.Send(peer, types.NewMessage(types.MsgTrackingAreaUpdateRequest, types.ProtoEMM))
					c.Trace("EMM 3G→4G switch, TAU sent")
				}},

			{Name: "tau-accept", From: UERegistered, On: types.MsgTrackingAreaUpdateAccept, To: fsm.Same,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GDetachedByNet, 0)
				}},

			// TAU reject handling: the S1/S2/S6 defect path detaches;
			// the §8 fix reactivates the bearer for the S1 cause.
			{Name: "tau-reject-reactivate", From: UERegistered, On: types.MsgTrackingAreaUpdateReject, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return o.FixReactivateBearer && e.Msg.Cause == types.CauseNoEPSBearerContext
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Output(types.NewMessage(types.MsgActivateBearerRequest, types.ProtoESM))
					c.Trace("EMM fix: reactivating EPS bearer instead of detaching")
				}},
			{Name: "tau-reject-detach", From: UERegistered, On: types.MsgTrackingAreaUpdateReject, To: UEDeregistered,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return !(o.FixReactivateBearer && e.Msg.Cause == types.CauseNoEPSBearerContext)
				},
				Action: deregister(true)},

			// Network-initiated detach: a deliberate operator decision
			// (e.g. resource constraints, §2) — the device complies.
			// This is an *explicit* deactivation, so it does not count
			// against PacketService_OK ("unless being explicitly
			// deactivated", §3.2.2); the damaging out-of-service cases
			// of S1/S2/S6 arrive as rejects instead.
			{Name: "net-detach", From: UERegistered, On: types.MsgDetachRequest, To: UEDeregistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					deregister(false)(c, e)
					c.Send(peer, types.NewMessage(types.MsgDetachAccept, types.ProtoEMM))
					c.Trace("EMM detached on network order: %s", e.Msg.Cause)
				}},

			// Acknowledgment of the UE-initiated detach (sent below on
			// power-off); it arrives while already deregistered and
			// changes nothing.
			{Name: "detach-accept", From: UEDeregistered, On: types.MsgDetachAccept, To: fsm.Same},

			// User power-off from any state.
			{Name: "power-off", From: fsm.Any, On: types.MsgPowerOff, To: UEDeregistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GReg4G, 0)
					c.Set(names.GEPS, 0)
					c.Set(names.GSys, int(types.SysNone))
					c.Send(peer, types.NewMessage(types.MsgDetachRequest, types.ProtoEMM).WithCause(types.CauseUserPowerOff))
				}},
		},
	}
	return spec
}

// MMESpec returns the MME-side EMM machine.
func MMESpec(o MMEOptions) *fsm.Spec {
	if o.Peer == "" {
		o.Peer = names.UEEMM
	}
	if o.ESM == "" {
		o.ESM = names.MMEESM
	}
	peer := o.Peer

	acceptTAU := func(c fsm.Ctx, e fsm.Event) {
		c.Send(peer, types.NewMessage(types.MsgTrackingAreaUpdateAccept, types.ProtoEMM))
	}

	spec := &fsm.Spec{
		Name:  "EMM-MME",
		Proto: types.ProtoEMM,
		Init:  MMEDeregistered,
		Transitions: []fsm.Transition{
			// Attach: accept. (Reject branches are injected by operator
			// scenarios as explicit env events on this machine.)
			{Name: "attach-accept", From: MMEDeregistered, On: types.MsgAttachRequest, To: MMEWaitComplete,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgAttachAccept, types.ProtoEMM))
				}},
			// On completion the default EPS bearer context is final on
			// the network side too (needed when device and core keep
			// separate context stores, as in the socket prototype).
			{Name: "attach-done", From: MMEWaitComplete, On: types.MsgAttachComplete, To: MMERegistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GEPS, 1)
				}},

			// S2 lost-signal defect: a TAU while the attach never
			// completed is rejected with "implicitly detached"
			// (TS 24.301; §5.2.1 first case). The EPS bearer context is
			// deleted.
			{Name: "tau-implicit-detach", From: MMEWaitComplete, On: types.MsgTrackingAreaUpdateRequest, To: MMEDeregistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GEPS, 0)
					c.Send(peer, types.NewMessage(types.MsgTrackingAreaUpdateReject, types.ProtoEMM).WithCause(types.CauseImplicitDetach))
					c.Trace("MME: TAU before attach complete → implicit detach (S2)")
				}},

			// S2 duplicate-signal defect: a duplicate Attach Request at
			// REGISTERED deletes the EPS bearer context and reprocesses
			// the attach (TS 24.301; §5.2.1 second case).
			{Name: "dup-attach-reprocess", From: MMERegistered, On: types.MsgAttachRequest, To: MMEWaitComplete,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GEPS, 0)
					c.Send(peer, types.NewMessage(types.MsgAttachAccept, types.ProtoEMM))
					c.Trace("MME: duplicate attach request, EPS bearer context deleted and reprocessed (S2)")
				}},

			// TAU at REGISTERED: four cases ordered most-specific first.
			//
			// (a) S6 defect: 3G LAU failure propagated → implicit detach.
			{Name: "tau-lufail-detach", From: MMERegistered, On: types.MsgTrackingAreaUpdateRequest, To: MMEDeregistered,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return c.Get(names.GLUFail3G) == 1 && o.PropagateLUFailure && !o.FixLUFailureRecovery
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GEPS, 0)
					c.Send(peer, types.NewMessage(types.MsgTrackingAreaUpdateReject, types.ProtoEMM).WithCause(types.CauseImplicitDetach))
					c.Trace("MME: 3G LU failure propagated to 4G → detach (S6)")
				}},
			// (a') S6 fix: recover the update with the MSC, accept.
			{Name: "tau-lufail-recover", From: MMERegistered, On: types.MsgTrackingAreaUpdateRequest, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return c.Get(names.GLUFail3G) == 1 && o.FixLUFailureRecovery
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GLUFail3G, 0)
					acceptTAU(c, e)
					c.Trace("MME fix: recovered 3G location update on behalf of device (S6)")
				}},
			// (b) EPS bearer context alive: plain accept.
			{Name: "tau-accept", From: MMERegistered, On: types.MsgTrackingAreaUpdateRequest, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return c.Get(names.GLUFail3G) == 0 && c.Get(names.GEPS) == 1
				},
				Action: acceptTAU},
			// (c) Context migration: the 3G PDP context is translated
			// into an EPS bearer context during the location update
			// (§5.1.1 step 2).
			{Name: "tau-migrate-context", From: MMERegistered, On: types.MsgTrackingAreaUpdateRequest, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return c.Get(names.GLUFail3G) == 0 && c.Get(names.GEPS) == 0 && c.Get(names.GPDP) == 1
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GPDP, 0)
					c.Set(names.GEPS, 1)
					acceptTAU(c, e)
					c.Trace("MME: PDP context migrated to EPS bearer context")
				}},
			// (d) S1 defect: no recoverable context → reject + detach...
			{Name: "tau-no-context-detach", From: MMERegistered, On: types.MsgTrackingAreaUpdateRequest, To: MMEDeregistered,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return c.Get(names.GLUFail3G) == 0 && c.Get(names.GEPS) == 0 && c.Get(names.GPDP) == 0 && !o.FixReactivateBearer
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgTrackingAreaUpdateReject, types.ProtoEMM).WithCause(types.CauseNoEPSBearerContext))
					c.Trace("MME: no EPS bearer context activated → TAU reject (S1)")
				}},
			// (d') S1 fix: accept and initiate bearer reactivation.
			{Name: "tau-no-context-reactivate", From: MMERegistered, On: types.MsgTrackingAreaUpdateRequest, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return c.Get(names.GLUFail3G) == 0 && c.Get(names.GEPS) == 0 && c.Get(names.GPDP) == 0 && o.FixReactivateBearer
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					acceptTAU(c, e)
					c.Output(types.NewMessage(types.MsgActivateBearerRequest, types.ProtoESM))
					c.Trace("MME fix: TAU accepted, EPS bearer reactivation initiated (S1)")
				}},

			// Device-initiated detach.
			{Name: "ue-detach", From: fsm.Any, On: types.MsgDetachRequest, To: MMEDeregistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GEPS, 0)
					c.Send(peer, types.NewMessage(types.MsgDetachAccept, types.ProtoEMM))
				}},

			// Acknowledgment of the network-initiated detach below; it
			// arrives after the MME already deregistered the device.
			{Name: "detach-accept", From: MMEDeregistered, On: types.MsgDetachAccept, To: fsm.Same},

			// Operator-scenario event: network-initiated detach
			// (e.g. under resource constraints, §2).
			{Name: "net-detach", From: MMERegistered, On: types.MsgNetDetachOrder, To: MMEDeregistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GEPS, 0)
					c.Send(peer, types.NewMessage(types.MsgDetachRequest, types.ProtoEMM).WithCause(types.CauseNetworkFailure))
				}},
		},
	}
	return spec
}
