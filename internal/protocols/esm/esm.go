// Package esm models the 4G EPS Session Management protocol
// (TS 24.301): activation and deactivation of the EPS bearer context
// that carries all 4G packet service. Since 4G is PS-only, the EPS
// bearer context is mandatory — whenever it cannot be constructed, no
// 4G service is available (§5.1.2), which is why its loss is so much
// more damaging than a 3G PDP context loss.
package esm

import (
	"cnetverifier/internal/fsm"
	"cnetverifier/internal/names"
	"cnetverifier/internal/types"
)

// Device-side ESM states.
const (
	UEInactive fsm.State = "ESM-BEARER-INACTIVE"
	UEPending  fsm.State = "ESM-BEARER-PENDING"
	UEActive   fsm.State = "ESM-BEARER-ACTIVE"
)

// MME-side ESM states.
const (
	MMEInactive fsm.State = "MME-BEARER-INACTIVE"
	MMEActive   fsm.State = "MME-BEARER-ACTIVE"
)

// DeviceOptions configure the device-side machine.
type DeviceOptions struct {
	// Peer is the MME ESM process (default names.MMEESM).
	Peer string
}

// MMEOptions configure the MME-side machine.
type MMEOptions struct {
	// Peer is the device ESM process (default names.UEESM).
	Peer string
}

// DeviceSpec returns the device-side ESM machine.
//
// The machine reacts both to air-interface messages from the MME and to
// the cross-layer MsgActivateBearerRequest emitted by the device EMM
// under the §8 reactivate-instead-of-detach fix.
func DeviceSpec(o DeviceOptions) *fsm.Spec {
	if o.Peer == "" {
		o.Peer = names.MMEESM
	}
	peer := o.Peer

	return &fsm.Spec{
		Name:  "ESM-UE",
		Proto: types.ProtoESM,
		Init:  UEInactive,
		Transitions: []fsm.Transition{
			// UE-requested bearer activation (also the target of the
			// cross-layer fix output from EMM).
			{Name: "activate-req", From: UEInactive, On: types.MsgActivateBearerRequest, To: UEPending,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgActivateBearerRequest, types.ProtoESM))
					c.Trace("ESM bearer activation requested")
				}},
			// Re-request while pending is absorbed (retransmission).
			{Name: "activate-req-pending", From: UEPending, On: types.MsgActivateBearerRequest, To: fsm.Same},
			// Already active: nothing to do.
			{Name: "activate-req-active", From: UEActive, On: types.MsgActivateBearerRequest, To: fsm.Same},

			{Name: "activate-accept", From: UEPending, On: types.MsgActivateBearerAccept, To: UEActive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GEPS, 1)
					c.Trace("ESM bearer active")
				}},
			{Name: "activate-reject", From: UEPending, On: types.MsgActivateBearerReject, To: UEInactive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GEPS, 0)
					c.Trace("ESM bearer activation rejected: %s", e.Msg.Cause)
				}},

			// Network-initiated activation (MME pushes the default
			// bearer during attach or under the S1 fix).
			{Name: "net-activate", From: UEInactive, On: types.MsgActivateBearerAccept, To: UEActive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GEPS, 1)
				}},

			// Deactivation, either side.
			{Name: "deactivate", From: fsm.Any, On: types.MsgDeactivateBearerRequest, To: UEInactive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GEPS, 0)
					c.Send(peer, types.NewMessage(types.MsgDeactivateBearerAccept, types.ProtoESM))
					c.Trace("ESM bearer deactivated: %s", e.Msg.Cause)
				}},
			// MME acknowledged a deactivation: the bearer is finally
			// gone on both sides.
			{Name: "deact-ack", From: fsm.Any, On: types.MsgDeactivateBearerAccept, To: UEInactive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GEPS, 0)
				}},

			{Name: "power-off", From: fsm.Any, On: types.MsgPowerOff, To: UEInactive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GEPS, 0)
				}},
		},
	}
}

// MMESpec returns the MME-side ESM machine.
func MMESpec(o MMEOptions) *fsm.Spec {
	if o.Peer == "" {
		o.Peer = names.UEESM
	}
	peer := o.Peer

	return &fsm.Spec{
		Name:  "ESM-MME",
		Proto: types.ProtoESM,
		Init:  MMEInactive,
		Transitions: []fsm.Transition{
			// UE-requested activation: accept and install the context.
			{Name: "activate", From: MMEInactive, On: types.MsgActivateBearerRequest, To: MMEActive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GEPS, 1)
					c.Send(peer, types.NewMessage(types.MsgActivateBearerAccept, types.ProtoESM))
				}},
			// Duplicate request while active: idempotent accept.
			{Name: "activate-dup", From: MMEActive, On: types.MsgActivateBearerRequest, To: fsm.Same,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgActivateBearerAccept, types.ProtoESM))
				}},

			// Network-initiated deactivation (operator scenario).
			{Name: "net-deactivate", From: MMEActive, On: types.MsgNetDetachOrder, To: MMEInactive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GEPS, 0)
					c.Send(peer, types.NewMessage(types.MsgDeactivateBearerRequest, types.ProtoESM).WithCause(types.CauseRegularDeactivation))
				}},
			{Name: "ue-deactivate", From: MMEActive, On: types.MsgDeactivateBearerRequest, To: MMEInactive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GEPS, 0)
					c.Send(peer, types.NewMessage(types.MsgDeactivateBearerAccept, types.ProtoESM))
				}},
			{Name: "deactivate-ack", From: fsm.Any, On: types.MsgDeactivateBearerAccept, To: MMEInactive,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GEPS, 0)
				}},
		},
	}
}
