package esm

import (
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/names"
	"cnetverifier/internal/protocols/ptest"
	"cnetverifier/internal/types"
)

func TestSpecsValidate(t *testing.T) {
	if err := DeviceSpec(DeviceOptions{}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := MMESpec(MMEOptions{}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceActivationFlow(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()

	ptest.MustStep(t, m, c, fsm.Ev(types.MsgActivateBearerRequest))
	ptest.WantState(t, m, UEPending)
	ptest.WantSent(t, c, 0, types.MsgActivateBearerRequest)

	// Retransmitted request while pending is absorbed.
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgActivateBearerRequest))
	ptest.WantState(t, m, UEPending)
	if len(c.Sent) != 1 {
		t.Fatalf("retransmission produced extra sends: %v", c.SentKinds())
	}

	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgActivateBearerAccept, names.MMEESM))
	ptest.WantState(t, m, UEActive)
	ptest.WantGlobal(t, c, names.GEPS, 1)

	// Idempotent request when already active.
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgActivateBearerRequest))
	ptest.WantState(t, m, UEActive)
}

func TestDeviceActivationReject(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgActivateBearerRequest))
	ptest.MustStep(t, m, c, ptest.FromNetCause(types.MsgActivateBearerReject, names.MMEESM, types.CauseCongestion))
	ptest.WantState(t, m, UEInactive)
	ptest.WantGlobal(t, c, names.GEPS, 0)
}

func TestDeviceNetworkPushedBearer(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgActivateBearerAccept, names.MMEESM))
	ptest.WantState(t, m, UEActive)
	ptest.WantGlobal(t, c, names.GEPS, 1)
}

func TestDeviceDeactivation(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgActivateBearerAccept, names.MMEESM))
	ptest.MustStep(t, m, c, ptest.FromNetCause(types.MsgDeactivateBearerRequest, names.MMEESM, types.CauseRegularDeactivation))
	ptest.WantState(t, m, UEInactive)
	ptest.WantGlobal(t, c, names.GEPS, 0)
	if got := c.LastSent().Kind; got != types.MsgDeactivateBearerAccept {
		t.Fatalf("last sent = %s, want DeactivateBearerAccept", got)
	}
}

func TestDevicePowerOff(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgActivateBearerAccept, names.MMEESM))
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOff))
	ptest.WantState(t, m, UEInactive)
	ptest.WantGlobal(t, c, names.GEPS, 0)
}

func TestMMEActivation(t *testing.T) {
	m := fsm.New(MMESpec(MMEOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgActivateBearerRequest, names.UEESM))
	ptest.WantState(t, m, MMEActive)
	ptest.WantGlobal(t, c, names.GEPS, 1)
	ptest.WantSent(t, c, 0, types.MsgActivateBearerAccept)

	// Duplicate request: idempotent accept, still active.
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgActivateBearerRequest, names.UEESM))
	ptest.WantState(t, m, MMEActive)
	ptest.WantSent(t, c, 1, types.MsgActivateBearerAccept)
}

func TestMMENetworkDeactivation(t *testing.T) {
	m := fsm.New(MMESpec(MMEOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgActivateBearerRequest, names.UEESM))
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgNetDetachOrder))
	ptest.WantState(t, m, MMEInactive)
	ptest.WantGlobal(t, c, names.GEPS, 0)
	if got := c.LastSent().Kind; got != types.MsgDeactivateBearerRequest {
		t.Fatalf("last sent = %s, want DeactivateBearerRequest", got)
	}
}

func TestMMEUEDeactivation(t *testing.T) {
	m := fsm.New(MMESpec(MMEOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgActivateBearerRequest, names.UEESM))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgDeactivateBearerRequest, names.UEESM))
	ptest.WantState(t, m, MMEInactive)
	ptest.WantGlobal(t, c, names.GEPS, 0)
	if got := c.LastSent().Kind; got != types.MsgDeactivateBearerAccept {
		t.Fatalf("last sent = %s, want DeactivateBearerAccept", got)
	}
}
