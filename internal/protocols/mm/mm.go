// Package mm models the 3G CS Mobility Management protocol (MM,
// TS 24.008), running between the device and the MSC.
//
// MM performs the CS attach and location-area updates (LAU), and
// brokers CM service requests toward the MSC. Two findings live here:
//
//   - S4 (§6.1): MM serves location updates with higher priority than
//     outgoing CM service requests, so calls dialed during an LAU are
//     head-of-line blocked; the "MM WAIT FOR NETWORK COMMAND" state
//     after the update extends the delay further.
//   - S6 (§6.3): a failed 3G location update sets a failure flag that
//     carriers propagate into 4G, where the MME detaches the user.
//
// The §8 layer-extension fix (parallel location-update and service
// threads, with the service request given priority since it implicitly
// updates the location) is available as an option.
package mm

import (
	"cnetverifier/internal/fsm"
	"cnetverifier/internal/names"
	"cnetverifier/internal/types"
)

// Device-side MM states.
const (
	UEIdle       fsm.State = "MM-IDLE"
	UELUPending  fsm.State = "MM-LOCATION-UPDATING"
	UERegistered fsm.State = "MM-REGISTERED"
	UEWaitNetCmd fsm.State = "MM-WAIT-FOR-NET-CMD"
)

// MSC-side MM states.
const (
	MSCDetached   fsm.State = "MSC-DETACHED"
	MSCRegistered fsm.State = "MSC-REGISTERED"
)

// DeviceOptions configure the device-side machine.
type DeviceOptions struct {
	// FixParallelUpdate enables the §8 fix for S4: CM service requests
	// are forwarded immediately, concurrently with any ongoing
	// location update, instead of being queued behind it.
	FixParallelUpdate bool
	// Peer is the MSC MM process (default names.MSCMM).
	Peer string
	// CM is the co-located connectivity-management process that
	// receives MM's service-accept outputs (default names.UECM).
	CM string
}

// MSCOptions configure the network-side machine.
type MSCOptions struct {
	// Peer is the device MM process (default names.UEMM).
	Peer string
}

// DeviceSpec returns the device-side MM machine.
func DeviceSpec(o DeviceOptions) *fsm.Spec {
	if o.Peer == "" {
		o.Peer = names.MSCMM
	}
	if o.CM == "" {
		o.CM = names.UECM
	}
	peer := o.Peer

	startLU := func(c fsm.Ctx, e fsm.Event) {
		c.Set(names.GLUInProgress, 1)
		c.Send(peer, types.NewMessage(types.MsgLocationUpdateRequest, types.ProtoMM))
		c.Trace("MM location area update initiated")
	}
	forwardCall := func(c fsm.Ctx, e fsm.Event) {
		c.Send(peer, types.NewMessage(types.MsgCMServiceRequest, types.ProtoCM))
		c.Trace("MM forwarded CM service request to MSC")
	}
	in3G := func(c fsm.Ctx, e fsm.Event) bool { return c.Get(names.GSys) == int(types.Sys3G) }

	return &fsm.Spec{
		Name:  "MM-UE",
		Proto: types.ProtoMM,
		Init:  UEIdle,
		Vars:  map[string]int{"pendingCall": 0},
		Transitions: []fsm.Transition{
			// CS attach: the IMSI attach is a location update.
			{Name: "attach-3gcs", From: UEIdle, On: types.MsgPowerOn, To: UELUPending,
				Guard: in3G,
				Action: func(c fsm.Ctx, e fsm.Event) {
					startLU(c, e)
				}},

			// Location update triggers (Table 4 rows 1–3 and 6).
			{Name: "lu-mobility", From: UERegistered, On: types.MsgUserMove, To: UELUPending,
				Guard: in3G, Action: startLU},
			{Name: "lu-periodic", From: UERegistered, On: types.MsgPeriodicTimer, To: UELUPending,
				Guard: in3G, Action: startLU},
			// After a CSFB call ends, the deferred location update runs
			// (§6.3: the first 3G update is deferred until the call
			// completes).
			{Name: "lu-csfb-end", From: UERegistered, On: types.MsgCallRelease, To: UELUPending,
				Guard: in3G, Action: startLU},
			// After switching into 3G.
			{Name: "lu-switch-in", From: UEIdle, On: types.MsgInterSystemSwitchCommand, To: UELUPending,
				Guard: in3G, Action: startLU},

			// Location update outcomes. On accept MM enters the
			// WAIT-FOR-NET-CMD state (§6.1) where requests keep queuing
			// until the network command (channel release) arrives.
			{Name: "lu-accept", From: UELUPending, On: types.MsgLocationUpdateAccept, To: UEWaitNetCmd,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GReg3GCS, 1)
					c.Trace("MM location update accepted, waiting for network command")
				}},
			{Name: "lu-reject", From: UELUPending, On: types.MsgLocationUpdateReject, To: UEIdle,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GLUInProgress, 0)
					c.Set(names.GReg3GCS, 0)
					c.Trace("MM location update rejected: %s", e.Msg.Cause)
				}},
			{Name: "net-cmd", From: UEWaitNetCmd, On: types.MsgRRCConnectionRelease, To: UERegistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GLUInProgress, 0)
					if c.Get("pendingCall") == 1 {
						c.Set("pendingCall", 0)
						forwardCall(c, e)
						c.Trace("MM released head-of-line blocked call request (S4)")
					}
				}},

			// CM service request brokering — the S4 defect and fix.
			//
			// Fix enabled: forward immediately from any state; the call
			// implicitly updates the location (§6.1).
			{Name: "svc-parallel", From: fsm.Any, On: types.MsgCMServiceRequest, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return o.FixParallelUpdate && e.Msg.From != peer
				},
				Action: forwardCall},
			// Defect: during an LAU (or the WAIT state that follows) the
			// request is queued and the call delayed.
			{Name: "svc-blocked-lu", From: UELUPending, On: types.MsgCMServiceRequest, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return !o.FixParallelUpdate && e.Msg.From != peer
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set("pendingCall", 1)
					c.Set(names.GCallDelayed, 1)
					c.Trace("MM: call request blocked behind location update (S4)")
				}},
			{Name: "svc-blocked-wait", From: UEWaitNetCmd, On: types.MsgCMServiceRequest, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return !o.FixParallelUpdate && e.Msg.From != peer
				},
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set("pendingCall", 1)
					c.Set(names.GCallDelayed, 1)
					c.Trace("MM: call request blocked in WAIT-FOR-NET-CMD (S4)")
				}},
			// Normal path: registered and idle — forward at once.
			{Name: "svc-forward", From: UERegistered, On: types.MsgCMServiceRequest, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool {
					return !o.FixParallelUpdate && e.Msg.From != peer
				},
				Action: forwardCall},

			// The MSC's answer is relayed up to CM (cross-layer output).
			{Name: "svc-accept", From: fsm.Any, On: types.MsgCMServiceAccept, To: fsm.Same,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Output(types.NewMessage(types.MsgCMServiceAccept, types.ProtoCM))
				}},
			{Name: "svc-reject", From: fsm.Any, On: types.MsgCMServiceReject, To: fsm.Same,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GCallRejected, 1)
					c.Output(types.NewMessage(types.MsgCMServiceReject, types.ProtoCM))
				}},

			// The MSC acknowledges a detach; nothing left to do.
			{Name: "detach-accept", From: UEIdle, On: types.MsgDetachAccept, To: fsm.Same},

			{Name: "power-off", From: fsm.Any, On: types.MsgPowerOff, To: UEIdle,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set(names.GReg3GCS, 0)
					c.Set(names.GLUInProgress, 0)
					c.Set("pendingCall", 0)
				}},
		},
	}
}

// MSCSpec returns the MSC-side MM machine.
//
// The operator-scenario event MsgLUFailureSignal arms a one-shot
// location-update failure: the next LAU is rejected and the shared
// GLUFail3G flag is raised — the input condition of S6.
func MSCSpec(o MSCOptions) *fsm.Spec {
	if o.Peer == "" {
		o.Peer = names.UEMM
	}
	peer := o.Peer

	return &fsm.Spec{
		Name:  "MM-MSC",
		Proto: types.ProtoMM,
		Init:  MSCDetached,
		Vars:  map[string]int{"failNext": 0},
		Transitions: []fsm.Transition{
			// Arm a location-update failure (operator scenario).
			{Name: "arm-failure", From: fsm.Any, On: types.MsgLUFailureSignal, To: fsm.Same,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set("failNext", 1)
				}},

			// Location update: fail once if armed, else accept followed
			// by the channel-release network command that ends the
			// device's WAIT-FOR-NET-CMD state.
			{Name: "lu-fail", From: fsm.Any, On: types.MsgLocationUpdateRequest, To: fsm.Same,
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return c.Get("failNext") == 1 },
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set("failNext", 0)
					c.Set(names.GLUFail3G, 1)
					c.Send(peer, types.NewMessage(types.MsgLocationUpdateReject, types.ProtoMM).WithCause(types.CauseNetworkFailure))
					c.Trace("MSC: location update failed (S6 trigger)")
				}},
			{Name: "lu-accept", From: fsm.Any, On: types.MsgLocationUpdateRequest, To: MSCRegistered,
				Guard: func(c fsm.Ctx, e fsm.Event) bool { return c.Get("failNext") == 0 },
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgLocationUpdateAccept, types.ProtoMM))
					c.Send(peer, types.NewMessage(types.MsgRRCConnectionRelease, types.ProtoRRC3G))
				}},

			// CM service requests: accepting one implicitly refreshes
			// the device's location (§6.1).
			{Name: "svc-accept", From: MSCRegistered, On: types.MsgCMServiceRequest, To: fsm.Same,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgCMServiceAccept, types.ProtoCM))
				}},
			// A service request from an unregistered device still
			// serves as an implicit attach+update (fix rationale §8).
			{Name: "svc-accept-implicit", From: MSCDetached, On: types.MsgCMServiceRequest, To: MSCRegistered,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgCMServiceAccept, types.ProtoCM))
					c.Trace("MSC: service request served as implicit location update")
				}},

			{Name: "ue-detach", From: fsm.Any, On: types.MsgDetachRequest, To: MSCDetached,
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.NewMessage(types.MsgDetachAccept, types.ProtoMM))
				}},
		},
	}
}
