package mm

import (
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/names"
	"cnetverifier/internal/protocols/ptest"
	"cnetverifier/internal/types"
)

func TestSpecsValidate(t *testing.T) {
	for _, o := range []DeviceOptions{{}, {FixParallelUpdate: true}} {
		if err := DeviceSpec(o).Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := MSCSpec(MSCOptions{}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func registeredDevice(t *testing.T, o DeviceOptions) (*fsm.Machine, *ptest.Ctx) {
	t.Helper()
	m := fsm.New(DeviceSpec(o))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys3G))
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgLocationUpdateAccept, names.MSCMM))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgRRCConnectionRelease, names.MSCMM))
	ptest.WantState(t, m, UERegistered)
	return m, c
}

func TestDeviceAttachViaLAU(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys3G))
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
	ptest.WantState(t, m, UELUPending)
	ptest.WantGlobal(t, c, names.GLUInProgress, 1)
	ptest.WantSent(t, c, 0, types.MsgLocationUpdateRequest)

	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgLocationUpdateAccept, names.MSCMM))
	ptest.WantState(t, m, UEWaitNetCmd)
	ptest.WantGlobal(t, c, names.GReg3GCS, 1)
	// GLUInProgress only clears once the network command arrives —
	// the §6.1 chain effect.
	ptest.WantGlobal(t, c, names.GLUInProgress, 1)

	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgRRCConnectionRelease, names.MSCMM))
	ptest.WantState(t, m, UERegistered)
	ptest.WantGlobal(t, c, names.GLUInProgress, 0)
}

func TestDeviceAttachNotIn4G(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys4G))
	ptest.MustNotStep(t, m, c, fsm.Ev(types.MsgPowerOn))
}

func TestDeviceLAUTriggers(t *testing.T) {
	triggers := []types.MsgKind{types.MsgUserMove, types.MsgPeriodicTimer, types.MsgCallRelease}
	for _, trigger := range triggers {
		m, c := registeredDevice(t, DeviceOptions{})
		ptest.MustStep(t, m, c, fsm.Ev(trigger))
		ptest.WantState(t, m, UELUPending)
		ptest.WantGlobal(t, c, names.GLUInProgress, 1)
	}
}

// S4 defect: a call dialed during the LAU is head-of-line blocked, then
// released when the network command ends the update.
func TestDeviceS4HOLBlocking(t *testing.T) {
	m, c := registeredDevice(t, DeviceOptions{})
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserMove)) // LAU starts
	sent := len(c.Sent)

	// CM hands down a service request mid-update.
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCMServiceRequest, names.UECM))
	ptest.WantGlobal(t, c, names.GCallDelayed, 1)
	if len(c.Sent) != sent {
		t.Fatalf("blocked request must not be forwarded yet: %v", c.SentKinds())
	}

	// Update completes; still blocked in WAIT-FOR-NET-CMD.
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgLocationUpdateAccept, names.MSCMM))
	if len(c.Sent) != sent {
		t.Fatalf("request must stay blocked in WAIT-FOR-NET-CMD: %v", c.SentKinds())
	}

	// Network command arrives: the pending call is finally forwarded.
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgRRCConnectionRelease, names.MSCMM))
	if got := c.LastSent().Kind; got != types.MsgCMServiceRequest {
		t.Fatalf("last sent = %s, want forwarded CMServiceRequest", got)
	}
}

// S4: blocking also happens while waiting for the net command.
func TestDeviceS4BlockedInWaitState(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys3G))
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgLocationUpdateAccept, names.MSCMM))
	ptest.WantState(t, m, UEWaitNetCmd)
	tr := ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCMServiceRequest, names.UECM))
	if tr.Name != "svc-blocked-wait" {
		t.Fatalf("transition = %s, want svc-blocked-wait", tr.Name)
	}
	ptest.WantGlobal(t, c, names.GCallDelayed, 1)
}

// S4 fix: parallel threads forward the request immediately even during
// the update.
func TestDeviceS4FixParallel(t *testing.T) {
	m, c := registeredDevice(t, DeviceOptions{FixParallelUpdate: true})
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgUserMove)) // LAU starts
	tr := ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCMServiceRequest, names.UECM))
	if tr.Name != "svc-parallel" {
		t.Fatalf("transition = %s, want svc-parallel", tr.Name)
	}
	ptest.WantGlobal(t, c, names.GCallDelayed, 0)
	if got := c.LastSent().Kind; got != types.MsgCMServiceRequest {
		t.Fatalf("last sent = %s, want CMServiceRequest", got)
	}
}

func TestDeviceNormalServiceForward(t *testing.T) {
	m, c := registeredDevice(t, DeviceOptions{})
	tr := ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCMServiceRequest, names.UECM))
	if tr.Name != "svc-forward" {
		t.Fatalf("transition = %s, want svc-forward", tr.Name)
	}
	if got := c.LastSent().Kind; got != types.MsgCMServiceRequest {
		t.Fatalf("last sent = %s", got)
	}
}

func TestDeviceRelaysMSCAnswers(t *testing.T) {
	m, c := registeredDevice(t, DeviceOptions{})
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCMServiceAccept, names.MSCMM))
	if len(c.Outputs) != 1 || c.Outputs[0].Kind != types.MsgCMServiceAccept {
		t.Fatalf("outputs = %v, want CMServiceAccept relay", c.OutputKinds())
	}
	ptest.MustStep(t, m, c, ptest.FromNetCause(types.MsgCMServiceReject, names.MSCMM, types.CauseCongestion))
	ptest.WantGlobal(t, c, names.GCallRejected, 1)
}

func TestDeviceLUReject(t *testing.T) {
	m := fsm.New(DeviceSpec(DeviceOptions{}))
	c := ptest.NewCtx()
	c.Set(names.GSys, int(types.Sys3G))
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgPowerOn))
	ptest.MustStep(t, m, c, ptest.FromNetCause(types.MsgLocationUpdateReject, names.MSCMM, types.CauseNetworkFailure))
	ptest.WantState(t, m, UEIdle)
	ptest.WantGlobal(t, c, names.GReg3GCS, 0)
	ptest.WantGlobal(t, c, names.GLUInProgress, 0)
}

// --- MSC side ---

func TestMSCLUAcceptSendsNetCmd(t *testing.T) {
	m := fsm.New(MSCSpec(MSCOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgLocationUpdateRequest, names.UEMM))
	ptest.WantState(t, m, MSCRegistered)
	ptest.WantSent(t, c, 0, types.MsgLocationUpdateAccept)
	ptest.WantSent(t, c, 1, types.MsgRRCConnectionRelease)
}

// S6 trigger: an armed failure rejects the next LAU and raises the
// shared failure flag read by the MME.
func TestMSCS6ArmedFailure(t *testing.T) {
	m := fsm.New(MSCSpec(MSCOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, fsm.Ev(types.MsgLUFailureSignal))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgLocationUpdateRequest, names.UEMM))
	ptest.WantGlobal(t, c, names.GLUFail3G, 1)
	if got := c.LastSent().Kind; got != types.MsgLocationUpdateReject {
		t.Fatalf("last sent = %s, want LUReject", got)
	}
	// One-shot: the next update succeeds.
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgLocationUpdateRequest, names.UEMM))
	if got := c.Sent[len(c.Sent)-2].Kind; got != types.MsgLocationUpdateAccept {
		t.Fatalf("second LAU = %s, want accept", got)
	}
}

func TestMSCServiceAccept(t *testing.T) {
	m := fsm.New(MSCSpec(MSCOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgLocationUpdateRequest, names.UEMM))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCMServiceRequest, names.UEMM))
	if got := c.LastSent().Kind; got != types.MsgCMServiceAccept {
		t.Fatalf("last sent = %s, want CMServiceAccept", got)
	}
}

// §8 rationale: a service request from a detached device acts as an
// implicit location update.
func TestMSCImplicitUpdateViaService(t *testing.T) {
	m := fsm.New(MSCSpec(MSCOptions{}))
	c := ptest.NewCtx()
	tr := ptest.MustStep(t, m, c, ptest.FromNet(types.MsgCMServiceRequest, names.UEMM))
	if tr.Name != "svc-accept-implicit" {
		t.Fatalf("transition = %s, want svc-accept-implicit", tr.Name)
	}
	ptest.WantState(t, m, MSCRegistered)
}

func TestMSCDetach(t *testing.T) {
	m := fsm.New(MSCSpec(MSCOptions{}))
	c := ptest.NewCtx()
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgLocationUpdateRequest, names.UEMM))
	ptest.MustStep(t, m, c, ptest.FromNet(types.MsgDetachRequest, names.UEMM))
	ptest.WantState(t, m, MSCDetached)
	if got := c.LastSent().Kind; got != types.MsgDetachAccept {
		t.Fatalf("last sent = %s, want DetachAccept", got)
	}
}
