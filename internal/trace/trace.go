// Package trace implements the phone-side protocol trace collection of
// §3.3. Cellular modem vendors expose a debugging mode (QXDM,
// XCAL-Mobile) that CNetVerifier taps for five fields per trace item:
//
//  1. timestamp in hh:mm:ss.ms format,
//  2. trace type (e.g. STATE, SIGNAL, CONFIG),
//  3. network system (3G or 4G),
//  4. the module generating the trace (e.g. MM or CM/CC),
//  5. a free-form description (e.g. "a call is established").
//
// This package defines the record type, an in-memory Collector the
// emulated stacks write to, a line codec compatible with the format
// above, and filtering/analysis helpers used by the validation phase.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"cnetverifier/internal/types"
)

// Type classifies a trace item.
type Type string

// Trace item types.
const (
	TypeState  Type = "STATE"  // a protocol state change
	TypeSignal Type = "SIGNAL" // a signaling message sent/received
	TypeConfig Type = "CONFIG" // a radio/channel configuration change
	TypeError  Type = "ERROR"  // a failure indication
	TypeInfo   Type = "INFO"   // anything else

	// Reliable-delivery record types (the netemu retransmission layer,
	// modeled on the NAS T3410/T3310 timer discipline of §3.3): an RTO
	// expiry, the retransmission it triggers, and the abort after the
	// retry budget is exhausted.
	TypeExpiry Type = "EXPIRY" // a retransmission timer fired
	TypeRetx   Type = "RETX"   // a frame was retransmitted
	TypeAbort  Type = "ABORT"  // retries exhausted; transfer abandoned
)

// Record is one trace item in the §3.3 format.
type Record struct {
	// At is the virtual-time offset of the item since trace start.
	At time.Duration
	// Type is the trace type.
	Type Type
	// System is the network system generating the item.
	System types.System
	// Module is the generating module ("MM", "CM/CC", "EMM", ...).
	Module string
	// Desc is the human-readable description.
	Desc string
}

// Timestamp renders At in the hh:mm:ss.ms format of §3.3.
func (r Record) Timestamp() string {
	d := r.At
	h := d / time.Hour
	d -= h * time.Hour
	m := d / time.Minute
	d -= m * time.Minute
	s := d / time.Second
	d -= s * time.Second
	ms := d / time.Millisecond
	return fmt.Sprintf("%02d:%02d:%02d.%03d", h, m, s, ms)
}

// String renders the record as one trace line:
//
//	12:01:05.250 STATE 4G EMM attach complete
func (r Record) String() string {
	return fmt.Sprintf("%s %s %s %s %s", r.Timestamp(), r.Type, r.System, r.Module, r.Desc)
}

// ParseRecord parses a line in the String format. The description may
// contain spaces.
func ParseRecord(line string) (Record, error) {
	parts := strings.SplitN(strings.TrimSpace(line), " ", 5)
	if len(parts) < 5 {
		return Record{}, fmt.Errorf("trace: malformed line %q", line)
	}
	at, err := parseTimestamp(parts[0])
	if err != nil {
		return Record{}, fmt.Errorf("trace: %w in %q", err, line)
	}
	sys, err := parseSystem(parts[2])
	if err != nil {
		return Record{}, fmt.Errorf("trace: %w in %q", err, line)
	}
	return Record{
		At:     at,
		Type:   Type(parts[1]),
		System: sys,
		Module: parts[3],
		Desc:   parts[4],
	}, nil
}

func parseTimestamp(s string) (time.Duration, error) {
	var h, m, sec, ms int
	if _, err := fmt.Sscanf(s, "%02d:%02d:%02d.%03d", &h, &m, &sec, &ms); err != nil {
		return 0, fmt.Errorf("bad timestamp %q", s)
	}
	if m > 59 || sec > 59 || h < 0 || m < 0 || sec < 0 || ms < 0 {
		return 0, fmt.Errorf("bad timestamp %q", s)
	}
	return time.Duration(h)*time.Hour + time.Duration(m)*time.Minute +
		time.Duration(sec)*time.Second + time.Duration(ms)*time.Millisecond, nil
}

func parseSystem(s string) (types.System, error) {
	switch s {
	case "3G":
		return types.Sys3G, nil
	case "4G":
		return types.Sys4G, nil
	case "none":
		return types.SysNone, nil
	default:
		return 0, fmt.Errorf("bad system %q", s)
	}
}

// Collector accumulates records. It is safe for concurrent use (the
// socket prototype writes from multiple goroutines).
type Collector struct {
	mu   sync.Mutex
	recs []Record
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add appends a record.
func (c *Collector) Add(r Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recs = append(c.recs, r)
}

// Addf appends a record built from the arguments.
func (c *Collector) Addf(at time.Duration, typ Type, sys types.System, module, format string, args ...any) {
	c.Add(Record{At: at, Type: typ, System: sys, Module: module, Desc: fmt.Sprintf(format, args...)})
}

// Records returns a copy of the collected records in order.
func (c *Collector) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Record(nil), c.recs...)
}

// Len returns the number of collected records.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// Reset drops all records.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recs = nil
}

// WriteTo writes all records as lines; it implements io.WriterTo.
func (c *Collector) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, r := range c.Records() {
		k, err := fmt.Fprintln(w, r.String())
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Read parses records from a line stream, skipping blank lines.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		rec, err := ParseRecord(line)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// Filter returns the records matching every non-zero criterion.
type Filter struct {
	Type   Type
	System types.System
	Module string
	// Contains requires the description to contain the substring.
	Contains string
	// After/Before bound the timestamp (inclusive / exclusive). Zero
	// values disable the bound.
	After  time.Duration
	Before time.Duration
}

// Apply returns the matching subset in order.
func (f Filter) Apply(recs []Record) []Record {
	var out []Record
	for _, r := range recs {
		if f.Type != "" && r.Type != f.Type {
			continue
		}
		if f.System != types.SysNone && r.System != f.System {
			continue
		}
		if f.Module != "" && r.Module != f.Module {
			continue
		}
		if f.Contains != "" && !strings.Contains(r.Desc, f.Contains) {
			continue
		}
		if f.After != 0 && r.At < f.After {
			continue
		}
		if f.Before != 0 && r.At >= f.Before {
			continue
		}
		out = append(out, r)
	}
	return out
}

// FirstMatch returns the first record matching the filter and true, or
// a zero record and false.
func (f Filter) FirstMatch(recs []Record) (Record, bool) {
	for _, r := range recs {
		if len(f.Apply([]Record{r})) == 1 {
			return r, true
		}
	}
	return Record{}, false
}

// Span returns the time between the first record matching start and the
// next record matching end, or false when either is absent. It is the
// primitive behind the validation-phase latency measurements (e.g.
// Figure 4's detach→reattach recovery time).
func Span(recs []Record, start, end Filter) (time.Duration, bool) {
	s, ok := start.FirstMatch(recs)
	if !ok {
		return 0, false
	}
	var after []Record
	for _, r := range recs {
		if r.At >= s.At {
			after = append(after, r)
		}
	}
	e, ok := end.FirstMatch(after)
	if !ok {
		return 0, false
	}
	return e.At - s.At, true
}
