package trace

import (
	"testing"
	"time"

	"cnetverifier/internal/types"
)

// FuzzRecordLine drives arbitrary lines through the §3.3 trace codec
// and asserts its round-trip contract: any line ParseRecord accepts
// renders back to a canonical form that re-parses to the identical
// record, and renders identically from then on (one render reaches the
// fixpoint). The seeds cover every record type, including the
// reliable-delivery additions (EXPIRY/RETX/ABORT).
func FuzzRecordLine(f *testing.F) {
	seeds := []Record{
		{At: 0, Type: TypeState, System: types.Sys4G, Module: "EMM", Desc: "attach complete"},
		{At: 45*time.Minute + 5*time.Second + 250*time.Millisecond, Type: TypeSignal, System: types.Sys3G, Module: "MM", Desc: "LocationUpdateRequest sent"},
		{At: 12 * time.Hour, Type: TypeConfig, System: types.SysNone, Module: "RRC3G-UE", Desc: "channel reconfigured: DCH"},
		{At: time.Second, Type: TypeError, System: types.Sys4G, Module: "EMM-UE", Desc: "signal AttachRequest lost over the air"},
		{At: 1600 * time.Millisecond, Type: TypeExpiry, System: types.Sys4G, Module: "EMM-UE", Desc: "RTO 600ms expired for AttachRequest (seq 1, attempt 1)"},
		{At: 1600 * time.Millisecond, Type: TypeRetx, System: types.Sys4G, Module: "EMM-UE", Desc: "retransmit AttachRequest (seq 1, attempt 1, next RTO 1.2s)"},
		{At: 22*time.Second + 630*time.Millisecond, Type: TypeAbort, System: types.Sys4G, Module: "EMM-MME", Desc: "TrackingAreaUpdateReject (seq 7) abandoned after 5 attempts"},
		{At: 3 * time.Second, Type: TypeInfo, System: types.Sys3G, Module: "GMM-UE", Desc: "duplicate RoutingAreaUpdateRequest (seq 5) suppressed"},
	}
	for _, r := range seeds {
		f.Add(r.String())
	}
	// Malformed shapes that must be rejected, not crash.
	f.Add("")
	f.Add("00:00:00.000 STATE 4G EMM")      // missing description
	f.Add("99:99:99.999 STATE 4G EMM desc") // out-of-range timestamp
	f.Add("00:00:00.000 STATE 5G EMM desc") // unknown system
	f.Add("not a trace line at all, sorry")

	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseRecord(line)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		if rec.At < 0 {
			t.Fatalf("accepted negative timestamp %v from %q", rec.At, line)
		}
		// An empty description renders with a trailing space that the
		// parser's trim then folds away; such records are only produced
		// by hand, never by the collector, and are not canonical.
		if rec.Desc == "" {
			return
		}
		canon := rec.String()
		again, err := ParseRecord(canon)
		if err != nil {
			t.Fatalf("canonical render of %q does not re-parse: %v\nrender: %q", line, err, canon)
		}
		if again != rec {
			t.Fatalf("round-trip changed the record:\n  first:  %#v\n  second: %#v", rec, again)
		}
		if got := again.String(); got != canon {
			t.Fatalf("render not a fixpoint:\n  first:  %q\n  second: %q", canon, got)
		}
	})
}
