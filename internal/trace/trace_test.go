package trace

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"cnetverifier/internal/types"
)

func rec(at time.Duration, typ Type, sys types.System, mod, desc string) Record {
	return Record{At: at, Type: typ, System: sys, Module: mod, Desc: desc}
}

func TestTimestampFormat(t *testing.T) {
	cases := []struct {
		at   time.Duration
		want string
	}{
		{0, "00:00:00.000"},
		{time.Millisecond * 1, "00:00:00.001"},
		{time.Hour + 2*time.Minute + 3*time.Second + 45*time.Millisecond, "01:02:03.045"},
		{25 * time.Hour, "25:00:00.000"},
	}
	for _, c := range cases {
		if got := (Record{At: c.at}).Timestamp(); got != c.want {
			t.Errorf("Timestamp(%v) = %q, want %q", c.at, got, c.want)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := rec(90*time.Second+250*time.Millisecond, TypeState, types.Sys4G, "EMM", "attach complete")
	line := r.String()
	if line != "00:01:30.250 STATE 4G EMM attach complete" {
		t.Fatalf("line = %q", line)
	}
	back, err := ParseRecord(line)
	if err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Fatalf("round trip = %+v, want %+v", back, r)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"only three fields here",
		"notatime STATE 4G EMM x",
		"00:00:00.000 STATE 5G EMM x",
		"00:99:00.000 STATE 4G EMM x",
	}
	for _, line := range bad {
		if _, err := ParseRecord(line); err == nil {
			t.Errorf("ParseRecord(%q) succeeded", line)
		}
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.Addf(time.Second, TypeSignal, types.Sys3G, "MM", "LAU %s", "sent")
	c.Add(rec(2*time.Second, TypeState, types.Sys3G, "MM", "registered"))
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	recs := c.Records()
	if recs[0].Desc != "LAU sent" {
		t.Fatalf("recs[0] = %+v", recs[0])
	}
	// Records returns a copy.
	recs[0].Desc = "mutated"
	if c.Records()[0].Desc != "LAU sent" {
		t.Fatal("Records leaked internal slice")
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestWriteToAndRead(t *testing.T) {
	c := NewCollector()
	c.Add(rec(time.Second, TypeSignal, types.Sys3G, "MM", "location update request"))
	c.Add(rec(2*time.Second, TypeConfig, types.Sys3G, "3G-RRC", "64QAM disabled"))
	var b strings.Builder
	if _, err := c.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(b.String() + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Module != "3G-RRC" {
		t.Fatalf("read back %+v", got)
	}
}

func TestReadError(t *testing.T) {
	if _, err := Read(strings.NewReader("garbage line\n")); err == nil {
		t.Fatal("bad stream accepted")
	}
}

func sampleRecs() []Record {
	return []Record{
		rec(1*time.Second, TypeSignal, types.Sys4G, "EMM", "attach request"),
		rec(2*time.Second, TypeState, types.Sys4G, "EMM", "registered"),
		rec(3*time.Second, TypeSignal, types.Sys3G, "MM", "location update request"),
		rec(5*time.Second, TypeState, types.Sys3G, "MM", "registered"),
		rec(7*time.Second, TypeError, types.Sys4G, "EMM", "tracking area update reject"),
		rec(9*time.Second, TypeState, types.Sys4G, "EMM", "registered"),
	}
}

func TestFilter(t *testing.T) {
	recs := sampleRecs()
	if got := (Filter{System: types.Sys3G}).Apply(recs); len(got) != 2 {
		t.Fatalf("system filter = %d records", len(got))
	}
	if got := (Filter{Module: "EMM", Type: TypeState}).Apply(recs); len(got) != 2 {
		t.Fatalf("module+type filter = %d records", len(got))
	}
	if got := (Filter{Contains: "reject"}).Apply(recs); len(got) != 1 {
		t.Fatalf("contains filter = %d records", len(got))
	}
	if got := (Filter{After: 3 * time.Second, Before: 7 * time.Second}).Apply(recs); len(got) != 2 {
		t.Fatalf("time filter = %d records", len(got))
	}
}

func TestFirstMatch(t *testing.T) {
	recs := sampleRecs()
	r, ok := Filter{Type: TypeError}.FirstMatch(recs)
	if !ok || r.At != 7*time.Second {
		t.Fatalf("first match = %+v, %v", r, ok)
	}
	if _, ok := (Filter{Module: "nope"}).FirstMatch(recs); ok {
		t.Fatal("matched nothing expected")
	}
}

// Figure 4 primitive: the recovery time between the TAU reject and the
// subsequent re-registration.
func TestSpanRecoveryTime(t *testing.T) {
	recs := sampleRecs()
	d, ok := Span(recs,
		Filter{Type: TypeError, Contains: "reject"},
		Filter{Type: TypeState, Contains: "registered", System: types.Sys4G})
	if !ok {
		t.Fatal("span not found")
	}
	if d != 2*time.Second {
		t.Fatalf("recovery span = %v, want 2s", d)
	}
	if _, ok := Span(recs, Filter{Contains: "missing"}, Filter{}); ok {
		t.Fatal("span with absent start matched")
	}
	if _, ok := Span(recs, Filter{Type: TypeError}, Filter{Contains: "missing"}); ok {
		t.Fatal("span with absent end matched")
	}
}

// Property: String/ParseRecord round-trips for arbitrary (bounded)
// records whose descriptions are printable and non-empty.
func TestQuickRoundTrip(t *testing.T) {
	f := func(ms uint32, mod uint8, descSeed uint8) bool {
		r := Record{
			At:     time.Duration(ms%86_400_000) * time.Millisecond,
			Type:   []Type{TypeState, TypeSignal, TypeConfig, TypeError, TypeInfo}[int(mod)%5],
			System: []types.System{types.Sys3G, types.Sys4G}[int(mod)%2],
			Module: []string{"EMM", "MM", "CM/CC", "3G-RRC"}[int(mod)%4],
			Desc:   strings.Repeat("x", int(descSeed)%5+1) + " event",
		}
		back, err := ParseRecord(r.String())
		return err == nil && back == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorConcurrency(t *testing.T) {
	c := NewCollector()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				c.Addf(time.Duration(j)*time.Millisecond, TypeInfo, types.Sys4G, "EMM", "tick")
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if c.Len() != 800 {
		t.Fatalf("len = %d, want 800", c.Len())
	}
}
