// Package userstudy reproduces the two-week, 20-volunteer user study
// of §7 (Table 5) as a stochastic usage simulation.
//
// The paper instrumented real phones; here each virtual participant
// generates calls, mobility, data usage and attaches over simulated
// days, and each finding's occurrence is decided by its *mechanism*
// wherever the mechanism is deterministic (S3: OP-II policy + mobile
// data on; S5: concurrent data traffic during a 3G call), or by a rate
// calibrated to the paper's measurement where the trigger is
// environmental (S1: how often 3G deactivates a PDP context; S4: how
// often a dial lands inside a location update; S6: how often a CSFB
// location update fails; S2: how often attach signaling is lost under
// good coverage).
package userstudy

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Config parameterizes the cohort and the calibrated environmental
// rates. The defaults reproduce §7's observed event counts.
type Config struct {
	// Users4G and Users3G split the 20 volunteers (§7: 12 use
	// 4G-capable phones, 8 use 3G-only phones).
	Users4G, Users3G int
	// Days is the study length (two weeks).
	Days int

	// CallsPerUserPerDay drives call volume. §7 observed 190 CSFB
	// calls from 12 users and 146 3G CS calls from 8 users over 14
	// days: ≈1.13 and ≈1.30 calls/user/day.
	CallsPerUser4GPerDay float64
	CallsPerUser3GPerDay float64

	// PDataOnDuringCSFB is the probability mobile data is enabled
	// during a CSFB call (§7: 103 of 190).
	PDataOnDuringCSFB float64
	// POPIIUser is the fraction of 4G users on OP-II (§7: 64 of the
	// 103 data-on CSFB calls were OP-II's).
	POPIIUser float64
	// PDataTrafficDuringCall is the probability data traffic is
	// actively flowing during a 3G CS call (§7: 113 of 146 → S5).
	PDataTrafficDuringCall float64
	// PPDPDeactInThreeG is the per-switch probability that 3G
	// deactivates the PDP context before the return switch (§7: 4 of
	// 129 data-on switches → S1).
	PPDPDeactInThreeG float64
	// PDialDuringLAU is the probability an outgoing 3G call lands
	// inside an ongoing location-area update (§7: 6 of 79 → S4).
	PDialDuringLAU float64
	// PCSFBLUFailure is the per-CSFB-call probability that a location
	// update fails and propagates (§7: 5 of 190 → S6).
	PCSFBLUFailure float64
	// PAttachSignalLoss is the per-attach probability of lost attach
	// signaling under good coverage (§7: 0 of 30 → S2).
	PAttachSignalLoss float64
	// ExtraSwitchesPerUser4G adds the non-CSFB inter-system switches
	// (§7: 436 total, 380 CSFB-caused; ≈56 from mobility/carrier).
	ExtraSwitchesPerUser4G float64
	// AttachesPerUser is device restarts/auto-recoveries per user over
	// the study (§7: 30 attaches across 20 users).
	AttachesPerUser float64
}

// DefaultConfig returns the §7-calibrated configuration.
func DefaultConfig() Config {
	return Config{
		Users4G:                12,
		Users3G:                8,
		Days:                   14,
		CallsPerUser4GPerDay:   190.0 / 12 / 14,
		CallsPerUser3GPerDay:   146.0 / 8 / 14,
		PDataOnDuringCSFB:      103.0 / 190,
		POPIIUser:              64.0 / 103,
		PDataTrafficDuringCall: 113.0 / 146,
		PPDPDeactInThreeG:      4.0 / 129,
		PDialDuringLAU:         6.0 / 79,
		PCSFBLUFailure:         5.0 / 190,
		PAttachSignalLoss:      0.001,
		ExtraSwitchesPerUser4G: 56.0 / 12,
		AttachesPerUser:        30.0 / 20,
	}
}

// Occurrence is one Table 5 row.
type Occurrence struct {
	Finding  string
	Observed bool
	Events   int // numerator
	Exposure int // denominator
}

// Rate returns the occurrence probability.
func (o Occurrence) Rate() float64 {
	if o.Exposure == 0 {
		return 0
	}
	return float64(o.Events) / float64(o.Exposure)
}

func (o Occurrence) String() string {
	return fmt.Sprintf("%s: %.1f%% (%d/%d)", o.Finding, o.Rate()*100, o.Events, o.Exposure)
}

// Result aggregates the study.
type Result struct {
	// Raw event counts mirroring §7's first paragraph.
	CSFBCalls, CSCalls3G, InterSystemSwitches, Attaches int
	// Occurrences are the S1–S6 rows of Table 5, in order.
	Occurrences [6]Occurrence
}

// Table renders the result as a Table 5-style text table.
func (r Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "observed: %d CSFB calls, %d 3G CS calls, %d inter-system switches, %d attaches\n",
		r.CSFBCalls, r.CSCalls3G, r.InterSystemSwitches, r.Attaches)
	fmt.Fprintf(&b, "%-8s %-10s %-12s %s\n", "Problem", "Observed", "Occurrence", "(events/exposure)")
	for _, o := range r.Occurrences {
		obs := "no"
		if o.Observed {
			obs = "yes"
		}
		fmt.Fprintf(&b, "%-8s %-10s %-12s (%d/%d)\n", o.Finding, obs,
			fmt.Sprintf("%.1f%%", o.Rate()*100), o.Events, o.Exposure)
	}
	return b.String()
}

// poisson draws a Poisson variate via Knuth inversion (small means).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

// Run simulates the study with the configuration and seed.
func Run(cfg Config, seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	var res Result

	var s1Events, s1Exposure int
	var s2Events, s2Exposure int
	var s3Events, s3Exposure int
	var s4Events, s4Exposure int
	var s5Events, s5Exposure int
	var s6Events, s6Exposure int

	// 4G users: CSFB calls, inter-system switches, S1/S3/S6 exposure.
	for u := 0; u < cfg.Users4G; u++ {
		onOPII := rng.Float64() < cfg.POPIIUser
		for d := 0; d < cfg.Days; d++ {
			calls := poisson(rng, cfg.CallsPerUser4GPerDay)
			for c := 0; c < calls; c++ {
				res.CSFBCalls++
				res.InterSystemSwitches += 2 // fall to 3G and return
				dataOn := rng.Float64() < cfg.PDataOnDuringCSFB

				// S3: stuck in 3G after the call — mechanism: the
				// reselection policy (OP-II) cannot leave a connected
				// RRC state while data is on (§5.3).
				if dataOn {
					s3Exposure++
					if onOPII {
						s3Events++
					}
				}

				// S1 exposure: a 4G→3G switch with mobile data on; the
				// event fires when 3G deactivates the PDP context
				// before the return (§5.1).
				if dataOn {
					s1Exposure++
					if rng.Float64() < cfg.PPDPDeactInThreeG {
						s1Events++
					}
				}

				// S6: the CSFB location updates fail and the failure
				// propagates (§6.3).
				s6Exposure++
				if rng.Float64() < cfg.PCSFBLUFailure {
					s6Events++
				}
			}
		}
		// Mobility/carrier-initiated switches (no CSFB).
		extra := poisson(rng, cfg.ExtraSwitchesPerUser4G)
		res.InterSystemSwitches += extra
		for i := 0; i < extra; i++ {
			if rng.Float64() < cfg.PDataOnDuringCSFB {
				s1Exposure++
				if rng.Float64() < cfg.PPDPDeactInThreeG {
					s1Events++
				}
			}
		}
	}

	// 3G users: CS calls, S4/S5 exposure.
	for u := 0; u < cfg.Users3G; u++ {
		for d := 0; d < cfg.Days; d++ {
			calls := poisson(rng, cfg.CallsPerUser3GPerDay)
			for c := 0; c < calls; c++ {
				res.CSCalls3G++
				// S5: a CS call while data traffic flows shares the
				// channel and downgrades the modulation (§6.2) —
				// mechanism-deterministic given concurrent traffic, so
				// the occurrence rate is the concurrency rate.
				s5Exposure++
				if rng.Float64() < cfg.PDataTrafficDuringCall {
					s5Events++
				}
				// Roughly half the calls are outgoing (§7: 79 of 146).
				if rng.Float64() < 79.0/146 {
					s4Exposure++
					if rng.Float64() < cfg.PDialDuringLAU {
						s4Events++
					}
				}
			}
		}
	}

	// Attaches: restarts and out-of-service recoveries (S2 exposure).
	totalUsers := cfg.Users4G + cfg.Users3G
	for u := 0; u < totalUsers; u++ {
		n := poisson(rng, cfg.AttachesPerUser)
		res.Attaches += n
		for i := 0; i < n; i++ {
			s2Exposure++
			if rng.Float64() < cfg.PAttachSignalLoss {
				s2Events++
			}
		}
	}

	res.Occurrences = [6]Occurrence{
		{Finding: "S1", Observed: s1Events > 0, Events: s1Events, Exposure: s1Exposure},
		{Finding: "S2", Observed: s2Events > 0, Events: s2Events, Exposure: s2Exposure},
		{Finding: "S3", Observed: s3Events > 0, Events: s3Events, Exposure: s3Exposure},
		{Finding: "S4", Observed: s4Events > 0, Events: s4Events, Exposure: s4Exposure},
		{Finding: "S5", Observed: s5Events > 0, Events: s5Events, Exposure: s5Exposure},
		{Finding: "S6", Observed: s6Events > 0, Events: s6Events, Exposure: s6Exposure},
	}
	return res
}
