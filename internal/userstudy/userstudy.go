// Package userstudy reproduces the two-week, 20-volunteer user study
// of §7 (Table 5) as a stochastic usage simulation.
//
// The paper instrumented real phones; here each virtual participant
// generates calls, mobility, data usage and attaches over simulated
// days, and each finding's occurrence is decided by its *mechanism*
// wherever the mechanism is deterministic (S3: OP-II policy + mobile
// data on; S5: concurrent data traffic during a 3G call), or by a rate
// calibrated to the paper's measurement where the trigger is
// environmental (S1: how often 3G deactivates a PDP context; S4: how
// often a dial lands inside a location update; S6: how often a CSFB
// location update fails; S2: how often attach signaling is lost under
// good coverage).
package userstudy

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Config parameterizes the cohort and the calibrated environmental
// rates. The defaults reproduce §7's observed event counts.
type Config struct {
	// Users4G and Users3G split the 20 volunteers (§7: 12 use
	// 4G-capable phones, 8 use 3G-only phones).
	Users4G, Users3G int
	// Days is the study length (two weeks).
	Days int

	// CallsPerUserPerDay drives call volume. §7 observed 190 CSFB
	// calls from 12 users and 146 3G CS calls from 8 users over 14
	// days: ≈1.13 and ≈1.30 calls/user/day.
	CallsPerUser4GPerDay float64
	CallsPerUser3GPerDay float64

	// PDataOnDuringCSFB is the probability mobile data is enabled
	// during a CSFB call (§7: 103 of 190).
	PDataOnDuringCSFB float64
	// POPIIUser is the fraction of 4G users on OP-II (§7: 64 of the
	// 103 data-on CSFB calls were OP-II's).
	POPIIUser float64
	// PDataTrafficDuringCall is the probability data traffic is
	// actively flowing during a 3G CS call (§7: 113 of 146 → S5).
	PDataTrafficDuringCall float64
	// PPDPDeactInThreeG is the per-switch probability that 3G
	// deactivates the PDP context before the return switch (§7: 4 of
	// 129 data-on switches → S1).
	PPDPDeactInThreeG float64
	// PDialDuringLAU is the probability an outgoing 3G call lands
	// inside an ongoing location-area update (§7: 6 of 79 → S4).
	PDialDuringLAU float64
	// PCSFBLUFailure is the per-CSFB-call probability that a location
	// update fails and propagates (§7: 5 of 190 → S6).
	PCSFBLUFailure float64
	// PAttachSignalLoss is the per-attach probability of lost attach
	// signaling under good coverage (§7: 0 of 30 → S2).
	PAttachSignalLoss float64
	// ExtraSwitchesPerUser4G adds the non-CSFB inter-system switches
	// (§7: 436 total, 380 CSFB-caused; ≈56 from mobility/carrier).
	ExtraSwitchesPerUser4G float64
	// AttachesPerUser is device restarts/auto-recoveries per user over
	// the study (§7: 30 attaches across 20 users).
	AttachesPerUser float64
}

// DefaultConfig returns the §7-calibrated configuration.
func DefaultConfig() Config {
	return Config{
		Users4G:                12,
		Users3G:                8,
		Days:                   14,
		CallsPerUser4GPerDay:   190.0 / 12 / 14,
		CallsPerUser3GPerDay:   146.0 / 8 / 14,
		PDataOnDuringCSFB:      103.0 / 190,
		POPIIUser:              64.0 / 103,
		PDataTrafficDuringCall: 113.0 / 146,
		PPDPDeactInThreeG:      4.0 / 129,
		PDialDuringLAU:         6.0 / 79,
		PCSFBLUFailure:         5.0 / 190,
		PAttachSignalLoss:      0.001,
		ExtraSwitchesPerUser4G: 56.0 / 12,
		AttachesPerUser:        30.0 / 20,
	}
}

// Occurrence is one Table 5 row.
type Occurrence struct {
	Finding  string
	Observed bool
	Events   int // numerator
	Exposure int // denominator
}

// Rate returns the occurrence probability.
func (o Occurrence) Rate() float64 {
	if o.Exposure == 0 {
		return 0
	}
	return float64(o.Events) / float64(o.Exposure)
}

func (o Occurrence) String() string {
	return fmt.Sprintf("%s: %.1f%% (%d/%d)", o.Finding, o.Rate()*100, o.Events, o.Exposure)
}

// Result aggregates the study.
type Result struct {
	// Raw event counts mirroring §7's first paragraph.
	CSFBCalls, CSCalls3G, InterSystemSwitches, Attaches int
	// Occurrences are the S1–S6 rows of Table 5, in order.
	Occurrences [6]Occurrence
}

// Table renders the result as a Table 5-style text table.
func (r Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "observed: %d CSFB calls, %d 3G CS calls, %d inter-system switches, %d attaches\n",
		r.CSFBCalls, r.CSCalls3G, r.InterSystemSwitches, r.Attaches)
	fmt.Fprintf(&b, "%-8s %-10s %-12s %s\n", "Problem", "Observed", "Occurrence", "(events/exposure)")
	for _, o := range r.Occurrences {
		obs := "no"
		if o.Observed {
			obs = "yes"
		}
		fmt.Fprintf(&b, "%-8s %-10s %-12s (%d/%d)\n", o.Finding, obs,
			fmt.Sprintf("%.1f%%", o.Rate()*100), o.Events, o.Exposure)
	}
	return b.String()
}

// OutgoingCallFraction is the share of 3G CS calls that are
// mobile-originated (§7: 79 of the 146 observed calls) — only an
// outgoing call can land inside an ongoing location update (S4).
const OutgoingCallFraction = 79.0 / 146

// CSFBCallSample is the mechanism outcome of one CSFB call: the §5/§6
// triggers a single 4G voice call can fire. Exposure flags accompany
// the event flags so callers can tally Table 5 denominators without
// re-deriving the mechanism conditions.
type CSFBCallSample struct {
	// DataOn reports mobile data enabled during the call.
	DataOn bool
	// S1Exposed/S1: a data-on switch, and 3G deactivated the PDP
	// context before the return switch (§5.1).
	S1Exposed, S1 bool
	// S3Exposed/S3: data-on exposure, and the OP-II reselection policy
	// keeps the device stuck in 3G (§5.3) — deterministic given the
	// operator, so no extra draw.
	S3Exposed, S3 bool
	// S6: the CSFB location update failed and the failure propagated
	// (§6.3). Every CSFB call is exposed.
	S6 bool
}

// SampleCSFBCall draws the mechanism triggers of one CSFB call. The
// draw order (data-on, then S1 if exposed, then S6) is part of the
// package's determinism contract: Run and the campaign engine consume
// the identical stream.
func (c Config) SampleCSFBCall(rng *rand.Rand, onOPII bool) CSFBCallSample {
	s := CSFBCallSample{DataOn: rng.Float64() < c.PDataOnDuringCSFB}
	if s.DataOn {
		s.S3Exposed = true
		s.S3 = onOPII
		s.S1Exposed = true
		s.S1 = rng.Float64() < c.PPDPDeactInThreeG
	}
	s.S6 = rng.Float64() < c.PCSFBLUFailure
	return s
}

// CSCallSample is the mechanism outcome of one 3G CS call.
type CSCallSample struct {
	// S5: data traffic was flowing during the call, so the shared
	// channel downgraded its modulation (§6.2) — the occurrence rate is
	// the concurrency rate.
	S5 bool
	// Outgoing reports a mobile-originated call; only those are S4
	// exposed.
	Outgoing bool
	// S4Exposed/S4: an outgoing dial, and it landed inside an ongoing
	// location-area update (§6.1).
	S4Exposed, S4 bool
}

// SampleCSCall3G draws the mechanism triggers of one 3G CS call.
func (c Config) SampleCSCall3G(rng *rand.Rand) CSCallSample {
	s := CSCallSample{S5: rng.Float64() < c.PDataTrafficDuringCall}
	s.Outgoing = rng.Float64() < OutgoingCallFraction
	if s.Outgoing {
		s.S4Exposed = true
		s.S4 = rng.Float64() < c.PDialDuringLAU
	}
	return s
}

// SwitchSample is the mechanism outcome of one non-CSFB inter-system
// switch (mobility or carrier-initiated).
type SwitchSample struct {
	// DataOn reports mobile data enabled across the switch (the S1
	// exposure condition).
	DataOn bool
	// S1: 3G deactivated the PDP context before the return switch.
	S1 bool
}

// SampleSwitch draws the S1 trigger of one non-CSFB switch.
func (c Config) SampleSwitch(rng *rand.Rand) SwitchSample {
	s := SwitchSample{DataOn: rng.Float64() < c.PDataOnDuringCSFB}
	if s.DataOn {
		s.S1 = rng.Float64() < c.PPDPDeactInThreeG
	}
	return s
}

// SampleAttach draws the S2 trigger of one attach: whether attach
// signaling was lost under good coverage (§4).
func (c Config) SampleAttach(rng *rand.Rand) bool {
	return rng.Float64() < c.PAttachSignalLoss
}

// poisson draws a Poisson variate via Knuth inversion (small means).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

// Run simulates the study with the configuration and seed.
func Run(cfg Config, seed int64) Result {
	return RunWith(cfg, rand.New(rand.NewSource(seed)))
}

// RunWith simulates the study drawing every trigger from the supplied
// generator — the caller owns the seed, so a larger harness (the
// campaign engine, a sweep) can thread one deterministic stream through
// the whole run instead of each phase constructing its own.
func RunWith(cfg Config, rng *rand.Rand) Result {
	var res Result

	var s1Events, s1Exposure int
	var s2Events, s2Exposure int
	var s3Events, s3Exposure int
	var s4Events, s4Exposure int
	var s5Events, s5Exposure int
	var s6Events, s6Exposure int

	// 4G users: CSFB calls, inter-system switches, S1/S3/S6 exposure.
	for u := 0; u < cfg.Users4G; u++ {
		onOPII := rng.Float64() < cfg.POPIIUser
		for d := 0; d < cfg.Days; d++ {
			calls := poisson(rng, cfg.CallsPerUser4GPerDay)
			for c := 0; c < calls; c++ {
				res.CSFBCalls++
				res.InterSystemSwitches += 2 // fall to 3G and return
				s := cfg.SampleCSFBCall(rng, onOPII)
				if s.S3Exposed {
					s3Exposure++
					if s.S3 {
						s3Events++
					}
				}
				if s.S1Exposed {
					s1Exposure++
					if s.S1 {
						s1Events++
					}
				}
				s6Exposure++
				if s.S6 {
					s6Events++
				}
			}
		}
		// Mobility/carrier-initiated switches (no CSFB).
		extra := poisson(rng, cfg.ExtraSwitchesPerUser4G)
		res.InterSystemSwitches += extra
		for i := 0; i < extra; i++ {
			if sw := cfg.SampleSwitch(rng); sw.DataOn {
				s1Exposure++
				if sw.S1 {
					s1Events++
				}
			}
		}
	}

	// 3G users: CS calls, S4/S5 exposure.
	for u := 0; u < cfg.Users3G; u++ {
		for d := 0; d < cfg.Days; d++ {
			calls := poisson(rng, cfg.CallsPerUser3GPerDay)
			for c := 0; c < calls; c++ {
				res.CSCalls3G++
				s := cfg.SampleCSCall3G(rng)
				s5Exposure++
				if s.S5 {
					s5Events++
				}
				if s.S4Exposed {
					s4Exposure++
					if s.S4 {
						s4Events++
					}
				}
			}
		}
	}

	// Attaches: restarts and out-of-service recoveries (S2 exposure).
	totalUsers := cfg.Users4G + cfg.Users3G
	for u := 0; u < totalUsers; u++ {
		n := poisson(rng, cfg.AttachesPerUser)
		res.Attaches += n
		for i := 0; i < n; i++ {
			s2Exposure++
			if cfg.SampleAttach(rng) {
				s2Events++
			}
		}
	}

	res.Occurrences = [6]Occurrence{
		{Finding: "S1", Observed: s1Events > 0, Events: s1Events, Exposure: s1Exposure},
		{Finding: "S2", Observed: s2Events > 0, Events: s2Events, Exposure: s2Exposure},
		{Finding: "S3", Observed: s3Events > 0, Events: s3Events, Exposure: s3Exposure},
		{Finding: "S4", Observed: s4Events > 0, Events: s4Events, Exposure: s4Exposure},
		{Finding: "S5", Observed: s5Events > 0, Events: s5Events, Exposure: s5Exposure},
		{Finding: "S6", Observed: s6Events > 0, Events: s6Events, Exposure: s6Exposure},
	}
	return res
}
