package userstudy

import (
	"math"
	"strings"
	"testing"
)

func TestDefaultConfigComplete(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Users4G != 12 || cfg.Users3G != 8 || cfg.Days != 14 {
		t.Fatalf("cohort = %+v", cfg)
	}
	for name, p := range map[string]float64{
		"PDataOnDuringCSFB":      cfg.PDataOnDuringCSFB,
		"POPIIUser":              cfg.POPIIUser,
		"PDataTrafficDuringCall": cfg.PDataTrafficDuringCall,
		"PPDPDeactInThreeG":      cfg.PPDPDeactInThreeG,
		"PDialDuringLAU":         cfg.PDialDuringLAU,
		"PCSFBLUFailure":         cfg.PCSFBLUFailure,
	} {
		if p <= 0 || p >= 1 {
			t.Fatalf("%s = %v out of (0,1)", name, p)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(DefaultConfig(), 7)
	b := Run(DefaultConfig(), 7)
	if a != b {
		t.Fatal("same seed, different results")
	}
	c := Run(DefaultConfig(), 8)
	if a == c {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestRunEventVolumes(t *testing.T) {
	r := Run(DefaultConfig(), 1)
	// §7 volumes: 190 CSFB calls, 146 CS calls, 436 switches, 30
	// attaches. Allow generous stochastic slack.
	if r.CSFBCalls < 120 || r.CSFBCalls > 280 {
		t.Fatalf("CSFB calls = %d, want ≈190", r.CSFBCalls)
	}
	if r.CSCalls3G < 90 || r.CSCalls3G > 220 {
		t.Fatalf("CS calls = %d, want ≈146", r.CSCalls3G)
	}
	if r.InterSystemSwitches < 2*r.CSFBCalls {
		t.Fatalf("switches = %d < 2×CSFB calls", r.InterSystemSwitches)
	}
	if r.Attaches < 10 || r.Attaches > 60 {
		t.Fatalf("attaches = %d, want ≈30", r.Attaches)
	}
}

// Averaged over many seeds, the occurrence rates reproduce Table 5:
// S1 ≈3.1%, S2 ≈0%, S3 ≈62.1%, S4 ≈7.6%, S5 ≈77.4%, S6 ≈2.6%.
func TestTable5Rates(t *testing.T) {
	want := map[string]float64{
		"S1": 0.031, "S2": 0.0, "S3": 0.621, "S4": 0.076, "S5": 0.774, "S6": 0.026,
	}
	tolerance := map[string]float64{
		"S1": 0.02, "S2": 0.005, "S3": 0.10, "S4": 0.04, "S5": 0.05, "S6": 0.02,
	}
	events := map[string]int{}
	exposure := map[string]int{}
	const seeds = 40
	for seed := int64(1); seed <= seeds; seed++ {
		r := Run(DefaultConfig(), seed)
		for _, o := range r.Occurrences {
			events[o.Finding] += o.Events
			exposure[o.Finding] += o.Exposure
		}
	}
	for f, w := range want {
		if exposure[f] == 0 {
			t.Fatalf("%s: no exposure", f)
		}
		got := float64(events[f]) / float64(exposure[f])
		if math.Abs(got-w) > tolerance[f] {
			t.Errorf("%s rate = %.3f, want %.3f ± %.3f (%d/%d)",
				f, got, w, tolerance[f], events[f], exposure[f])
		}
	}
}

func TestTableRendering(t *testing.T) {
	r := Run(DefaultConfig(), 3)
	out := r.Table()
	for _, s := range []string{"S1", "S2", "S3", "S4", "S5", "S6", "CSFB calls"} {
		if !strings.Contains(out, s) {
			t.Fatalf("table missing %q:\n%s", s, out)
		}
	}
	for _, o := range r.Occurrences {
		if o.String() == "" {
			t.Fatal("empty occurrence string")
		}
	}
}

func TestOccurrenceRateZeroExposure(t *testing.T) {
	o := Occurrence{Finding: "X", Events: 0, Exposure: 0}
	if o.Rate() != 0 {
		t.Fatal("zero-exposure rate should be 0")
	}
}

func TestZeroConfig(t *testing.T) {
	r := Run(Config{}, 1)
	if r.CSFBCalls != 0 || r.CSCalls3G != 0 || r.Attaches != 0 {
		t.Fatalf("zero config produced events: %+v", r)
	}
}
