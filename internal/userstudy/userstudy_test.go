package userstudy

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestDefaultConfigComplete(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Users4G != 12 || cfg.Users3G != 8 || cfg.Days != 14 {
		t.Fatalf("cohort = %+v", cfg)
	}
	for name, p := range map[string]float64{
		"PDataOnDuringCSFB":      cfg.PDataOnDuringCSFB,
		"POPIIUser":              cfg.POPIIUser,
		"PDataTrafficDuringCall": cfg.PDataTrafficDuringCall,
		"PPDPDeactInThreeG":      cfg.PPDPDeactInThreeG,
		"PDialDuringLAU":         cfg.PDialDuringLAU,
		"PCSFBLUFailure":         cfg.PCSFBLUFailure,
	} {
		if p <= 0 || p >= 1 {
			t.Fatalf("%s = %v out of (0,1)", name, p)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(DefaultConfig(), 7)
	b := Run(DefaultConfig(), 7)
	if a != b {
		t.Fatal("same seed, different results")
	}
	c := Run(DefaultConfig(), 8)
	if a == c {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestRunEventVolumes(t *testing.T) {
	r := Run(DefaultConfig(), 1)
	// §7 volumes: 190 CSFB calls, 146 CS calls, 436 switches, 30
	// attaches. Allow generous stochastic slack.
	if r.CSFBCalls < 120 || r.CSFBCalls > 280 {
		t.Fatalf("CSFB calls = %d, want ≈190", r.CSFBCalls)
	}
	if r.CSCalls3G < 90 || r.CSCalls3G > 220 {
		t.Fatalf("CS calls = %d, want ≈146", r.CSCalls3G)
	}
	if r.InterSystemSwitches < 2*r.CSFBCalls {
		t.Fatalf("switches = %d < 2×CSFB calls", r.InterSystemSwitches)
	}
	if r.Attaches < 10 || r.Attaches > 60 {
		t.Fatalf("attaches = %d, want ≈30", r.Attaches)
	}
}

// Averaged over many seeds, the occurrence rates reproduce Table 5:
// S1 ≈3.1%, S2 ≈0%, S3 ≈62.1%, S4 ≈7.6%, S5 ≈77.4%, S6 ≈2.6%.
func TestTable5Rates(t *testing.T) {
	want := map[string]float64{
		"S1": 0.031, "S2": 0.0, "S3": 0.621, "S4": 0.076, "S5": 0.774, "S6": 0.026,
	}
	tolerance := map[string]float64{
		"S1": 0.02, "S2": 0.005, "S3": 0.10, "S4": 0.04, "S5": 0.05, "S6": 0.02,
	}
	events := map[string]int{}
	exposure := map[string]int{}
	const seeds = 40
	for seed := int64(1); seed <= seeds; seed++ {
		r := Run(DefaultConfig(), seed)
		for _, o := range r.Occurrences {
			events[o.Finding] += o.Events
			exposure[o.Finding] += o.Exposure
		}
	}
	for f, w := range want {
		if exposure[f] == 0 {
			t.Fatalf("%s: no exposure", f)
		}
		got := float64(events[f]) / float64(exposure[f])
		if math.Abs(got-w) > tolerance[f] {
			t.Errorf("%s rate = %.3f, want %.3f ± %.3f (%d/%d)",
				f, got, w, tolerance[f], events[f], exposure[f])
		}
	}
}

func TestTableRendering(t *testing.T) {
	r := Run(DefaultConfig(), 3)
	out := r.Table()
	for _, s := range []string{"S1", "S2", "S3", "S4", "S5", "S6", "CSFB calls"} {
		if !strings.Contains(out, s) {
			t.Fatalf("table missing %q:\n%s", s, out)
		}
	}
	for _, o := range r.Occurrences {
		if o.String() == "" {
			t.Fatal("empty occurrence string")
		}
	}
}

func TestOccurrenceRateZeroExposure(t *testing.T) {
	o := Occurrence{Finding: "X", Events: 0, Exposure: 0}
	if o.Rate() != 0 {
		t.Fatal("zero-exposure rate should be 0")
	}
}

// Run is a thin wrapper over RunWith: a caller-owned generator seeded
// identically reproduces the exact result, so harnesses that thread
// their own rng (the campaign engine) stay on the same stream.
func TestRunWithMatchesRun(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := Run(DefaultConfig(), seed)
		b := RunWith(DefaultConfig(), rand.New(rand.NewSource(seed)))
		if a != b {
			t.Fatalf("seed %d: RunWith diverged from Run:\n  Run:     %+v\n  RunWith: %+v", seed, a, b)
		}
	}
}

// The mechanism samplers honor their documented conditional structure:
// exposure flags gate event flags, and degenerate probabilities pin the
// outcomes.
func TestSamplerMechanisms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := DefaultConfig()
	for i := 0; i < 2000; i++ {
		s := cfg.SampleCSFBCall(rng, i%2 == 0)
		if s.S1Exposed != s.DataOn || s.S3Exposed != s.DataOn {
			t.Fatalf("S1/S3 exposure must equal data-on: %+v", s)
		}
		if (s.S1 && !s.S1Exposed) || (s.S3 && !s.S3Exposed) {
			t.Fatalf("event without exposure: %+v", s)
		}
		if s.S3Exposed && s.S3 != (i%2 == 0) {
			t.Fatalf("S3 must be the OP-II policy verbatim: %+v", s)
		}
		c := cfg.SampleCSCall3G(rng)
		if c.S4Exposed != c.Outgoing || (c.S4 && !c.S4Exposed) {
			t.Fatalf("S4 gating broken: %+v", c)
		}
		w := cfg.SampleSwitch(rng)
		if w.S1 && !w.DataOn {
			t.Fatalf("switch S1 without data on: %+v", w)
		}
	}
	// Degenerate configs force the branches.
	sure := Config{PDataOnDuringCSFB: 1, PPDPDeactInThreeG: 1, PCSFBLUFailure: 1,
		PDataTrafficDuringCall: 1, PDialDuringLAU: 1, PAttachSignalLoss: 1}
	s := sure.SampleCSFBCall(rng, true)
	if !s.DataOn || !s.S1 || !s.S3 || !s.S6 {
		t.Fatalf("certain CSFB triggers did not all fire: %+v", s)
	}
	if !sure.SampleAttach(rng) {
		t.Fatal("certain attach loss did not fire")
	}
	none := Config{}
	if z := none.SampleCSFBCall(rng, true); z.DataOn || z.S1 || z.S3 || z.S6 {
		t.Fatalf("zero-probability CSFB triggers fired: %+v", z)
	}
}

func TestZeroConfig(t *testing.T) {
	r := Run(Config{}, 1)
	if r.CSFBCalls != 0 || r.CSCalls3G != 0 || r.Attaches != 0 {
		t.Fatalf("zero config produced events: %+v", r)
	}
}
