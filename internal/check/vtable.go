package check

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the visited-state store shared by every engine:
// a lock-free open-addressing fingerprint table in the lineage of
// Spin's state store and Cliff Click's non-blocking hash table.
//
// Layout. States live in a flat []atomic.Uint64 slot array. Each slot
// packs a 48-bit fingerprint (the top bits of the state hash, forced
// non-zero) with the 16-bit minimal discovery depth:
//
//	63                    16 15           0
//	+-----------------------+-------------+
//	|      fingerprint      |  min depth  |
//	+-----------------------+-------------+
//
// A zero slot is empty. Depth 0xFFFF is the seal marker used during
// growth (below); live depths are clamped to 0xFFFE. Slots are claimed
// by CAS with linear probing from the fingerprint's home index, and a
// claimed slot only ever transitions monotonically: its depth shrinks
// (min-depth re-expansion) or it seals — never back. There are no
// deletions, which is what makes unsynchronized probing sound.
//
// Exactness backstop. In exact mode (the default) every claimed slot
// publishes, in a parallel refs array, a packed reference into an
// append-only byte arena holding the state's full canonical encoding.
// A fingerprint match is confirmed byte-for-byte against the arena
// before the slot is treated as "this state"; a genuine fingerprint
// collision keeps probing and the colliding state claims its own slot.
// Visited-set answers are therefore exact — two distinct states are
// never merged — while the per-state footprint stays a flat 16 bytes
// of table plus the encoding bytes.
//
// Compact mode (Options.Compact) drops the refs array and the arena
// entirely — Spin's hash compaction: a fingerprint match *is* the
// state, ~8 bytes of table per state, and the run reports the
// omission-probability upper bound in Result.Omission.
//
// Growth. When a table passes 3/4 occupancy any inserter allocates the
// doubled successor and publishes it with a CAS on t.next. Migration
// is cooperative and chunked: threads claim vtMigChunk-slot chunks via
// a fetch-add cursor and migrate each slot by sealing it —
//
//	empty slot:    CAS 0 → sealedEmpty (0x000000000000FFFF)
//	claimed slot:  copy (fp, depth, ref) into the successor, then
//	               CAS value → fp<<16|0xFFFF; on CAS failure (a racing
//	               depth improvement) re-read and re-copy
//
// — so a probe in the old table that reaches a sealed slot knows
// exactly where to continue: sealedEmpty ends the old table's probe
// chain (nothing it is looking for can live past a slot that was empty
// when sealed), and a sealed-full slot keeps its fingerprint so probes
// can tell "my entry moved" from "some other entry moved". Claims only
// succeed on unsealed slots, and the migrator re-reads after every
// failed seal, so no claim or depth improvement is ever lost. When
// every chunk is migrated the successor is published as the current
// table. All operations are wait-free except for bounded CAS retries
// and the ref-publication spin.
const (
	vtDepthBits = 16
	vtDepthMask = (1 << vtDepthBits) - 1
	// vtDepthMax is the deepest representable discovery depth; deeper
	// discoveries clamp (min-depth semantics are unaffected: the clamp
	// only coarsens re-expansion above 65534, far past any MaxDepth in
	// use).
	vtDepthMax = vtDepthMask - 1
	// vtSealedEmpty marks a slot that was empty when its region
	// migrated: the probe chain ends here, continue in t.next.
	vtSealedEmpty = uint64(vtDepthMask)
	// vtMinSlots is the initial table size (8 KB of slots): small
	// enough that screening a few hundred states never touches a big
	// allocation, a handful of doublings away from millions.
	vtMinSlots = 1 << 10
	// vtMigChunk is the number of slots one helper migrates per claim.
	vtMigChunk = 256
	// vtFPBits is the fingerprint width; compact mode merges distinct
	// states only when their top vtFPBits hash bits collide.
	vtFPBits = 64 - vtDepthBits
)

// vtFP extracts the slot fingerprint from a state hash.
func vtFP(h uint64) uint64 {
	fp := h >> vtDepthBits
	if fp == 0 {
		fp = 1 // fp 0 is reserved for empty/sealedEmpty slots
	}
	return fp
}

func vtPack(fp uint64, depth int) uint64 { return fp<<vtDepthBits | uint64(depth) }
func vtSlotFP(v uint64) uint64           { return v >> vtDepthBits }
func vtSlotDepth(v uint64) int           { return int(v & vtDepthMask) }
func vtIsSealed(v uint64) bool           { return v&vtDepthMask == vtDepthMask }

// vtable is one generation of the slot array.
type vtable struct {
	slots []atomic.Uint64
	refs  []atomic.Uint64 // arena references; nil in compact mode
	shift uint            // home(fp) = fp * phi >> shift

	next    atomic.Pointer[vtable]
	migNext atomic.Int64 // next migration chunk to claim
	migDone atomic.Int64 // migration chunks completed
	used    atomic.Int64 // claimed slots in this generation
}

func newVTable(slots int, compact bool) *vtable {
	t := &vtable{
		slots: make([]atomic.Uint64, slots),
		shift: uint(64 - popShift(slots)),
	}
	if !compact {
		t.refs = make([]atomic.Uint64, slots)
	}
	return t
}

// popShift returns log2 of the (power-of-two) slot count.
func popShift(n int) int {
	s := 0
	for 1<<s < n {
		s++
	}
	return s
}

// home is the probe start index, derived from the fingerprint alone
// (Fibonacci hashing) so migration can re-home entries without the low
// hash bits the fingerprint dropped.
func (t *vtable) home(fp uint64) uint64 {
	return (fp * 0x9E3779B97F4A7C15) >> t.shift
}

func (t *vtable) chunks() int64 {
	return int64((len(t.slots) + vtMigChunk - 1) / vtMigChunk)
}

// visitedTable is the engine-facing store: the current table
// generation, the encoding arena, and the state accounting shared with
// MaxStates and the campaign Budget.
type visitedTable struct {
	compact  bool
	paranoid bool
	limit    int64
	budget   *Budget
	states   atomic.Int64
	grows    atomic.Int64
	cur      atomic.Pointer[vtable]
	arena    *encArena // nil in compact mode
}

func newVisitedTable(compact, paranoid bool, limit int64, budget *Budget, slots int) *visitedTable {
	v := &visitedTable{compact: compact, paranoid: paranoid, limit: limit, budget: budget}
	if slots < 4 {
		slots = 4
	}
	if !compact {
		v.arena = newEncArena()
	}
	v.cur.Store(newVTable(slots, compact))
	return v
}

func (v *visitedTable) size() int { return int(v.states.Load()) }

// omission returns the SPIN-style upper bound on the probability that
// compact mode merged at least one pair of distinct states: a union
// bound of k·(k-1)/2 pairwise fingerprint collisions at 2^-48 each.
// Exact mode resolves every collision byte-for-byte, so its bound is 0.
func (v *visitedTable) omission() float64 {
	if !v.compact {
		return 0
	}
	k := float64(v.states.Load())
	p := k * (k - 1) / 2 / float64(uint64(1)<<vtFPBits)
	if p > 1 {
		return 1
	}
	return p
}

// mark records the state with hash h and encoding enc (ignored in
// compact mode) discovered at the given depth. It returns the same
// markResult triple as the historical sharded-map store: isNew for a
// first discovery, expand for first discovery or strictly shallower
// rediscovery, capped when MaxStates or the shared Budget refused the
// state.
func (v *visitedTable) mark(h uint64, enc []byte, depth int) (markResult, error) {
	fp := vtFP(h)
	if depth > vtDepthMax {
		depth = vtDepthMax
	}
	t := v.cur.Load()
	for {
		m, moved, err := v.markIn(t, fp, enc, depth)
		if err != nil || !moved {
			return m, err
		}
		// The entry's probe chain continues in the successor; help the
		// migration along on the way through.
		next := v.ensureNext(t)
		v.helpMigrate(t)
		t = next
	}
}

// markIn runs one table generation's probe for mark. moved=true means
// the answer lives in t's successor (which is guaranteed to exist).
func (v *visitedTable) markIn(t *vtable, fp uint64, enc []byte, depth int) (m markResult, moved bool, err error) {
	mask := uint64(len(t.slots) - 1)
	for probe, i := 0, t.home(fp); probe <= int(mask); probe, i = probe+1, i+1 {
		idx := i & mask
		slot := &t.slots[idx]
	reread:
		val := slot.Load()
		switch {
		case val == 0:
			// First free slot on the chain: this state is new here.
			// Reserve against the cap and the shared budget before
			// claiming (optimistic fetch-and-add with rollback, like
			// Budget.take); a lost claim race returns the tokens and
			// re-examines the slot.
			if cur := v.states.Add(1); v.limit > 0 && cur > v.limit {
				v.states.Add(-1)
				return markResult{capped: true}, false, nil
			}
			if !v.budget.take() {
				v.states.Add(-1)
				return markResult{capped: true}, false, nil
			}
			if !slot.CompareAndSwap(0, vtPack(fp, depth)) {
				v.states.Add(-1)
				v.budget.put()
				goto reread
			}
			if t.refs != nil {
				t.refs[idx].Store(v.arena.store(fp, enc))
			}
			if t.used.Add(1)*4 > int64(len(t.slots))*3 {
				v.ensureNext(t)
				v.helpMigrate(t)
			}
			return markResult{isNew: true, expand: true}, false, nil

		case val == vtSealedEmpty:
			// The chain's free slot was sealed by migration: nothing
			// past it can match, and new claims go to the successor.
			return markResult{}, true, nil

		case vtSlotFP(val) != fp:
			// Some other entry (live or sealed); keep probing.

		default:
			// Fingerprint match. Exact mode confirms identity against
			// the stored encoding — refs stay readable after sealing —
			// and treats a mismatch as a collision: paranoid errors,
			// otherwise the colliding state keeps probing for its own
			// slot (the exactness backstop).
			if t.refs != nil {
				if !v.arena.equal(v.waitRef(t, idx), enc) {
					if v.paranoid {
						return markResult{}, false, fmt.Errorf(
							"check: hash collision: fingerprint %#x shared by two distinct states (%d-byte encoding)", fp, len(enc))
					}
					break
				}
			}
			if vtIsSealed(val) {
				// Our entry migrated; its depth lives in the successor.
				return markResult{}, true, nil
			}
			// Live entry for this very state: min-depth merge.
			for {
				if depth >= vtSlotDepth(val) {
					return markResult{}, false, nil
				}
				if slot.CompareAndSwap(val, vtPack(fp, depth)) {
					return markResult{expand: true}, false, nil
				}
				val = slot.Load()
				if vtIsSealed(val) {
					// Sealed mid-merge: apply the improvement in the
					// successor instead.
					return markResult{}, true, nil
				}
			}
		}
	}
	// Full sweep with no free slot and no match: the generation is
	// saturated; continue in the successor.
	v.ensureNext(t)
	return markResult{}, true, nil
}

// ensureNext returns t's successor, allocating and publishing the
// doubled table if nobody has yet.
func (v *visitedTable) ensureNext(t *vtable) *vtable {
	if n := t.next.Load(); n != nil {
		return n
	}
	n := newVTable(len(t.slots)*2, v.compact)
	if t.next.CompareAndSwap(nil, n) {
		v.grows.Add(1)
		return n
	}
	return t.next.Load()
}

// helpMigrate claims and migrates up to a few chunks of t, then
// publishes the successor as current if migration is complete. Called
// by every thread that passes through a growing table, so migration
// load spreads across the workers that are touching the store anyway.
func (v *visitedTable) helpMigrate(t *vtable) {
	next := t.next.Load()
	if next == nil {
		return
	}
	nChunks := t.chunks()
	for k := 0; k < 4; k++ {
		c := t.migNext.Add(1) - 1
		if c >= nChunks {
			break
		}
		lo := int(c) * vtMigChunk
		hi := lo + vtMigChunk
		if hi > len(t.slots) {
			hi = len(t.slots)
		}
		for i := lo; i < hi; i++ {
			v.migrateSlot(t, next, i)
		}
		t.migDone.Add(1)
	}
	if t.migDone.Load() == nChunks {
		v.cur.CompareAndSwap(t, next)
	}
}

// drainMigration finishes any in-flight growth single-threadedly (used
// post-run by stats, when no concurrent marking is in flight).
func (v *visitedTable) drainMigration() {
	for {
		t := v.cur.Load()
		if t.next.Load() == nil {
			return
		}
		for t.migDone.Load() < t.chunks() {
			v.helpMigrate(t)
		}
		v.helpMigrate(t) // publish the successor
	}
}

// migrateSlot seals one slot of t, copying a claimed entry into next
// first. The seal CAS fails if a racing thread improved the entry's
// depth after our copy; re-reading and re-copying makes the improvement
// land in next before the seal sticks.
func (v *visitedTable) migrateSlot(t, next *vtable, i int) {
	slot := &t.slots[i]
	for {
		val := slot.Load()
		if vtIsSealed(val) {
			return
		}
		if val == 0 {
			if slot.CompareAndSwap(0, vtSealedEmpty) {
				return
			}
			continue
		}
		fp := vtSlotFP(val)
		var ref uint64
		if t.refs != nil {
			ref = v.waitRef(t, uint64(i))
		}
		v.mergeIn(next, fp, ref, vtSlotDepth(val))
		if slot.CompareAndSwap(val, fp<<vtDepthBits|uint64(vtDepthMask)) {
			return
		}
	}
}

// mergeIn inserts a migrating entry into table t or its successors. It
// never touches the state count or budget — the entry was accounted
// when first claimed — and never reports expansion: a migrated depth is
// a transport, not a discovery (any racing improvement reports its own
// expand from whichever generation it lands in).
func (v *visitedTable) mergeIn(t *vtable, fp, ref uint64, depth int) {
	for {
		if !v.mergeInOne(t, fp, ref, depth) {
			return
		}
		t = v.ensureNext(t)
	}
}

// mergeInOne attempts the merge in one generation, reporting moved.
func (v *visitedTable) mergeInOne(t *vtable, fp, ref uint64, depth int) (moved bool) {
	mask := uint64(len(t.slots) - 1)
	for probe, i := 0, t.home(fp); probe <= int(mask); probe, i = probe+1, i+1 {
		idx := i & mask
		slot := &t.slots[idx]
	reread:
		val := slot.Load()
		switch {
		case val == 0:
			if !slot.CompareAndSwap(0, vtPack(fp, depth)) {
				goto reread
			}
			if t.refs != nil {
				t.refs[idx].Store(ref)
			}
			if t.used.Add(1)*4 > int64(len(t.slots))*3 {
				v.ensureNext(t)
			}
			return false
		case val == vtSealedEmpty:
			return true
		case vtSlotFP(val) != fp:
			// keep probing
		default:
			if t.refs != nil && !v.arena.equalRefs(v.waitRef(t, idx), ref) {
				break // fingerprint collision with a different state
			}
			if vtIsSealed(val) {
				return true
			}
			for {
				if depth >= vtSlotDepth(val) {
					return false
				}
				if slot.CompareAndSwap(val, vtPack(fp, depth)) {
					return false
				}
				val = slot.Load()
				if vtIsSealed(val) {
					return true
				}
			}
		}
	}
	return true
}

// waitRef loads the arena reference for a claimed slot, spinning out
// the tiny claim→publish window.
func (v *visitedTable) waitRef(t *vtable, idx uint64) uint64 {
	for spins := 0; ; spins++ {
		if r := t.refs[idx].Load(); r != 0 {
			return r
		}
		if spins > 16 {
			runtime.Gosched()
		}
	}
}

// VisitedStats describes the visited table after a run: sizing, probe
// quality and arena footprint. Slot layout details are diagnostic —
// probe displacements in a parallel run depend on claim interleaving,
// so these numbers are not part of the determinism contract.
type VisitedStats struct {
	// Slots and Live are the final table capacity and claimed slots.
	Slots, Live int
	// Grows counts table doublings over the run.
	Grows int
	// MaxProbe is the worst final probe displacement (0 = every entry
	// sits at its home slot).
	MaxProbe int
	// ProbeHist buckets entries by probe displacement 0..7, with an
	// 8-and-over tail bucket.
	ProbeHist [9]int
	// ArenaBytes is the total encoding bytes retained by the exactness
	// arena (0 in compact mode).
	ArenaBytes int64
	// Compact reports hash-compaction mode (no arena, fingerprints
	// only).
	Compact bool
}

func (s *VisitedStats) String() string {
	if s == nil {
		return "visited: (no stats)"
	}
	mode := "exact"
	if s.Compact {
		mode = "compact"
	}
	occ := 0.0
	if s.Slots > 0 {
		occ = float64(s.Live) / float64(s.Slots)
	}
	out := fmt.Sprintf("visited[%s]: %d/%d slots (%.1f%% occupancy), %d grows, arena %d B, max probe %d\n",
		mode, s.Live, s.Slots, occ*100, s.Grows, s.ArenaBytes, s.MaxProbe)
	out += "probe histogram:"
	for i, n := range s.ProbeHist {
		label := fmt.Sprintf("%d", i)
		if i == len(s.ProbeHist)-1 {
			label = fmt.Sprintf("%d+", i)
		}
		out += fmt.Sprintf(" %s:%d", label, n)
	}
	return out
}

// merge folds another table's stats in (POR cluster runs each carry
// their own table).
func (s *VisitedStats) merge(o *VisitedStats) {
	if o == nil {
		return
	}
	s.Slots += o.Slots
	s.Live += o.Live
	s.Grows += o.Grows
	if o.MaxProbe > s.MaxProbe {
		s.MaxProbe = o.MaxProbe
	}
	for i := range s.ProbeHist {
		s.ProbeHist[i] += o.ProbeHist[i]
	}
	s.ArenaBytes += o.ArenaBytes
	s.Compact = s.Compact || o.Compact
}

// stats finishes any in-flight growth and scans the final table. Call
// only after the run's marking has quiesced.
func (v *visitedTable) stats() *VisitedStats {
	v.drainMigration()
	t := v.cur.Load()
	s := &VisitedStats{
		Slots:   len(t.slots),
		Grows:   int(v.grows.Load()),
		Compact: v.compact,
	}
	if v.arena != nil {
		s.ArenaBytes = v.arena.bytes.Load()
	}
	mask := uint64(len(t.slots) - 1)
	for i := range t.slots {
		val := t.slots[i].Load()
		if val == 0 || val == vtSealedEmpty {
			continue
		}
		s.Live++
		d := int((uint64(i) - t.home(vtSlotFP(val))) & mask)
		if d > s.MaxProbe {
			s.MaxProbe = d
		}
		if d >= len(s.ProbeHist) {
			d = len(s.ProbeHist) - 1
		}
		s.ProbeHist[d]++
	}
	return s
}

// encArena stores full state encodings for the exactness backstop:
// per-shard append-only chunks, written once under the shard mutex and
// read lock-free through copy-on-write chunk tables. References pack
// (shard, chunk, offset, length) into a non-zero uint64 published via
// the table's refs array.
const (
	arenaShardCount = 16
	arenaChunkMin   = 1 << 10
	arenaChunkMax   = 512 << 10
	arenaMaxEnc     = 1<<20 - 1
)

type encArena struct {
	bytes  atomic.Int64
	shards [arenaShardCount]arenaShard
}

type arenaShard struct {
	mu     sync.Mutex
	chunks atomic.Pointer[[][]byte]
	off    int // write offset into the newest chunk
}

func newEncArena() *encArena { return &encArena{} }

// ref layout: bit 63 marker | shard 6 | chunk 16 | offset 21 | length 20.
func arenaPack(shard, chunk, off, n int) uint64 {
	return 1<<63 | uint64(shard)<<57 | uint64(chunk)<<41 | uint64(off)<<20 | uint64(n)
}

func arenaUnpack(ref uint64) (shard, chunk, off, n int) {
	return int(ref >> 57 & 0x3F), int(ref >> 41 & 0xFFFF), int(ref >> 20 & 0x1FFFFF), int(ref & 0xFFFFF)
}

// store copies enc into the fingerprint's shard and returns its
// reference. Chunk sizes double from 4 KB to 512 KB so small runs pay
// small allocations; an oversized encoding gets a dedicated chunk.
func (a *encArena) store(fp uint64, enc []byte) uint64 {
	if len(enc) > arenaMaxEnc {
		panic(fmt.Sprintf("check: state encoding of %d bytes exceeds the visited arena limit", len(enc)))
	}
	shard := int(fp & (arenaShardCount - 1))
	s := &a.shards[shard]
	s.mu.Lock()
	chunks := s.chunks.Load()
	var cs [][]byte
	if chunks != nil {
		cs = *chunks
	}
	if len(cs) == 0 || s.off+len(enc) > len(cs[len(cs)-1]) {
		size := arenaChunkMax
		if len(cs) < 7 {
			size = arenaChunkMin << len(cs)
		}
		if size < len(enc) {
			size = len(enc)
		}
		grown := make([][]byte, len(cs)+1)
		copy(grown, cs)
		grown[len(cs)] = make([]byte, size)
		cs = grown
		s.off = 0
		s.chunks.Store(&cs)
	}
	chunk := len(cs) - 1
	off := s.off
	copy(cs[chunk][off:], enc)
	s.off = off + len(enc)
	s.mu.Unlock()
	a.bytes.Add(int64(len(enc)))
	return arenaPack(shard, chunk, off, len(enc))
}

// load returns the stored bytes for a published reference. The ref was
// published with an atomic store after the copy completed, so the view
// is immutable.
func (a *encArena) load(ref uint64) []byte {
	shard, chunk, off, n := arenaUnpack(ref)
	cs := *a.shards[shard].chunks.Load()
	return cs[chunk][off : off+n]
}

// equal reports whether the stored bytes match enc, allocation-free.
func (a *encArena) equal(ref uint64, enc []byte) bool {
	return string(a.load(ref)) == string(enc)
}

// equalRefs compares two stored encodings.
func (a *encArena) equalRefs(r1, r2 uint64) bool {
	if r1 == r2 {
		return true
	}
	return string(a.load(r1)) == string(a.load(r2))
}
