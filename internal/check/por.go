package check

import (
	"fmt"

	"cnetverifier/internal/lint/effects"
	"cnetverifier/internal/model"
)

// runPOR is the partial-order-reduced search (Options.POR): cluster
// decomposition over the static may-interact relation.
//
// The effect analysis partitions the world's processes into clusters —
// connected components of the proc-level may-interact relation. Two
// processes in different clusters share no global (in any read/write
// or write/write combination) and neither sends nor outputs into the
// other, so every step of one commutes with every step of the other:
// the full product's reachable states are exactly the per-cluster
// reachable states glued together, and any interleaving of per-cluster
// schedules realizes any reachable product state. Screening each
// cluster's projection therefore finds the same (property, description)
// violation set as screening the product, while visiting Σ|Ci| states
// instead of Π|Ci|.
//
// This is the sleep-set idea taken to its static fixpoint: instead of
// recording per-state which commuting siblings need no re-exploration,
// the analysis proves whole process groups commute everywhere and never
// interleaves them at all. (Per-state sleep sets add nothing under the
// checker's visited-state dedup — see DESIGN.md for why the dynamic
// variants were rejected.)
//
// With a single cluster the decomposition is the identity and the run
// falls through to the plain engine, byte-identical results included.
func runPOR(w *model.World, props []Property, sc Scenario, opt Options) (*Result, error) {
	sub := opt
	sub.POR = false
	// The full world was already prescreened by Run; projections would
	// re-trip scenario/peer rules that the projection itself causes.
	sub.SkipLint = true

	clusters := effects.Analyze(w).ClusterNames()
	if len(clusters) <= 1 {
		return dispatch(w, props, sc, sub)
	}

	merged := &Result{Covered: make(map[string]int)}
	for _, names := range clusters {
		pw, err := w.Project(names)
		if err != nil {
			return nil, fmt.Errorf("check: por: %w", err)
		}
		res, err := dispatch(pw, props, sc, sub)
		if err != nil {
			return nil, fmt.Errorf("check: por: cluster %v: %w", names, err)
		}
		merged.States += res.States
		merged.Transitions += res.Transitions
		merged.Misrouted += res.Misrouted
		merged.Dropped += res.Dropped
		if res.MaxDepth > merged.MaxDepth {
			merged.MaxDepth = res.MaxDepth
		}
		merged.Truncated = merged.Truncated || res.Truncated
		// Each cluster run owns a visited table; the compaction
		// omission bound sums (union bound over clusters) and the
		// table diagnostics fold together.
		if merged.Omission += res.Omission; merged.Omission > 1 {
			merged.Omission = 1
		}
		if res.Visited != nil {
			if merged.Visited == nil {
				merged.Visited = &VisitedStats{}
			}
			merged.Visited.merge(res.Visited)
		}
		for k, n := range res.Covered {
			merged.Covered[k] += n
		}
		merged.Violations = append(merged.Violations, res.Violations...)
		if opt.StopAtFirst && len(merged.Violations) > 0 {
			break
		}
	}
	// Clusters report in canonical order already (ClusterNames is
	// deterministic), but a property violated in its initial state can
	// surface from several projections: dedupe on (property, desc),
	// which also sorts into the parallel engine's canonical order.
	merged.Violations = dedupeViolations(merged.Violations)
	return merged, nil
}
