package check

import (
	"cnetverifier/internal/model"
)

// envKey canonicalizes an environment event for set operations.
func envKey(e model.EnvEvent) string {
	return e.Proc + "\x00" + e.Msg.Kind.String() + "\x00" + e.Msg.Cause.String()
}

// filteredScenario offers only the allowed subset of the base
// scenario's events.
type filteredScenario struct {
	base    Scenario
	allowed map[string]bool
}

// Events implements Scenario.
func (f filteredScenario) Events(w *model.World) []model.EnvEvent {
	var out []model.EnvEvent
	for _, e := range f.base.Events(w) {
		if f.allowed[envKey(e)] {
			out = append(out, e)
		}
	}
	return out
}

// EssentialEvents computes the minimal set of environment events that
// still violates the property — the distilled answer to "which user
// and operator actions actually trigger this finding". Starting from
// the distinct env events of the violation's counterexample, it
// greedily removes one event class at a time and re-screens the world
// restricted to the remainder; an event is essential when its removal
// makes the violation unreachable.
//
// The result is what the validation phase needs to stage (the paper
// derives its experiment configurations from the counterexamples,
// §3.1); a smaller trigger set means a simpler experiment.
func EssentialEvents(w *model.World, props []Property, sc Scenario, opt Options, v Violation) ([]model.EnvEvent, error) {
	// Collect the distinct env events of the counterexample, in first-
	// appearance order.
	var events []model.EnvEvent
	seen := map[string]bool{}
	for _, s := range v.Path {
		if s.Kind != model.StepEnv {
			continue
		}
		e := model.EnvEvent{Proc: s.Proc, Msg: s.Msg}
		if k := envKey(e); !seen[k] {
			seen[k] = true
			events = append(events, e)
		}
	}

	violates := func(allowed map[string]bool) (bool, error) {
		res, err := Run(w, props, filteredScenario{base: sc, allowed: allowed}, opt)
		if err != nil {
			return false, err
		}
		return res.Violated(v.Property), nil
	}

	kept := append([]model.EnvEvent(nil), events...)
	for i := 0; i < len(kept); {
		allowed := map[string]bool{}
		for j, e := range kept {
			if j != i {
				allowed[envKey(e)] = true
			}
		}
		still, err := violates(allowed)
		if err != nil {
			return nil, err
		}
		if still {
			// Not essential: drop it and retry from the same index.
			kept = append(kept[:i], kept[i+1:]...)
			continue
		}
		i++
	}
	return kept, nil
}
