package check

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestBudgetTake(t *testing.T) {
	b := NewBudget(2)
	if !b.take() || !b.take() {
		t.Fatal("budget refused tokens it holds")
	}
	if b.take() {
		t.Fatal("budget granted a token past its pool")
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", b.Remaining())
	}
	var nilBudget *Budget
	for i := 0; i < 10; i++ {
		if !nilBudget.take() {
			t.Fatal("nil budget must be unlimited")
		}
	}
}

// TestBudgetTakeRace hammers a one-token budget from 64 goroutines.
// The take fast path is a bare atomic Add with overshoot repair, so the
// invariants under contention are: exactly one winner, no double grant,
// and Remaining settles at 0 (never negative) once the dust clears.
// Run with -race to let the detector see the contention too.
func TestBudgetTakeRace(t *testing.T) {
	for round := 0; round < 100; round++ {
		b := NewBudget(1)
		var (
			granted atomic.Int64
			start   sync.WaitGroup
			done    sync.WaitGroup
		)
		start.Add(1)
		for g := 0; g < 64; g++ {
			done.Add(1)
			go func() {
				defer done.Done()
				start.Wait()
				if b.take() {
					granted.Add(1)
				}
				if r := b.Remaining(); r < 0 {
					t.Errorf("Remaining = %d mid-flight, want >= 0", r)
				}
			}()
		}
		start.Done()
		done.Wait()
		if n := granted.Load(); n != 1 {
			t.Fatalf("round %d: %d goroutines took the single token", round, n)
		}
		if r := b.Remaining(); r != 0 {
			t.Fatalf("round %d: Remaining = %d after exhaustion, want 0", round, r)
		}
	}
}

func TestCancelFlag(t *testing.T) {
	var nilCancel *Cancel
	if nilCancel.Cancelled() {
		t.Fatal("nil Cancel reports cancelled")
	}
	c := &Cancel{}
	if c.Cancelled() {
		t.Fatal("fresh Cancel reports cancelled")
	}
	c.Cancel()
	if !c.Cancelled() {
		t.Fatal("Cancel() did not stick")
	}
}

// TestWalkSeedIndependence pins the property the parallel walk engine
// rests on: a walk's RNG seed depends only on (run seed, walk index),
// and nearby indices get well-separated streams.
func TestWalkSeedIndependence(t *testing.T) {
	if walkSeed(1, 0) != walkSeed(1, 0) {
		t.Fatal("walkSeed is not a pure function")
	}
	seen := make(map[int64]int)
	for w := 0; w < 1000; w++ {
		s := walkSeed(7, w)
		if prev, dup := seen[s]; dup {
			t.Fatalf("walks %d and %d share seed %#x", prev, w, s)
		}
		seen[s] = w
	}
	if walkSeed(1, 5) == walkSeed(2, 5) {
		t.Fatal("different run seeds produced the same walk seed")
	}
}

// TestParallelMaxStates asserts the CAS token reservation holds the
// cap exactly under concurrent discovery.
func TestParallelMaxStates(t *testing.T) {
	w := counterWorld(t)
	res, err := Run(w, nil, moveScenario(), Options{MaxDepth: 50, MaxStates: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.States > 5 {
		t.Fatalf("States = %d, want <= 5", res.States)
	}
	if !res.Truncated {
		t.Fatal("capped run not marked truncated")
	}
}

// TestParallelStopAtFirst: the parallel engine honors StopAtFirst and
// still returns a replay-verified counterexample.
func TestParallelStopAtFirst(t *testing.T) {
	w := counterWorld(t)
	res, err := Run(w, []Property{limitProp{limit: 3}}, moveScenario(),
		Options{MaxDepth: 20, Workers: 4, StopAtFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("StopAtFirst run found no violation")
	}
	end, err := Replay(w, res.Violations[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if end.Proc("C").M.Var("n") < 3 {
		t.Fatalf("replayed counterexample ends with n=%d, want >=3", end.Proc("C").M.Var("n"))
	}
}

// TestParallelCancelTruncates: a pre-cancelled run stops immediately
// and reports truncation.
func TestParallelCancelTruncates(t *testing.T) {
	c := &Cancel{}
	c.Cancel()
	for _, workers := range []int{1, 4} {
		w := counterWorld(t)
		res, err := Run(w, nil, moveScenario(), Options{MaxDepth: 50, Workers: workers, Cancel: c})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Truncated {
			t.Fatalf("workers=%d: cancelled run not marked truncated", workers)
		}
	}
}

// TestSharedBudgetAcrossRuns: two runs drawing from one pool together
// never exceed it, and the second run starves.
func TestSharedBudgetAcrossRuns(t *testing.T) {
	b := NewBudget(6)
	w := counterWorld(t)
	r1, err := Run(w, nil, moveScenario(), Options{MaxDepth: 50, Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(w, nil, moveScenario(), Options{MaxDepth: 50, Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	// The root states are pre-counted before the budget check, so only
	// discovered states draw tokens; the sum stays within the pool.
	if r1.States+r2.States > 6+2 {
		t.Fatalf("runs used %d + %d states on a 6-token pool", r1.States, r2.States)
	}
	if !r2.Truncated {
		t.Fatal("second run on a drained pool not truncated")
	}
}
