package check

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cnetverifier/internal/model"
)

// This file implements the parallel exploration engines (Options.
// Workers > 1): a work-stealing frontier search for DFS/BFS and a
// walk-splitting driver for RandomWalk.
//
// Determinism contract (asserted by TestParallelDeterminism): for the
// same world and options, parallel and sequential runs agree on the
// distinct-state count, the violation set (property, description
// pairs) and the set of covered transitions, because
//
//   - the visited set tracks the minimal discovery depth of every
//     state and re-expands on shallower rediscovery, so the set of
//     states expanded within MaxDepth is an order-independent fixpoint;
//   - random walks derive their RNG stream from (Seed, walk index),
//     not from a shared stream, so the sampled schedules are the same
//     however walks land on workers.
//
// Quantities that tally work rather than describe the state space
// (Transitions, Covered counts, MaxDepth under truncation) may vary
// with scheduling. Every reported counterexample is re-verified with
// Replay before the result is returned.

// localQueueCap bounds each worker's private frontier queue. When an
// expansion pushes past the cap, the oldest (shallowest) half moves to
// the shared overflow queue where idle workers pick it up — bounding
// per-worker memory spikes and spreading work without fine-grained
// stealing traffic on every push.
const localQueueCap = 1024

// deque is a mutex-guarded double-ended work queue. The owner pushes
// and pops at the tail (depth-first order, keeping its cache hot);
// thieves steal from the head, taking the shallowest — widest — nodes.
type deque struct {
	mu    sync.Mutex
	items []*node
}

// push appends at the tail and returns the overflow batch (oldest
// half) when the queue exceeds localQueueCap.
func (d *deque) push(n *node) []*node {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.items = append(d.items, n)
	if len(d.items) <= localQueueCap {
		return nil
	}
	half := len(d.items) / 2
	over := append([]*node(nil), d.items[:half]...)
	d.items = append(d.items[:0], d.items[half:]...)
	return over
}

// pop removes from the tail (owner side).
func (d *deque) pop() *node {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil
	}
	n := d.items[len(d.items)-1]
	d.items[len(d.items)-1] = nil
	d.items = d.items[:len(d.items)-1]
	return n
}

// steal removes from the head (thief side).
func (d *deque) steal() *node {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil
	}
	n := d.items[0]
	d.items[0] = nil
	d.items = d.items[1:]
	return n
}

// pushAll appends a batch at the tail.
func (d *deque) pushAll(ns []*node) {
	d.mu.Lock()
	d.items = append(d.items, ns...)
	d.mu.Unlock()
}

// lockedScenario serializes Events calls so stochastic scenarios (the
// random sampler carries RNG state) are safe under concurrent workers.
// Deterministic scenarios — required for search strategies anyway —
// are unaffected beyond the mutex.
type lockedScenario struct {
	mu   sync.Mutex
	base Scenario
}

func (l *lockedScenario) Events(w *model.World) []model.EnvEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base.Events(w)
}

// engine is the shared state of one parallel frontier search.
type engine struct {
	opt     Options
	sc      Scenario
	props   []Property
	visited *visitedSet

	queues   []*deque
	overflow deque
	// pending counts nodes queued or being expanded; the search is
	// complete when it reaches zero.
	pending atomic.Int64
	stop    atomic.Bool

	transitions atomic.Int64
	misrouted   atomic.Int64
	dropped     atomic.Int64
	maxDepth    atomic.Int64
	truncated   atomic.Bool

	// pool recycles worlds between expansions: a dequeued node's world
	// goes back once expanded, and children draw from the pool and are
	// refreshed with CloneInto, reusing slabs and queue capacity.
	pool sync.Pool

	violMu     sync.Mutex
	seenViol   map[violKey]struct{}
	violations []Violation

	errMu sync.Mutex
	err   error
}

func (e *engine) setErr(err error) {
	e.errMu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.errMu.Unlock()
	e.stop.Store(true)
}

func (e *engine) getWorld() *model.World {
	if w, ok := e.pool.Get().(*model.World); ok {
		return w
	}
	return &model.World{}
}

// putWorld returns a world whose node is done. Safe on any exit path:
// violation paths are deep-copied and the visited set stores only
// hashes/encodings, so nothing outlives the node that references it.
func (e *engine) putWorld(w *model.World) {
	if w != nil {
		e.pool.Put(w)
	}
}

func (e *engine) noteDepth(d int) {
	for {
		cur := e.maxDepth.Load()
		if int64(d) <= cur || e.maxDepth.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// enqueue makes a node available to the pool.
func (e *engine) enqueue(id int, n *node) {
	e.pending.Add(1)
	if over := e.queues[id].push(n); over != nil {
		e.overflow.pushAll(over)
	}
}

// next finds work for worker id: own queue first, then the overflow
// queue, then stealing round-robin from the other workers.
func (e *engine) next(id int) *node {
	if n := e.queues[id].pop(); n != nil {
		return n
	}
	if n := e.overflow.steal(); n != nil {
		return n
	}
	for i := 1; i < len(e.queues); i++ {
		if n := e.queues[(id+i)%len(e.queues)].steal(); n != nil {
			return n
		}
	}
	return nil
}

func (e *engine) worker(id int, covered *coverage) {
	// Worker-private scratch, reused across every node this worker
	// expands: the hashing buffer, the step slice, the apply/undo
	// journal, and the path arena. Arena nodes are read cross-worker
	// after enqueue (the deque mutex is the fence) but only the owner
	// appends.
	var (
		buf   []byte
		steps []model.Step
		undo  model.Undo
		arena stepArena
	)
	for {
		if e.stop.Load() {
			return
		}
		n := e.next(id)
		if n == nil {
			if e.pending.Load() == 0 {
				return
			}
			runtime.Gosched()
			continue
		}
		steps = e.expand(id, n, covered, &buf, steps, &undo, &arena)
		e.pending.Add(-1)
	}
}

// expand explores every transition out of n with the sequential
// engine's apply/undo discipline on the node's own world: apply the
// step in place, evaluate monitors, mark the visited table, and roll
// back. Only a transition that actually discovers (or shallower-
// rediscovers) a state pays for a world clone — in the dense state
// graphs screening produces, that is a small fraction of transitions.
func (e *engine) expand(id int, n *node, covered *coverage, buf *[]byte, steps []model.Step, undo *model.Undo, arena *stepArena) []model.Step {
	defer e.putWorld(n.w)
	e.noteDepth(n.depth)
	if e.opt.Cancel.Cancelled() {
		e.truncated.Store(true)
		e.stop.Store(true)
		return steps
	}
	if n.depth >= e.opt.MaxDepth {
		e.truncated.Store(true)
		return steps
	}
	steps = n.w.StepsAppend(steps[:0], e.sc.Events(n.w))
	n.w.Save(undo)
	for _, s := range steps {
		if e.stop.Load() {
			return steps
		}
		applied, err := n.w.Apply(s)
		if err != nil {
			e.setErr(fmt.Errorf("check: apply %v: %w", s, err))
			return steps
		}
		e.transitions.Add(1)
		if applied.Misrouted > 0 {
			e.misrouted.Add(int64(applied.Misrouted))
		}
		if applied.Dropped > 0 {
			e.dropped.Add(int64(applied.Dropped))
		}
		covered.note(applied)
		path := arena.append(n.path, applied)
		if e.checkProps(n.w, applied, path) && e.opt.StopAtFirst {
			e.stop.Store(true)
			return steps
		}
		var mark markResult
		if mark, *buf, err = markVisited(e.visited, n.w, n.depth+1, *buf); err != nil {
			e.setErr(err)
			return steps
		}
		switch {
		case mark.capped:
			e.truncated.Store(true)
		case mark.expand:
			child := e.getWorld()
			n.w.CloneInto(child)
			e.enqueue(id, &node{w: child, path: path, depth: n.depth + 1})
		}
		n.w.Restore(undo)
	}
	return steps
}

// checkProps evaluates the monitors on a worker-private world and
// records new violations under the shared lock. The lock is taken only
// on an actual violation, so the monitor evaluations themselves run
// fully in parallel.
func (e *engine) checkProps(w *model.World, last model.Step, tail *pathNode) bool {
	violated := false
	for _, p := range e.props {
		desc := p.Check(w, last)
		if desc == "" {
			continue
		}
		violated = true
		key := violKey{p.Name(), desc}
		e.violMu.Lock()
		if _, dup := e.seenViol[key]; !dup {
			e.seenViol[key] = struct{}{}
			e.violations = append(e.violations, Violation{Property: p.Name(), Desc: desc, Path: materializePath(tail)})
		}
		e.violMu.Unlock()
	}
	return violated
}

func runParallelSearch(w0 *model.World, props []Property, sc Scenario, opt Options) (*Result, error) {
	e := &engine{
		opt:      opt,
		sc:       &lockedScenario{base: sc},
		props:    props,
		visited:  newVisitedSet(opt),
		queues:   make([]*deque, opt.Workers),
		seenViol: make(map[violKey]struct{}),
	}
	for i := range e.queues {
		e.queues[i] = &deque{}
	}

	root := &node{w: w0.Clone()}
	if _, _, err := markVisited(e.visited, root.w, 0, nil); err != nil {
		return nil, err
	}
	e.enqueue(0, root)

	coveredPer := make([]*coverage, opt.Workers)
	var wg sync.WaitGroup
	for id := 0; id < opt.Workers; id++ {
		coveredPer[id] = newCoverage(w0)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			e.worker(id, coveredPer[id])
		}(id)
	}
	wg.Wait()
	if e.err != nil {
		return nil, e.err
	}

	covered := make(map[string]int)
	for _, c := range coveredPer {
		c.into(covered)
	}

	res := &Result{
		Transitions: int(e.transitions.Load()),
		MaxDepth:    int(e.maxDepth.Load()),
		Truncated:   e.truncated.Load(),
		Violations:  e.violations,
		Covered:     covered,
		Misrouted:   int(e.misrouted.Load()),
		Dropped:     int(e.dropped.Load()),
	}
	finishVisited(res, e.visited)
	sortViolations(res.Violations)
	if err := reverify(w0, props, res.Violations); err != nil {
		return nil, err
	}
	return res, nil
}

func runParallelWalk(w0 *model.World, props []Property, sc Scenario, opt Options) (*Result, error) {
	visited := newVisitedSet(opt)
	if _, _, err := markVisited(visited, w0, 0, nil); err != nil {
		return nil, err
	}
	locked := &lockedScenario{base: sc}

	var nextWalk atomic.Int64
	var stop atomic.Bool
	results := make([]*Result, opt.Workers)
	errs := make([]error, opt.Workers)
	var wg sync.WaitGroup
	for id := 0; id < opt.Workers; id++ {
		results[id] = &Result{Covered: make(map[string]int)}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var buf []byte
			var wk walker
			seen := make(map[violKey]struct{})
			for !stop.Load() && !opt.Cancel.Cancelled() {
				walk := int(nextWalk.Add(1)) - 1
				if walk >= opt.Walks {
					return
				}
				halt, err := oneWalk(w0, &wk, props, locked, opt, walk, visited, &buf, seen, results[id])
				if err != nil {
					errs[id] = err
					stop.Store(true)
					return
				}
				if halt {
					stop.Store(true)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Covered: make(map[string]int)}
	coveredPer := make([]map[string]int, 0, len(results))
	for _, r := range results {
		res.Transitions += r.Transitions
		res.Misrouted += r.Misrouted
		res.Dropped += r.Dropped
		if r.MaxDepth > res.MaxDepth {
			res.MaxDepth = r.MaxDepth
		}
		res.Truncated = res.Truncated || r.Truncated
		res.Violations = append(res.Violations, r.Violations...)
		coveredPer = append(coveredPer, r.Covered)
	}
	if opt.Cancel.Cancelled() {
		res.Truncated = true
	}
	res.Covered = mergeCovered(coveredPer)
	finishVisited(res, visited)
	// Workers deduplicate violations only against their own walks;
	// collapse cross-worker duplicates to the canonically smallest
	// counterexample per (property, description).
	res.Violations = dedupeViolations(res.Violations)
	if err := reverify(w0, props, res.Violations); err != nil {
		return nil, err
	}
	return res, nil
}

func mergeCovered(per []map[string]int) map[string]int {
	out := make(map[string]int)
	for _, m := range per {
		for k, v := range m {
			out[k] += v
		}
	}
	return out
}

func dedupeViolations(vs []Violation) []Violation {
	sortViolations(vs)
	out := vs[:0]
	for _, v := range vs {
		if len(out) > 0 && out[len(out)-1].Property == v.Property && out[len(out)-1].Desc == v.Desc {
			continue
		}
		out = append(out, v)
	}
	return out
}

// reverify replays every counterexample against the initial world and
// confirms the violated property reports the same description on the
// replayed state. Parallel workers hand over paths across goroutines;
// this is the engine's proof to the caller that no captured path was
// corrupted by frontier reuse and that each violation is reproducible
// before it leaves the package (mirroring the paper's screening →
// validation hand-off, §3.2.3).
func reverify(w0 *model.World, props []Property, vs []Violation) error {
	// Several monitors may share one property name (per-instance
	// monitors of a multi-UE world, e.g. props.DataServiceOKIn); a
	// violation reproduces when any monitor of its name reports the
	// recorded description on the replayed state.
	byName := make(map[string][]Property, len(props))
	for _, p := range props {
		byName[p.Name()] = append(byName[p.Name()], p)
	}
	for _, v := range vs {
		end, err := Replay(w0, v.Path)
		if err != nil {
			return fmt.Errorf("check: counterexample for %s failed replay re-verification: %w", v.Property, err)
		}
		ps := byName[v.Property]
		if len(ps) == 0 {
			return fmt.Errorf("check: violation of unknown property %q", v.Property)
		}
		var last model.Step
		if len(v.Path) > 0 {
			last = v.Path[len(v.Path)-1]
		}
		reproduced := false
		for _, p := range ps {
			if p.Check(end, last) == v.Desc {
				reproduced = true
				break
			}
		}
		if !reproduced {
			return fmt.Errorf("check: counterexample for %s does not reproduce on replay: no monitor of that name reports %q", v.Property, v.Desc)
		}
	}
	return nil
}
