package check

import (
	"bytes"
	"strings"
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/model"
	"cnetverifier/internal/types"
)

// fuzzSymWorld builds the namespaced two-replica world the symmetry
// fuzz targets mutate: replicas r1/r2 run the same spec rewritten into
// the n1/n2 globals namespaces (the multi-UE sub-slab layout in
// miniature) around one shared global, with the matching descriptor
// attached.
func fuzzSymWorld(f interface{ Fatal(...any) }) *model.World {
	spec := &fsm.Spec{
		Name: "fzr",
		Init: "A",
		Vars: map[string]int{"x": 0},
		Transitions: []fsm.Transition{
			{Name: "go", From: "A", On: types.MsgUserMove, To: "B",
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set("g.v", c.Get("g.v")+1)
				}},
			{Name: "back", From: "B", On: types.MsgUserMove, To: "A"},
		},
	}
	w, err := model.New(model.Config{
		Procs: []model.ProcConfig{
			{Name: "r1", Spec: fsm.NamespaceGlobals(spec, "n1")},
			{Name: "r2", Spec: fsm.NamespaceGlobals(spec, "n2")},
		},
		Globals: map[string]int{"g.s": 0},
	})
	if err != nil {
		f.Fatal(err)
	}
	if err := w.SetSymmetry(&model.Symmetry{Groups: []model.SymGroup{{
		Replicas: []model.SymReplica{
			{Procs: []string{"r1"}, NS: "n1", Atoms: []string{"r1"}},
			{Procs: []string{"r2"}, NS: "n2", Atoms: []string{"r2"}},
		},
	}}}); err != nil {
		f.Fatal(err)
	}
	return w
}

// symMirror maps each mutateSym op to its image under the replica swap:
// mutating with symMirror[op] does to r2 exactly what op does to r1 and
// vice versa, with replica-neutral ops (the shared global) fixed. A
// mutation stream and its mirror therefore build a state and its exact
// swap image.
var symMirror = [13]byte{1, 0, 3, 2, 5, 4, 6, 8, 7, 10, 9, 12, 11}

// mutateSym applies one byte-driven mutation to the two-replica world.
// Every component of the canonical sub-encoding is reachable: machine
// state and vars per replica, namespaced and shared globals, and queued
// messages with an intra-replica, external, or cross-replica sender
// (the last is deliberately NOT canonicalized — replica-labeled senders
// outside their own replica only under-merge, never falsely merge).
func mutateSym(w *model.World, op, arg byte) {
	push := func(ch, from string) {
		c := w.Chan(ch)
		c.Queue = append(c.Queue, types.Message{
			Kind:  types.MsgKind(arg),
			Cause: types.Cause(arg / 3),
			Seq:   uint32(arg) * 7,
			From:  from,
			To:    ch,
		})
	}
	states := []fsm.State{"A", "B"}
	switch op % 13 {
	case 0:
		w.Proc("r1").M.SetVar("x", int(arg))
	case 1:
		w.Proc("r2").M.SetVar("x", int(arg))
	case 2:
		w.Proc("r1").M.SetState(states[int(arg)%len(states)])
	case 3:
		w.Proc("r2").M.SetState(states[int(arg)%len(states)])
	case 4:
		w.SetGlobal("g.n1.v", int(arg))
	case 5:
		w.SetGlobal("g.n2.v", int(arg))
	case 6:
		w.SetGlobal("g.s", int(arg))
	case 7:
		push("r1", "r1")
	case 8:
		push("r2", "r2")
	case 9:
		push("r1", "env")
	case 10:
		push("r2", "env")
	case 11:
		push("r1", "r2")
	case 12:
		push("r2", "r1")
	}
}

// swapSymWorld constructs the swap image of a two-replica world from
// scratch: machine states, queues and globals of r1/n1 land on r2/n2
// and vice versa, message endpoints renamed, shared state positional.
func swapSymWorld(f interface{ Fatal(...any) }, w *model.World) *model.World {
	out := fuzzSymWorld(f)
	rename := func(s string) string {
		switch s {
		case "r1":
			return "r2"
		case "r2":
			return "r1"
		}
		return s
	}
	for _, name := range []string{"r1", "r2"} {
		sp, dp := w.Proc(name), out.Proc(rename(name))
		dp.M.SetState(sp.M.State())
		dp.M.SetVar("x", sp.M.Var("x"))
		sc, dc := w.Chan(name), out.Chan(rename(name))
		dc.Queue = dc.Queue[:0]
		for _, m := range sc.Queue {
			m.From = rename(m.From)
			m.To = rename(m.To)
			dc.Queue = append(dc.Queue, m)
		}
	}
	for name, v := range w.GlobalsMap() {
		switch {
		case strings.HasPrefix(name, "g.n1."):
			name = "g.n2." + name[len("g.n1."):]
		case strings.HasPrefix(name, "g.n2."):
			name = "g.n1." + name[len("g.n2."):]
		}
		out.SetGlobal(name, v)
	}
	return out
}

// symEquivalent reports whether some replica permutation of b (for two
// replicas: identity or the swap) has the same plain encoding as a.
// Plain encodings embed global names, so they compare across worlds.
func symEquivalent(f interface{ Fatal(...any) }, a, b *model.World) bool {
	pa := a.Encode(nil)
	return bytes.Equal(pa, b.Encode(nil)) ||
		bytes.Equal(pa, swapSymWorld(f, b).Encode(nil))
}

// FuzzSymCanonical asserts the two directions of the canonicalization
// contract on byte-driven mutation sequences:
//
//   - completeness: a mutation stream and its mirrored stream build a
//     state and its exact swap image, whose canonical encodings (and
//     hashes) MUST collide;
//   - soundness: whenever canonical encodings collide — by mirror
//     construction or between independently driven worlds — the plain
//     encodings must be related by a replica permutation. A collision
//     without permutation-equivalence would make the quotient search
//     merge genuinely different states.
func FuzzSymCanonical(f *testing.F) {
	f.Add([]byte{0, 7, 1, 7, 6, 3})
	f.Add([]byte{7, 200, 8, 200, 11, 50, 12, 50})
	f.Add([]byte{4, 9, 5, 9, 2, 1, 3, 1})
	f.Add([]byte{9, 13, 10, 13, 0, 255})
	f.Add([]byte{})
	f.Add([]byte{11, 90, 4, 17, 3, 1, 6, 6, 12, 90})

	f.Fuzz(func(t *testing.T, data []byte) {
		w1 := fuzzSymWorld(t)
		w2 := fuzzSymWorld(t)
		w3 := fuzzSymWorld(t)
		crossed := false
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i] % 13
			if op >= 11 {
				// Cross-replica senders encode by raw name, so a state
				// and its swap image legitimately keep distinct
				// canonical encodings (under-merging; see mutateSym).
				// Completeness below is asserted only without them.
				crossed = true
			}
			mutateSym(w1, op, data[i+1])
			mutateSym(w2, symMirror[op], data[i+1])
			mutateSym(w3, (op+5)%13, data[i+1])
		}

		c1 := w1.EncodeCanonical(nil)
		if !crossed {
			if !bytes.Equal(c1, w2.EncodeCanonical(nil)) {
				t.Fatal("mirrored mutation stream does not canonicalize to the same bytes")
			}
			if w1.CanonicalHash() != w2.CanonicalHash() {
				t.Fatal("mirrored mutation stream canonical hashes differ")
			}
		}
		if bytes.Equal(c1, w2.EncodeCanonical(nil)) && !symEquivalent(t, w1, w2) {
			t.Fatal("mirror-built collision is not permutation-equivalent")
		}

		if bytes.Equal(c1, w3.EncodeCanonical(nil)) {
			if !symEquivalent(t, w1, w3) {
				t.Fatal("canonical collision between non-permutation-equivalent states")
			}
		}

		// EncodeCanonical must be a pure function of state, like Encode.
		if !bytes.Equal(c1, w1.Clone().EncodeCanonical(nil)) {
			t.Fatal("clone canonicalizes differently")
		}
	})
}
