package check

import (
	"strings"
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/model"
	"cnetverifier/internal/types"
)

// deadLetterWorld wires a sender whose message kind the receiver
// handles in no state — the lint prescreen must refuse to explore it.
func deadLetterWorld(t *testing.T) *model.World {
	t.Helper()
	sender := &fsm.Spec{Name: "sender", Init: "A", Transitions: []fsm.Transition{
		{Name: "send", From: "A", On: types.MsgPowerOff, To: "A",
			Action: func(c fsm.Ctx, e fsm.Event) {
				c.Send("ue.b", types.Message{Kind: types.MsgAttachRequest})
			}},
	}}
	recv := &fsm.Spec{Name: "recv", Init: "A", Transitions: []fsm.Transition{
		{Name: "h", From: "A", On: types.MsgAttachAccept, To: "A"},
	}}
	w, err := model.New(model.Config{Procs: []model.ProcConfig{
		{Name: "ue.a", Spec: sender},
		{Name: "ue.b", Spec: recv},
	}})
	if err != nil {
		t.Fatalf("model.New: %v", err)
	}
	return w
}

func TestPrescreenRefusesBrokenWorld(t *testing.T) {
	w := deadLetterWorld(t)
	_, err := Run(w, nil, nil, Options{MaxDepth: 3})
	if err == nil {
		t.Fatalf("Run explored a world with a dead-letter send")
	}
	if !strings.Contains(err.Error(), "MSG001") || !strings.Contains(err.Error(), "SkipLint") {
		t.Errorf("gate error should name the rule and the escape hatch: %v", err)
	}
}

func TestPrescreenSkipLint(t *testing.T) {
	w := deadLetterWorld(t)
	res, err := Run(w, nil, nil, Options{MaxDepth: 3, SkipLint: true})
	if err != nil {
		t.Fatalf("Run with SkipLint: %v", err)
	}
	if res.States == 0 {
		t.Errorf("SkipLint run explored no states")
	}
}

func TestPrescreenSuppression(t *testing.T) {
	w := deadLetterWorld(t)
	_, err := Run(w, nil, nil, Options{MaxDepth: 3,
		LintSuppress: map[string][]string{"ue.a": {"MSG001"}}})
	if err != nil {
		t.Fatalf("Run with MSG001 suppressed for ue.a: %v", err)
	}
}

func TestOptionsIsZero(t *testing.T) {
	if !(Options{}).IsZero() {
		t.Errorf("zero Options not IsZero")
	}
	for _, o := range []Options{
		{MaxDepth: 1},
		{SkipLint: true},
		{LintSuppress: map[string][]string{}},
	} {
		if o.IsZero() {
			t.Errorf("%+v reported IsZero", o)
		}
	}
}
