package check

import (
	"sort"
	"strings"

	"cnetverifier/internal/model"
)

// symmetrizeViolations closes a result's violation set under the
// world's declared replica permutations (Options.Symmetry).
//
// Why this is needed for exactness: the quotient search visits one
// representative state per permutation orbit, and which representative
// it reaches depends on the canonical order, not on replica labels. A
// property parametrized by a replica (DataService_OK "[ue2]") can
// therefore fire only with the representative's labeling, while the
// plain search would also report the permuted twins. Because the
// scenario and the step relation are equivariant under the declared
// permutations, the plain run's violation set IS closed under them —
// so rewriting every found violation along every permutation (swapping
// the corresponding replica atoms in property names, descriptions and
// counterexample steps) reconstructs it exactly. See DESIGN.md,
// "Symmetry reduction", for the full argument.
//
// The closure is O(|violations| * Σ n_g!), fine for the handful of
// violations and single-digit replica counts screening produces; the
// exploration itself is what the reduction divides by ~n!.
func symmetrizeViolations(res *Result, sym *model.Symmetry) {
	if res == nil || sym == nil || len(res.Violations) == 0 {
		return
	}
	active := false
	for _, g := range sym.Groups {
		if len(g.Replicas) > 1 {
			active = true
			break
		}
	}
	if !active {
		return
	}
	seen := make(map[string]struct{}, len(res.Violations))
	for _, v := range res.Violations {
		seen[v.Property+"\x00"+v.Desc] = struct{}{}
	}
	for _, g := range sym.Groups {
		n := len(g.Replicas)
		if n < 2 {
			continue
		}
		// Snapshot before this group's expansion: images of images under
		// the same group are compositions of permutations, which the
		// enumeration below already covers; images under other groups
		// are picked up because each group iterates the accumulated list.
		base := res.Violations
		for _, perm := range permutations(n) {
			rw := newAtomRewriter(g, perm)
			if rw == nil {
				continue // identity permutation
			}
			for _, v := range base {
				nv := rewriteViolation(v, rw)
				key := nv.Property + "\x00" + nv.Desc
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				res.Violations = append(res.Violations, nv)
			}
		}
	}
	res.Violations = dedupeViolations(res.Violations)
}

// permutations enumerates all permutations of [0..n) in lexicographic
// order (deterministic, so closure output order never depends on
// anything but the descriptor).
func permutations(n int) [][]int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var out [][]int
	for {
		out = append(out, append([]int(nil), perm...))
		i := n - 2
		for i >= 0 && perm[i] >= perm[i+1] {
			i--
		}
		if i < 0 {
			return out
		}
		j := n - 1
		for perm[j] <= perm[i] {
			j--
		}
		perm[i], perm[j] = perm[j], perm[i]
		for l, r := i+1, n-1; l < r; l, r = l+1, r-1 {
			perm[l], perm[r] = perm[r], perm[l]
		}
	}
}

// atomRewriter performs simultaneous longest-match-first substitution
// of replica atoms: every occurrence of a source replica's process
// names, namespace and atoms is replaced by the target replica's
// corresponding token, in one left-to-right scan. Longest-first
// matching keeps "ue1" from firing inside "ue10"; simultaneity keeps a
// swap (ue1<->ue2) from chaining through its own output.
type atomRewriter struct {
	from, to []string
}

func newAtomRewriter(g model.SymGroup, perm []int) *atomRewriter {
	rw := &atomRewriter{}
	have := make(map[string]bool)
	add := func(a, b string) {
		if a == "" || a == b || have[a] {
			return
		}
		have[a] = true
		rw.from = append(rw.from, a)
		rw.to = append(rw.to, b)
	}
	for i, p := range perm {
		if p == i {
			continue
		}
		src, dst := g.Replicas[i], g.Replicas[p]
		for j := range src.Procs {
			if j < len(dst.Procs) {
				add(src.Procs[j], dst.Procs[j])
			}
		}
		add(src.NS, dst.NS)
		for j := range src.Atoms {
			if j < len(dst.Atoms) {
				add(src.Atoms[j], dst.Atoms[j])
			}
		}
	}
	if len(rw.from) == 0 {
		return nil
	}
	sort.Sort(rw)
	return rw
}

// sort.Interface: by pattern length descending, then lexicographic —
// the longest-match-first scan order.
func (rw *atomRewriter) Len() int { return len(rw.from) }
func (rw *atomRewriter) Less(i, j int) bool {
	if len(rw.from[i]) != len(rw.from[j]) {
		return len(rw.from[i]) > len(rw.from[j])
	}
	return rw.from[i] < rw.from[j]
}
func (rw *atomRewriter) Swap(i, j int) {
	rw.from[i], rw.from[j] = rw.from[j], rw.from[i]
	rw.to[i], rw.to[j] = rw.to[j], rw.to[i]
}

func (rw *atomRewriter) rewrite(s string) string {
	match := func(i int) (int, bool) {
		for k, f := range rw.from {
			if len(f) <= len(s)-i && s[i:i+len(f)] == f {
				return k, true
			}
		}
		return 0, false
	}
	first, firstK := -1, 0
	for i := 0; i < len(s); i++ {
		if k, ok := match(i); ok {
			first, firstK = i, k
			break
		}
	}
	if first < 0 {
		return s // nothing matched; share the input
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	b.WriteString(s[:first])
	b.WriteString(rw.to[firstK])
	i := first + len(rw.from[firstK])
	for i < len(s) {
		if k, ok := match(i); ok {
			b.WriteString(rw.to[k])
			i += len(rw.from[k])
		} else {
			b.WriteByte(s[i])
			i++
		}
	}
	return b.String()
}

// rewriteViolation maps one violation along a permutation: property
// name, description, and every step's process, message endpoints and
// notes. Transition labels are spec-level names and carry no replica
// atoms, so they pass through untouched.
func rewriteViolation(v Violation, rw *atomRewriter) Violation {
	nv := Violation{
		Property: rw.rewrite(v.Property),
		Desc:     rw.rewrite(v.Desc),
		Path:     make([]model.Step, len(v.Path)),
	}
	for i, st := range v.Path {
		st.Proc = rw.rewrite(st.Proc)
		st.Msg.From = rw.rewrite(st.Msg.From)
		st.Msg.To = rw.rewrite(st.Msg.To)
		if st.Notes != nil {
			notes := make([]string, len(st.Notes))
			for j, n := range st.Notes {
				notes[j] = rw.rewrite(n)
			}
			st.Notes = notes
		}
		nv.Path[i] = st
	}
	return nv
}
